#include <gtest/gtest.h>

#include "cloud/billing.h"
#include "cloud/breaker.h"
#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/provider.h"
#include "cloud/server.h"
#include "util/strings.h"

namespace cleaks::cloud {
namespace {

// ---------- circuit breaker ----------

TEST(Breaker, NoTripBelowRating) {
  CircuitBreaker breaker({.rated_w = 1000.0});
  for (int i = 0; i < 600; ++i) {
    EXPECT_FALSE(breaker.observe(950.0, kSecond));
  }
  EXPECT_FALSE(breaker.tripped());
}

TEST(Breaker, InstantTripOnLargeSpike) {
  CircuitBreaker breaker({.rated_w = 1000.0, .instant_trip_factor = 1.6});
  EXPECT_TRUE(breaker.observe(1700.0, kSecond));
  EXPECT_TRUE(breaker.tripped());
}

TEST(Breaker, ThermalTripIntegratesOverload) {
  BreakerSpec spec;
  spec.rated_w = 1000.0;
  spec.thermal_capacity = 12.0;
  CircuitBreaker breaker(spec);
  // 20% overload => 0.2/s of thermal budget => trips at 60 s.
  bool tripped = false;
  int seconds = 0;
  while (!tripped && seconds < 120) {
    tripped = breaker.observe(1200.0, kSecond);
    ++seconds;
  }
  EXPECT_TRUE(tripped);
  EXPECT_NEAR(seconds, 60, 2);
}

TEST(Breaker, HeavierOverloadTripsFaster) {
  auto time_to_trip = [](double power) {
    CircuitBreaker breaker({.rated_w = 1000.0});
    int seconds = 0;
    while (!breaker.tripped() && seconds < 1000) {
      breaker.observe(power, kSecond);
      ++seconds;
    }
    return seconds;
  };
  EXPECT_LT(time_to_trip(1500.0), time_to_trip(1200.0));
}

TEST(Breaker, CoolsWhenBelowRating) {
  BreakerSpec spec;
  spec.rated_w = 1000.0;
  spec.thermal_capacity = 12.0;
  CircuitBreaker breaker(spec);
  for (int i = 0; i < 50; ++i) breaker.observe(1200.0, kSecond);
  const double heated = breaker.thermal_state();
  for (int i = 0; i < 300; ++i) breaker.observe(500.0, kSecond);
  EXPECT_LT(breaker.thermal_state(), heated * 0.2);
  EXPECT_FALSE(breaker.tripped());
}

TEST(Breaker, TracksMaxPowerAndReset) {
  CircuitBreaker breaker({.rated_w = 100.0});
  breaker.observe(500.0, kSecond);
  EXPECT_TRUE(breaker.tripped());
  EXPECT_DOUBLE_EQ(breaker.max_power_seen_w(), 500.0);
  breaker.reset();
  EXPECT_FALSE(breaker.tripped());
}

// ---------- billing ----------

TEST(Billing, UtilizationDominatesCost) {
  BillingMeter meter;
  // 16 vCPUs for one hour at ~1% vs 100% utilization (paper's VMware
  // example: $2.87 vs $167.25 per month — a ~50x ratio).
  meter.charge("idle-tenant", 16, 16 * 36.0, kHour);      // 1% of 16 cpu-h
  meter.charge("busy-tenant", 16, 16 * 3600.0, kHour);    // 100%
  const double idle_cost = meter.total_cost("idle-tenant");
  const double busy_cost = meter.total_cost("busy-tenant");
  EXPECT_GT(busy_cost, idle_cost * 30.0);
  EXPECT_LT(busy_cost, idle_cost * 80.0);
}

TEST(Billing, MonthlyFigureMatchesCalculator) {
  BillingMeter meter;
  // 16 vCPUs fully busy for a 730-hour month.
  meter.charge("t", 16, 16 * 730.0 * 3600.0, 730 * kHour);
  EXPECT_NEAR(meter.total_cost("t"), 167.25, 10.0);
}

TEST(Billing, UnknownTenantIsZero) {
  BillingMeter meter;
  EXPECT_EQ(meter.total_cost("nobody"), 0.0);
  EXPECT_EQ(meter.cpu_hours("nobody"), 0.0);
}

TEST(Billing, CpuHoursAccumulate) {
  BillingMeter meter;
  meter.charge("t", 4, 7200.0, kHour);
  EXPECT_DOUBLE_EQ(meter.cpu_hours("t"), 2.0);
}

// ---------- cloud profiles ----------

TEST(Profiles, FiveCommercialClouds) {
  const auto clouds = all_commercial_clouds();
  ASSERT_EQ(clouds.size(), 5u);
  EXPECT_EQ(clouds[0].name, "CC1");
  EXPECT_EQ(clouds[4].name, "CC5");
}

TEST(Profiles, Cc4LacksRapl) {
  EXPECT_FALSE(cc4().hardware.has_rapl);
  EXPECT_TRUE(cc1().hardware.has_rapl);
}

TEST(Profiles, Cc5RestrictsCpuAndMemoryViews) {
  const auto profile = cc5();
  EXPECT_EQ(profile.policy.evaluate("/proc/meminfo"), fs::MaskAction::kRestrict);
  EXPECT_EQ(profile.policy.evaluate("/proc/cpuinfo"), fs::MaskAction::kRestrict);
  EXPECT_EQ(profile.policy.evaluate("/proc/locks"), fs::MaskAction::kDeny);
  EXPECT_EQ(profile.policy.evaluate("/proc/timer_list"),
            fs::MaskAction::kAllow);
}

TEST(Profiles, Cc1MasksOnlySchedDebug) {
  const auto profile = cc1();
  EXPECT_EQ(profile.policy.evaluate("/proc/sched_debug"),
            fs::MaskAction::kDeny);
  EXPECT_EQ(profile.policy.evaluate("/proc/timer_list"),
            fs::MaskAction::kAllow);
}

// ---------- server ----------

TEST(Server, PriorUptimeVisibleThroughProc) {
  Server server("s", local_testbed(), 1, 10 * kDay);
  fs::ViewContext ctx;
  const auto uptime = server.fs().read("/proc/uptime", ctx).value();
  EXPECT_NEAR(extract_numbers(uptime)[0], to_seconds(10 * kDay), 60.0);
}

TEST(Server, StepAdvancesHost) {
  Server server("s", local_testbed(), 1);
  server.step(5 * kSecond);
  EXPECT_EQ(server.host().now(), 5 * kSecond);
  EXPECT_GT(server.power_w(), 0.0);
}

TEST(Server, BenignLoadRaisesPower) {
  Server quiet("quiet", cc1(), 2);
  Server loaded("loaded", cc1(), 2);
  loaded.enable_benign_load(3);
  quiet.step(10 * kMinute);
  loaded.step(10 * kMinute);
  EXPECT_GT(loaded.power_w(), quiet.power_w() * 1.1);
}

// ---------- datacenter ----------

TEST(Datacenter, BuildsRequestedTopology) {
  DatacenterConfig config;
  config.num_racks = 2;
  config.servers_per_rack = 4;
  config.benign_load = false;
  Datacenter dc(config);
  EXPECT_EQ(dc.num_servers(), 8);
  EXPECT_EQ(dc.rack_of(0), 0);
  EXPECT_EQ(dc.rack_of(5), 1);
}

TEST(Datacenter, RackPowerSumsServers) {
  DatacenterConfig config;
  config.servers_per_rack = 4;
  config.benign_load = false;
  Datacenter dc(config);
  dc.step(5 * kSecond);
  double manual = 0.0;
  for (int i = 0; i < 4; ++i) manual += dc.server(i).power_w();
  EXPECT_NEAR(dc.rack_power_w(0), manual, 1e-9);
  EXPECT_NEAR(dc.total_power_w(), manual, 1e-9);
}

TEST(Datacenter, SameRackServersHaveCloseUptimes) {
  DatacenterConfig config;
  config.num_racks = 2;
  config.servers_per_rack = 4;
  config.benign_load = false;
  Datacenter dc(config);
  auto uptime_s = [&](int server) {
    fs::ViewContext ctx;
    return extract_numbers(
        dc.server(server).fs().read("/proc/uptime", ctx).value())[0];
  };
  // §IV-C heuristic: same rack => installed together (minutes apart);
  // different racks => weeks apart.
  EXPECT_LT(std::abs(uptime_s(0) - uptime_s(1)), 3600.0);
  EXPECT_GT(std::abs(uptime_s(0) - uptime_s(4)), to_seconds(5 * kDay));
}

TEST(Datacenter, BreakerSeesAggregatePower) {
  DatacenterConfig config;
  config.servers_per_rack = 2;
  config.benign_load = false;
  config.rack_breaker.rated_w = 50.0;  // absurdly low: must trip
  config.rack_breaker.instant_trip_factor = 2.0;
  config.rack_breaker.thermal_capacity = 2.0;
  Datacenter dc(config);
  for (int i = 0; i < 30 && !dc.any_breaker_tripped(); ++i) dc.step(kSecond);
  EXPECT_TRUE(dc.any_breaker_tripped());
}

TEST(Datacenter, RackCappingThrottlesAfterDelay) {
  DatacenterConfig config;
  config.servers_per_rack = 2;
  config.benign_load = false;
  config.rack_power_cap_w = 100.0;
  config.capping_interval = kMinute;
  Datacenter dc(config);
  // Saturate both servers.
  kernel::TaskBehavior burn;
  burn.duty_cycle = 1.0;
  burn.ipc = 2.5;
  for (int s = 0; s < 2; ++s) {
    for (int c = 0; c < dc.server(s).host().spec().num_cores; ++c) {
      dc.server(s).host().spawn_task({.comm = "burn", .behavior = burn});
    }
  }
  dc.step(30 * kSecond);
  const double before_cap = dc.rack_power_w(0);
  EXPECT_GT(before_cap, 300.0);  // uncapped for the first minute
  for (int i = 0; i < 200; ++i) dc.step(kSecond);
  EXPECT_LT(dc.rack_power_w(0), before_cap * 0.8);  // capper engaged
}

// ---------- provider ----------

TEST(Provider, LaunchPlacesOnSomeServer) {
  DatacenterConfig config;
  config.servers_per_rack = 4;
  config.benign_load = false;
  Datacenter dc(config);
  CloudProvider provider(dc, 17);
  auto instance = provider.launch("tenant-a");
  ASSERT_NE(instance, nullptr);
  const int server = provider.server_of(instance->instance_id);
  EXPECT_GE(server, 0);
  EXPECT_LT(server, 4);
  EXPECT_EQ(provider.instance_count(), 1u);
}

TEST(Provider, PlacementSpreadsOverServers) {
  DatacenterConfig config;
  config.servers_per_rack = 8;
  config.benign_load = false;
  Datacenter dc(config);
  CloudProvider provider(dc, 17);
  std::set<int> servers;
  for (int i = 0; i < 40; ++i) {
    servers.insert(provider.server_of(provider.launch("t")->instance_id));
  }
  EXPECT_GE(servers.size(), 6u);
}

TEST(Provider, TerminateDestroysContainer) {
  DatacenterConfig config;
  config.benign_load = false;
  Datacenter dc(config);
  CloudProvider provider(dc, 17);
  auto instance = provider.launch("t");
  const auto id = instance->instance_id;
  const int server = provider.server_of(id);
  EXPECT_TRUE(provider.terminate(id));
  EXPECT_EQ(dc.server(server).runtime().find(id), nullptr);
  EXPECT_FALSE(provider.terminate(id));
}

TEST(Provider, BinPackFillsOneServerFirst) {
  DatacenterConfig config;
  config.servers_per_rack = 4;
  config.benign_load = false;
  Datacenter dc(config);
  CloudProvider provider(dc, 17, BillingRates{}, PlacementPolicy::kBinPack,
                         /*max_instances_per_server=*/3);
  std::vector<int> placements;
  for (int i = 0; i < 6; ++i) {
    placements.push_back(provider.server_of(provider.launch("t")->instance_id));
  }
  // First three share a server; the next three share another.
  EXPECT_EQ(placements[0], placements[1]);
  EXPECT_EQ(placements[1], placements[2]);
  EXPECT_NE(placements[2], placements[3]);
  EXPECT_EQ(placements[3], placements[4]);
  EXPECT_EQ(placements[4], placements[5]);
}

TEST(Provider, SpreadNeverStacksWhileRoomElsewhere) {
  DatacenterConfig config;
  config.servers_per_rack = 4;
  config.benign_load = false;
  Datacenter dc(config);
  CloudProvider provider(dc, 18, BillingRates{}, PlacementPolicy::kSpread);
  std::set<int> first_round;
  for (int i = 0; i < 4; ++i) {
    first_round.insert(provider.server_of(provider.launch("t")->instance_id));
  }
  EXPECT_EQ(first_round.size(), 4u);  // one per server before any repeat
}

TEST(Provider, RandomAvoidsFullServers) {
  DatacenterConfig config;
  config.servers_per_rack = 2;
  config.benign_load = false;
  Datacenter dc(config);
  CloudProvider provider(dc, 19, BillingRates{}, PlacementPolicy::kRandom,
                         /*max_instances_per_server=*/4);
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 8; ++i) {
    ++counts[static_cast<std::size_t>(
        provider.server_of(provider.launch("t")->instance_id))];
  }
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 4);
}

TEST(Provider, PolicyNames) {
  EXPECT_EQ(to_string(PlacementPolicy::kRandom), "random");
  EXPECT_EQ(to_string(PlacementPolicy::kBinPack), "bin-pack");
  EXPECT_EQ(to_string(PlacementPolicy::kSpread), "spread");
}

TEST(Provider, BillingChargesBusyTenantMore) {
  DatacenterConfig config;
  config.benign_load = false;
  Datacenter dc(config);
  CloudProvider provider(dc, 17);
  auto idle_instance = provider.launch("idle");
  auto busy_instance = provider.launch("busy");
  kernel::TaskBehavior burn;
  burn.duty_cycle = 1.0;
  for (int i = 0; i < 4; ++i) busy_instance->handle->run("burn", burn);
  for (int i = 0; i < 60; ++i) provider.step(kSecond);
  EXPECT_GT(provider.billing().total_cost("busy"),
            provider.billing().total_cost("idle") * 5.0);
  EXPECT_GT(provider.billing().cpu_hours("busy"), 0.05);
}

}  // namespace
}  // namespace cleaks::cloud
