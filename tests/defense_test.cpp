#include <gtest/gtest.h>

#include "attack/monitor.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "defense/power_namespace.h"
#include "defense/trainer.h"
#include "util/strings.h"
#include "workload/profiles.h"

namespace cleaks::defense {
namespace {

/// Trained model shared across tests (training is the slow part).
const PowerModel& shared_model() {
  static const PowerModel model = [] {
    auto result = train_default_model(/*seed=*/501);
    if (!result.is_ok()) throw std::runtime_error("training failed");
    return std::move(result).value();
  }();
  return model;
}

struct Fixture {
  Fixture()
      : server("def-host", cloud::local_testbed(), 61, 5 * kDay),
        power_ns(server.runtime(), shared_model()) {
    server.host().set_tick_duration(100 * kMillisecond);
    container::ContainerConfig config;
    config.num_cpus = 4;
    active = server.runtime().create(config);
    idle = server.runtime().create(config);
    power_ns.enable();
  }

  std::uint64_t read_uj(container::Container& c) {
    return static_cast<std::uint64_t>(parse_first_int(
        c.read_file("/sys/class/powercap/intel-rapl:0/energy_uj").value()));
  }

  cloud::Server server;
  PowerNamespace power_ns;
  std::shared_ptr<container::Container> active, idle;
};

// ---------- model training (Figs 6/7 regression) ----------

TEST(PowerModel, TrainsWithHighR2) {
  const auto& model = shared_model();
  ASSERT_TRUE(model.trained());
  // Fig 6/7: energy is (piecewise) linear in I and CM — the regression
  // must capture nearly all variance.
  EXPECT_GT(model.core_model().r2, 0.98);
  EXPECT_GT(model.dram_model().r2, 0.98);
  EXPECT_GT(model.lambda_w(), 0.0);
}

TEST(PowerModel, CoefficientsHaveGroundTruthShape) {
  const auto& model = shared_model();
  const auto& c = model.core_model().coefficients;
  ASSERT_EQ(c.size(), 4u);
  // nJ/instruction coefficient recovers ~e_inst_nj of the testbed (1.15).
  EXPECT_NEAR(c[0] * 1e9, 1.15, 0.2);
  EXPECT_GT(c[1], 0.0);  // cache-miss mix raises the slope
  // DRAM: beta recovers ~e_cmiss_dram_nj (16 nJ/miss).
  EXPECT_NEAR(model.dram_model().coefficients[0] * 1e9, 16.0, 3.0);
}

TEST(PowerModel, HeldOutSpecErrorsSmall) {
  // Train on the training set; validate against analytic ground truth for
  // the disjoint SPEC-like suite (the Fig 8 generalization requirement).
  const auto& model = shared_model();
  hw::EnergyModel truth(hw::testbed_i7_6700().energy);
  for (const auto& profile : workload::spec_suite()) {
    PerfDelta delta;
    delta.seconds = 1.0;
    delta.cycles = 4 * 3.4e9;  // 4 busy cores
    delta.instructions = delta.cycles * profile.behavior.ipc;
    delta.cache_misses =
        delta.instructions * profile.behavior.cache_miss_per_kinst / 1000;
    delta.branch_misses =
        delta.instructions * profile.behavior.branch_miss_per_kinst / 1000;
    hw::TickActivity activity;
    activity.active_seconds = 4.0;
    activity.idle_seconds = 4.0;  // 8-core host, 4 busy
    activity.instructions = delta.instructions;
    activity.cycles = delta.cycles;
    activity.cache_misses = delta.cache_misses;
    activity.branch_misses = delta.branch_misses;
    const double truth_j = truth.core_activity_energy(activity).package_j +
                           truth.background_energy(1.0).package_j;
    const double modeled_j = model.package_energy_j(delta);
    EXPECT_NEAR(modeled_j, truth_j, truth_j * 0.08) << profile.name;
  }
}

TEST(PowerModel, UntrainedRejectsSmallSamples) {
  PowerModel model;
  std::vector<TrainingSample> tiny(3);
  EXPECT_TRUE(model.train(tiny).Matches(StatusCode::kInvalidArgument,
                                        "at least 8 samples"));
  EXPECT_FALSE(model.trained());
}

TEST(PowerModel, UtilizationOnlyModelIsWorseAcrossMixes) {
  // The §V-B2 argument: same CPU utilization, different power. Train both
  // models on the same data; compare worst-case relative error over the
  // SPEC suite at fixed utilization.
  kernel::Host host("util-host", hw::testbed_i7_6700(), 77);
  host.set_tick_duration(100 * kMillisecond);
  const auto samples =
      collect_training_samples(host, workload::training_set());
  PowerModel full;
  UtilizationOnlyModel util_only;
  ASSERT_TRUE(full.train(samples).is_ok());
  ASSERT_TRUE(util_only.train(samples).is_ok());

  hw::EnergyModel truth(hw::testbed_i7_6700().energy);
  double worst_full = 0.0;
  double worst_util = 0.0;
  for (const auto& profile : workload::spec_suite()) {
    PerfDelta delta;
    delta.seconds = 1.0;
    delta.cycles = 4 * 3.4e9;
    delta.instructions = delta.cycles * profile.behavior.ipc;
    delta.cache_misses =
        delta.instructions * profile.behavior.cache_miss_per_kinst / 1000;
    delta.branch_misses =
        delta.instructions * profile.behavior.branch_miss_per_kinst / 1000;
    hw::TickActivity activity;
    activity.active_seconds = 4.0;
    activity.idle_seconds = 4.0;
    activity.instructions = delta.instructions;
    activity.cycles = delta.cycles;
    activity.cache_misses = delta.cache_misses;
    activity.branch_misses = delta.branch_misses;
    const double truth_j = truth.core_activity_energy(activity).package_j +
                           truth.background_energy(1.0).package_j;
    worst_full = std::max(
        worst_full, std::abs(full.package_energy_j(delta) - truth_j) / truth_j);
    worst_util = std::max(
        worst_util,
        std::abs(util_only.package_energy_j(delta) - truth_j) / truth_j);
  }
  EXPECT_LT(worst_full, 0.10);
  EXPECT_GT(worst_util, worst_full * 2.0);
}

// ---------- trainer plumbing ----------

TEST(Trainer, CollectsExpectedSampleCount) {
  kernel::Host host("t-host", hw::testbed_i7_6700(), 78);
  host.set_tick_duration(100 * kMillisecond);
  TrainerOptions options;
  options.samples_per_level = 3;
  options.duty_levels = {0.5, 1.0};
  const auto samples = collect_training_samples(
      host, {workload::prime(), workload::libquantum()}, options);
  EXPECT_EQ(samples.size(), 2u * 2u * 3u);
  for (const auto& sample : samples) {
    EXPECT_GT(sample.perf.instructions, 0.0);
    EXPECT_GT(sample.package_j, 0.0);
    EXPECT_GE(sample.package_j, sample.core_j);
  }
}

TEST(Trainer, CleansUpRootEvents) {
  kernel::Host host("t-host", hw::testbed_i7_6700(), 79);
  host.set_tick_duration(100 * kMillisecond);
  TrainerOptions options;
  options.samples_per_level = 2;
  options.duty_levels = {1.0};
  collect_training_samples(host, {workload::prime()}, options);
  EXPECT_FALSE(
      kernel::PerfEventSubsystem::has_events(*host.cgroups().root()));
}

// ---------- power-based namespace ----------

TEST(PowerNs, InstallsPerfEventsOnContainers) {
  Fixture fixture;
  EXPECT_TRUE(kernel::PerfEventSubsystem::has_events(
      *fixture.active->cgroup()));
  EXPECT_TRUE(kernel::PerfEventSubsystem::has_events(
      *fixture.server.host().cgroups().root()));
}

TEST(PowerNs, NewContainersGetEventsViaHook) {
  Fixture fixture;
  auto late = fixture.server.runtime().create({});
  EXPECT_TRUE(kernel::PerfEventSubsystem::has_events(*late->cgroup()));
  fixture.server.runtime().destroy(late->id());
}

TEST(PowerNs, HostViewStaysHardwareTruth) {
  Fixture fixture;
  fixture.server.step(3 * kSecond);
  fs::ViewContext host_ctx;
  const auto host_view =
      fixture.server.fs()
          .read("/sys/class/powercap/intel-rapl:0/energy_uj", host_ctx)
          .value();
  EXPECT_EQ(static_cast<std::uint64_t>(parse_first_int(host_view)),
            fixture.server.host().rapl()[0].package().energy_uj());
}

TEST(PowerNs, ContainerCountersAreMonotone) {
  Fixture fixture;
  auto busy = workload::prime();
  for (int i = 0; i < 4; ++i) fixture.active->run("w", busy.behavior);
  std::uint64_t last = 0;
  for (int step = 0; step < 10; ++step) {
    fixture.server.step(kSecond);
    const auto now_uj = fixture.read_uj(*fixture.active);
    EXPECT_GE(now_uj, last);
    last = now_uj;
  }
  EXPECT_GT(last, 0u);
}

TEST(PowerNs, TransparencyIdleContainerBlindToSiblingLoad) {
  // The Fig 9 security experiment: container 1 runs a SPEC workload,
  // container 2 stays idle — container 2's power view must not move.
  Fixture fixture;
  fixture.server.step(5 * kSecond);
  attack::RaplMonitor idle_monitor(*fixture.idle);
  attack::RaplMonitor active_monitor(*fixture.active);
  idle_monitor.sample_w(kSecond);
  active_monitor.sample_w(kSecond);
  fixture.server.step(2 * kSecond);
  const double idle_before = idle_monitor.sample_w(2 * kSecond).value();

  auto bzip2 = workload::spec_suite()[0];
  for (int i = 0; i < 4; ++i) fixture.active->run("401.bzip2", bzip2.behavior);
  fixture.server.step(10 * kSecond);
  const double idle_during = idle_monitor.sample_w(10 * kSecond).value();
  const double active_during = active_monitor.sample_w(10 * kSecond).value();

  EXPECT_GT(active_during, 20.0);           // the worker sees its own burn
  EXPECT_LT(idle_during, idle_before + 3.0);  // the idle tenant sees nothing
}

TEST(PowerNs, CalibratedSharesTrackHostEnergy) {
  // Formula 3 attribution: each busy container's view is a share of the
  // hardware truth. Note the paper's formula gives every container a full
  // idle/uncore share (Fig 9: an idle container reads host-idle level), so
  // the *sum* over containers over-counts idle power by design — it must
  // still stay in the same ballpark as the hardware counter.
  Fixture fixture;
  auto busy = workload::prime();
  for (int i = 0; i < 2; ++i) fixture.active->run("w", busy.behavior);
  for (int i = 0; i < 2; ++i) fixture.idle->run("w2", busy.behavior);
  const auto host_before =
      fixture.server.host().rapl()[0].package().lifetime_energy_j();
  const auto active_before = fixture.read_uj(*fixture.active);
  const auto idle_before = fixture.read_uj(*fixture.idle);
  fixture.server.step(10 * kSecond);
  const double host_delta =
      fixture.server.host().rapl()[0].package().lifetime_energy_j() -
      host_before;
  const double seen_delta =
      (static_cast<double>(fixture.read_uj(*fixture.active)) -
       static_cast<double>(active_before) +
       static_cast<double>(fixture.read_uj(*fixture.idle)) -
       static_cast<double>(idle_before)) /
      1e6;
  // Each container alone sees less than the host consumed; the sum stays
  // within the idle-share over-count bound (2 containers => at most one
  // extra idle share).
  const double active_delta =
      (static_cast<double>(fixture.read_uj(*fixture.active)) -
       static_cast<double>(active_before)) /
      1e6;
  EXPECT_LT(active_delta, host_delta);
  EXPECT_LT(seen_delta, host_delta * 1.4);
  EXPECT_GT(seen_delta, host_delta * 0.5);
}

TEST(PowerNs, NeutralizesSynergisticMonitoring) {
  // The §VI-B claim: with the namespace on, an attacker's monitor no
  // longer tracks host load.
  Fixture fixture;
  attack::RaplMonitor monitor(*fixture.idle);
  monitor.sample_w(kSecond);
  fixture.server.step(2 * kSecond);
  const double before = monitor.sample_w(2 * kSecond).value();
  auto virus = workload::power_virus();
  for (int i = 0; i < 4; ++i) fixture.active->run("v", virus.behavior);
  fixture.server.step(5 * kSecond);
  const double during = monitor.sample_w(5 * kSecond).value();
  EXPECT_LT(during, before + 3.0);  // no visible crest to ride
}

TEST(PowerNs, DisableRestoresLeak) {
  Fixture fixture;
  fixture.power_ns.disable();
  fixture.server.step(2 * kSecond);
  const auto view = fixture.read_uj(*fixture.idle);
  EXPECT_EQ(view, fixture.server.host().rapl()[0].package().energy_uj());
  EXPECT_FALSE(kernel::PerfEventSubsystem::has_events(
      *fixture.active->cgroup()));
}

TEST(PowerNs, DomainsExposedSeparately) {
  Fixture fixture;
  auto busy = workload::libquantum();
  for (int i = 0; i < 4; ++i) fixture.active->run("lq", busy.behavior);
  fixture.server.step(5 * kSecond);
  const auto core_uj = parse_first_int(
      fixture.active
          ->read_file(
              "/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/energy_uj")
          .value());
  const auto dram_uj = parse_first_int(
      fixture.active
          ->read_file(
              "/sys/class/powercap/intel-rapl:0/intel-rapl:0:1/energy_uj")
          .value());
  const auto pkg_uj = parse_first_int(
      fixture.active->read_file("/sys/class/powercap/intel-rapl:0/energy_uj")
          .value());
  EXPECT_GT(core_uj, 0);
  EXPECT_GT(dram_uj, 0);  // libquantum is memory-heavy
  EXPECT_GT(pkg_uj, core_uj);
}

TEST(PowerNs, Stage1MaskingHelper) {
  Fixture fixture;
  apply_stage1_masking(fixture.server.runtime());
  EXPECT_EQ(fixture.idle->read_file("/proc/uptime").code(),
            StatusCode::kPermissionDenied);
}

}  // namespace
}  // namespace cleaks::defense
