#include <gtest/gtest.h>

#include <climits>
#include <cmath>
#include <cstdlib>
#include <set>

#include "util/env.h"
#include "util/regression.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace cleaks {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 50; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 45);
}

TEST(Rng, ForkIsIndependentOfParentStream) {
  Rng parent(7);
  Rng child1 = parent.fork(1);
  (void)parent();  // advancing the parent must not change future forks
  Rng parent2(7);
  Rng child2 = parent2.fork(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(child1(), child2());
}

TEST(Rng, ForksWithDifferentSaltsDiverge) {
  Rng parent(7);
  Rng a = parent.fork("alpha");
  Rng b = parent.fork("beta");
  EXPECT_NE(a(), b());
}

TEST(Rng, Uniform01InRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformU64Bounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_u64(10, 20);
    EXPECT_GE(x, 10u);
    EXPECT_LE(x, 20u);
  }
  EXPECT_EQ(rng.uniform_u64(9, 9), 9u);
}

TEST(Rng, UniformI64HandlesNegativeRange) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const auto x = rng.uniform_i64(-5, 5);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 5);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, ExponentialMean) {
  Rng rng(9);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.2);
}

TEST(Rng, HexStringFormat) {
  Rng rng(1);
  const auto hex = rng.hex_string(12);
  EXPECT_EQ(hex.size(), 12u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);
}

TEST(Rng, Fnv1a64KnownValue) {
  // FNV-1a of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

// ---------- RunningStats ----------

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 3.0, 4.0}) stats.add(x);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
  EXPECT_NEAR(stats.variance(), 1.25, 1e-12);
}

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesConcatenation) {
  RunningStats left;
  RunningStats right;
  RunningStats all;
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    const double x = rng.uniform(0, 10);
    (i < 40 ? left : right).add(x);
    all.add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

// ---------- percentile / correlation / entropy ----------

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(values, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(values, 25), 2.0);
}

TEST(Stats, PercentileEmptyAndClamped) {
  EXPECT_EQ(percentile({}, 50), 0.0);
  const std::vector<double> one = {7.0};
  EXPECT_EQ(percentile(one, -10), 7.0);
  EXPECT_EQ(percentile(one, 110), 7.0);
}

TEST(Stats, PearsonPerfectCorrelation) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {2, 4, 6, 8};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
  const std::vector<double> c = {8, 6, 4, 2};
  EXPECT_NEAR(pearson_correlation(a, c), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> a = {1, 2, 3, 4};
  const std::vector<double> b = {5, 5, 5, 5};
  EXPECT_EQ(pearson_correlation(a, b), 0.0);
}

TEST(Stats, ShannonEntropyUniform) {
  const std::vector<double> four = {1, 2, 3, 4};
  EXPECT_NEAR(shannon_entropy(four), 2.0, 1e-12);
  const std::vector<double> constant = {5, 5, 5, 5};
  EXPECT_NEAR(shannon_entropy(constant), 0.0, 1e-12);
}

TEST(Stats, JointEntropySumsFields) {
  const std::vector<std::vector<double>> fields = {{1, 2, 3, 4}, {1, 1, 2, 2}};
  EXPECT_NEAR(joint_channel_entropy(fields), 3.0, 1e-12);
}

TEST(Stats, BinnedEntropyConstantIsZero) {
  const std::vector<double> constant(50, 3.3);
  EXPECT_EQ(binned_entropy(constant, 16), 0.0);
}

TEST(Stats, BinnedEntropySpreadPositive) {
  std::vector<double> spread;
  for (int i = 0; i < 64; ++i) spread.push_back(i);
  EXPECT_GT(binned_entropy(spread, 16), 3.0);
}

TEST(Stats, RSquaredPerfectFit) {
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(r_squared(y, y), 1.0);
}

TEST(Stats, EwmaConvergesToInput) {
  Ewma ewma(0.5);
  ewma.update(10.0);
  EXPECT_DOUBLE_EQ(ewma.value(), 10.0);  // first sample initializes
  for (int i = 0; i < 50; ++i) ewma.update(2.0);
  EXPECT_NEAR(ewma.value(), 2.0, 1e-6);
}

// ---------- regression ----------

TEST(Regression, RecoversExactLinearModel) {
  // y = 3*x1 - 2*x2 + 5
  std::vector<std::vector<double>> features;
  std::vector<double> y;
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const double x1 = rng.uniform(0, 10);
    const double x2 = rng.uniform(0, 10);
    features.push_back({x1, x2, 1.0});
    y.push_back(3 * x1 - 2 * x2 + 5);
  }
  auto model = fit_ols(features, y);
  ASSERT_TRUE(model.is_ok());
  // Tolerance accommodates the tiny numerical-guard ridge term.
  EXPECT_NEAR(model.value().coefficients[0], 3.0, 1e-5);
  EXPECT_NEAR(model.value().coefficients[1], -2.0, 1e-5);
  EXPECT_NEAR(model.value().coefficients[2], 5.0, 1e-4);
  EXPECT_NEAR(model.value().r2, 1.0, 1e-9);
}

TEST(Regression, NoisyFitHasReasonableR2) {
  std::vector<std::vector<double>> features;
  std::vector<double> y;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0, 100);
    features.push_back({x, 1.0});
    y.push_back(2 * x + 1 + rng.gaussian(0, 1.0));
  }
  auto model = fit_ols(features, y);
  ASSERT_TRUE(model.is_ok());
  EXPECT_NEAR(model.value().coefficients[0], 2.0, 0.05);
  EXPECT_GT(model.value().r2, 0.99);
  EXPECT_NEAR(model.value().residual_std, 1.0, 0.25);
}

TEST(Regression, RejectsEmptyAndUnderdetermined) {
  EXPECT_FALSE(fit_ols({}, {}).is_ok());
  std::vector<std::vector<double>> features = {{1.0, 2.0}};
  std::vector<double> y = {1.0};
  EXPECT_FALSE(fit_ols(features, y).is_ok());  // 1 obs, 2 features
}

TEST(Regression, RejectsRaggedRows) {
  std::vector<std::vector<double>> features = {{1.0, 2.0}, {1.0}};
  std::vector<double> y = {1.0, 2.0};
  EXPECT_FALSE(fit_ols(features, y).is_ok());
}

TEST(Regression, CholeskyRejectsNonSpd) {
  Matrix m(2, 2);
  m.at(0, 0) = 0.0;
  m.at(1, 1) = -1.0;
  const std::vector<double> b = {1.0, 1.0};
  EXPECT_FALSE(cholesky_solve(m, b).is_ok());
}

TEST(Regression, CholeskySolvesSpdSystem) {
  // S = [[4,2],[2,3]], b = [10, 9] -> x = [1.5, 2]
  Matrix s(2, 2);
  s.at(0, 0) = 4;
  s.at(0, 1) = 2;
  s.at(1, 0) = 2;
  s.at(1, 1) = 3;
  const std::vector<double> b = {10, 9};
  auto x = cholesky_solve(s, b);
  ASSERT_TRUE(x.is_ok());
  EXPECT_NEAR(x.value()[0], 1.5, 1e-12);
  EXPECT_NEAR(x.value()[1], 2.0, 1e-12);
}

// ---------- strings ----------

TEST(Strings, SplitKeepsEmptyTokens) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWhitespaceDropsEmpty) {
  const auto parts = split_whitespace("  a \t b\nc  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitLines) {
  EXPECT_EQ(split_lines("a\nb\n").size(), 2u);
  EXPECT_EQ(split_lines("a\nb").size(), 2u);
  EXPECT_TRUE(split_lines("").empty());
  EXPECT_TRUE(split_lines("\n").empty());  // a lone newline has no content
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(Strings, ParseFirstInt) {
  EXPECT_EQ(parse_first_int("abc 42 def"), 42);
  EXPECT_EQ(parse_first_int("x-17y"), -17);
  EXPECT_EQ(parse_first_int("none", 9), 9);
}

TEST(Strings, ExtractInts) {
  const auto ints = extract_ints("a1 b-2 c33");
  ASSERT_EQ(ints.size(), 3u);
  EXPECT_EQ(ints[0], 1);
  EXPECT_EQ(ints[1], -2);
  EXPECT_EQ(ints[2], 33);
}

TEST(Strings, ExtractNumbersHandlesFloats) {
  const auto nums = extract_numbers("load 0.52 1.20 x3");
  ASSERT_EQ(nums.size(), 3u);
  EXPECT_DOUBLE_EQ(nums[0], 0.52);
  EXPECT_DOUBLE_EQ(nums[1], 1.20);
  EXPECT_DOUBLE_EQ(nums[2], 3.0);
}

TEST(Strings, Strformat) {
  EXPECT_EQ(strformat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(strformat("%.2f", 1.005), "1.00");
}

TEST(Strings, StrappendfAppendsInPlace) {
  std::string out = "rapl:";
  strappendf(out, " %d uJ", 42);
  EXPECT_EQ(out, "rapl: 42 uJ");
}

// strappendf formats into a 256-byte stack buffer and falls back to the
// heap when the output does not fit *whole* — vsnprintf's NUL displaces
// the last byte at needed == 256, so 255 is the largest stack-formatted
// string. Exercise every length around that edge against plain string
// construction; a mis-audited boundary would truncate the 256-char case.
TEST(Strings, StrappendfStackBoundary) {
  for (const std::size_t length : {254u, 255u, 256u, 257u, 1000u}) {
    const std::string payload(length, 'x');
    std::string out = "prefix-";
    strappendf(out, "%s", payload.c_str());
    EXPECT_EQ(out, "prefix-" + payload) << "length " << length;
  }
}

TEST(Strings, StrappendfEmptyFormatLeavesStringAlone) {
  std::string out = "keep";
  strappendf(out, "%s", "");
  EXPECT_EQ(out, "keep");
}

TEST(Strings, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

struct GlobCase {
  const char* pattern;
  const char* path;
  bool expected;
};

class GlobMatchTest : public ::testing::TestWithParam<GlobCase> {};

TEST_P(GlobMatchTest, Matches) {
  const auto& param = GetParam();
  EXPECT_EQ(glob_match(param.pattern, param.path), param.expected)
      << param.pattern << " vs " << param.path;
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, GlobMatchTest,
    ::testing::Values(
        GlobCase{"/proc/uptime", "/proc/uptime", true},
        GlobCase{"/proc/uptime", "/proc/uptime2", false},
        GlobCase{"/proc/*", "/proc/uptime", true},
        GlobCase{"/proc/*", "/proc/sys/fs", false},   // '*' stops at '/'
        GlobCase{"/proc/**", "/proc/sys/fs/file-nr", true},
        GlobCase{"/proc/sys/fs/*", "/proc/sys/fs/file-nr", true},
        GlobCase{"/proc/sys/fs/*", "/proc/sys/kernel/x", false},
        GlobCase{"/sys/devices/**", "/sys/devices/system/node/node0/numastat",
                 true},
        GlobCase{"*", "abc", true},
        GlobCase{"*", "a/b", false},
        GlobCase{"**", "a/b/c", true},
        GlobCase{"/a/?/c", "/a/b/c", true},
        GlobCase{"/a/?/c", "/a//c", false},
        GlobCase{"", "", true},
        GlobCase{"*", "", true},
        GlobCase{"/proc/*info", "/proc/meminfo", true},
        GlobCase{"/proc/*info", "/proc/cpuinfo", true},
        GlobCase{"/proc/*info", "/proc/stat", false}));

// ---------- TablePrinter ----------

TEST(Table, AlignedOutput) {
  TablePrinter table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  const auto text = table.to_string();
  EXPECT_NE(text.find("alpha  1"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvEscaping) {
  TablePrinter table({"x"});
  table.add_row({"has,comma"});
  table.add_row({"has\"quote"});
  const auto csv = table.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, FixedFormatsDecimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

// ---------- Result ----------

TEST(Result, OkValueAccess) {
  Result<int> result(42);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.code(), StatusCode::kOk);
}

TEST(Result, ErrorPropagation) {
  Result<int> result(StatusCode::kNotFound, "missing");
  EXPECT_FALSE(result.is_ok());
  EXPECT_EQ(result.code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(-1), -1);
  EXPECT_THROW((void)result.value(), std::logic_error);
}

TEST(Result, OkStatusWithoutValueThrows) {
  EXPECT_THROW(Result<int>{Status::ok()}, std::logic_error);
}

TEST(Result, StatusToString) {
  EXPECT_EQ(Status::ok().to_string(), "OK");
  EXPECT_EQ(Status(StatusCode::kPermissionDenied, "x").to_string(),
            "PERMISSION_DENIED: x");
  EXPECT_EQ(to_string(StatusCode::kNotSupported), "NOT_SUPPORTED");
}

TEST(Result, StatusEqualityIgnoresMessages) {
  // operator== deliberately compares codes only, which makes it useless
  // for asserting *which* kNotFound came back — that's Matches' job.
  EXPECT_EQ(Status(StatusCode::kNotFound, "no such file"),
            Status(StatusCode::kNotFound, "completely different"));
  EXPECT_NE(Status(StatusCode::kNotFound, "same text"),
            Status(StatusCode::kUnavailable, "same text"));
}

TEST(Result, StatusMatchesChecksCodeAndMessage) {
  const Status status(StatusCode::kInvalidArgument,
                      "PowerModel::train: need at least 8 samples");
  EXPECT_TRUE(status.Matches(StatusCode::kInvalidArgument));
  EXPECT_TRUE(status.Matches(StatusCode::kInvalidArgument, "at least 8"));
  EXPECT_FALSE(status.Matches(StatusCode::kInvalidArgument, "at most 8"));
  EXPECT_FALSE(status.Matches(StatusCode::kNotFound, "at least 8"));
  // Empty substring degrades to a pure code check, including on OK.
  EXPECT_TRUE(Status::ok().Matches(StatusCode::kOk));
  EXPECT_FALSE(Status::ok().Matches(StatusCode::kOk, "anything"));
}

// ---------- env ----------

TEST(Env, EnvLongParsesNumbersStrictly) {
  constexpr const char* kName = "CLEAKS_TEST_ENV_LONG";
  unsetenv(kName);
  EXPECT_EQ(env_long(kName), std::nullopt);
  setenv(kName, "42", 1);
  EXPECT_EQ(env_long(kName), 42L);
  setenv(kName, "-7", 1);
  EXPECT_EQ(env_long(kName), -7L);
  setenv(kName, " 13x", 1);  // strtol semantics: leading space, junk tail
  EXPECT_EQ(env_long(kName), 13L);
  // The bug family this helper retires: non-numeric values must read as
  // "unset", never as 0.
  setenv(kName, "true", 1);
  EXPECT_EQ(env_long(kName), std::nullopt);
  setenv(kName, "", 1);
  EXPECT_EQ(env_long(kName), std::nullopt);
  setenv(kName, "x9", 1);
  EXPECT_EQ(env_long(kName), std::nullopt);
  setenv(kName, "999999999999999999999999", 1);  // saturates, not UB
  EXPECT_EQ(env_long(kName), LONG_MAX);
  unsetenv(kName);
}

TEST(Env, EnvLongOrFallsBackOnlyWhenUnparseable) {
  constexpr const char* kName = "CLEAKS_TEST_ENV_LONG_OR";
  unsetenv(kName);
  EXPECT_EQ(env_long_or(kName, 5), 5L);
  setenv(kName, "0", 1);
  EXPECT_EQ(env_long_or(kName, 5), 0L);
  setenv(kName, "yes", 1);
  EXPECT_EQ(env_long_or(kName, 5), 5L);
  unsetenv(kName);
}

}  // namespace
}  // namespace cleaks
