// Telemetry subsystem: deterministic lane-sharded metrics, the sim-time
// span tracer, and the exporters behind every bench emission. The core
// contract under test is the PR-1 invariant extended to telemetry: merged
// metric values, snapshot digests and drained traces are bitwise identical
// for every thread-pool lane count.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cloud/profiles.h"
#include "cloud/server.h"
#include "leakage/detector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace cleaks::obs {
namespace {

// ---------- counters ----------

TEST(Counter, MergesLaneShardsToOneTotal) {
  Registry registry;
  Counter& counter = registry.counter("requests_total", "help");
  ThreadPool pool(4);
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) counter.inc();
  });
  EXPECT_EQ(counter.value(), 1000u);
}

TEST(Counter, ValueIdenticalAcrossLaneCounts) {
  auto run = [](int lanes) {
    Registry registry;
    Counter& counter = registry.counter("c", "");
    ThreadPool pool(lanes);
    pool.parallel_for(777, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) counter.inc(i % 3 + 1);
    });
    return counter.value();
  };
  const std::uint64_t serial = run(1);
  for (int lanes : {2, 4, 8}) {
    EXPECT_EQ(run(lanes), serial) << lanes << " lanes";
  }
}

TEST(Registry, CounterIsFindOrCreateWithStableAddress) {
  Registry registry;
  Counter& first = registry.counter("same_name", "help");
  Counter& second = registry.counter("same_name", "different help ignored");
  EXPECT_EQ(&first, &second);
  first.inc(5);
  registry.reset();            // zeroes in place...
  EXPECT_EQ(first.value(), 0u);
  first.inc(2);                // ...handles stay usable
  EXPECT_EQ(second.value(), 2u);
}

// ---------- gauges ----------

TEST(Gauge, RoundTripsDoublesBitExactly) {
  Registry registry;
  Gauge& gauge = registry.gauge("g", "");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(1234.5678);
  EXPECT_EQ(gauge.value(), 1234.5678);
  gauge.set(-0.25);
  EXPECT_EQ(gauge.value(), -0.25);
}

// ---------- histograms ----------

TEST(Histogram, BucketsByInclusiveUpperBound) {
  Registry registry;
  Histogram& hist = registry.histogram("h", {10, 20, 30}, "");
  for (std::uint64_t value : {5ull, 10ull, 11ull, 20ull, 30ull, 31ull, 99ull}) {
    hist.observe(value);
  }
  const auto counts = hist.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);  // 5, 10
  EXPECT_EQ(counts[1], 2u);  // 11, 20
  EXPECT_EQ(counts[2], 1u);  // 30
  EXPECT_EQ(hist.overflow(), 2u);  // 31, 99
  EXPECT_EQ(hist.sum(), 5u + 10 + 11 + 20 + 30 + 31 + 99);
  EXPECT_EQ(hist.total_count(), 7u);
}

TEST(Histogram, MergeIdenticalAcrossLaneCounts) {
  auto run = [](int lanes) {
    Registry registry;
    Histogram& hist = registry.histogram("h", {100, 200, 400}, "");
    ThreadPool pool(lanes);
    pool.parallel_for(500, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hist.observe(i);
    });
    auto merged = hist.counts();
    merged.push_back(hist.overflow());
    merged.push_back(hist.sum());
    return merged;
  };
  const auto serial = run(1);
  for (int lanes : {2, 4, 8}) {
    EXPECT_EQ(run(lanes), serial) << lanes << " lanes";
  }
}

// ---------- snapshot + digest ----------

TEST(Snapshot, SimDigestIdenticalAcrossLaneCounts) {
  auto run = [](int lanes) {
    Registry registry;
    Counter& counter = registry.counter("work_total", "");
    Histogram& hist = registry.histogram("work_size", {64, 256}, "");
    ThreadPool pool(lanes);
    pool.parallel_for(300, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        counter.inc();
        hist.observe(i * 7 % 512);
      }
    });
    registry.gauge("level", "").set(41.5);
    return registry.snapshot().digest(Scope::kSim);
  };
  const std::uint64_t serial = run(1);
  for (int lanes : {2, 4, 8}) {
    EXPECT_EQ(run(lanes), serial) << lanes << " lanes";
  }
}

TEST(Snapshot, RuntimeMetricsExcludedFromSimDigest) {
  Registry registry;
  registry.counter("sim_total", "").inc(3);
  Counter& runtime_counter =
      registry.counter("wall_total", "", Scope::kRuntime);
  Counter& lanes = registry.lane_counter("lane_total", "");
  const std::uint64_t before = registry.snapshot().digest(Scope::kSim);
  runtime_counter.inc(99);
  lanes.inc(7);
  EXPECT_EQ(registry.snapshot().digest(Scope::kSim), before);
  EXPECT_NE(registry.snapshot().digest(Scope::kRuntime), before);
}

// ---------- exporters ----------

TEST(Prometheus, GoldenRendering) {
  Registry registry;
  registry.counter("reads_total", "total reads").inc(3);
  registry.gauge("power_w", "live power").set(2.5);
  Histogram& hist = registry.histogram("latency", {10, 20}, "render time");
  hist.observe(5);
  hist.observe(15);
  hist.observe(99);
  registry.lane_counter("chunks_total", "per-lane chunks").inc(4);

  const std::string expected =
      "# HELP cleaks_chunks_total per-lane chunks\n"
      "# TYPE cleaks_chunks_total counter\n"
      "cleaks_chunks_total{lane=\"0\"} 4\n"
      "# HELP cleaks_latency render time\n"
      "# TYPE cleaks_latency histogram\n"
      "cleaks_latency_bucket{le=\"10\"} 1\n"
      "cleaks_latency_bucket{le=\"20\"} 2\n"
      "cleaks_latency_bucket{le=\"+Inf\"} 3\n"
      "cleaks_latency_sum 119\n"
      "cleaks_latency_count 3\n"
      "# HELP cleaks_power_w live power\n"
      "# TYPE cleaks_power_w gauge\n"
      "cleaks_power_w 2.5\n"
      "# HELP cleaks_reads_total total reads\n"
      "# TYPE cleaks_reads_total counter\n"
      "cleaks_reads_total 3\n";
  EXPECT_EQ(to_prometheus(registry.snapshot()), expected);
}

TEST(JsonExport, GoldenMetricsBlock) {
  Registry registry;
  registry.counter("reads_total", "").inc(2);
  registry.gauge("xi", "").set(0.25);

  JsonWriter writer;
  append_metrics_json(registry.snapshot(), writer);
  const std::string text = writer.str();
  EXPECT_NE(text.find("\"schema\": \"cleaks-metrics-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"reads_total\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"xi\": 0.25"), std::string::npos);
  char digest_hex[24];
  std::snprintf(digest_hex, sizeof digest_hex, "\"%016llx\"",
                static_cast<unsigned long long>(
                    registry.snapshot().digest(Scope::kSim)));
  EXPECT_NE(text.find(digest_hex), std::string::npos);
}

TEST(JsonWriter, EscapesAndNests) {
  JsonWriter writer;
  writer.field("quote", "a\"b\\c\nd");
  writer.begin_array("items").element(1).element(std::uint64_t{2}).end_array();
  writer.begin_object("child").field("flag", true).end_object();
  const std::string text = writer.str();
  EXPECT_NE(text.find("a\\\"b\\\\c\\nd"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text.front(), '{');
}

TEST(BenchReport, WritesEnvelopeToBenchDir) {
  char dir_template[] = "/tmp/cleaks_obs_test_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("CLEAKS_BENCH_DIR", dir_template, 1);

  Registry registry;
  registry.counter("n", "").inc();
  BenchReport report("exporter_test");
  report.json().field("payload", 7);
  const std::string path = report.write(registry);
  unsetenv("CLEAKS_BENCH_DIR");

  ASSERT_EQ(path, std::string(dir_template) + "/BENCH_exporter_test.json");
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string text(1 << 14, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), file));
  std::fclose(file);
  std::remove(path.c_str());
  std::remove(dir_template);

  EXPECT_NE(text.find("\"schema\": \"cleaks-bench-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"bench\": \"exporter_test\""), std::string::npos);
  EXPECT_NE(text.find("\"payload\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);
  // Second write is a no-op (the envelope is already closed).
  EXPECT_EQ(report.write(registry), "");
}

// ---------- span tracer ----------

TEST(SpanTracer, DrainSortsByStartEndName) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  tracer.record("b", 10, 20);
  tracer.record("a", 10, 20);
  tracer.record("z", 5, 6);
  tracer.record("a", 10, 15);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "z");
  EXPECT_EQ(spans[1].name, "a");
  EXPECT_EQ(spans[1].end, 15u);
  EXPECT_EQ(spans[2].name, "a");
  EXPECT_EQ(spans[3].name, "b");
  EXPECT_TRUE(tracer.drain().empty());  // drain clears
}

TEST(SpanTracer, OrderingIdenticalAcrossLaneCounts) {
  auto run = [](int lanes) {
    SpanTracer tracer;
    tracer.set_enabled(true);
    ThreadPool pool(lanes);
    pool.parallel_for(400, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        // Sim-times derived from the index: the span *set* is identical at
        // every lane count even though lane assignment is not.
        tracer.record(i % 2 == 0 ? "even" : "odd", i, i + 3);
      }
    });
    return SpanTracer::digest(tracer.drain());
  };
  const std::uint64_t serial = run(1);
  for (int lanes : {2, 4, 8}) {
    EXPECT_EQ(run(lanes), serial) << lanes << " lanes";
  }
}

TEST(SpanTracer, DisabledRecordsNothing) {
  SpanTracer tracer;
  tracer.record("ignored", 1, 2);
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(SpanTracer, RingWrapsAndCountsDrops) {
  SpanTracer tracer;
  tracer.set_capacity(4);
  tracer.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) tracer.record("s", i, i + 1);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 4u);  // the newest four survive
  EXPECT_EQ(spans.front().start, 6u);
  EXPECT_EQ(spans.back().start, 9u);
  EXPECT_EQ(tracer.dropped(), 0u);  // drain resets the drop count
}

TEST(ScopedSpan, RecordsSimTimeWindow) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  SimTime clock = 100;
  {
    ScopedSpan span(tracer, "phase", [&] { return clock; });
    clock = 250;
  }
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "phase");
  EXPECT_EQ(spans[0].start, 100u);
  EXPECT_EQ(spans[0].end, 250u);
}

// ---------- /proc/containerleaks capstone ----------

TEST(ContainerLeaksFile, HostSeesTelemetryContainerSeesScopedStub) {
  cloud::Server server("obs-host", cloud::local_testbed(), 9, kDay);
  const fs::ViewContext host_ctx{};
  const auto host_view = server.fs().read("/proc/containerleaks", host_ctx);
  ASSERT_TRUE(host_view.is_ok());
  EXPECT_NE(host_view.value().find("# cleaks telemetry: host view"),
            std::string::npos);

  auto instance = server.runtime().create({});
  const auto container_view = instance->read_file("/proc/containerleaks");
  ASSERT_TRUE(container_view.is_ok());
  EXPECT_NE(container_view.value(), host_view.value());
  EXPECT_NE(container_view.value().find("namespaced view"),
            std::string::npos);
  EXPECT_NE(container_view.value().find(instance->id()), std::string::npos);
}

TEST(ContainerLeaksFile, HostRenderIsNotServedStale) {
  // The file is registered kUncacheable: registry updates must show up in
  // the next read even though the host generation never moved.
  cloud::Server server("obs-host", cloud::local_testbed(), 9, kDay);
  const fs::ViewContext host_ctx{};
  const auto before = server.fs().read("/proc/containerleaks", host_ctx);
  Registry::global()
      .counter("obs_test_poke_total", "cache-bypass witness")
      .inc();
  const auto after = server.fs().read("/proc/containerleaks", host_ctx);
  ASSERT_TRUE(before.is_ok());
  ASSERT_TRUE(after.is_ok());
  EXPECT_NE(before.value(), after.value());
  EXPECT_NE(after.value().find("obs_test_poke_total"), std::string::npos);
}

TEST(ContainerLeaksFile, ScanClassifiesAsNamespaced) {
  cloud::Server server("obs-host", cloud::local_testbed(), 77, 40 * kDay);
  leakage::CrossValidator validator(server);
  for (const auto& finding : validator.scan()) {
    if (finding.path == "/proc/containerleaks") {
      EXPECT_EQ(finding.cls, leakage::LeakClass::kNamespaced);
      return;
    }
  }
  FAIL() << "/proc/containerleaks missing from scan findings";
}

}  // namespace
}  // namespace cleaks::obs
