// Telemetry subsystem: deterministic lane-sharded metrics, the sim-time
// span tracer, and the exporters behind every bench emission. The core
// contract under test is the PR-1 invariant extended to telemetry: merged
// metric values, snapshot digests and drained traces are bitwise identical
// for every thread-pool lane count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <regex>
#include <string>
#include <vector>

#include "cloud/profiles.h"
#include "cloud/server.h"
#include "faults/plan.h"
#include "leakage/detector.h"
#include "obs/events.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stream.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/scenario.h"
#include "util/thread_pool.h"

namespace cleaks::obs {
namespace {

// ---------- counters ----------

TEST(Counter, MergesLaneShardsToOneTotal) {
  Registry registry;
  Counter& counter = registry.counter("requests_total", "help");
  ThreadPool pool(4);
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) counter.inc();
  });
  EXPECT_EQ(counter.value(), 1000u);
}

TEST(Counter, ValueIdenticalAcrossLaneCounts) {
  auto run = [](int lanes) {
    Registry registry;
    Counter& counter = registry.counter("c", "");
    ThreadPool pool(lanes);
    pool.parallel_for(777, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) counter.inc(i % 3 + 1);
    });
    return counter.value();
  };
  const std::uint64_t serial = run(1);
  for (int lanes : {2, 4, 8}) {
    EXPECT_EQ(run(lanes), serial) << lanes << " lanes";
  }
}

TEST(Registry, CounterIsFindOrCreateWithStableAddress) {
  Registry registry;
  Counter& first = registry.counter("same_name", "help");
  Counter& second = registry.counter("same_name", "different help ignored");
  EXPECT_EQ(&first, &second);
  first.inc(5);
  registry.reset();            // zeroes in place...
  EXPECT_EQ(first.value(), 0u);
  first.inc(2);                // ...handles stay usable
  EXPECT_EQ(second.value(), 2u);
}

// ---------- gauges ----------

TEST(Gauge, RoundTripsDoublesBitExactly) {
  Registry registry;
  Gauge& gauge = registry.gauge("g", "");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(1234.5678);
  EXPECT_EQ(gauge.value(), 1234.5678);
  gauge.set(-0.25);
  EXPECT_EQ(gauge.value(), -0.25);
}

// ---------- histograms ----------

TEST(Histogram, BucketsByInclusiveUpperBound) {
  Registry registry;
  Histogram& hist = registry.histogram("h", {10, 20, 30}, "");
  for (std::uint64_t value : {5ull, 10ull, 11ull, 20ull, 30ull, 31ull, 99ull}) {
    hist.observe(value);
  }
  const auto counts = hist.counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 2u);  // 5, 10
  EXPECT_EQ(counts[1], 2u);  // 11, 20
  EXPECT_EQ(counts[2], 1u);  // 30
  EXPECT_EQ(hist.overflow(), 2u);  // 31, 99
  EXPECT_EQ(hist.sum(), 5u + 10 + 11 + 20 + 30 + 31 + 99);
  EXPECT_EQ(hist.total_count(), 7u);
}

TEST(Histogram, MergeIdenticalAcrossLaneCounts) {
  auto run = [](int lanes) {
    Registry registry;
    Histogram& hist = registry.histogram("h", {100, 200, 400}, "");
    ThreadPool pool(lanes);
    pool.parallel_for(500, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hist.observe(i);
    });
    auto merged = hist.counts();
    merged.push_back(hist.overflow());
    merged.push_back(hist.sum());
    return merged;
  };
  const auto serial = run(1);
  for (int lanes : {2, 4, 8}) {
    EXPECT_EQ(run(lanes), serial) << lanes << " lanes";
  }
}

// ---------- snapshot + digest ----------

TEST(Snapshot, SimDigestIdenticalAcrossLaneCounts) {
  auto run = [](int lanes) {
    Registry registry;
    Counter& counter = registry.counter("work_total", "");
    Histogram& hist = registry.histogram("work_size", {64, 256}, "");
    ThreadPool pool(lanes);
    pool.parallel_for(300, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        counter.inc();
        hist.observe(i * 7 % 512);
      }
    });
    registry.gauge("level", "").set(41.5);
    return registry.snapshot().digest(Scope::kSim);
  };
  const std::uint64_t serial = run(1);
  for (int lanes : {2, 4, 8}) {
    EXPECT_EQ(run(lanes), serial) << lanes << " lanes";
  }
}

TEST(Snapshot, RuntimeMetricsExcludedFromSimDigest) {
  Registry registry;
  registry.counter("sim_total", "").inc(3);
  Counter& runtime_counter =
      registry.counter("wall_total", "", Scope::kRuntime);
  Counter& lanes = registry.lane_counter("lane_total", "");
  const std::uint64_t before = registry.snapshot().digest(Scope::kSim);
  runtime_counter.inc(99);
  lanes.inc(7);
  EXPECT_EQ(registry.snapshot().digest(Scope::kSim), before);
  EXPECT_NE(registry.snapshot().digest(Scope::kRuntime), before);
}

// ---------- exporters ----------

TEST(Prometheus, GoldenRendering) {
  Registry registry;
  registry.counter("reads_total", "total reads").inc(3);
  registry.gauge("power_w", "live power").set(2.5);
  Histogram& hist = registry.histogram("latency", {10, 20}, "render time");
  hist.observe(5);
  hist.observe(15);
  hist.observe(99);
  registry.lane_counter("chunks_total", "per-lane chunks").inc(4);

  const std::string expected =
      "# HELP cleaks_chunks_total per-lane chunks\n"
      "# TYPE cleaks_chunks_total counter\n"
      "cleaks_chunks_total{lane=\"0\"} 4\n"
      "# HELP cleaks_latency render time\n"
      "# TYPE cleaks_latency histogram\n"
      "cleaks_latency_bucket{le=\"10\"} 1\n"
      "cleaks_latency_bucket{le=\"20\"} 2\n"
      "cleaks_latency_bucket{le=\"+Inf\"} 3\n"
      "cleaks_latency_sum 119\n"
      "cleaks_latency_count 3\n"
      "# HELP cleaks_power_w live power\n"
      "# TYPE cleaks_power_w gauge\n"
      "cleaks_power_w 2.5\n"
      "# HELP cleaks_reads_total total reads\n"
      "# TYPE cleaks_reads_total counter\n"
      "cleaks_reads_total 3\n";
  EXPECT_EQ(to_prometheus(registry.snapshot()), expected);
}

TEST(JsonExport, GoldenMetricsBlock) {
  Registry registry;
  registry.counter("reads_total", "").inc(2);
  registry.gauge("xi", "").set(0.25);

  JsonWriter writer;
  append_metrics_json(registry.snapshot(), writer);
  const std::string text = writer.str();
  EXPECT_NE(text.find("\"schema\": \"cleaks-metrics-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"reads_total\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"xi\": 0.25"), std::string::npos);
  char digest_hex[24];
  std::snprintf(digest_hex, sizeof digest_hex, "\"%016llx\"",
                static_cast<unsigned long long>(
                    registry.snapshot().digest(Scope::kSim)));
  EXPECT_NE(text.find(digest_hex), std::string::npos);
}

TEST(JsonWriter, EscapesAndNests) {
  JsonWriter writer;
  writer.field("quote", "a\"b\\c\nd");
  writer.begin_array("items").element(1).element(std::uint64_t{2}).end_array();
  writer.begin_object("child").field("flag", true).end_object();
  const std::string text = writer.str();
  EXPECT_NE(text.find("a\\\"b\\\\c\\nd"), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
  EXPECT_EQ(text.front(), '{');
}

TEST(BenchReport, WritesEnvelopeToBenchDir) {
  char dir_template[] = "/tmp/cleaks_obs_test_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("CLEAKS_BENCH_DIR", dir_template, 1);

  Registry registry;
  registry.counter("n", "").inc();
  BenchReport report("exporter_test");
  report.json().field("payload", 7);
  const std::string path = report.write(registry);
  unsetenv("CLEAKS_BENCH_DIR");

  ASSERT_EQ(path, std::string(dir_template) + "/BENCH_exporter_test.json");
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string text(1 << 14, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), file));
  std::fclose(file);
  std::remove(path.c_str());
  std::remove(dir_template);

  EXPECT_NE(text.find("\"schema\": \"cleaks-bench-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"bench\": \"exporter_test\""), std::string::npos);
  EXPECT_NE(text.find("\"payload\": 7"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\""), std::string::npos);
  // Second write is a no-op (the envelope is already closed).
  EXPECT_EQ(report.write(registry), "");
}

// ---------- span tracer ----------

TEST(SpanTracer, DrainSortsByStartEndName) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  tracer.record("b", 10, 20);
  tracer.record("a", 10, 20);
  tracer.record("z", 5, 6);
  tracer.record("a", 10, 15);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "z");
  EXPECT_EQ(spans[1].name, "a");
  EXPECT_EQ(spans[1].end, 15u);
  EXPECT_EQ(spans[2].name, "a");
  EXPECT_EQ(spans[3].name, "b");
  EXPECT_TRUE(tracer.drain().empty());  // drain clears
}

TEST(SpanTracer, OrderingIdenticalAcrossLaneCounts) {
  auto run = [](int lanes) {
    SpanTracer tracer;
    tracer.set_enabled(true);
    ThreadPool pool(lanes);
    pool.parallel_for(400, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        // Sim-times derived from the index: the span *set* is identical at
        // every lane count even though lane assignment is not.
        tracer.record(i % 2 == 0 ? "even" : "odd", i, i + 3);
      }
    });
    return SpanTracer::digest(tracer.drain());
  };
  const std::uint64_t serial = run(1);
  for (int lanes : {2, 4, 8}) {
    EXPECT_EQ(run(lanes), serial) << lanes << " lanes";
  }
}

TEST(SpanTracer, DisabledRecordsNothing) {
  SpanTracer tracer;
  tracer.record("ignored", 1, 2);
  EXPECT_TRUE(tracer.drain().empty());
}

TEST(SpanTracer, RingWrapsAndCountsDrops) {
  SpanTracer tracer;
  tracer.set_capacity(4);
  tracer.set_enabled(true);
  for (std::uint64_t i = 0; i < 10; ++i) tracer.record("s", i, i + 1);
  EXPECT_EQ(tracer.dropped(), 6u);
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 4u);  // the newest four survive
  EXPECT_EQ(spans.front().start, 6u);
  EXPECT_EQ(spans.back().start, 9u);
  EXPECT_EQ(tracer.dropped(), 0u);  // drain resets the drop count
}

TEST(ScopedSpan, RecordsSimTimeWindow) {
  SpanTracer tracer;
  tracer.set_enabled(true);
  SimTime clock = 100;
  {
    ScopedSpan span(tracer, "phase", [&] { return clock; });
    clock = 250;
  }
  const auto spans = tracer.drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "phase");
  EXPECT_EQ(spans[0].start, 100u);
  EXPECT_EQ(spans[0].end, 250u);
}

// ---------- /proc/containerleaks capstone ----------

TEST(ContainerLeaksFile, HostSeesTelemetryContainerSeesScopedStub) {
  cloud::Server server("obs-host", cloud::local_testbed(), 9, kDay);
  const fs::ViewContext host_ctx{};
  const auto host_view = server.fs().read("/proc/containerleaks", host_ctx);
  ASSERT_TRUE(host_view.is_ok());
  EXPECT_NE(host_view.value().find("# cleaks telemetry: host view"),
            std::string::npos);

  auto instance = server.runtime().create({});
  const auto container_view = instance->read_file("/proc/containerleaks");
  ASSERT_TRUE(container_view.is_ok());
  EXPECT_NE(container_view.value(), host_view.value());
  EXPECT_NE(container_view.value().find("namespaced view"),
            std::string::npos);
  EXPECT_NE(container_view.value().find(instance->id()), std::string::npos);
}

TEST(ContainerLeaksFile, HostRenderIsNotServedStale) {
  // The file is registered kUncacheable: registry updates must show up in
  // the next read even though the host generation never moved.
  cloud::Server server("obs-host", cloud::local_testbed(), 9, kDay);
  const fs::ViewContext host_ctx{};
  const auto before = server.fs().read("/proc/containerleaks", host_ctx);
  Registry::global()
      .counter("obs_test_poke_total", "cache-bypass witness")
      .inc();
  const auto after = server.fs().read("/proc/containerleaks", host_ctx);
  ASSERT_TRUE(before.is_ok());
  ASSERT_TRUE(after.is_ok());
  EXPECT_NE(before.value(), after.value());
  EXPECT_NE(after.value().find("obs_test_poke_total"), std::string::npos);
}

TEST(ContainerLeaksFile, ScanClassifiesAsNamespaced) {
  cloud::Server server("obs-host", cloud::local_testbed(), 77, 40 * kDay);
  leakage::CrossValidator validator(server);
  for (const auto& finding : validator.scan()) {
    if (finding.path == "/proc/containerleaks") {
      EXPECT_EQ(finding.cls, leakage::LeakClass::kNamespaced);
      return;
    }
  }
  FAIL() << "/proc/containerleaks missing from scan findings";
}

// ---------- event bus ----------

TEST(EventBus, CapacityRoundsUpToPowerOfTwo) {
  EventBus bus;
  bus.set_capacity(3);
  EXPECT_EQ(bus.capacity(), 4u);
  bus.set_capacity(4);
  EXPECT_EQ(bus.capacity(), 4u);
  bus.set_capacity(65);
  EXPECT_EQ(bus.capacity(), 128u);
}

TEST(EventBus, TinyRingOverwritesOldestAndCountsDrops) {
  EventBus bus;
  bus.set_capacity(4);
  bus.set_enabled(true);
  for (std::uint64_t i = 0; i < 7; ++i) {
    bus.emit(EventKind::kRaplSample, static_cast<SimTime>(i), /*source=*/0, i);
  }
  EXPECT_EQ(bus.dropped(), 3u);  // counted, never silent
  const auto events = bus.drain();
  ASSERT_EQ(events.size(), 4u);  // the 4 newest survive, oldest-first
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].a, i + 3);
  }
  EXPECT_EQ(bus.dropped(), 0u);  // drain resets the wrap accounting
  EXPECT_TRUE(bus.drain().empty());
}

TEST(EventBus, MergedStreamAndDigestIdenticalAcrossLaneCounts) {
  // The same logical events, emitted from differently-chunked parallel
  // loops, must merge to one bitwise-identical stream: lane placement is
  // scheduling luck, the content sort erases it.
  auto run = [](int lanes) {
    EventBus bus;
    bus.set_enabled(true);
    ThreadPool pool(lanes);
    pool.parallel_for(64, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        bus.emit(EventKind::kScanFinding, static_cast<SimTime>(i % 7),
                 static_cast<std::uint32_t>(i), i * 3, i % 2);
      }
    });
    const auto merged = bus.drain();
    return std::pair(merged, EventBus::digest(merged));
  };
  const auto [reference, reference_digest] = run(1);
  ASSERT_EQ(reference.size(), 64u);
  for (int lanes : {2, 4, 8}) {
    const auto [merged, digest] = run(lanes);
    EXPECT_EQ(merged, reference) << lanes << " lanes";
    EXPECT_EQ(digest, reference_digest) << lanes << " lanes";
  }
}

// ---------- windowed aggregation ----------

TEST(WindowAggregator, EdgeEventBelongsToNextWindowOnly) {
  WindowAggregator agg(10 * kSecond);
  std::vector<Event> batch;
  batch.push_back({5 * kSecond, EventKind::kRaplSample, 1, 0, 0});
  batch.push_back({10 * kSecond, EventKind::kRaplSample, 1, 0, 0});  // edge
  agg.feed(batch);
  agg.flush();
  ASSERT_EQ(agg.windows().size(), 2u);
  EXPECT_EQ(agg.windows()[0].start, 0);
  EXPECT_EQ(agg.windows()[0].end, 10 * kSecond);
  EXPECT_EQ(agg.windows()[0].total, 1u);  // only the 5 s event
  EXPECT_EQ(agg.windows()[1].start, 10 * kSecond);
  EXPECT_EQ(agg.windows()[1].total, 1u);  // the edge event, exactly once
}

TEST(WindowAggregator, SkipsEmptyWindowsAndCountsByKindAndSource) {
  WindowAggregator agg(kSecond);
  std::vector<Event> batch;
  batch.push_back({100, EventKind::kCtxSwitch, 3, 0, 0});
  batch.push_back({200, EventKind::kCtxSwitch, 5, 0, 0});
  batch.push_back({5 * kSecond + 1, EventKind::kFaultInjected, 3, 0, 0});
  agg.feed(batch);
  agg.flush();
  ASSERT_EQ(agg.windows().size(), 2u);  // [0,1s) and [5s,6s); gaps skipped
  const auto& first = agg.windows()[0];
  EXPECT_EQ(first.total, 2u);
  EXPECT_EQ(first.by_kind[static_cast<std::size_t>(EventKind::kCtxSwitch)],
            2u);
  ASSERT_EQ(first.by_source.size(), 2u);
  EXPECT_EQ(first.by_source[0], (std::pair<std::uint32_t, std::uint64_t>{3, 1}));
  EXPECT_EQ(agg.windows()[1].start, 5 * kSecond);
}

// ---------- flight recorder ----------

TEST(FlightRecorder, EvictsOutsideWindowAndDumpsSchema) {
  FlightRecorder recorder;
  recorder.set_enabled(true);
  recorder.set_window(10 * kSecond);
  std::vector<Event> batch;
  batch.push_back({kSecond, EventKind::kRaplSample, 0, 1, 0});
  batch.push_back({2 * kSecond, EventKind::kRaplSample, 0, 2, 0});
  recorder.feed(batch);
  EXPECT_EQ(recorder.buffered().size(), 2u);
  batch.clear();
  batch.push_back({20 * kSecond, EventKind::kRaplSample, 0, 3, 0});
  recorder.feed(batch);  // latest 20 s, keep 10 s: the 1 s/2 s events go
  ASSERT_EQ(recorder.buffered().size(), 1u);
  EXPECT_EQ(recorder.buffered().front().time, 20 * kSecond);
  const std::string dump = recorder.dump_json();
  EXPECT_NE(dump.find("\"schema\": \"cleaks-events-v1\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\": \"rapl_sample\""), std::string::npos);
}

TEST(FlightRecorder, BenchCheckFailureDumpsBlackBox) {
  char dir_template[] = "/tmp/cleaks_flight_test_XXXXXX";
  ASSERT_NE(mkdtemp(dir_template), nullptr);
  setenv("CLEAKS_BENCH_DIR", dir_template, 1);
  auto& recorder = FlightRecorder::global();
  recorder.set_enabled(true);
  std::vector<Event> batch;
  batch.push_back({kSecond, EventKind::kFaultInjected, 9, 13, 0});
  recorder.feed(batch);

  EXPECT_TRUE(bench_check(true, "obs_flight", "never fires"));
  EXPECT_FALSE(bench_check(false, "obs_flight", "injected bench failure"));

  recorder.set_enabled(false);
  unsetenv("CLEAKS_BENCH_DIR");
  const std::string path =
      std::string(dir_template) + "/FLIGHT_obs_flight.json";
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr) << "failed bench_check must dump the recorder";
  std::string text(1 << 14, '\0');
  text.resize(std::fread(text.data(), 1, text.size(), file));
  std::fclose(file);
  std::remove(path.c_str());
  std::remove(dir_template);
  EXPECT_NE(text.find("\"schema\": \"cleaks-events-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\": \"fault_injected\""), std::string::npos);
}

// ---------- engine-drained stream: the determinism pin ----------

sim::ScenarioSpec faulted_facility(int lanes) {
  sim::ScenarioSpec spec;
  spec.name = "obs-event-stream";
  spec.datacenter.num_racks = 3;
  spec.datacenter.servers_per_rack = 2;
  spec.datacenter.rack_breaker.rated_w = 4000.0;
  spec.datacenter.seed = 7;
  spec.datacenter.num_threads = lanes;
  sim::ProviderSpec provider;
  provider.seed = 21;
  spec.provider = provider;
  // Monitored fleet: the per-step RAPL reads are container-context reads
  // of fault-covered paths, so kFaultInjected events actually fire.
  spec.fleet.placement = sim::FleetSpec::Placement::kProviderLaunch;
  spec.fleet.count = 2;
  spec.fleet.monitors = true;
  spec.fleet.control = sim::FleetSpec::Control::kMonitor;
  faults::FaultRule rule;
  rule.kind = faults::FaultKind::kTransientUnavailable;
  rule.path_glob = "**";
  rule.rate = 0.5;
  rule.period = 2 * kSecond;
  rule.duration = 500 * kMillisecond;
  spec.faults.seed = 12;
  spec.faults.rules.push_back(rule);
  return spec;
}

struct StreamRun {
  std::uint64_t stream_digest = 0;
  std::uint64_t window_digest = 0;
  std::uint64_t drained = 0;
  std::uint64_t dropped = 0;
  std::uint64_t sim_digest = 0;
  double peak_w = 0.0;
};

StreamRun run_faulted_facility(int lanes, bool with_stream) {
  Registry::global().reset();
  auto& bus = EventBus::global();
  (void)bus.drain();
  // Enable before construction so build-time producers (provider
  // launches, cgroup setup) land in the stream's first drained batch.
  if (with_stream) bus.set_enabled(true);
  sim::SimEngine engine(faulted_facility(lanes));
  if (with_stream) engine.enable_event_stream(25 * kSecond);
  engine.run_steps(200, kSecond);
  StreamRun run;
  run.stream_digest = engine.event_stream_digest();
  if (auto* agg = engine.window_aggregator()) {
    agg->flush();
    run.window_digest = agg->digest();
  }
  run.drained = engine.events_drained();
  run.dropped = bus.dropped();
  run.sim_digest = Registry::global().snapshot().digest(Scope::kSim);
  run.peak_w = engine.result().peak_total_w;
  bus.set_enabled(false);
  (void)bus.drain();
  return run;
}

// Recorded from the 3-rack faulted facility above (200 steps, window
// 25 s). The merged stream is a pure function of the scenario, so this
// digest — like the sim_test scenario digests — must never move.
constexpr std::uint64_t kStreamGoldenDigest = 0x263ca36d48318514ull;

TEST(EventStream, FacilityDigestPinnedAndIdenticalAcrossLanes) {
  const StreamRun reference = run_faulted_facility(1, true);
  EXPECT_GT(reference.drained, 0u);
  EXPECT_EQ(reference.dropped, 0u);  // per-step drain never wraps a ring
  for (int lanes : {2, 4, 8}) {
    const StreamRun run = run_faulted_facility(lanes, true);
    EXPECT_EQ(run.stream_digest, reference.stream_digest)
        << lanes << " lanes";
    EXPECT_EQ(run.window_digest, reference.window_digest) << lanes
                                                          << " lanes";
    EXPECT_EQ(run.drained, reference.drained) << lanes << " lanes";
    EXPECT_EQ(run.dropped, 0u) << lanes << " lanes";
  }
  EXPECT_EQ(reference.stream_digest, kStreamGoldenDigest)
      << "actual 0x" << std::hex << reference.stream_digest;
}

TEST(EventStream, ObservationNeverPerturbsTheSim) {
  // Faulted reads emit kFaultInjected — but whether anyone is listening
  // must not change one simulated bit: registry digest and peak power are
  // identical with the stream on and off.
  const StreamRun off = run_faulted_facility(1, false);
  auto& recorder = FlightRecorder::global();
  recorder.set_enabled(true);
  recorder.set_window(500 * kSecond);
  const StreamRun on = run_faulted_facility(1, true);
  recorder.set_enabled(false);
  EXPECT_EQ(on.sim_digest, off.sim_digest);
  EXPECT_EQ(on.peak_w, off.peak_w);
  EXPECT_EQ(off.stream_digest, 0u);  // stream disabled: nothing drained
  // The engine fed the enabled recorder; the faults really were recorded.
  bool saw_fault = false;
  bool saw_lifecycle = false;
  for (const Event& event : recorder.buffered()) {
    saw_fault |= event.kind == EventKind::kFaultInjected;
    saw_lifecycle |= event.kind == EventKind::kContainerLifecycle;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_lifecycle);
}

// ---------- chrome trace export ----------

TEST(ChromeTrace, EmitsTracksCountersInstantsAndSlices) {
  std::vector<Event> events;
  events.push_back({kSecond, EventKind::kRaplSample, 0, 145'000, 99});
  events.push_back({kSecond, EventKind::kContainerLifecycle, 0, 1, 0xabcd});
  events.push_back({2 * kSecond, EventKind::kFaultInjected, 7, 13, 4});
  events.push_back({3 * kSecond, EventKind::kContainerLifecycle, 0, 0, 0xabcd});
  const std::string trace = to_chrome_trace(events);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"server-0\""), std::string::npos);  // process track
  EXPECT_NE(trace.find("\"ph\": \"C\""), std::string::npos);  // counter
  EXPECT_NE(trace.find("\"ph\": \"i\""), std::string::npos);  // instant
  EXPECT_NE(trace.find("\"ph\": \"b\""), std::string::npos);  // slice open
  EXPECT_NE(trace.find("\"ph\": \"e\""), std::string::npos);  // slice close
}

// ---------- prometheus exposition lint ----------

TEST(Prometheus, ExpositionFormatLint) {
  Registry registry;
  registry.counter("reads_total", "back\\slash and\nnewline").inc();
  registry.gauge("not_a_number", "NaN gauge").set(std::nan(""));
  registry.gauge("very_high", "inf gauge").set(HUGE_VAL);
  registry.gauge("very_low", "neg inf gauge").set(-HUGE_VAL);
  registry.histogram("lat", {5, 10}, "hist").observe(7);
  registry.lane_counter("lanes_total", "lane counter").inc(2);
  const std::string text = to_prometheus(registry.snapshot());

  // Non-finite floats must use the exposition spellings, and HELP must
  // escape backslash and newline.
  EXPECT_NE(text.find("cleaks_not_a_number NaN\n"), std::string::npos);
  EXPECT_NE(text.find("cleaks_very_high +Inf\n"), std::string::npos);
  EXPECT_NE(text.find("cleaks_very_low -Inf\n"), std::string::npos);
  EXPECT_NE(text.find("back\\\\slash and\\nnewline"), std::string::npos);

  // Line-level grammar lint: every line is a HELP, a TYPE with a known
  // metric type, or a sample whose value parses under the exposition
  // number grammar.
  const std::regex help_re(R"(# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*)");
  const std::regex type_re(
      R"(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram))");
  const std::regex sample_re(
      R"([a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (NaN|\+Inf|-Inf|[-+]?[0-9][0-9eE.+-]*))");
  std::size_t start = 0;
  int lines = 0;
  while (start < text.size()) {
    const std::size_t stop = text.find('\n', start);
    ASSERT_NE(stop, std::string::npos) << "file must end with a newline";
    const std::string line = text.substr(start, stop - start);
    start = stop + 1;
    ++lines;
    EXPECT_TRUE(std::regex_match(line, help_re) ||
                std::regex_match(line, type_re) ||
                std::regex_match(line, sample_re))
        << "non-conforming exposition line: " << line;
  }
  EXPECT_GT(lines, 10);
}

}  // namespace
}  // namespace cleaks::obs
