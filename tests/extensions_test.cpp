// Tests for the discussion/extension features: the no-RAPL attack path
// (§VII-A utilization monitor), the power-budget enforcer (§V-B's
// throttling application) and the thermal covert channel.
#include <gtest/gtest.h>

#include "containerleaks.h"

namespace cleaks {
namespace {

// ---------- UtilizationMonitor (§VII-A) ----------

TEST(UtilizationMonitor, TracksHostLoadWithoutRapl) {
  // CC4 hardware has no RAPL at all; /proc/stat still leaks utilization.
  cloud::CloudServiceProfile profile = cloud::cc4();
  profile.policy = fs::MaskingPolicy::docker_default();
  cloud::Server server("no-rapl", profile, 3);
  auto instance = server.runtime().create({});
  attack::UtilizationMonitor monitor(*instance);
  EXPECT_FALSE(monitor.sample_utilization(kSecond).has_value());  // priming
  server.step(5 * kSecond);
  const auto idle_util = monitor.sample_utilization(5 * kSecond);
  ASSERT_TRUE(idle_util.has_value());
  EXPECT_LT(*idle_util, 0.1);

  kernel::TaskBehavior busy;
  busy.duty_cycle = 1.0;
  const int cores = server.host().spec().num_cores;
  for (int i = 0; i < cores / 2; ++i) {
    server.host().spawn_task({.comm = "load", .behavior = busy});
  }
  server.step(5 * kSecond);
  const auto busy_util = monitor.sample_utilization(5 * kSecond);
  ASSERT_TRUE(busy_util.has_value());
  EXPECT_NEAR(*busy_util, 0.5, 0.1);  // half the cores saturated
}

TEST(UtilizationMonitor, BlindWhenStatIsMasked) {
  cloud::CloudServiceProfile profile = cloud::local_testbed();
  profile.policy.add_rule("/proc/stat", fs::MaskAction::kDeny);
  cloud::Server server("masked", profile, 4);
  auto instance = server.runtime().create({});
  attack::UtilizationMonitor monitor(*instance);
  server.step(kSecond);
  EXPECT_FALSE(monitor.sample_utilization(kSecond).has_value());
}

TEST(UtilizationMonitor, RestrictedStatShowsOnlyTenantCores) {
  // CC5-style restriction: the proxy only sees the tenant's own cpuset,
  // so a co-tenant's surge on other cores stays invisible — the partial
  // mitigation the paper observed.
  cloud::Server server("cc5", cloud::cc5(), 5);
  container::ContainerConfig config;
  config.num_cpus = 4;
  auto instance = server.runtime().create(config);
  attack::UtilizationMonitor monitor(*instance);
  monitor.sample_utilization(kSecond);
  server.step(2 * kSecond);
  const auto before = monitor.sample_utilization(2 * kSecond);
  ASSERT_TRUE(before.has_value());

  // Surge pinned to cores outside the tenant's cpuset.
  std::vector<int> other_cores;
  const auto& mine = instance->cpuset();
  for (int core = 0; core < server.host().spec().num_cores; ++core) {
    if (std::find(mine.begin(), mine.end(), core) == mine.end()) {
      other_cores.push_back(core);
    }
  }
  ASSERT_FALSE(other_cores.empty());
  kernel::TaskBehavior busy;
  busy.duty_cycle = 1.0;
  for (int core : other_cores) {
    kernel::Host::SpawnOptions options;
    options.comm = "elsewhere";
    options.behavior = busy;
    options.allowed_cpus = {core};
    server.host().spawn_task(options);
  }
  server.step(5 * kSecond);
  const auto during = monitor.sample_utilization(5 * kSecond);
  ASSERT_TRUE(during.has_value());
  EXPECT_LT(*during, *before + 0.1);  // surge invisible through CC5's view
}

// ---------- PowerBudgetEnforcer ----------

struct BudgetFixture {
  BudgetFixture()
      : server("budget", cloud::local_testbed(), 8),
        power_ns(server.runtime(),
                 defense::train_default_model(881).value()) {
    server.host().set_tick_duration(100 * kMillisecond);
    container::ContainerConfig config;
    config.num_cpus = 4;
    hungry = server.runtime().create(config);
    modest = server.runtime().create(config);
    power_ns.enable();
    server.step(2 * kSecond);
  }

  cloud::Server server;
  defense::PowerNamespace power_ns;
  std::shared_ptr<container::Container> hungry, modest;
};

TEST(PowerBudget, ThrottlesOverBudgetContainer) {
  BudgetFixture fixture;
  defense::BudgetPolicy policy;
  policy.default_budget_w = 15.0;
  defense::PowerBudgetEnforcer enforcer(fixture.server.runtime(),
                                        fixture.power_ns, policy);
  auto virus = workload::power_virus();
  for (int copy = 0; copy < 4; ++copy) {
    fixture.hungry->run("burner", virus.behavior);
  }
  for (int second = 0; second < 30; ++second) {
    fixture.server.step(kSecond);
    // Touch the read path so the namespace refreshes its per-container
    // power estimates, then run the control loop.
    (void)fixture.hungry->read_file(
        "/sys/class/powercap/intel-rapl:0/energy_uj");
    enforcer.step();
  }
  EXPECT_TRUE(enforcer.is_throttled(fixture.hungry->id()));
  EXPECT_FALSE(enforcer.is_throttled(fixture.modest->id()));
  EXPECT_LT(fixture.hungry->cgroup()->cpu_quota, 1.0);
  EXPECT_GT(fixture.hungry->cgroup()->cpu_quota, 0.0);
}

TEST(PowerBudget, ThrottlingActuallyReducesPower) {
  BudgetFixture fixture;
  auto virus = workload::power_virus();
  for (int copy = 0; copy < 4; ++copy) {
    fixture.hungry->run("burner", virus.behavior);
  }
  fixture.server.step(5 * kSecond);
  const double before_w = fixture.server.host().last_tick_power_w();

  defense::BudgetPolicy policy;
  policy.default_budget_w = 12.0;
  defense::PowerBudgetEnforcer enforcer(fixture.server.runtime(),
                                        fixture.power_ns, policy);
  for (int second = 0; second < 60; ++second) {
    fixture.server.step(kSecond);
    (void)fixture.hungry->read_file(
        "/sys/class/powercap/intel-rapl:0/energy_uj");
    enforcer.step();
  }
  EXPECT_LT(fixture.server.host().last_tick_power_w(), before_w * 0.75);
}

TEST(PowerBudget, QuotaRecoversWhenLoadStops) {
  BudgetFixture fixture;
  defense::BudgetPolicy policy;
  policy.default_budget_w = 15.0;
  defense::PowerBudgetEnforcer enforcer(fixture.server.runtime(),
                                        fixture.power_ns, policy);
  auto virus = workload::power_virus();
  std::vector<kernel::HostPid> pids;
  for (int copy = 0; copy < 4; ++copy) {
    pids.push_back(fixture.hungry->run("burner", virus.behavior)->host_pid);
  }
  for (int second = 0; second < 30; ++second) {
    fixture.server.step(kSecond);
    (void)fixture.hungry->read_file(
        "/sys/class/powercap/intel-rapl:0/energy_uj");
    enforcer.step();
  }
  ASSERT_TRUE(enforcer.is_throttled(fixture.hungry->id()));
  for (auto pid : pids) fixture.hungry->kill(pid);
  for (int second = 0; second < 60; ++second) {
    fixture.server.step(kSecond);
    (void)fixture.hungry->read_file(
        "/sys/class/powercap/intel-rapl:0/energy_uj");
    enforcer.step();
  }
  EXPECT_FALSE(enforcer.is_throttled(fixture.hungry->id()));
  EXPECT_DOUBLE_EQ(fixture.hungry->cgroup()->cpu_quota, -1.0);
}

TEST(PowerBudget, PerContainerBudgetsRespected) {
  BudgetFixture fixture;
  defense::BudgetPolicy policy;
  policy.default_budget_w = 15.0;
  defense::PowerBudgetEnforcer enforcer(fixture.server.runtime(),
                                        fixture.power_ns, policy);
  enforcer.set_budget_w(fixture.hungry->id(), 500.0);  // generous override
  auto virus = workload::power_virus();
  for (int copy = 0; copy < 4; ++copy) {
    fixture.hungry->run("burner", virus.behavior);
  }
  for (int second = 0; second < 30; ++second) {
    fixture.server.step(kSecond);
    (void)fixture.hungry->read_file(
        "/sys/class/powercap/intel-rapl:0/energy_uj");
    enforcer.step();
  }
  EXPECT_FALSE(enforcer.is_throttled(fixture.hungry->id()));
}

// ---------- ThermalSignalDetector ----------

TEST(ThermalSignal, DetectsCoResidenceThroughCoretemp) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 2;
  config.benign_load = false;
  config.profile = cloud::local_testbed();
  cloud::Datacenter dc(config);
  auto a = dc.server(0).runtime().create({});
  auto b = dc.server(0).runtime().create({});
  auto c = dc.server(1).runtime().create({});
  coresidence::ProbeEnv env;
  env.advance = [&](SimDuration dt) { dc.step(dt); };
  coresidence::ThermalSignalDetector detector;
  EXPECT_EQ(detector.verify(*a, *b, env),
            coresidence::Verdict::kCoResident);
  EXPECT_EQ(detector.verify(*a, *c, env),
            coresidence::Verdict::kNotCoResident);
}

TEST(ThermalSignal, InconclusiveWithoutCoretemp) {
  cloud::CloudServiceProfile profile = cloud::local_testbed();
  profile.hardware.has_coretemp = false;
  cloud::DatacenterConfig config;
  config.servers_per_rack = 2;
  config.benign_load = false;
  config.profile = profile;
  cloud::Datacenter dc(config);
  auto a = dc.server(0).runtime().create({});
  auto b = dc.server(0).runtime().create({});
  coresidence::ProbeEnv env;
  env.advance = [&](SimDuration dt) { dc.step(dt); };
  coresidence::ThermalSignalDetector detector;
  EXPECT_EQ(detector.verify(*a, *b, env),
            coresidence::Verdict::kInconclusive);
}

}  // namespace
}  // namespace cleaks
