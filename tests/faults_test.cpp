// Tests for the fault-injection subsystem (src/faults): plan defaults and
// JSON round-trip, the pure-draw determinism contract, graceful
// degradation in the scanner / monitor / trainer, and the cross-lane
// digest of a fully faulted scan.
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "attack/monitor.h"
#include "cloud/server.h"
#include "defense/trainer.h"
#include "faults/injector.h"
#include "faults/plan.h"
#include "leakage/detector.h"
#include "obs/metrics.h"
#include "sim/engine.h"

namespace cleaks::faults {
namespace {

TEST(FaultPlanTest, DefaultsMatchDocumentedContract) {
  FaultRule rule;
  EXPECT_EQ(rule.kind, FaultKind::kTransientUnavailable);
  EXPECT_EQ(rule.path_glob, "**");
  EXPECT_DOUBLE_EQ(rule.rate, 1.0);
  EXPECT_EQ(rule.period, 2 * kSecond);
  EXPECT_EQ(rule.duration, 200 * kMillisecond);
  EXPECT_EQ(rule.start, 0);
  EXPECT_EQ(rule.end, 0);
  EXPECT_DOUBLE_EQ(rule.scale, 0.0);

  FaultPlan plan;
  EXPECT_EQ(plan.seed, 0u);
  EXPECT_TRUE(plan.empty());
  plan.rules.push_back(rule);
  EXPECT_FALSE(plan.empty());
}

TEST(FaultPlanTest, KindStringsRoundTrip) {
  for (FaultKind kind :
       {FaultKind::kTransientUnavailable, FaultKind::kPermanentDeny,
        FaultKind::kRaplWrapForce, FaultKind::kPerfDropout}) {
    const auto parsed = fault_kind_from_string(to_string(kind));
    ASSERT_TRUE(parsed.is_ok()) << to_string(kind);
    EXPECT_EQ(parsed.value(), kind);
  }
  const auto bad = fault_kind_from_string("quantum-bitflip");
  EXPECT_TRUE(bad.status().Matches(StatusCode::kInvalidArgument,
                                   "unknown fault kind"));
}

FaultPlan sample_plan() {
  FaultPlan plan;
  plan.seed = 99;
  FaultRule transient;
  transient.kind = FaultKind::kTransientUnavailable;
  transient.path_glob = "/proc/**";
  transient.rate = 0.25;
  transient.period = 3 * kSecond;
  transient.duration = 150 * kMillisecond;
  transient.start = kSecond;
  transient.end = kMinute;
  plan.rules.push_back(transient);
  FaultRule dropout;
  dropout.kind = FaultKind::kPerfDropout;
  dropout.rate = 0.5;
  dropout.scale = 0.75;
  plan.rules.push_back(dropout);
  return plan;
}

void expect_plans_equal(const FaultPlan& got, const FaultPlan& want) {
  EXPECT_EQ(got.seed, want.seed);
  ASSERT_EQ(got.rules.size(), want.rules.size());
  for (std::size_t i = 0; i < want.rules.size(); ++i) {
    const FaultRule& g = got.rules[i];
    const FaultRule& w = want.rules[i];
    EXPECT_EQ(g.kind, w.kind) << i;
    EXPECT_EQ(g.path_glob, w.path_glob) << i;
    EXPECT_DOUBLE_EQ(g.rate, w.rate) << i;
    EXPECT_EQ(g.period, w.period) << i;
    EXPECT_EQ(g.duration, w.duration) << i;
    EXPECT_EQ(g.start, w.start) << i;
    EXPECT_EQ(g.end, w.end) << i;
    EXPECT_DOUBLE_EQ(g.scale, w.scale) << i;
  }
}

TEST(FaultPlanTest, JsonRoundTripsThroughTheWriter) {
  const FaultPlan plan = sample_plan();
  obs::JsonWriter json;
  append_plan_json(plan, json);
  json.end_object();  // balance the root object the writer opened
  // The writer output is the wrapped form {"faults": {...}}.
  const auto parsed = parse_plan_json(json.str());
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  expect_plans_equal(parsed.value(), plan);
}

TEST(FaultPlanTest, ParsesBareFormAndDefaults) {
  // A bare plan object with a partially specified rule: every omitted
  // member keeps its FaultRule default.
  const auto parsed = parse_plan_json(
      "{\"seed\": 7, \"rules\": [{\"kind\": \"permanent-deny\","
      " \"path_glob\": \"/sys/**\"}]}");
  ASSERT_TRUE(parsed.is_ok()) << parsed.status().message();
  const FaultPlan& plan = parsed.value();
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 1u);
  EXPECT_EQ(plan.rules[0].kind, FaultKind::kPermanentDeny);
  EXPECT_EQ(plan.rules[0].path_glob, "/sys/**");
  EXPECT_DOUBLE_EQ(plan.rules[0].rate, 1.0);
  EXPECT_EQ(plan.rules[0].period, 2 * kSecond);
}

TEST(FaultPlanTest, ParseRejectsMalformedDocuments) {
  EXPECT_TRUE(parse_plan_json("{\"seed\": 1, \"bogus\": 2}")
                  .status()
                  .Matches(StatusCode::kInvalidArgument,
                           "unknown plan member: bogus"));
  EXPECT_TRUE(parse_plan_json("{\"rules\": [{\"kind\": \"nope\"}]}")
                  .status()
                  .Matches(StatusCode::kInvalidArgument,
                           "unknown fault kind"));
  EXPECT_TRUE(parse_plan_json("{\"seed\": 1} trailing")
                  .status()
                  .Matches(StatusCode::kInvalidArgument, "trailing"));
  EXPECT_TRUE(parse_plan_json("[1, 2]").status().Matches(
      StatusCode::kInvalidArgument, "expected '{'"));
}

// ---------- injector semantics ----------

TEST(FaultInjectorTest, TransientFaultsSpanTheWindowPrefix) {
  FaultPlan plan;
  FaultRule rule;  // rate 1.0: every window faults, span [0, 200ms)
  rule.path_glob = "/proc/**";
  plan.rules.push_back(rule);
  const FaultInjector injector(plan);
  EXPECT_EQ(injector.read_fault("/proc/stat", 0), StatusCode::kUnavailable);
  EXPECT_EQ(injector.read_fault("/proc/stat", 100 * kMillisecond),
            StatusCode::kUnavailable);
  EXPECT_EQ(injector.read_fault("/proc/stat", 200 * kMillisecond),
            StatusCode::kOk);
  EXPECT_EQ(injector.read_fault("/proc/stat", kSecond), StatusCode::kOk);
  // Next window faults again...
  EXPECT_EQ(injector.read_fault("/proc/stat", 2 * kSecond),
            StatusCode::kUnavailable);
  // ...and non-matching paths never fault.
  EXPECT_EQ(injector.read_fault("/sys/kernel/mm", 0), StatusCode::kOk);
}

TEST(FaultInjectorTest, QueriesArePureFunctions) {
  FaultPlan plan;
  plan.seed = 31;
  FaultRule rule;
  rule.rate = 0.5;
  plan.rules.push_back(rule);
  const FaultInjector first(plan);
  const FaultInjector second(plan);
  int faulted = 0;
  for (int window = 0; window < 200; ++window) {
    const SimTime at = window * rule.period + 50 * kMillisecond;
    const StatusCode verdict = first.read_fault("/proc/uptime", at);
    // Same plan => same schedule, and re-asking never changes the answer.
    EXPECT_EQ(second.read_fault("/proc/uptime", at), verdict);
    EXPECT_EQ(first.read_fault("/proc/uptime", at), verdict);
    if (verdict == StatusCode::kUnavailable) ++faulted;
  }
  // rate 0.5 over 200 windows: both extremes would mean a broken draw.
  EXPECT_GT(faulted, 50);
  EXPECT_LT(faulted, 150);
}

TEST(FaultInjectorTest, PermanentDenyFlipsAtStart) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kPermanentDeny;
  rule.path_glob = "/sys/class/powercap/**";
  rule.start = kMinute;
  plan.rules.push_back(rule);
  const FaultInjector injector(plan);
  const std::string path = "/sys/class/powercap/intel-rapl:0/energy_uj";
  EXPECT_EQ(injector.read_fault(path, 0), StatusCode::kOk);
  EXPECT_EQ(injector.read_fault(path, kMinute),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(injector.read_fault(path, kHour),
            StatusCode::kPermissionDenied);
}

TEST(FaultInjectorTest, EndBoundsARule) {
  FaultPlan plan;
  FaultRule rule;
  rule.end = kSecond;  // covers window 0 only
  plan.rules.push_back(rule);
  const FaultInjector injector(plan);
  EXPECT_EQ(injector.read_fault("/proc/stat", 0), StatusCode::kUnavailable);
  EXPECT_EQ(injector.read_fault("/proc/stat", 2 * kSecond),
            StatusCode::kOk);
}

TEST(FaultInjectorTest, RaplWrapKeyedOnStepIndex) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kRaplWrapForce;
  rule.rate = 0.3;
  plan.rules.push_back(rule);
  const FaultInjector injector(plan);
  int fired = 0;
  for (std::uint64_t step = 0; step < 100; ++step) {
    const bool wrap = injector.rapl_wrap_at_step(step, step * kSecond);
    EXPECT_EQ(injector.rapl_wrap_at_step(step, step * kSecond), wrap);
    if (wrap) ++fired;
  }
  EXPECT_GT(fired, 5);
  EXPECT_LT(fired, 70);
}

TEST(FaultInjectorTest, PerfRetentionTakesTheWorstDropout) {
  FaultPlan plan;
  FaultRule mild;
  mild.kind = FaultKind::kPerfDropout;
  mild.scale = 0.75;
  FaultRule harsh;
  harsh.kind = FaultKind::kPerfDropout;
  harsh.scale = 0.25;
  plan.rules.push_back(mild);
  plan.rules.push_back(harsh);
  const FaultInjector injector(plan);
  EXPECT_DOUBLE_EQ(injector.perf_retention(kSecond), 0.25);
  // An empty plan keeps every window.
  EXPECT_DOUBLE_EQ(FaultInjector(FaultPlan{}).perf_retention(kSecond), 1.0);
}

TEST(FaultInjectorTest, CoversIsAPureGlobOverReadFaultRules) {
  FaultPlan plan;
  FaultRule never;
  never.path_glob = "/proc/up*";
  never.rate = 0.0;  // a rule that never fires still *covers* its glob
  plan.rules.push_back(never);
  FaultRule perf;
  perf.kind = FaultKind::kPerfDropout;
  perf.path_glob = "**";
  plan.rules.push_back(perf);
  const FaultInjector injector(plan);
  EXPECT_TRUE(injector.covers("/proc/uptime"));
  // Perf dropout rules never gate reads, so their glob covers nothing.
  EXPECT_FALSE(injector.covers("/proc/version"));
}

// The pinned fault-safety contract: a path covered by any read-fault rule
// bypasses the viewer render cache entirely, even if the rule never fires.
TEST(ScanUnderFaultsTest, FaultCoveredPathsBypassViewerCache) {
  cloud::Server server("bypass-host", cloud::local_testbed(), 77);
  FaultPlan plan;
  FaultRule rule;
  rule.path_glob = "/proc/uptime";
  rule.rate = 0.0;
  plan.rules.push_back(rule);
  const FaultInjector injector(plan);
  server.fs().set_fault_injector(&injector);
  auto instance = server.runtime().create({});
  auto& hits =
      obs::Registry::global().counter("fs_viewer_cache_hits_total", "");
  std::string buffer;
  instance->read_file_into("/proc/uptime", buffer);
  const std::uint64_t covered_before = hits.value();
  instance->read_file_into("/proc/uptime", buffer);
  EXPECT_EQ(hits.value(), covered_before);  // covered: never cached
  instance->read_file_into("/proc/version", buffer);
  const std::uint64_t open_before = hits.value();
  instance->read_file_into("/proc/version", buffer);
  EXPECT_EQ(hits.value(), open_before + 1);  // uncovered path caches fine
}

// ---------- scanner degradation ----------

// Recoverable regime: every container read faults at the scan instant
// (offset 0 of a rate-1.0 window), but one 300 ms retry step clears the
// 200 ms fault span — well inside the 3 * 300 ms budget.
FaultPlan recoverable_plan() {
  FaultPlan plan;
  plan.seed = 12;
  FaultRule rule;
  rule.path_glob = "**";
  rule.rate = 1.0;
  rule.period = 2 * kSecond;
  rule.duration = 200 * kMillisecond;
  plan.rules.push_back(rule);
  return plan;
}

std::vector<leakage::FileFinding> scan_with(const FaultPlan& plan,
                                            int num_threads) {
  cloud::Server server("fault-host", cloud::local_testbed(), 77, 40 * kDay);
  const FaultInjector injector(plan);
  if (!plan.empty()) server.fs().set_fault_injector(&injector);
  leakage::ScanOptions options;
  options.num_threads = num_threads;
  leakage::CrossValidator validator(server, options);
  return validator.scan();
}

TEST(ScanUnderFaultsTest, RecoverableTransientsDoNotChangeTable1) {
  auto& retried = obs::Registry::global().counter(
      "scan_reads_retried_total", "");
  const std::uint64_t retried_before = retried.value();
  const auto baseline = scan_with(FaultPlan{}, 1);
  EXPECT_EQ(retried.value(), retried_before);  // fault-free scans never retry
  const auto faulted = scan_with(recoverable_plan(), 1);
  ASSERT_EQ(faulted.size(), baseline.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(faulted[i].path, baseline[i].path);
    // The headline acceptance bit: transients inside the retry budget
    // change no classification — degraded-not-wrong starts at "not wrong".
    EXPECT_EQ(faulted[i].cls, baseline[i].cls) << faulted[i].path;
    EXPECT_FALSE(faulted[i].degraded) << faulted[i].path;
  }
  EXPECT_GT(retried.value(), retried_before);
}

TEST(ScanUnderFaultsTest, ExhaustedRetriesDegradeInsteadOfMisclassify) {
  cloud::Server server("degrade-host", cloud::local_testbed(), 77);
  FaultPlan plan;
  FaultRule rule;  // duration == period: the path never comes back
  rule.path_glob = "/proc/uptime";
  rule.duration = rule.period;
  plan.rules.push_back(rule);
  const FaultInjector injector(plan);
  server.fs().set_fault_injector(&injector);
  auto& degraded_total = obs::Registry::global().counter(
      "scan_channels_degraded_total", "");
  const std::uint64_t degraded_before = degraded_total.value();
  leakage::CrossValidator validator(server);
  auto probe = server.runtime().create({});
  EXPECT_EQ(validator.classify("/proc/uptime", *probe),
            leakage::LeakClass::kAbsent);
  EXPECT_EQ(degraded_total.value(), degraded_before + 1);
  // A path outside the glob classifies normally through the same scan.
  EXPECT_EQ(validator.classify("/proc/version", *probe),
            leakage::LeakClass::kLeaking);
}

// FNV-1a over every finding (path bytes, class, degraded bit): a faulted
// scan must produce identical findings at every lane count.
std::uint64_t digest_of(const std::vector<leakage::FileFinding>& findings) {
  std::uint64_t hash = 1469598103934665603ull;
  auto mix_byte = [&hash](unsigned char byte) {
    hash ^= byte;
    hash *= 1099511628211ull;
  };
  for (const auto& finding : findings) {
    for (const char c : finding.path) {
      mix_byte(static_cast<unsigned char>(c));
    }
    mix_byte(static_cast<unsigned char>(finding.cls));
    mix_byte(finding.degraded ? 1 : 0);
  }
  return hash;
}

std::uint64_t findings_digest(int num_threads) {
  return digest_of(scan_with(recoverable_plan(), num_threads));
}

TEST(ScanUnderFaultsTest, FaultedScanBitwiseIdenticalAcrossLaneCounts) {
  const std::uint64_t serial = findings_digest(1);
  EXPECT_EQ(findings_digest(2), serial);
  EXPECT_EQ(findings_digest(4), serial);
  EXPECT_EQ(findings_digest(8), serial);
}

// Incremental warm scans under a partial fault plan: the covered paths
// re-run the full protocol every scan while the rest reuse — and the
// findings stay bitwise-identical at every lane count, warm and cold.
std::uint64_t warm_faulted_digest(int num_threads, std::uint64_t* cold) {
  cloud::Server server("warm-fault", cloud::local_testbed(), 77, 40 * kDay);
  FaultPlan plan;
  plan.seed = 12;
  FaultRule rule;
  rule.path_glob = "/proc/up*";  // covers /proc/uptime only
  rule.rate = 1.0;
  rule.period = 2 * kSecond;
  rule.duration = 200 * kMillisecond;
  plan.rules.push_back(rule);
  const FaultInjector injector(plan);
  server.fs().set_fault_injector(&injector);
  leakage::ScanOptions options;
  options.num_threads = num_threads;
  leakage::CrossValidator validator(server, options);
  const std::uint64_t first = digest_of(validator.scan());
  if (cold != nullptr) *cold = first;
  return digest_of(validator.scan());
}

TEST(ScanUnderFaultsTest, WarmIncrementalFaultedScanIdenticalAcrossLanes) {
  std::uint64_t cold_serial = 0;
  const std::uint64_t warm_serial = warm_faulted_digest(1, &cold_serial);
  EXPECT_EQ(warm_serial, cold_serial);  // reuse changes no classification
  for (const int lanes : {2, 4, 8}) {
    std::uint64_t cold = 0;
    EXPECT_EQ(warm_faulted_digest(lanes, &cold), warm_serial) << lanes;
    EXPECT_EQ(cold, cold_serial) << lanes;
  }
}

// ---------- monitor degradation ----------

TEST(MonitorUnderFaultsTest, HoldsCrestEstimateThroughDropout) {
  cloud::Server server("mon-host", cloud::local_testbed(), 41, 20 * kDay);
  auto instance = server.runtime().create({});
  attack::RaplMonitor monitor(*instance);
  EXPECT_FALSE(monitor.sample_w(kSecond).has_value());  // priming read
  server.step(2 * kSecond);
  const auto good = monitor.sample_w(2 * kSecond);
  ASSERT_TRUE(good.has_value());
  EXPECT_FALSE(monitor.degraded());

  FaultPlan plan;
  FaultRule rule;
  rule.path_glob = "/sys/class/powercap/**";
  rule.duration = rule.period;  // dropout for as long as the plan is live
  plan.rules.push_back(rule);
  const FaultInjector injector(plan);
  server.fs().set_fault_injector(&injector);
  server.step(2 * kSecond);
  const auto held = monitor.sample_w(2 * kSecond);
  ASSERT_TRUE(held.has_value());
  EXPECT_DOUBLE_EQ(*held, *good);  // the crest estimate survives the gap
  EXPECT_TRUE(monitor.degraded());

  server.fs().set_fault_injector(nullptr);
  server.step(2 * kSecond);
  // First clean read re-primes and still serves the held estimate...
  const auto repriming = monitor.sample_w(2 * kSecond);
  ASSERT_TRUE(repriming.has_value());
  EXPECT_DOUBLE_EQ(*repriming, *good);
  EXPECT_TRUE(monitor.degraded());
  // ...and the next one is a fresh measurement again.
  server.step(2 * kSecond);
  const auto fresh = monitor.sample_w(2 * kSecond);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(monitor.degraded());
}

TEST(MonitorUnderFaultsTest, ImplausibleDeltaIsHeldAsWrapGlitch) {
  cloud::Server server("wrap-host", cloud::local_testbed(), 41, 20 * kDay);
  auto instance = server.runtime().create({});
  attack::RaplMonitor monitor(*instance);
  monitor.sample_w(kSecond);
  server.step(2 * kSecond);
  const auto good = monitor.sample_w(2 * kSecond);
  ASSERT_TRUE(good.has_value());
  // Any real wattage now reads as a wrap glitch...
  monitor.set_max_plausible_w(*good / 2.0);
  server.step(2 * kSecond);
  const auto held = monitor.sample_w(2 * kSecond);
  ASSERT_TRUE(held.has_value());
  EXPECT_DOUBLE_EQ(*held, *good);
  EXPECT_TRUE(monitor.degraded());
  // ...and restoring the threshold recovers without re-priming (the
  // glitched sample already re-primed the counters).
  monitor.set_max_plausible_w(1e6);
  server.step(2 * kSecond);
  const auto fresh = monitor.sample_w(2 * kSecond);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_FALSE(monitor.degraded());
}

// ---------- trainer degradation ----------

TEST(TrainerUnderFaultsTest, PoisonedCalibrationWindowsAreSkipped) {
  FaultPlan plan;
  FaultRule rule;
  rule.kind = FaultKind::kPerfDropout;
  rule.rate = 1.0;
  rule.scale = 0.5;
  plan.rules.push_back(rule);
  const FaultInjector injector(plan);

  defense::TrainerOptions options;
  options.duty_levels = {1.0};
  options.copies = 1;
  options.samples_per_level = 3;
  const std::vector<workload::Profile> profiles = {workload::power_virus()};

  kernel::Host clean_host("trainer-clean", hw::testbed_i7_6700(), 5);
  clean_host.set_tick_duration(100 * kMillisecond);
  const auto clean = defense::collect_training_samples(
      clean_host, profiles, options);
  EXPECT_EQ(clean.size(), 3u);

  options.faults = &injector;
  kernel::Host faulted_host("trainer-faulted", hw::testbed_i7_6700(), 5);
  faulted_host.set_tick_duration(100 * kMillisecond);
  auto& skipped = obs::Registry::global().counter(
      "defense_training_samples_skipped_total", "");
  const std::uint64_t skipped_before = skipped.value();
  const auto poisoned = defense::collect_training_samples(
      faulted_host, profiles, options);
  // rate 1.0 dropout: every window is poisoned; none may be scaled in.
  EXPECT_TRUE(poisoned.empty());
  EXPECT_EQ(skipped.value(), skipped_before + 3);
}

// ---------- engine wiring ----------

TEST(EngineFaultsTest, SpecJsonCarriesThePlan) {
  sim::ScenarioSpec spec;
  spec.single_server = sim::SingleServerSpec{};
  spec.faults = sample_plan();
  obs::JsonWriter json;
  sim::append_spec_json(spec, json);
  json.end_object();
  const std::string& doc = json.str();
  EXPECT_NE(doc.find("\"faults\""), std::string::npos);
  EXPECT_NE(doc.find("\"transient-unavailable\""), std::string::npos);
  EXPECT_NE(doc.find("\"perf-dropout\""), std::string::npos);
  // An empty plan stays out of the document entirely.
  obs::JsonWriter clean;
  sim::append_spec_json(sim::ScenarioSpec{}, clean);
  clean.end_object();
  EXPECT_EQ(clean.str().find("\"faults\""), std::string::npos);
}

TEST(EngineFaultsTest, WrapForceParksCountersAtStepBoundaries) {
  sim::ScenarioSpec spec;
  spec.single_server = sim::SingleServerSpec{};
  FaultRule rule;
  rule.kind = FaultKind::kRaplWrapForce;
  rule.rate = 1.0;
  spec.faults.rules.push_back(rule);
  sim::SimEngine engine(spec);
  ASSERT_NE(engine.fault_injector(), nullptr);
  engine.run_steps(5, kSecond);
  const auto& rapl = engine.server(0).host().rapl();
  ASSERT_FALSE(rapl.empty());
  // Every step parked the counters one microjoule from the wrap edge, so
  // each tick's energy wraps them: one wrap per step, and the lifetime
  // accumulators (physics) keep flowing through untouched.
  EXPECT_GE(rapl.front().package().wrap_count(), 5u);
  EXPECT_GT(rapl.front().package().lifetime_energy_j(), 0.0);
}

TEST(EngineFaultsTest, EmptyPlanBuildsNoInjector) {
  sim::ScenarioSpec spec;
  spec.single_server = sim::SingleServerSpec{};
  sim::SimEngine engine(spec);
  EXPECT_EQ(engine.fault_injector(), nullptr);
}

}  // namespace
}  // namespace cleaks::faults
