// Tests for the per-process /proc/<pid>/ subtree — the properly
// PID-namespaced part of procfs, in contrast with the Table I channels:
// a container resolves pids in its own namespace and can never see
// another tenant's (or the host's) processes through it.
#include <gtest/gtest.h>

#include "containerleaks.h"

namespace cleaks::fs {
namespace {

struct Fixture {
  Fixture()
      : host("pid-host", hw::testbed_i7_6700(), 66),
        filesystem(host),
        runtime(host, filesystem) {
    host.set_tick_duration(100 * kMillisecond);
    tenant = runtime.create({});
    neighbour = runtime.create({});
  }

  kernel::Host host;
  PseudoFs filesystem;
  container::ContainerRuntime runtime;
  std::shared_ptr<container::Container> tenant, neighbour;
};

TEST(ProcPid, HostResolvesHostPids) {
  Fixture fixture;
  auto task = fixture.host.spawn_task({.comm = "hosttask"});
  ViewContext host_ctx;
  const auto status = fixture.filesystem.read(
      strformat("/proc/%d/status", task->host_pid), host_ctx);
  ASSERT_TRUE(status.is_ok());
  EXPECT_TRUE(contains(status.value(), "Name:\thosttask"));
  EXPECT_TRUE(contains(status.value(),
                       strformat("Pid:\t%d", task->host_pid)));
}

TEST(ProcPid, ContainerInitIsPidOne) {
  Fixture fixture;
  const auto status = fixture.tenant->read_file("/proc/1/status");
  ASSERT_TRUE(status.is_ok());
  EXPECT_TRUE(contains(status.value(), "Name:\tsh"));
  EXPECT_TRUE(contains(status.value(), "Pid:\t1"));
}

TEST(ProcPid, ContainerResolvesItsOwnNamespacePids) {
  Fixture fixture;
  auto task = fixture.tenant->run("worker", {});
  const auto status = fixture.tenant->read_file(
      strformat("/proc/%d/status", task->ns_pid));
  ASSERT_TRUE(status.is_ok());
  EXPECT_TRUE(contains(status.value(), "Name:\tworker"));
  // The view shows the namespace pid, never the host pid.
  EXPECT_TRUE(contains(status.value(), strformat("Pid:\t%d", task->ns_pid)));
  EXPECT_FALSE(
      contains(status.value(), strformat("Pid:\t%d", task->host_pid)));
}

TEST(ProcPid, HostPidsInvisibleInsideContainer) {
  Fixture fixture;
  auto host_task = fixture.host.spawn_task({.comm = "secret"});
  const auto view = fixture.tenant->read_file(
      strformat("/proc/%d/status", host_task->host_pid));
  EXPECT_EQ(view.code(), StatusCode::kNotFound);
}

TEST(ProcPid, NeighbourTasksInvisible) {
  Fixture fixture;
  auto neighbour_task = fixture.neighbour->run("theirjob", {});
  // Same ns pid number may exist in the tenant's namespace (its init also
  // has low pids), but the *neighbour's* task must never resolve.
  const auto view = fixture.tenant->read_file(
      strformat("/proc/%d/cmdline", neighbour_task->ns_pid));
  if (view.is_ok()) {
    EXPECT_FALSE(contains(view.value(), "theirjob"));
  } else {
    EXPECT_EQ(view.code(), StatusCode::kNotFound);
  }
}

TEST(ProcPid, CmdlineAndSchedRender) {
  Fixture fixture;
  kernel::TaskBehavior busy;
  busy.duty_cycle = 1.0;
  auto task = fixture.tenant->run("cruncher", busy);
  fixture.host.advance(2 * kSecond);
  const auto cmdline = fixture.tenant->read_file(
      strformat("/proc/%d/cmdline", task->ns_pid));
  ASSERT_TRUE(cmdline.is_ok());
  EXPECT_EQ(cmdline.value(), "cruncher\n");
  const auto sched = fixture.tenant->read_file(
      strformat("/proc/%d/sched", task->ns_pid));
  ASSERT_TRUE(sched.is_ok());
  EXPECT_TRUE(contains(sched.value(), "se.sum_exec_runtime"));
  EXPECT_GT(parse_first_double(split_lines(sched.value())[2]), 100.0);
}

TEST(ProcPid, StatShowsRunState) {
  Fixture fixture;
  kernel::TaskBehavior busy;
  busy.duty_cycle = 1.0;
  auto runner = fixture.tenant->run("runner", busy);
  const auto stat = fixture.tenant->read_file(
      strformat("/proc/%d/stat", runner->ns_pid));
  ASSERT_TRUE(stat.is_ok());
  EXPECT_TRUE(contains(stat.value(), "(runner) R"));
}

TEST(ProcPid, ListPathsIncludesOnlyViewersPids) {
  Fixture fixture;
  fixture.tenant->run("mine", {});
  fixture.neighbour->run("theirs", {});
  ViewContext tenant_ctx;
  tenant_ctx.viewer = fixture.tenant->init_task();
  const auto paths = fixture.filesystem.list_paths(tenant_ctx);
  int pid_dirs = 0;
  for (const auto& path : paths) {
    if (starts_with(path, "/proc/1/")) ++pid_dirs;
    // Host daemons have pids in the 300s; none may appear.
    EXPECT_FALSE(starts_with(path, "/proc/300/")) << path;
  }
  EXPECT_EQ(pid_dirs, 4);  // status, stat, cmdline, sched for init
}

TEST(ProcPid, HostListsEveryTask) {
  Fixture fixture;
  ViewContext host_ctx;
  const auto paths = fixture.filesystem.list_paths(host_ctx);
  std::size_t per_pid = 0;
  for (const auto& path : paths) {
    if (contains(path, "/cmdline")) ++per_pid;
  }
  EXPECT_EQ(per_pid, fixture.host.tasks().size());
}

TEST(ProcPid, UnknownLeafFallsThroughToNotFound) {
  Fixture fixture;
  EXPECT_EQ(fixture.tenant->read_file("/proc/1/environ").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(fixture.tenant->read_file("/proc/99999/status").code(),
            StatusCode::kNotFound);
}

TEST(ProcPid, MaskingPolicyStillApplies) {
  kernel::Host host("masked", hw::testbed_i7_6700(), 67);
  PseudoFs filesystem(host);
  MaskingPolicy policy;
  policy.add_rule("/proc/*/sched", MaskAction::kDeny);
  container::ContainerRuntime runtime(host, filesystem, policy);
  auto instance = runtime.create({});
  EXPECT_EQ(instance->read_file("/proc/1/sched").code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(instance->read_file("/proc/1/status").is_ok());
}

}  // namespace
}  // namespace cleaks::fs
