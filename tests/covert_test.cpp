// Tests for the covert-channel benchmark harness.
#include <gtest/gtest.h>

#include "containerleaks.h"
#include "coresidence/covert.h"

namespace cleaks::coresidence {
namespace {

struct Fixture {
  Fixture() : server("cv-host", cloud::local_testbed(), 70, 5 * kDay) {
    container::ContainerConfig config;
    config.num_cpus = 4;
    tx = server.runtime().create(config);
    rx = server.runtime().create(config);
    env.advance = [this](SimDuration dt) { server.step(dt); };
    server.step(2 * kSecond);
  }

  cloud::Server server;
  std::shared_ptr<container::Container> tx, rx;
  ProbeEnv env;
};

TEST(Covert, PowerChannelTransmitsBetweenCoResidents) {
  Fixture fixture;
  CovertConfig config;
  config.medium = CovertMedium::kPower;
  CovertChannelBenchmark channel(*fixture.tx, *fixture.rx, fixture.env,
                                 config);
  const auto result = channel.run(24);
  EXPECT_EQ(result.bits_sent, 24);
  EXPECT_LT(result.bit_error_rate(), 0.1);
  EXPECT_GT(result.capacity_bps(), 0.2);
}

TEST(Covert, UtilizationChannelWorksWithoutRapl) {
  cloud::CloudServiceProfile profile = cloud::cc4();  // no RAPL hardware
  profile.policy = fs::MaskingPolicy::docker_default();
  cloud::Server server("cv-cc4", profile, 71, 5 * kDay);
  container::ContainerConfig config;
  config.num_cpus = 4;
  auto tx = server.runtime().create(config);
  auto rx = server.runtime().create(config);
  ProbeEnv env;
  env.advance = [&](SimDuration dt) { server.step(dt); };
  CovertConfig covert_config;
  covert_config.medium = CovertMedium::kUtilization;
  CovertChannelBenchmark channel(*tx, *rx, env, covert_config);
  const auto result = channel.run(24);
  EXPECT_LT(result.bit_error_rate(), 0.15);
}

TEST(Covert, MaskedMediumIsZeroCapacity) {
  cloud::CloudServiceProfile profile = cloud::local_testbed();
  profile.policy.add_rule("/sys/class/**", fs::MaskAction::kDeny);
  cloud::Server server("cv-masked", profile, 72);
  container::ContainerConfig config;
  auto tx = server.runtime().create(config);
  auto rx = server.runtime().create(config);
  ProbeEnv env;
  env.advance = [&](SimDuration dt) { server.step(dt); };
  CovertChannelBenchmark channel(*tx, *rx, env, CovertConfig{});
  const auto result = channel.run(8);
  EXPECT_EQ(result.bits_sent, 0);  // medium unavailable
  EXPECT_EQ(result.capacity_bps(), 0.0);
}

TEST(Covert, CrossHostCarriesNoSignal) {
  Fixture fixture;
  cloud::Server other("cv-other", cloud::local_testbed(), 73, 7 * kDay);
  auto rx_far = other.runtime().create({});
  ProbeEnv env;
  env.advance = [&](SimDuration dt) {
    fixture.server.step(dt);
    other.step(dt);
  };
  CovertChannelBenchmark channel(*fixture.tx, *rx_far, env, CovertConfig{});
  const auto result = channel.run(24);
  // Decoding against an unrelated host is a coin flip.
  EXPECT_GT(result.bit_error_rate(), 0.2);
  EXPECT_LT(result.capacity_bps(), 0.15);
}

TEST(Covert, CapacityMath) {
  CovertResult perfect;
  perfect.bits_sent = 10;
  perfect.bit_errors = 0;
  perfect.seconds_used = 20.0;
  EXPECT_DOUBLE_EQ(perfect.raw_rate_bps(), 0.5);
  EXPECT_DOUBLE_EQ(perfect.capacity_bps(), 0.5);

  CovertResult coin_flip = perfect;
  coin_flip.bit_errors = 5;
  EXPECT_NEAR(coin_flip.capacity_bps(), 0.0, 1e-12);

  CovertResult empty;
  EXPECT_EQ(empty.bit_error_rate(), 1.0);
  EXPECT_EQ(empty.raw_rate_bps(), 0.0);
}

TEST(Covert, MediumNames) {
  EXPECT_EQ(to_string(CovertMedium::kPower), "power(RAPL)");
  EXPECT_EQ(to_string(CovertMedium::kThermal), "thermal(coretemp)");
  EXPECT_EQ(to_string(CovertMedium::kUtilization),
            "utilization(/proc/stat)");
}

}  // namespace
}  // namespace cleaks::coresidence
