#include <gtest/gtest.h>

#include "kernel/host.h"

namespace cleaks::kernel {
namespace {

std::unique_ptr<Host> make_host(std::uint64_t seed = 1) {
  auto host = std::make_unique<Host>("test-host", hw::testbed_i7_6700(), seed);
  host->set_tick_duration(100 * kMillisecond);
  return host;
}

TaskBehavior busy_behavior(double duty = 1.0) {
  TaskBehavior behavior;
  behavior.duty_cycle = duty;
  behavior.ipc = 2.0;
  behavior.cache_miss_per_kinst = 2.0;
  behavior.branch_miss_per_kinst = 3.0;
  return behavior;
}

// ---------- namespaces ----------

TEST(Namespaces, InitSetSharesAcrossHostTasks) {
  auto host = make_host();
  const auto& init = host->init_ns();
  EXPECT_EQ(init.uts->hostname, "test-host");
  EXPECT_TRUE(init.in_init_ns(NsType::kNet, init));
  EXPECT_GE(init.net->devices.size(), 3u);  // lo + nics
}

TEST(Namespaces, CloneCreatesFreshNamespaces) {
  auto host = make_host();
  auto cloned = host->namespaces().clone_for_container(
      host->init_ns(), "c1", "/docker/c1");
  EXPECT_FALSE(cloned.in_init_ns(NsType::kUts, host->init_ns()));
  EXPECT_FALSE(cloned.in_init_ns(NsType::kPid, host->init_ns()));
  EXPECT_FALSE(cloned.in_init_ns(NsType::kNet, host->init_ns()));
  EXPECT_EQ(cloned.uts->hostname, "c1");
  EXPECT_EQ(cloned.pid->level, 1);
  // Default 2016 Docker: user/cgroup namespaces NOT cloned.
  EXPECT_TRUE(cloned.in_init_ns(NsType::kUser, host->init_ns()));
  EXPECT_TRUE(cloned.in_init_ns(NsType::kCgroup, host->init_ns()));
}

TEST(Namespaces, CloneFlagsEnableUserAndCgroup) {
  auto host = make_host();
  CloneFlags flags;
  flags.new_user = true;
  flags.new_cgroup = true;
  auto cloned = host->namespaces().clone_for_container(
      host->init_ns(), "c2", "/docker/c2", flags);
  EXPECT_FALSE(cloned.in_init_ns(NsType::kUser, host->init_ns()));
  EXPECT_EQ(cloned.user->host_uid_base, 100000);
  EXPECT_EQ(cloned.cgroup->root_path, "/docker/c2");
}

TEST(Namespaces, ContainerNetHasVethAndLoOnly) {
  auto host = make_host();
  auto cloned = host->namespaces().clone_for_container(
      host->init_ns(), "c3", "/docker/c3");
  ASSERT_EQ(cloned.net->devices.size(), 2u);
  EXPECT_EQ(cloned.net->devices[0].name, "lo");
  EXPECT_EQ(cloned.net->devices[1].name, "eth0");
}

TEST(Namespaces, IdsAreDistinct) {
  auto host = make_host();
  auto a = host->namespaces().clone_for_container(host->init_ns(), "a", "/a");
  auto b = host->namespaces().clone_for_container(host->init_ns(), "b", "/b");
  EXPECT_NE(a.pid->id, b.pid->id);
  EXPECT_NE(a.uts->id, b.uts->id);
}

TEST(Namespaces, PidAllocationPerNamespace) {
  PidNamespace ns{1, 1, 1};
  EXPECT_EQ(ns.allocate_pid(), 1);
  EXPECT_EQ(ns.allocate_pid(), 2);
}

// ---------- cgroups ----------

TEST(Cgroups, RootExists) {
  CgroupManager manager;
  EXPECT_TRUE(manager.root()->is_root());
  EXPECT_EQ(manager.find("/"), manager.root());
}

TEST(Cgroups, CreateFindRemove) {
  CgroupManager manager;
  auto group = manager.create("/docker/abc");
  EXPECT_EQ(manager.find("/docker/abc"), group);
  EXPECT_EQ(manager.create("/docker/abc"), group);  // idempotent
  EXPECT_TRUE(manager.remove("/docker/abc"));
  EXPECT_EQ(manager.find("/docker/abc"), nullptr);
  EXPECT_FALSE(manager.remove("/docker/abc"));
}

TEST(Cgroups, RootCannotBeRemoved) {
  CgroupManager manager;
  EXPECT_FALSE(manager.remove("/"));
}

TEST(Cgroups, CpuacctTotals) {
  CpuacctState acct;
  acct.ensure_cpus(4);
  acct.usage_ns_per_cpu[0] = 100;
  acct.usage_ns_per_cpu[3] = 50;
  EXPECT_EQ(acct.total_usage_ns(), 150u);
}

// ---------- perf_event ----------

TEST(PerfEvent, CreateInstallsTombstoneOwnedEvents) {
  auto host = make_host();
  auto cgroup = host->cgroups().create("/docker/x");
  host->perf().create_cgroup_events(*cgroup, 8);
  EXPECT_TRUE(PerfEventSubsystem::has_events(*cgroup));
  EXPECT_EQ(cgroup->perf.events.size(),
            8u * PerfEventSubsystem::kEventsPerCpu);
  for (const auto& event : cgroup->perf.events) {
    EXPECT_TRUE(event.enabled);
    EXPECT_EQ(event.pmu_state, PerfEventSubsystem::kTaskTombstone);
  }
}

TEST(PerfEvent, ChargeAccumulatesOnlyWhenEnabled) {
  auto host = make_host();
  auto cgroup = host->cgroups().create("/docker/x");
  PerfSample sample;
  sample.instructions = 1000;
  sample.cycles = 500;
  PerfEventSubsystem::charge(*cgroup, 0, sample);
  EXPECT_EQ(PerfEventSubsystem::read(*cgroup).instructions, 0u);
  host->perf().create_cgroup_events(*cgroup, 8);
  PerfEventSubsystem::charge(*cgroup, 0, sample);
  EXPECT_EQ(PerfEventSubsystem::read(*cgroup).instructions, 1000u);
  EXPECT_EQ(PerfEventSubsystem::read(*cgroup).cycles, 500u);
}

TEST(PerfEvent, IntraCgroupSwitchIsFree) {
  auto host = make_host();
  auto cgroup = host->cgroups().create("/docker/x");
  host->perf().create_cgroup_events(*cgroup, 8);
  const auto before = host->perf().pmu_switches();
  host->perf().on_context_switch(cgroup.get(), cgroup.get(), 0);
  EXPECT_EQ(host->perf().pmu_switches(), before);
}

TEST(PerfEvent, InterCgroupSwitchDoesPmuWork) {
  auto host = make_host();
  auto a = host->cgroups().create("/docker/a");
  auto b = host->cgroups().create("/docker/b");
  host->perf().create_cgroup_events(*a, 8);
  const auto before = host->perf().pmu_switches();
  host->perf().on_context_switch(a.get(), b.get(), 0);
  EXPECT_EQ(host->perf().pmu_switches(), before + 1);
}

TEST(PerfEvent, SwitchBetweenUnmonitoredCgroupsIsFree) {
  auto host = make_host();
  auto a = host->cgroups().create("/docker/a");
  auto b = host->cgroups().create("/docker/b");
  const auto before = host->perf().pmu_switches();
  host->perf().on_context_switch(a.get(), b.get(), 0);
  EXPECT_EQ(host->perf().pmu_switches(), before);
}

TEST(PerfEvent, DestroyDisablesAccounting) {
  auto host = make_host();
  auto cgroup = host->cgroups().create("/docker/x");
  host->perf().create_cgroup_events(*cgroup, 8);
  host->perf().destroy_cgroup_events(*cgroup);
  EXPECT_FALSE(PerfEventSubsystem::has_events(*cgroup));
  EXPECT_TRUE(cgroup->perf.events.empty());
}

// ---------- scheduler via Host ----------

TEST(Scheduler, FullDutyTaskConsumesOneCore) {
  auto host = make_host();
  auto task = host->spawn_task({.comm = "busy", .behavior = busy_behavior()});
  host->advance(kSecond);
  EXPECT_NEAR(static_cast<double>(task->stats.runtime_ns), 1e9, 5e7);
}

TEST(Scheduler, OversubscribedCoreSharesFairly) {
  auto host = make_host();
  std::vector<std::shared_ptr<Task>> tasks;
  for (int i = 0; i < 2; ++i) {
    Host::SpawnOptions options;
    options.comm = "share-" + std::to_string(i);
    options.behavior = busy_behavior();
    options.allowed_cpus = {0};
    tasks.push_back(host->spawn_task(options));
  }
  host->advance(2 * kSecond);
  const double r0 = static_cast<double>(tasks[0]->stats.runtime_ns);
  const double r1 = static_cast<double>(tasks[1]->stats.runtime_ns);
  EXPECT_NEAR(r0 / (r0 + r1), 0.5, 0.05);        // fair split
  EXPECT_NEAR((r0 + r1) / 2e9, 1.0, 0.05);        // one core total
}

TEST(Scheduler, CpuQuotaCapsDuty) {
  auto host = make_host();
  auto cgroup = host->cgroups().create("/docker/q");
  cgroup->cpu_quota = 0.25;
  Host::SpawnOptions options;
  options.comm = "capped";
  options.behavior = busy_behavior();
  options.cgroup = cgroup;
  auto task = host->spawn_task(options);
  host->advance(2 * kSecond);
  EXPECT_NEAR(static_cast<double>(task->stats.runtime_ns), 0.5e9, 1e8);
}

TEST(Scheduler, InstructionsFollowIpc) {
  auto host = make_host();
  auto behavior = busy_behavior();
  behavior.ipc = 2.0;
  auto task = host->spawn_task({.comm = "ipc", .behavior = behavior});
  host->advance(kSecond);
  // cycles ~ 3.4e9, instructions ~ 6.8e9 (1% jitter).
  EXPECT_NEAR(task->stats.instructions / task->stats.cycles, 2.0, 0.1);
  EXPECT_NEAR(task->stats.cache_misses / task->stats.instructions * 1000.0,
              2.0, 0.2);
}

TEST(Scheduler, ContextSwitchesCountedForSharedCore) {
  auto host = make_host();
  for (int i = 0; i < 2; ++i) {
    Host::SpawnOptions options;
    options.comm = "sw";
    options.behavior = busy_behavior();
    options.allowed_cpus = {0};
    host->spawn_task(options);
  }
  const auto before = host->scheduler().total_context_switches();
  host->advance(kSecond);
  EXPECT_GT(host->scheduler().total_context_switches(), before + 50);
}

TEST(Scheduler, SpawnBurstSpreadsAcrossCores) {
  auto host = make_host();
  std::set<int> cores;
  for (int i = 0; i < 8; ++i) {
    cores.insert(
        host->spawn_task({.comm = "spread", .behavior = busy_behavior()})
            ->cpu);
  }
  EXPECT_GE(cores.size(), 7u);
}

// ---------- host ----------

TEST(Host, AdvanceMovesClockAndUptime) {
  auto host = make_host();
  const auto before_uptime = host->state().uptime_ns;
  host->advance(3 * kSecond);
  EXPECT_EQ(host->now(), 3 * kSecond);
  EXPECT_EQ(host->state().uptime_ns - before_uptime, 3 * kSecond);
}

// ---------- advance rounding contract (see Host::advance doc) ----------

TEST(AdvanceContract, NonTickMultipleLandsExactly) {
  auto host = make_host();  // 100 ms tick
  host->advance(250 * kMillisecond);  // two whole ticks + one 50 ms partial
  EXPECT_EQ(host->now(), 250 * kMillisecond);  // never rounded up to 300 ms
  EXPECT_EQ(host->state().uptime_ns, 250 * kMillisecond);
}

TEST(AdvanceContract, DurationBelowOneTickRunsOnePartialTick) {
  auto host = make_host();
  host->advance(30 * kMillisecond);  // less than one 100 ms tick
  EXPECT_EQ(host->now(), 30 * kMillisecond);
  EXPECT_GT(host->rapl()[0].package().lifetime_energy_j(), 0.0);  // physics really ran
}

TEST(AdvanceContract, SplitAdvanceMatchesWholeAdvanceBitwise) {
  // advance(250ms) decomposes into ticks of 100/100/50 ms; issuing the same
  // decomposition as separate calls must integrate identically.
  auto whole = make_host(9);
  auto split = make_host(9);
  whole->advance(250 * kMillisecond);
  split->advance(100 * kMillisecond);
  split->advance(100 * kMillisecond);
  split->advance(50 * kMillisecond);
  EXPECT_EQ(whole->now(), split->now());
  EXPECT_EQ(whole->state().uptime_ns, split->state().uptime_ns);
  EXPECT_EQ(whole->rapl()[0].package().lifetime_energy_j(),
            split->rapl()[0].package().lifetime_energy_j());  // bitwise, not approx
  EXPECT_EQ(whole->rapl()[0].package().energy_uj(),
            split->rapl()[0].package().energy_uj());
}

TEST(AdvanceContract, ZeroDurationIsANoOp) {
  auto host = make_host();
  host->advance(kSecond);
  const auto now = host->now();
  const auto joules = host->rapl()[0].package().lifetime_energy_j();
  host->advance(0);
  EXPECT_EQ(host->now(), now);
  EXPECT_EQ(host->rapl()[0].package().lifetime_energy_j(), joules);
}

TEST(Host, DeterministicForSameSeed) {
  auto a = make_host(99);
  auto b = make_host(99);
  a->spawn_task({.comm = "x", .behavior = busy_behavior()});
  b->spawn_task({.comm = "x", .behavior = busy_behavior()});
  a->advance(5 * kSecond);
  b->advance(5 * kSecond);
  EXPECT_DOUBLE_EQ(a->lifetime_energy_j(), b->lifetime_energy_j());
  EXPECT_EQ(a->state().boot_id, b->state().boot_id);
  EXPECT_EQ(a->state().total_ctxt_switches, b->state().total_ctxt_switches);
}

TEST(Host, DifferentSeedsGiveDifferentBootIds) {
  EXPECT_NE(make_host(1)->state().boot_id, make_host(2)->state().boot_id);
}

TEST(Host, SpawnAssignsMonotonicPids) {
  auto host = make_host();
  auto t1 = host->spawn_task({.comm = "a"});
  auto t2 = host->spawn_task({.comm = "b"});
  EXPECT_GT(t2->host_pid, t1->host_pid);
  EXPECT_EQ(host->find_task(t1->host_pid), t1);
}

TEST(Host, KillRemovesTask) {
  auto host = make_host();
  auto task = host->spawn_task({.comm = "victim"});
  EXPECT_TRUE(host->kill_task(task->host_pid));
  EXPECT_EQ(host->find_task(task->host_pid), nullptr);
  EXPECT_FALSE(host->kill_task(task->host_pid));
}

TEST(Host, IdlePowerNearSpecFloor) {
  auto host = make_host();
  host->advance(10 * kSecond);
  const auto& e = host->spec().energy;
  const double idle_floor = e.p_core_idle_w * host->spec().num_cores +
                            e.p_uncore_w + e.p_dram_idle_w;
  EXPECT_NEAR(host->last_tick_power_w(), idle_floor, idle_floor * 0.2);
}

TEST(Host, BusyPowerExceedsIdle) {
  auto host = make_host();
  host->advance(kSecond);
  const double idle_power = host->last_tick_power_w();
  for (int i = 0; i < 8; ++i) {
    host->spawn_task({.comm = "burn", .behavior = busy_behavior()});
  }
  host->advance(2 * kSecond);
  EXPECT_GT(host->last_tick_power_w(), idle_power * 2.5);
}

TEST(Host, EnergyCountersMonotone) {
  auto host = make_host();
  std::uint64_t last = host->rapl()[0].package().energy_uj();
  for (int i = 0; i < 10; ++i) {
    host->advance(kSecond);
    const auto now = host->rapl()[0].package().energy_uj();
    EXPECT_GT(now, last);  // far from wrap in this test
    last = now;
  }
}

TEST(Host, RaplCappingThrottlesFrequency) {
  auto spec = hw::testbed_i7_6700();
  spec.rapl_power_cap_w = 20.0;
  Host host("capped", spec, 5);
  host.set_tick_duration(100 * kMillisecond);
  for (int i = 0; i < 8; ++i) {
    host.spawn_task({.comm = "burn", .behavior = busy_behavior()});
  }
  host.advance(10 * kSecond);
  // The throttle bottoms out at 50% of nominal frequency; with 8 busy
  // cores that halves the dynamic power but cannot reach a 20 W cap.
  EXPECT_NEAR(host.effective_freq_hz(), 1.7e9, 0.1e9);
  host.advance(kSecond);
  const double floor_w = host.last_tick_power_w();
  host.set_power_cap_w(0.0);
  host.advance(20 * kSecond);
  EXPECT_GT(host.last_tick_power_w(), floor_w * 1.3);  // throttle released
}

TEST(Host, SetPowerCapAtRuntime) {
  auto host = make_host();
  for (int i = 0; i < 8; ++i) {
    host->spawn_task({.comm = "burn", .behavior = busy_behavior()});
  }
  host->advance(2 * kSecond);
  const double uncapped = host->last_tick_power_w();
  host->set_power_cap_w(uncapped / 2);
  host->advance(20 * kSecond);
  EXPECT_LT(host->last_tick_power_w(), uncapped * 0.8);
  host->set_power_cap_w(0.0);
  host->advance(30 * kSecond);
  EXPECT_GT(host->last_tick_power_w(), uncapped * 0.9);
}

TEST(Host, LoadavgTracksRunnableTasks) {
  auto host = make_host();
  for (int i = 0; i < 4; ++i) {
    host->spawn_task({.comm = "load", .behavior = busy_behavior()});
  }
  host->advance(3 * kMinute);
  EXPECT_NEAR(host->state().load1, 4.0, 1.0);
  EXPECT_GT(host->state().load1, host->state().load15);
}

TEST(Host, SeedPriorUptimeSetsAccumulators) {
  auto host = make_host(3);
  host->seed_prior_uptime(30 * kDay);
  EXPECT_EQ(host->state().uptime_ns, 30 * kDay);
  EXPECT_GT(host->state().idle_time_ns, 0u);
  EXPECT_GT(host->state().total_interrupts, 1000000u);
  EXPECT_GT(host->rapl()[0].package().lifetime_energy_j(), 1e6);
  EXPECT_GT(host->cpuidle().usage(0, host->cpuidle().num_states() - 1), 0u);
}

TEST(Host, ForkCountsIncrease) {
  auto host = make_host();
  const auto before = host->state().processes_forked;
  host->spawn_task({.comm = "child"});
  EXPECT_EQ(host->state().processes_forked, before + 1);
}

TEST(Host, MemFreeDropsWithRss) {
  auto host = make_host();
  const auto before = host->state().mem_free_kb;
  TaskBehavior behavior;
  behavior.rss_bytes = 4ULL << 30;
  host->spawn_task({.comm = "hog", .behavior = behavior});
  EXPECT_LT(host->state().mem_free_kb, before - (3ULL << 20));
}

TEST(Host, InterruptCountersGrowWithIo) {
  auto host = make_host();
  TaskBehavior io_behavior;
  io_behavior.duty_cycle = 0.2;
  io_behavior.io_rate_per_s = 1000.0;
  host->spawn_task({.comm = "io", .behavior = io_behavior});
  const auto before = host->state().total_interrupts;
  host->advance(5 * kSecond);
  EXPECT_GT(host->state().total_interrupts, before + 1000);
}

TEST(Host, TemperatureRisesUnderLoad) {
  auto host = make_host();
  host->advance(5 * kSecond);
  const double cool = host->thermal().temp_c(0);
  Host::SpawnOptions options;
  options.comm = "hot";
  options.behavior = busy_behavior();
  options.allowed_cpus = {0};
  host->spawn_task(options);
  host->advance(30 * kSecond);
  EXPECT_GT(host->thermal().temp_c(0), cool + 5.0);
}

}  // namespace
}  // namespace cleaks::kernel
