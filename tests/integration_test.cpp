// End-to-end scenarios across modules: the attack kill chain, both defense
// stages, and their interaction — the claims of §IV/§V/§VI exercised
// against the full simulated cloud rather than single modules.
#include <gtest/gtest.h>

#include "containerleaks.h"

namespace cleaks {
namespace {

TEST(Integration, KillChainTripsOversubscribedBreaker) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 8;
  config.benign_load = true;
  config.seed = 1337;
  config.rack_breaker.rated_w = 1500.0;
  config.rack_breaker.thermal_capacity = 2.5;
  config.profile.default_container_cpus = 8;
  cloud::Datacenter dc(config);
  cloud::CloudProvider provider(dc, 42);

  coresidence::TimerImplantDetector verifier;
  attack::CoResidenceOrchestrator orchestrator(provider, verifier);
  const auto group = orchestrator.acquire("mallory", 3, 80);
  ASSERT_TRUE(group.success);

  attack::AttackConfig attack_config;
  attack_config.kind = attack::StrategyKind::kSynergistic;
  attack_config.min_history = 240;
  attack_config.trigger_percentile = 92.0;
  attack_config.trigger_margin = 0.05;
  attack_config.spike_duration = 30 * kSecond;
  attack_config.cooldown = 300 * kSecond;
  std::vector<std::unique_ptr<attack::PowerAttacker>> attackers;
  for (const auto& instance : group.instances) {
    attackers.push_back(std::make_unique<attack::PowerAttacker>(
        *instance->handle, attack_config));
  }
  for (int second = 0; second < 5400 && !dc.any_breaker_tripped(); ++second) {
    provider.step(kSecond);
    for (auto& attacker : attackers) attacker->step(dc.now(), kSecond);
  }
  EXPECT_TRUE(dc.rack_breaker(0).tripped());
}

TEST(Integration, BenignLoadAloneNeverTripsTheBreaker) {
  // The §II-C premise: oversubscription is safe against *benign* traffic;
  // only the orchestrated attack pushes it over.
  cloud::DatacenterConfig config;
  config.servers_per_rack = 8;
  config.benign_load = true;
  config.seed = 1337;
  config.rack_breaker.rated_w = 1500.0;
  config.rack_breaker.thermal_capacity = 2.5;
  config.profile.default_container_cpus = 8;
  cloud::Datacenter dc(config);
  // Same 1 s control cadence as the kill-chain scenario, so both tests see
  // the identical benign background trajectory.
  for (int second = 0; second < 2 * 60 * 60; ++second) {
    dc.step(kSecond);
  }
  EXPECT_FALSE(dc.any_breaker_tripped());
}

TEST(Integration, PowerNamespaceBlindsTheSynergisticTrigger) {
  // §VI-B: with the power-based namespace, the attacker's monitor reports
  // only its own (flat) consumption; crest-riding is impossible because a
  // benign surge is invisible.
  auto model = defense::train_default_model(4711);
  ASSERT_TRUE(model.is_ok());
  cloud::Server server("defended", cloud::local_testbed(), 5);
  server.host().set_tick_duration(100 * kMillisecond);
  defense::PowerNamespace power_ns(server.runtime(),
                                   std::move(model).value());
  container::ContainerConfig config;
  config.num_cpus = 4;
  auto attacker_instance = server.runtime().create(config);
  auto victim = server.runtime().create(config);
  power_ns.enable();
  server.step(2 * kSecond);

  attack::RaplMonitor monitor(*attacker_instance);
  monitor.sample_w(kSecond);
  // Quiet phase, then a large benign surge.
  std::vector<double> readings;
  for (int second = 0; second < 20; ++second) {
    server.step(kSecond);
    readings.push_back(monitor.sample_w(kSecond).value_or(0.0));
  }
  auto busy = workload::prime();
  for (int copy = 0; copy < 4; ++copy) victim->run("surge", busy.behavior);
  for (int second = 0; second < 20; ++second) {
    server.step(kSecond);
    readings.push_back(monitor.sample_w(kSecond).value_or(0.0));
  }
  // The attacker's view moves by at most a couple of watts; the host's
  // true power roughly tripled.
  RunningStats before;
  RunningStats after;
  for (int i = 2; i < 20; ++i) before.add(readings[static_cast<size_t>(i)]);
  for (int i = 22; i < 40; ++i) after.add(readings[static_cast<size_t>(i)]);
  EXPECT_LT(std::abs(after.mean() - before.mean()), 2.5);
  EXPECT_GT(server.host().last_tick_power_w(), 35.0);
}

TEST(Integration, MaskedCloudBreaksOrchestration) {
  // Stage-1 masking on the co-residence channels leaves the orchestrator
  // unable to verify placement: every probe is inconclusive, no group
  // forms.
  cloud::DatacenterConfig config;
  config.servers_per_rack = 4;
  config.benign_load = false;
  config.profile = cloud::local_testbed();
  config.profile.policy = fs::MaskingPolicy::paper_stage1();
  cloud::Datacenter dc(config);
  cloud::CloudProvider provider(dc, 7);
  coresidence::TimerImplantDetector verifier;
  attack::CoResidenceOrchestrator orchestrator(provider, verifier);
  const auto result = orchestrator.acquire("mallory", 3, 20);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.instances.size(), 1u);  // only the anchor
}

TEST(Integration, DefenseDoesNotDisturbHostSideMonitoring) {
  // Transparency goal: the provider's own telemetry (host context) is
  // unchanged by the power-based namespace.
  auto model = defense::train_default_model(4712);
  ASSERT_TRUE(model.is_ok());
  cloud::Server server("ops", cloud::local_testbed(), 6);
  server.host().set_tick_duration(100 * kMillisecond);

  fs::ViewContext host_ctx;
  server.step(5 * kSecond);
  const auto before =
      server.fs().read("/sys/class/powercap/intel-rapl:0/energy_uj", host_ctx);
  defense::PowerNamespace power_ns(server.runtime(),
                                   std::move(model).value());
  power_ns.enable();
  const auto after =
      server.fs().read("/sys/class/powercap/intel-rapl:0/energy_uj", host_ctx);
  ASSERT_TRUE(before.is_ok());
  ASSERT_TRUE(after.is_ok());
  EXPECT_EQ(before.value(), after.value());  // no time passed, same counter
}

TEST(Integration, UptimeChannelGroupsServersByRack) {
  // §IV-C: similar boot times suggest same-rack installation. Group the
  // fleet's servers by uptime proximity read from inside containers and
  // compare with the true rack topology.
  cloud::DatacenterConfig config;
  config.num_racks = 2;
  config.servers_per_rack = 3;
  config.benign_load = false;
  config.profile = cloud::local_testbed();
  cloud::Datacenter dc(config);

  std::vector<double> uptimes;
  for (int server_index = 0; server_index < dc.num_servers(); ++server_index) {
    auto probe = dc.server(server_index).runtime().create({});
    const auto view = probe->read_file("/proc/uptime");
    ASSERT_TRUE(view.is_ok());
    uptimes.push_back(extract_numbers(view.value())[0]);
  }
  for (int a = 0; a < dc.num_servers(); ++a) {
    for (int b = a + 1; b < dc.num_servers(); ++b) {
      const bool same_rack = dc.rack_of(a) == dc.rack_of(b);
      const double gap = std::abs(uptimes[static_cast<size_t>(a)] -
                                  uptimes[static_cast<size_t>(b)]);
      if (same_rack) {
        EXPECT_LT(gap, 3600.0) << a << " vs " << b;
      } else {
        EXPECT_GT(gap, 24 * 3600.0) << a << " vs " << b;
      }
    }
  }
}

TEST(Integration, BillingSeesThroughBurstyAttackers) {
  // §IV-B: the meter charges the continuous attacker an order of magnitude
  // more than the synergistic one for the same number of crest hits.
  cloud::DatacenterConfig config;
  config.servers_per_rack = 2;
  config.benign_load = true;
  config.seed = 99;
  cloud::Datacenter dc(config);
  cloud::CloudProvider provider(dc, 5);
  auto continuous_instance = provider.launch("continuous");
  auto monitoring_instance = provider.launch("monitoring");

  attack::AttackConfig continuous_config;
  continuous_config.kind = attack::StrategyKind::kContinuous;
  attack::PowerAttacker continuous_attacker(*continuous_instance->handle,
                                            continuous_config);
  attack::AttackConfig monitor_config;
  monitor_config.kind = attack::StrategyKind::kSynergistic;
  monitor_config.min_history = 1 << 30;  // observe forever
  attack::PowerAttacker monitoring_attacker(*monitoring_instance->handle,
                                            monitor_config);
  for (int second = 0; second < 1800; ++second) {
    provider.step(kSecond);
    continuous_attacker.step(dc.now(), kSecond);
    monitoring_attacker.step(dc.now(), kSecond);
  }
  EXPECT_GT(provider.billing().total_cost("continuous"),
            provider.billing().total_cost("monitoring") * 10.0);
}

TEST(Integration, CrossValidatorFindsRaplOnlyWhenHardwarePresent) {
  for (const bool has_rapl : {true, false}) {
    cloud::CloudServiceProfile profile = cloud::local_testbed();
    profile.hardware.has_rapl = has_rapl;
    profile.hardware.has_dram_rapl = has_rapl;
    cloud::Server server("hw-check", profile, 12);
    leakage::CrossValidator validator(server);
    const auto findings = validator.scan();
    bool saw_rapl = false;
    for (const auto& finding : findings) {
      if (contains(finding.path, "intel-rapl")) {
        saw_rapl = true;
        EXPECT_EQ(finding.cls, leakage::LeakClass::kLeaking);
      }
    }
    EXPECT_EQ(saw_rapl, has_rapl);
  }
}

}  // namespace
}  // namespace cleaks
