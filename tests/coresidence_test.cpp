#include <gtest/gtest.h>

#include "coresidence/detector.h"
#include "coresidence/evaluation.h"

namespace cleaks::coresidence {
namespace {

/// Two-server cloud with benign background load, plus containers with
/// known placement.
struct Fixture {
  Fixture() {
    cloud::DatacenterConfig config;
    config.servers_per_rack = 2;
    config.benign_load = true;
    config.seed = 23;
    // Stock Docker policy: no channel is masked (CC1 hides sched_debug).
    config.profile = cloud::local_testbed();
    dc = std::make_unique<cloud::Datacenter>(config);
    dc->step(5 * kSecond);  // let the generators establish a baseline

    container::ContainerConfig cc;
    cc.num_cpus = 8;
    cc.memory_limit_bytes = 8ULL << 30;
    same_a = dc->server(0).runtime().create(cc);
    same_b = dc->server(0).runtime().create(cc);
    other = dc->server(1).runtime().create(cc);
    env.advance = [this](SimDuration dt) { dc->step(dt); };
  }

  std::unique_ptr<cloud::Datacenter> dc;
  std::shared_ptr<container::Container> same_a, same_b, other;
  ProbeEnv env;
};

class DetectorTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<CoResidenceDetector> detector() {
    auto detectors = all_detectors();
    return std::move(detectors.at(static_cast<std::size_t>(GetParam())));
  }
};

TEST_P(DetectorTest, DetectsCoResidentPair) {
  Fixture fixture;
  auto det = detector();
  EXPECT_EQ(det->verify(*fixture.same_a, *fixture.same_b, fixture.env),
            Verdict::kCoResident)
      << det->name();
}

TEST_P(DetectorTest, RejectsCrossHostPair) {
  Fixture fixture;
  auto det = detector();
  EXPECT_EQ(det->verify(*fixture.same_a, *fixture.other, fixture.env),
            Verdict::kNotCoResident)
      << det->name();
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, DetectorTest,
                         ::testing::Range(0, 10));  // all_detectors() size

TEST(Detectors, NamesAndOrder) {
  const auto detectors = all_detectors();
  ASSERT_EQ(detectors.size(), 10u);
  EXPECT_EQ(detectors[0]->name(), "boot_id");
  EXPECT_EQ(detectors[3]->name(), "timer_list");
  EXPECT_EQ(detectors.back()->name(), "coretemp");
}

TEST(Detectors, MaskedChannelYieldsInconclusive) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 2;
  config.benign_load = false;
  config.profile.policy = fs::MaskingPolicy::paper_stage1();
  cloud::Datacenter dc(config);
  auto a = dc.server(0).runtime().create({});
  auto b = dc.server(0).runtime().create({});
  ProbeEnv env;
  env.advance = [&](SimDuration dt) { dc.step(dt); };
  BootIdDetector boot_id;
  EXPECT_EQ(boot_id.verify(*a, *b, env), Verdict::kInconclusive);
  MemTraceDetector mem_trace(10);
  EXPECT_EQ(mem_trace.verify(*a, *b, env), Verdict::kInconclusive);
}

TEST(Detectors, EnergyDetectorInconclusiveWithoutRapl) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 2;
  config.profile = cloud::cc4();  // no RAPL hardware
  config.benign_load = false;
  cloud::Datacenter dc(config);
  auto a = dc.server(0).runtime().create({});
  auto b = dc.server(0).runtime().create({});
  ProbeEnv env;
  env.advance = [&](SimDuration dt) { dc.step(dt); };
  EnergyCounterDetector detector;
  EXPECT_EQ(detector.verify(*a, *b, env), Verdict::kInconclusive);
}

TEST(Detectors, UptimeToleranceSeparatesRackMates) {
  // Two servers in the same rack boot minutes apart: §IV-C uses *similar*
  // boot time as rack proximity, but the uptime equality check must still
  // call them different machines.
  Fixture fixture;
  UptimeDetector detector;
  EXPECT_EQ(
      detector.verify(*fixture.same_a, *fixture.other, fixture.env),
      Verdict::kNotCoResident);
}

TEST(Detectors, TimerImplantLeavesNoResidue) {
  Fixture fixture;
  TimerImplantDetector detector;
  detector.verify(*fixture.same_a, *fixture.same_b, fixture.env);
  // After verification the planted task is gone from the host view.
  const auto timers = fixture.same_b->read_file("/proc/timer_list").value();
  EXPECT_EQ(timers.find("probe"), std::string::npos);
}

TEST(Detectors, ProbeDurationsOrdered) {
  // Static-id probes are instant; trace matching is the slowest.
  BootIdDetector boot_id;
  MemTraceDetector mem_trace;
  EXPECT_EQ(boot_id.probe_duration(), 0u);
  EXPECT_GE(mem_trace.probe_duration(), 30 * kSecond);
}

TEST(Detectors, VerdictNames) {
  EXPECT_EQ(to_string(Verdict::kCoResident), "co-resident");
  EXPECT_EQ(to_string(Verdict::kNotCoResident), "not-co-resident");
  EXPECT_EQ(to_string(Verdict::kInconclusive), "inconclusive");
}

// ---------- evaluation harness ----------

TEST(Evaluation, BootIdDetectorIsPerfect) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 3;
  config.benign_load = true;
  config.seed = 31;
  cloud::Datacenter dc(config);
  BootIdDetector detector;
  EvaluationOptions options;
  options.trials = 10;
  const auto result = evaluate_detector(dc, detector, options);
  EXPECT_EQ(result.trials, 10);
  EXPECT_EQ(result.accuracy(), 1.0);
  EXPECT_EQ(result.inconclusive, 0);
}

TEST(Evaluation, TimerImplantHighAccuracyUnderLoad) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 3;
  config.benign_load = true;
  config.seed = 32;
  cloud::Datacenter dc(config);
  TimerImplantDetector detector;
  EvaluationOptions options;
  options.trials = 8;
  const auto result = evaluate_detector(dc, detector, options);
  EXPECT_GE(result.accuracy(), 0.99);
}

TEST(Evaluation, ConfusionMatrixAddsUp) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 2;
  config.benign_load = false;
  cloud::Datacenter dc(config);
  UptimeDetector detector;
  EvaluationOptions options;
  options.trials = 6;
  const auto result = evaluate_detector(dc, detector, options);
  EXPECT_EQ(result.true_positive + result.false_positive +
                result.true_negative + result.false_negative +
                result.inconclusive,
            result.trials);
}

}  // namespace
}  // namespace cleaks::coresidence
