// Sparse stepping: the discrete-event core (TimerWheel), the analytic
// idle-coast integrators, and the dense/sparse facility equivalence.
//
// The load-bearing property is bitwise equality: coasting an idle interval
// in one closed-form jump must land on exactly the bits the equivalent
// sequence of per-tick idle materialisations produces, for any split of
// the interval, across RAPL wrap boundaries, and through episode-ending
// mutations. The facility-level tests then pin that a sparse Datacenter
// (servers parked on the wheel, intervals deferred in O(1)) is
// indistinguishable from the dense reference in every rendered pseudo-file
// and every Scope::kSim counter.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "fs/pseudo_fs.h"
#include "kernel/host.h"
#include "obs/metrics.h"
#include "util/event_core.h"
#include "workload/onoff.h"

namespace cleaks {
namespace {

// ---------- timer wheel ----------

std::vector<std::uint32_t> ids(const std::vector<TimerWheel::Entry>& entries) {
  std::vector<std::uint32_t> out;
  for (const auto& entry : entries) out.push_back(entry.id);
  return out;
}

TEST(TimerWheel, PopsOnlyDueEntriesSortedByTimeThenId) {
  TimerWheel wheel;
  wheel.schedule(5 * kMinute, 3);
  wheel.schedule(1 * kMinute, 7);
  wheel.schedule(1 * kMinute, 2);
  EXPECT_EQ(wheel.size(), 3u);
  EXPECT_EQ(ids(wheel.pop_due(2 * kMinute)),
            (std::vector<std::uint32_t>{2, 7}));
  EXPECT_EQ(ids(wheel.pop_due(2 * kMinute)), std::vector<std::uint32_t>{});
  EXPECT_EQ(ids(wheel.pop_due(10 * kMinute)), std::vector<std::uint32_t>{3});
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, OverflowBeyondHorizonCascadesIn) {
  TimerWheel wheel(kMinute, 16);  // horizon: 16 minutes
  wheel.schedule(2 * kHour, 9);
  wheel.schedule(30 * kSecond, 1);
  EXPECT_EQ(ids(wheel.pop_due(kMinute)), std::vector<std::uint32_t>{1});
  EXPECT_EQ(ids(wheel.pop_due(kHour)), std::vector<std::uint32_t>{});
  EXPECT_EQ(ids(wheel.pop_due(3 * kHour)), std::vector<std::uint32_t>{9});
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, PastDeadlinesAndDuplicatesPopNext) {
  TimerWheel wheel;
  EXPECT_TRUE(wheel.pop_due(kHour).empty());  // clock jump on empty wheel
  wheel.schedule(kMinute, 4);  // already past the wheel clock
  wheel.schedule(kMinute, 4);
  EXPECT_EQ(ids(wheel.pop_due(kHour)), (std::vector<std::uint32_t>{4, 4}));
}

TEST(TimerWheelDeathTest, PopClockGoingBackwardsAssertsAndClamps) {
  TimerWheel wheel;
  wheel.schedule(5 * kMinute, 1);
  EXPECT_TRUE(wheel.pop_due(2 * kMinute).empty());
  // The contract was always "now must not go backwards"; it is now
  // enforced: debug builds assert, release builds clamp to the high-water
  // mark so the confused call degrades to a same-time pop instead of
  // re-popping drained windows.
  EXPECT_DEBUG_DEATH((void)wheel.pop_due(kMinute), "clock went backwards");
  EXPECT_EQ(ids(wheel.pop_due(10 * kMinute)), std::vector<std::uint32_t>{1});
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, SchedulesNearTheClockTopDoNotWrapTheHorizon) {
  // base + width * buckets can exceed the u64 range once the wheel clock
  // runs high; a wrapped horizon would classify every future entry as
  // in-bucket and corrupt the wheel. The horizon saturates at kNever
  // instead, and overflow entries that can then never cascade drain
  // directly when due.
  TimerWheel wheel(kMinute, 16);
  const SimTime top = TimerWheel::kNever;
  wheel.schedule(top - kSecond, 42);
  wheel.schedule(top, 7);
  EXPECT_EQ(wheel.next_due(), top - kSecond);
  EXPECT_TRUE(wheel.pop_due(top - kHour).empty());
  EXPECT_EQ(ids(wheel.pop_due(top - kSecond)), std::vector<std::uint32_t>{42});
  EXPECT_EQ(ids(wheel.pop_due(top)), std::vector<std::uint32_t>{7});
  EXPECT_TRUE(wheel.empty());
}

TEST(TimerWheel, NextDueReportsEarliestAcrossBucketsAndOverflow) {
  TimerWheel wheel(kMinute, 16);  // horizon: 16 minutes
  EXPECT_EQ(wheel.next_due(), TimerWheel::kNever);
  wheel.schedule(2 * kHour, 9);  // beyond the horizon: overflow list
  EXPECT_EQ(wheel.next_due(), 2 * kHour);
  wheel.schedule(5 * kMinute, 3);
  EXPECT_EQ(wheel.next_due(), 5 * kMinute);
  wheel.schedule(30 * kSecond, 1);
  EXPECT_EQ(wheel.next_due(), 30 * kSecond);
  EXPECT_EQ(ids(wheel.pop_due(kMinute)), std::vector<std::uint32_t>{1});
  EXPECT_EQ(wheel.next_due(), 5 * kMinute);
  EXPECT_EQ(ids(wheel.pop_due(kHour)), std::vector<std::uint32_t>{3});
  EXPECT_EQ(wheel.next_due(), 2 * kHour);
  EXPECT_EQ(ids(wheel.pop_due(2 * kHour)), std::vector<std::uint32_t>{9});
  EXPECT_EQ(wheel.next_due(), TimerWheel::kNever);
}

// ---------- host-level coast equivalence ----------

std::unique_ptr<kernel::Host> make_idle_host(std::uint64_t seed = 11) {
  auto host = std::make_unique<kernel::Host>("coast", cloud::cc1().hardware,
                                             seed, /*boot_time=*/0);
  host->set_tick_duration(kSecond);
  host->set_coast_enabled(true);
  return host;
}

// Full-surface equality: every pseudo-file byte plus the raw hardware
// state the renderers don't cover exhaustively (wrap counts, lifetime
// energy, per-core temperatures and deep-idle residency).
void expect_hosts_identical(kernel::Host& a, kernel::Host& b) {
  ASSERT_EQ(a.now(), b.now());
  fs::PseudoFs fs_a(a);
  fs::PseudoFs fs_b(b);
  const fs::ViewContext ctx;
  for (const std::string& path : fs_a.list_paths()) {
    const auto ra = fs_a.read(path, ctx);
    const auto rb = fs_b.read(path, ctx);
    ASSERT_EQ(ra.is_ok(), rb.is_ok()) << path;
    if (ra.is_ok()) {
      EXPECT_EQ(ra.value(), rb.value()) << path;
    }
  }
  EXPECT_EQ(a.lifetime_energy_j(), b.lifetime_energy_j());
  EXPECT_EQ(a.last_tick_power_w(), b.last_tick_power_w());
  ASSERT_EQ(a.rapl().size(), b.rapl().size());
  for (std::size_t i = 0; i < a.rapl().size(); ++i) {
    const auto& pa = a.rapl()[i];
    const auto& pb = b.rapl()[i];
    EXPECT_EQ(pa.package().state().wrap_count,
              pb.package().state().wrap_count);
    EXPECT_EQ(pa.package().state().counter_uj,
              pb.package().state().counter_uj);
    EXPECT_EQ(pa.core().state().counter_uj, pb.core().state().counter_uj);
    EXPECT_EQ(pa.dram().state().counter_uj, pb.dram().state().counter_uj);
  }
  for (int core = 0; core < a.spec().num_cores; ++core) {
    EXPECT_EQ(a.thermal().temp_c(core), b.thermal().temp_c(core));
  }
  const int deepest = a.cpuidle().num_states() - 1;
  for (int core = 0; core < a.spec().num_cores; ++core) {
    EXPECT_EQ(a.cpuidle().usage(core, deepest),
              b.cpuidle().usage(core, deepest));
    EXPECT_EQ(a.cpuidle().time_us(core, deepest),
              b.cpuidle().time_us(core, deepest));
  }
  EXPECT_EQ(a.state().load1, b.state().load1);
  EXPECT_EQ(a.state().total_ctxt_switches, b.state().total_ctxt_switches);
}

TEST(CoastEquivalence, OneShotCoastMatchesIdleTickSequenceAcrossRaplWrap) {
  auto dense = make_idle_host();
  auto sparse = make_idle_host();
  // 4 h at ~74 W per package wraps the 262 kJ RAPL counter several times;
  // the closed form must carry residual microjoules and wrap counts
  // exactly as 14400 one-second materialisations do.
  const SimDuration interval = 4 * kHour;
  dense->advance_idle(interval);
  sparse->defer_idle(interval);
  sparse->coast_sync();
  EXPECT_GE(sparse->rapl()[0].package().state().wrap_count, 3u);
  expect_hosts_identical(*dense, *sparse);
}

TEST(CoastEquivalence, ArbitrarySplitsOfTheIntervalAreInvariant) {
  auto one_shot = make_idle_host();
  auto ragged = make_idle_host();
  auto ticked = make_idle_host();
  const SimDuration total = 2 * kHour;
  one_shot->defer_idle(total);
  one_shot->coast_sync();
  // Ragged chunks, including sub-tick and non-multiple-of-a-second cuts.
  const SimDuration chunks[] = {1, 3 * kSecond + 7, 59 * kMinute,
                                kSecond / 2, 0, total};
  SimDuration spent = 0;
  for (const SimDuration chunk : chunks) {
    const SimDuration take = std::min(chunk, total - spent);
    ragged->defer_idle(take);
    ragged->coast_sync();
    spent += take;
  }
  ragged->defer_idle(total - spent);
  ragged->coast_sync();
  ticked->advance_idle(total);
  expect_hosts_identical(*one_shot, *ragged);
  expect_hosts_identical(*one_shot, *ticked);
}

TEST(CoastEquivalence, MutationMidIntervalSplitsTheEpisodeIdentically) {
  // A forced RAPL wrap (the fault injector's step-boundary glitch) plus a
  // spawn/kill pair end the episode on both hosts at the same instant; the
  // re-anchored second half must still land on identical bits.
  auto dense = make_idle_host();
  auto sparse = make_idle_host();
  auto mutate = [](kernel::Host& host) {
    for (auto& pkg : host.mutable_rapl()) pkg.package().force_wrap();
    kernel::Host::SpawnOptions options;
    options.comm = "blip";
    options.behavior.duty_cycle = 0.5;
    const auto pid = host.spawn_task(options)->host_pid;
    host.kill_task(pid);
  };
  dense->advance_idle(30 * kMinute);
  EXPECT_TRUE(dense->coast_active());
  mutate(*dense);
  EXPECT_FALSE(dense->coast_active());
  dense->advance_idle(30 * kMinute);

  sparse->defer_idle(30 * kMinute);
  sparse->coast_sync();
  mutate(*sparse);
  sparse->defer_idle(30 * kMinute);
  sparse->coast_sync();
  expect_hosts_identical(*dense, *sparse);
}

TEST(CoastEligibility, EndsWithCapAndResumesWhenLifted) {
  auto host = make_idle_host();
  EXPECT_TRUE(host->coast_eligible());
  host->defer_idle(kMinute);
  EXPECT_TRUE(host->coast_active());
  host->coast_sync();
  host->set_power_cap_w(120.0);
  EXPECT_FALSE(host->coast_active());
  EXPECT_FALSE(host->coast_eligible());
  host->set_power_cap_w(0.0);
  EXPECT_TRUE(host->coast_eligible());
  // Re-asserting the lifted cap is a pure no-op: it must not end episodes.
  host->defer_idle(kMinute);
  host->set_power_cap_w(0.0);
  EXPECT_TRUE(host->coast_active());
}

// ---------- facility-level dense vs sparse ----------

struct ServerSnapshot {
  std::string stat;
  std::string uptime;
  std::string loadavg;
  std::string interrupts;
  double power_w = 0.0;
  double lifetime_j = 0.0;
  std::uint64_t pkg0_uj = 0;
  std::uint64_t wraps = 0;

  bool operator==(const ServerSnapshot&) const = default;
};

ServerSnapshot snapshot(cloud::Server& server) {
  const fs::ViewContext ctx;
  ServerSnapshot snap;
  snap.stat = server.fs().read("/proc/stat", ctx).value();
  snap.uptime = server.fs().read("/proc/uptime", ctx).value();
  snap.loadavg = server.fs().read("/proc/loadavg", ctx).value();
  snap.interrupts = server.fs().read("/proc/interrupts", ctx).value();
  snap.power_w = server.power_w();
  snap.lifetime_j = server.host().lifetime_energy_j();
  snap.pkg0_uj = server.host().rapl()[0].package().energy_uj();
  snap.wraps = server.host().rapl()[0].package().state().wrap_count;
  return snap;
}

cloud::DatacenterConfig facility_config(bool sparse) {
  cloud::DatacenterConfig config;
  config.num_racks = 2;
  config.servers_per_rack = 4;
  config.benign_load = false;
  config.rack_power_cap_w = 1500.0;  // above idle draw: lifts every window
  config.seed = 77;
  config.sparse = sparse ? 1 : 0;
  return config;
}

workload::OnOffParams bursty() {
  workload::OnOffParams params;
  params.on_duration = 2 * kMinute;
  params.off_duration = 7 * kMinute;
  params.phase = 30 * kSecond;
  params.workers = 4;
  return params;
}

std::vector<ServerSnapshot> run_facility(bool sparse, int num_threads,
                                         int* slept = nullptr) {
  cloud::DatacenterConfig config = facility_config(sparse);
  config.num_threads = num_threads;
  cloud::Datacenter dc(config);
  // Server 0 flips between load and idle: its wheel wakeups, coast entries
  // and exits all happen mid-run. The other seven sleep throughout.
  dc.server(0).enable_onoff_load(bursty());
  int max_sleeping = 0;
  for (int s = 0; s < 30 * 60; ++s) {
    dc.step(kSecond);
    max_sleeping = std::max(max_sleeping, dc.sleeping_servers());
  }
  if (slept != nullptr) *slept = max_sleeping;
  std::vector<ServerSnapshot> snaps;
  for (int i = 0; i < dc.num_servers(); ++i) snaps.push_back(snapshot(dc.server(i)));
  return snaps;
}

TEST(SparseFacility, DenseAndSparseProduceIdenticalServerState) {
  int dense_slept = -1;
  int sparse_slept = -1;
  const auto dense = run_facility(false, 1, &dense_slept);
  const auto sparse = run_facility(true, 1, &sparse_slept);
  EXPECT_EQ(dense_slept, 0);   // dense never parks anyone
  EXPECT_GE(sparse_slept, 7);  // the seven idle servers sleep on the wheel
  ASSERT_EQ(dense.size(), sparse.size());
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_EQ(dense[i], sparse[i]) << "server " << i;
  }
}

TEST(SparseFacility, SparseIsLaneCountIndependent) {
  const auto serial = run_facility(true, 1);
  EXPECT_EQ(run_facility(true, 4), serial);
}

TEST(SparseFacility, EngineCountersAccrueEquallyInBothModes) {
  auto& registry = obs::Registry::global();
  auto& active = registry.counter(
      "engine_active_server_steps_total",
      "server-steps that ran full per-tick physics (did not coast)");
  auto& coasted = registry.counter(
      "engine_idle_coasted_sim_seconds_total",
      "sim-seconds advanced through the analytic idle coast");
  auto run = [](bool sparse) {
    cloud::Datacenter dc(facility_config(sparse));
    for (int s = 0; s < 120; ++s) dc.step(kSecond);
  };
  const std::uint64_t active_0 = active.value();
  const std::uint64_t coasted_0 = coasted.value();
  run(false);
  const std::uint64_t active_dense = active.value() - active_0;
  const std::uint64_t coasted_dense = coasted.value() - coasted_0;
  run(true);
  const std::uint64_t active_sparse = active.value() - active_0 - active_dense;
  const std::uint64_t coasted_sparse =
      coasted.value() - coasted_0 - coasted_dense;
  // Fully idle facility: every server coasts every step in both modes.
  EXPECT_EQ(active_dense, 0u);
  EXPECT_EQ(coasted_dense, 8u * 120u);
  EXPECT_EQ(active_sparse, active_dense);
  EXPECT_EQ(coasted_sparse, coasted_dense);
}

// ---------- recorded dense-era goldens ----------

// FNV-1a, matching the capture tool that recorded the goldens below from
// the last build that still had the visit-every-server branch as separate
// code. Pinning the numbers (not just dense == sparse) guards against a
// refactor that changes both modes in lockstep.
struct GoldenDigest {
  std::uint64_t hash = 1469598103934665603ULL;
  void add(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      hash ^= bytes[i];
      hash *= 1099511628211ULL;
    }
  }
  void add_str(const std::string& s) { add(s.data(), s.size()); }
  void add_double(double v) { add(&v, sizeof v); }
  void add_u64(std::uint64_t v) { add(&v, sizeof v); }
};

// The run_facility scenario, additionally folding the per-step rack power
// trace — the value whose aggregation moved from an O(N) fold on every
// read to the incrementally maintained cache.
std::uint64_t facility_trace_digest(bool sparse, int num_threads) {
  cloud::DatacenterConfig config = facility_config(sparse);
  config.num_threads = num_threads;
  cloud::Datacenter dc(config);
  dc.server(0).enable_onoff_load(bursty());
  GoldenDigest digest;
  for (int s = 0; s < 30 * 60; ++s) {
    dc.step(kSecond);
    for (int rack = 0; rack < config.num_racks; ++rack) {
      digest.add_double(dc.rack_power_w(rack));
    }
  }
  const fs::ViewContext ctx;
  for (int i = 0; i < dc.num_servers(); ++i) {
    cloud::Server& server = dc.server(i);
    digest.add_str(server.fs().read("/proc/stat", ctx).value());
    digest.add_str(server.fs().read("/proc/uptime", ctx).value());
    digest.add_str(server.fs().read("/proc/loadavg", ctx).value());
    digest.add_str(server.fs().read("/proc/interrupts", ctx).value());
    digest.add_double(server.power_w());
    digest.add_double(server.host().lifetime_energy_j());
    digest.add_u64(server.host().rapl()[0].package().energy_uj());
    digest.add_u64(server.host().rapl()[0].package().state().wrap_count);
  }
  return digest.hash;
}

TEST(SparseFacility, RecordedDenseEraTraceDigestHoldsInBothModes) {
  // Recorded from the pre-unification dense branch (sparse=0, 1 lane).
  constexpr std::uint64_t kRecorded = 0xc2a5ae66613f9ebfULL;
  EXPECT_EQ(facility_trace_digest(false, 1), kRecorded);
  EXPECT_EQ(facility_trace_digest(true, 1), kRecorded);
  EXPECT_EQ(facility_trace_digest(true, 4), kRecorded);
}

TEST(SparseFacility, RecordedDenseEraEndStateHexfloats) {
  // Spot values from the same capture, exact to the bit.
  const auto snaps = run_facility(true, 1);
  ASSERT_EQ(snaps.size(), 8u);
  for (const auto& snap : snaps) {
    EXPECT_EQ(snap.power_w, 0x1.28p+7);  // 148 W idle draw, pinned coasting
  }
  EXPECT_EQ(snaps[0].lifetime_j, 0x1.681b0c0ef429p+28);
  EXPECT_EQ(snaps[0].pkg0_uj, 58650857293u);
  EXPECT_EQ(snaps[3].lifetime_j, 0x1.6832ef1f0c6d3p+28);
  EXPECT_EQ(snaps[3].pkg0_uj, 104796198266u);
  EXPECT_EQ(snaps[4].lifetime_j, 0x1.22def4239e705p+29);
  EXPECT_EQ(snaps[4].pkg0_uj, 127566773631u);
  EXPECT_EQ(snaps[7].lifetime_j, 0x1.22dd3d7a90e8dp+29);
  EXPECT_EQ(snaps[7].pkg0_uj, 120548207828u);
}

// ---------- CLEAKS_SPARSE resolution ----------

bool sparse_with_env(const char* value) {
  if (value == nullptr) {
    unsetenv("CLEAKS_SPARSE");
  } else {
    setenv("CLEAKS_SPARSE", value, 1);
  }
  cloud::DatacenterConfig config;
  config.num_racks = 1;
  config.servers_per_rack = 1;
  config.benign_load = false;
  config.sparse = -1;  // defer to the environment
  const bool sparse = cloud::Datacenter(config).sparse();
  unsetenv("CLEAKS_SPARSE");
  return sparse;
}

TEST(SparseEnvResolver, StrictParseMatrix) {
  EXPECT_TRUE(sparse_with_env(nullptr));  // default: sparse on
  EXPECT_TRUE(sparse_with_env("1"));
  EXPECT_FALSE(sparse_with_env("0"));
  EXPECT_TRUE(sparse_with_env("2"));
  EXPECT_FALSE(sparse_with_env(" 0"));  // strtol skips leading whitespace
  // The regression this strictness fixes: every non-numeric value used to
  // parse as 0 and silently disable sparse stepping. Now it means "unset",
  // which falls back to the default (on).
  EXPECT_TRUE(sparse_with_env("true"));
  EXPECT_TRUE(sparse_with_env(""));
  EXPECT_TRUE(sparse_with_env("garbage"));
}

TEST(SparseEnvResolver, ExplicitConfigBeatsEnvironment) {
  setenv("CLEAKS_SPARSE", "0", 1);
  cloud::DatacenterConfig config;
  config.num_racks = 1;
  config.servers_per_rack = 1;
  config.benign_load = false;
  config.sparse = 1;
  EXPECT_TRUE(cloud::Datacenter(config).sparse());
  config.sparse = 0;
  unsetenv("CLEAKS_SPARSE");
  EXPECT_FALSE(cloud::Datacenter(config).sparse());
}

}  // namespace
}  // namespace cleaks
