#include <gtest/gtest.h>

#include "container/container.h"
#include "util/strings.h"

namespace cleaks::container {
namespace {

struct Fixture {
  Fixture()
      : host("c-host", hw::testbed_i7_6700(), 31),
        filesystem(host),
        runtime(host, filesystem) {
    host.set_tick_duration(100 * kMillisecond);
  }

  kernel::Host host;
  fs::PseudoFs filesystem;
  ContainerRuntime runtime;
};

TEST(Container, CreateSetsUpNamespacesAndCgroup) {
  Fixture fixture;
  auto instance = fixture.runtime.create({});
  EXPECT_EQ(instance->id().size(), 12u);
  EXPECT_EQ(instance->cgroup()->path(), "/docker/" + instance->id());
  EXPECT_FALSE(
      instance->ns().in_init_ns(kernel::NsType::kPid, fixture.host.init_ns()));
  EXPECT_EQ(instance->ns().uts->hostname, instance->id());
}

TEST(Container, InitTaskIsPidOneInItsNamespace) {
  Fixture fixture;
  auto instance = fixture.runtime.create({});
  ASSERT_NE(instance->init_task(), nullptr);
  EXPECT_EQ(instance->init_task()->ns_pid, 1);
  EXPECT_GT(instance->init_task()->host_pid, 1);  // not pid 1 on the host
}

TEST(Container, RunAssignsNamespacePids) {
  Fixture fixture;
  auto instance = fixture.runtime.create({});
  auto first = instance->run("app", {});
  auto second = instance->run("worker", {});
  EXPECT_EQ(first->ns_pid, 2);
  EXPECT_EQ(second->ns_pid, 3);
  EXPECT_EQ(first->container_id, instance->id());
}

TEST(Container, CpusetAllocationRespectsSize) {
  Fixture fixture;
  ContainerConfig config;
  config.num_cpus = 3;
  auto instance = fixture.runtime.create(config);
  EXPECT_EQ(instance->cpuset().size(), 3u);
}

TEST(Container, CpusetsSpreadAcrossCores) {
  Fixture fixture;
  ContainerConfig config;
  config.num_cpus = 4;
  auto a = fixture.runtime.create(config);
  auto b = fixture.runtime.create(config);
  // 8 cores, two 4-core containers: the allocator avoids overlap.
  std::set<int> combined(a->cpuset().begin(), a->cpuset().end());
  combined.insert(b->cpuset().begin(), b->cpuset().end());
  EXPECT_EQ(combined.size(), 8u);
}

TEST(Container, ZeroCpusMeansAllCores) {
  Fixture fixture;
  auto instance = fixture.runtime.create({});
  EXPECT_TRUE(instance->cpuset().empty());
}

TEST(Container, TasksConfinedToCpuset) {
  Fixture fixture;
  ContainerConfig config;
  config.num_cpus = 2;
  auto instance = fixture.runtime.create(config);
  kernel::TaskBehavior busy;
  busy.duty_cycle = 1.0;
  for (int i = 0; i < 4; ++i) instance->run("pin", busy);
  fixture.host.advance(5 * kSecond);
  for (const auto& task : instance->tasks()) {
    EXPECT_TRUE(std::find(instance->cpuset().begin(), instance->cpuset().end(),
                          task->cpu) != instance->cpuset().end());
  }
}

TEST(Container, MemoryUsageTracksTasks) {
  Fixture fixture;
  auto instance = fixture.runtime.create({});
  const auto base = instance->cgroup()->memory.usage_bytes;
  kernel::TaskBehavior behavior;
  behavior.rss_bytes = 256ULL << 20;
  auto task = instance->run("mem", behavior);
  EXPECT_EQ(instance->cgroup()->memory.usage_bytes, base + (256ULL << 20));
  instance->kill(task->host_pid);
  EXPECT_EQ(instance->cgroup()->memory.usage_bytes, base);
}

TEST(Container, DestroyKillsTasksAndRemovesCgroup) {
  Fixture fixture;
  auto instance = fixture.runtime.create({});
  auto task = instance->run("app", {});
  const auto id = instance->id();
  EXPECT_TRUE(fixture.runtime.destroy(id));
  EXPECT_EQ(fixture.host.find_task(task->host_pid), nullptr);
  EXPECT_EQ(fixture.host.cgroups().find("/docker/" + id), nullptr);
  EXPECT_EQ(fixture.runtime.find(id), nullptr);
  EXPECT_FALSE(fixture.runtime.destroy(id));
}

TEST(Container, DestroyedContainerRefusesReads) {
  Fixture fixture;
  auto instance = fixture.runtime.create({});
  fixture.runtime.destroy(instance->id());
  // Matches pins the *reason*: kUnavailable also covers injected
  // transients, but this one must be the lifecycle refusal.
  EXPECT_TRUE(instance->read_file("/proc/uptime")
                  .status()
                  .Matches(StatusCode::kUnavailable, "not running"));
}

TEST(Container, VethAppearsAndDisappearsOnHost) {
  Fixture fixture;
  const auto base_devices = fixture.host.init_ns().net->devices.size();
  auto instance = fixture.runtime.create({});
  EXPECT_EQ(fixture.host.init_ns().net->devices.size(), base_devices + 1);
  const std::string veth = "veth" + instance->id().substr(0, 7);
  bool found = false;
  for (const auto& device : fixture.host.init_ns().net->devices) {
    if (device.name == veth) found = true;
  }
  EXPECT_TRUE(found);
  fixture.runtime.destroy(instance->id());
  EXPECT_EQ(fixture.host.init_ns().net->devices.size(), base_devices);
}

TEST(Container, LifecycleHookFires) {
  Fixture fixture;
  int created = 0;
  int destroyed = 0;
  fixture.runtime.set_lifecycle_hook(
      [&](Container&, bool is_create) { is_create ? ++created : ++destroyed; });
  auto instance = fixture.runtime.create({});
  EXPECT_EQ(created, 1);
  fixture.runtime.destroy(instance->id());
  EXPECT_EQ(destroyed, 1);
}

TEST(Container, PolicySwapAffectsExistingContainers) {
  Fixture fixture;
  auto instance = fixture.runtime.create({});
  EXPECT_TRUE(instance->read_file("/proc/uptime").is_ok());
  fixture.runtime.set_policy(fs::MaskingPolicy::paper_stage1());
  EXPECT_EQ(instance->read_file("/proc/uptime").code(),
            StatusCode::kPermissionDenied);
}

TEST(Container, IdsAreUniqueAndDeterministic) {
  Fixture a;
  Fixture b;
  EXPECT_EQ(a.runtime.create({})->id(), b.runtime.create({})->id());
  EXPECT_NE(a.runtime.create({})->id(), a.runtime.containers()[0]->id());
}

TEST(Container, CpuQuotaAppliedFromConfig) {
  Fixture fixture;
  ContainerConfig config;
  config.cpu_quota = 0.5;
  auto instance = fixture.runtime.create(config);
  EXPECT_DOUBLE_EQ(instance->cgroup()->cpu_quota, 0.5);
}

}  // namespace
}  // namespace cleaks::container
