#include <gtest/gtest.h>

#include "attack/monitor.h"
#include "attack/orchestrator.h"
#include "attack/strategy.h"
#include "workload/profiles.h"

namespace cleaks::attack {
namespace {

struct Fixture {
  explicit Fixture(cloud::CloudServiceProfile profile = cloud::local_testbed())
      : server("atk-host", profile, 41, 20 * kDay) {
    instance = server.runtime().create({});
  }
  cloud::Server server;
  std::shared_ptr<container::Container> instance;
};

// ---------- monitor ----------

TEST(Monitor, ReadsHostPowerThroughLeak) {
  Fixture fixture;
  RaplMonitor monitor(*fixture.instance);
  EXPECT_FALSE(monitor.sample_w(kSecond).has_value());  // priming read
  fixture.server.step(2 * kSecond);
  const auto sample = monitor.sample_w(2 * kSecond);
  ASSERT_TRUE(sample.has_value());
  // The leaked reading tracks the host's true power within noise.
  EXPECT_NEAR(*sample, fixture.server.power_w(), fixture.server.power_w() * 0.2);
}

TEST(Monitor, TracksLoadChanges) {
  Fixture fixture;
  RaplMonitor monitor(*fixture.instance);
  monitor.sample_w(kSecond);
  fixture.server.step(2 * kSecond);
  const double idle_power = monitor.sample_w(2 * kSecond).value();
  auto hog = workload::power_virus();
  std::vector<kernel::HostPid> pids;
  for (int i = 0; i < 8; ++i) {
    pids.push_back(
        fixture.server.host().spawn_task({.comm = "v", .behavior = hog.behavior})
            ->host_pid);
  }
  fixture.server.step(3 * kSecond);
  const double busy_power = monitor.sample_w(3 * kSecond).value();
  EXPECT_GT(busy_power, idle_power * 2.0);
}

TEST(Monitor, UnavailableWithoutRapl) {
  Fixture fixture(cloud::cc4());
  RaplMonitor monitor(*fixture.instance);
  fixture.server.step(kSecond);
  EXPECT_FALSE(monitor.sample_w(kSecond).has_value());
}

TEST(Monitor, UnavailableWhenMasked) {
  auto profile = cloud::local_testbed();
  profile.policy.add_rule("/sys/class/**", fs::MaskAction::kDeny);
  Fixture fixture(profile);
  fixture.server.step(kSecond);
  RaplMonitor monitor(*fixture.instance);
  EXPECT_FALSE(monitor.sample_w(kSecond).has_value());
}

// ---------- strategies ----------

TEST(Strategy, ContinuousAttackRunsVirusNonStop) {
  Fixture fixture;
  AttackConfig config;
  config.kind = StrategyKind::kContinuous;
  PowerAttacker attacker(*fixture.instance, config);
  for (int step = 0; step < 10; ++step) {
    fixture.server.step(kSecond);
    attacker.step(fixture.server.host().now(), kSecond);
    if (step > 0) {
      EXPECT_TRUE(attacker.attacking());
    }
  }
  EXPECT_EQ(attacker.stats().spikes_launched, 1);
  EXPECT_GT(attacker.stats().attack_seconds, 8.0);
}

TEST(Strategy, PeriodicAttackFiresOnSchedule) {
  Fixture fixture;
  AttackConfig config;
  config.kind = StrategyKind::kPeriodic;
  config.period = 100 * kSecond;
  config.spike_duration = 10 * kSecond;
  PowerAttacker attacker(*fixture.instance, config);
  for (int step = 0; step < 310; ++step) {
    fixture.server.step(kSecond);
    attacker.step(fixture.server.host().now(), kSecond);
  }
  EXPECT_EQ(attacker.stats().spikes_launched, 4);  // t=0,100,200,300
  EXPECT_NEAR(attacker.stats().attack_seconds, 40.0, 5.0);
}

TEST(Strategy, SynergisticWaitsForBackgroundPeak) {
  // Background: quiet for 120 s, then a benign surge. The synergistic
  // attacker must hold fire during the quiet phase and strike during the
  // surge.
  Fixture fixture;
  AttackConfig config;
  config.kind = StrategyKind::kSynergistic;
  config.min_history = 30;
  config.trigger_percentile = 95.0;
  config.spike_duration = 10 * kSecond;
  PowerAttacker attacker(*fixture.instance, config);

  for (int step = 0; step < 120; ++step) {
    fixture.server.step(kSecond);
    attacker.step(fixture.server.host().now(), kSecond);
  }
  EXPECT_EQ(attacker.stats().spikes_launched, 0);  // nothing to ride on

  // Benign surge from another tenant.
  auto victim = fixture.server.runtime().create({});
  auto busy = workload::prime();
  for (int i = 0; i < 8; ++i) victim->run("benign-surge", busy.behavior);
  int fired_at = -1;
  for (int step = 0; step < 60; ++step) {
    fixture.server.step(kSecond);
    attacker.step(fixture.server.host().now(), kSecond);
    if (fired_at < 0 && attacker.attacking()) fired_at = step;
  }
  EXPECT_GE(attacker.stats().spikes_launched, 1);
  EXPECT_GE(fired_at, 0);
  EXPECT_LE(fired_at, 10);  // strikes within seconds of the surge
}

TEST(Strategy, SynergisticSpikeSuperimposesOnBenignLoad) {
  Fixture fixture;
  auto victim = fixture.server.runtime().create({});
  auto busy = workload::prime();
  for (int i = 0; i < 4; ++i) victim->run("benign", busy.behavior);
  fixture.server.step(5 * kSecond);
  const double benign_only = fixture.server.power_w();

  AttackConfig config;
  config.kind = StrategyKind::kSynergistic;
  config.min_history = 3;
  config.trigger_percentile = 50.0;
  config.trigger_margin = 0.0;  // background is already a steady crest
  config.spike_duration = 20 * kSecond;
  PowerAttacker attacker(*fixture.instance, config);
  double peak = 0.0;
  for (int step = 0; step < 30; ++step) {
    fixture.server.step(kSecond);
    attacker.step(fixture.server.host().now(), kSecond);
    peak = std::max(peak, fixture.server.power_w());
  }
  EXPECT_GT(peak, benign_only * 1.4);  // combined spike beats benign alone
}

TEST(Strategy, MonitoringCostsAlmostNothing) {
  Fixture fixture;
  AttackConfig config;
  config.kind = StrategyKind::kSynergistic;
  config.min_history = 1000000;  // never fires: pure monitoring
  PowerAttacker attacker(*fixture.instance, config);
  const auto usage_before =
      fixture.instance->cgroup()->cpuacct.total_usage_ns();
  for (int step = 0; step < 60; ++step) {
    fixture.server.step(kSecond);
    attacker.step(fixture.server.host().now(), kSecond);
  }
  const auto usage_after = fixture.instance->cgroup()->cpuacct.total_usage_ns();
  // 60 s of monitoring consumed well under 1% of one CPU-second.
  EXPECT_LT(usage_after - usage_before, 600000000ULL / 100);
  EXPECT_NEAR(attacker.stats().monitor_seconds, 60.0, 1.0);
}

TEST(Strategy, StrategyNames) {
  EXPECT_EQ(to_string(StrategyKind::kContinuous), "continuous");
  EXPECT_EQ(to_string(StrategyKind::kPeriodic), "periodic");
  EXPECT_EQ(to_string(StrategyKind::kSynergistic), "synergistic");
}

// ---------- orchestrator ----------

TEST(Orchestrator, AcquiresCoResidentGroup) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 4;
  config.benign_load = false;
  config.profile = cloud::local_testbed();
  cloud::Datacenter dc(config);
  cloud::CloudProvider provider(dc, 71);
  coresidence::TimerImplantDetector detector;
  CoResidenceOrchestrator orchestrator(provider, detector);
  const auto result = orchestrator.acquire("attacker", 3, 60);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.instances.size(), 3u);
  // Ground truth (provider-side — the tenant view has no server index):
  // all on one physical server.
  const int server = provider.server_of(result.instances[0]->instance_id);
  for (const auto& instance : result.instances) {
    EXPECT_EQ(provider.server_of(instance->instance_id), server);
  }
  // Misses were terminated: only the group remains.
  EXPECT_EQ(provider.instance_count(), 3u);
  EXPECT_GT(result.launches, 3);  // random placement needs retries
}

TEST(Orchestrator, GivesUpAtLaunchBudget) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 8;
  config.benign_load = false;
  config.profile = cloud::local_testbed();
  cloud::Datacenter dc(config);
  cloud::CloudProvider provider(dc, 72);
  coresidence::TimerImplantDetector detector;
  CoResidenceOrchestrator orchestrator(provider, detector);
  const auto result = orchestrator.acquire("attacker", 8, 4);
  EXPECT_FALSE(result.success);
  EXPECT_LE(result.launches, 4);
}

}  // namespace
}  // namespace cleaks::attack
