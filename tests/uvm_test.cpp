// Tests for the U/V/M channel analyzer (Table II, §III-C2).
#include <gtest/gtest.h>

#include <map>

#include "leakage/uvm.h"

namespace cleaks::leakage {
namespace {

/// Shared analysis run: the UVM sweep over two loaded servers is the slow
/// part, so analyze once and assert many times.
class UvmSweep : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    server_a_ = new cloud::Server("uvm-a", cloud::local_testbed(), 101,
                                  33 * kDay);
    server_b_ = new cloud::Server("uvm-b", cloud::local_testbed(), 202,
                                  71 * kDay);
    server_a_->enable_benign_load(11);
    server_b_->enable_benign_load(22);
    server_a_->step(10 * kSecond);
    server_b_->step(10 * kSecond);
    analyzer_ = new UvmAnalyzer(*server_a_, *server_b_);
    results_ = new std::map<std::string, UvmMetrics>();
    for (const auto& metrics : analyzer_->analyze_all()) {
      (*results_)[metrics.channel] = metrics;
    }
  }
  static void TearDownTestSuite() {
    delete results_;
    delete analyzer_;
    delete server_b_;
    delete server_a_;
    results_ = nullptr;
  }

  static const UvmMetrics& metrics(const std::string& channel) {
    return results_->at(channel);
  }

  static cloud::Server* server_a_;
  static cloud::Server* server_b_;
  static UvmAnalyzer* analyzer_;
  static std::map<std::string, UvmMetrics>* results_;
};

cloud::Server* UvmSweep::server_a_ = nullptr;
cloud::Server* UvmSweep::server_b_ = nullptr;
UvmAnalyzer* UvmSweep::analyzer_ = nullptr;
std::map<std::string, UvmMetrics>* UvmSweep::results_ = nullptr;

TEST_F(UvmSweep, BootIdIsStaticUniqueIdentifier) {
  const auto& m = metrics("/proc/sys/kernel/random/boot_id");
  EXPECT_TRUE(m.unique);
  EXPECT_EQ(m.unique_kind, UniqueKind::kStaticId);
  EXPECT_FALSE(m.variation);
  EXPECT_EQ(m.manipulation, Manipulation::kNone);
}

TEST_F(UvmSweep, IfpriomapIsStaticUniqueIdentifier) {
  const auto& m = metrics("/sys/fs/cgroup/net_prio/net_prio.ifpriomap");
  EXPECT_TRUE(m.unique);
  EXPECT_EQ(m.unique_kind, UniqueKind::kStaticId);
}

TEST_F(UvmSweep, ImplantChannelsAreDirectlyManipulable) {
  for (const char* channel :
       {"/proc/sched_debug", "/proc/timer_list", "/proc/locks"}) {
    const auto& m = metrics(channel);
    EXPECT_TRUE(m.unique) << channel;
    EXPECT_EQ(m.unique_kind, UniqueKind::kImplant) << channel;
    EXPECT_EQ(m.manipulation, Manipulation::kDirect) << channel;
  }
}

TEST_F(UvmSweep, AccumulatorsAreDynamicUniqueIdentifiers) {
  for (const char* channel :
       {"/proc/uptime", "/proc/stat", "/proc/schedstat", "/proc/softirqs",
        "/proc/interrupts", "/sys/class/powercap/intel-rapl:0/energy_uj",
        "/sys/devices/system/node/node0/numastat",
        "/proc/sys/fs/dentry-state", "/proc/sys/fs/inode-nr"}) {
    const auto& m = metrics(channel);
    EXPECT_TRUE(m.unique) << channel;
    EXPECT_EQ(m.unique_kind, UniqueKind::kDynamicId) << channel;
    EXPECT_TRUE(m.variation) << channel;
    EXPECT_GT(m.growth_per_sec, 0.0) << channel;
  }
}

TEST_F(UvmSweep, FluctuatingChannelsAreVariationOnly) {
  for (const char* channel :
       {"/proc/meminfo", "/proc/zoneinfo", "/proc/loadavg",
        "/sys/devices/system/node/node0/vmstat",
        "/proc/sys/kernel/random/entropy_avail"}) {
    const auto& m = metrics(channel);
    EXPECT_FALSE(m.unique) << channel;
    EXPECT_TRUE(m.variation) << channel;
    EXPECT_GT(m.entropy_bits, 0.0) << channel;
  }
}

TEST_F(UvmSweep, StaticGenericChannelsScoreNothing) {
  for (const char* channel :
       {"/proc/modules", "/proc/cpuinfo", "/proc/version"}) {
    const auto& m = metrics(channel);
    EXPECT_FALSE(m.unique) << channel;
    EXPECT_FALSE(m.variation) << channel;
    EXPECT_EQ(m.manipulation, Manipulation::kNone) << channel;
  }
}

TEST_F(UvmSweep, WorkloadSensitiveChannelsAreIndirectlyManipulable) {
  for (const char* channel :
       {"/proc/stat", "/proc/meminfo", "/proc/uptime",
        "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp2_input",
        "/sys/class/powercap/intel-rapl:0/energy_uj"}) {
    EXPECT_EQ(metrics(channel).manipulation, Manipulation::kIndirect)
        << channel;
  }
}

TEST_F(UvmSweep, EntropyRanksRichChannelsAboveScalarOnes) {
  // /proc/stat (dozens of moving counters) must carry more trace entropy
  // than a single-value file like entropy_avail.
  EXPECT_GT(metrics("/proc/stat").entropy_bits,
            metrics("/proc/sys/kernel/random/entropy_avail").entropy_bits);
  EXPECT_GT(metrics("/proc/meminfo").entropy_bits,
            metrics("/proc/loadavg").entropy_bits * 0.5);
}

TEST_F(UvmSweep, MajorityOfChannelsUnique) {
  int unique = 0;
  for (const auto& [channel, m] : *results_) {
    if (m.unique) ++unique;
  }
  // Paper: 17 of 29; our file-nr is level-typed rather than accumulated,
  // so 15-17 is the expected band.
  EXPECT_GE(unique, 14);
  EXPECT_LE(unique, 18);
}

TEST_F(UvmSweep, AnalyzeUnknownChannelReturnsEmpty) {
  auto m = analyzer_->analyze("/proc/definitely-not-a-channel");
  EXPECT_TRUE(m.path.empty());
  EXPECT_FALSE(m.unique);
  EXPECT_FALSE(m.variation);
}

}  // namespace
}  // namespace cleaks::leakage
