#include <gtest/gtest.h>

#include <cstdint>

#include "container/container.h"
#include "fs/pseudo_fs.h"
#include "leakage/channels.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace cleaks::fs {
namespace {

struct Fixture {
  Fixture()
      : host("fs-host", hw::testbed_i7_6700(), 21),
        filesystem(host),
        runtime(host, filesystem) {
    host.set_tick_duration(100 * kMillisecond);
    container::ContainerConfig config;
    config.num_cpus = 4;
    config.memory_limit_bytes = 4ULL << 30;
    probe = runtime.create(config);
  }

  std::string host_read(const std::string& path) {
    ViewContext ctx;
    auto result = filesystem.read(path, ctx);
    return result.is_ok() ? result.value() : std::string{};
  }

  kernel::Host host;
  PseudoFs filesystem;
  container::ContainerRuntime runtime;
  std::shared_ptr<container::Container> probe;
};

// ---------- masking policy ----------

TEST(Masking, FirstMatchWins) {
  MaskingPolicy policy;
  policy.add_rule("/proc/meminfo", MaskAction::kRestrict);
  policy.add_rule("/proc/**", MaskAction::kDeny);
  EXPECT_EQ(policy.evaluate("/proc/meminfo"), MaskAction::kRestrict);
  EXPECT_EQ(policy.evaluate("/proc/stat"), MaskAction::kDeny);
  EXPECT_EQ(policy.evaluate("/sys/class/x"), MaskAction::kAllow);
}

TEST(Masking, DockerDefaultAllowsEverything) {
  const auto policy = MaskingPolicy::docker_default();
  EXPECT_TRUE(policy.empty());
  EXPECT_EQ(policy.evaluate("/proc/sched_debug"), MaskAction::kAllow);
}

TEST(Masking, PaperStage1DeniesEveryTable1Channel) {
  Fixture fixture;
  const auto policy = MaskingPolicy::paper_stage1();
  for (const auto& channel : leakage::table1_channels()) {
    for (const auto& path :
         leakage::channel_paths(channel, fixture.filesystem)) {
      EXPECT_EQ(policy.evaluate(path), MaskAction::kDeny) << path;
    }
  }
}

TEST(Masking, PaperStage1LeavesNamespacedFilesAlone) {
  const auto policy = MaskingPolicy::paper_stage1();
  EXPECT_EQ(policy.evaluate("/proc/self/cgroup"), MaskAction::kAllow);
  EXPECT_EQ(policy.evaluate("/proc/net/dev"), MaskAction::kAllow);
  EXPECT_EQ(policy.evaluate("/proc/sys/kernel/hostname"), MaskAction::kAllow);
}

// ---------- tree and read dispatch ----------

TEST(PseudoFs, ListsAllTable1ChannelPaths) {
  Fixture fixture;
  for (const auto& channel : leakage::table1_channels()) {
    EXPECT_FALSE(
        leakage::channel_paths(channel, fixture.filesystem).empty())
        << channel.row;
  }
}

TEST(PseudoFs, UnknownPathIsNotFound) {
  Fixture fixture;
  ViewContext ctx;
  // The error message names the offending path (Matches checks both).
  EXPECT_TRUE(fixture.filesystem.read("/proc/nonexistent", ctx)
                  .status()
                  .Matches(StatusCode::kNotFound, "/proc/nonexistent"));
}

TEST(PseudoFs, HostReadsEveryRegisteredPath) {
  Fixture fixture;
  ViewContext ctx;
  for (const auto& path : fixture.filesystem.list_paths()) {
    const auto result = fixture.filesystem.read(path, ctx);
    EXPECT_TRUE(result.is_ok()) << path;
  }
}

TEST(PseudoFs, DenyPolicyOnlyAffectsContainers) {
  kernel::Host host("h", hw::testbed_i7_6700(), 3);
  PseudoFs filesystem(host);
  container::ContainerRuntime runtime(host, filesystem,
                                      MaskingPolicy::paper_stage1());
  auto instance = runtime.create({});
  EXPECT_TRUE(instance->read_file("/proc/uptime")
                  .status()
                  .Matches(StatusCode::kPermissionDenied, "/proc/uptime"));
  ViewContext host_ctx;  // host context ignores the policy
  EXPECT_TRUE(filesystem.read("/proc/uptime", host_ctx).is_ok());
}

TEST(PseudoFs, RegisterExtraFile) {
  Fixture fixture;
  fixture.filesystem.register_file(
      "/proc/custom",
      [](const RenderContext&, std::string& out) { out += "hello\n"; });
  EXPECT_EQ(fixture.probe->read_file("/proc/custom").value(), "hello\n");
}

// ---------- leaking generators: container view == host view ----------

class LeakingPathTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LeakingPathTest, ContainerSeesHostData) {
  Fixture fixture;
  const std::string path = GetParam();
  const auto container_view = fixture.probe->read_file(path);
  ASSERT_TRUE(container_view.is_ok()) << path;
  EXPECT_EQ(container_view.value(), fixture.host_read(path)) << path;
  EXPECT_FALSE(container_view.value().empty()) << path;
}

INSTANTIATE_TEST_SUITE_P(
    Table1, LeakingPathTest,
    ::testing::Values("/proc/uptime", "/proc/version", "/proc/stat",
                      "/proc/meminfo", "/proc/loadavg", "/proc/interrupts",
                      "/proc/softirqs", "/proc/cpuinfo", "/proc/schedstat",
                      "/proc/zoneinfo", "/proc/timer_list",
                      "/proc/sched_debug", "/proc/modules",
                      "/proc/sys/kernel/random/boot_id",
                      "/proc/sys/kernel/random/entropy_avail",
                      "/proc/sys/fs/file-nr", "/proc/sys/fs/inode-nr",
                      "/proc/sys/fs/dentry-state",
                      "/proc/fs/ext4/sda1/mb_groups",
                      "/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
                      "/sys/devices/system/node/node0/numastat",
                      "/sys/class/powercap/intel-rapl:0/energy_uj"));

// ---------- namespaced generators: container view differs ----------

TEST(Render, HostnameIsUtsNamespaced) {
  Fixture fixture;
  const auto container_view =
      fixture.probe->read_file("/proc/sys/kernel/hostname").value();
  EXPECT_EQ(container_view, fixture.probe->id() + "\n");
  EXPECT_NE(container_view, fixture.host_read("/proc/sys/kernel/hostname"));
}

TEST(Render, NetDevIsNetNamespaced) {
  Fixture fixture;
  const auto container_view = fixture.probe->read_file("/proc/net/dev").value();
  EXPECT_TRUE(contains(container_view, "eth0"));
  EXPECT_FALSE(contains(container_view, "docker0"));
  EXPECT_TRUE(contains(fixture.host_read("/proc/net/dev"), "docker0"));
}

TEST(Render, SelfCgroupShowsContainerPath) {
  Fixture fixture;
  const auto view = fixture.probe->read_file("/proc/self/cgroup").value();
  EXPECT_TRUE(contains(view, "/docker/" + fixture.probe->id()));
}

TEST(Render, SelfStatusShowsNamespacePid) {
  Fixture fixture;
  const auto view = fixture.probe->read_file("/proc/self/status").value();
  EXPECT_TRUE(contains(view, "Pid:\t1"));  // init of the PID namespace
}

// ---------- content checks ----------

TEST(Render, UptimeHasTwoFields) {
  Fixture fixture;
  fixture.host.advance(10 * kSecond);
  const auto nums =
      extract_numbers(fixture.probe->read_file("/proc/uptime").value());
  ASSERT_EQ(nums.size(), 2u);
  EXPECT_NEAR(nums[0], 10.0, 0.5);
  EXPECT_GT(nums[1], 50.0);  // 8 mostly idle cores
}

TEST(Render, StatHasPerCpuLinesAndTotals) {
  Fixture fixture;
  fixture.host.advance(kSecond);
  const auto text = fixture.host_read("/proc/stat");
  EXPECT_TRUE(contains(text, "cpu "));
  EXPECT_TRUE(contains(text, "cpu7"));
  EXPECT_TRUE(contains(text, "ctxt "));
  EXPECT_TRUE(contains(text, "btime 1480291200"));
  EXPECT_TRUE(contains(text, "procs_running"));
}

TEST(Render, MeminfoIsConsistent) {
  Fixture fixture;
  const auto text = fixture.host_read("/proc/meminfo");
  const auto lines = split_lines(text);
  ASSERT_GE(lines.size(), 5u);
  const auto total = parse_first_int(lines[0]);
  const auto free_kb = parse_first_int(lines[1]);
  EXPECT_EQ(total, 16 * 1024 * 1024);
  EXPECT_GT(free_kb, 0);
  EXPECT_LT(free_kb, total);
}

TEST(Render, CpuinfoListsAllCoresWithModel) {
  Fixture fixture;
  const auto text = fixture.host_read("/proc/cpuinfo");
  EXPECT_TRUE(contains(text, "processor\t: 7"));
  EXPECT_TRUE(contains(text, "i7-6700"));
  EXPECT_TRUE(contains(text, "GenuineIntel"));
}

TEST(Render, TimerListShowsImplantedTimer) {
  Fixture fixture;
  kernel::TaskBehavior behavior;
  behavior.duty_cycle = 0.1;
  behavior.named_timers = 1;
  fixture.probe->run("mysignature42", behavior);
  const auto text = fixture.probe->read_file("/proc/timer_list").value();
  EXPECT_TRUE(contains(text, "mysignature42"));
}

TEST(Render, SchedDebugShowsAllTasksWithHostPids) {
  Fixture fixture;
  auto task = fixture.probe->run("findme", {});
  const auto text = fixture.host_read("/proc/sched_debug");
  EXPECT_TRUE(contains(text, "findme"));
  EXPECT_TRUE(contains(text, std::to_string(task->host_pid)));
  EXPECT_TRUE(contains(text, "dockerd"));  // host daemons visible too
}

TEST(Render, LocksListsHolders) {
  Fixture fixture;
  const auto baseline =
      split_lines(fixture.probe->read_file("/proc/locks").value()).size();
  EXPECT_GT(baseline, 0u);  // system daemons hold pid-file locks
  kernel::TaskBehavior behavior;
  behavior.duty_cycle = 0.01;
  behavior.file_locks = 3;
  fixture.probe->run("locker", behavior);
  const auto text = fixture.probe->read_file("/proc/locks").value();
  EXPECT_EQ(split_lines(text).size(), baseline + 3);
  EXPECT_TRUE(contains(text, "POSIX  ADVISORY  WRITE"));
}

TEST(Render, IfpriomapLeaksHostDevicesIntoContainer) {
  Fixture fixture;
  const auto text =
      fixture.probe->read_file("/sys/fs/cgroup/net_prio/net_prio.ifpriomap")
          .value();
  // The container's NET namespace has only lo+eth0, yet the map shows the
  // host's devices — including this container's own host-side veth.
  EXPECT_TRUE(contains(text, "docker0"));
  EXPECT_TRUE(contains(text, "veth" + fixture.probe->id().substr(0, 7)));
}

TEST(Render, IfpriomapShowsCgroupPriorities) {
  Fixture fixture;
  fixture.probe->cgroup()->net_prio.ifpriomap["eth0"] = 3;
  const auto text =
      fixture.probe->read_file("/sys/fs/cgroup/net_prio/net_prio.ifpriomap")
          .value();
  EXPECT_TRUE(contains(text, "eth0 3"));
}

TEST(Render, RaplEnergyMatchesHardwareCounter) {
  Fixture fixture;
  fixture.host.advance(5 * kSecond);
  const auto text =
      fixture.host_read("/sys/class/powercap/intel-rapl:0/energy_uj");
  EXPECT_EQ(static_cast<std::uint64_t>(parse_first_int(text)),
            fixture.host.rapl()[0].package().energy_uj());
}

TEST(Render, RaplSubdomainsPresent) {
  Fixture fixture;
  EXPECT_EQ(fixture.host_read(
                "/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/name"),
            "core\n");
  EXPECT_EQ(fixture.host_read(
                "/sys/class/powercap/intel-rapl:0/intel-rapl:0:1/name"),
            "dram\n");
}

TEST(Render, NoRaplPathsWithoutHardware) {
  kernel::Host host("old", hw::pre_sandy_bridge_server(), 4);
  PseudoFs filesystem(host);
  ViewContext ctx;
  EXPECT_TRUE(
      filesystem.read("/sys/class/powercap/intel-rapl:0/energy_uj", ctx)
          .status()
          .Matches(StatusCode::kNotFound, "energy_uj"));
}

TEST(Render, CoretempReflectsThermalModel) {
  Fixture fixture;
  fixture.host.advance(kSecond);
  const auto text = fixture.host_read(
      "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp2_input");
  EXPECT_EQ(parse_first_int(text), fixture.host.thermal().temp_millic(0));
}

TEST(Render, CpuidleCountersExposed) {
  Fixture fixture;
  fixture.host.advance(5 * kSecond);
  const auto usage = parse_first_int(fixture.host_read(
      "/sys/devices/system/cpu/cpu0/cpuidle/state4/usage"));
  const auto time_us = parse_first_int(fixture.host_read(
      "/sys/devices/system/cpu/cpu0/cpuidle/state4/time"));
  EXPECT_GT(usage, 0);
  EXPECT_GT(time_us, 0);
}

// ---------- restricted (CC5-style) views ----------

TEST(Restricted, CpuinfoShowsOnlyTenantCores) {
  kernel::Host host("cc5ish", hw::testbed_i7_6700(), 9);
  PseudoFs filesystem(host);
  MaskingPolicy policy;
  policy.add_rule("/proc/cpuinfo", MaskAction::kRestrict);
  container::ContainerRuntime runtime(host, filesystem, policy);
  container::ContainerConfig config;
  config.num_cpus = 2;
  auto instance = runtime.create(config);
  const auto text = instance->read_file("/proc/cpuinfo").value();
  int processors = 0;
  for (const auto& line : split_lines(text)) {
    if (starts_with(line, "processor")) ++processors;
  }
  EXPECT_EQ(processors, 2);
}

TEST(Restricted, MeminfoShowsCgroupLimit) {
  kernel::Host host("cc5ish", hw::testbed_i7_6700(), 9);
  PseudoFs filesystem(host);
  MaskingPolicy policy;
  policy.add_rule("/proc/meminfo", MaskAction::kRestrict);
  container::ContainerRuntime runtime(host, filesystem, policy);
  container::ContainerConfig config;
  config.memory_limit_bytes = 2ULL << 30;
  auto instance = runtime.create(config);
  const auto text = instance->read_file("/proc/meminfo").value();
  EXPECT_EQ(parse_first_int(split_lines(text)[0]), 2 * 1024 * 1024);
}

// ---------- viewer render cache (PR 5) ----------

namespace {

std::uint64_t viewer_hits() {
  return obs::Registry::global().counter("fs_viewer_cache_hits_total").value();
}
std::uint64_t viewer_misses() {
  return obs::Registry::global()
      .counter("fs_viewer_cache_misses_total")
      .value();
}

}  // namespace

TEST(ViewerCache, RepeatContainerReadHitsCache) {
  Fixture fixture;
  const auto first = fixture.probe->read_file("/proc/meminfo").value();
  const std::uint64_t hits_before = viewer_hits();
  const std::uint64_t misses_before = viewer_misses();
  const auto second = fixture.probe->read_file("/proc/meminfo").value();
  EXPECT_EQ(second, first);
  EXPECT_EQ(viewer_hits(), hits_before + 1);   // served from the cache
  EXPECT_EQ(viewer_misses(), misses_before);   // no re-render
}

TEST(ViewerCache, HostTickInvalidates) {
  Fixture fixture;
  const auto before = fixture.probe->read_file("/proc/uptime").value();
  fixture.host.advance(5 * kSecond);
  const std::uint64_t hits_before = viewer_hits();
  const auto after = fixture.probe->read_file("/proc/uptime").value();
  EXPECT_NE(after, before);                // fresh render, new generation
  EXPECT_EQ(viewer_hits(), hits_before);   // the stale slot could not hit
}

TEST(ViewerCache, MaskUnmaskViaStage1StaysCorrect) {
  kernel::Host host("flip", hw::testbed_i7_6700(), 9);
  PseudoFs filesystem(host);
  container::ContainerRuntime runtime(host, filesystem);
  container::ContainerConfig config;
  config.memory_limit_bytes = 2ULL << 30;
  auto instance = runtime.create(config);

  const auto open_view = instance->read_file("/proc/meminfo").value();
  EXPECT_EQ(parse_first_int(split_lines(open_view)[0]), 16 * 1024 * 1024);
  instance->read_file("/proc/meminfo");  // prime the cache under kAllow

  MaskingPolicy restrict_policy;
  restrict_policy.add_rule("/proc/meminfo", MaskAction::kRestrict);
  runtime.set_policy(restrict_policy);  // stage-1 rollout: epoch bump
  const auto masked_view = instance->read_file("/proc/meminfo").value();
  EXPECT_EQ(parse_first_int(split_lines(masked_view)[0]), 2 * 1024 * 1024);

  runtime.set_policy(MaskingPolicy::docker_default());  // unmask
  const auto reopened = instance->read_file("/proc/meminfo").value();
  EXPECT_EQ(reopened, open_view);
}

TEST(ViewerCache, CgroupLimitChangeRefreshesRestrictedView) {
  kernel::Host host("limits", hw::testbed_i7_6700(), 9);
  PseudoFs filesystem(host);
  MaskingPolicy policy;
  policy.add_rule("/proc/meminfo", MaskAction::kRestrict);
  container::ContainerRuntime runtime(host, filesystem, policy);
  container::ContainerConfig config;
  config.memory_limit_bytes = 4ULL << 30;
  auto instance = runtime.create(config);
  const auto before = instance->read_file("/proc/meminfo").value();
  EXPECT_EQ(parse_first_int(split_lines(before)[0]), 4 * 1024 * 1024);
  instance->read_file("/proc/meminfo");  // cached at the 4 GiB fingerprint

  // Tighten the limit in place: the host generation does not move, but the
  // viewer-state fingerprint does — the cached render must not be served.
  instance->cgroup()->memory.limit_bytes = 2ULL << 30;
  const auto after = instance->read_file("/proc/meminfo").value();
  EXPECT_EQ(parse_first_int(split_lines(after)[0]), 2 * 1024 * 1024);
}

TEST(ViewerCache, DestroyRecreateReusedIdGetsFreshView) {
  kernel::Host host("reuse", hw::testbed_i7_6700(), 9);
  PseudoFs filesystem(host);
  MaskingPolicy policy;
  policy.add_rule("/proc/meminfo", MaskAction::kRestrict);

  container::ContainerRuntime first_runtime(host, filesystem, policy);
  container::ContainerConfig config;
  config.memory_limit_bytes = 4ULL << 30;
  auto first = first_runtime.create(config);
  const std::string first_id = first->id();
  const auto first_view = first->read_file("/proc/meminfo").value();
  EXPECT_EQ(parse_first_int(split_lines(first_view)[0]), 4 * 1024 * 1024);
  first_runtime.destroy(first->id());

  // A second runtime on the same host replays the same id stream, so the
  // new container reuses the dead one's id — but its namespaces are a new
  // incarnation and its limit differs. The cache must not resurrect the
  // old bytes.
  container::ContainerRuntime second_runtime(host, filesystem, policy);
  config.memory_limit_bytes = 2ULL << 30;
  auto second = second_runtime.create(config);
  ASSERT_EQ(second->id(), first_id);
  const auto second_view = second->read_file("/proc/meminfo").value();
  EXPECT_EQ(parse_first_int(split_lines(second_view)[0]), 2 * 1024 * 1024);
}

}  // namespace
}  // namespace cleaks::fs
