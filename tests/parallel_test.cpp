// Determinism contract of the parallel simulation engine: every thread
// count must produce bitwise-identical results — power traces, scan
// findings, rendered bytes. These tests pin that contract, plus the
// ThreadPool and render-cache mechanics underneath it.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "leakage/detector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace cleaks {
namespace {

// ---------- ThreadPool ----------

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (int lanes : {1, 2, 4, 8}) {
    ThreadPool pool(lanes);
    std::vector<int> hits(1000, 0);
    pool.parallel_for(hits.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      ASSERT_EQ(hits[i], 1) << "index " << i << " with " << lanes << " lanes";
    }
  }
}

TEST(ThreadPool, HandlesFewerItemsThanLanes) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    total += static_cast<int>(end - begin);
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, EmptyRangeIsANoOp) {
  ThreadPool pool(4);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ChunkingIsStaticAndLaneDependentOnly) {
  // The chunk boundaries depend only on (n, lanes): same split every call.
  ThreadPool pool(4);
  auto boundaries = [&] {
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::mutex mu;
    pool.parallel_for(103, [&](std::size_t begin, std::size_t end) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace_back(begin, end);
    });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
  };
  EXPECT_EQ(boundaries(), boundaries());
}

TEST(ThreadPool, DefaultLanesSurvivesHostileEnv) {
  auto with_env = [](const char* value) {
    if (value == nullptr) {
      unsetenv("CLEAKS_THREADS");
    } else {
      setenv("CLEAKS_THREADS", value, 1);
    }
    const int lanes = ThreadPool::default_lanes();
    unsetenv("CLEAKS_THREADS");
    return lanes;
  };
  EXPECT_EQ(with_env("4"), 4);
  EXPECT_EQ(with_env("0"), 1);       // zero clamps up, never a dead pool
  EXPECT_EQ(with_env("-17"), 1);     // negatives clamp up
  EXPECT_EQ(with_env("999999"), ThreadPool::kMaxLanes);  // absurd clamps down
  // Non-numeric text falls back to hardware concurrency, still in range.
  EXPECT_GE(with_env("not-a-number"), 1);
  EXPECT_LE(with_env("not-a-number"), ThreadPool::kMaxLanes);
  EXPECT_GE(with_env(nullptr), 1);
  EXPECT_LE(with_env(nullptr), ThreadPool::kMaxLanes);
}

TEST(ThreadPool, RunsManySequentialJobs) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> values(257, 0);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(values.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) ++values[i];
    });
  }
  for (auto value : values) ASSERT_EQ(value, 50u);
}

TEST(ThreadPool, ScratchBuffersKeepCapacityAcrossJobs) {
  ThreadPool pool(3);
  // Fill each lane's slot-0 scratch with a large payload, remember where
  // its storage lives, then check a later job sees cleared-but-reserved
  // buffers at the same addresses (the pool's whole purpose).
  std::array<const char*, ThreadPool::kMaxLanes> data{};
  pool.parallel_for(3, [&](std::size_t begin, std::size_t) {
    std::string& buffer = pool.scratch(0);
    buffer.assign(1 << 16, static_cast<char>('a' + begin));
    data[static_cast<std::size_t>(pool.current_lane())] = buffer.data();
  });
  pool.parallel_for(3, [&](std::size_t, std::size_t) {
    std::string& buffer = pool.scratch(0);
    const auto lane = static_cast<std::size_t>(pool.current_lane());
    EXPECT_TRUE(buffer.empty());
    EXPECT_GE(buffer.capacity(), static_cast<std::size_t>(1 << 16));
    EXPECT_EQ(buffer.data(), data[lane]);  // no reallocation happened
  });
}

TEST(ThreadPool, ScratchSlotsAreIndependent) {
  ThreadPool pool(1);
  std::string& first = pool.scratch(0);
  first = "one";
  std::string& second = pool.scratch(1);
  second = "two";
  EXPECT_NE(&first, &second);
  EXPECT_EQ(first, "one");  // asking for slot 1 did not clear slot 0
  EXPECT_EQ(pool.scratch(0), "");  // re-requesting a slot clears it
}

// ---------- Datacenter: parallel stepping is bitwise deterministic ----------

cloud::DatacenterConfig small_dc(int num_threads) {
  cloud::DatacenterConfig config;
  config.num_racks = 2;
  config.servers_per_rack = 4;
  config.rack_breaker.rated_w = 4000.0;
  config.rack_power_cap_w = 3200.0;
  config.seed = 7;
  config.num_threads = num_threads;
  return config;
}

TEST(ParallelDatacenter, PowerTraceIdenticalAcrossThreadCounts) {
  cloud::Datacenter serial(small_dc(1));
  cloud::Datacenter threaded(small_dc(4));
  for (int tick = 0; tick < 120; ++tick) {
    serial.step(kSecond);
    threaded.step(kSecond);
    ASSERT_EQ(serial.total_power_w(), threaded.total_power_w())
        << "diverged at tick " << tick;  // bitwise, not approximate
    for (int s = 0; s < serial.num_servers(); ++s) {
      ASSERT_EQ(serial.server(s).power_w(), threaded.server(s).power_w())
          << "server " << s << " diverged at tick " << tick;
    }
  }
  EXPECT_EQ(serial.any_breaker_tripped(), threaded.any_breaker_tripped());
}

// ---------- CrossValidator: parallel scan matches serial scan ----------

TEST(ParallelScan, FindingsIdenticalAcrossThreadCounts) {
  auto run_scan = [](int num_threads) {
    cloud::Server server("scan-host", cloud::local_testbed(), 77, 40 * kDay);
    leakage::ScanOptions options;
    options.num_threads = num_threads;
    leakage::CrossValidator validator(server, options);
    return validator.scan();
  };
  const auto serial = run_scan(1);
  const auto threaded = run_scan(4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].path, threaded[i].path) << "order diverged at " << i;
    ASSERT_EQ(serial[i].cls, threaded[i].cls) << serial[i].path;
  }
}

TEST(ParallelScan, WarmIncrementalFindingsIdenticalAcrossThreadCounts) {
  // The incremental pipeline (viewer cache, hash-first reuse, lane-local
  // scratch) must keep warm rescans bitwise-identical across lane counts —
  // including a rescan after the world moved.
  auto run_scans = [](int num_threads) {
    cloud::Server server("warm-scan", cloud::local_testbed(), 77, 40 * kDay);
    leakage::ScanOptions options;
    options.num_threads = num_threads;
    leakage::CrossValidator validator(server, options);
    validator.scan();                       // cold
    auto unchanged = validator.scan();      // warm, unchanged world
    server.step(kSecond);
    auto moved = validator.scan();          // warm, world moved
    unchanged.insert(unchanged.end(), moved.begin(), moved.end());
    return unchanged;
  };
  const auto serial = run_scans(1);
  for (const int lanes : {2, 4, 8}) {
    const auto threaded = run_scans(lanes);
    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(serial[i].path, threaded[i].path) << "order diverged at " << i;
      ASSERT_EQ(serial[i].cls, threaded[i].cls) << serial[i].path;
      ASSERT_EQ(serial[i].degraded, threaded[i].degraded) << serial[i].path;
    }
  }
}

// ---------- telemetry rides the same determinism contract ----------

TEST(ParallelTelemetry, SimMetricsAndTraceIdenticalAcrossThreadCounts) {
  // The full instrumented workload — datacenter stepping plus a leak scan —
  // must leave the metrics registry and the span tracer in bitwise-identical
  // states at every thread count (Scope::kSim; lane breakdowns are exempt).
  auto run = [](int threads) {
    obs::Registry::global().reset();
    auto& tracer = obs::SpanTracer::global();
    const bool was_enabled = tracer.enabled();
    tracer.drain();
    tracer.set_enabled(true);

    cloud::Datacenter dc(small_dc(threads));
    for (int tick = 0; tick < 30; ++tick) dc.step(kSecond);
    cloud::Server server("scan-host", cloud::local_testbed(), 77, 40 * kDay);
    leakage::ScanOptions options;
    options.num_threads = threads;
    leakage::CrossValidator validator(server, options);
    validator.scan();

    const std::uint64_t sim_digest =
        obs::Registry::global().snapshot().digest(obs::Scope::kSim);
    const std::uint64_t trace_digest =
        obs::SpanTracer::digest(tracer.drain());
    tracer.set_enabled(was_enabled);
    return std::make_pair(sim_digest, trace_digest);
  };
  const auto serial = run(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(run(threads), serial) << threads << " threads";
  }
}

// ---------- render cache ----------

TEST(RenderCache, HostReadsStableWhileQuiescent) {
  cloud::Server server("cache-host", cloud::local_testbed(), 5, kDay);
  const fs::ViewContext host_ctx{};
  const auto first = server.fs().read("/proc/uptime", host_ctx);
  const auto second = server.fs().read("/proc/uptime", host_ctx);
  ASSERT_TRUE(first.is_ok());
  ASSERT_TRUE(second.is_ok());
  EXPECT_EQ(first.value(), second.value());
}

TEST(RenderCache, TickAdvanceInvalidates) {
  cloud::Server server("cache-host", cloud::local_testbed(), 5, kDay);
  const fs::ViewContext host_ctx{};
  const auto before = server.fs().read("/proc/uptime", host_ctx);
  server.step(kSecond);
  const auto after = server.fs().read("/proc/uptime", host_ctx);
  ASSERT_TRUE(before.is_ok());
  ASSERT_TRUE(after.is_ok());
  EXPECT_NE(before.value(), after.value());  // stale bytes would be equal
}

TEST(RenderCache, TaskTableChangeInvalidates) {
  cloud::Server server("cache-host", cloud::local_testbed(), 5, kDay);
  const fs::ViewContext host_ctx{};
  const auto before = server.fs().read("/proc/loadavg", host_ctx);
  ASSERT_TRUE(before.is_ok());
  kernel::Host::SpawnOptions options;
  options.comm = "newcomer";
  options.behavior.duty_cycle = 0.5;
  server.host().spawn_task(options);
  const auto after = server.fs().read("/proc/loadavg", host_ctx);
  ASSERT_TRUE(after.is_ok());
  // loadavg's "last pid" field reflects the spawn immediately; a stale
  // cache would keep serving the old bytes.
  EXPECT_NE(before.value(), after.value());
}

TEST(RenderCache, RegisterFileReplacesCachedBytes) {
  cloud::Server server("cache-host", cloud::local_testbed(), 5, kDay);
  const fs::ViewContext host_ctx{};
  server.fs().register_file(
      "/proc/custom",
      [](const fs::RenderContext&, std::string& out) { out += "v1\n"; });
  EXPECT_EQ(server.fs().read("/proc/custom", host_ctx).value(), "v1\n");
  server.fs().register_file(
      "/proc/custom",
      [](const fs::RenderContext&, std::string& out) { out += "v2\n"; });
  EXPECT_EQ(server.fs().read("/proc/custom", host_ctx).value(), "v2\n");
}

TEST(RenderCache, ReadIntoMatchesRead) {
  cloud::Server server("cache-host", cloud::local_testbed(), 5, kDay);
  const fs::ViewContext host_ctx{};
  std::string buffer = "stale residue";  // read_into must replace this
  for (const auto& path : server.fs().list_paths()) {
    const auto full = server.fs().read(path, host_ctx);
    const auto code = server.fs().read_into(path, host_ctx, buffer);
    ASSERT_EQ(full.code(), code) << path;
    if (full.is_ok()) {
      ASSERT_EQ(full.value(), buffer) << path;
    }
  }
}

}  // namespace
}  // namespace cleaks
