// Property-based tests: invariants that must hold across randomized
// workloads, seeds and parameters (parameterized gtest sweeps).
#include <gtest/gtest.h>

#include "containerleaks.h"

namespace cleaks {
namespace {

// ---------- simulation invariants across random workloads ----------

class RandomWorkloadProperty : public ::testing::TestWithParam<int> {
 protected:
  /// A host loaded with a seed-dependent random task mix.
  static std::unique_ptr<kernel::Host> loaded_host(std::uint64_t seed) {
    auto host = std::make_unique<kernel::Host>(
        "prop", hw::testbed_i7_6700(), seed);
    host->set_tick_duration(100 * kMillisecond);
    Rng rng(seed);
    const int tasks = static_cast<int>(rng.uniform_u64(1, 12));
    for (int i = 0; i < tasks; ++i) {
      kernel::Host::SpawnOptions options;
      options.comm = "rand-" + std::to_string(i);
      options.behavior.duty_cycle = rng.uniform(0.0, 1.0);
      options.behavior.ipc = rng.uniform(0.3, 3.5);
      options.behavior.cache_miss_per_kinst = rng.uniform(0.0, 25.0);
      options.behavior.branch_miss_per_kinst = rng.uniform(0.0, 15.0);
      options.behavior.io_rate_per_s = rng.uniform(0.0, 500.0);
      options.behavior.rss_bytes = rng.uniform_u64(1, 512) << 20;
      host->spawn_task(options);
    }
    return host;
  }
};

TEST_P(RandomWorkloadProperty, EnergyCountersNeverDecrease) {
  auto host = loaded_host(static_cast<std::uint64_t>(GetParam()));
  double last_lifetime = host->lifetime_energy_j();
  for (int step = 0; step < 20; ++step) {
    host->advance(kSecond);
    const double now = host->lifetime_energy_j();
    EXPECT_GE(now, last_lifetime);
    last_lifetime = now;
  }
}

TEST_P(RandomWorkloadProperty, SchedulerConservesCoreTime) {
  auto host = loaded_host(static_cast<std::uint64_t>(GetParam()) + 100);
  std::uint64_t runtime_before = 0;
  for (const auto& task : host->tasks()) {
    runtime_before += task->stats.runtime_ns;
  }
  const double seconds = 10.0;
  host->advance(from_seconds(seconds));
  std::uint64_t runtime_after = 0;
  for (const auto& task : host->tasks()) {
    runtime_after += task->stats.runtime_ns;
  }
  const double cpu_seconds =
      static_cast<double>(runtime_after - runtime_before) / 1e9;
  // Total CPU time consumed cannot exceed cores x wall time (with a small
  // allowance for the per-tick jitter).
  EXPECT_LE(cpu_seconds, host->spec().num_cores * seconds * 1.05);
}

TEST_P(RandomWorkloadProperty, PowerStaysWithinPhysicalEnvelope) {
  auto host = loaded_host(static_cast<std::uint64_t>(GetParam()) + 200);
  const auto& e = host->spec().energy;
  const double idle_floor = 0.5 * (e.p_core_idle_w * host->spec().num_cores +
                                   e.p_uncore_w + e.p_dram_idle_w);
  for (int step = 0; step < 10; ++step) {
    host->advance(kSecond);
    EXPECT_GT(host->last_tick_power_w(), idle_floor);
    EXPECT_LT(host->last_tick_power_w(), 400.0);  // desktop-class part
  }
}

TEST_P(RandomWorkloadProperty, UptimeMatchesAdvancedTime) {
  auto host = loaded_host(static_cast<std::uint64_t>(GetParam()) + 300);
  host->advance(7 * kSecond);
  EXPECT_EQ(host->state().uptime_ns, 7 * kSecond);
  EXPECT_LE(host->state().idle_time_ns,
            7ULL * kSecond * static_cast<std::uint64_t>(host->spec().num_cores));
}

TEST_P(RandomWorkloadProperty, DeterministicReplay) {
  const auto seed = static_cast<std::uint64_t>(GetParam()) + 400;
  auto a = loaded_host(seed);
  auto b = loaded_host(seed);
  a->advance(5 * kSecond);
  b->advance(5 * kSecond);
  EXPECT_DOUBLE_EQ(a->lifetime_energy_j(), b->lifetime_energy_j());
  EXPECT_EQ(a->state().total_ctxt_switches, b->state().total_ctxt_switches);
  EXPECT_EQ(a->state().mem_free_kb, b->state().mem_free_kb);
}

TEST_P(RandomWorkloadProperty, PseudoFilesAlwaysRenderForHost) {
  auto host = loaded_host(static_cast<std::uint64_t>(GetParam()) + 500);
  host->advance(3 * kSecond);
  fs::PseudoFs filesystem(*host);
  fs::ViewContext ctx;
  for (const auto& path : filesystem.list_paths()) {
    const auto result = filesystem.read(path, ctx);
    ASSERT_TRUE(result.is_ok()) << path;
    EXPECT_FALSE(result.value().empty()) << path;
  }
}

TEST_P(RandomWorkloadProperty, RenderIsPureFunctionOfState) {
  auto host = loaded_host(static_cast<std::uint64_t>(GetParam()) + 600);
  host->advance(kSecond);
  fs::PseudoFs filesystem(*host);
  fs::ViewContext ctx;
  for (const auto& path : filesystem.list_paths()) {
    EXPECT_EQ(filesystem.read(path, ctx).value(),
              filesystem.read(path, ctx).value())
        << path;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadProperty,
                         ::testing::Range(1, 9));

// ---------- breaker monotonicity ----------

class BreakerProperty : public ::testing::TestWithParam<double> {};

TEST_P(BreakerProperty, MorePowerNeverTripsLater) {
  const double power = GetParam();
  auto trip_time = [](double watts) {
    cloud::CircuitBreaker breaker({.rated_w = 1000.0});
    for (int second = 0; second < 3600; ++second) {
      if (breaker.observe(watts, kSecond)) return second;
    }
    return 1 << 20;
  };
  EXPECT_LE(trip_time(power + 100.0), trip_time(power));
}

TEST_P(BreakerProperty, NeverTripsAtOrBelowRating) {
  const double power = GetParam();
  cloud::CircuitBreaker breaker({.rated_w = 2000.0});
  for (int second = 0; second < 1200; ++second) {
    breaker.observe(std::min(power, 2000.0), kSecond);
  }
  EXPECT_FALSE(breaker.tripped());
}

INSTANTIATE_TEST_SUITE_P(Levels, BreakerProperty,
                         ::testing::Values(1050.0, 1150.0, 1300.0, 1500.0,
                                           1590.0));

// ---------- RAPL counter arithmetic ----------

class RaplWrapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaplWrapProperty, DeltaRecoversEnergyAcrossWrap) {
  const std::uint64_t start = GetParam();
  const std::uint64_t range = 1000000;
  hw::RaplDomain domain(hw::RaplDomainKind::kPackage, range);
  domain.add_energy_j(static_cast<double>(start) / 1e6);
  const std::uint64_t before = domain.energy_uj();
  domain.add_energy_j(0.3);  // 300000 uJ
  const std::uint64_t after = domain.energy_uj();
  EXPECT_NEAR(hw::rapl_delta_j(before, after, range), 0.3, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Starts, RaplWrapProperty,
                         ::testing::Values(0ULL, 500000ULL, 800000ULL,
                                           999999ULL, 1700000ULL));

// ---------- masking policy properties ----------

class MaskingProperty : public ::testing::TestWithParam<int> {};

TEST_P(MaskingProperty, DenyIsAirtightForContainers) {
  // Whatever the container does — run tasks, advance time — a denied path
  // never leaks a byte.
  kernel::Host host("airtight", hw::testbed_i7_6700(),
                    static_cast<std::uint64_t>(GetParam()));
  host.set_tick_duration(100 * kMillisecond);
  fs::PseudoFs filesystem(host);
  container::ContainerRuntime runtime(host, filesystem,
                                      fs::MaskingPolicy::paper_stage1());
  auto instance = runtime.create({});
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  auto paths = filesystem.list_paths();
  for (int round = 0; round < 5; ++round) {
    kernel::TaskBehavior behavior;
    behavior.duty_cycle = rng.uniform01();
    behavior.named_timers = static_cast<int>(rng.uniform_u64(0, 3));
    instance->run("probe", behavior);
    host.advance(kSecond);
    for (const auto& channel : leakage::table1_channels()) {
      for (const auto& path : leakage::channel_paths(channel, filesystem)) {
        EXPECT_EQ(instance->read_file(path).code(),
                  StatusCode::kPermissionDenied)
            << path;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaskingProperty, ::testing::Range(10, 14));

// ---------- power model regression properties ----------

class ModelProperty : public ::testing::TestWithParam<int> {};

TEST_P(ModelProperty, ModeledEnergyIsNonNegativeAndMonotoneInWork) {
  auto model_result =
      defense::train_default_model(900 + static_cast<std::uint64_t>(GetParam()));
  ASSERT_TRUE(model_result.is_ok());
  const auto& model = model_result.value();
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 20; ++trial) {
    defense::PerfDelta delta;
    delta.seconds = rng.uniform(0.5, 5.0);
    delta.cycles = rng.uniform(1e8, 3e10);
    delta.instructions = delta.cycles * rng.uniform(0.3, 3.0);
    delta.cache_misses = delta.instructions * rng.uniform(0.0, 0.02);
    delta.branch_misses = delta.instructions * rng.uniform(0.0, 0.01);
    const double base = model.package_energy_j(delta);
    EXPECT_GE(base, 0.0);
    defense::PerfDelta more = delta;
    more.instructions *= 1.5;
    more.cycles *= 1.5;
    more.cache_misses *= 1.5;
    more.branch_misses *= 1.5;
    EXPECT_GE(model.package_energy_j(more), base * 0.999);
    EXPECT_GE(model.core_energy_j(delta) + model.dram_energy_j(delta),
              0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty, ::testing::Range(0, 4));

// ---------- co-residence detectors never cross-fire ----------

class DetectorProperty : public ::testing::TestWithParam<int> {};

TEST_P(DetectorProperty, NoFalsePositivesAcrossSeeds) {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 2;
  config.benign_load = true;
  config.profile = cloud::local_testbed();
  config.seed = 3000 + static_cast<std::uint64_t>(GetParam());
  cloud::Datacenter dc(config);
  auto a = dc.server(0).runtime().create({});
  auto b = dc.server(1).runtime().create({});
  coresidence::ProbeEnv env;
  env.advance = [&](SimDuration dt) { dc.step(dt); };
  for (const auto& detector : coresidence::all_detectors()) {
    EXPECT_NE(detector->verify(*a, *b, env),
              coresidence::Verdict::kCoResident)
        << detector->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectorProperty, ::testing::Range(0, 4));

}  // namespace
}  // namespace cleaks
