// Focused scheduler tests: load balancing, affinity, context-switch
// bookkeeping and the loadavg dynamics the co-residence channels feed on.
#include <gtest/gtest.h>

#include <set>

#include "kernel/host.h"

namespace cleaks::kernel {
namespace {

std::unique_ptr<Host> make_host(std::uint64_t seed = 1) {
  auto host = std::make_unique<Host>("sched-host", hw::testbed_i7_6700(), seed);
  host->set_tick_duration(100 * kMillisecond);
  return host;
}

TaskBehavior busy(double duty = 1.0) {
  TaskBehavior behavior;
  behavior.duty_cycle = duty;
  behavior.ipc = 1.5;
  return behavior;
}

TEST(Rebalance, MovesTasksOffOverloadedCore) {
  auto host = make_host();
  // Stack four tasks on core 0 by direct assignment, then let the balancer
  // run (it fires every 10 ticks).
  std::vector<std::shared_ptr<Task>> tasks;
  for (int i = 0; i < 4; ++i) {
    auto task = host->spawn_task({.comm = "stacked", .behavior = busy()});
    task->cpu = 0;
    tasks.push_back(task);
  }
  host->advance(3 * kSecond);
  std::set<int> cores;
  for (const auto& task : tasks) cores.insert(task->cpu);
  EXPECT_GE(cores.size(), 3u);
  EXPECT_GT(host->scheduler().total_migrations(), 0u);
}

TEST(Rebalance, RespectsTaskAffinity) {
  auto host = make_host();
  std::vector<std::shared_ptr<Task>> pinned;
  for (int i = 0; i < 4; ++i) {
    Host::SpawnOptions options;
    options.comm = "pinned";
    options.behavior = busy();
    options.allowed_cpus = {1};
    auto task = host->spawn_task(options);
    task->cpu = 1;
    pinned.push_back(task);
  }
  host->advance(3 * kSecond);
  for (const auto& task : pinned) {
    EXPECT_EQ(task->cpu, 1);  // affinity beats balance
  }
}

TEST(Rebalance, RespectsCgroupCpuset) {
  auto host = make_host();
  auto cgroup = host->cgroups().create("/docker/pin");
  cgroup->cpuset.cpus = {2, 3};
  std::vector<std::shared_ptr<Task>> tasks;
  for (int i = 0; i < 6; ++i) {
    Host::SpawnOptions options;
    options.comm = "cpuset";
    options.behavior = busy();
    options.cgroup = cgroup;
    tasks.push_back(host->spawn_task(options));
  }
  host->advance(3 * kSecond);
  for (const auto& task : tasks) {
    EXPECT_TRUE(task->cpu == 2 || task->cpu == 3) << task->cpu;
  }
}

TEST(Scheduler, PartialDutySwitchesToIdleTask) {
  auto host = make_host();
  // One 50%-duty task alone on a core: sleep/wake pairs against the idle
  // task must be recorded (the Table III 1-copy mechanism).
  Host::SpawnOptions options;
  options.comm = "halfduty";
  options.behavior = busy(0.5);
  options.allowed_cpus = {0};
  auto task = host->spawn_task(options);
  host->advance(kSecond);
  EXPECT_GT(task->stats.ctx_switches, 5u);
}

TEST(Scheduler, SaturatedTaskAvoidsSleepWakeStorm) {
  // A saturated task never yields voluntarily; the only switches it sees
  // are the occasional round-robin slices it shares with the host's
  // background daemons — far fewer than a sleepy task's wake storm
  // (100 ms ticks x 10 ms quantum would be ~200 pairs/s).
  auto host = make_host();
  Host::SpawnOptions options;
  options.comm = "solo";
  options.behavior = busy(1.0);
  options.allowed_cpus = {5};
  auto task = host->spawn_task(options);
  host->advance(kSecond);
  EXPECT_LT(task->stats.ctx_switches, 100u);
}

TEST(Scheduler, ThreeWayShareOnOneCore) {
  auto host = make_host();
  std::vector<std::shared_ptr<Task>> tasks;
  for (int i = 0; i < 3; ++i) {
    Host::SpawnOptions options;
    options.comm = "third";
    options.behavior = busy();
    options.allowed_cpus = {0};
    tasks.push_back(host->spawn_task(options));
  }
  host->advance(3 * kSecond);
  for (const auto& task : tasks) {
    EXPECT_NEAR(static_cast<double>(task->stats.runtime_ns), 1e9, 2e8);
  }
}

TEST(Scheduler, MixedDutiesShareProportionally) {
  auto host = make_host();
  Host::SpawnOptions heavy_options;
  heavy_options.comm = "heavy";
  heavy_options.behavior = busy(1.0);
  heavy_options.allowed_cpus = {0};
  auto heavy = host->spawn_task(heavy_options);
  Host::SpawnOptions light_options;
  light_options.comm = "light";
  light_options.behavior = busy(0.25);
  light_options.allowed_cpus = {0};
  auto light = host->spawn_task(light_options);
  host->advance(4 * kSecond);
  const double ratio = static_cast<double>(heavy->stats.runtime_ns) /
                       static_cast<double>(light->stats.runtime_ns);
  EXPECT_NEAR(ratio, 4.0, 0.8);  // 1.0 : 0.25 demand
}

TEST(Loadavg, RisesAndDecaysWithLoad) {
  auto host = make_host();
  std::vector<HostPid> pids;
  for (int i = 0; i < 6; ++i) {
    pids.push_back(host->spawn_task({.comm = "l", .behavior = busy()})->host_pid);
  }
  host->advance(2 * kMinute);
  const double loaded = host->state().load1;
  EXPECT_NEAR(loaded, 6.0, 1.2);
  for (auto pid : pids) host->kill_task(pid);
  host->advance(3 * kMinute);
  EXPECT_LT(host->state().load1, loaded * 0.2);
  // The 15-minute average lags behind the 1-minute one.
  EXPECT_GT(host->state().load15, host->state().load1);
}

TEST(Loadavg, JittersLikeSampledRunnableCount) {
  // Fractional-duty tasks make the load average wander (the variation the
  // Table II entropy measurement relies on).
  auto host = make_host();
  for (int i = 0; i < 8; ++i) {
    host->spawn_task({.comm = "frac", .behavior = busy(0.4)});
  }
  host->advance(2 * kMinute);
  std::set<long long> observed;
  for (int step = 0; step < 30; ++step) {
    host->advance(kSecond);
    observed.insert(llround(host->state().load1 * 100.0));
  }
  EXPECT_GT(observed.size(), 5u);
}

TEST(Scheduler, ContextSwitchTotalsMonotone) {
  auto host = make_host();
  for (int i = 0; i < 4; ++i) {
    Host::SpawnOptions options;
    options.comm = "sw";
    options.behavior = busy();
    options.allowed_cpus = {0};
    host->spawn_task(options);
  }
  std::uint64_t last = 0;
  for (int step = 0; step < 5; ++step) {
    host->advance(kSecond);
    const auto now = host->scheduler().total_context_switches();
    EXPECT_GT(now, last);
    last = now;
  }
  EXPECT_EQ(host->state().total_ctxt_switches, last);
}

TEST(Scheduler, FrequencyScalingSlowsInstructionRate) {
  auto spec = hw::testbed_i7_6700();
  spec.rapl_power_cap_w = 20.0;  // forces the DVFS floor quickly
  Host host("scaled", spec, 9);
  host.set_tick_duration(100 * kMillisecond);
  // Saturate every core so the package blows through the 20 W cap.
  auto task = host.spawn_task({.comm = "burn", .behavior = busy()});
  for (int i = 1; i < spec.num_cores; ++i) {
    host.spawn_task({.comm = "burn", .behavior = busy()});
  }
  host.advance(5 * kSecond);  // throttle engages, floor reached
  const double before = task->stats.instructions;
  host.advance(kSecond);
  const double throttled_rate = task->stats.instructions - before;
  // At the 50% frequency floor the task retires about half the nominal
  // 1.5 IPC * 3.4 GHz instruction stream.
  EXPECT_NEAR(throttled_rate, 1.5 * 3.4e9 * 0.5, 6e8);
}

}  // namespace
}  // namespace cleaks::kernel
