#include <gtest/gtest.h>

#include <cstdint>
#include <map>

#include "leakage/channels.h"
#include "leakage/detector.h"
#include "leakage/inspector.h"
#include "obs/metrics.h"

namespace cleaks::leakage {
namespace {

/// One shared scan over the local testbed (scans are deterministic, and a
/// fresh scan per test would be needlessly slow).
class LocalScan : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    server_ = new cloud::Server("scan-host", cloud::local_testbed(), 77,
                                40 * kDay);
    CrossValidator validator(*server_);
    findings_ = new std::map<std::string, LeakClass>();
    for (const auto& finding : validator.scan()) {
      (*findings_)[finding.path] = finding.cls;
    }
  }
  static void TearDownTestSuite() {
    delete findings_;
    delete server_;
    findings_ = nullptr;
    server_ = nullptr;
  }

  static LeakClass cls(const std::string& path) {
    auto it = findings_->find(path);
    return it == findings_->end() ? LeakClass::kAbsent : it->second;
  }

  static cloud::Server* server_;
  static std::map<std::string, LeakClass>* findings_;
};

cloud::Server* LocalScan::server_ = nullptr;
std::map<std::string, LeakClass>* LocalScan::findings_ = nullptr;

class LeakingChannelTest : public LocalScan,
                           public ::testing::WithParamInterface<const char*> {
};

TEST_P(LeakingChannelTest, DetectedAsLeaking) {
  EXPECT_EQ(cls(GetParam()), LeakClass::kLeaking) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Table1, LeakingChannelTest,
    ::testing::Values(
        "/proc/locks", "/proc/zoneinfo", "/proc/modules", "/proc/timer_list",
        "/proc/sched_debug", "/proc/softirqs", "/proc/uptime",
        "/proc/version", "/proc/stat", "/proc/meminfo", "/proc/loadavg",
        "/proc/interrupts", "/proc/cpuinfo", "/proc/schedstat",
        "/proc/sys/fs/file-nr", "/proc/sys/fs/inode-nr",
        "/proc/sys/fs/dentry-state", "/proc/sys/kernel/random/boot_id",
        "/proc/sys/kernel/random/entropy_avail",
        "/proc/sys/kernel/sched_domain/cpu0/domain0/max_newidle_lb_cost",
        "/proc/fs/ext4/sda1/mb_groups",
        "/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
        "/sys/devices/system/node/node0/numastat",
        "/sys/devices/system/cpu/cpu0/cpuidle/state0/usage",
        "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp1_input",
        "/sys/class/powercap/intel-rapl:0/energy_uj"));

class NamespacedChannelTest
    : public LocalScan,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(NamespacedChannelTest, DetectedAsIsolated) {
  EXPECT_EQ(cls(GetParam()), LeakClass::kNamespaced) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ContrastCases, NamespacedChannelTest,
                         ::testing::Values("/proc/sys/kernel/hostname",
                                           "/proc/self/cgroup",
                                           "/proc/self/status"));

TEST_F(LocalScan, MajorityOfTreeLeaksOnStockDocker) {
  int leaking = 0;
  int total = 0;
  for (const auto& [path, leak_class] : *findings_) {
    ++total;
    if (leak_class == LeakClass::kLeaking) ++leaking;
  }
  // On an unhardened 2016 Docker host nearly every registered pseudo file
  // reads the same kernel data in both contexts.
  EXPECT_GT(leaking, total * 3 / 4);
}

// ---------- masking / hardware-absence handling ----------

TEST(Detector, Stage1MaskingTurnsChannelsToMasked) {
  cloud::CloudServiceProfile profile = cloud::local_testbed();
  profile.policy = fs::MaskingPolicy::paper_stage1();
  cloud::Server server("masked-host", profile, 3, 10 * kDay);
  CrossValidator validator(server);
  const auto findings = validator.scan();
  int masked = 0;
  for (const auto& finding : findings) {
    if (finding.cls == LeakClass::kMasked) ++masked;
    EXPECT_NE(finding.cls, LeakClass::kLeaking) << finding.path;
  }
  EXPECT_GT(masked, 20);
}

TEST(Detector, RaplChannelsAbsentWithoutHardware) {
  cloud::Server server("old-host", cloud::cc4(), 5, 10 * kDay);
  for (const auto& path : server.fs().list_paths()) {
    EXPECT_EQ(path.find("intel-rapl"), std::string::npos) << path;
  }
}

TEST(Detector, Cc5RestrictedStatIsPartialLeak) {
  cloud::Server server("cc5-host", cloud::cc5(), 6, 10 * kDay);
  CrossValidator validator(server);
  container::ContainerConfig config;
  config.num_cpus = 4;
  config.memory_limit_bytes = 8ULL << 30;
  auto probe = server.runtime().create(config);
  EXPECT_EQ(validator.classify("/proc/stat", *probe), LeakClass::kPartial);
  EXPECT_EQ(validator.classify("/proc/locks", *probe), LeakClass::kMasked);
  EXPECT_EQ(validator.classify("/proc/timer_list", *probe),
            LeakClass::kLeaking);
}

// ---------- channel catalog ----------

TEST(Channels, TwentyOneTable1Rows) {
  const auto channels = table1_channels();
  EXPECT_EQ(channels.size(), 21u);
  EXPECT_EQ(channels.front().row, "/proc/locks");
  EXPECT_EQ(channels.back().row, "/sys/class/*");
}

TEST(Channels, VulnerabilityFlagsMatchPaper) {
  for (const auto& channel : table1_channels()) {
    EXPECT_TRUE(channel.vuln_info_leak) << channel.row;  // all leak info
    if (channel.row == "/proc/modules" || channel.row == "/proc/version") {
      EXPECT_FALSE(channel.vuln_coresidence) << channel.row;
    }
    if (channel.row == "/proc/stat" || channel.row == "/proc/meminfo") {
      EXPECT_TRUE(channel.vuln_dos) << channel.row;
    }
  }
}

TEST(Channels, Table2ListsTwentyNineChannels) {
  EXPECT_EQ(table2_channel_globs().size(), 29u);
}

TEST(Channels, GlobExpansionFindsPaths) {
  kernel::Host host("h", hw::testbed_i7_6700(), 2);
  fs::PseudoFs filesystem(host);
  const auto channels = table1_channels();
  for (const auto& channel : channels) {
    EXPECT_FALSE(channel_paths(channel, filesystem).empty()) << channel.row;
  }
}

// ---------- inspector (Table I matrix) ----------

TEST(Inspector, MatrixMatchesCloudPolicies) {
  CloudInspector inspector({cloud::cc1(), cloud::cc4(), cloud::cc5()}, 13);
  const auto matrix = inspector.inspect();
  ASSERT_EQ(matrix.size(), 21u);
  auto row = [&](const std::string& name) -> const ChannelAvailability& {
    for (const auto& entry : matrix) {
      if (entry.channel.row == name) return entry;
    }
    throw std::logic_error("row not found: " + name);
  };
  // sched_debug: masked on CC1/CC4, leaking on CC5.
  EXPECT_NE(row("/proc/sched_debug").per_cloud.at("CC1"),
            LeakClass::kLeaking);
  EXPECT_EQ(row("/proc/sched_debug").per_cloud.at("CC5"),
            LeakClass::kLeaking);
  // uptime: leaks on CC1/CC4, denied on CC5.
  EXPECT_EQ(row("/proc/uptime").per_cloud.at("CC1"), LeakClass::kLeaking);
  EXPECT_EQ(row("/proc/uptime").per_cloud.at("CC4"), LeakClass::kLeaking);
  EXPECT_NE(row("/proc/uptime").per_cloud.at("CC5"), LeakClass::kLeaking);
  // /sys/class/* (RAPL): leaks on CC1, unavailable on CC4 (no hardware).
  EXPECT_EQ(row("/sys/class/*").per_cloud.at("CC1"), LeakClass::kLeaking);
  EXPECT_NE(row("/sys/class/*").per_cloud.at("CC4"), LeakClass::kLeaking);
  // version/modules leak everywhere (nobody masks them).
  for (const char* cloud_name : {"CC1", "CC4", "CC5"}) {
    EXPECT_EQ(row("/proc/version").per_cloud.at(cloud_name),
              LeakClass::kLeaking);
    EXPECT_EQ(row("/proc/modules").per_cloud.at(cloud_name),
              LeakClass::kLeaking);
  }
}

TEST(Inspector, SymbolsMatchTableLegend) {
  EXPECT_EQ(CloudInspector::symbol(LeakClass::kLeaking), "●");
  EXPECT_EQ(CloudInspector::symbol(LeakClass::kPartial), "◐");
  EXPECT_EQ(CloudInspector::symbol(LeakClass::kMasked), "○");
  EXPECT_EQ(CloudInspector::symbol(LeakClass::kAbsent), "○");
}

// ---------- incremental rescans (PR 5) ----------

TEST(Incremental, UnchangedWorldWarmScanReusesEverything) {
  cloud::Server server("warm-host", cloud::local_testbed(), 77, 40 * kDay);
  CrossValidator validator(server);
  const auto cold = validator.scan();
  auto& reused =
      obs::Registry::global().counter("scan_paths_reused_total", "");
  auto& avoided =
      obs::Registry::global().counter("scan_renders_avoided_total", "");
  const std::uint64_t reused_before = reused.value();
  const std::uint64_t avoided_before = avoided.value();
  const auto warm = validator.scan();
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(warm[i].path, cold[i].path);
    EXPECT_EQ(warm[i].cls, cold[i].cls) << warm[i].path;
    EXPECT_EQ(warm[i].degraded, cold[i].degraded) << warm[i].path;
  }
  EXPECT_GT(reused.value(), reused_before);
  EXPECT_GT(avoided.value(), avoided_before);
}

TEST(Incremental, PerturbedWorldRescanKeepsClassifications) {
  cloud::Server server("moved-host", cloud::local_testbed(), 77, 40 * kDay);
  CrossValidator validator(server);
  const auto cold = validator.scan();
  server.step(kSecond);  // the generation moves: outright reuse is off
  auto& reused =
      obs::Registry::global().counter("scan_paths_reused_total", "");
  const std::uint64_t reused_before = reused.value();
  const auto warm = validator.scan();
  ASSERT_EQ(warm.size(), cold.size());
  for (std::size_t i = 0; i < cold.size(); ++i) {
    EXPECT_EQ(warm[i].path, cold[i].path);
    EXPECT_EQ(warm[i].cls, cold[i].cls) << warm[i].path;
  }
  // Static pairs (e.g. the namespaced hostname) still reuse their verdict
  // through the digest match even though everything re-rendered.
  EXPECT_GT(reused.value(), reused_before);
}

TEST(Incremental, DisabledIncrementalScansStayCold) {
  cloud::Server server("cold-host", cloud::local_testbed(), 77, 40 * kDay);
  ScanOptions options;
  options.incremental = false;
  CrossValidator validator(server, options);
  const auto first = validator.scan();
  auto& reused =
      obs::Registry::global().counter("scan_paths_reused_total", "");
  auto& avoided =
      obs::Registry::global().counter("scan_renders_avoided_total", "");
  const std::uint64_t reused_before = reused.value();
  const std::uint64_t avoided_before = avoided.value();
  const auto second = validator.scan();
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(second[i].cls, first[i].cls) << second[i].path;
  }
  EXPECT_EQ(reused.value(), reused_before);    // no reuse when disabled
  EXPECT_EQ(avoided.value(), avoided_before);  // every render ran again
}

TEST(Detector, LeakClassNames) {
  EXPECT_EQ(to_string(LeakClass::kLeaking), "LEAKING");
  EXPECT_EQ(to_string(LeakClass::kPartial), "PARTIAL");
  EXPECT_EQ(to_string(LeakClass::kNamespaced), "NAMESPACED");
  EXPECT_EQ(to_string(LeakClass::kMasked), "MASKED");
  EXPECT_EQ(to_string(LeakClass::kAbsent), "ABSENT");
}

}  // namespace
}  // namespace cleaks::leakage
