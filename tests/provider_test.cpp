// Provider control-plane determinism (PR 10).
//
// The fleet-scale rewrite (PlacementIndex, slab instance table, epoch-
// batched billing) must be *bitwise* invisible: every golden below was
// recorded against the pre-refactor provider (O(R) occupancy rebuild,
// shared_ptr vector, every-instance-every-step metering) and is asserted
// here against the new control plane, at 1/2/4/8 datacenter lanes.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cloud/datacenter.h"
#include "cloud/provider.h"
#include "kernel/task.h"
#include "sim/engine.h"
#include "util/rng.h"

namespace cleaks::cloud {
namespace {

DatacenterConfig placement_config(int num_threads) {
  DatacenterConfig config;
  config.num_racks = 2;
  config.servers_per_rack = 8;
  config.benign_load = false;
  config.seed = 42;
  config.num_threads = num_threads;
  return config;
}

// Recorded pre-refactor placement sequences: 16 servers, provider seed
// 2024, max 4 per server; 40 launches, terminate every third, 24
// launches, terminate the 10 oldest survivors, 20 launches.
constexpr int kGoldenRandom[] = {
    14, 5,  1,  11, 7,  5,  8,  12, 5,  4,  0,  3,  6,  5,  1,  15, 6,
    10, 10, 12, 12, 9,  1,  10, 10, 11, 15, 0,  6,  9,  11, 11, 4,  12,
    2,  8,  7,  0,  13, 3,  12, 1,  6,  3,  6,  15, 14, 14, 3,  3,  9,
    14, 8,  2,  7,  11, 14, 10, 9,  4,  2,  0,  7,  10, 2,  13, 8,  7,
    15, 13, 3,  11, 9,  1,  15, 7,  13, 0,  0,  4,  12, 4,  5,  1};
constexpr int kGoldenBinPack[] = {
    0,  0,  0,  0,  1,  1,  1,  1,  2,  2,  2,  2,  3,  3,  3,  3,  4,
    4,  4,  4,  5,  5,  5,  5,  6,  6,  6,  6,  7,  7,  7,  7,  8,  8,
    8,  8,  9,  9,  9,  9,  1,  2,  4,  5,  7,  8,  0,  0,  3,  3,  6,
    6,  9,  9,  10, 10, 10, 10, 11, 11, 11, 11, 12, 12, 0,  0,  3,  3,
    12, 12, 1,  1,  1,  2,  2,  2,  13, 13, 13, 13, 14, 14, 14, 14};
constexpr int kGoldenSpread[] = {
    0,  1,  2, 3,  4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15, 0,
    1,  2,  3, 4,  5,  6,  7,  8,  9,  10, 11, 12, 13, 14, 15, 0,  1,
    2,  3,  4, 5,  6,  7,  8,  9,  11, 12, 14, 15, 0,  1,  2,  3,  4,
    5,  6,  7, 8,  9,  10, 11, 12, 13, 14, 15, 0,  1,  2,  4,  5,  7,
    8,  10, 11, 13, 14, 1,  2,  3,  4,  5,  6,  7,  8,  9,  10, 11};

/// Replays the recorded mixed launch/terminate trace, returning the
/// placement sequence.
std::vector<int> run_mixed_trace(CloudProvider& provider) {
  container::ContainerConfig cc;
  cc.num_cpus = 1;
  std::vector<int> servers;
  std::vector<std::string> ids;
  std::vector<bool> live;
  auto launch = [&](int i) {
    auto inst = provider.launch("t" + std::to_string(i % 3), cc);
    servers.push_back(provider.server_of(inst->instance_id));
    ids.push_back(inst->instance_id);
    live.push_back(true);
  };
  for (int i = 0; i < 40; ++i) launch(i);
  for (int i = 0; i < 40; i += 3) {
    provider.terminate(ids[static_cast<std::size_t>(i)]);
    live[static_cast<std::size_t>(i)] = false;
  }
  for (int i = 40; i < 64; ++i) launch(i);
  int removed = 0;
  for (std::size_t i = 0; i < ids.size() && removed < 10; ++i) {
    if (!live[i]) continue;
    provider.terminate(ids[i]);
    live[i] = false;
    ++removed;
  }
  for (int i = 64; i < 84; ++i) launch(i);
  return servers;
}

void expect_golden(PlacementPolicy policy, const int* golden, std::size_t n) {
  for (const int lanes : {1, 2, 4, 8}) {
    Datacenter dc(placement_config(lanes));
    CloudProvider provider(dc, 2024, BillingRates{}, policy,
                           /*max_instances_per_server=*/4);
    const auto servers = run_mixed_trace(provider);
    ASSERT_EQ(servers.size(), n) << "lanes=" << lanes;
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(servers[i], golden[i])
          << to_string(policy) << " launch " << i << " lanes=" << lanes;
    }
  }
}

TEST(ProviderGolden, RandomMatchesPreRefactorRecording) {
  expect_golden(PlacementPolicy::kRandom, kGoldenRandom,
                std::size(kGoldenRandom));
}

TEST(ProviderGolden, BinPackMatchesPreRefactorRecording) {
  expect_golden(PlacementPolicy::kBinPack, kGoldenBinPack,
                std::size(kGoldenBinPack));
}

TEST(ProviderGolden, SpreadMatchesPreRefactorRecording) {
  expect_golden(PlacementPolicy::kSpread, kGoldenSpread,
                std::size(kGoldenSpread));
}

// ---------- old -> new index cross-check ----------

/// The pre-refactor picker, verbatim: full occupancy scan per launch,
/// with its own RNG consuming draws with identical bounds.
class ReferencePicker {
 public:
  ReferencePicker(int num_servers, int max_per_server, std::uint64_t seed,
                  PlacementPolicy policy)
      : max_(max_per_server),
        policy_(policy),
        rng_(seed),
        counts_(static_cast<std::size_t>(num_servers), 0) {}

  int pick() {
    const int total = static_cast<int>(counts_.size());
    switch (policy_) {
      case PlacementPolicy::kRandom: {
        std::vector<int> candidates;
        for (int server = 0; server < total; ++server) {
          if (counts_[static_cast<std::size_t>(server)] < max_) {
            candidates.push_back(server);
          }
        }
        if (candidates.empty()) {
          return static_cast<int>(rng_.uniform_u64(0, total - 1));
        }
        return candidates[rng_.uniform_u64(0, candidates.size() - 1)];
      }
      case PlacementPolicy::kBinPack: {
        int best = -1;
        for (int server = 0; server < total; ++server) {
          const int count = counts_[static_cast<std::size_t>(server)];
          if (count >= max_) continue;
          if (best < 0 || count > counts_[static_cast<std::size_t>(best)]) {
            best = server;
          }
        }
        return best < 0 ? 0 : best;
      }
      case PlacementPolicy::kSpread: {
        int best = 0;
        for (int server = 1; server < total; ++server) {
          if (counts_[static_cast<std::size_t>(server)] <
              counts_[static_cast<std::size_t>(best)]) {
            best = server;
          }
        }
        return best;
      }
    }
    return 0;
  }

  void add(int server) { ++counts_[static_cast<std::size_t>(server)]; }
  void remove(int server) { --counts_[static_cast<std::size_t>(server)]; }

 private:
  int max_;
  PlacementPolicy policy_;
  Rng rng_;
  std::vector<int> counts_;
};

TEST(ProviderIndex, MatchesLinearReferenceUnderHeavyChurn) {
  for (const PlacementPolicy policy :
       {PlacementPolicy::kRandom, PlacementPolicy::kBinPack,
        PlacementPolicy::kSpread}) {
    DatacenterConfig config;
    config.num_racks = 4;
    config.servers_per_rack = 8;
    config.benign_load = false;
    Datacenter dc(config);
    constexpr std::uint64_t kSeed = 9091;
    CloudProvider provider(dc, kSeed, BillingRates{}, policy,
                           /*max_instances_per_server=*/3);
    ReferencePicker reference(dc.num_servers(), 3, kSeed, policy);
    container::ContainerConfig cc;
    cc.num_cpus = 1;

    Rng trace(777);  // drives the op mix, not placement
    std::vector<std::string> ids;
    std::vector<int> placed;
    for (int op = 0; op < 600; ++op) {
      const bool full =
          static_cast<int>(ids.size()) >= dc.num_servers() * 3;
      if (!ids.empty() && (full || trace.uniform_u64(0, 9) < 4)) {
        const auto victim = trace.uniform_u64(0, ids.size() - 1);
        reference.remove(placed[victim]);
        ASSERT_TRUE(provider.terminate(ids[victim]));
        ids.erase(ids.begin() + static_cast<std::ptrdiff_t>(victim));
        placed.erase(placed.begin() + static_cast<std::ptrdiff_t>(victim));
      } else {
        const int expected = reference.pick();
        reference.add(expected);
        auto inst = provider.launch("churn", cc);
        const int got = provider.server_of(inst->instance_id);
        ASSERT_EQ(got, expected)
            << to_string(policy) << " op " << op << ": index diverged from "
            << "the pre-refactor linear scan";
        ids.push_back(inst->instance_id);
        placed.push_back(got);
      }
    }
  }
}

// ---------- billing goldens ----------

// Recorded pre-refactor: 4 servers (1 rack, seed 42, no benign load),
// provider seed 7, kSpread, 2-vCPU containers; idle x2 + busy (2 burn
// tasks), 30 x 1 s steps, third idle launch, 30 steps, terminate first
// idle, 30 steps. The new meter defers the idle tenant (its servers'
// usage markers never move) and must settle to the same bits on query.
TEST(ProviderBilling, HexfloatGoldensSurviveEpochRollup) {
  for (const int lanes : {1, 2, 4, 8}) {
    DatacenterConfig config;
    config.num_racks = 1;
    config.servers_per_rack = 4;
    config.benign_load = false;
    config.seed = 42;
    config.num_threads = lanes;
    Datacenter dc(config);
    CloudProvider provider(dc, 7, BillingRates{}, PlacementPolicy::kSpread,
                           /*max_instances_per_server=*/8);
    container::ContainerConfig cc;
    cc.num_cpus = 2;

    auto idle0 = provider.launch("idle", cc);
    provider.launch("idle", cc);
    auto busy = provider.launch("busy", cc);
    ASSERT_EQ(provider.server_of(busy->instance_id), 2);
    kernel::TaskBehavior burn;
    burn.duty_cycle = 1.0;
    for (int i = 0; i < 2; ++i) busy->handle->run("burn", burn);

    for (int i = 0; i < 30; ++i) provider.step(kSecond);
    provider.launch("idle", cc);
    for (int i = 0; i < 30; ++i) provider.step(kSecond);
    provider.terminate(idle0->instance_id);
    for (int i = 0; i < 30; ++i) provider.step(kSecond);

    EXPECT_EQ(provider.billing().total_cost("idle"), 0x1.b866e43aa79aap-16)
        << "lanes=" << lanes;
    EXPECT_EQ(provider.billing().cpu_hours("idle"), 0x0p+0)
        << "lanes=" << lanes;
    EXPECT_EQ(provider.billing().total_cost("busy"), 0x1.779ef3cc7397ep-11)
        << "lanes=" << lanes;
    EXPECT_EQ(provider.billing().cpu_hours("busy"), 0x1.99b5dcf6cee3fp-5)
        << "lanes=" << lanes;
  }
}

TEST(ProviderBilling, EpochLengthCannotMoveTheBits) {
  auto run = [](SimDuration epoch) {
    DatacenterConfig config;
    config.num_racks = 1;
    config.servers_per_rack = 4;
    config.benign_load = false;
    config.seed = 42;
    Datacenter dc(config);
    CloudProvider provider(dc, 7, BillingRates{}, PlacementPolicy::kSpread,
                           /*max_instances_per_server=*/8, epoch);
    container::ContainerConfig cc;
    cc.num_cpus = 2;
    provider.launch("idle", cc);
    provider.launch("idle", cc);
    auto busy = provider.launch("busy", cc);
    kernel::TaskBehavior burn;
    burn.duty_cycle = 1.0;
    busy->handle->run("burn", burn);
    for (int i = 0; i < 45; ++i) provider.step(kSecond);
    return std::pair{provider.billing().total_cost("idle"),
                     provider.billing().total_cost("busy")};
  };
  // A 7 s epoch settles mid-run many times; an hour epoch settles only on
  // the final query. Both must reproduce the per-step fold exactly.
  EXPECT_EQ(run(7 * kSecond), run(kHour));
}

// ---------- batch API ----------

TEST(ProviderBatch, BatchEqualsSequentialLaunches) {
  auto make_dc = [] {
    DatacenterConfig config;
    config.num_racks = 2;
    config.servers_per_rack = 8;
    config.benign_load = false;
    return config;
  };
  container::ContainerConfig cc;
  cc.num_cpus = 1;

  Datacenter dc_a(make_dc());
  CloudProvider loop(dc_a, 31, BillingRates{}, PlacementPolicy::kRandom, 4);
  std::vector<int> loop_servers;
  for (int i = 0; i < 24; ++i) {
    loop_servers.push_back(
        loop.server_of(loop.launch("t", cc)->instance_id));
  }

  Datacenter dc_b(make_dc());
  CloudProvider batch(dc_b, 31, BillingRates{}, PlacementPolicy::kRandom, 4);
  std::vector<std::uint64_t> uids;
  batch.launch_batch("t", 24, cc, &uids);
  ASSERT_EQ(uids.size(), 24u);
  for (std::size_t i = 0; i < uids.size(); ++i) {
    const auto* inst = batch.find_uid(uids[i]);
    ASSERT_NE(inst, nullptr);
    EXPECT_EQ(inst->server_index, loop_servers[i]) << "launch " << i;
  }

  EXPECT_EQ(batch.terminate_batch(uids), 24);
  EXPECT_EQ(batch.instance_count(), 0u);
  EXPECT_EQ(batch.terminate_batch(uids), 0);  // already gone
}

TEST(ProviderBatch, TerminateOldestFollowsLaunchOrder) {
  DatacenterConfig config;
  config.num_racks = 1;
  config.servers_per_rack = 8;
  config.benign_load = false;
  Datacenter dc(config);
  CloudProvider provider(dc, 5);
  container::ContainerConfig cc;
  cc.num_cpus = 1;
  std::vector<std::uint64_t> uids;
  provider.launch_batch("t", 6, cc, &uids);
  EXPECT_EQ(provider.live_instances("t"), 6);
  EXPECT_EQ(provider.terminate_oldest("t", 4), 4);
  EXPECT_EQ(provider.live_instances("t"), 2);
  // Oldest-first: the two survivors are the two newest uids.
  EXPECT_EQ(provider.find_uid(uids[0]), nullptr);
  EXPECT_EQ(provider.find_uid(uids[3]), nullptr);
  ASSERT_NE(provider.find_uid(uids[4]), nullptr);
  ASSERT_NE(provider.find_uid(uids[5]), nullptr);
  EXPECT_EQ(provider.terminate_oldest("t", 99), 2);
  EXPECT_EQ(provider.terminate_oldest("missing", 1), 0);
}

// ---------- churn workload ----------

TEST(ProviderChurn, StormsAreLaneCountInvariantAndEmitLifecycle) {
  auto run = [](int lanes) {
    sim::ScenarioSpec spec;
    spec.name = "churn";
    spec.datacenter.num_racks = 1;
    spec.datacenter.servers_per_rack = 8;
    spec.datacenter.benign_load = false;
    spec.datacenter.num_threads = lanes;
    sim::ProviderSpec provider;
    provider.seed = 11;
    provider.churn.storms = 6;
    provider.churn.interval = 5 * kSecond;
    provider.churn.launches_per_storm = 6;
    provider.churn.launch_jitter = 4;
    provider.churn.terminate_fraction = 0.5;
    provider.churn.tenants = 2;
    spec.provider = provider;
    sim::SimEngine engine(spec);
    engine.enable_event_stream();
    engine.run_steps(40, kSecond);
    return std::tuple{engine.event_stream_digest(), engine.events_drained(),
                      engine.provider().instance_count()};
  };
  const auto reference = run(1);
  EXPECT_GT(std::get<1>(reference), 0u);  // lifecycle events flowed
  EXPECT_GT(std::get<2>(reference), 0u);  // storms left live instances
  for (const int lanes : {2, 4, 8}) {
    EXPECT_EQ(run(lanes), reference) << "lanes=" << lanes;
  }
}

}  // namespace
}  // namespace cleaks::cloud
