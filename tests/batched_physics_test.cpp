// Equivalence contract of the batched SoA physics plane. The legacy
// object-at-a-time reference path is gone (the plane is the only
// implementation), so the contract is pinned three ways instead of by a
// live A/B run: (1) a recorded golden digest of a 200-step facility —
// captured while the dual-path build still existed, when both modes
// produced this exact value; (2) bound-vs-unbound invariance — a Host
// that never binds onto a plane uses its own storage but the identical
// arithmetic, so it must agree bitwise; (3) the scheduler's closed-form
// context-switch shortcut driven directly against the per-quantum hook
// loop. Plus the plane's mechanics: bind-time state migration, geometry
// validation, and the bound PerCpuNs growth rules.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "hw/batched_physics.h"
#include "kernel/cgroup.h"
#include "kernel/perf_event.h"
#include "kernel/scheduler.h"
#include "kernel/task.h"
#include "leakage/detector.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace cleaks {
namespace {

cloud::DatacenterConfig facility(int threads) {
  cloud::DatacenterConfig config;
  config.num_racks = 3;
  config.servers_per_rack = 4;
  config.rack_breaker.rated_w = 4000.0;
  config.rack_power_cap_w = 3200.0;
  config.seed = 7;
  config.num_threads = threads;
  return config;
}

hw::BatchedGeometry geometry_of(const cloud::CloudServiceProfile& profile) {
  return hw::BatchedGeometry{
      profile.hardware.num_cores, profile.hardware.num_packages,
      static_cast<int>(profile.hardware.cpuidle_states.size())};
}

struct FacilityTrace {
  std::vector<double> total_power;    ///< per-step facility power (bitwise)
  std::vector<std::uint64_t> rapl_uj; ///< final energy_uj, every domain
  std::vector<double> rapl_j;         ///< final unwrapped totals, every domain
  std::uint64_t sim_digest = 0;       ///< obs registry digest (Scope::kSim)

  bool operator==(const FacilityTrace& other) const {
    return total_power == other.total_power && rapl_uj == other.rapl_uj &&
           rapl_j == other.rapl_j && sim_digest == other.sim_digest;
  }
};

FacilityTrace run_facility(int threads, int steps = 200) {
  obs::Registry::global().reset();
  cloud::Datacenter dc(facility(threads));
  FacilityTrace trace;
  for (int tick = 0; tick < steps; ++tick) {
    dc.step(kSecond);
    trace.total_power.push_back(dc.total_power_w());
  }
  for (int s = 0; s < dc.num_servers(); ++s) {
    for (const auto& pkg : dc.server(s).host().rapl()) {
      for (const hw::RaplDomain* domain :
           {&pkg.package(), &pkg.core(), &pkg.dram()}) {
        trace.rapl_uj.push_back(domain->energy_uj());
        trace.rapl_j.push_back(domain->lifetime_energy_j());
      }
    }
  }
  trace.sim_digest =
      obs::Registry::global().snapshot().digest(obs::Scope::kSim);
  return trace;
}

// Recorded at the PR that deleted the scalar reference path; re-recorded at
// the sparse-stepping PR, which added the engine_active_server_steps_total /
// engine_idle_coasted_sim_seconds_total counters to the kSim registry (the
// power and RAPL traces themselves were bit-for-bit unchanged, and the new
// digest is identical under CLEAKS_SPARSE=0 and 1 at every lane count —
// tests/sparse_test.cpp pins that equality directly). Any arithmetic drift
// in the unconditional fast path shows up here.
constexpr std::uint64_t kFacilityGoldenDigest = 0x82f12a74f3b07e98ull;

TEST(BatchedEquivalence, FacilityBitwiseIdenticalAcrossLanesAndGolden) {
  const FacilityTrace reference = run_facility(1);
  for (int lanes : {2, 4, 8}) {
    EXPECT_EQ(run_facility(lanes), reference) << lanes << " lanes";
  }
  EXPECT_EQ(reference.sim_digest, kFacilityGoldenDigest)
      << "actual digest 0x" << std::hex << reference.sim_digest;
}

TEST(BoundPhysics, ScanFindingsIdenticalBoundVsUnbound) {
  // Table 1: the cross-validation scan must classify every channel path
  // identically whether the probed host's hardware state lives on a plane
  // lane or in its own vectors, at every scan thread count.
  auto scan = [](bool bound, int threads) {
    // Plane declared before the server so bound slices outlive the Host.
    std::unique_ptr<hw::BatchedPhysics> plane;
    const auto profile = cloud::local_testbed();
    if (bound) {
      plane = std::make_unique<hw::BatchedPhysics>(geometry_of(profile), 1);
    }
    cloud::Server server("scan-host", profile, 77, 40 * kDay);
    if (plane) server.bind_physics(*plane, 0);
    leakage::ScanOptions options;
    options.num_threads = threads;
    leakage::CrossValidator validator(server, options);
    std::vector<std::pair<std::string, std::string>> findings;
    for (const auto& finding : validator.scan()) {
      findings.emplace_back(finding.path, leakage::to_string(finding.cls));
    }
    return findings;
  };
  const auto reference = scan(/*bound=*/false, 1);
  ASSERT_FALSE(reference.empty());
  for (int lanes : {1, 2, 4, 8}) {
    EXPECT_EQ(scan(true, lanes), reference) << "bound, " << lanes << " lanes";
  }
}

// ---------- scheduler closed-form fast path ----------

struct SchedObservation {
  std::vector<std::uint64_t> ctx_switches;  ///< per task
  std::uint64_t total_switches = 0;
  /// Summed pmu_state over the cgroup's perf event instances: the direct
  /// footprint of the context-switch hook (cgroup counters are charged by
  /// the Host after the tick, not in Scheduler::tick itself).
  std::uint64_t pmu_state = 0;
  double active_seconds = 0.0;

  bool operator==(const SchedObservation& other) const {
    return ctx_switches == other.ctx_switches &&
           total_switches == other.total_switches &&
           pmu_state == other.pmu_state &&
           active_seconds == other.active_seconds;
  }
};

// Drive Scheduler::tick directly: 6 busy tasks on 4 cores, 50 ticks. With
// an unmonitored cgroup the closed-form arithmetic must match the
// per-quantum hook loop bitwise (every hook is a no-op there); with a
// monitored cgroup the scheduler internally falls back to the loop on the
// involved cores, so the flag must not matter either way.
SchedObservation run_sched(bool closed_form, bool monitored) {
  kernel::Scheduler sched(4);
  kernel::PerfEventSubsystem perf;
  auto root = std::make_shared<kernel::Cgroup>("/");
  auto cgroup = std::make_shared<kernel::Cgroup>("/docker/sched");
  if (monitored) perf.create_cgroup_events(*cgroup, 4);

  std::vector<std::shared_ptr<kernel::Task>> tasks;
  for (int i = 0; i < 6; ++i) {
    auto task = std::make_shared<kernel::Task>();
    task->host_pid = i + 2;
    task->comm = "sched-busy";
    task->container_id = "sched";
    task->cgroup = cgroup;
    task->cpu = i % 4;
    task->behavior.duty_cycle = 1.0;
    task->behavior.ipc = 1.5;
    tasks.push_back(std::move(task));
  }

  Rng rng(1199);
  SchedObservation obs;
  for (int tick = 0; tick < 50; ++tick) {
    sched.tick(tasks, 2.4e9, 100 * kMillisecond, perf, *root, rng,
               closed_form);
    for (const auto& activity : sched.core_activity()) {
      obs.active_seconds += activity.active_seconds;
    }
  }
  for (const auto& task : tasks) {
    obs.ctx_switches.push_back(task->stats.ctx_switches);
  }
  obs.total_switches = sched.total_context_switches();
  for (const auto& instance : cgroup->perf.events) {
    obs.pmu_state += instance.pmu_state;
  }
  return obs;
}

TEST(BatchedScheduler, ClosedFormMatchesHookLoopWhenUnmonitored) {
  const auto loop = run_sched(/*closed_form=*/false, /*monitored=*/false);
  const auto closed = run_sched(true, false);
  EXPECT_EQ(closed, loop);
  // Sanity: the busy queue actually context-switched.
  EXPECT_GT(loop.total_switches, 0u);
}

TEST(BatchedScheduler, MonitoredCgroupFallsBackToHookLoop) {
  const auto loop = run_sched(/*closed_form=*/false, /*monitored=*/true);
  const auto closed = run_sched(true, true);
  EXPECT_EQ(closed, loop);
  EXPECT_GT(loop.pmu_state, 0u);  // the switch hook really ran
}

// ---------- bind-time migration ----------

TEST(BatchedPhysics, BindAfterWarmupMigratesStateBitwise) {
  // Three identically-seeded servers: never bound, bound from the start,
  // and bound only after 5 s of unbound stepping. All three must produce
  // the same power trace and final RAPL counters.
  const auto profile = cloud::local_testbed();
  std::unique_ptr<hw::BatchedPhysics> plane_b =
      std::make_unique<hw::BatchedPhysics>(geometry_of(profile), 1);
  std::unique_ptr<hw::BatchedPhysics> plane_c =
      std::make_unique<hw::BatchedPhysics>(geometry_of(profile), 1);
  cloud::Server a("host", profile, 23);
  cloud::Server b("host", profile, 23);
  cloud::Server c("host", profile, 23);
  b.bind_physics(*plane_b, 0);
  EXPECT_TRUE(b.host().batched());
  EXPECT_FALSE(a.host().batched());
  for (int tick = 0; tick < 10; ++tick) {
    if (tick == 5) c.bind_physics(*plane_c, 0);  // mid-run migration
    a.step(kSecond);
    b.step(kSecond);
    c.step(kSecond);
    ASSERT_EQ(a.power_w(), b.power_w()) << "tick " << tick;
    ASSERT_EQ(a.power_w(), c.power_w()) << "tick " << tick;
  }
  const auto& pkgs_a = a.host().rapl();
  const auto& pkgs_b = b.host().rapl();
  const auto& pkgs_c = c.host().rapl();
  ASSERT_EQ(pkgs_a.size(), pkgs_b.size());
  for (std::size_t p = 0; p < pkgs_a.size(); ++p) {
    EXPECT_EQ(pkgs_a[p].package().energy_uj(), pkgs_b[p].package().energy_uj());
    EXPECT_EQ(pkgs_a[p].package().energy_uj(), pkgs_c[p].package().energy_uj());
    EXPECT_EQ(pkgs_a[p].core().lifetime_energy_j(), pkgs_b[p].core().lifetime_energy_j());
    EXPECT_EQ(pkgs_a[p].dram().lifetime_energy_j(), pkgs_c[p].dram().lifetime_energy_j());
  }
}

TEST(BatchedPhysics, GeometryIsValidated) {
  EXPECT_THROW(hw::BatchedPhysics(hw::BatchedGeometry{0, 1, 2}, 1),
               std::invalid_argument);
  EXPECT_THROW(hw::BatchedPhysics(hw::BatchedGeometry{4, 0, 2}, 1),
               std::invalid_argument);

  const auto profile = cloud::local_testbed();
  hw::BatchedPhysics plane(geometry_of(profile), 2);
  cloud::Server server("host", profile, 1);
  EXPECT_THROW(server.bind_physics(plane, 2), std::invalid_argument);

  auto wrong = geometry_of(profile);
  wrong.num_cores += 1;
  hw::BatchedPhysics mismatched(wrong, 1);
  EXPECT_THROW(server.bind_physics(mismatched, 0), std::invalid_argument);
}

TEST(BatchedMetrics, AllocsAvoidedIsRuntimeScopedAndCounting) {
  // The hoisted-scratch counter must observe real savings but stay out of
  // the kSim digest (it is a property of the execution strategy, not of
  // the simulated world).
  obs::Registry::global().reset();
  cloud::Datacenter dc(facility(1));
  for (int tick = 0; tick < 5; ++tick) dc.step(kSecond);
  const auto snapshot = obs::Registry::global().snapshot();
  bool found = false;
  for (const auto& metric : snapshot.metrics) {
    if (metric.name != "step_allocs_avoided_total") continue;
    found = true;
    EXPECT_EQ(metric.scope, obs::Scope::kRuntime);
    EXPECT_GT(metric.counter, 0u);
  }
  EXPECT_TRUE(found);
}

// ---------- bound per-cpu storage ----------

TEST(PerCpuNs, BindMigratesValuesAndCapsGrowth) {
  kernel::PerCpuNs cpus;
  cpus.ensure_cpus(3);
  cpus[0] = 100;
  cpus[1] = 200;
  cpus[2] = 300;

  std::uint64_t slab[6] = {9, 9, 9, 9, 9, 9};
  cpus.bind(slab, 6);
  EXPECT_EQ(cpus.size(), 6u);      // bound storage exposes full capacity
  EXPECT_EQ(cpus[0], 100u);        // values migrated
  EXPECT_EQ(cpus[2], 300u);
  EXPECT_EQ(cpus[3], 0u);          // tail zero-filled, not leftover bytes
  cpus[4] = 42;
  EXPECT_EQ(slab[4], 42u);         // writes land in the external slab

  cpus.ensure_cpus(6);                                  // within capacity: ok
  EXPECT_THROW(cpus.ensure_cpus(7), std::length_error); // beyond: refuses
  kernel::PerCpuNs big;
  big.ensure_cpus(8);
  std::uint64_t small[4];
  EXPECT_THROW(big.bind(small, 4), std::length_error);  // would truncate
}

TEST(PerCpuNs, CopyDetachesFromBoundStorage) {
  kernel::PerCpuNs cpus;
  std::uint64_t slab[2] = {0, 0};
  cpus.bind(slab, 2);
  cpus[0] = 7;
  kernel::PerCpuNs copy = cpus;  // snapshot, not an alias
  copy[0] = 99;
  EXPECT_EQ(cpus[0], 7u);
  EXPECT_EQ(slab[0], 7u);
  EXPECT_EQ(copy[0], 99u);
}

}  // namespace
}  // namespace cleaks
