// Equivalence contract of the batched SoA physics plane: the facility-level
// fast path (hw::BatchedPhysics + Host-as-view) must be bitwise
// indistinguishable from the legacy object-at-a-time reference — power
// traces, RAPL counters, metric digests, Table 1 scan findings — at every
// lane count. These tests pin that contract plus the plane's mechanics
// (bind-time state migration, geometry validation, the scheduler's
// closed-form fallback when a cgroup is perf-monitored, and the bound
// PerCpuNs growth rules).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "hw/batched_physics.h"
#include "kernel/cgroup.h"
#include "leakage/detector.h"
#include "obs/metrics.h"

namespace cleaks {
namespace {

cloud::DatacenterConfig facility(bool batched, int threads) {
  cloud::DatacenterConfig config;
  config.num_racks = 3;
  config.servers_per_rack = 4;
  config.rack_breaker.rated_w = 4000.0;
  config.rack_power_cap_w = 3200.0;
  config.seed = 7;
  config.num_threads = threads;
  config.batched = batched;
  return config;
}

hw::BatchedGeometry geometry_of(const cloud::CloudServiceProfile& profile) {
  return hw::BatchedGeometry{
      profile.hardware.num_cores, profile.hardware.num_packages,
      static_cast<int>(profile.hardware.cpuidle_states.size())};
}

struct FacilityTrace {
  std::vector<double> total_power;    ///< per-step facility power (bitwise)
  std::vector<std::uint64_t> rapl_uj; ///< final energy_uj, every domain
  std::vector<double> rapl_j;         ///< final unwrapped totals, every domain
  std::uint64_t sim_digest = 0;       ///< obs registry digest (Scope::kSim)

  bool operator==(const FacilityTrace& other) const {
    return total_power == other.total_power && rapl_uj == other.rapl_uj &&
           rapl_j == other.rapl_j && sim_digest == other.sim_digest;
  }
};

FacilityTrace run_facility(bool batched, int threads, int steps = 200) {
  obs::Registry::global().reset();
  cloud::Datacenter dc(facility(batched, threads));
  FacilityTrace trace;
  for (int tick = 0; tick < steps; ++tick) {
    dc.step(kSecond);
    trace.total_power.push_back(dc.total_power_w());
  }
  for (int s = 0; s < dc.num_servers(); ++s) {
    for (const auto& pkg : dc.server(s).host().rapl()) {
      for (const hw::RaplDomain* domain :
           {&pkg.package(), &pkg.core(), &pkg.dram()}) {
        trace.rapl_uj.push_back(domain->energy_uj());
        trace.rapl_j.push_back(domain->lifetime_energy_j());
      }
    }
  }
  trace.sim_digest =
      obs::Registry::global().snapshot().digest(obs::Scope::kSim);
  return trace;
}

TEST(BatchedEquivalence, FacilityBitwiseIdenticalAcrossModesAndLanes) {
  const FacilityTrace reference = run_facility(/*batched=*/false, 1);
  EXPECT_EQ(run_facility(false, 4), reference) << "scalar, 4 lanes";
  for (int lanes : {1, 2, 4, 8}) {
    EXPECT_EQ(run_facility(true, lanes), reference)
        << "batched, " << lanes << " lanes";
  }
}

TEST(BatchedEquivalence, ScanFindingsIdenticalAcrossModesAndLanes) {
  // Table 1: the cross-validation scan must classify every channel path
  // identically whether the probed host steps through the plane or not.
  auto scan = [](bool batched, int threads) {
    // Plane declared before the server so bound slices outlive the Host.
    std::unique_ptr<hw::BatchedPhysics> plane;
    const auto profile = cloud::local_testbed();
    if (batched) {
      plane = std::make_unique<hw::BatchedPhysics>(geometry_of(profile), 1);
    }
    cloud::Server server("scan-host", profile, 77, 40 * kDay);
    if (plane) server.bind_physics(*plane, 0);
    leakage::ScanOptions options;
    options.num_threads = threads;
    leakage::CrossValidator validator(server, options);
    std::vector<std::pair<std::string, std::string>> findings;
    for (const auto& finding : validator.scan()) {
      findings.emplace_back(finding.path, leakage::to_string(finding.cls));
    }
    return findings;
  };
  const auto reference = scan(/*batched=*/false, 1);
  ASSERT_FALSE(reference.empty());
  for (int lanes : {1, 2, 4, 8}) {
    EXPECT_EQ(scan(true, lanes), reference) << "batched, " << lanes
                                            << " lanes";
  }
}

// ---------- scheduler closed-form fast path ----------

struct SchedObservation {
  std::vector<std::uint64_t> ctx_switches;  ///< per spawned task
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  double power_w = 0.0;

  bool operator==(const SchedObservation& other) const {
    return ctx_switches == other.ctx_switches &&
           instructions == other.instructions && cycles == other.cycles &&
           cache_misses == other.cache_misses &&
           branch_misses == other.branch_misses && power_w == other.power_w;
  }
};

SchedObservation run_sched(bool batched, bool monitored) {
  std::unique_ptr<hw::BatchedPhysics> plane;
  const auto profile = cloud::local_testbed();
  if (batched) {
    plane = std::make_unique<hw::BatchedPhysics>(geometry_of(profile), 1);
  }
  cloud::Server server("sched-host", profile, 11);
  if (plane) server.bind_physics(*plane, 0);
  server.host().set_tick_duration(100 * kMillisecond);

  container::ContainerConfig config;
  auto instance = server.runtime().create(config);
  // Monitored cgroups force the per-quantum hook loop even in batched mode
  // (the closed-form shortcut is only valid when every hook is a no-op).
  instance->cgroup()->perf.accounting_enabled = monitored;

  kernel::TaskBehavior busy;
  busy.duty_cycle = 1.0;
  busy.ipc = 1.5;
  std::vector<kernel::HostPid> pids;
  for (int i = 0; i < 6; ++i) {
    pids.push_back(instance->run("sched-busy", busy)->host_pid);
  }
  server.step(10 * kSecond);

  SchedObservation obs;
  for (const auto pid : pids) {
    obs.ctx_switches.push_back(server.host().find_task(pid)->stats.ctx_switches);
  }
  const auto& counters = instance->cgroup()->perf.counters;
  obs.instructions = counters.instructions;
  obs.cycles = counters.cycles;
  obs.cache_misses = counters.cache_misses;
  obs.branch_misses = counters.branch_misses;
  obs.power_w = server.power_w();
  return obs;
}

TEST(BatchedScheduler, ClosedFormMatchesLegacyWhenUnmonitored) {
  const auto scalar = run_sched(/*batched=*/false, /*monitored=*/false);
  const auto batched = run_sched(true, false);
  EXPECT_EQ(batched, scalar);
  // Sanity: the busy queue actually context-switched.
  std::uint64_t total = 0;
  for (const auto n : scalar.ctx_switches) total += n;
  EXPECT_GT(total, 0u);
}

TEST(BatchedScheduler, MonitoredCgroupFallsBackToLegacyHooks) {
  const auto scalar = run_sched(/*batched=*/false, /*monitored=*/true);
  const auto batched = run_sched(true, true);
  EXPECT_EQ(batched, scalar);
  EXPECT_GT(scalar.instructions, 0u);  // accounting really was on
}

// ---------- bind-time migration ----------

TEST(BatchedPhysics, BindAfterWarmupMigratesStateBitwise) {
  // Three identically-seeded servers: never bound, bound from the start,
  // and bound only after 5 s of scalar stepping. All three must produce
  // the same power trace and final RAPL counters.
  const auto profile = cloud::local_testbed();
  std::unique_ptr<hw::BatchedPhysics> plane_b =
      std::make_unique<hw::BatchedPhysics>(geometry_of(profile), 1);
  std::unique_ptr<hw::BatchedPhysics> plane_c =
      std::make_unique<hw::BatchedPhysics>(geometry_of(profile), 1);
  cloud::Server a("host", profile, 23);
  cloud::Server b("host", profile, 23);
  cloud::Server c("host", profile, 23);
  b.bind_physics(*plane_b, 0);
  EXPECT_TRUE(b.host().batched());
  EXPECT_FALSE(a.host().batched());
  for (int tick = 0; tick < 10; ++tick) {
    if (tick == 5) c.bind_physics(*plane_c, 0);  // mid-run migration
    a.step(kSecond);
    b.step(kSecond);
    c.step(kSecond);
    ASSERT_EQ(a.power_w(), b.power_w()) << "tick " << tick;
    ASSERT_EQ(a.power_w(), c.power_w()) << "tick " << tick;
  }
  const auto& pkgs_a = a.host().rapl();
  const auto& pkgs_b = b.host().rapl();
  const auto& pkgs_c = c.host().rapl();
  ASSERT_EQ(pkgs_a.size(), pkgs_b.size());
  for (std::size_t p = 0; p < pkgs_a.size(); ++p) {
    EXPECT_EQ(pkgs_a[p].package().energy_uj(), pkgs_b[p].package().energy_uj());
    EXPECT_EQ(pkgs_a[p].package().energy_uj(), pkgs_c[p].package().energy_uj());
    EXPECT_EQ(pkgs_a[p].core().lifetime_energy_j(), pkgs_b[p].core().lifetime_energy_j());
    EXPECT_EQ(pkgs_a[p].dram().lifetime_energy_j(), pkgs_c[p].dram().lifetime_energy_j());
  }
}

TEST(BatchedPhysics, GeometryIsValidated) {
  EXPECT_THROW(hw::BatchedPhysics(hw::BatchedGeometry{0, 1, 2}, 1),
               std::invalid_argument);
  EXPECT_THROW(hw::BatchedPhysics(hw::BatchedGeometry{4, 0, 2}, 1),
               std::invalid_argument);

  const auto profile = cloud::local_testbed();
  hw::BatchedPhysics plane(geometry_of(profile), 2);
  cloud::Server server("host", profile, 1);
  EXPECT_THROW(server.bind_physics(plane, 2), std::invalid_argument);

  auto wrong = geometry_of(profile);
  wrong.num_cores += 1;
  hw::BatchedPhysics mismatched(wrong, 1);
  EXPECT_THROW(server.bind_physics(mismatched, 0), std::invalid_argument);
}

TEST(BatchedMetrics, AllocsAvoidedIsRuntimeScopedAndCounting) {
  // The hoisted-scratch counter must observe real savings in batched mode
  // but stay out of the kSim digest (it is a property of the execution
  // strategy, not of the simulated world).
  obs::Registry::global().reset();
  cloud::Datacenter dc(facility(/*batched=*/true, 1));
  for (int tick = 0; tick < 5; ++tick) dc.step(kSecond);
  const auto snapshot = obs::Registry::global().snapshot();
  bool found = false;
  for (const auto& metric : snapshot.metrics) {
    if (metric.name != "step_allocs_avoided_total") continue;
    found = true;
    EXPECT_EQ(metric.scope, obs::Scope::kRuntime);
    EXPECT_GT(metric.counter, 0u);
  }
  EXPECT_TRUE(found);
}

// ---------- bound per-cpu storage ----------

TEST(PerCpuNs, BindMigratesValuesAndCapsGrowth) {
  kernel::PerCpuNs cpus;
  cpus.ensure_cpus(3);
  cpus[0] = 100;
  cpus[1] = 200;
  cpus[2] = 300;

  std::uint64_t slab[6] = {9, 9, 9, 9, 9, 9};
  cpus.bind(slab, 6);
  EXPECT_EQ(cpus.size(), 6u);      // bound storage exposes full capacity
  EXPECT_EQ(cpus[0], 100u);        // values migrated
  EXPECT_EQ(cpus[2], 300u);
  EXPECT_EQ(cpus[3], 0u);          // tail zero-filled, not leftover bytes
  cpus[4] = 42;
  EXPECT_EQ(slab[4], 42u);         // writes land in the external slab

  cpus.ensure_cpus(6);                                  // within capacity: ok
  EXPECT_THROW(cpus.ensure_cpus(7), std::length_error); // beyond: refuses

  kernel::PerCpuNs big;
  big.ensure_cpus(8);
  std::uint64_t small[4];
  EXPECT_THROW(big.bind(small, 4), std::length_error);  // would truncate
}

TEST(PerCpuNs, CopyDetachesFromBoundStorage) {
  kernel::PerCpuNs cpus;
  std::uint64_t slab[2] = {0, 0};
  cpus.bind(slab, 2);
  cpus[0] = 7;
  kernel::PerCpuNs copy = cpus;  // snapshot, not an alias
  copy[0] = 99;
  EXPECT_EQ(cpus[0], 7u);
  EXPECT_EQ(slab[0], 7u);
  EXPECT_EQ(copy[0], 99u);
}

}  // namespace
}  // namespace cleaks
