#include <gtest/gtest.h>

#include <set>

#include "kernel/host.h"
#include "workload/diurnal.h"
#include "workload/profiles.h"
#include "workload/unixbench.h"

namespace cleaks::workload {
namespace {

// ---------- profiles ----------

TEST(Profiles, TrainingSetHasSixMixes) {
  const auto profiles = training_set();
  EXPECT_EQ(profiles.size(), 6u);
  std::set<std::string> names;
  for (const auto& profile : profiles) names.insert(profile.name);
  EXPECT_EQ(names.size(), profiles.size());
}

TEST(Profiles, SpecSuiteDisjointFromTrainingSet) {
  std::set<std::string> train_names;
  for (const auto& profile : training_set()) train_names.insert(profile.name);
  for (const auto& profile : spec_suite()) {
    EXPECT_EQ(train_names.count(profile.name), 0u) << profile.name;
  }
}

TEST(Profiles, SpecSuiteSpansMissMixPlane) {
  // Fig 8 needs benchmarks across memory-bound and compute-bound regimes.
  double min_cm = 1e9;
  double max_cm = 0.0;
  for (const auto& profile : spec_suite()) {
    min_cm = std::min(min_cm, profile.behavior.cache_miss_per_kinst);
    max_cm = std::max(max_cm, profile.behavior.cache_miss_per_kinst);
  }
  EXPECT_LT(min_cm, 1.0);
  EXPECT_GT(max_cm, 15.0);
}

TEST(Profiles, IdleLoopIsComputePure) {
  const auto profile = idle_loop();
  EXPECT_GT(profile.behavior.ipc, 3.0);
  EXPECT_LT(profile.behavior.cache_miss_per_kinst, 0.1);
}

TEST(Profiles, StressVmScalesWithWorkingSet) {
  const auto small = stress_vm(128);
  const auto large = stress_vm(512);
  EXPECT_LT(small.behavior.cache_miss_per_kinst,
            large.behavior.cache_miss_per_kinst);
  EXPECT_GT(small.behavior.ipc, large.behavior.ipc);
}

TEST(Profiles, PowerVirusDrawsMoreThanStress) {
  // The virus should beat ordinary stress in energy/second under the
  // ground-truth model (that is its defining property, §IV-A).
  hw::EnergyModel model(hw::EnergyModelParams{});
  auto energy_per_second = [&](const Profile& profile) {
    hw::TickActivity activity;
    activity.active_seconds = 1.0;
    activity.cycles = 3.4e9;
    activity.instructions = activity.cycles * profile.behavior.ipc;
    activity.cache_misses =
        activity.instructions * profile.behavior.cache_miss_per_kinst / 1000;
    activity.branch_misses =
        activity.instructions * profile.behavior.branch_miss_per_kinst / 1000;
    return model.core_activity_energy(activity).package_j;
  };
  EXPECT_GT(energy_per_second(power_virus()),
            energy_per_second(stress_cpu()) * 1.2);
  EXPECT_GT(energy_per_second(power_virus()), energy_per_second(prime()));
}

TEST(Profiles, TenantMixesHaveIo) {
  for (const auto& profile : tenant_mixes()) {
    EXPECT_GT(profile.behavior.io_rate_per_s, 0.0) << profile.name;
    EXPECT_LT(profile.behavior.duty_cycle, 1.0) << profile.name;
  }
}

// ---------- unixbench ----------

TEST(UnixBench, TwelveBenchmarksInPaperOrder) {
  const auto suite = unixbench_suite();
  ASSERT_EQ(suite.size(), 12u);
  EXPECT_EQ(suite.front().name, "Dhrystone 2 using register variables");
  EXPECT_EQ(suite[7].name, "Pipe-based Context Switching");
  EXPECT_EQ(suite.back().name, "System Call Overhead");
}

TEST(UnixBench, KindsCoverKernelPaths) {
  std::set<BenchKind> kinds;
  for (const auto& spec : unixbench_suite()) kinds.insert(spec.kind);
  EXPECT_GE(kinds.size(), 6u);
  EXPECT_TRUE(kinds.count(BenchKind::kPipeContextSwitch));
}

// ---------- diurnal generator ----------

std::unique_ptr<kernel::Host> make_host(std::uint64_t seed = 1) {
  auto host =
      std::make_unique<kernel::Host>("w-host", hw::cloud_xeon_server(), seed);
  host->set_tick_duration(kSecond);
  return host;
}

TEST(Diurnal, TargetStaysInBounds) {
  auto host = make_host();
  DiurnalLoadGenerator generator(*host, 5);
  for (int step = 0; step < 200; ++step) {
    generator.apply(host->now());
    host->advance(30 * kSecond);
    EXPECT_GE(generator.current_target(), 0.02);
    EXPECT_LE(generator.current_target(), 0.97);
  }
}

TEST(Diurnal, DayPeakExceedsNightTrough) {
  auto host = make_host();
  DiurnalParams params;
  params.noise_sigma = 0.0;     // isolate the deterministic shape
  params.bursts_per_day = 0.0;
  DiurnalLoadGenerator generator(*host, 5, params);
  // 4am trough vs mid-afternoon peak on a weekday (day 0).
  generator.apply(4 * kHour);
  const double trough = generator.current_target();
  generator.apply(15 * kHour);
  const double peak = generator.current_target();
  EXPECT_GT(peak, trough + 0.15);
}

TEST(Diurnal, WeekendDemandLower) {
  auto host = make_host();
  DiurnalParams params;
  params.noise_sigma = 0.0;
  params.bursts_per_day = 0.0;
  DiurnalLoadGenerator generator(*host, 5, params);
  generator.apply(2 * kDay + 15 * kHour);  // Wednesday afternoon
  const double weekday = generator.current_target();
  generator.apply(5 * kDay + 15 * kHour);  // Saturday afternoon
  const double weekend = generator.current_target();
  EXPECT_LT(weekend, weekday * 0.8);
}

TEST(Diurnal, DrivesHostPowerFluctuation) {
  auto host = make_host();
  DiurnalLoadGenerator generator(*host, 5);
  double min_power = 1e9;
  double max_power = 0.0;
  for (int step = 0; step < 24 * 2; ++step) {  // one day, 30-minute steps
    generator.apply(host->now());
    host->advance(30 * kMinute);
    min_power = std::min(min_power, host->last_tick_power_w());
    max_power = std::max(max_power, host->last_tick_power_w());
  }
  // Fig 2 reports a ~35% swing; demand a noticeable fluctuation.
  EXPECT_GT(max_power, min_power * 1.2);
}

TEST(Diurnal, DeterministicForSameSeed) {
  auto host_a = make_host(7);
  auto host_b = make_host(7);
  DiurnalLoadGenerator gen_a(*host_a, 99);
  DiurnalLoadGenerator gen_b(*host_b, 99);
  for (int step = 0; step < 20; ++step) {
    gen_a.apply(host_a->now());
    gen_b.apply(host_b->now());
    host_a->advance(30 * kSecond);
    host_b->advance(30 * kSecond);
    EXPECT_DOUBLE_EQ(gen_a.current_target(), gen_b.current_target());
  }
  EXPECT_DOUBLE_EQ(host_a->last_tick_power_w(), host_b->last_tick_power_w());
}

TEST(Diurnal, WorkersPinnedAcrossAllCores) {
  auto host = make_host();
  DiurnalLoadGenerator generator(*host, 3);
  generator.apply(12 * kHour);
  std::set<int> cores;
  for (const auto& task : host->tasks()) {
    if (task->comm.find("-w") != std::string::npos) cores.insert(task->cpu);
  }
  EXPECT_EQ(static_cast<int>(cores.size()), host->spec().num_cores);
}

}  // namespace
}  // namespace cleaks::workload
