// Tests for the lxcfs-style virtualized-view defense ("stage 1.5"):
// interfaces stay readable (functionality preserved) while contents become
// tenant-scoped (leak closed) — the middle ground between stock Docker and
// the paper's deny-everything stage 1.
#include <gtest/gtest.h>

#include "containerleaks.h"

namespace cleaks {
namespace {

struct Fixture {
  Fixture()
      : server("lxcfs-host", make_profile(), 55, /*prior_uptime=*/20 * kDay) {
    server.host().set_tick_duration(100 * kMillisecond);
    container::ContainerConfig config;
    config.num_cpus = 4;
    config.memory_limit_bytes = 4ULL << 30;
    tenant = server.runtime().create(config);
    neighbour = server.runtime().create(config);
  }

  static cloud::CloudServiceProfile make_profile() {
    auto profile = cloud::local_testbed();
    profile.policy = fs::MaskingPolicy::lxcfs_defense();
    return profile;
  }

  cloud::Server server;
  std::shared_ptr<container::Container> tenant, neighbour;
};

TEST(Lxcfs, VirtualizedFilesRemainReadable) {
  Fixture fixture;
  for (const char* path :
       {"/proc/uptime", "/proc/loadavg", "/proc/meminfo", "/proc/cpuinfo",
        "/proc/stat", "/proc/schedstat", "/proc/timer_list",
        "/proc/sched_debug", "/proc/locks"}) {
    EXPECT_TRUE(fixture.tenant->read_file(path).is_ok()) << path;
  }
}

TEST(Lxcfs, UnvirtualizableFilesAreDenied) {
  Fixture fixture;
  for (const char* path :
       {"/proc/zoneinfo", "/proc/interrupts", "/proc/softirqs",
        "/proc/sys/kernel/random/boot_id",
        "/sys/class/powercap/intel-rapl:0/energy_uj"}) {
    EXPECT_EQ(fixture.tenant->read_file(path).code(),
              StatusCode::kPermissionDenied)
        << path;
  }
}

TEST(Lxcfs, UptimeCountsFromContainerStart) {
  Fixture fixture;
  fixture.server.step(30 * kSecond);
  const auto nums =
      extract_numbers(fixture.tenant->read_file("/proc/uptime").value());
  ASSERT_EQ(nums.size(), 2u);
  // Container uptime ~30 s despite the host being up for 20 days.
  EXPECT_NEAR(nums[0], 30.0, 2.0);
  EXPECT_LT(nums[1], 4.0 * 31.0);  // idle bounded by cpuset * uptime
}

TEST(Lxcfs, UptimeNoLongerIdentifiesTheHost) {
  Fixture fixture;
  fixture.server.step(10 * kSecond);
  coresidence::ProbeEnv env;
  env.advance = [&](SimDuration dt) { fixture.server.step(dt); };
  coresidence::UptimeDetector detector;
  // Both containers report their own (similar) uptimes — the detector can
  // no longer prove co-residence from them. (It may even false-negative;
  // what matters is that the *host* uptime is not exposed.)
  const auto view =
      fixture.tenant->read_file("/proc/uptime").value();
  EXPECT_LT(extract_numbers(view)[0], 60.0);
  (void)detector;
}

TEST(Lxcfs, TimerListShowsOnlyOwnTasks) {
  Fixture fixture;
  kernel::TaskBehavior behavior;
  behavior.duty_cycle = 0.05;
  behavior.named_timers = 1;
  fixture.neighbour->run("secretneighbour", behavior);
  fixture.tenant->run("mytask", behavior);
  fixture.server.step(kSecond);
  const auto view = fixture.tenant->read_file("/proc/timer_list").value();
  EXPECT_TRUE(contains(view, "mytask"));
  EXPECT_FALSE(contains(view, "secretneighbour"));
}

TEST(Lxcfs, SchedDebugHidesHostAndNeighbourTasks) {
  Fixture fixture;
  fixture.neighbour->run("neighbourproc", {});
  fixture.server.step(kSecond);
  const auto view = fixture.tenant->read_file("/proc/sched_debug").value();
  EXPECT_FALSE(contains(view, "neighbourproc"));
  EXPECT_FALSE(contains(view, "dockerd"));  // host daemons hidden too
}

TEST(Lxcfs, LocksScopedToTenant) {
  Fixture fixture;
  kernel::TaskBehavior behavior;
  behavior.duty_cycle = 0.01;
  behavior.file_locks = 4;
  fixture.neighbour->run("locker", behavior);
  const auto view = fixture.tenant->read_file("/proc/locks").value();
  EXPECT_TRUE(split_lines(view).empty());  // no own locks => empty view
}

TEST(Lxcfs, LoadavgReflectsOwnContainerOnly) {
  Fixture fixture;
  kernel::TaskBehavior busy;
  busy.duty_cycle = 1.0;
  for (int i = 0; i < 4; ++i) fixture.neighbour->run("noise", busy);
  fixture.server.step(5 * kSecond);
  const auto own_view =
      extract_numbers(fixture.tenant->read_file("/proc/loadavg").value());
  EXPECT_LT(own_view[0], 0.5);  // tenant itself is idle
}

TEST(Lxcfs, ImplantDetectorsDefeatedButInterfaceAlive) {
  Fixture fixture;
  fixture.server.step(2 * kSecond);
  coresidence::ProbeEnv env;
  env.advance = [&](SimDuration dt) { fixture.server.step(dt); };
  coresidence::TimerImplantDetector timers;
  coresidence::SchedDebugImplantDetector sched;
  coresidence::LocksImplantDetector locks;
  EXPECT_EQ(timers.verify(*fixture.tenant, *fixture.neighbour, env),
            coresidence::Verdict::kNotCoResident);
  EXPECT_EQ(sched.verify(*fixture.tenant, *fixture.neighbour, env),
            coresidence::Verdict::kNotCoResident);
  EXPECT_EQ(locks.verify(*fixture.tenant, *fixture.neighbour, env),
            coresidence::Verdict::kNotCoResident);
}

TEST(Lxcfs, CrossValidatorSeesNoFullLeakOnVirtualizedChannels) {
  cloud::Server server("scan", Fixture::make_profile(), 56, 20 * kDay);
  leakage::CrossValidator validator(server);
  const auto findings = validator.scan();
  for (const auto& finding : findings) {
    if (finding.path == "/proc/uptime" || finding.path == "/proc/timer_list" ||
        finding.path == "/proc/sched_debug" || finding.path == "/proc/locks" ||
        finding.path == "/proc/loadavg") {
      EXPECT_NE(finding.cls, leakage::LeakClass::kLeaking) << finding.path;
    }
  }
}

TEST(Lxcfs, HostViewUnaffected) {
  Fixture fixture;
  fs::ViewContext host_ctx;
  const auto host_uptime =
      fixture.server.fs().read("/proc/uptime", host_ctx).value();
  EXPECT_GT(extract_numbers(host_uptime)[0], to_seconds(19 * kDay));
}

}  // namespace
}  // namespace cleaks
