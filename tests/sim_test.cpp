// Tests for the scenario engine (src/sim): spec defaults and JSON
// serialization, the cross-lane determinism contract, and the golden
// pin of Fig 3's pre-refactor headline numbers.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fs/pseudo_fs.h"
#include "obs/metrics.h"
#include "sim/engine.h"
#include "sim/scenarios.h"
#include "workload/onoff.h"

namespace cleaks::sim {
namespace {

std::string hexfloat(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

TEST(ScenarioSpecTest, DefaultsMatchDocumentedContract) {
  ScenarioSpec spec;
  EXPECT_EQ(spec.name, "scenario");
  EXPECT_FALSE(spec.single_server.has_value());
  EXPECT_FALSE(spec.provider.has_value());
  EXPECT_FALSE(spec.warmup.has_value());
  EXPECT_EQ(spec.host_tick, 0);
  EXPECT_EQ(spec.fleet.placement, FleetSpec::Placement::kNone);
  EXPECT_EQ(spec.fleet.control, FleetSpec::Control::kIdle);
  EXPECT_TRUE(spec.fleet.deploy_on_build);
  EXPECT_FALSE(spec.defense.model.has_value());
  EXPECT_FALSE(spec.defense.enable);
  EXPECT_FALSE(spec.defense.stage1_masking);

  // The spec's facility defaults are DatacenterConfig's: a refactored
  // bench that sets nothing must build the same world the hand-rolled
  // version did.
  cloud::DatacenterConfig reference;
  EXPECT_EQ(spec.datacenter.num_racks, reference.num_racks);
  EXPECT_EQ(spec.datacenter.servers_per_rack, reference.servers_per_rack);
  EXPECT_EQ(spec.datacenter.seed, reference.seed);
  EXPECT_EQ(spec.datacenter.benign_load, reference.benign_load);
  EXPECT_EQ(spec.datacenter.num_threads, reference.num_threads);

  WarmupSpec warmup;
  EXPECT_EQ(warmup.until, 9 * kHour);
  EXPECT_EQ(warmup.step, 30 * kSecond);
  EXPECT_EQ(warmup.tick, 5 * kSecond);
  EXPECT_EQ(warmup.tick_after, kSecond);

  CoordinatedCrestSpec crest;
  EXPECT_DOUBLE_EQ(crest.decay, 0.99999);
  EXPECT_DOUBLE_EQ(crest.trigger_ratio, 0.995);
  EXPECT_EQ(crest.max_spikes, 2);
  EXPECT_EQ(crest.spike_duration, 15 * kSecond);
  EXPECT_EQ(crest.cooldown, 600 * kSecond);
}

TEST(ScenarioSpecTest, SpecJsonCarriesEveryLayer) {
  ScenarioSpec spec = fig3_fleet(attack::StrategyKind::kSynergistic);
  obs::JsonWriter json;
  append_spec_json(spec, json);
  // Balance the root object the writer opened so str() is well-formed.
  json.end_object();
  const std::string& doc = json.str();
  EXPECT_NE(doc.find("\"spec\""), std::string::npos);
  EXPECT_NE(doc.find("\"datacenter\""), std::string::npos);
  EXPECT_NE(doc.find("\"servers_per_rack\": 8"), std::string::npos);
  EXPECT_NE(doc.find("\"warmup\""), std::string::npos);
  EXPECT_NE(doc.find("\"placement\": \"one-per-server\""), std::string::npos);
  EXPECT_NE(doc.find("\"strategy\": \"synergistic\""), std::string::npos);
  EXPECT_NE(doc.find("\"defense\""), std::string::npos);
}

TEST(ScenarioSpecTest, SingleServerJsonOmitsDatacenter) {
  ScenarioSpec spec;
  SingleServerSpec host;
  host.name = "testbed";
  host.seed = 42;
  spec.single_server = host;
  obs::JsonWriter json;
  append_spec_json(spec, json);
  json.end_object();
  const std::string& doc = json.str();
  EXPECT_NE(doc.find("\"single_server\""), std::string::npos);
  EXPECT_NE(doc.find("\"testbed\""), std::string::npos);
  EXPECT_EQ(doc.find("\"datacenter\""), std::string::npos);
}

TEST(ScenarioResultTest, ResultJsonRoundTripsFields) {
  ScenarioResult result;
  result.scenario = "unit";
  result.num_servers = 8;
  result.peak_total_w = 1359.0;
  result.spikes = 2;
  obs::JsonWriter json;
  result.append_json(json);
  json.end_object();
  const std::string& doc = json.str();
  EXPECT_NE(doc.find("\"result\""), std::string::npos);
  EXPECT_NE(doc.find("\"scenario\": \"unit\""), std::string::npos);
  EXPECT_NE(doc.find("\"num_servers\": 8"), std::string::npos);
  EXPECT_NE(doc.find("\"spikes\": 2"), std::string::npos);
}

// FNV-1a over the raw bit patterns of each step's facility power: any
// single-bit divergence between lane counts changes the digest.
std::uint64_t trace_digest(int num_threads) {
  ScenarioSpec spec;
  spec.name = "determinism";
  spec.datacenter.servers_per_rack = 8;
  spec.datacenter.benign_load = true;
  spec.datacenter.seed = 4248;
  spec.datacenter.num_threads = num_threads;
  SimEngine engine(spec);
  std::uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (byte * 8)) & 0xff;
      hash *= 1099511628211ull;
    }
  };
  engine.run_steps(600, kSecond,
                   [&](SimEngine&, const StepContext& ctx) {
                     mix(ctx.total_w);
                   });
  mix(engine.result().peak_total_w);
  return hash;
}

TEST(SimEngineTest, BitwiseIdenticalAcrossLaneCounts) {
  const std::uint64_t serial = trace_digest(1);
  EXPECT_EQ(trace_digest(2), serial);
  EXPECT_EQ(trace_digest(4), serial);
  EXPECT_EQ(trace_digest(8), serial);
}

TEST(SimEngineTest, ResetMeasurementScopesTheHeadlineWindow) {
  ScenarioSpec spec;
  spec.datacenter.servers_per_rack = 2;
  spec.datacenter.benign_load = true;
  spec.datacenter.seed = 9;
  SimEngine engine(spec);
  engine.run_steps(30, kSecond);
  EXPECT_EQ(engine.result().steps, 30u);
  engine.reset_measurement();
  EXPECT_EQ(engine.result().steps, 0u);
  engine.run_steps(10, kSecond);
  const ScenarioResult result = engine.result();
  EXPECT_EQ(result.steps, 10u);
  EXPECT_DOUBLE_EQ(result.sim_seconds, 10.0);
  EXPECT_GT(result.peak_total_w, 0.0);
  // The sim clock keeps the full history even though the window reset.
  EXPECT_DOUBLE_EQ(result.end_s, 40.0);
}

TEST(SimEngineTest, RunUntilReachesAbsoluteSimTime) {
  ScenarioSpec spec;
  spec.datacenter.servers_per_rack = 2;
  spec.datacenter.seed = 5;
  SimEngine engine(spec);
  engine.run_until(2 * kMinute, 30 * kSecond);
  EXPECT_EQ(engine.now(), 2 * kMinute);
  // Already there: no further steps.
  const std::uint64_t steps = engine.result().steps;
  engine.run_until(2 * kMinute, 30 * kSecond);
  EXPECT_EQ(engine.result().steps, steps);
}

TEST(SimEngineTest, RunForAdvancesExactlyTotalWithFinalPartialStep) {
  ScenarioSpec spec;
  spec.datacenter.servers_per_rack = 2;
  spec.datacenter.seed = 5;
  SimEngine engine(spec);
  // 95 s at 30 s steps: 30+30+30+5 — the old truncation ran 90 s.
  int hook_steps = 0;
  engine.run_for(95 * kSecond, 30 * kSecond,
                 [&](SimEngine&, const StepContext&) { ++hook_steps; });
  EXPECT_EQ(engine.now(), 95 * kSecond);
  EXPECT_EQ(hook_steps, 4);
  EXPECT_EQ(engine.result().steps, 4u);
  // Exact multiples keep the old behaviour: no extra step.
  engine.run_for(kMinute, 30 * kSecond);
  EXPECT_EQ(engine.now(), 95 * kSecond + kMinute);
  EXPECT_EQ(engine.result().steps, 6u);
  // A total smaller than dt is one partial step, not zero.
  engine.run_for(kSecond, 30 * kSecond);
  EXPECT_EQ(engine.now(), 96 * kSecond + kMinute);
  EXPECT_EQ(engine.result().steps, 7u);
}

// ---------- variable-length stride equivalence ----------

// Everything a run can surface: rendered pseudo-files, the engine's
// measured-window results, and the full Scope::kSim metrics digest.
struct StrideOutcome {
  std::vector<std::string> files;
  SimTime end = 0;
  std::uint64_t steps = 0;
  double sim_seconds = 0.0;
  double peak_total_w = 0.0;
  double peak_rack_w = 0.0;
  std::uint64_t sim_digest = 0;

  bool operator==(const StrideOutcome&) const = default;
};

// A mostly-idle capped facility with one on/off server: strides must end
// at wheel wakeups AND capping windows. `fixed` pins the per-step path by
// installing a no-op hook (hooks observe every step, so they disable
// coalescing); without it run_for takes variable-length strides.
StrideOutcome run_strided(bool fixed, int num_threads) {
  obs::Registry::global().reset();
  ScenarioSpec spec;
  spec.name = "stride-eq";
  spec.datacenter.num_racks = 2;
  spec.datacenter.servers_per_rack = 4;
  spec.datacenter.benign_load = false;
  spec.datacenter.rack_power_cap_w = 1500.0;
  spec.datacenter.seed = 77;
  spec.datacenter.num_threads = num_threads;
  spec.datacenter.sparse = 1;
  SimEngine engine(spec);
  workload::OnOffParams params;
  params.on_duration = 2 * kMinute;
  params.off_duration = 7 * kMinute;
  params.phase = 30 * kSecond;
  params.workers = 4;
  engine.datacenter().server(0).enable_onoff_load(params);
  const SimEngine::StepHook hook =
      fixed ? SimEngine::StepHook([](SimEngine&, const StepContext&) {})
            : SimEngine::StepHook{};
  engine.run_for(30 * kMinute, kSecond, hook);
  StrideOutcome out;
  const fs::ViewContext ctx;
  for (int i = 0; i < engine.num_servers(); ++i) {
    cloud::Server& server = engine.server(i);
    std::string blob = server.fs().read("/proc/stat", ctx).value();
    blob += server.fs().read("/proc/uptime", ctx).value();
    blob += server.fs().read("/proc/loadavg", ctx).value();
    blob += server.fs().read("/proc/interrupts", ctx).value();
    blob += hexfloat(server.power_w());
    out.files.push_back(std::move(blob));
  }
  out.end = engine.now();
  const ScenarioResult result = engine.result();
  out.steps = result.steps;
  out.sim_seconds = result.sim_seconds;
  out.peak_total_w = result.peak_total_w;
  out.peak_rack_w = result.peak_rack_w;
  out.sim_digest =
      obs::Registry::global().snapshot().digest(obs::Scope::kSim);
  return out;
}

TEST(SimEngineTest, VariableLengthStridesAreBitwiseEqualToFixedSteps) {
  auto& coalesced_steps = obs::Registry::global().counter(
      "sim_engine_coalesced_steps_total",
      "engine steps absorbed into variable-length idle strides",
      obs::Scope::kRuntime);
  const StrideOutcome fixed = run_strided(true, 1);
  EXPECT_EQ(coalesced_steps.value(), 0u);  // hooks disable coalescing
  const StrideOutcome strided = run_strided(false, 1);
  // The stride path must actually engage, or this test pins nothing.
  EXPECT_GT(coalesced_steps.value(), 0u);
  EXPECT_EQ(strided, fixed);
  EXPECT_EQ(run_strided(false, 2), fixed);
  EXPECT_EQ(run_strided(false, 4), fixed);
  EXPECT_EQ(run_strided(false, 8), fixed);
}

// Golden pin of the Fig 3 headline: the refactor onto fig3_fleet must not
// move a single bit of the pre-refactor bench outputs (same seeds, same
// traces). Values captured from the hand-rolled bench at the commit that
// introduced the scenario engine.
TEST(Fig3GoldenTest, SynergisticHeadlineBitsUnchanged) {
  SimEngine engine(fig3_fleet(attack::StrategyKind::kSynergistic));
  engine.set_fleet_control(FleetSpec::Control::kMonitor);
  engine.run_steps(7200, kSecond);
  engine.reset_measurement();
  engine.set_fleet_control(FleetSpec::Control::kCoordinated);
  engine.run_steps(3000, kSecond);
  EXPECT_EQ(hexfloat(engine.result().peak_total_w), "0x1.1dce476344e6ap+11");
  EXPECT_EQ(engine.crest_spikes(), 1);
  EXPECT_EQ(hexfloat(engine.fleet_attack_seconds()), "0x1.ep+6");  // 120 s
}

TEST(Fig3GoldenTest, PeriodicHeadlineBitsUnchanged) {
  SimEngine engine(fig3_fleet(attack::StrategyKind::kPeriodic));
  engine.run_steps(7200, kSecond);
  engine.reset_measurement();
  engine.set_fleet_control(FleetSpec::Control::kAutonomous);
  engine.run_steps(3000, kSecond);
  EXPECT_EQ(hexfloat(engine.result().peak_total_w), "0x1.1ca1f8960a35ap+11");
  EXPECT_EQ(engine.attacker(0).stats().spikes_launched, 10);
  EXPECT_EQ(hexfloat(engine.fleet_attack_seconds()), "0x1.2cp+10");  // 1200 s
}

}  // namespace
}  // namespace cleaks::sim
