#include <gtest/gtest.h>

#include "hw/cpuidle.h"
#include "hw/energy_model.h"
#include "hw/rapl.h"
#include "hw/spec.h"
#include "hw/thermal.h"

namespace cleaks::hw {
namespace {

// ---------- RAPL ----------

TEST(Rapl, CounterAccumulatesMicrojoules) {
  RaplDomain domain(RaplDomainKind::kPackage);
  domain.add_energy_j(1.5);
  EXPECT_EQ(domain.energy_uj(), 1500000u);
  EXPECT_DOUBLE_EQ(domain.lifetime_energy_j(), 1.5);
}

TEST(Rapl, SubMicrojouleResidualCarries) {
  RaplDomain domain(RaplDomainKind::kCore);
  for (int i = 0; i < 1000; ++i) domain.add_energy_j(0.3e-6);
  // 1000 * 0.3 uJ = 300 uJ despite each increment being fractional.
  EXPECT_NEAR(static_cast<double>(domain.energy_uj()), 300.0, 1.0);
}

TEST(Rapl, CounterWrapsAtRange) {
  RaplDomain domain(RaplDomainKind::kPackage, /*range_uj=*/1000);
  domain.add_energy_j(0.0015);  // 1500 uJ
  EXPECT_EQ(domain.energy_uj(), 500u);
  EXPECT_DOUBLE_EQ(domain.lifetime_energy_j(), 0.0015);
}

TEST(Rapl, NegativeEnergyIgnored) {
  RaplDomain domain(RaplDomainKind::kDram);
  domain.add_energy_j(-5.0);
  EXPECT_EQ(domain.energy_uj(), 0u);
}

TEST(Rapl, DeltaHandlesWraparound) {
  EXPECT_DOUBLE_EQ(rapl_delta_j(100, 300, 1000), 200e-6);
  EXPECT_DOUBLE_EQ(rapl_delta_j(900, 100, 1000), 200e-6);  // wrapped once
}

// Regression: rapl_delta_j can only ever reconstruct a single wrap. Two
// wraps inside one sampling gap alias to the same wrapped delta, so the
// raw helper under-reports by a full range — exactly the bug the checked
// variant exists to catch.
TEST(Rapl, DeltaUnderReportsMultipleWraps) {
  // True consumption 2200 uJ over a 1000 uJ range: 900 -> 100 with two
  // extra full wraps in between looks identical to the single-wrap case.
  EXPECT_DOUBLE_EQ(rapl_delta_j(900, 100, 1000), 200e-6);
  const auto checked = rapl_delta_j_checked(900, 100, 2200e-6, 1000);
  ASSERT_TRUE(checked.is_ok());
  EXPECT_DOUBLE_EQ(checked.value(), 2200e-6);
}

TEST(Rapl, CheckedDeltaAgreesWithRawOnSingleWrap) {
  const auto no_wrap = rapl_delta_j_checked(100, 300, 200e-6, 1000);
  ASSERT_TRUE(no_wrap.is_ok());
  EXPECT_DOUBLE_EQ(no_wrap.value(), 200e-6);
  const auto one_wrap = rapl_delta_j_checked(900, 100, 200e-6, 1000);
  ASSERT_TRUE(one_wrap.is_ok());
  EXPECT_DOUBLE_EQ(one_wrap.value(), 200e-6);
}

TEST(Rapl, CheckedDeltaRejectsIrreconcilableSamples) {
  // The unwrapped reference must lie within tolerance of *some* wrap
  // count; a reference below the wrapped delta has no such count...
  EXPECT_TRUE(rapl_delta_j_checked(100, 900, 100e-6, 1000)
                  .status()
                  .Matches(StatusCode::kOutOfRange));
  // ...and one between wrap counts means a corrupted sample.
  EXPECT_TRUE(rapl_delta_j_checked(100, 300, 700e-6, 1000)
                  .status()
                  .Matches(StatusCode::kOutOfRange));
  EXPECT_TRUE(rapl_delta_j_checked(100, 300, -1.0, 1000)
                  .status()
                  .Matches(StatusCode::kOutOfRange));
  EXPECT_TRUE(rapl_delta_j_checked(100, 300, 200e-6, 0)
                  .status()
                  .Matches(StatusCode::kInvalidArgument));
}

TEST(Rapl, WrapCountTracksEveryWrap) {
  RaplDomain domain(RaplDomainKind::kPackage, /*range_uj=*/1000);
  EXPECT_EQ(domain.wrap_count(), 0u);
  domain.add_energy_j(0.0035);  // 3500 uJ = three wraps in one increment
  EXPECT_EQ(domain.energy_uj(), 500u);
  EXPECT_EQ(domain.wrap_count(), 3u);
  domain.add_energy_j(0.0006);  // 500 + 600 crosses once more
  EXPECT_EQ(domain.wrap_count(), 4u);
}

TEST(Rapl, ForceWrapParksCounterAtTheEdge) {
  RaplDomain domain(RaplDomainKind::kCore, /*range_uj=*/1000);
  domain.add_energy_j(0.0001);  // 100 uJ
  domain.force_wrap();
  EXPECT_EQ(domain.energy_uj(), 999u);
  // The park is a reader-visible glitch, not physics: lifetime energy is
  // untouched, and the next microjoule wraps the counter.
  EXPECT_DOUBLE_EQ(domain.lifetime_energy_j(), 0.0001);
  const std::uint64_t wraps_before = domain.wrap_count();
  domain.add_energy_j(2e-6);
  EXPECT_EQ(domain.wrap_count(), wraps_before + 1);
  EXPECT_EQ(domain.energy_uj(), 1u);
}

TEST(Rapl, PackageHierarchy) {
  RaplPackage pkg(0, /*has_dram=*/true);
  EXPECT_EQ(pkg.package_id(), 0);
  EXPECT_TRUE(pkg.has_dram());
  pkg.core().add_energy_j(1.0);
  EXPECT_EQ(pkg.core().energy_uj(), 1000000u);
  EXPECT_EQ(pkg.dram().energy_uj(), 0u);
}

TEST(Rapl, DomainNames) {
  EXPECT_EQ(to_string(RaplDomainKind::kPackage), "package");
  EXPECT_EQ(to_string(RaplDomainKind::kCore), "core");
  EXPECT_EQ(to_string(RaplDomainKind::kDram), "dram");
}

// ---------- EnergyModel ----------

TEST(EnergyModel, EnergyLinearInInstructions) {
  EnergyModelParams params;
  EnergyModel model(params);
  TickActivity a;
  a.active_seconds = 1.0;
  a.instructions = 1e9;
  const double e1 = model.core_activity_energy(a).core_j;
  a.instructions = 2e9;
  const double e2 = model.core_activity_energy(a).core_j;
  a.instructions = 3e9;
  const double e3 = model.core_activity_energy(a).core_j;
  // Equal increments in I produce equal increments in E (Fig 6 linearity).
  EXPECT_NEAR(e2 - e1, e3 - e2, 1e-9);
  EXPECT_GT(e2, e1);
}

TEST(EnergyModel, SlopeDependsOnMissMix) {
  EnergyModelParams params;
  EnergyModel model(params);
  TickActivity lean;
  lean.active_seconds = 1.0;
  lean.instructions = 1e9;
  lean.cache_misses = 1e5;
  TickActivity missy = lean;
  missy.cache_misses = 1e8;
  EXPECT_GT(model.core_activity_energy(missy).core_j,
            model.core_activity_energy(lean).core_j);
}

TEST(EnergyModel, DramLinearInCacheMisses) {
  EnergyModel model(EnergyModelParams{});
  TickActivity a;
  a.cache_misses = 1e6;
  const double d1 = model.core_activity_energy(a).dram_j;
  a.cache_misses = 2e6;
  const double d2 = model.core_activity_energy(a).dram_j;
  EXPECT_NEAR(d2, 2 * d1, 1e-12);
}

TEST(EnergyModel, BackgroundPowerMatchesParams) {
  EnergyModelParams params;
  params.p_uncore_w = 6.0;
  params.p_dram_idle_w = 2.0;
  EnergyModel model(params);
  const auto e = model.background_energy(2.0);
  EXPECT_DOUBLE_EQ(e.dram_j, 4.0);
  EXPECT_DOUBLE_EQ(e.package_j, 16.0);  // (6+2) W * 2 s
}

TEST(EnergyModel, PowerConversion) {
  TickEnergy e;
  e.package_j = 50.0;
  EXPECT_DOUBLE_EQ(EnergyModel::power_w(e, 2.0), 25.0);
  EXPECT_DOUBLE_EQ(EnergyModel::power_w(e, 0.0), 0.0);
}

// ---------- Thermal ----------

TEST(Thermal, StartsAtAmbient) {
  ThermalModel model(4);
  EXPECT_NEAR(model.temp_c(0), 38.0, 1e-9);
  EXPECT_EQ(model.temp_millic(0), 38000);
}

TEST(Thermal, ConvergesTowardPowerTarget) {
  ThermalParams params;
  ThermalModel model(1, params);
  const std::vector<double> power = {20.0};
  for (int i = 0; i < 200; ++i) model.advance(power, 1.0);
  EXPECT_NEAR(model.temp_c(0), params.ambient_c + params.theta_c_per_w * 20.0,
              0.5);
}

TEST(Thermal, CoolsBackDown) {
  ThermalModel model(1);
  for (int i = 0; i < 100; ++i) model.advance({30.0}, 1.0);
  const double hot = model.temp_c(0);
  for (int i = 0; i < 100; ++i) model.advance({0.0}, 1.0);
  EXPECT_LT(model.temp_c(0), hot - 20.0);
}

TEST(Thermal, PerCoreIndependence) {
  ThermalModel model(2);
  for (int i = 0; i < 50; ++i) model.advance({25.0, 0.0}, 1.0);
  EXPECT_GT(model.temp_c(0), model.temp_c(1) + 10.0);
}

TEST(Thermal, OutOfRangeThrows) {
  ThermalModel model(2);
  EXPECT_THROW((void)model.temp_c(2), std::out_of_range);
  EXPECT_THROW((void)model.temp_c(-1), std::out_of_range);
}

// ---------- CpuIdle ----------

TEST(CpuIdle, AttributesToDeepestFittingState) {
  const auto states = HardwareSpec::default_cpuidle_states();
  CpuIdleAccounting acct(1, states);
  acct.record_idle(0, 500);  // fits C6 (min residency 200 us)
  const int deepest = acct.num_states() - 1;
  EXPECT_EQ(acct.usage(0, deepest), 1u);
  EXPECT_EQ(acct.time_us(0, deepest), 500u);
}

TEST(CpuIdle, ShortIdleUsesShallowState) {
  CpuIdleAccounting acct(1, HardwareSpec::default_cpuidle_states());
  acct.record_idle(0, 3);  // only POLL(0)/C1(2) fit
  EXPECT_EQ(acct.usage(0, 1), 1u);
  EXPECT_EQ(acct.usage(0, acct.num_states() - 1), 0u);
}

TEST(CpuIdle, ZeroIdleIgnored) {
  CpuIdleAccounting acct(1, HardwareSpec::default_cpuidle_states());
  acct.record_idle(0, 0);
  for (int s = 0; s < acct.num_states(); ++s) EXPECT_EQ(acct.usage(0, s), 0u);
}

TEST(CpuIdle, SeedSetsCounters) {
  CpuIdleAccounting acct(2, HardwareSpec::default_cpuidle_states());
  acct.seed(1, 2, 100, 5000);
  EXPECT_EQ(acct.usage(1, 2), 100u);
  EXPECT_EQ(acct.time_us(1, 2), 5000u);
  EXPECT_EQ(acct.usage(0, 2), 0u);
}

TEST(CpuIdle, IndexValidation) {
  CpuIdleAccounting acct(1, HardwareSpec::default_cpuidle_states());
  EXPECT_THROW((void)acct.usage(1, 0), std::out_of_range);
  EXPECT_THROW((void)acct.usage(0, 99), std::out_of_range);
}

// ---------- Spec factories ----------

TEST(Spec, TestbedMatchesPaper) {
  const auto spec = testbed_i7_6700();
  EXPECT_EQ(spec.num_cores, 8);
  EXPECT_DOUBLE_EQ(spec.freq_ghz, 3.4);
  EXPECT_EQ(spec.memory_bytes, 16ULL << 30);
  EXPECT_TRUE(spec.has_rapl);
  EXPECT_TRUE(spec.has_coretemp);
}

TEST(Spec, PreSandyBridgeHasNoRapl) {
  const auto spec = pre_sandy_bridge_server();
  EXPECT_FALSE(spec.has_rapl);
  EXPECT_FALSE(spec.has_dram_rapl);
}

TEST(Spec, CloudServerIsTwoSocket) {
  const auto spec = cloud_xeon_server();
  EXPECT_EQ(spec.num_packages, 2);
  EXPECT_EQ(spec.num_cores, 32);
  EXPECT_EQ(spec.numa_nodes, 2);
}

TEST(Spec, CyclesPerSecond) {
  const auto spec = testbed_i7_6700();
  EXPECT_DOUBLE_EQ(spec.cycles_per_second_per_core(), 3.4e9);
}

}  // namespace
}  // namespace cleaks::hw
