// coresidence_probe: verify whether two container instances share a
// physical host, using each of the §III-C channel families in turn.
//
// The demo provisions instances on a small cloud until it holds one
// co-resident pair and one cross-host pair, then runs every detector on
// both pairs and reports verdict + probe cost.
#include <cstdio>

#include "containerleaks.h"

using namespace cleaks;

int main() {
  cloud::DatacenterConfig config;
  config.servers_per_rack = 3;
  config.benign_load = true;
  config.profile = cloud::local_testbed();
  config.seed = 99;
  cloud::Datacenter dc(config);
  dc.step(5 * kSecond);

  container::ContainerConfig cc;
  cc.num_cpus = 2;
  auto same_a = dc.server(0).runtime().create(cc);
  auto same_b = dc.server(0).runtime().create(cc);
  auto elsewhere = dc.server(1).runtime().create(cc);
  coresidence::ProbeEnv env;
  env.advance = [&](SimDuration dt) { dc.step(dt); };

  std::printf("pair A: %s vs %s (same physical server)\n",
              same_a->id().c_str(), same_b->id().c_str());
  std::printf("pair B: %s vs %s (different servers)\n\n",
              same_a->id().c_str(), elsewhere->id().c_str());

  std::printf("%-14s %-16s %-16s %s\n", "channel", "pair A", "pair B",
              "probe cost");
  for (const auto& detector : coresidence::all_detectors()) {
    const auto verdict_same = detector->verify(*same_a, *same_b, env);
    const auto verdict_diff = detector->verify(*same_a, *elsewhere, env);
    std::printf("%-14s %-16s %-16s %.0f s\n", detector->name().c_str(),
                coresidence::to_string(verdict_same).c_str(),
                coresidence::to_string(verdict_diff).c_str(),
                to_seconds(detector->probe_duration()));
  }
  std::printf(
      "\nfootnote 7 of the paper: one strong channel is enough — boot_id "
      "alone settles co-residence instantly.\n");
  return 0;
}
