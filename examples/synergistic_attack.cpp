// synergistic_attack: the full §IV kill chain on a simulated container
// cloud — co-residence orchestration, RAPL monitoring, crest-timed power
// spikes — with the rack breaker and the billing meter watching. The
// whole engagement is one declarative scenario: the spec places the
// orchestrated fleet, the engine steps the attack.
#include <cstdio>

#include "containerleaks.h"
#include "sim/engine.h"

using namespace cleaks;

int main() {
  // A one-rack cloud with oversubscribed power: 8 busy servers against a
  // breaker rated well below their combined peak draw.
  sim::ScenarioSpec spec;
  spec.name = "synergistic-attack";
  spec.datacenter.servers_per_rack = 8;
  spec.datacenter.benign_load = true;
  spec.datacenter.seed = 1337;
  // Heavy oversubscription: the branch circuit is rated just above the
  // fleet's typical peak (§II-C: power provisioning assumes neighbours
  // do not peak together).
  spec.datacenter.rack_breaker.rated_w = 1500.0;
  spec.datacenter.rack_breaker.thermal_capacity = 2.5;
  spec.datacenter.profile.default_container_cpus = 8;
  sim::ProviderSpec provider;
  provider.seed = 42;
  spec.provider = provider;
  spec.fleet.placement = sim::FleetSpec::Placement::kOrchestrated;
  spec.fleet.count = 3;
  spec.fleet.tenant = "mallory";
  spec.fleet.max_launches = 80;
  spec.fleet.attackers = true;
  spec.fleet.attack.kind = attack::StrategyKind::kSynergistic;
  spec.fleet.attack.min_history = 240;
  spec.fleet.attack.trigger_percentile = 92.0;
  spec.fleet.attack.trigger_margin = 0.05;
  spec.fleet.attack.spike_duration = 30 * kSecond;
  spec.fleet.attack.cooldown = 300 * kSecond;
  spec.fleet.control = sim::FleetSpec::Control::kAutonomous;

  std::printf("phase 1: aggregate containers on one physical server\n");
  sim::SimEngine engine(spec);
  const attack::OrchestratorResult& group = engine.acquisition();
  if (!group.success) {
    std::printf("  could not aggregate instances; aborting\n");
    return 1;
  }
  std::printf("  %zu co-resident instances after %d launches\n",
              group.instances.size(), group.launches);

  std::printf("phase 2: monitor host power through the leaked RAPL channel\n");
  std::printf("phase 3: superimpose power viruses on benign crests\n");
  double peak_rack_w = 0.0;
  int tripped_at = -1;
  engine.run_steps(
      5400, kSecond,
      [&](sim::SimEngine& e, const sim::StepContext& ctx) {
        peak_rack_w = std::max(peak_rack_w, e.rack_power_w(0));
        if (tripped_at < 0 && e.datacenter().rack_breaker(0).tripped()) {
          tripped_at = ctx.index;
        }
      },
      "engagement");

  std::printf("\noutcome after 90 simulated minutes:\n");
  std::printf("  rack peak power      : %.0f W (breaker rated %.0f W)\n",
              peak_rack_w, spec.datacenter.rack_breaker.rated_w);
  std::printf("  breaker tripped      : %s\n",
              tripped_at >= 0 ? "YES" : "no");
  if (tripped_at >= 0) std::printf("  outage at            : t=%d s\n", tripped_at);
  int spikes = 0;
  double attack_seconds = 0.0;
  for (int i = 0; i < engine.fleet_size(); ++i) {
    spikes += engine.attacker(i).stats().spikes_launched;
    attack_seconds += engine.attacker(i).stats().attack_seconds;
  }
  std::printf("  spikes / attack time : %d / %.0f s\n", spikes, attack_seconds);
  const sim::SimEngine::BillingProbe bill = engine.billing_probe("mallory");
  std::printf("  attacker's bill      : $%.4f\n", bill.cost_usd);

  obs::BenchReport report("example_synergistic_attack");
  engine.append_report_json(report.json());
  report.json()
      .field("peak_rack_w", peak_rack_w)
      .field("tripped_at_s", tripped_at)
      .field("spikes", spikes)
      .field("attack_seconds", attack_seconds)
      .field("bill_usd", bill.cost_usd);
  const std::string path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
