// synergistic_attack: the full §IV kill chain on a simulated container
// cloud — co-residence orchestration, RAPL monitoring, crest-timed power
// spikes — with the rack breaker and the billing meter watching.
#include <cstdio>

#include "containerleaks.h"

using namespace cleaks;

int main() {
  // A one-rack cloud with oversubscribed power: 8 busy servers against a
  // breaker rated well below their combined peak draw.
  cloud::DatacenterConfig config;
  config.servers_per_rack = 8;
  config.benign_load = true;
  config.seed = 1337;
  // Heavy oversubscription: the branch circuit is rated just above the
  // fleet's typical peak (§II-C: power provisioning assumes neighbours
  // do not peak together).
  config.rack_breaker.rated_w = 1500.0;
  config.rack_breaker.thermal_capacity = 2.5;
  config.profile.default_container_cpus = 8;
  cloud::Datacenter dc(config);
  cloud::CloudProvider provider(dc, 42);

  std::printf("phase 1: aggregate containers on one physical server\n");
  coresidence::TimerImplantDetector verifier;
  attack::CoResidenceOrchestrator orchestrator(provider, verifier);
  const auto group = orchestrator.acquire("mallory", /*group_size=*/3,
                                          /*max_launches=*/80);
  if (!group.success) {
    std::printf("  could not aggregate instances; aborting\n");
    return 1;
  }
  std::printf("  %zu co-resident instances after %d launches\n",
              group.instances.size(), group.launches);

  std::printf("phase 2: monitor host power through the leaked RAPL channel\n");
  attack::AttackConfig attack_config;
  attack_config.kind = attack::StrategyKind::kSynergistic;
  attack_config.min_history = 240;
  attack_config.trigger_percentile = 92.0;
  attack_config.trigger_margin = 0.05;
  attack_config.spike_duration = 30 * kSecond;
  attack_config.cooldown = 300 * kSecond;
  std::vector<std::unique_ptr<attack::PowerAttacker>> attackers;
  for (const auto& instance : group.instances) {
    attackers.push_back(std::make_unique<attack::PowerAttacker>(
        *instance->handle, attack_config));
  }

  std::printf("phase 3: superimpose power viruses on benign crests\n");
  double peak_rack_w = 0.0;
  int tripped_at = -1;
  for (int second = 0; second < 5400; ++second) {
    provider.step(kSecond);
    for (auto& attacker : attackers) attacker->step(dc.now(), kSecond);
    peak_rack_w = std::max(peak_rack_w, dc.rack_power_w(0));
    if (tripped_at < 0 && dc.rack_breaker(0).tripped()) tripped_at = second;
  }

  std::printf("\noutcome after 90 simulated minutes:\n");
  std::printf("  rack peak power      : %.0f W (breaker rated %.0f W)\n",
              peak_rack_w, config.rack_breaker.rated_w);
  std::printf("  breaker tripped      : %s\n",
              tripped_at >= 0 ? "YES" : "no");
  if (tripped_at >= 0) std::printf("  outage at            : t=%d s\n", tripped_at);
  int spikes = 0;
  double attack_seconds = 0.0;
  for (const auto& attacker : attackers) {
    spikes += attacker->stats().spikes_launched;
    attack_seconds += attacker->stats().attack_seconds;
  }
  std::printf("  spikes / attack time : %d / %.0f s\n", spikes, attack_seconds);
  std::printf("  attacker's bill      : $%.4f\n",
              provider.billing().total_cost("mallory"));
  return 0;
}
