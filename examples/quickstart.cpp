// Quickstart: spin up a simulated host, start two containers, read leaking
// and namespaced pseudo files from inside one, watch host power through the
// RAPL leak, then turn on the two defenses and watch the channels close.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "containerleaks.h"

using namespace cleaks;

int main() {
  // --- a physical server with stock Docker-style configuration ---
  cloud::Server server("demo-host", cloud::local_testbed(), /*seed=*/42,
                       /*prior_uptime=*/35 * kDay);
  server.host().set_tick_duration(100 * kMillisecond);

  container::ContainerConfig config;
  config.num_cpus = 4;
  config.memory_limit_bytes = 4ULL << 30;
  auto tenant_a = server.runtime().create(config);
  auto tenant_b = server.runtime().create(config);
  std::printf("created containers %s and %s on %s\n\n",
              tenant_a->id().c_str(), tenant_b->id().c_str(),
              server.name().c_str());

  // --- the leak: identical host data from inside an isolated container ---
  std::printf("== /proc/uptime from container A (host-wide — leak) ==\n%s\n",
              tenant_a->read_file("/proc/uptime").value().c_str());
  std::printf("== boot_id from both containers (identical => co-resident) ==\n");
  std::printf("A: %sB: %s\n",
              tenant_a->read_file("/proc/sys/kernel/random/boot_id")
                  .value()
                  .c_str(),
              tenant_b->read_file("/proc/sys/kernel/random/boot_id")
                  .value()
                  .c_str());
  std::printf("== /proc/sys/kernel/hostname (namespaced — isolated) ==\n");
  std::printf("A: %s\n", tenant_a->read_file("/proc/sys/kernel/hostname")
                             .value()
                             .c_str());

  // --- watching the whole host's power from inside container A ---
  attack::RaplMonitor monitor(*tenant_a);
  monitor.sample_w(kSecond);  // prime
  auto busy = workload::prime();
  std::vector<kernel::HostPid> pids;
  for (int copy = 0; copy < 4; ++copy) {
    pids.push_back(tenant_b->run("victim-load", busy.behavior)->host_pid);
  }
  server.step(5 * kSecond);
  const auto leaked_power = monitor.sample_w(5 * kSecond);
  std::printf("\ncontainer A sees HOST power while B is busy: %.1f W\n",
              leaked_power.value_or(0.0));
  for (auto pid : pids) tenant_b->kill(pid);

  // --- stage-2 defense: power-based namespace ---
  auto model = defense::train_default_model();
  defense::PowerNamespace power_ns(server.runtime(), std::move(model).value());
  power_ns.enable();
  attack::RaplMonitor blind_monitor(*tenant_a);
  blind_monitor.sample_w(kSecond);
  for (int copy = 0; copy < 4; ++copy) {
    pids.push_back(tenant_b->run("victim-load", busy.behavior)->host_pid);
  }
  server.step(5 * kSecond);
  const auto own_power = blind_monitor.sample_w(5 * kSecond);
  std::printf(
      "with the power-based namespace, A sees only its own power: %.2f W\n",
      own_power.value_or(0.0));

  // --- stage-1 defense: masking ---
  defense::apply_stage1_masking(server.runtime());
  const auto masked = tenant_a->read_file("/proc/uptime");
  std::printf("with stage-1 masking, /proc/uptime read -> %s\n",
              masked.status().to_string().c_str());
  return 0;
}
