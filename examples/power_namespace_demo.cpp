// power_namespace_demo: the two-stage defense of §V, end to end.
//
// Stage 2 (power-based namespace): train the regression power model on the
// Fig 6/7 workloads, enable the namespace, and show that (a) each container
// reads only its own consumption through the *unchanged* RAPL interface,
// (b) the host keeps hardware truth, and (c) per-container readings enable
// a finer-grained billing view. Stage 1 (masking) closes the remaining
// channels. The defended host is a single-server scenario: the spec
// carries the trained model and the engine wires the namespace around the
// tenant containers.
#include <cstdio>

#include "containerleaks.h"
#include "sim/engine.h"

using namespace cleaks;

namespace {

double container_power_w(const container::Container& instance,
                         sim::SimEngine& engine, SimDuration window) {
  const auto before = instance.read_file(
      "/sys/class/powercap/intel-rapl:0/energy_uj");
  engine.step(window);
  const auto after = instance.read_file(
      "/sys/class/powercap/intel-rapl:0/energy_uj");
  return (parse_first_double(after.value()) -
          parse_first_double(before.value())) /
         1e6 / to_seconds(window);
}

}  // namespace

int main() {
  std::printf("training the power model on the Fig 6/7 workload sweep...\n");
  auto model = defense::train_default_model(/*seed=*/2017);
  if (!model.is_ok()) {
    std::printf("training failed: %s\n", model.status().to_string().c_str());
    return 1;
  }
  std::printf("  core model R^2 = %.4f, DRAM model R^2 = %.4f, lambda = %.2f W\n\n",
              model.value().core_model().r2, model.value().dram_model().r2,
              model.value().lambda_w());

  sim::ScenarioSpec spec;
  spec.name = "power-namespace-demo";
  sim::SingleServerSpec host;
  host.name = "defended-host";
  host.profile = cloud::local_testbed();
  host.seed = 7;
  spec.single_server = host;
  spec.host_tick = 100 * kMillisecond;
  spec.defense.model = std::move(model).value();
  spec.defense.enable = true;  // switched on after the containers exist
  container::ContainerConfig config;
  config.num_cpus = 4;
  spec.fleet.placement = sim::FleetSpec::Placement::kDirect;
  spec.fleet.count = 2;
  spec.fleet.container = config;
  sim::SimEngine engine(spec);

  container::Container& heavy = engine.fleet_instance(0);
  container::Container& light = engine.fleet_instance(1);
  engine.step(2 * kSecond);

  // Tenant "heavy" runs a memory-bound SPEC workload on 4 cores; tenant
  // "light" runs a single low-duty service.
  const auto milc = workload::spec_suite()[10];  // 433.milc
  for (int copy = 0; copy < 4; ++copy) heavy.run("433.milc", milc.behavior);
  auto service = workload::web_server();
  light.run("nginx", service.behavior);
  engine.step(5 * kSecond);

  const double heavy_w = container_power_w(heavy, engine, 10 * kSecond);
  const double light_w = container_power_w(light, engine, 10 * kSecond);
  cloud::Server& server = engine.server(0);
  const double host_before = server.host().lifetime_energy_j();
  engine.step(10 * kSecond);
  const double host_w =
      (server.host().lifetime_energy_j() - host_before) / 10.0;

  std::printf("per-container power through the unchanged RAPL interface:\n");
  std::printf("  host (hardware truth)  : %6.2f W\n", host_w);
  std::printf("  container 'heavy'      : %6.2f W\n", heavy_w);
  std::printf("  container 'light'      : %6.2f W\n", light_w);
  std::printf(
      "\na power-aware billing model (%.1f c/kWh equivalent surcharge):\n",
      12.0);
  std::printf("  heavy tenant surcharge : $%.5f per hour\n",
              heavy_w / 1000.0 * 0.12);
  std::printf("  light tenant surcharge : $%.5f per hour\n",
              light_w / 1000.0 * 0.12);

  // Stage 1 on top: mask every remaining Table I channel.
  defense::apply_stage1_masking(server.runtime());
  std::printf("\nafter stage-1 masking:\n");
  for (const char* path :
       {"/proc/uptime", "/proc/timer_list", "/proc/meminfo"}) {
    std::printf("  read %-18s -> %s\n", path,
                heavy.read_file(path).status().to_string().c_str());
  }
  std::printf("  read %-18s -> still served, per-container view\n",
              "RAPL energy_uj");
  return 0;
}
