// leak_scanner: run the Fig-1 cross-validation tool against a simulated
// cloud profile and print a classified report of every pseudo file.
//
// Usage: leak_scanner [local|CC1|CC2|CC3|CC4|CC5]   (default: local)
#include <cstdio>
#include <cstring>
#include <map>

#include "containerleaks.h"

using namespace cleaks;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "local";
  cloud::CloudServiceProfile profile = cloud::local_testbed();
  for (auto& candidate : cloud::all_commercial_clouds()) {
    if (candidate.name == which) profile = candidate;
  }
  std::printf("scanning a fresh server of profile '%s'...\n\n",
              profile.name.c_str());

  cloud::Server server("scan-target", profile, /*seed=*/20161128,
                       /*prior_uptime=*/52 * kDay);
  leakage::CrossValidator validator(server);
  const auto findings = validator.scan();

  std::map<leakage::LeakClass, int> counts;
  for (const auto& finding : findings) {
    ++counts[finding.cls];
    std::printf("%-11s %s\n", leakage::to_string(finding.cls).c_str(),
                finding.path.c_str());
  }

  std::printf("\n%zu pseudo files scanned:\n", findings.size());
  for (const auto& [cls, count] : counts) {
    std::printf("  %-11s %d\n", leakage::to_string(cls).c_str(), count);
  }
  std::printf(
      "\nLEAKING paths read the host's kernel data verbatim from inside an "
      "unprivileged container; PARTIAL paths show a tenant-scoped view that "
      "still tracks host activity.\n");
  return 0;
}
