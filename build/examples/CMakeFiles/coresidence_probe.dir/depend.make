# Empty dependencies file for coresidence_probe.
# This may be replaced when dependencies are built.
