file(REMOVE_RECURSE
  "CMakeFiles/coresidence_probe.dir/coresidence_probe.cpp.o"
  "CMakeFiles/coresidence_probe.dir/coresidence_probe.cpp.o.d"
  "coresidence_probe"
  "coresidence_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coresidence_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
