# Empty compiler generated dependencies file for leak_scanner.
# This may be replaced when dependencies are built.
