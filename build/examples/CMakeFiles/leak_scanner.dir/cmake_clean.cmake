file(REMOVE_RECURSE
  "CMakeFiles/leak_scanner.dir/leak_scanner.cpp.o"
  "CMakeFiles/leak_scanner.dir/leak_scanner.cpp.o.d"
  "leak_scanner"
  "leak_scanner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leak_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
