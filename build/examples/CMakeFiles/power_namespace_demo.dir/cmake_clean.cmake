file(REMOVE_RECURSE
  "CMakeFiles/power_namespace_demo.dir/power_namespace_demo.cpp.o"
  "CMakeFiles/power_namespace_demo.dir/power_namespace_demo.cpp.o.d"
  "power_namespace_demo"
  "power_namespace_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_namespace_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
