# Empty compiler generated dependencies file for power_namespace_demo.
# This may be replaced when dependencies are built.
