file(REMOVE_RECURSE
  "CMakeFiles/synergistic_attack.dir/synergistic_attack.cpp.o"
  "CMakeFiles/synergistic_attack.dir/synergistic_attack.cpp.o.d"
  "synergistic_attack"
  "synergistic_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synergistic_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
