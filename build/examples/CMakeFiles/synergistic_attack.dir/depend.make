# Empty dependencies file for synergistic_attack.
# This may be replaced when dependencies are built.
