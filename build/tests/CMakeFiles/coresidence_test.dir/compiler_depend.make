# Empty compiler generated dependencies file for coresidence_test.
# This may be replaced when dependencies are built.
