file(REMOVE_RECURSE
  "CMakeFiles/coresidence_test.dir/coresidence_test.cpp.o"
  "CMakeFiles/coresidence_test.dir/coresidence_test.cpp.o.d"
  "coresidence_test"
  "coresidence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coresidence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
