file(REMOVE_RECURSE
  "CMakeFiles/uvm_test.dir/uvm_test.cpp.o"
  "CMakeFiles/uvm_test.dir/uvm_test.cpp.o.d"
  "uvm_test"
  "uvm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
