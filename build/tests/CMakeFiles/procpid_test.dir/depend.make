# Empty dependencies file for procpid_test.
# This may be replaced when dependencies are built.
