file(REMOVE_RECURSE
  "CMakeFiles/procpid_test.dir/procpid_test.cpp.o"
  "CMakeFiles/procpid_test.dir/procpid_test.cpp.o.d"
  "procpid_test"
  "procpid_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/procpid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
