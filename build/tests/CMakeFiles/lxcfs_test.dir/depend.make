# Empty dependencies file for lxcfs_test.
# This may be replaced when dependencies are built.
