file(REMOVE_RECURSE
  "CMakeFiles/lxcfs_test.dir/lxcfs_test.cpp.o"
  "CMakeFiles/lxcfs_test.dir/lxcfs_test.cpp.o.d"
  "lxcfs_test"
  "lxcfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lxcfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
