file(REMOVE_RECURSE
  "CMakeFiles/covert_test.dir/covert_test.cpp.o"
  "CMakeFiles/covert_test.dir/covert_test.cpp.o.d"
  "covert_test"
  "covert_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
