# Empty dependencies file for covert_test.
# This may be replaced when dependencies are built.
