# Empty compiler generated dependencies file for covert_test.
# This may be replaced when dependencies are built.
