# Empty dependencies file for cleaks_defense.
# This may be replaced when dependencies are built.
