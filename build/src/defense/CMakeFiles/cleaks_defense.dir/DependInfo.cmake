
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/defense/budget.cpp" "src/defense/CMakeFiles/cleaks_defense.dir/budget.cpp.o" "gcc" "src/defense/CMakeFiles/cleaks_defense.dir/budget.cpp.o.d"
  "/root/repo/src/defense/power_model.cpp" "src/defense/CMakeFiles/cleaks_defense.dir/power_model.cpp.o" "gcc" "src/defense/CMakeFiles/cleaks_defense.dir/power_model.cpp.o.d"
  "/root/repo/src/defense/power_namespace.cpp" "src/defense/CMakeFiles/cleaks_defense.dir/power_namespace.cpp.o" "gcc" "src/defense/CMakeFiles/cleaks_defense.dir/power_namespace.cpp.o.d"
  "/root/repo/src/defense/trainer.cpp" "src/defense/CMakeFiles/cleaks_defense.dir/trainer.cpp.o" "gcc" "src/defense/CMakeFiles/cleaks_defense.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/container/CMakeFiles/cleaks_container.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cleaks_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/cleaks_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/cleaks_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cleaks_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cleaks_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
