file(REMOVE_RECURSE
  "libcleaks_defense.a"
)
