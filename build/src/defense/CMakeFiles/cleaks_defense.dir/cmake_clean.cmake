file(REMOVE_RECURSE
  "CMakeFiles/cleaks_defense.dir/budget.cpp.o"
  "CMakeFiles/cleaks_defense.dir/budget.cpp.o.d"
  "CMakeFiles/cleaks_defense.dir/power_model.cpp.o"
  "CMakeFiles/cleaks_defense.dir/power_model.cpp.o.d"
  "CMakeFiles/cleaks_defense.dir/power_namespace.cpp.o"
  "CMakeFiles/cleaks_defense.dir/power_namespace.cpp.o.d"
  "CMakeFiles/cleaks_defense.dir/trainer.cpp.o"
  "CMakeFiles/cleaks_defense.dir/trainer.cpp.o.d"
  "libcleaks_defense.a"
  "libcleaks_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
