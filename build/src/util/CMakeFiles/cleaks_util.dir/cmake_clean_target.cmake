file(REMOVE_RECURSE
  "libcleaks_util.a"
)
