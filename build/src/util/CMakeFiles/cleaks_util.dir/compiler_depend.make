# Empty compiler generated dependencies file for cleaks_util.
# This may be replaced when dependencies are built.
