file(REMOVE_RECURSE
  "CMakeFiles/cleaks_util.dir/regression.cpp.o"
  "CMakeFiles/cleaks_util.dir/regression.cpp.o.d"
  "CMakeFiles/cleaks_util.dir/result.cpp.o"
  "CMakeFiles/cleaks_util.dir/result.cpp.o.d"
  "CMakeFiles/cleaks_util.dir/rng.cpp.o"
  "CMakeFiles/cleaks_util.dir/rng.cpp.o.d"
  "CMakeFiles/cleaks_util.dir/stats.cpp.o"
  "CMakeFiles/cleaks_util.dir/stats.cpp.o.d"
  "CMakeFiles/cleaks_util.dir/strings.cpp.o"
  "CMakeFiles/cleaks_util.dir/strings.cpp.o.d"
  "CMakeFiles/cleaks_util.dir/table.cpp.o"
  "CMakeFiles/cleaks_util.dir/table.cpp.o.d"
  "libcleaks_util.a"
  "libcleaks_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
