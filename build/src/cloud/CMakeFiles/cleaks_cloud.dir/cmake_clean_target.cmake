file(REMOVE_RECURSE
  "libcleaks_cloud.a"
)
