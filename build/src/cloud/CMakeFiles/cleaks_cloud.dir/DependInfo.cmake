
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/billing.cpp" "src/cloud/CMakeFiles/cleaks_cloud.dir/billing.cpp.o" "gcc" "src/cloud/CMakeFiles/cleaks_cloud.dir/billing.cpp.o.d"
  "/root/repo/src/cloud/breaker.cpp" "src/cloud/CMakeFiles/cleaks_cloud.dir/breaker.cpp.o" "gcc" "src/cloud/CMakeFiles/cleaks_cloud.dir/breaker.cpp.o.d"
  "/root/repo/src/cloud/datacenter.cpp" "src/cloud/CMakeFiles/cleaks_cloud.dir/datacenter.cpp.o" "gcc" "src/cloud/CMakeFiles/cleaks_cloud.dir/datacenter.cpp.o.d"
  "/root/repo/src/cloud/profiles.cpp" "src/cloud/CMakeFiles/cleaks_cloud.dir/profiles.cpp.o" "gcc" "src/cloud/CMakeFiles/cleaks_cloud.dir/profiles.cpp.o.d"
  "/root/repo/src/cloud/provider.cpp" "src/cloud/CMakeFiles/cleaks_cloud.dir/provider.cpp.o" "gcc" "src/cloud/CMakeFiles/cleaks_cloud.dir/provider.cpp.o.d"
  "/root/repo/src/cloud/server.cpp" "src/cloud/CMakeFiles/cleaks_cloud.dir/server.cpp.o" "gcc" "src/cloud/CMakeFiles/cleaks_cloud.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/container/CMakeFiles/cleaks_container.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cleaks_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/cleaks_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/cleaks_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cleaks_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cleaks_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
