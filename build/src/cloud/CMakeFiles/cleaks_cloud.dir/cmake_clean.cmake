file(REMOVE_RECURSE
  "CMakeFiles/cleaks_cloud.dir/billing.cpp.o"
  "CMakeFiles/cleaks_cloud.dir/billing.cpp.o.d"
  "CMakeFiles/cleaks_cloud.dir/breaker.cpp.o"
  "CMakeFiles/cleaks_cloud.dir/breaker.cpp.o.d"
  "CMakeFiles/cleaks_cloud.dir/datacenter.cpp.o"
  "CMakeFiles/cleaks_cloud.dir/datacenter.cpp.o.d"
  "CMakeFiles/cleaks_cloud.dir/profiles.cpp.o"
  "CMakeFiles/cleaks_cloud.dir/profiles.cpp.o.d"
  "CMakeFiles/cleaks_cloud.dir/provider.cpp.o"
  "CMakeFiles/cleaks_cloud.dir/provider.cpp.o.d"
  "CMakeFiles/cleaks_cloud.dir/server.cpp.o"
  "CMakeFiles/cleaks_cloud.dir/server.cpp.o.d"
  "libcleaks_cloud.a"
  "libcleaks_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
