# Empty compiler generated dependencies file for cleaks_cloud.
# This may be replaced when dependencies are built.
