file(REMOVE_RECURSE
  "CMakeFiles/cleaks_fs.dir/masking.cpp.o"
  "CMakeFiles/cleaks_fs.dir/masking.cpp.o.d"
  "CMakeFiles/cleaks_fs.dir/pseudo_fs.cpp.o"
  "CMakeFiles/cleaks_fs.dir/pseudo_fs.cpp.o.d"
  "CMakeFiles/cleaks_fs.dir/render_proc.cpp.o"
  "CMakeFiles/cleaks_fs.dir/render_proc.cpp.o.d"
  "CMakeFiles/cleaks_fs.dir/render_sys.cpp.o"
  "CMakeFiles/cleaks_fs.dir/render_sys.cpp.o.d"
  "libcleaks_fs.a"
  "libcleaks_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
