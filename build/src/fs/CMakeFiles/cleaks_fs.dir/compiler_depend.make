# Empty compiler generated dependencies file for cleaks_fs.
# This may be replaced when dependencies are built.
