
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/masking.cpp" "src/fs/CMakeFiles/cleaks_fs.dir/masking.cpp.o" "gcc" "src/fs/CMakeFiles/cleaks_fs.dir/masking.cpp.o.d"
  "/root/repo/src/fs/pseudo_fs.cpp" "src/fs/CMakeFiles/cleaks_fs.dir/pseudo_fs.cpp.o" "gcc" "src/fs/CMakeFiles/cleaks_fs.dir/pseudo_fs.cpp.o.d"
  "/root/repo/src/fs/render_proc.cpp" "src/fs/CMakeFiles/cleaks_fs.dir/render_proc.cpp.o" "gcc" "src/fs/CMakeFiles/cleaks_fs.dir/render_proc.cpp.o.d"
  "/root/repo/src/fs/render_sys.cpp" "src/fs/CMakeFiles/cleaks_fs.dir/render_sys.cpp.o" "gcc" "src/fs/CMakeFiles/cleaks_fs.dir/render_sys.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/cleaks_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cleaks_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cleaks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
