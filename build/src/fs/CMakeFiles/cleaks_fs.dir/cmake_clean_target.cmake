file(REMOVE_RECURSE
  "libcleaks_fs.a"
)
