file(REMOVE_RECURSE
  "CMakeFiles/cleaks_kernel.dir/cgroup.cpp.o"
  "CMakeFiles/cleaks_kernel.dir/cgroup.cpp.o.d"
  "CMakeFiles/cleaks_kernel.dir/host.cpp.o"
  "CMakeFiles/cleaks_kernel.dir/host.cpp.o.d"
  "CMakeFiles/cleaks_kernel.dir/kernel_state.cpp.o"
  "CMakeFiles/cleaks_kernel.dir/kernel_state.cpp.o.d"
  "CMakeFiles/cleaks_kernel.dir/namespaces.cpp.o"
  "CMakeFiles/cleaks_kernel.dir/namespaces.cpp.o.d"
  "CMakeFiles/cleaks_kernel.dir/perf_event.cpp.o"
  "CMakeFiles/cleaks_kernel.dir/perf_event.cpp.o.d"
  "CMakeFiles/cleaks_kernel.dir/scheduler.cpp.o"
  "CMakeFiles/cleaks_kernel.dir/scheduler.cpp.o.d"
  "libcleaks_kernel.a"
  "libcleaks_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
