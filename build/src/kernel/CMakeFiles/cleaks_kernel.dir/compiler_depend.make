# Empty compiler generated dependencies file for cleaks_kernel.
# This may be replaced when dependencies are built.
