file(REMOVE_RECURSE
  "libcleaks_kernel.a"
)
