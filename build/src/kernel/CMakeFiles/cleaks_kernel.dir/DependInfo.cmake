
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/cgroup.cpp" "src/kernel/CMakeFiles/cleaks_kernel.dir/cgroup.cpp.o" "gcc" "src/kernel/CMakeFiles/cleaks_kernel.dir/cgroup.cpp.o.d"
  "/root/repo/src/kernel/host.cpp" "src/kernel/CMakeFiles/cleaks_kernel.dir/host.cpp.o" "gcc" "src/kernel/CMakeFiles/cleaks_kernel.dir/host.cpp.o.d"
  "/root/repo/src/kernel/kernel_state.cpp" "src/kernel/CMakeFiles/cleaks_kernel.dir/kernel_state.cpp.o" "gcc" "src/kernel/CMakeFiles/cleaks_kernel.dir/kernel_state.cpp.o.d"
  "/root/repo/src/kernel/namespaces.cpp" "src/kernel/CMakeFiles/cleaks_kernel.dir/namespaces.cpp.o" "gcc" "src/kernel/CMakeFiles/cleaks_kernel.dir/namespaces.cpp.o.d"
  "/root/repo/src/kernel/perf_event.cpp" "src/kernel/CMakeFiles/cleaks_kernel.dir/perf_event.cpp.o" "gcc" "src/kernel/CMakeFiles/cleaks_kernel.dir/perf_event.cpp.o.d"
  "/root/repo/src/kernel/scheduler.cpp" "src/kernel/CMakeFiles/cleaks_kernel.dir/scheduler.cpp.o" "gcc" "src/kernel/CMakeFiles/cleaks_kernel.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/cleaks_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cleaks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
