# Empty dependencies file for cleaks_coresidence.
# This may be replaced when dependencies are built.
