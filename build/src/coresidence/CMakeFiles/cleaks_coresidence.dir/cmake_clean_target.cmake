file(REMOVE_RECURSE
  "libcleaks_coresidence.a"
)
