file(REMOVE_RECURSE
  "CMakeFiles/cleaks_coresidence.dir/covert.cpp.o"
  "CMakeFiles/cleaks_coresidence.dir/covert.cpp.o.d"
  "CMakeFiles/cleaks_coresidence.dir/detector.cpp.o"
  "CMakeFiles/cleaks_coresidence.dir/detector.cpp.o.d"
  "CMakeFiles/cleaks_coresidence.dir/evaluation.cpp.o"
  "CMakeFiles/cleaks_coresidence.dir/evaluation.cpp.o.d"
  "libcleaks_coresidence.a"
  "libcleaks_coresidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_coresidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
