# Empty compiler generated dependencies file for cleaks_workload.
# This may be replaced when dependencies are built.
