file(REMOVE_RECURSE
  "libcleaks_workload.a"
)
