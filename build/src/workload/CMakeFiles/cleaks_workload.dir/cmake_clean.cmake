file(REMOVE_RECURSE
  "CMakeFiles/cleaks_workload.dir/diurnal.cpp.o"
  "CMakeFiles/cleaks_workload.dir/diurnal.cpp.o.d"
  "CMakeFiles/cleaks_workload.dir/profiles.cpp.o"
  "CMakeFiles/cleaks_workload.dir/profiles.cpp.o.d"
  "CMakeFiles/cleaks_workload.dir/unixbench.cpp.o"
  "CMakeFiles/cleaks_workload.dir/unixbench.cpp.o.d"
  "libcleaks_workload.a"
  "libcleaks_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
