
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/diurnal.cpp" "src/workload/CMakeFiles/cleaks_workload.dir/diurnal.cpp.o" "gcc" "src/workload/CMakeFiles/cleaks_workload.dir/diurnal.cpp.o.d"
  "/root/repo/src/workload/profiles.cpp" "src/workload/CMakeFiles/cleaks_workload.dir/profiles.cpp.o" "gcc" "src/workload/CMakeFiles/cleaks_workload.dir/profiles.cpp.o.d"
  "/root/repo/src/workload/unixbench.cpp" "src/workload/CMakeFiles/cleaks_workload.dir/unixbench.cpp.o" "gcc" "src/workload/CMakeFiles/cleaks_workload.dir/unixbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/cleaks_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cleaks_util.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cleaks_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
