file(REMOVE_RECURSE
  "CMakeFiles/cleaks_leakage.dir/channels.cpp.o"
  "CMakeFiles/cleaks_leakage.dir/channels.cpp.o.d"
  "CMakeFiles/cleaks_leakage.dir/detector.cpp.o"
  "CMakeFiles/cleaks_leakage.dir/detector.cpp.o.d"
  "CMakeFiles/cleaks_leakage.dir/inspector.cpp.o"
  "CMakeFiles/cleaks_leakage.dir/inspector.cpp.o.d"
  "CMakeFiles/cleaks_leakage.dir/uvm.cpp.o"
  "CMakeFiles/cleaks_leakage.dir/uvm.cpp.o.d"
  "libcleaks_leakage.a"
  "libcleaks_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
