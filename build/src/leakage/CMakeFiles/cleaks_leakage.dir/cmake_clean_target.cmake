file(REMOVE_RECURSE
  "libcleaks_leakage.a"
)
