# Empty compiler generated dependencies file for cleaks_leakage.
# This may be replaced when dependencies are built.
