
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/leakage/channels.cpp" "src/leakage/CMakeFiles/cleaks_leakage.dir/channels.cpp.o" "gcc" "src/leakage/CMakeFiles/cleaks_leakage.dir/channels.cpp.o.d"
  "/root/repo/src/leakage/detector.cpp" "src/leakage/CMakeFiles/cleaks_leakage.dir/detector.cpp.o" "gcc" "src/leakage/CMakeFiles/cleaks_leakage.dir/detector.cpp.o.d"
  "/root/repo/src/leakage/inspector.cpp" "src/leakage/CMakeFiles/cleaks_leakage.dir/inspector.cpp.o" "gcc" "src/leakage/CMakeFiles/cleaks_leakage.dir/inspector.cpp.o.d"
  "/root/repo/src/leakage/uvm.cpp" "src/leakage/CMakeFiles/cleaks_leakage.dir/uvm.cpp.o" "gcc" "src/leakage/CMakeFiles/cleaks_leakage.dir/uvm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/cleaks_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/cleaks_container.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/cleaks_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/cleaks_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cleaks_util.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cleaks_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cleaks_hw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
