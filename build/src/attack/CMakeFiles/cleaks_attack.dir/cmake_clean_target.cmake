file(REMOVE_RECURSE
  "libcleaks_attack.a"
)
