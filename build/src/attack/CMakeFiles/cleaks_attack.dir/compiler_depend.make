# Empty compiler generated dependencies file for cleaks_attack.
# This may be replaced when dependencies are built.
