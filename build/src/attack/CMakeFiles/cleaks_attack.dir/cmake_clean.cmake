file(REMOVE_RECURSE
  "CMakeFiles/cleaks_attack.dir/monitor.cpp.o"
  "CMakeFiles/cleaks_attack.dir/monitor.cpp.o.d"
  "CMakeFiles/cleaks_attack.dir/orchestrator.cpp.o"
  "CMakeFiles/cleaks_attack.dir/orchestrator.cpp.o.d"
  "CMakeFiles/cleaks_attack.dir/strategy.cpp.o"
  "CMakeFiles/cleaks_attack.dir/strategy.cpp.o.d"
  "libcleaks_attack.a"
  "libcleaks_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
