# Empty dependencies file for cleaks_hw.
# This may be replaced when dependencies are built.
