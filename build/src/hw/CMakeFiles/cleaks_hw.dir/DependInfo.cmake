
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cpuidle.cpp" "src/hw/CMakeFiles/cleaks_hw.dir/cpuidle.cpp.o" "gcc" "src/hw/CMakeFiles/cleaks_hw.dir/cpuidle.cpp.o.d"
  "/root/repo/src/hw/energy_model.cpp" "src/hw/CMakeFiles/cleaks_hw.dir/energy_model.cpp.o" "gcc" "src/hw/CMakeFiles/cleaks_hw.dir/energy_model.cpp.o.d"
  "/root/repo/src/hw/rapl.cpp" "src/hw/CMakeFiles/cleaks_hw.dir/rapl.cpp.o" "gcc" "src/hw/CMakeFiles/cleaks_hw.dir/rapl.cpp.o.d"
  "/root/repo/src/hw/spec.cpp" "src/hw/CMakeFiles/cleaks_hw.dir/spec.cpp.o" "gcc" "src/hw/CMakeFiles/cleaks_hw.dir/spec.cpp.o.d"
  "/root/repo/src/hw/thermal.cpp" "src/hw/CMakeFiles/cleaks_hw.dir/thermal.cpp.o" "gcc" "src/hw/CMakeFiles/cleaks_hw.dir/thermal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cleaks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
