file(REMOVE_RECURSE
  "CMakeFiles/cleaks_hw.dir/cpuidle.cpp.o"
  "CMakeFiles/cleaks_hw.dir/cpuidle.cpp.o.d"
  "CMakeFiles/cleaks_hw.dir/energy_model.cpp.o"
  "CMakeFiles/cleaks_hw.dir/energy_model.cpp.o.d"
  "CMakeFiles/cleaks_hw.dir/rapl.cpp.o"
  "CMakeFiles/cleaks_hw.dir/rapl.cpp.o.d"
  "CMakeFiles/cleaks_hw.dir/spec.cpp.o"
  "CMakeFiles/cleaks_hw.dir/spec.cpp.o.d"
  "CMakeFiles/cleaks_hw.dir/thermal.cpp.o"
  "CMakeFiles/cleaks_hw.dir/thermal.cpp.o.d"
  "libcleaks_hw.a"
  "libcleaks_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
