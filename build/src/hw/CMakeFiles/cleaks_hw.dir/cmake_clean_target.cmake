file(REMOVE_RECURSE
  "libcleaks_hw.a"
)
