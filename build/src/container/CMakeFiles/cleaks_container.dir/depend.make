# Empty dependencies file for cleaks_container.
# This may be replaced when dependencies are built.
