file(REMOVE_RECURSE
  "libcleaks_container.a"
)
