file(REMOVE_RECURSE
  "CMakeFiles/cleaks_container.dir/container.cpp.o"
  "CMakeFiles/cleaks_container.dir/container.cpp.o.d"
  "libcleaks_container.a"
  "libcleaks_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cleaks_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
