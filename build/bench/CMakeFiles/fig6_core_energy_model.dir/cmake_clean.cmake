file(REMOVE_RECURSE
  "CMakeFiles/fig6_core_energy_model.dir/fig6_core_energy_model.cpp.o"
  "CMakeFiles/fig6_core_energy_model.dir/fig6_core_energy_model.cpp.o.d"
  "fig6_core_energy_model"
  "fig6_core_energy_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_core_energy_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
