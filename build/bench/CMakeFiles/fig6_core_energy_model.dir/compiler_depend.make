# Empty compiler generated dependencies file for fig6_core_energy_model.
# This may be replaced when dependencies are built.
