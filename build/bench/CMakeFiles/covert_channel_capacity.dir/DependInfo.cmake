
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/covert_channel_capacity.cpp" "bench/CMakeFiles/covert_channel_capacity.dir/covert_channel_capacity.cpp.o" "gcc" "bench/CMakeFiles/covert_channel_capacity.dir/covert_channel_capacity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/cleaks_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/defense/CMakeFiles/cleaks_defense.dir/DependInfo.cmake"
  "/root/repo/build/src/leakage/CMakeFiles/cleaks_leakage.dir/DependInfo.cmake"
  "/root/repo/build/src/coresidence/CMakeFiles/cleaks_coresidence.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/cleaks_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/cleaks_container.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/cleaks_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fs/CMakeFiles/cleaks_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/cleaks_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/cleaks_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cleaks_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
