file(REMOVE_RECURSE
  "CMakeFiles/covert_channel_capacity.dir/covert_channel_capacity.cpp.o"
  "CMakeFiles/covert_channel_capacity.dir/covert_channel_capacity.cpp.o.d"
  "covert_channel_capacity"
  "covert_channel_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/covert_channel_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
