# Empty dependencies file for covert_channel_capacity.
# This may be replaced when dependencies are built.
