file(REMOVE_RECURSE
  "CMakeFiles/fig9_transparency.dir/fig9_transparency.cpp.o"
  "CMakeFiles/fig9_transparency.dir/fig9_transparency.cpp.o.d"
  "fig9_transparency"
  "fig9_transparency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_transparency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
