# Empty dependencies file for fig9_transparency.
# This may be replaced when dependencies are built.
