# Empty dependencies file for fig4_coresident_attack.
# This may be replaced when dependencies are built.
