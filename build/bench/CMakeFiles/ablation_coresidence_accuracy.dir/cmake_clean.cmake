file(REMOVE_RECURSE
  "CMakeFiles/ablation_coresidence_accuracy.dir/ablation_coresidence_accuracy.cpp.o"
  "CMakeFiles/ablation_coresidence_accuracy.dir/ablation_coresidence_accuracy.cpp.o.d"
  "ablation_coresidence_accuracy"
  "ablation_coresidence_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coresidence_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
