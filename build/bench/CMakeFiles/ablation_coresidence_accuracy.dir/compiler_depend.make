# Empty compiler generated dependencies file for ablation_coresidence_accuracy.
# This may be replaced when dependencies are built.
