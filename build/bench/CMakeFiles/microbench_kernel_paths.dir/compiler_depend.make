# Empty compiler generated dependencies file for microbench_kernel_paths.
# This may be replaced when dependencies are built.
