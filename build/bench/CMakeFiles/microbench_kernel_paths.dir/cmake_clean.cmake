file(REMOVE_RECURSE
  "CMakeFiles/microbench_kernel_paths.dir/microbench_kernel_paths.cpp.o"
  "CMakeFiles/microbench_kernel_paths.dir/microbench_kernel_paths.cpp.o.d"
  "microbench_kernel_paths"
  "microbench_kernel_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microbench_kernel_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
