# Empty compiler generated dependencies file for table3_unixbench_overhead.
# This may be replaced when dependencies are built.
