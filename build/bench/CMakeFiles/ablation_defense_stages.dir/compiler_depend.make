# Empty compiler generated dependencies file for ablation_defense_stages.
# This may be replaced when dependencies are built.
