file(REMOVE_RECURSE
  "CMakeFiles/ablation_defense_stages.dir/ablation_defense_stages.cpp.o"
  "CMakeFiles/ablation_defense_stages.dir/ablation_defense_stages.cpp.o.d"
  "ablation_defense_stages"
  "ablation_defense_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_defense_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
