# Empty dependencies file for fig2_week_power_trace.
# This may be replaced when dependencies are built.
