# Empty compiler generated dependencies file for costs_attack_billing.
# This may be replaced when dependencies are built.
