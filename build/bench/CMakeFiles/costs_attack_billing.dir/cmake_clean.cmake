file(REMOVE_RECURSE
  "CMakeFiles/costs_attack_billing.dir/costs_attack_billing.cpp.o"
  "CMakeFiles/costs_attack_billing.dir/costs_attack_billing.cpp.o.d"
  "costs_attack_billing"
  "costs_attack_billing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/costs_attack_billing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
