file(REMOVE_RECURSE
  "CMakeFiles/table2_coresidence_rank.dir/table2_coresidence_rank.cpp.o"
  "CMakeFiles/table2_coresidence_rank.dir/table2_coresidence_rank.cpp.o.d"
  "table2_coresidence_rank"
  "table2_coresidence_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_coresidence_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
