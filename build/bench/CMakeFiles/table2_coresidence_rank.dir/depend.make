# Empty dependencies file for table2_coresidence_rank.
# This may be replaced when dependencies are built.
