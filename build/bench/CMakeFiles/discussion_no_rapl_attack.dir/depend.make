# Empty dependencies file for discussion_no_rapl_attack.
# This may be replaced when dependencies are built.
