file(REMOVE_RECURSE
  "CMakeFiles/discussion_no_rapl_attack.dir/discussion_no_rapl_attack.cpp.o"
  "CMakeFiles/discussion_no_rapl_attack.dir/discussion_no_rapl_attack.cpp.o.d"
  "discussion_no_rapl_attack"
  "discussion_no_rapl_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discussion_no_rapl_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
