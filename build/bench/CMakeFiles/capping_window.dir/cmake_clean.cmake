file(REMOVE_RECURSE
  "CMakeFiles/capping_window.dir/capping_window.cpp.o"
  "CMakeFiles/capping_window.dir/capping_window.cpp.o.d"
  "capping_window"
  "capping_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capping_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
