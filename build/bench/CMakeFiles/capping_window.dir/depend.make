# Empty dependencies file for capping_window.
# This may be replaced when dependencies are built.
