# Empty compiler generated dependencies file for fig3_synergistic_vs_periodic.
# This may be replaced when dependencies are built.
