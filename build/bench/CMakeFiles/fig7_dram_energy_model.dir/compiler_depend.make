# Empty compiler generated dependencies file for fig7_dram_energy_model.
# This may be replaced when dependencies are built.
