#include "attack/strategy.h"

#include <algorithm>

#include "workload/profiles.h"

namespace cleaks::attack {

std::string to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kContinuous:
      return "continuous";
    case StrategyKind::kPeriodic:
      return "periodic";
    case StrategyKind::kSynergistic:
      return "synergistic";
  }
  return "?";
}

PowerAttacker::PowerAttacker(container::Container& instance,
                             AttackConfig config)
    : instance_(&instance), config_(config), monitor_(instance) {}

void PowerAttacker::start_virus() {
  if (!virus_pids_.empty()) return;
  const auto virus = workload::power_virus();
  const std::size_t copies = instance_->cpuset().empty()
                                 ? static_cast<std::size_t>(
                                       instance_->host().spec().num_cores)
                                 : instance_->cpuset().size();
  for (std::size_t copy = 0; copy < copies; ++copy) {
    virus_pids_.push_back(
        instance_->run("pwrvirus-" + std::to_string(copy), virus.behavior)
            ->host_pid);
  }
  ++stats_.spikes_launched;
}

void PowerAttacker::stop_virus() {
  for (auto pid : virus_pids_) instance_->kill(pid);
  virus_pids_.clear();
}

void PowerAttacker::step_synergistic(SimTime now, double sample) {
  if (attacking()) {
    if (now >= spike_end_) {
      stop_virus();
      cooldown_until_ = now + config_.cooldown;
    }
    return;
  }
  // Background observation only (attack samples would bias the history).
  history_.push_back(sample);
  if (history_.size() > static_cast<std::size_t>(config_.max_history)) {
    history_.erase(history_.begin());
  }
  if (static_cast<int>(history_.size()) < config_.min_history) return;
  if (now < cooldown_until_) return;
  const double threshold =
      percentile(history_, config_.trigger_percentile);
  RunningStats background;
  for (double observed : history_) background.add(observed);
  const double crest_floor =
      background.mean() * (1.0 + config_.trigger_margin);
  if (sample >= threshold && sample >= crest_floor) {
    start_virus();
    spike_end_ = now + config_.spike_duration;
  }
}

void PowerAttacker::step(SimTime now, SimDuration dt) {
  const auto sample = monitor_.sample_w(dt);
  if (sample.has_value()) {
    stats_.peak_observed_w = std::max(stats_.peak_observed_w, *sample);
  }
  if (attacking()) {
    stats_.attack_seconds += to_seconds(dt);
  } else {
    stats_.monitor_seconds += to_seconds(dt);
  }

  switch (config_.kind) {
    case StrategyKind::kContinuous:
      if (!attacking()) start_virus();
      break;
    case StrategyKind::kPeriodic:
      if (attacking()) {
        if (now >= spike_end_) stop_virus();
      } else if (now >= next_period_start_) {
        start_virus();
        spike_end_ = now + config_.spike_duration;
        next_period_start_ = now + config_.period;
      }
      break;
    case StrategyKind::kSynergistic:
      // Without the leaked signal (masked channel or power-based
      // namespace), the synergistic attacker is blind and never triggers —
      // exactly the defense outcome of §VI-B.
      if (sample.has_value()) {
        step_synergistic(now, *sample);
      } else if (attacking() && now >= spike_end_) {
        stop_virus();
      }
      break;
  }
}

}  // namespace cleaks::attack
