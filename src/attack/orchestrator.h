// Attack orchestration (§IV-C): aggregate attacker-controlled container
// instances onto one physical server by repeatedly launching instances,
// verifying co-residence through a leakage channel, and terminating the
// misses. In the paper's CC1 experiment, timer_list verification placed
// three containers on one server with trivial effort.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/provider.h"
#include "coresidence/detector.h"

namespace cleaks::attack {

struct OrchestratorResult {
  /// Acquired co-resident instances (first one is the anchor). Tenant
  /// views only: co-residence was *inferred* through the leakage channel,
  /// never read off the control plane.
  std::vector<std::shared_ptr<cloud::TenantInstance>> instances;
  int launches = 0;        ///< total instances ever launched
  int verifications = 0;   ///< co-residence probes run
  bool success = false;    ///< reached the requested group size
};

class CoResidenceOrchestrator {
 public:
  /// `detector` is the channel used for verification (footnote 7: one
  /// strong channel is enough).
  CoResidenceOrchestrator(cloud::CloudProvider& provider,
                          coresidence::CoResidenceDetector& detector)
      : provider_(&provider), detector_(&detector) {}

  /// Acquire `group_size` instances on one physical server, giving up
  /// after `max_launches` total launches.
  OrchestratorResult acquire(const std::string& tenant, int group_size,
                             int max_launches);

 private:
  cloud::CloudProvider* provider_;
  coresidence::CoResidenceDetector* detector_;
};

}  // namespace cleaks::attack
