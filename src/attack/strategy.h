// Power attack strategies (§IV).
//
//   kContinuous  — run the power virus non-stop: catches every benign
//                  crest but is costly and conspicuous.
//   kPeriodic    — fire a spike every `period` regardless of host state
//                  (the paper's baseline: every 300 s).
//   kSynergistic — watch host power through the leaked RAPL channel and
//                  superimpose the spike exactly on benign peaks: fewer
//                  trials, higher combined spikes, near-zero monitoring
//                  cost.
#pragma once

#include <memory>
#include <vector>

#include "attack/monitor.h"
#include "container/container.h"
#include "util/stats.h"

namespace cleaks::attack {

enum class StrategyKind { kContinuous, kPeriodic, kSynergistic };

std::string to_string(StrategyKind kind);

struct AttackConfig {
  StrategyKind kind = StrategyKind::kSynergistic;
  /// Spike (burst) length once triggered.
  SimDuration spike_duration = 15 * kSecond;
  /// Periodic strategy: interval between spikes.
  SimDuration period = 300 * kSecond;
  /// Synergistic: trigger when the background sample exceeds this
  /// percentile of observed history...
  double trigger_percentile = 90.0;
  /// ...and also exceeds the observed mean by this relative margin, so a
  /// flat (idle) history's measurement noise cannot trigger a strike —
  /// the attacker waits for a genuine benign crest.
  double trigger_margin = 0.15;
  /// Synergistic: minimum background samples before the first trigger.
  int min_history = 60;
  /// Synergistic: cap on history length (rolling window).
  int max_history = 3600;
  /// Minimum gap between spikes (re-observation period).
  SimDuration cooldown = 60 * kSecond;
};

struct AttackStats {
  int spikes_launched = 0;
  double attack_seconds = 0.0;    ///< virus-running time
  double monitor_seconds = 0.0;   ///< pure-monitoring time (negligible CPU)
  double peak_observed_w = 0.0;   ///< highest host power seen via RAPL
};

/// Drives the attack workload inside one container instance. The caller
/// advances the world and invokes step() once per control interval.
class PowerAttacker {
 public:
  PowerAttacker(container::Container& instance, AttackConfig config);

  /// `dt` is the interval since the previous step.
  void step(SimTime now, SimDuration dt);

  [[nodiscard]] bool attacking() const noexcept { return !virus_pids_.empty(); }
  [[nodiscard]] const AttackStats& stats() const noexcept { return stats_; }

  /// Force-start / force-stop (used by the orchestrated Fig 4 scenario).
  void start_virus();
  void stop_virus();

 private:
  void step_synergistic(SimTime now, double sample);

  container::Container* instance_;
  AttackConfig config_;
  RaplMonitor monitor_;
  AttackStats stats_;
  std::vector<kernel::HostPid> virus_pids_;
  std::vector<double> history_;
  SimTime spike_end_ = 0;
  SimTime cooldown_until_ = 0;
  SimTime next_period_start_ = 0;
};

}  // namespace cleaks::attack
