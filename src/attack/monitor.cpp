#include "attack/monitor.h"

#include "obs/metrics.h"
#include "util/strings.h"

namespace cleaks::attack {
namespace {

// In-container monitor telemetry: how often the attacker-side probes fire
// and how often the cloud's hardening turns them away. Sampling schedules
// are simulation-driven, so the counts are deterministic (Scope::kSim).
struct MonitorMetrics {
  obs::Counter& rapl_samples = obs::Registry::global().counter(
      "attack_rapl_samples_total", "RaplMonitor::sample_w attempts");
  obs::Counter& rapl_blocked = obs::Registry::global().counter(
      "attack_rapl_blocked_total",
      "RAPL sample attempts denied by masking or missing hardware");
  obs::Counter& rapl_holds = obs::Registry::global().counter(
      "attack_rapl_holds_total",
      "samples served from the held last-good estimate (dropout/wrap glitch)");
  obs::Counter& util_samples = obs::Registry::global().counter(
      "attack_util_samples_total",
      "UtilizationMonitor jiffy-delta sample attempts");

  static MonitorMetrics& get() {
    static MonitorMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::optional<double> RaplMonitor::sample_w(SimDuration since_last) {
  MonitorMetrics::get().rapl_samples.inc();
  const int packages = target_->host().spec().num_packages;
  std::vector<std::uint64_t> current;
  current.reserve(static_cast<std::size_t>(packages));
  for (int pkg = 0; pkg < packages; ++pkg) {
    const auto view = target_->read_file(
        strformat("/sys/class/powercap/intel-rapl:%d/energy_uj", pkg));
    if (view.code() == StatusCode::kUnavailable) {
      // Transient dropout: the counters kept running but this read missed
      // them, so the next delta would span an unknown gap. Hold the
      // last-good estimate and re-prime on the next successful read.
      MonitorMetrics::get().rapl_holds.inc();
      primed_ = false;
      degraded_ = true;
      return last_good_w_;
    }
    if (!view.is_ok()) {
      // Masked or absent: the defense removed the channel — the signal
      // must vanish, not be held.
      MonitorMetrics::get().rapl_blocked.inc();
      return std::nullopt;
    }
    current.push_back(
        static_cast<std::uint64_t>(parse_first_int(view.value())));
  }
  packages_seen_ = packages;
  if (!primed_ || last_uj_.size() != current.size()) {
    last_uj_ = current;
    primed_ = true;
    // Recovering from a dropout keeps serving the held estimate for the
    // priming interval; a fresh monitor has nothing to hold (nullopt).
    return degraded_ ? last_good_w_ : std::nullopt;
  }
  double joules = 0.0;
  for (std::size_t pkg = 0; pkg < current.size(); ++pkg) {
    joules += hw::rapl_delta_j(last_uj_[pkg], current[pkg]);
  }
  last_uj_ = current;
  const double dt_sec = to_seconds(since_last);
  if (dt_sec <= 0.0) return std::nullopt;
  const double watts = joules / dt_sec;
  if (watts > max_plausible_w_) {
    // Counter-wrap glitch: the wrapped delta cannot be unwrapped from
    // in-container observables alone (see rapl_delta_j_checked), so the
    // sample is discarded. The counters are already re-primed on the
    // current reading; hold the crest estimate through the glitch.
    MonitorMetrics::get().rapl_holds.inc();
    degraded_ = true;
    return last_good_w_;
  }
  last_good_w_ = watts;
  degraded_ = false;
  return watts;
}

std::optional<UtilizationMonitor::Jiffies> UtilizationMonitor::read_jiffies()
    const {
  const auto view = target_->read_file("/proc/stat");
  if (!view.is_ok()) return std::nullopt;
  // First line: "cpu user nice system idle iowait irq softirq steal".
  const auto lines = split_lines(view.value());
  if (lines.empty()) return std::nullopt;
  const auto fields = extract_numbers(lines.front());
  if (fields.size() < 8) return std::nullopt;
  Jiffies jiffies;
  jiffies.busy = fields[0] + fields[1] + fields[2] + fields[5] + fields[6];
  jiffies.idle = fields[3] + fields[4];
  return jiffies;
}

std::optional<double> UtilizationMonitor::sample_utilization(
    SimDuration since_last) {
  (void)since_last;  // jiffy deltas carry their own time base
  MonitorMetrics::get().util_samples.inc();
  const auto current = read_jiffies();
  if (!current.has_value()) return std::nullopt;
  if (!primed_) {
    last_ = *current;
    primed_ = true;
    return std::nullopt;
  }
  const double busy = current->busy - last_.busy;
  const double idle = current->idle - last_.idle;
  last_ = *current;
  const double total = busy + idle;
  if (total <= 0.0) return std::nullopt;
  return busy / total;
}

}  // namespace cleaks::attack
