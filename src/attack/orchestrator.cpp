#include "attack/orchestrator.h"

namespace cleaks::attack {

OrchestratorResult CoResidenceOrchestrator::acquire(const std::string& tenant,
                                                    int group_size,
                                                    int max_launches) {
  OrchestratorResult result;
  coresidence::ProbeEnv env;
  env.advance = [&](SimDuration dt) { provider_->step(dt); };

  // Anchor instance: everything else must co-reside with it.
  auto anchor = provider_->launch(tenant);
  ++result.launches;
  result.instances.push_back(anchor);

  while (static_cast<int>(result.instances.size()) < group_size &&
         result.launches < max_launches) {
    auto candidate = provider_->launch(tenant);
    ++result.launches;
    provider_->step(kSecond);  // instance boot settling
    ++result.verifications;
    const auto verdict =
        detector_->verify(*anchor->handle, *candidate->handle, env);
    if (verdict == coresidence::Verdict::kCoResident) {
      result.instances.push_back(candidate);
    } else {
      provider_->terminate(candidate->instance_id);
    }
  }
  result.success =
      static_cast<int>(result.instances.size()) >= group_size;
  return result;
}

}  // namespace cleaks::attack
