// RaplMonitor: the attacker's in-container power monitor (§IV-A).
//
// Monitoring costs almost zero CPU: the tenant just reads
// /sys/class/powercap/.../energy_uj periodically and differentiates the
// counter — getting the *whole host's* power because the channel is not
// namespaced. With the power-based namespace enabled, the same reads
// return only the container's own consumption and the attack signal
// disappears (§VI-B).
#pragma once

#include <optional>

#include "container/container.h"
#include "hw/rapl.h"
#include "util/sim_time.h"

namespace cleaks::attack {

class RaplMonitor {
 public:
  explicit RaplMonitor(const container::Container& target)
      : target_(&target) {}

  /// Power (W) averaged over the interval since the previous successful
  /// sample. First call primes the counter and returns nullopt; nullopt is
  /// also returned when the channel is masked or the hardware is absent.
  ///
  /// Graceful degradation: a *transient* read failure (EBUSY) or an
  /// implausibly large delta (a counter-wrap glitch in the sampling gap)
  /// does not poison the crest estimate — the monitor holds and returns
  /// its last good wattage, re-primes, and flags degraded() until the
  /// next clean sample. Masking/absence still returns nullopt: when the
  /// defense removes the channel, the signal must vanish, not persist.
  std::optional<double> sample_w(SimDuration since_last);

  /// Number of packages visible (0 when the channel is unavailable).
  [[nodiscard]] int packages_seen() const noexcept { return packages_seen_; }

  /// True while sample_w is serving the held last-good estimate.
  [[nodiscard]] bool degraded() const noexcept { return degraded_; }

  /// Deltas above this are treated as wrap glitches, not power. Default
  /// is far beyond any facility the simulator can build.
  void set_max_plausible_w(double watts) noexcept {
    max_plausible_w_ = watts;
  }

 private:
  const container::Container* target_;
  std::vector<std::uint64_t> last_uj_;
  int packages_seen_ = 0;
  bool primed_ = false;
  std::optional<double> last_good_w_;
  bool degraded_ = false;
  double max_plausible_w_ = 1e6;
};

/// §VII-A: synergistic power attacks without the RAPL channel.
///
/// On hosts without RAPL (or with the powercap tree masked), an advanced
/// attacker approximates the power state from the resource-utilization
/// channels that remain open: /proc/stat's busy-jiffy rate is a direct
/// proxy for the dynamic power term. sample_utilization() returns host CPU
/// utilization in [0,1]; crest detection works on it exactly as it does on
/// watts. The paper's conclusion follows: system-wide performance
/// statistics must be masked too.
class UtilizationMonitor {
 public:
  explicit UtilizationMonitor(const container::Container& target)
      : target_(&target) {}

  /// Host CPU utilization over the interval since the previous successful
  /// sample; nullopt on the priming call or when /proc/stat is masked.
  std::optional<double> sample_utilization(SimDuration since_last);

 private:
  struct Jiffies {
    double busy = 0.0;
    double idle = 0.0;
  };
  std::optional<Jiffies> read_jiffies() const;

  const container::Container* target_;
  Jiffies last_;
  bool primed_ = false;
};

}  // namespace cleaks::attack
