// Server: one physical machine in the data center — a Host plus its pseudo
// filesystems, container runtime (with the provider's masking policy) and
// optional benign tenant load.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "cloud/profiles.h"
#include "container/container.h"
#include "fs/pseudo_fs.h"
#include "kernel/host.h"
#include "workload/diurnal.h"

namespace cleaks::cloud {

class Server {
 public:
  /// `prior_uptime` pre-seeds the host's accumulators as if it had been
  /// running that long before the simulation starts (real cloud servers
  /// rarely reboot — §IV-C exploits exactly this via /proc/uptime).
  Server(std::string name, const CloudServiceProfile& profile,
         std::uint64_t seed, SimDuration prior_uptime = 0);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] kernel::Host& host() noexcept { return *host_; }
  [[nodiscard]] const kernel::Host& host() const noexcept { return *host_; }
  [[nodiscard]] fs::PseudoFs& fs() noexcept { return *fs_; }
  [[nodiscard]] container::ContainerRuntime& runtime() noexcept {
    return *runtime_;
  }

  /// Attach a diurnal benign-load generator.
  void enable_benign_load(std::uint64_t seed,
                          workload::DiurnalParams params = {});

  /// Bind this server's hardware state onto lane `lane` of a facility
  /// physics plane (see hw::BatchedPhysics). Call once, after construction;
  /// the plane must outlive the server.
  void bind_physics(hw::BatchedPhysics& plane, std::size_t lane) {
    host_->bind_physics(plane, lane);
  }

  /// Advance this server by `dt`: re-target benign load, then run the host.
  void step(SimDuration dt);

  /// Host package power during the last tick (W).
  [[nodiscard]] double power_w() const noexcept {
    return host_->last_tick_power_w();
  }

 private:
  std::string name_;
  std::unique_ptr<kernel::Host> host_;
  std::unique_ptr<fs::PseudoFs> fs_;
  std::unique_ptr<container::ContainerRuntime> runtime_;
  std::unique_ptr<workload::DiurnalLoadGenerator> benign_load_;
};

}  // namespace cleaks::cloud
