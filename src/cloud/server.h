// Server: one physical machine in the data center — a Host plus its pseudo
// filesystems, container runtime (with the provider's masking policy) and
// optional benign tenant load.
//
// Sparse stepping: when the host is coast-enabled (the Datacenter turns
// this on for every server), step() routes provably idle steps through the
// analytic idle-coast integrator instead of the per-tick physics loop. In
// parked mode the Datacenter stops visiting a coasting server altogether:
// the owed interval is tracked lazily (parked_at_ timestamp) and deferred
// in one O(1) call at the first touch — wake, capper change, or external
// accessor (see cloud/datacenter.h). Every non-const accessor that can
// observe or mutate host state syncs pending deferred time first, so a
// reader can never see a parked server lag the equivalent visit-all run.
#pragma once

#include <limits>
#include <memory>
#include <optional>
#include <string>

#include "cloud/profiles.h"
#include "container/container.h"
#include "fs/pseudo_fs.h"
#include "kernel/host.h"
#include "workload/diurnal.h"
#include "workload/onoff.h"

namespace cleaks::cloud {

class Server {
 public:
  /// Sentinel for next_wake(): no scheduled wakeup — the server sleeps
  /// until an external mutation ends its coast episode.
  static constexpr SimTime kNoWake = std::numeric_limits<SimTime>::max();

  /// `prior_uptime` pre-seeds the host's accumulators as if it had been
  /// running that long before the simulation starts (real cloud servers
  /// rarely reboot — §IV-C exploits exactly this via /proc/uptime).
  Server(std::string name, const CloudServiceProfile& profile,
         std::uint64_t seed, SimDuration prior_uptime = 0);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Non-const access syncs pending coast time first: callers mutate or
  /// render through these, and a mutation on unmaterialised state would
  /// act on the past.
  [[nodiscard]] kernel::Host& host() noexcept {
    host_->coast_sync();
    return *host_;
  }
  [[nodiscard]] const kernel::Host& host() const noexcept { return *host_; }
  [[nodiscard]] fs::PseudoFs& fs() noexcept {
    host_->coast_sync();
    return *fs_;
  }
  [[nodiscard]] container::ContainerRuntime& runtime() noexcept {
    host_->coast_sync();
    return *runtime_;
  }

  /// Attach a diurnal benign-load generator.
  void enable_benign_load(std::uint64_t seed,
                          workload::DiurnalParams params = {});
  /// Attach a deterministic on/off load: the server is idle between phase
  /// edges and next_wake() exposes the next edge to the sparse scheduler.
  void enable_onoff_load(workload::OnOffParams params = {});

  /// Bind this server's hardware state onto lane `lane` of a facility
  /// physics plane (see hw::BatchedPhysics). Call once, after construction;
  /// the plane must outlive the server.
  void bind_physics(hw::BatchedPhysics& plane, std::size_t lane) {
    host_->bind_physics(plane, lane);
  }

  /// Opt the host into the idle-coast regime (see kernel/host.h).
  void set_coast_enabled(bool on) noexcept { host_->set_coast_enabled(on); }

  /// Advance this server by `dt`: re-target benign load, then run the
  /// host — through the analytic idle coast when provably idle, the full
  /// per-tick physics otherwise. Returns true when the step coasted (the
  /// signal behind engine_active_server_steps_total).
  bool step(SimDuration dt);

  /// Whether step() would coast right now: no load generator that draws
  /// RNG, no containers, host-level eligibility. The same predicate at the
  /// same step boundary whether the server is visited every step
  /// (CLEAKS_SPARSE=0) or parked — which is the whole equality argument.
  [[nodiscard]] bool idle_eligible() const noexcept;

  /// Sparse fast path: account `dt` of idle time without stepping
  /// (kernel/host.h defer_idle). Only valid while coast_active().
  void defer_idle(SimDuration dt) { host_->defer_idle(dt); }
  /// Materialise pending deferred time (no-op when none).
  void coast_sync() { host_->coast_sync(); }
  [[nodiscard]] bool coast_active() const noexcept {
    return host_->coast_active();
  }
  /// Next instant this server needs a real step while sleeping: the next
  /// on/off phase edge, or kNoWake when nothing is scheduled.
  [[nodiscard]] SimTime next_wake(SimTime now) const noexcept {
    return onoff_load_ ? onoff_load_->next_phase_change(now) : kNoWake;
  }

  /// Host package power during the last tick (W). Constant during a coast
  /// episode (pinned at entry), so this needs no sync.
  [[nodiscard]] double power_w() const noexcept {
    return host_->last_tick_power_w();
  }

 private:
  std::string name_;
  std::unique_ptr<kernel::Host> host_;
  std::unique_ptr<fs::PseudoFs> fs_;
  std::unique_ptr<container::ContainerRuntime> runtime_;
  std::unique_ptr<workload::DiurnalLoadGenerator> benign_load_;
  std::unique_ptr<workload::OnOffLoad> onoff_load_;
};

}  // namespace cleaks::cloud
