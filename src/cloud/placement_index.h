// PlacementIndex: incrementally-maintained server-occupancy index behind
// CloudProvider::pick_server().
//
// The pre-PR-10 provider rebuilt a full occupancy vector on every launch
// (O(servers) per placement). This index maintains the same information
// under add/remove of one instance and answers the three policy queries
// in O(log R) or amortized O(1):
//
//   * kRandom  — a Fenwick tree over the per-server "has room" flag gives
//     the non-full count and O(log R) selection of the r-th non-full
//     server *in index order*, which is exactly the candidate array the
//     old code indexed with its single RNG draw;
//   * kSpread / kBinPack — per-occupancy-level buckets (exact size
//     counters + lazy min-heaps of server indices) with two amortized
//     cursors: the spread floor only rises except when an update drops a
//     server below it, the pack ceiling only falls except when an update
//     raises one; stale heap entries are skipped at query time by
//     checking the live count.
//
// Queries return bitwise-identical servers to the historical linear scans
// (lowest index among minimal / maximal-below-cap occupancy; index-order
// candidates for kRandom), so placement sequences match the recorded
// pre-refactor goldens draw for draw (tests/provider_test.cpp).
#pragma once

#include <bit>
#include <cstdint>
#include <queue>
#include <vector>

namespace cleaks::cloud {

class PlacementIndex {
 public:
  PlacementIndex(int num_servers, int max_per_server)
      : num_servers_(num_servers),
        max_per_server_(max_per_server),
        non_full_(max_per_server > 0 ? num_servers : 0),
        counts_(static_cast<std::size_t>(num_servers), 0),
        fenwick_(static_cast<std::size_t>(num_servers) + 1, 0) {
    for (int server = 0; server < num_servers_; ++server) {
      if (max_per_server_ > 0) fenwick_add_(server, 1);
    }
    levels_.resize(1);
    levels_[0].size = static_cast<std::size_t>(num_servers_);
    std::vector<int> all(static_cast<std::size_t>(num_servers_));
    for (int server = 0; server < num_servers_; ++server) {
      all[static_cast<std::size_t>(server)] = server;
    }
    levels_[0].heap = MinHeap(std::greater<int>{}, std::move(all));
  }

  /// One instance placed on `server`.
  void add(int server) {
    const int level = counts_[static_cast<std::size_t>(server)]++;
    move_level_(server, level, level + 1);
    if (level < max_per_server_ && level + 1 >= max_per_server_) {
      --non_full_;
      fenwick_add_(server, -1);
    }
  }

  /// One instance removed from `server`.
  void remove(int server) {
    const int level = counts_[static_cast<std::size_t>(server)]--;
    move_level_(server, level, level - 1);
    if (level >= max_per_server_ && level - 1 < max_per_server_) {
      ++non_full_;
      fenwick_add_(server, 1);
    }
  }

  [[nodiscard]] int count(int server) const {
    return counts_[static_cast<std::size_t>(server)];
  }
  /// Servers with room for another instance.
  [[nodiscard]] int non_full_count() const noexcept { return non_full_; }

  /// The r-th (0-based) non-full server in index order — the same server
  /// the old code's candidates[r] named. O(log R) Fenwick select.
  /// Precondition: 0 <= r < non_full_count().
  [[nodiscard]] int nth_non_full(int r) const {
    int pos = 0;
    int remaining = r + 1;
    for (int step = std::bit_floor(static_cast<unsigned>(num_servers_));
         step > 0; step >>= 1) {
      const int next = pos + step;
      if (next <= num_servers_ &&
          fenwick_[static_cast<std::size_t>(next)] < remaining) {
        pos = next;
        remaining -= fenwick_[static_cast<std::size_t>(next)];
      }
    }
    return pos;  // servers are 1-based inside the tree
  }

  /// kSpread: lowest-index server among those with the globally minimal
  /// occupancy (over ALL servers — the historical scan ignored the cap).
  [[nodiscard]] int lowest_min_occupancy() {
    int level = spread_floor_;
    while (levels_[static_cast<std::size_t>(level)].size == 0) ++level;
    spread_floor_ = level;
    return lowest_at_level_(level);
  }

  /// kBinPack: lowest-index server among those with the maximal occupancy
  /// that still has room; -1 when every server is full.
  [[nodiscard]] int lowest_max_occupancy_below_cap() {
    int level = pack_ceil_;
    if (level > max_per_server_ - 1) level = max_per_server_ - 1;
    if (level >= static_cast<int>(levels_.size())) {
      level = static_cast<int>(levels_.size()) - 1;
    }
    while (level >= 0 && levels_[static_cast<std::size_t>(level)].size == 0) {
      --level;
    }
    pack_ceil_ = level;
    return level < 0 ? -1 : lowest_at_level_(level);
  }

 private:
  using MinHeap =
      std::priority_queue<int, std::vector<int>, std::greater<int>>;
  struct Level {
    std::size_t size = 0;  ///< exact population; heaps may hold stale extras
    MinHeap heap;
  };

  void fenwick_add_(int server, int delta) {
    for (int i = server + 1; i <= num_servers_; i += i & -i) {
      fenwick_[static_cast<std::size_t>(i)] += delta;
    }
  }

  void move_level_(int server, int from, int to) {
    --levels_[static_cast<std::size_t>(from)].size;
    if (to >= static_cast<int>(levels_.size())) {
      levels_.resize(static_cast<std::size_t>(to) + 1);
    }
    auto& dest = levels_[static_cast<std::size_t>(to)];
    ++dest.size;
    dest.heap.push(server);
    if (to < spread_floor_) spread_floor_ = to;
    if (to < max_per_server_ && to > pack_ceil_) pack_ceil_ = to;
  }

  /// Lowest live server at `level`. Pops stale heap entries (servers that
  /// moved on since they were pushed); a hit whose live count matches is
  /// correct regardless of which era pushed it. Precondition: size > 0.
  int lowest_at_level_(int level) {
    auto& bucket = levels_[static_cast<std::size_t>(level)];
    while (counts_[static_cast<std::size_t>(bucket.heap.top())] != level) {
      bucket.heap.pop();
    }
    return bucket.heap.top();
  }

  int num_servers_;
  int max_per_server_;
  int non_full_;
  std::vector<int> counts_;
  std::vector<int> fenwick_;  ///< 1-based; prefix sums of the room flag
  std::vector<Level> levels_;  ///< index = occupancy (may exceed the cap)
  int spread_floor_ = 0;  ///< lower bound on the minimal occupied level
  int pack_ceil_ = 0;     ///< upper bound on the maximal level below cap
};

}  // namespace cleaks::cloud
