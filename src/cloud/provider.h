// CloudProvider: the multi-tenant container service API, at fleet scale.
//
// Tenants launch and terminate container instances; the provider places
// them on servers (uniformly at random, as public container clouds do from
// the tenant's perspective), meters utilization-based billing, and exposes
// only the tenant-facing handle (TenantInstance — no server index;
// repeated launch/verify/terminate against this API is exactly the
// co-residence orchestration loop of §IV-C, and §IV-C tenants must infer
// placement through leakage channels, not read it off the control plane).
//
// Control-plane data structures (PR 10) are sized for CC1–CC5 fleets:
//
//   * placement — PlacementIndex (Fenwick tree + occupancy-level buckets)
//     answers every policy in O(log R) / amortized O(1) instead of the
//     historical O(R) occupancy rebuild, with bitwise-identical choices
//     and RNG draw structure (placement stays a single sequential stream
//     seeded by the constructor seed; draw bounds per launch are
//     unchanged, so sequences match the recorded pre-refactor goldens);
//   * instance table — a slab (std::vector slots + free list) keyed by a
//     monotonic uid, with hash indexes by container id and uid, intrusive
//     per-tenant lists in launch order (the billing fold order) and
//     per-server slot vectors (swap-remove): launch and terminate are
//     O(log R) + O(1) bookkeeping, no shared_ptr allocation on the batch
//     path, and tenant handles stay valid across arbitrary churn;
//   * billing rollups — per-tenant epoch-batched metering. Each step the
//     provider compares one usage marker per occupied server
//     (kernel::Host::nonroot_usage_marker via Datacenter::peek — no
//     wake/touch) to find *touched* tenants; only those walk their
//     instances. Untouched tenants accrue a deferred (dt × steps) run
//     that is settled — replayed reserve-charge by reserve-charge in
//     launch order — at the billing epoch, on any launch/terminate for
//     that tenant, or on a billing() query. Settling is bitwise-equal to
//     the historical every-instance-every-step walk because an idle
//     interval's usage terms are +0.0 identities (see cloud/billing.h).
//     Provider::step therefore costs O(servers + tenants + touched
//     instances), not O(instances).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/billing.h"
#include "cloud/datacenter.h"
#include "cloud/placement_index.h"
#include "container/container.h"

namespace cleaks::cloud {

/// Placement policy the provider uses for new instances. Tenants cannot
/// observe it directly — but it governs how hard co-residence is to
/// achieve (Varadarajan et al., cited by the paper, showed the cost is
/// low in practice).
enum class PlacementPolicy {
  kRandom,      ///< uniform choice over all servers
  kBinPack,     ///< fill the most-occupied server that still has room
  kSpread,      ///< least-occupied server first
};

std::string to_string(PlacementPolicy policy);

/// A tenant's view of one launched container instance. Deliberately omits
/// the server index (provider-internal; see CloudProvider::server_of for
/// the engine/test-side accessor).
struct TenantInstance {
  std::string tenant;
  std::string instance_id;  ///< container id
  std::uint64_t uid = 0;    ///< monotonic provider-wide instance uid
  std::shared_ptr<container::Container> handle;
};

class CloudProvider {
 public:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  /// Provider-internal instance record (one slab slot). Tenants see
  /// TenantInstance; simulation-side code (engine, tests, benches) may
  /// inspect the full record through find_instance()/find_uid().
  struct Instance {
    std::string tenant;
    std::string instance_id;
    std::uint64_t uid = 0;
    int server_index = -1;
    std::shared_ptr<container::Container> handle;
    std::uint64_t cpuacct_baseline_ns = 0;
    /// Billed vCPUs, pinned at launch (cpusets never change after
    /// allocate_cpuset; empty cpuset bills the host's full core count,
    /// exactly as the historical per-step recomputation did).
    int vcpus = 0;
    std::uint32_t tenant_slot = 0;
    std::uint32_t prev = kNil;  ///< tenant launch-order list links
    std::uint32_t next = kNil;
    std::uint32_t server_pos = 0;  ///< position in the per-server slot list
  };

  CloudProvider(Datacenter& datacenter, std::uint64_t seed,
                BillingRates rates = BillingRates{},
                PlacementPolicy placement = PlacementPolicy::kRandom,
                int max_instances_per_server = 8,
                SimDuration billing_epoch = kHour);

  /// Launch a container for `tenant` on a provider-chosen server. Both
  /// overloads route through one implementation; the default-config form
  /// only fills in the profile's container defaults first, so RNG stream
  /// consumption is identical.
  std::shared_ptr<TenantInstance> launch(const std::string& tenant);
  std::shared_ptr<TenantInstance> launch(const std::string& tenant,
                                         const container::ContainerConfig& config);

  /// Churn-engine batch forms: `count` launches (uids appended to `out`)
  /// and bulk terminates, with no per-instance shared_ptr allocation.
  void launch_batch(const std::string& tenant, int count,
                    std::vector<std::uint64_t>* out = nullptr);
  void launch_batch(const std::string& tenant, int count,
                    const container::ContainerConfig& config,
                    std::vector<std::uint64_t>* out = nullptr);
  int terminate_batch(const std::vector<std::uint64_t>& uids);
  /// Terminate the tenant's `count` oldest live instances (launch order).
  int terminate_oldest(const std::string& tenant, int count);

  bool terminate(const std::string& instance_id);
  bool terminate_uid(std::uint64_t uid);

  /// Advance the cloud (datacenter physics + billing metering).
  void step(SimDuration dt);

  [[nodiscard]] Datacenter& datacenter() noexcept { return *datacenter_; }
  /// Billing readout. Settles every pending rollup first so queries are
  /// exact at any instant, mid-epoch included.
  [[nodiscard]] BillingMeter& billing() {
    settle_all_();
    return billing_;
  }

  [[nodiscard]] PlacementPolicy placement() const noexcept {
    return placement_;
  }
  [[nodiscard]] std::size_t instance_count() const noexcept {
    return id_index_.size();
  }
  [[nodiscard]] int live_instances(const std::string& tenant) const;
  /// Full provider-side record, nullptr when unknown. The pointer is
  /// invalidated by the next launch (slab growth) — copy what you need.
  [[nodiscard]] const Instance* find_instance(
      const std::string& instance_id) const;
  [[nodiscard]] const Instance* find_uid(std::uint64_t uid) const;
  /// Placement of a live instance (-1 when unknown) — the simulation-side
  /// replacement for the old tenant-visible Instance::server_index.
  [[nodiscard]] int server_of(const std::string& instance_id) const;

 private:
  struct PendingRun {
    SimDuration dt = 0;
    std::uint64_t steps = 0;
  };
  struct Tenant {
    std::string name;
    std::uint32_t head = kNil;  ///< instance list in launch order
    std::uint32_t tail = kNil;
    std::uint32_t count = 0;
    BillingMeter::Account* account = nullptr;
    std::vector<PendingRun> pending;  ///< deferred idle billing intervals
    std::uint8_t touched = 0;         ///< scratch flag for the current step
  };

  [[nodiscard]] int pick_server();
  [[nodiscard]] std::uint32_t intern_tenant_(const std::string& tenant);
  std::uint32_t launch_impl_(std::uint32_t tenant_slot,
                             const container::ContainerConfig& config);
  void terminate_slot_(std::uint32_t slot);
  [[nodiscard]] container::ContainerConfig default_config_() const;
  /// Replay the tenant's deferred idle intervals (reserve charges in
  /// launch order, step-major — the historical fold order).
  void settle_tenant_(Tenant& tenant);
  void settle_all_();
  /// Per-step metering: marker scan -> eager walk for touched tenants,
  /// deferred run for the rest.
  void meter_(SimDuration dt);

  Datacenter* datacenter_;
  Rng placement_rng_;
  BillingMeter billing_;
  PlacementPolicy placement_;
  int max_instances_per_server_;
  SimDuration billing_epoch_;
  SimTime next_epoch_;

  PlacementIndex index_;
  std::vector<Instance> slab_;
  std::vector<std::uint32_t> free_slots_;
  std::unordered_map<std::string, std::uint32_t> id_index_;
  std::unordered_map<std::uint64_t, std::uint32_t> uid_index_;
  std::uint64_t next_uid_ = 1;

  std::vector<Tenant> tenants_;
  std::unordered_map<std::string, std::uint32_t> tenant_index_;
  std::vector<std::uint32_t> touched_scratch_;  ///< tenant slots, per step

  std::vector<std::vector<std::uint32_t>> server_slots_;
  std::vector<std::uint64_t> last_marker_;  ///< per-server usage markers
};

}  // namespace cleaks::cloud
