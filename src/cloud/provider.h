// CloudProvider: the multi-tenant container service API.
//
// Tenants launch and terminate container instances; the provider places
// them on servers (uniformly at random, as public container clouds do from
// the tenant's perspective), meters utilization-based billing, and exposes
// only the tenant-facing handle. Repeated launch/verify/terminate against
// this API is exactly the co-residence orchestration loop of §IV-C.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/billing.h"
#include "cloud/datacenter.h"
#include "container/container.h"

namespace cleaks::cloud {

/// Placement policy the provider uses for new instances. Tenants cannot
/// observe it directly — but it governs how hard co-residence is to
/// achieve (Varadarajan et al., cited by the paper, showed the cost is
/// low in practice).
enum class PlacementPolicy {
  kRandom,      ///< uniform choice over all servers
  kBinPack,     ///< fill the most-occupied server that still has room
  kSpread,      ///< least-occupied server first
};

std::string to_string(PlacementPolicy policy);

/// A tenant's view of one launched container instance.
struct Instance {
  std::string tenant;
  std::string instance_id;  ///< container id
  int server_index = -1;    ///< provider-internal (hidden from tenants)
  std::shared_ptr<container::Container> handle;
  std::uint64_t cpuacct_baseline_ns = 0;
};

class CloudProvider {
 public:
  CloudProvider(Datacenter& datacenter, std::uint64_t seed,
                BillingRates rates = BillingRates{},
                PlacementPolicy placement = PlacementPolicy::kRandom,
                int max_instances_per_server = 8);

  /// Launch a container for `tenant` on a provider-chosen server.
  std::shared_ptr<Instance> launch(const std::string& tenant);
  std::shared_ptr<Instance> launch(const std::string& tenant,
                                   const container::ContainerConfig& config);

  bool terminate(const std::string& instance_id);

  /// Advance the cloud (datacenter physics + billing metering).
  void step(SimDuration dt);

  [[nodiscard]] Datacenter& datacenter() noexcept { return *datacenter_; }
  [[nodiscard]] BillingMeter& billing() noexcept { return billing_; }
  [[nodiscard]] const std::vector<std::shared_ptr<Instance>>& instances()
      const noexcept {
    return instances_;
  }

  [[nodiscard]] PlacementPolicy placement() const noexcept {
    return placement_;
  }

 private:
  [[nodiscard]] int pick_server();
  [[nodiscard]] std::vector<int> occupancy() const;

  Datacenter* datacenter_;
  Rng placement_rng_;
  BillingMeter billing_;
  PlacementPolicy placement_;
  int max_instances_per_server_;
  std::vector<std::shared_ptr<Instance>> instances_;
};

}  // namespace cleaks::cloud
