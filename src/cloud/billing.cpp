#include "cloud/billing.h"

namespace cleaks::cloud {

void BillingMeter::charge(const std::string& tenant, int vcpus,
                          double cpu_seconds, SimDuration dt) {
  charge_account(accounts_[tenant], vcpus, cpu_seconds, dt);
}

void BillingMeter::charge_account(Account& account, int vcpus,
                                  double cpu_seconds, SimDuration dt) const {
  const double hours = to_seconds(dt) / 3600.0;
  account.cost += rates_.reserve_per_vcpu_hour * vcpus * hours;
  account.cost += rates_.usage_per_cpu_hour * (cpu_seconds / 3600.0);
  account.cpu_seconds += cpu_seconds;
}

void BillingMeter::charge_reserve(Account& account, int vcpus,
                                  SimDuration dt) const {
  const double hours = to_seconds(dt) / 3600.0;
  account.cost += rates_.reserve_per_vcpu_hour * vcpus * hours;
}

double BillingMeter::total_cost(const std::string& tenant) const {
  auto it = accounts_.find(tenant);
  return it == accounts_.end() ? 0.0 : it->second.cost;
}

double BillingMeter::cpu_hours(const std::string& tenant) const {
  auto it = accounts_.find(tenant);
  return it == accounts_.end() ? 0.0 : it->second.cpu_seconds / 3600.0;
}

}  // namespace cleaks::cloud
