// Cloud service profiles: the five commercial multi-tenancy container
// clouds of Table I (anonymized CC1..CC5 in the paper), plus the local
// testbed. Each profile fixes the hardware generation (whether RAPL/DTS
// exist at all) and the provider's pseudo-file hardening policy; together
// these reproduce Table I's per-cloud channel availability pattern.
#pragma once

#include <string>
#include <vector>

#include "fs/masking.h"
#include "hw/spec.h"

namespace cleaks::cloud {

struct CloudServiceProfile {
  std::string name;
  hw::HardwareSpec hardware;
  fs::MaskingPolicy policy;
  /// Whether new containers get dedicated cpusets (true on the clouds that
  /// sell fixed-core instances; enables the CC5-style restricted views).
  bool dedicated_cpusets = false;
  int default_container_cpus = 4;
  std::uint64_t default_memory_limit = 8ULL << 30;
};

/// The local Docker/LXC testbed: stock policy, modern hardware.
CloudServiceProfile local_testbed();

/// CC1: stock everything except /proc/sched_debug disabled via sysctl.
CloudServiceProfile cc1();
/// CC2: like CC1 (sched_debug hidden), everything else open.
CloudServiceProfile cc2();
/// CC3: masks /proc/sys/fs and the net_prio cgroup tree.
CloudServiceProfile cc3();
/// CC4: older (pre-Sandy-Bridge, no RAPL) fleet; masks timer_list,
/// sched_debug and the /sys device trees.
CloudServiceProfile cc4();
/// CC5: heaviest hardening — denies many host-state files outright and
/// presents tenant-scoped (restricted) views of cpu/memory files.
CloudServiceProfile cc5();

/// All five, in Table I column order.
std::vector<CloudServiceProfile> all_commercial_clouds();

}  // namespace cleaks::cloud
