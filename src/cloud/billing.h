// Utilization-based billing (§IV-B).
//
// Finer-grained cloud prices charge by actual CPU consumption on top of a
// small reservation fee. Rates are calibrated against the VMware OnDemand
// figures quoted in the paper: a 16-vCPU instance costs $2.87/month at 1%
// average utilization and $167.25/month at 100%.
//
// The account-handle API (account() + charge_account()/charge_reserve())
// exists for the provider's epoch-batched rollup: it caches one Account*
// per tenant (std::map nodes are pointer-stable) and replays deferred
// idle intervals without re-hashing the tenant name per charge.
// charge_reserve() is the reserve-only form of charge(): skipping the
// usage adds is bitwise-exact for an idle interval because accounts only
// ever accumulate non-negative finite values, and for such x, x += 0.0
// is an IEEE-754 identity (the +0.0 usage term and +0.0 cpu_seconds term
// of a zero-consumption charge() change no bits).
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/sim_time.h"

namespace cleaks::cloud {

struct BillingRates {
  /// $ per vCPU-hour of *reserved* capacity (the ~$2.87/month floor).
  double reserve_per_vcpu_hour = 0.000225;
  /// $ per CPU-hour actually consumed (the utilization component).
  double usage_per_cpu_hour = 0.0141;
};

class BillingMeter {
 public:
  struct Account {
    double cost = 0.0;
    double cpu_seconds = 0.0;
  };

  explicit BillingMeter(BillingRates rates = BillingRates{}) : rates_(rates) {}

  /// Charge one interval: `vcpus` reserved for `dt` of wall time during
  /// which `cpu_seconds` of CPU were consumed.
  void charge(const std::string& tenant, int vcpus, double cpu_seconds,
              SimDuration dt);

  /// The tenant's account (created on first use); the reference stays
  /// valid for the meter's lifetime.
  [[nodiscard]] Account& account(const std::string& tenant) {
    return accounts_[tenant];
  }
  /// charge() against a cached account handle — identical float ops in
  /// identical order.
  void charge_account(Account& account, int vcpus, double cpu_seconds,
                      SimDuration dt) const;
  /// Reserve-only charge: one interval of `dt` with zero consumption.
  /// Bitwise-equal to charge_account(account, vcpus, 0.0, dt) — see the
  /// header comment for the +0.0-identity argument.
  void charge_reserve(Account& account, int vcpus, SimDuration dt) const;

  [[nodiscard]] double total_cost(const std::string& tenant) const;
  [[nodiscard]] double cpu_hours(const std::string& tenant) const;

 private:
  BillingRates rates_;
  std::map<std::string, Account> accounts_;
};

}  // namespace cleaks::cloud
