// Utilization-based billing (§IV-B).
//
// Finer-grained cloud prices charge by actual CPU consumption on top of a
// small reservation fee. Rates are calibrated against the VMware OnDemand
// figures quoted in the paper: a 16-vCPU instance costs $2.87/month at 1%
// average utilization and $167.25/month at 100%.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/sim_time.h"

namespace cleaks::cloud {

struct BillingRates {
  /// $ per vCPU-hour of *reserved* capacity (the ~$2.87/month floor).
  double reserve_per_vcpu_hour = 0.000225;
  /// $ per CPU-hour actually consumed (the utilization component).
  double usage_per_cpu_hour = 0.0141;
};

class BillingMeter {
 public:
  explicit BillingMeter(BillingRates rates = BillingRates{}) : rates_(rates) {}

  /// Charge one interval: `vcpus` reserved for `dt` of wall time during
  /// which `cpu_seconds` of CPU were consumed.
  void charge(const std::string& tenant, int vcpus, double cpu_seconds,
              SimDuration dt);

  [[nodiscard]] double total_cost(const std::string& tenant) const;
  [[nodiscard]] double cpu_hours(const std::string& tenant) const;

 private:
  struct Account {
    double cost = 0.0;
    double cpu_seconds = 0.0;
  };
  BillingRates rates_;
  std::map<std::string, Account> accounts_;
};

}  // namespace cleaks::cloud
