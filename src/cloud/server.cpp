#include "cloud/server.h"

namespace cleaks::cloud {

Server::Server(std::string name, const CloudServiceProfile& profile,
               std::uint64_t seed, SimDuration prior_uptime)
    : name_(std::move(name)) {
  host_ = std::make_unique<kernel::Host>(name_, profile.hardware, seed,
                                         /*boot_time=*/0);
  host_->set_tick_duration(kSecond);  // data-center scale default
  if (prior_uptime > 0) host_->seed_prior_uptime(prior_uptime);
  fs_ = std::make_unique<fs::PseudoFs>(*host_);
  runtime_ = std::make_unique<container::ContainerRuntime>(*host_, *fs_,
                                                           profile.policy);
}

void Server::enable_benign_load(std::uint64_t seed,
                                workload::DiurnalParams params) {
  benign_load_ =
      std::make_unique<workload::DiurnalLoadGenerator>(*host_, seed, params);
}

void Server::enable_onoff_load(workload::OnOffParams params) {
  onoff_load_ = std::make_unique<workload::OnOffLoad>(*host_, params);
}

bool Server::idle_eligible() const noexcept {
  return benign_load_ == nullptr && runtime_->containers().empty() &&
         host_->coast_eligible();
}

bool Server::step(SimDuration dt) {
  host_->coast_sync();
  if (benign_load_) benign_load_->apply(host_->now());
  if (onoff_load_) onoff_load_->apply(host_->now());
  if (idle_eligible()) {
    host_->advance_idle(dt);
    return true;
  }
  host_->advance(dt);
  return false;
}

}  // namespace cleaks::cloud
