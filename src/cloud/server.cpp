#include "cloud/server.h"

namespace cleaks::cloud {

Server::Server(std::string name, const CloudServiceProfile& profile,
               std::uint64_t seed, SimDuration prior_uptime)
    : name_(std::move(name)) {
  host_ = std::make_unique<kernel::Host>(name_, profile.hardware, seed,
                                         /*boot_time=*/0);
  host_->set_tick_duration(kSecond);  // data-center scale default
  if (prior_uptime > 0) host_->seed_prior_uptime(prior_uptime);
  fs_ = std::make_unique<fs::PseudoFs>(*host_);
  runtime_ = std::make_unique<container::ContainerRuntime>(*host_, *fs_,
                                                           profile.policy);
}

void Server::enable_benign_load(std::uint64_t seed,
                                workload::DiurnalParams params) {
  benign_load_ =
      std::make_unique<workload::DiurnalLoadGenerator>(*host_, seed, params);
}

void Server::step(SimDuration dt) {
  if (benign_load_) benign_load_->apply(host_->now());
  host_->advance(dt);
}

}  // namespace cleaks::cloud
