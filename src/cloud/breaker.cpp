#include "cloud/breaker.h"

#include <algorithm>
#include <cmath>

namespace cleaks::cloud {

bool CircuitBreaker::observe(double power_w, SimDuration dt) {
  max_power_w_ = std::max(max_power_w_, power_w);
  if (tripped_) return false;
  const double dt_sec = to_seconds(dt);
  if (power_w >= spec_.rated_w * spec_.instant_trip_factor) {
    tripped_ = true;  // magnetic element
    return true;
  }
  const double overload = power_w / spec_.rated_w - 1.0;
  if (overload > 0.0) {
    thermal_ += overload * dt_sec;
    if (thermal_ >= spec_.thermal_capacity) {
      tripped_ = true;
      return true;
    }
  } else {
    thermal_ *= std::exp(-dt_sec / spec_.cooling_tau_s);
  }
  return false;
}

}  // namespace cleaks::cloud
