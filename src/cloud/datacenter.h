// Datacenter: racks of servers behind shared branch circuit breakers, with
// power oversubscription and (optionally) a minute-granularity rack power
// capper — the §II-C environment the synergistic power attack targets.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cloud/breaker.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "hw/batched_physics.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/thread_pool.h"

namespace cleaks::cloud {

struct DatacenterConfig {
  int num_racks = 1;
  int servers_per_rack = 8;
  CloudServiceProfile profile = cc1();
  BreakerSpec rack_breaker;
  /// Rack power cap (W, 0 disables). Enforcement reacts only once per
  /// `capping_interval` — the minute-level delay of §II-C that leaves the
  /// window for short spikes.
  double rack_power_cap_w = 0.0;
  SimDuration capping_interval = kMinute;
  bool benign_load = true;
  std::uint64_t seed = 42;
  /// Lanes used to step servers concurrently (0 = ThreadPool default: the
  /// CLEAKS_THREADS env var, else hardware concurrency; 1 = serial). Each
  /// server owns its whole state and its own RNG stream, so stepping is
  /// embarrassingly parallel and *bitwise deterministic*: every thread
  /// count produces the identical power trace.
  int num_threads = 0;
};

class Datacenter {
 public:
  explicit Datacenter(DatacenterConfig config);

  /// Advance the whole facility by `dt`: all servers step (concurrently,
  /// see DatacenterConfig::num_threads), then breakers and cappers observe
  /// the resulting rack power on the calling thread.
  void step(SimDuration dt);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] int num_servers() const noexcept {
    return static_cast<int>(servers_.size());
  }
  [[nodiscard]] Server& server(int index) { return *servers_.at(index); }
  [[nodiscard]] int rack_of(int server_index) const noexcept {
    return server_index / config_.servers_per_rack;
  }
  [[nodiscard]] CircuitBreaker& rack_breaker(int rack) {
    return breakers_.at(static_cast<std::size_t>(rack));
  }
  [[nodiscard]] double rack_power_w(int rack) const;
  [[nodiscard]] double total_power_w() const;
  [[nodiscard]] bool any_breaker_tripped() const;
  [[nodiscard]] const DatacenterConfig& config() const noexcept {
    return config_;
  }

 private:
  void apply_rack_capping(int rack);

  DatacenterConfig config_;
  SimTime now_ = 0;
  ThreadPool pool_;
  /// Facility SoA physics plane (batched mode). Declared before servers_ so
  /// the bound lane slices outlive every Host.
  std::unique_ptr<hw::BatchedPhysics> physics_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<CircuitBreaker> breakers_;
  std::vector<double> rack_energy_since_cap_j_;  ///< for the capper's average
  SimTime last_cap_check_ = 0;
  std::uint64_t allocs_avoided_flushed_ = 0;  ///< metric high-water mark
};

}  // namespace cleaks::cloud
