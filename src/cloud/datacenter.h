// Datacenter: racks of servers behind shared branch circuit breakers, with
// power oversubscription and (optionally) a minute-granularity rack power
// capper — the §II-C environment the synergistic power attack targets.
//
// Sparse stepping (event-driven): every server runs coast-enabled (see
// kernel/host.h). In sparse mode the facility keeps a timer wheel of each
// sleeping server's next-interesting-time (on/off workload phase edges);
// a step then defers idle intervals in O(1) for sleeping servers and runs
// full physics only for active ones, waking a sleeper when its wheel entry
// pops or an external mutation ends its coast episode. Dense mode steps
// every server every step through the identical per-step predicate, so
// both modes produce bitwise-identical state — sparse only changes *when*
// idle time is materialised, never what it materialises to
// (tests/sparse_test.cpp, bench/scaling_sparse.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/breaker.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "hw/batched_physics.h"
#include "util/event_core.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/thread_pool.h"

namespace cleaks::cloud {

struct DatacenterConfig {
  int num_racks = 1;
  int servers_per_rack = 8;
  CloudServiceProfile profile = cc1();
  BreakerSpec rack_breaker;
  /// Rack power cap (W, 0 disables). Enforcement reacts only once per
  /// `capping_interval` — the minute-level delay of §II-C that leaves the
  /// window for short spikes.
  double rack_power_cap_w = 0.0;
  SimDuration capping_interval = kMinute;
  bool benign_load = true;
  /// With benign_load, attach the diurnal generator to only the first N
  /// servers (-1 = all). Scale benches use this to build mostly-idle
  /// facilities with a controlled active fraction; the default preserves
  /// the historical per-server RNG draw sequence exactly.
  int benign_load_servers = -1;
  std::uint64_t seed = 42;
  /// Lanes used to step servers concurrently (0 = ThreadPool default: the
  /// CLEAKS_THREADS env var, else hardware concurrency; 1 = serial). Each
  /// server owns its whole state and its own RNG stream, so stepping is
  /// embarrassingly parallel and *bitwise deterministic*: every thread
  /// count produces the identical power trace.
  int num_threads = 0;
  /// Sparse stepping mode: -1 = auto (the CLEAKS_SPARSE env var, default
  /// on), 0 = dense reference (every server steps every interval; kept
  /// green for one deprecation PR), 1 = sparse. Both modes are
  /// bitwise-identical; sparse is the fast path.
  int sparse = -1;
};

class Datacenter {
 public:
  explicit Datacenter(DatacenterConfig config);

  /// Advance the whole facility by `dt`: active servers step (concurrently,
  /// see DatacenterConfig::num_threads), sleeping servers coast, then
  /// breakers and cappers observe the resulting rack power on the calling
  /// thread.
  void step(SimDuration dt);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] int num_servers() const noexcept {
    return static_cast<int>(servers_.size());
  }
  /// Non-const access syncs the server's pending coast time (Server
  /// accessors sync again on use; this keeps even direct reads of
  /// server(i).host() via the const overload coherent).
  [[nodiscard]] Server& server(int index) {
    Server& server = *servers_.at(static_cast<std::size_t>(index));
    server.coast_sync();
    return server;
  }
  [[nodiscard]] int rack_of(int server_index) const noexcept {
    return server_index / config_.servers_per_rack;
  }
  [[nodiscard]] CircuitBreaker& rack_breaker(int rack) {
    return breakers_.at(static_cast<std::size_t>(rack));
  }
  [[nodiscard]] double rack_power_w(int rack) const;
  [[nodiscard]] double total_power_w() const;
  [[nodiscard]] bool any_breaker_tripped() const;
  [[nodiscard]] const DatacenterConfig& config() const noexcept {
    return config_;
  }
  /// Whether this facility skips sleeping servers (resolved from
  /// DatacenterConfig::sparse / CLEAKS_SPARSE).
  [[nodiscard]] bool sparse() const noexcept { return sparse_; }
  /// Servers currently parked on the wheel (sparse bookkeeping; 0 dense).
  [[nodiscard]] int sleeping_servers() const noexcept;

 private:
  void apply_rack_capping(int rack);

  DatacenterConfig config_;
  SimTime now_ = 0;
  ThreadPool pool_;
  bool sparse_ = true;
  /// Facility SoA physics plane (batched mode). Declared before servers_ so
  /// the bound lane slices outlive every Host.
  std::unique_ptr<hw::BatchedPhysics> physics_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<CircuitBreaker> breakers_;
  std::vector<double> rack_energy_since_cap_j_;  ///< for the capper's average
  SimTime last_cap_check_ = 0;
  std::uint64_t allocs_avoided_flushed_ = 0;  ///< metric high-water mark

  // Sparse scheduling state. Per-server flags are written only by the lane
  // that owns the server during the parallel phase and read serially after
  // the join.
  TimerWheel wheel_;
  std::vector<std::uint8_t> sleeping_;
  std::vector<std::uint8_t> due_wake_;
  std::vector<std::uint8_t> coasted_;  ///< this step coasted (both modes)
  std::uint64_t coasted_ns_total_ = 0;
  std::uint64_t coasted_s_flushed_ = 0;  ///< counter high-water mark
  std::vector<std::uint32_t> due_ids_;  ///< this step's wheel pops (scratch)
  // Post-step aggregation caches, refreshed whenever a server takes a real
  // step. Both values are pinned while a server coasts (power at episode
  // entry, no physics steps to avoid allocations in), so reading the cache
  // is exactly reading the server — without the per-server pointer chase
  // that would otherwise dominate sparse facility steps.
  std::vector<double> power_w_;
  std::vector<std::uint64_t> allocs_avoided_;
};

}  // namespace cleaks::cloud
