// Datacenter: racks of servers behind shared branch circuit breakers, with
// power oversubscription and (optionally) a minute-granularity rack power
// capper — the §II-C environment the synergistic power attack targets.
//
// Event-driven stepping: every server runs coast-enabled (kernel/host.h)
// and the facility keeps one scheduler state:
//
//   * the *active list* — servers that take a real step every interval;
//   * *parked* servers — provably idle, sitting on a bucketed TimerWheel
//     keyed by their next-interesting-time. A parked server is not
//     visited at all: the clock it owes is deferred in one O(1) call when
//     it wakes (coast split-invariance makes that bitwise-equal to
//     per-step defers), and its telemetry contributions (power histogram,
//     coasted-seconds, rack/facility power) are carried by edge-maintained
//     aggregates updated only on park/wake transitions.
//
// A step therefore costs O(stepped servers + racks), not O(N). Wakeups:
// a wheel pop (on/off phase edge), or an external mutation reaching the
// server through Datacenter::server(i) — the accessor catches up owed
// idle time and marks the server for a wake-phase recheck, which unparks
// it when its coast episode ended (and re-arms its wheel entry when not).
// The former dense mode (CLEAKS_SPARSE=0) is now simply the never-park
// schedule of this same path: every server stays on the active list, so
// it retains the historical visit-every-server behavior for reference
// runs without a second code branch (tests/sparse_test.cpp pins the
// recorded dense-era goldens and the mode equality).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/breaker.h"
#include "cloud/profiles.h"
#include "cloud/server.h"
#include "hw/batched_physics.h"
#include "util/event_core.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/thread_pool.h"

namespace cleaks::cloud {

struct DatacenterConfig {
  int num_racks = 1;
  int servers_per_rack = 8;
  CloudServiceProfile profile = cc1();
  BreakerSpec rack_breaker;
  /// Rack power cap (W, 0 disables). Enforcement reacts only once per
  /// `capping_interval` — the minute-level delay of §II-C that leaves the
  /// window for short spikes.
  double rack_power_cap_w = 0.0;
  SimDuration capping_interval = kMinute;
  bool benign_load = true;
  /// With benign_load, attach the diurnal generator to only the first N
  /// servers (-1 = all). Scale benches use this to build mostly-idle
  /// facilities with a controlled active fraction; the default preserves
  /// the historical per-server RNG draw sequence exactly.
  int benign_load_servers = -1;
  std::uint64_t seed = 42;
  /// Lanes used to step servers concurrently (0 = ThreadPool default: the
  /// CLEAKS_THREADS env var, else hardware concurrency; 1 = serial). Each
  /// server owns its whole state and its own RNG stream, so stepping is
  /// embarrassingly parallel and *bitwise deterministic*: every thread
  /// count produces the identical power trace.
  int num_threads = 0;
  /// Sparse stepping mode: -1 = auto (the CLEAKS_SPARSE env var, strictly
  /// parsed — non-numeric values mean "default", which is on), 0 =
  /// never-park reference schedule (every server steps every interval),
  /// 1 = sparse. One code path either way; both settings are
  /// bitwise-identical and sparse is the fast one.
  int sparse = -1;
};

class Datacenter {
 public:
  explicit Datacenter(DatacenterConfig config);

  /// Advance the whole facility by `dt`: wake due sleepers, step the
  /// active list (concurrently, see DatacenterConfig::num_threads), then
  /// let breakers and cappers observe the resulting rack power on the
  /// calling thread, and finally park every server that is provably idle.
  void step(SimDuration dt);

  /// How many whole steps of `dt`, starting now, are *globally
  /// uninteresting*: every server parked, no pending rechecks, no wheel
  /// pop and no capping window inside them. 0 whenever any server is
  /// active. Bounded by `max_steps`. The engine uses this to take one
  /// variable-length stride across idle stretches (step_coalesced).
  [[nodiscard]] std::uint64_t coalescible_steps(
      SimDuration dt, std::uint64_t max_steps) const;

  /// Advance `k` steps of `dt` at once. Precondition: k <=
  /// coalescible_steps(dt, k) — asserted in debug builds, and falls back
  /// to plain per-step execution otherwise. Per-step float state
  /// (breaker thermal integration, rack energy windows) is replayed
  /// serially per virtual step so the result is bitwise-identical to k
  /// plain step() calls; integer telemetry lands in bulk.
  void step_coalesced(SimDuration dt, std::uint64_t k);

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] int num_servers() const noexcept {
    return static_cast<int>(servers_.size());
  }
  /// Non-const access catches the server up (a parked server is owed the
  /// idle time since it parked; deferring + syncing materialises it) and
  /// marks it for a wake-phase recheck — the caller may be about to
  /// mutate state that ends its coast episode, and a parked server is
  /// never re-examined unless something says so.
  [[nodiscard]] Server& server(int index) {
    touch_(static_cast<std::size_t>(index));
    return *servers_.at(static_cast<std::size_t>(index));
  }
  /// Read-only access that does NOT touch or wake: safe for scans that
  /// must not end coast episodes or schedule rechecks (the provider's
  /// billing rollup reads per-host usage markers through this every
  /// step). A parked server's marker cannot be stale — markers only move
  /// when a scheduler tick runs, which parked servers by definition
  /// don't.
  [[nodiscard]] const Server& peek(int index) const {
    return *servers_.at(static_cast<std::size_t>(index));
  }
  [[nodiscard]] int rack_of(int server_index) const noexcept {
    return server_index / config_.servers_per_rack;
  }
  [[nodiscard]] CircuitBreaker& rack_breaker(int rack) {
    return breakers_.at(static_cast<std::size_t>(rack));
  }
  /// Rack / facility power after the last step. O(1): incrementally
  /// maintained per-rack sums (recomputed as fresh index-order folds for
  /// racks whose servers stepped — bit-identical to the historical O(N)
  /// fold); the facility total is the fold of the rack sums in rack
  /// order.
  [[nodiscard]] double rack_power_w(int rack) const {
    return rack_power_cache_.at(static_cast<std::size_t>(rack));
  }
  [[nodiscard]] double total_power_w() const noexcept {
    return total_power_cache_;
  }
  [[nodiscard]] bool any_breaker_tripped() const;
  [[nodiscard]] const DatacenterConfig& config() const noexcept {
    return config_;
  }
  /// Whether this facility parks sleeping servers (resolved from
  /// DatacenterConfig::sparse / CLEAKS_SPARSE via util::env_long).
  [[nodiscard]] bool sparse() const noexcept { return sparse_; }
  /// Servers currently parked on the wheel. O(1).
  [[nodiscard]] int sleeping_servers() const noexcept {
    return static_cast<int>(parked_count_);
  }

 private:
  void apply_rack_capping(int rack);
  /// Catch up a parked server's owed idle time and flag it for the next
  /// wake-phase recheck; syncs pending coast time either way.
  void touch_(std::size_t index);
  /// Unpark: defer owed time, retire the parked aggregates, rejoin the
  /// active list.
  void wake_(std::uint32_t index);
  /// Park an active server (at position `pos` in the active list): record
  /// its pinned telemetry into the parked aggregates, swap-remove it from
  /// the active list, arm its wheel entry.
  void park_(std::uint32_t index, std::size_t pos);
  void mark_rack_dirty_(int rack) {
    auto& flag = rack_dirty_[static_cast<std::size_t>(rack)];
    if (flag == 0) {
      flag = 1;
      dirty_racks_.push_back(static_cast<std::uint32_t>(rack));
    }
  }

  DatacenterConfig config_;
  SimTime now_ = 0;
  ThreadPool pool_;
  bool sparse_ = true;
  /// Facility SoA physics plane (batched mode). Declared before servers_ so
  /// the bound lane slices outlive every Host.
  std::unique_ptr<hw::BatchedPhysics> physics_;
  std::vector<std::unique_ptr<Server>> servers_;
  std::vector<CircuitBreaker> breakers_;
  std::vector<double> rack_energy_since_cap_j_;  ///< for the capper's average
  SimTime last_cap_check_ = 0;
  std::uint64_t allocs_avoided_flushed_ = 0;  ///< metric high-water mark

  // Scheduler state. Per-server flags are written only by the lane that
  // owns the server during the parallel phase and read serially after the
  // join; the active list and every parked aggregate mutate only in the
  // serial wake/sleep phases, in deterministic order.
  TimerWheel wheel_;
  std::vector<std::uint32_t> active_ids_;  ///< servers stepped each interval
  std::vector<std::uint8_t> sleeping_;     ///< parked on the wheel
  std::vector<std::uint8_t> coasted_;      ///< last step coasted (stepped set)
  std::vector<std::uint8_t> recheck_pending_;  ///< touched while parked
  std::vector<std::uint32_t> recheck_ids_;     ///< wake-phase recheck queue
  std::vector<SimTime> parked_at_;  ///< park / last catch-up instant
  std::uint64_t parked_count_ = 0;
  // Parked telemetry aggregates: everything a parked server would have
  // contributed per step, pre-binned. Integer throughout, added and
  // removed with the identical pinned values, so one bulk apply per step
  // is bitwise-equal to visiting every parked server.
  std::vector<std::uint64_t> parked_power_slots_;  ///< histogram slot counts
  std::vector<std::uint8_t> parked_slot_;  ///< per-server slot at park time
  std::vector<std::uint64_t> parked_mw_;   ///< per-server mW at park time
  std::uint64_t parked_mw_sum_ = 0;
  std::uint64_t parked_allocs_sum_ = 0;
  std::uint64_t coasted_ns_total_ = 0;
  std::uint64_t coasted_s_flushed_ = 0;  ///< counter high-water mark
  // Incremental power aggregation: per-rack sums recomputed only for
  // racks that had a stepped server, facility total folded from them.
  std::vector<double> rack_power_cache_;
  double total_power_cache_ = 0.0;
  std::vector<std::uint8_t> rack_dirty_;
  std::vector<std::uint32_t> dirty_racks_;
  // Post-step aggregation caches, refreshed whenever a server takes a real
  // step. Both values are pinned while a server coasts (power at episode
  // entry, no physics steps to avoid allocations in), so reading the cache
  // is exactly reading the server — without the per-server pointer chase
  // that would otherwise dominate sparse facility steps.
  std::vector<double> power_w_;
  std::vector<std::uint64_t> allocs_avoided_;
};

}  // namespace cleaks::cloud
