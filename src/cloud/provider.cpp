#include "cloud/provider.h"

#include <algorithm>

#include "obs/events.h"
#include "util/strings.h"

namespace cleaks::cloud {

std::string to_string(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kRandom:
      return "random";
    case PlacementPolicy::kBinPack:
      return "bin-pack";
    case PlacementPolicy::kSpread:
      return "spread";
  }
  return "?";
}

CloudProvider::CloudProvider(Datacenter& datacenter, std::uint64_t seed,
                             BillingRates rates, PlacementPolicy placement,
                             int max_instances_per_server)
    : datacenter_(&datacenter),
      placement_rng_(seed),
      billing_(rates),
      placement_(placement),
      max_instances_per_server_(max_instances_per_server) {}

std::vector<int> CloudProvider::occupancy() const {
  std::vector<int> counts(static_cast<std::size_t>(datacenter_->num_servers()),
                          0);
  for (const auto& instance : instances_) {
    ++counts[static_cast<std::size_t>(instance->server_index)];
  }
  return counts;
}

int CloudProvider::pick_server() {
  const auto counts = occupancy();
  const int total = datacenter_->num_servers();
  switch (placement_) {
    case PlacementPolicy::kRandom: {
      // Random among servers with room (all, when none is full).
      std::vector<int> candidates;
      for (int server = 0; server < total; ++server) {
        if (counts[static_cast<std::size_t>(server)] <
            max_instances_per_server_) {
          candidates.push_back(server);
        }
      }
      if (candidates.empty()) {
        return static_cast<int>(placement_rng_.uniform_u64(0, total - 1));
      }
      return candidates[placement_rng_.uniform_u64(0, candidates.size() - 1)];
    }
    case PlacementPolicy::kBinPack: {
      int best = -1;
      for (int server = 0; server < total; ++server) {
        const int count = counts[static_cast<std::size_t>(server)];
        if (count >= max_instances_per_server_) continue;
        if (best < 0 || count > counts[static_cast<std::size_t>(best)]) {
          best = server;
        }
      }
      return best < 0 ? 0 : best;
    }
    case PlacementPolicy::kSpread: {
      int best = 0;
      for (int server = 1; server < total; ++server) {
        if (counts[static_cast<std::size_t>(server)] <
            counts[static_cast<std::size_t>(best)]) {
          best = server;
        }
      }
      return best;
    }
  }
  return 0;
}

std::shared_ptr<Instance> CloudProvider::launch(const std::string& tenant) {
  container::ContainerConfig config;
  const auto& profile = datacenter_->config().profile;
  config.num_cpus = profile.default_container_cpus;
  config.memory_limit_bytes = profile.default_memory_limit;
  return launch(tenant, config);
}

std::shared_ptr<Instance> CloudProvider::launch(
    const std::string& tenant, const container::ContainerConfig& config) {
  const int server_index = pick_server();
  auto& server = datacenter_->server(server_index);
  auto handle = server.runtime().create(config);

  auto instance = std::make_shared<Instance>();
  instance->tenant = tenant;
  instance->instance_id = handle->id();
  instance->server_index = server_index;
  instance->handle = handle;
  instance->cpuacct_baseline_ns = handle->cgroup()->cpuacct.total_usage_ns();
  instances_.push_back(instance);
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    bus.emit(obs::EventKind::kContainerLifecycle, datacenter_->now(),
             static_cast<std::uint32_t>(server_index), /*a=*/1,
             fnv1a64(instance->instance_id));
  }
  return instance;
}

bool CloudProvider::terminate(const std::string& instance_id) {
  auto it = std::find_if(instances_.begin(), instances_.end(),
                         [&](const auto& instance) {
                           return instance->instance_id == instance_id;
                         });
  if (it == instances_.end()) return false;
  auto instance = *it;
  datacenter_->server(instance->server_index)
      .runtime()
      .destroy(instance->instance_id);
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    bus.emit(obs::EventKind::kContainerLifecycle, datacenter_->now(),
             static_cast<std::uint32_t>(instance->server_index), /*a=*/0,
             fnv1a64(instance->instance_id));
  }
  instances_.erase(it);
  return true;
}

void CloudProvider::step(SimDuration dt) {
  datacenter_->step(dt);
  for (auto& instance : instances_) {
    const std::uint64_t usage_ns =
        instance->handle->cgroup()->cpuacct.total_usage_ns();
    const double cpu_seconds =
        static_cast<double>(usage_ns - instance->cpuacct_baseline_ns) / 1e9;
    instance->cpuacct_baseline_ns = usage_ns;
    const int vcpus =
        instance->handle->cpuset().empty()
            ? instance->handle->host().spec().num_cores
            : static_cast<int>(instance->handle->cpuset().size());
    billing_.charge(instance->tenant, vcpus, cpu_seconds, dt);
  }
}

}  // namespace cleaks::cloud
