#include "cloud/provider.h"

#include "obs/events.h"
#include "obs/metrics.h"
#include "util/cycle_timer.h"
#include "util/strings.h"

namespace cleaks::cloud {
namespace {

// Control-plane telemetry. Launch/terminate/storm/epoch counts derive
// from simulated state only (Scope::kSim, lane-count independent); the
// settle/deferral counters are cost-accounting for the rollup strategy
// and stay out of the kSim digest, like the facility's allocs-avoided
// counter.
struct ProviderMetrics {
  obs::Counter& launches = obs::Registry::global().counter(
      "provider_launches_total", "instances launched by the provider");
  obs::Counter& terminates = obs::Registry::global().counter(
      "provider_terminates_total", "instances terminated by the provider");
  obs::Counter& epoch_settles = obs::Registry::global().counter(
      "provider_billing_epoch_settles_total",
      "billing epochs that settled deferred rollups in step()");
  obs::Counter& touched_instance_steps = obs::Registry::global().counter(
      "provider_billing_touched_instance_steps_total",
      "instance-steps metered eagerly (tenant had usage movement)",
      obs::Scope::kRuntime);
  obs::Counter& deferred_tenant_steps = obs::Registry::global().counter(
      "provider_billing_deferred_tenant_steps_total",
      "tenant-steps deferred to a pending rollup instead of walked",
      obs::Scope::kRuntime);
  obs::Counter& control_cycles = obs::Registry::global().counter(
      "provider_step_control_cycles_total",
      "cycles spent in step()'s control plane (metering + epoch rollup), "
      "excluding datacenter physics; unit = util/cycle_timer.h source",
      obs::Scope::kRuntime);
  obs::Counter& launch_control_cycles = obs::Registry::global().counter(
      "provider_launch_control_cycles_total",
      "cycles spent in launch's control plane (settle + placement pick + "
      "slab/index maintenance), excluding the container runtime create",
      obs::Scope::kRuntime);
  obs::Counter& terminate_control_cycles = obs::Registry::global().counter(
      "provider_terminate_control_cycles_total",
      "cycles spent in terminate's control plane (settle + slab/index "
      "removal), excluding the container runtime destroy",
      obs::Scope::kRuntime);

  static ProviderMetrics& get() {
    static ProviderMetrics metrics;
    return metrics;
  }
};

}  // namespace

std::string to_string(PlacementPolicy policy) {
  // Exhaustive switch (no default): a new policy that misses a case fails
  // -Wswitch instead of silently stringifying wrong.
  switch (policy) {
    case PlacementPolicy::kRandom:
      return "random";
    case PlacementPolicy::kBinPack:
      return "bin-pack";
    case PlacementPolicy::kSpread:
      return "spread";
  }
  return "?";
}

CloudProvider::CloudProvider(Datacenter& datacenter, std::uint64_t seed,
                             BillingRates rates, PlacementPolicy placement,
                             int max_instances_per_server,
                             SimDuration billing_epoch)
    : datacenter_(&datacenter),
      placement_rng_(seed),
      billing_(rates),
      placement_(placement),
      max_instances_per_server_(max_instances_per_server),
      billing_epoch_(billing_epoch),
      next_epoch_(datacenter.now() + billing_epoch),
      index_(datacenter.num_servers(), max_instances_per_server),
      server_slots_(static_cast<std::size_t>(datacenter.num_servers())),
      last_marker_(static_cast<std::size_t>(datacenter.num_servers()), 0) {
  // Slot vectors can never exceed the placement cap (kSpread ignores the
  // cap only when every server is full, in which case nothing launches),
  // so pre-sizing removes per-server growth reallocations from the
  // launch hot path.
  if (max_instances_per_server_ > 0) {
    for (auto& slots : server_slots_) {
      slots.reserve(static_cast<std::size_t>(max_instances_per_server_));
    }
  }
}

int CloudProvider::pick_server() {
  const int total = datacenter_->num_servers();
  switch (placement_) {
    case PlacementPolicy::kRandom: {
      // Random among servers with room (all, when none is full). Same
      // single draw with the same bounds as the historical candidate
      // array, so the RNG stream position matches the goldens.
      const int room = index_.non_full_count();
      if (room == 0) {
        return static_cast<int>(placement_rng_.uniform_u64(0, total - 1));
      }
      return index_.nth_non_full(
          static_cast<int>(placement_rng_.uniform_u64(0, room - 1)));
    }
    case PlacementPolicy::kBinPack: {
      const int best = index_.lowest_max_occupancy_below_cap();
      return best < 0 ? 0 : best;
    }
    case PlacementPolicy::kSpread:
      return index_.lowest_min_occupancy();
  }
  return 0;
}

container::ContainerConfig CloudProvider::default_config_() const {
  container::ContainerConfig config;
  const auto& profile = datacenter_->config().profile;
  config.num_cpus = profile.default_container_cpus;
  config.memory_limit_bytes = profile.default_memory_limit;
  return config;
}

std::uint32_t CloudProvider::intern_tenant_(const std::string& tenant) {
  auto [it, inserted] =
      tenant_index_.emplace(tenant, static_cast<std::uint32_t>(tenants_.size()));
  if (inserted) {
    Tenant record;
    record.name = tenant;
    record.account = &billing_.account(tenant);
    tenants_.push_back(std::move(record));
  }
  return it->second;
}

std::uint32_t CloudProvider::launch_impl_(
    std::uint32_t tenant_slot, const container::ContainerConfig& config) {
  const std::uint64_t control_start = read_cycle_counter();
  // Settle BEFORE linking: the tenant's deferred intervals predate this
  // instance, so the replay must not see it.
  settle_tenant_(tenants_[tenant_slot]);

  const int server_index = pick_server();
  auto& server = datacenter_->server(server_index);
  const std::uint64_t create_start = read_cycle_counter();
  auto handle = server.runtime().create(config);
  const std::uint64_t create_cycles = read_cycle_counter() - create_start;

  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
  }
  Tenant& tenant = tenants_[tenant_slot];
  Instance& inst = slab_[slot];
  inst.tenant = tenant.name;
  inst.instance_id = handle->id();
  inst.uid = next_uid_++;
  inst.server_index = server_index;
  inst.handle = std::move(handle);
  inst.cpuacct_baseline_ns = inst.handle->cgroup()->cpuacct.total_usage_ns();
  inst.vcpus = inst.handle->cpuset().empty()
                   ? inst.handle->host().spec().num_cores
                   : static_cast<int>(inst.handle->cpuset().size());
  inst.tenant_slot = tenant_slot;
  inst.prev = tenant.tail;
  inst.next = kNil;
  if (tenant.tail != kNil) {
    slab_[tenant.tail].next = slot;
  } else {
    tenant.head = slot;
  }
  tenant.tail = slot;
  ++tenant.count;

  auto& slots = server_slots_[static_cast<std::size_t>(server_index)];
  inst.server_pos = static_cast<std::uint32_t>(slots.size());
  slots.push_back(slot);
  index_.add(server_index);
  id_index_.emplace(inst.instance_id, slot);
  uid_index_.emplace(inst.uid, slot);

  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    bus.emit(obs::EventKind::kContainerLifecycle, datacenter_->now(),
             static_cast<std::uint32_t>(server_index), /*a=*/1,
             fnv1a64(inst.instance_id));
  }
  auto& metrics = ProviderMetrics::get();
  metrics.launches.inc();
  metrics.launch_control_cycles.inc(read_cycle_counter() - control_start -
                                    create_cycles);
  return slot;
}

std::shared_ptr<TenantInstance> CloudProvider::launch(
    const std::string& tenant) {
  return launch(tenant, default_config_());
}

std::shared_ptr<TenantInstance> CloudProvider::launch(
    const std::string& tenant, const container::ContainerConfig& config) {
  const std::uint32_t slot = launch_impl_(intern_tenant_(tenant), config);
  const Instance& inst = slab_[slot];
  auto view = std::make_shared<TenantInstance>();
  view->tenant = inst.tenant;
  view->instance_id = inst.instance_id;
  view->uid = inst.uid;
  view->handle = inst.handle;
  return view;
}

void CloudProvider::launch_batch(const std::string& tenant, int count,
                                 std::vector<std::uint64_t>* out) {
  launch_batch(tenant, count, default_config_(), out);
}

void CloudProvider::launch_batch(const std::string& tenant, int count,
                                 const container::ContainerConfig& config,
                                 std::vector<std::uint64_t>* out) {
  const std::uint32_t tenant_slot = intern_tenant_(tenant);
  // Batches announce their size — reserve up front so the hash indexes
  // never rehash mid-batch (a single 1M-instance rehash walks gigabytes).
  const std::size_t target =
      id_index_.size() + static_cast<std::size_t>(count > 0 ? count : 0);
  id_index_.reserve(target);
  uid_index_.reserve(target);
  slab_.reserve(slab_.size() + static_cast<std::size_t>(count > 0 ? count : 0));
  if (out != nullptr) {
    out->reserve(out->size() + static_cast<std::size_t>(count > 0 ? count : 0));
  }
  for (int i = 0; i < count; ++i) {
    const std::uint32_t slot = launch_impl_(tenant_slot, config);
    if (out != nullptr) out->push_back(slab_[slot].uid);
  }
}

void CloudProvider::terminate_slot_(std::uint32_t slot) {
  const std::uint64_t control_start = read_cycle_counter();
  Instance& inst = slab_[slot];
  Tenant& tenant = tenants_[inst.tenant_slot];
  // Settle BEFORE unlinking: the deferred intervals accrued while this
  // instance was live, so the replay must still see it.
  settle_tenant_(tenant);

  const std::uint64_t destroy_start = read_cycle_counter();
  datacenter_->server(inst.server_index).runtime().destroy(inst.instance_id);
  const std::uint64_t destroy_cycles = read_cycle_counter() - destroy_start;
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    bus.emit(obs::EventKind::kContainerLifecycle, datacenter_->now(),
             static_cast<std::uint32_t>(inst.server_index), /*a=*/0,
             fnv1a64(inst.instance_id));
  }

  if (inst.prev != kNil) {
    slab_[inst.prev].next = inst.next;
  } else {
    tenant.head = inst.next;
  }
  if (inst.next != kNil) {
    slab_[inst.next].prev = inst.prev;
  } else {
    tenant.tail = inst.prev;
  }
  --tenant.count;

  auto& slots = server_slots_[static_cast<std::size_t>(inst.server_index)];
  const std::uint32_t back = slots.back();
  slots[inst.server_pos] = back;
  slab_[back].server_pos = inst.server_pos;
  slots.pop_back();
  index_.remove(inst.server_index);

  id_index_.erase(inst.instance_id);
  uid_index_.erase(inst.uid);
  inst.handle.reset();
  inst.instance_id.clear();
  inst.tenant.clear();
  free_slots_.push_back(slot);
  auto& metrics = ProviderMetrics::get();
  metrics.terminates.inc();
  metrics.terminate_control_cycles.inc(read_cycle_counter() - control_start -
                                       destroy_cycles);
}

bool CloudProvider::terminate(const std::string& instance_id) {
  auto it = id_index_.find(instance_id);
  if (it == id_index_.end()) return false;
  terminate_slot_(it->second);
  return true;
}

bool CloudProvider::terminate_uid(std::uint64_t uid) {
  auto it = uid_index_.find(uid);
  if (it == uid_index_.end()) return false;
  terminate_slot_(it->second);
  return true;
}

int CloudProvider::terminate_batch(const std::vector<std::uint64_t>& uids) {
  int terminated = 0;
  for (const std::uint64_t uid : uids) {
    if (terminate_uid(uid)) ++terminated;
  }
  return terminated;
}

int CloudProvider::terminate_oldest(const std::string& tenant, int count) {
  auto it = tenant_index_.find(tenant);
  if (it == tenant_index_.end()) return 0;
  int terminated = 0;
  while (terminated < count) {
    const std::uint32_t head = tenants_[it->second].head;
    if (head == kNil) break;
    terminate_slot_(head);
    ++terminated;
  }
  return terminated;
}

int CloudProvider::live_instances(const std::string& tenant) const {
  auto it = tenant_index_.find(tenant);
  return it == tenant_index_.end()
             ? 0
             : static_cast<int>(tenants_[it->second].count);
}

const CloudProvider::Instance* CloudProvider::find_instance(
    const std::string& instance_id) const {
  auto it = id_index_.find(instance_id);
  return it == id_index_.end() ? nullptr : &slab_[it->second];
}

const CloudProvider::Instance* CloudProvider::find_uid(
    std::uint64_t uid) const {
  auto it = uid_index_.find(uid);
  return it == uid_index_.end() ? nullptr : &slab_[it->second];
}

int CloudProvider::server_of(const std::string& instance_id) const {
  const Instance* inst = find_instance(instance_id);
  return inst == nullptr ? -1 : inst->server_index;
}

void CloudProvider::settle_tenant_(Tenant& tenant) {
  if (tenant.pending.empty()) return;
  // Step-major replay in launch order: exactly the per-step fold the
  // historical meter ran, minus the +0.0 usage identities (cloud/billing.h).
  for (const PendingRun& run : tenant.pending) {
    for (std::uint64_t step = 0; step < run.steps; ++step) {
      for (std::uint32_t slot = tenant.head; slot != kNil;
           slot = slab_[slot].next) {
        billing_.charge_reserve(*tenant.account, slab_[slot].vcpus, run.dt);
      }
    }
  }
  tenant.pending.clear();
}

void CloudProvider::settle_all_() {
  for (Tenant& tenant : tenants_) settle_tenant_(tenant);
}

void CloudProvider::meter_(SimDuration dt) {
  auto& metrics = ProviderMetrics::get();
  // Pass 1: one usage-marker read per occupied server (peek: no touch, no
  // wake). A changed marker means some container cgroup on that host was
  // charged since we last looked — every tenant with an instance there
  // meters eagerly this step.
  touched_scratch_.clear();
  const int total = datacenter_->num_servers();
  for (int server = 0; server < total; ++server) {
    const auto& slots = server_slots_[static_cast<std::size_t>(server)];
    if (slots.empty()) continue;
    const std::uint64_t marker =
        datacenter_->peek(server).host().nonroot_usage_marker();
    auto& last = last_marker_[static_cast<std::size_t>(server)];
    if (marker == last) continue;
    last = marker;
    for (const std::uint32_t slot : slots) {
      Tenant& tenant = tenants_[slab_[slot].tenant_slot];
      if (tenant.touched == 0) {
        tenant.touched = 1;
        touched_scratch_.push_back(slab_[slot].tenant_slot);
      }
    }
  }
  // Pass 2: touched tenants settle their backlog, then walk their
  // instances with the historical per-step metering math.
  for (const std::uint32_t tenant_slot : touched_scratch_) {
    Tenant& tenant = tenants_[tenant_slot];
    settle_tenant_(tenant);
    for (std::uint32_t slot = tenant.head; slot != kNil;
         slot = slab_[slot].next) {
      Instance& inst = slab_[slot];
      const std::uint64_t usage_ns =
          inst.handle->cgroup()->cpuacct.total_usage_ns();
      const std::uint64_t delta_ns = usage_ns - inst.cpuacct_baseline_ns;
      inst.cpuacct_baseline_ns = usage_ns;
      if (delta_ns == 0) {
        billing_.charge_reserve(*tenant.account, inst.vcpus, dt);
      } else {
        billing_.charge_account(*tenant.account, inst.vcpus,
                                static_cast<double>(delta_ns) / 1e9, dt);
      }
      metrics.touched_instance_steps.inc();
    }
  }
  // Pass 3: everyone else defers this interval (O(1) per tenant); touched
  // flags reset here so pass 2's eager tenants are not double-billed.
  for (Tenant& tenant : tenants_) {
    if (tenant.touched != 0 || tenant.count == 0) {
      tenant.touched = 0;
      continue;
    }
    if (!tenant.pending.empty() && tenant.pending.back().dt == dt) {
      ++tenant.pending.back().steps;
    } else {
      tenant.pending.push_back(PendingRun{dt, 1});
    }
    metrics.deferred_tenant_steps.inc();
  }
}

void CloudProvider::step(SimDuration dt) {
  datacenter_->step(dt);
  // Control-plane phase timed separately from physics: the scaling_fleet
  // flatness gate binds on this counter, since raw physics is O(tasks) by
  // design and grows with the fleet no matter what the control plane does.
  const std::uint64_t t0 = read_cycle_counter();
  meter_(dt);
  if (datacenter_->now() >= next_epoch_) {
    settle_all_();
    ProviderMetrics::get().epoch_settles.inc();
    while (next_epoch_ <= datacenter_->now()) next_epoch_ += billing_epoch_;
  }
  ProviderMetrics::get().control_cycles.inc(read_cycle_counter() - t0);
}

}  // namespace cleaks::cloud
