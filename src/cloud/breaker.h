// Branch circuit breaker with an inverse-time (thermal-magnetic) trip curve.
//
// §II-C: "The tripping condition of a circuit breaker depends on the
// strength and duration of a power spike." We model both elements:
// an instantaneous magnetic trip at a large multiple of the rating, and a
// thermal element that integrates overload over time — a small overload
// takes minutes, a heavy one seconds.
#pragma once

#include "util/sim_time.h"

namespace cleaks::cloud {

struct BreakerSpec {
  double rated_w = 1300.0;          ///< continuous rating
  double instant_trip_factor = 1.6; ///< magnetic trip at rated*factor
  /// Thermal capacity in (overload-fraction x seconds): e.g. 12 means a
  /// 20% overload trips after 60 s, a 120% overload after 10 s.
  double thermal_capacity = 12.0;
  /// Thermal element cool-down time constant when below rating (s).
  double cooling_tau_s = 120.0;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(BreakerSpec spec = BreakerSpec{}) : spec_(spec) {}

  /// Feed one interval of aggregate power. Returns true if this
  /// observation tripped the breaker.
  bool observe(double power_w, SimDuration dt);

  [[nodiscard]] bool tripped() const noexcept { return tripped_; }
  [[nodiscard]] double thermal_state() const noexcept { return thermal_; }
  [[nodiscard]] const BreakerSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] double max_power_seen_w() const noexcept { return max_power_w_; }

  /// Manual reset after an outage.
  void reset() noexcept {
    tripped_ = false;
    thermal_ = 0.0;
  }

 private:
  BreakerSpec spec_;
  double thermal_ = 0.0;
  double max_power_w_ = 0.0;
  bool tripped_ = false;
};

}  // namespace cleaks::cloud
