#include "cloud/datacenter.h"

#include <cassert>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/strings.h"

namespace cleaks::cloud {
namespace {

// Facility telemetry. All values derive from simulated state, so they are
// bitwise-identical at every thread count (Scope::kSim, the default).
struct DcMetrics {
  obs::Counter& steps = obs::Registry::global().counter(
      "dc_steps_total", "Datacenter::step invocations");
  obs::Histogram& step_ns = obs::Registry::global().histogram(
      "dc_step_sim_ns",
      {kMillisecond, 10 * kMillisecond, 100 * kMillisecond, kSecond,
       10 * kSecond, kMinute},
      "simulated duration advanced per step");
  obs::Gauge& total_power = obs::Registry::global().gauge(
      "dc_power_total_w", "facility power after the last step");
  obs::Histogram& server_power = obs::Registry::global().histogram(
      "dc_server_power_mw",
      {50'000, 100'000, 150'000, 200'000, 300'000, 500'000},
      "per-server power per step, milliwatts");
  obs::Counter& breaker_trips = obs::Registry::global().counter(
      "dc_breaker_trips_total", "rack breaker trip events");
  obs::Counter& cap_enforcements = obs::Registry::global().counter(
      "dc_cap_enforcements_total", "rack capping windows that clamped");
  // Sparse-stepping accounting. Accrued from the per-step coast/active
  // decision, which is identical in the never-park and parked schedules —
  // so the facility kSim digest stays mode-independent even though the
  // counters are in it.
  obs::Counter& active_server_steps = obs::Registry::global().counter(
      "engine_active_server_steps_total",
      "server-steps that ran full per-tick physics (did not coast)");
  obs::Counter& idle_coasted_seconds = obs::Registry::global().counter(
      "engine_idle_coasted_sim_seconds_total",
      "sim-seconds advanced through the analytic idle coast");
  // Runtime scope: an implementation-cost accounting detail, not simulated
  // state — keeping it out of the kSim digest preserves comparability with
  // digests recorded before the scalar path was deleted.
  obs::Counter& allocs_avoided = obs::Registry::global().counter(
      "step_allocs_avoided_total",
      "per-tick heap allocations skipped by the batched step hot path",
      obs::Scope::kRuntime);

  static DcMetrics& get() {
    static DcMetrics metrics;
    return metrics;
  }
};

bool resolve_sparse(int configured) {
  if (configured >= 0) return configured != 0;
  // Strict parse: CLEAKS_SPARSE must be numeric to count. The permissive
  // strtol-without-end-check this replaces read every non-numeric value
  // ("true", "yes", "") as 0 and silently disabled sparse stepping — the
  // opposite of what a user writing CLEAKS_SPARSE=true asked for.
  if (const auto parsed = env_long("CLEAKS_SPARSE")) {
    return *parsed != 0;
  }
  return true;
}

// Histogram quantization for dc_server_power_mw. Power is non-negative in
// every supported configuration, but casting a negative double to u64 is
// undefined behavior — clamp instead of trusting the physics plane.
std::uint64_t power_mw_of(double power_w) noexcept {
  return power_w > 0.0 ? static_cast<std::uint64_t>(power_w * 1000.0)
                       : std::uint64_t{0};
}

}  // namespace

Datacenter::Datacenter(DatacenterConfig config)
    : config_(std::move(config)),
      pool_(config_.num_threads),
      sparse_(resolve_sparse(config_.sparse)) {
  Rng rng(config_.seed);
  // Servers in one rack were installed and powered on together (§IV-C):
  // their uptimes cluster within minutes, while racks differ by weeks.
  std::vector<SimDuration> rack_bases;
  for (int rack = 0; rack < config_.num_racks; ++rack) {
    rack_bases.push_back(SimDuration(30 + rack * 19) * kDay +
                         rng.uniform_u64(0, kDay));
  }
  const int total = config_.num_racks * config_.servers_per_rack;
  servers_.reserve(static_cast<std::size_t>(total));
  for (int index = 0; index < total; ++index) {
    const int rack = index / config_.servers_per_rack;
    const SimDuration prior_uptime =
        rack_bases[static_cast<std::size_t>(rack)] +
        rng.uniform_u64(0, 15 * kMinute);
    auto server = std::make_unique<Server>(
        strformat("server-%02d", index), config_.profile,
        rng.fork(1000 + index).uniform_u64(1, ~0ULL >> 1), prior_uptime);
    if (config_.benign_load && (config_.benign_load_servers < 0 ||
                                index < config_.benign_load_servers)) {
      workload::DiurnalParams params;
      params.phase_days = rng.uniform(-0.08, 0.08);
      params.base_utilization = rng.uniform(0.16, 0.30);
      server->enable_benign_load(rng.fork(2000 + index).uniform_u64(1, ~0ULL >> 1),
                                 params);
    }
    servers_.push_back(std::move(server));
  }
  // Event-bus identity: the server index, a pure function of the config —
  // never the pool lane that happens to step the server.
  for (std::size_t index = 0; index < servers_.size(); ++index) {
    servers_[index]->host().set_event_source(
        static_cast<std::uint32_t>(index));
  }
  if (config_.profile.hardware.num_cores > 0 &&
      config_.profile.hardware.num_packages > 0) {
    // One SoA plane for the whole facility; every server's hardware state
    // migrates onto its lane and the Hosts become views (bitwise-identical
    // results, see hw/batched_physics.h).
    const hw::BatchedGeometry geometry{
        config_.profile.hardware.num_cores,
        config_.profile.hardware.num_packages,
        static_cast<int>(config_.profile.hardware.cpuidle_states.size())};
    physics_ = std::make_unique<hw::BatchedPhysics>(
        geometry, static_cast<std::size_t>(total));
    for (std::size_t lane = 0; lane < servers_.size(); ++lane) {
      servers_[lane]->bind_physics(*physics_, lane);
    }
  }
  // Coast semantics are on in BOTH modes: the never-park schedule's
  // Server::step coast path and the parked schedule's deferred catch-up
  // enter the coast regime at the same step boundaries, which is what
  // makes the two modes bitwise-comparable.
  for (auto& server : servers_) server->set_coast_enabled(true);
  const auto count = static_cast<std::size_t>(total);
  sleeping_.assign(count, 0);
  coasted_.assign(count, 0);
  recheck_pending_.assign(count, 0);
  parked_at_.assign(count, 0);
  parked_slot_.assign(count, 0);
  parked_mw_.assign(count, 0);
  parked_power_slots_.assign(
      DcMetrics::get().server_power.bounds().size() + 1, 0);
  active_ids_.reserve(count);
  for (std::size_t index = 0; index < count; ++index) {
    active_ids_.push_back(static_cast<std::uint32_t>(index));
  }
  power_w_.reserve(count);
  allocs_avoided_.reserve(count);
  for (const auto& server : servers_) {
    power_w_.push_back(server->power_w());
    allocs_avoided_.push_back(
        std::as_const(*server).host().step_allocs_avoided());
  }
  breakers_.assign(static_cast<std::size_t>(config_.num_racks),
                   CircuitBreaker{config_.rack_breaker});
  rack_energy_since_cap_j_.assign(static_cast<std::size_t>(config_.num_racks),
                                  0.0);
  rack_dirty_.assign(static_cast<std::size_t>(config_.num_racks), 0);
  rack_power_cache_.assign(static_cast<std::size_t>(config_.num_racks), 0.0);
  double facility = 0.0;
  for (int rack = 0; rack < config_.num_racks; ++rack) {
    double sum = 0.0;
    const int first = rack * config_.servers_per_rack;
    for (int offset = 0; offset < config_.servers_per_rack; ++offset) {
      sum += power_w_[static_cast<std::size_t>(first + offset)];
    }
    rack_power_cache_[static_cast<std::size_t>(rack)] = sum;
    facility += sum;
  }
  total_power_cache_ = facility;
}

void Datacenter::touch_(std::size_t index) {
  Server& server = *servers_[index];
  if (sleeping_[index] != 0) {
    // A parked server is owed every interval since it parked (or since the
    // last touch): defer it in one call — bitwise-equal to the per-step
    // defers the never-park schedule would have issued — so the caller
    // sees fully caught-up state.
    const SimTime owed = now_ - parked_at_[index];
    if (owed > 0) server.defer_idle(owed);
    parked_at_[index] = now_;
    if (recheck_pending_[index] == 0) {
      recheck_pending_[index] = 1;
      recheck_ids_.push_back(static_cast<std::uint32_t>(index));
    }
  }
  server.coast_sync();
}

void Datacenter::wake_(std::uint32_t index) {
  Server& server = *servers_[index];
  const SimTime owed = now_ - parked_at_[index];
  // A server whose coast episode ended was necessarily touched (episodes
  // only end through mutations, and every mutation path runs touch_),
  // which already caught it up — so owed time implies a live episode.
  assert(owed == 0 || server.coast_active());
  if (owed > 0) server.defer_idle(owed);
  sleeping_[index] = 0;
  --parked_count_;
  // Retire the parked aggregates with the identical pinned values park_
  // recorded (allocs_avoided_ cannot change while parked: no physics
  // steps), so add/remove round-trips are exact.
  --parked_power_slots_[parked_slot_[index]];
  parked_mw_sum_ -= parked_mw_[index];
  parked_allocs_sum_ -= allocs_avoided_[index];
  active_ids_.push_back(index);
}

void Datacenter::park_(std::uint32_t index, std::size_t pos) {
  sleeping_[index] = 1;
  parked_at_[index] = now_;
  ++parked_count_;
  const std::uint64_t mw = power_mw_of(power_w_[index]);
  const std::size_t slot = DcMetrics::get().server_power.bucket_index(mw);
  parked_slot_[index] = static_cast<std::uint8_t>(slot);
  parked_mw_[index] = mw;
  ++parked_power_slots_[slot];
  parked_mw_sum_ += mw;
  parked_allocs_sum_ += allocs_avoided_[index];
  active_ids_[pos] = active_ids_.back();
  active_ids_.pop_back();
  const SimTime wake = servers_[index]->next_wake(now_);
  if (wake != Server::kNoWake) wheel_.schedule(wake, index);
}

void Datacenter::step(SimDuration dt) {
  auto& metrics = DcMetrics::get();
  obs::ScopedSpan span(obs::SpanTracer::global(), "dc.step",
                       [this] { return now_; });
  if (sparse_) {
    // Wake phase (serial, deterministic order): first servers touched
    // while parked — a mutation may have ended their episode (wake) or
    // moved their next on/off edge (re-arm; the superseded wheel entry
    // stays behind as a benign stale hint) — then every sleeper whose
    // wheel time has come. Pops are hints: a stale one costs a real step
    // that immediately re-parks, never a wrong bit.
    for (const std::uint32_t id : recheck_ids_) {
      recheck_pending_[id] = 0;
      if (sleeping_[id] == 0) continue;
      if (!servers_[id]->coast_active()) {
        wake_(id);
      } else {
        const SimTime wake = servers_[id]->next_wake(now_);
        if (wake != Server::kNoWake) wheel_.schedule(wake, id);
      }
    }
    recheck_ids_.clear();
    for (const TimerWheel::Entry& entry : wheel_.pop_due(now_)) {
      if (sleeping_[entry.id] != 0) wake_(entry.id);
    }
  }
  // Step phase: only the active list. Servers are fully independent state
  // machines with per-server RNG streams, so they step concurrently; every
  // cross-server observation (breakers, capper, telemetry aggregation)
  // happens below, on this thread, after the join. Parked servers are not
  // visited at all — their owed time is deferred in one call at wake (the
  // same coast episode sees the same elapsed time, so the skip is
  // invisible to the resulting bits) and their telemetry is carried by the
  // edge-maintained aggregates.
  const std::size_t n_step = active_ids_.size();
  pool_.parallel_for(n_step, [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      const std::uint32_t index = active_ids_[k];
      Server& server = *servers_[index];
      coasted_[index] = server.step(dt) ? 1 : 0;
      // Refresh the aggregation caches while the server is hot in cache.
      power_w_[index] = server.power_w();
      allocs_avoided_[index] =
          std::as_const(server).host().step_allocs_avoided();
    }
  });
  now_ += dt;
  metrics.steps.inc();
  metrics.step_ns.observe(dt);
  // Aggregation, O(stepped + racks): stepped servers contribute
  // individually; the parked population lands as one pre-binned bulk add
  // per aggregate (integer throughout, so bitwise-equal to visiting each
  // parked server). Coasted time accrues in ns and flushes to the counter
  // in whole sim-seconds.
  std::uint64_t active_servers = 0;
  for (std::size_t k = 0; k < n_step; ++k) {
    const std::uint32_t index = active_ids_[k];
    if (coasted_[index] != 0) {
      coasted_ns_total_ += dt;
    } else {
      ++active_servers;
    }
    metrics.server_power.observe(power_mw_of(power_w_[index]));
    mark_rack_dirty_(rack_of(static_cast<int>(index)));
  }
  coasted_ns_total_ += static_cast<std::uint64_t>(dt) * parked_count_;
  metrics.server_power.add_bucket_counts(
      parked_power_slots_.data(), parked_power_slots_.size(), parked_mw_sum_);
  metrics.active_server_steps.inc(active_servers);
  const std::uint64_t coasted_s = coasted_ns_total_ / kSecond;
  metrics.idle_coasted_seconds.inc(coasted_s - coasted_s_flushed_);
  coasted_s_flushed_ = coasted_s;
  if (physics_) {
    std::uint64_t avoided_total = parked_allocs_sum_;
    for (std::size_t k = 0; k < n_step; ++k) {
      avoided_total += allocs_avoided_[active_ids_[k]];
    }
    metrics.allocs_avoided.inc(avoided_total - allocs_avoided_flushed_);
    allocs_avoided_flushed_ = avoided_total;
  }
  // Racks with a stepped server get a fresh index-order fold — the same
  // left-to-right float sum the historical O(N) read performed, so the
  // cached value is bit-identical to it. Parked servers' power is pinned,
  // so untouched racks cannot have changed.
  for (const std::uint32_t rack : dirty_racks_) {
    double sum = 0.0;
    const int first = static_cast<int>(rack) * config_.servers_per_rack;
    for (int offset = 0; offset < config_.servers_per_rack; ++offset) {
      sum += power_w_[static_cast<std::size_t>(first + offset)];
    }
    rack_power_cache_[rack] = sum;
    rack_dirty_[rack] = 0;
  }
  dirty_racks_.clear();
  double facility = 0.0;
  for (int rack = 0; rack < config_.num_racks; ++rack) {
    const double power = rack_power_cache_[static_cast<std::size_t>(rack)];
    facility += power;
    auto& breaker = breakers_[static_cast<std::size_t>(rack)];
    const bool was_tripped = breaker.tripped();
    breaker.observe(power, dt);
    if (!was_tripped && breaker.tripped()) metrics.breaker_trips.inc();
    rack_energy_since_cap_j_[static_cast<std::size_t>(rack)] +=
        power * to_seconds(dt);
  }
  total_power_cache_ = facility;
  metrics.total_power.set(total_power_cache_);
  if (config_.rack_power_cap_w > 0.0 &&
      now_ - last_cap_check_ >= config_.capping_interval) {
    for (int rack = 0; rack < config_.num_racks; ++rack) {
      apply_rack_capping(rack);
      rack_energy_since_cap_j_[static_cast<std::size_t>(rack)] = 0.0;
    }
    last_cap_check_ = now_;
  }
  // Sleep phase (serial): park every stepped server that coasted and is
  // still in a live episode (the capper above may have ended one).
  // Backward over the active list so the swap-remove in park_ only moves
  // already-visited entries.
  if (sparse_) {
    for (std::size_t k = active_ids_.size(); k-- > 0;) {
      const std::uint32_t index = active_ids_[k];
      if (coasted_[index] == 0) continue;
      if (!servers_[index]->coast_active()) continue;
      park_(index, k);
    }
  }
}

std::uint64_t Datacenter::coalescible_steps(SimDuration dt,
                                            std::uint64_t max_steps) const {
  if (!sparse_ || dt == 0 || max_steps == 0) return 0;
  if (parked_count_ != servers_.size() || !recheck_ids_.empty()) return 0;
  std::uint64_t k = max_steps;
  const SimTime due = wheel_.next_due();
  if (due != TimerWheel::kNever) {
    // Virtual step s (1-based) pops the wheel at clock now_ + (s-1)*dt;
    // safe while that stays strictly before the earliest entry.
    if (due <= now_) return 0;
    const SimTime gap = due - now_;
    k = std::min(k, (gap - 1) / dt + 1);
  }
  if (config_.rack_power_cap_w > 0.0) {
    // Never coalesce across a capping window: the capper resets per-rack
    // energy state and can end coast episodes.
    const SimTime since = now_ - last_cap_check_;
    if (since >= config_.capping_interval) return 0;
    const SimTime rem = config_.capping_interval - since;
    k = std::min(k, (rem - 1) / dt);
  }
  return k;
}

void Datacenter::step_coalesced(SimDuration dt, std::uint64_t k) {
  if (k == 0) return;
  assert(k <= coalescible_steps(dt, k) &&
         "step_coalesced: stride exceeds the coalescible window");
  if (coalescible_steps(dt, k) < k) {
    // Contract violation in release builds: degrade to the exact path.
    for (std::uint64_t s = 0; s < k; ++s) step(dt);
    return;
  }
  auto& metrics = DcMetrics::get();
  obs::ScopedSpan span(obs::SpanTracer::global(), "dc.step_coalesced",
                       [this] { return now_; });
  // Per-step float state is replayed one virtual step at a time: breaker
  // thermal/magnetic integration and the rack energy window are not
  // split-invariant in float arithmetic, but with every server parked the
  // rack power they observe is a constant — so the serial replay below is
  // bitwise-identical to k plain step() calls at O(k * racks) with no
  // server visits.
  for (std::uint64_t s = 0; s < k; ++s) {
    now_ += dt;
    for (int rack = 0; rack < config_.num_racks; ++rack) {
      const double power = rack_power_cache_[static_cast<std::size_t>(rack)];
      auto& breaker = breakers_[static_cast<std::size_t>(rack)];
      const bool was_tripped = breaker.tripped();
      breaker.observe(power, dt);
      if (!was_tripped && breaker.tripped()) metrics.breaker_trips.inc();
      rack_energy_since_cap_j_[static_cast<std::size_t>(rack)] +=
          power * to_seconds(dt);
    }
  }
  // Integer telemetry lands in bulk: k steps of an all-parked facility are
  // k identical pre-binned contributions.
  metrics.steps.inc(k);
  metrics.step_ns.observe_n(dt, k);
  coasted_ns_total_ += static_cast<std::uint64_t>(dt) * parked_count_ * k;
  metrics.server_power.add_bucket_counts(parked_power_slots_.data(),
                                         parked_power_slots_.size(),
                                         parked_mw_sum_, k);
  const std::uint64_t coasted_s = coasted_ns_total_ / kSecond;
  metrics.idle_coasted_seconds.inc(coasted_s - coasted_s_flushed_);
  coasted_s_flushed_ = coasted_s;
  metrics.total_power.set(total_power_cache_);
}

void Datacenter::apply_rack_capping(int rack) {
  // Average power since the last check: the capper only ever sees the
  // minute-scale mean, never the 1-second spike.
  const double window_sec =
      to_seconds(now_ - last_cap_check_ > 0 ? now_ - last_cap_check_
                                            : config_.capping_interval);
  const double avg_w =
      rack_energy_since_cap_j_[static_cast<std::size_t>(rack)] / window_sec;
  const int first = rack * config_.servers_per_rack;
  const double per_server_cap =
      avg_w > config_.rack_power_cap_w
          ? config_.rack_power_cap_w / config_.servers_per_rack
          : 0.0;  // lift the cap
  if (per_server_cap > 0.0) DcMetrics::get().cap_enforcements.inc();
  for (int offset = 0; offset < config_.servers_per_rack; ++offset) {
    const std::size_t index = static_cast<std::size_t>(first + offset);
    // Enforcing mutates host state, so a parked server must be caught up
    // first. The lift path needs no touch: a parked server's cap is
    // already 0 (coast eligibility requires it), and set_power_cap_w
    // early-returns on an unchanged cap without bumping the generation.
    if (per_server_cap > 0.0) touch_(index);
    servers_[index]->host().set_power_cap_w(per_server_cap);
  }
}

bool Datacenter::any_breaker_tripped() const {
  for (const auto& breaker : breakers_) {
    if (breaker.tripped()) return true;
  }
  return false;
}

}  // namespace cleaks::cloud
