#include "cloud/datacenter.h"

#include <cstdlib>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace cleaks::cloud {
namespace {

// Facility telemetry. All values derive from simulated state, so they are
// bitwise-identical at every thread count (Scope::kSim, the default).
struct DcMetrics {
  obs::Counter& steps = obs::Registry::global().counter(
      "dc_steps_total", "Datacenter::step invocations");
  obs::Histogram& step_ns = obs::Registry::global().histogram(
      "dc_step_sim_ns",
      {kMillisecond, 10 * kMillisecond, 100 * kMillisecond, kSecond,
       10 * kSecond, kMinute},
      "simulated duration advanced per step");
  obs::Gauge& total_power = obs::Registry::global().gauge(
      "dc_power_total_w", "facility power after the last step");
  obs::Histogram& server_power = obs::Registry::global().histogram(
      "dc_server_power_mw",
      {50'000, 100'000, 150'000, 200'000, 300'000, 500'000},
      "per-server power per step, milliwatts");
  obs::Counter& breaker_trips = obs::Registry::global().counter(
      "dc_breaker_trips_total", "rack breaker trip events");
  obs::Counter& cap_enforcements = obs::Registry::global().counter(
      "dc_cap_enforcements_total", "rack capping windows that clamped");
  // Sparse-stepping accounting. Accrued from the per-step coast/active
  // decision, which is identical in dense and sparse mode — so the facility
  // kSim digest stays mode-independent even though the counters are in it.
  obs::Counter& active_server_steps = obs::Registry::global().counter(
      "engine_active_server_steps_total",
      "server-steps that ran full per-tick physics (did not coast)");
  obs::Counter& idle_coasted_seconds = obs::Registry::global().counter(
      "engine_idle_coasted_sim_seconds_total",
      "sim-seconds advanced through the analytic idle coast");
  // Runtime scope: an implementation-cost accounting detail, not simulated
  // state — keeping it out of the kSim digest preserves comparability with
  // digests recorded before the scalar path was deleted.
  obs::Counter& allocs_avoided = obs::Registry::global().counter(
      "step_allocs_avoided_total",
      "per-tick heap allocations skipped by the batched step hot path",
      obs::Scope::kRuntime);

  static DcMetrics& get() {
    static DcMetrics metrics;
    return metrics;
  }
};

bool resolve_sparse(int configured) {
  if (configured >= 0) return configured != 0;
  if (const char* env = std::getenv("CLEAKS_SPARSE")) {
    return std::strtol(env, nullptr, 10) != 0;
  }
  return true;
}

}  // namespace

Datacenter::Datacenter(DatacenterConfig config)
    : config_(std::move(config)),
      pool_(config_.num_threads),
      sparse_(resolve_sparse(config_.sparse)) {
  Rng rng(config_.seed);
  // Servers in one rack were installed and powered on together (§IV-C):
  // their uptimes cluster within minutes, while racks differ by weeks.
  std::vector<SimDuration> rack_bases;
  for (int rack = 0; rack < config_.num_racks; ++rack) {
    rack_bases.push_back(SimDuration(30 + rack * 19) * kDay +
                         rng.uniform_u64(0, kDay));
  }
  const int total = config_.num_racks * config_.servers_per_rack;
  servers_.reserve(static_cast<std::size_t>(total));
  for (int index = 0; index < total; ++index) {
    const int rack = index / config_.servers_per_rack;
    const SimDuration prior_uptime =
        rack_bases[static_cast<std::size_t>(rack)] +
        rng.uniform_u64(0, 15 * kMinute);
    auto server = std::make_unique<Server>(
        strformat("server-%02d", index), config_.profile,
        rng.fork(1000 + index).uniform_u64(1, ~0ULL >> 1), prior_uptime);
    if (config_.benign_load && (config_.benign_load_servers < 0 ||
                                index < config_.benign_load_servers)) {
      workload::DiurnalParams params;
      params.phase_days = rng.uniform(-0.08, 0.08);
      params.base_utilization = rng.uniform(0.16, 0.30);
      server->enable_benign_load(rng.fork(2000 + index).uniform_u64(1, ~0ULL >> 1),
                                 params);
    }
    servers_.push_back(std::move(server));
  }
  // Event-bus identity: the server index, a pure function of the config —
  // never the pool lane that happens to step the server.
  for (std::size_t index = 0; index < servers_.size(); ++index) {
    servers_[index]->host().set_event_source(
        static_cast<std::uint32_t>(index));
  }
  if (config_.profile.hardware.num_cores > 0 &&
      config_.profile.hardware.num_packages > 0) {
    // One SoA plane for the whole facility; every server's hardware state
    // migrates onto its lane and the Hosts become views (bitwise-identical
    // results, see hw/batched_physics.h).
    const hw::BatchedGeometry geometry{
        config_.profile.hardware.num_cores,
        config_.profile.hardware.num_packages,
        static_cast<int>(config_.profile.hardware.cpuidle_states.size())};
    physics_ = std::make_unique<hw::BatchedPhysics>(
        geometry, static_cast<std::size_t>(total));
    for (std::size_t lane = 0; lane < servers_.size(); ++lane) {
      servers_[lane]->bind_physics(*physics_, lane);
    }
  }
  // Coast semantics are on in BOTH modes: dense advance_idle() and sparse
  // defer_idle() enter the coast regime at the same step boundaries, which
  // is what makes the two modes bitwise-comparable.
  for (auto& server : servers_) server->set_coast_enabled(true);
  sleeping_.assign(static_cast<std::size_t>(total), 0);
  due_wake_.assign(static_cast<std::size_t>(total), 0);
  coasted_.assign(static_cast<std::size_t>(total), 0);
  power_w_.reserve(static_cast<std::size_t>(total));
  allocs_avoided_.reserve(static_cast<std::size_t>(total));
  for (const auto& server : servers_) {
    power_w_.push_back(server->power_w());
    allocs_avoided_.push_back(
        std::as_const(*server).host().step_allocs_avoided());
  }
  breakers_.assign(static_cast<std::size_t>(config_.num_racks),
                   CircuitBreaker{config_.rack_breaker});
  rack_energy_since_cap_j_.assign(static_cast<std::size_t>(config_.num_racks),
                                  0.0);
}

int Datacenter::sleeping_servers() const noexcept {
  int count = 0;
  for (const std::uint8_t flag : sleeping_) count += flag;
  return count;
}

void Datacenter::step(SimDuration dt) {
  auto& metrics = DcMetrics::get();
  obs::ScopedSpan span(obs::SpanTracer::global(), "dc.step",
                       [this] { return now_; });
  // Wake phase (serial): pop every sleeper whose next-interesting-time has
  // arrived. Pops are hints — a stale entry just forces one real step.
  if (sparse_) {
    due_ids_.clear();
    for (const TimerWheel::Entry& entry : wheel_.pop_due(now_)) {
      due_wake_[entry.id] = 1;
      due_ids_.push_back(entry.id);
    }
  }
  // Step phase: servers are fully independent state machines with
  // per-server RNG streams, so they step concurrently; every cross-server
  // observation (breakers, capper, telemetry aggregation) happens below, on
  // this thread, after the join. A sleeping server whose wakeup has not
  // arrived defers the whole interval in O(1) instead of stepping —
  // Server::step and defer_idle hit the same coast episode with the same
  // elapsed time, so the skip is invisible to the resulting bits.
  pool_.parallel_for(servers_.size(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t index = begin; index < end; ++index) {
      Server& server = *servers_[index];
      if (sparse_ && sleeping_[index] != 0 && due_wake_[index] == 0 &&
          server.coast_active()) {
        server.defer_idle(dt);
        coasted_[index] = 1;
        continue;
      }
      sleeping_[index] = 0;
      coasted_[index] = server.step(dt) ? 1 : 0;
      // Refresh the aggregation caches while the server is hot in cache;
      // deferred servers keep their pinned values.
      power_w_[index] = server.power_w();
      allocs_avoided_[index] =
          std::as_const(server).host().step_allocs_avoided();
    }
  });
  now_ += dt;
  metrics.steps.inc();
  metrics.step_ns.observe(dt);
  // Sparse accounting, from the per-step coast/active decision each server
  // just made (mode-equal by construction). Coasted time accrues in ns and
  // flushes to the counter in whole sim-seconds.
  std::uint64_t active_servers = 0;
  for (std::size_t index = 0; index < coasted_.size(); ++index) {
    if (coasted_[index] != 0) {
      coasted_ns_total_ += dt;
    } else {
      ++active_servers;
    }
    metrics.server_power.observe(
        static_cast<std::uint64_t>(power_w_[index] * 1000.0));
  }
  metrics.active_server_steps.inc(active_servers);
  const std::uint64_t coasted_s = coasted_ns_total_ / kSecond;
  metrics.idle_coasted_seconds.inc(coasted_s - coasted_s_flushed_);
  coasted_s_flushed_ = coasted_s;
  if (physics_) {
    std::uint64_t avoided_total = 0;
    for (const std::uint64_t avoided : allocs_avoided_) {
      avoided_total += avoided;
    }
    metrics.allocs_avoided.inc(avoided_total - allocs_avoided_flushed_);
    allocs_avoided_flushed_ = avoided_total;
  }
  for (int rack = 0; rack < config_.num_racks; ++rack) {
    const double power = rack_power_w(rack);
    auto& breaker = breakers_[static_cast<std::size_t>(rack)];
    const bool was_tripped = breaker.tripped();
    breaker.observe(power, dt);
    if (!was_tripped && breaker.tripped()) metrics.breaker_trips.inc();
    rack_energy_since_cap_j_[static_cast<std::size_t>(rack)] +=
        power * to_seconds(dt);
  }
  metrics.total_power.set(total_power_w());
  if (config_.rack_power_cap_w > 0.0 &&
      now_ - last_cap_check_ >= config_.capping_interval) {
    for (int rack = 0; rack < config_.num_racks; ++rack) {
      apply_rack_capping(rack);
      rack_energy_since_cap_j_[static_cast<std::size_t>(rack)] = 0.0;
    }
    last_cap_check_ = now_;
  }
  // Sleep phase (serial): park every server that coasted this step and is
  // still in a live episode (the capper above may have ended one). Already
  // -sleeping servers that deferred keep their wheel entry and are not even
  // touched — if something external killed their episode after the step
  // phase, the step-phase coast_active() predicate un-parks them next step.
  // Fresh sleepers schedule their next on/off edge, or nothing when no
  // wakeup is foreseeable.
  if (sparse_) {
    for (const std::uint32_t id : due_ids_) due_wake_[id] = 0;
    for (std::size_t index = 0; index < servers_.size(); ++index) {
      if (coasted_[index] == 0) {
        sleeping_[index] = 0;
        continue;
      }
      if (sleeping_[index] != 0) continue;
      Server& server = *servers_[index];
      if (!server.coast_active()) continue;
      sleeping_[index] = 1;
      const SimTime wake = server.next_wake(now_);
      if (wake != Server::kNoWake) {
        wheel_.schedule(wake, static_cast<std::uint32_t>(index));
      }
    }
  }
}

void Datacenter::apply_rack_capping(int rack) {
  // Average power since the last check: the capper only ever sees the
  // minute-scale mean, never the 1-second spike.
  const double window_sec =
      to_seconds(now_ - last_cap_check_ > 0 ? now_ - last_cap_check_
                                            : config_.capping_interval);
  const double avg_w =
      rack_energy_since_cap_j_[static_cast<std::size_t>(rack)] / window_sec;
  const int first = rack * config_.servers_per_rack;
  const double per_server_cap =
      avg_w > config_.rack_power_cap_w
          ? config_.rack_power_cap_w / config_.servers_per_rack
          : 0.0;  // lift the cap
  if (per_server_cap > 0.0) DcMetrics::get().cap_enforcements.inc();
  for (int offset = 0; offset < config_.servers_per_rack; ++offset) {
    servers_[static_cast<std::size_t>(first + offset)]
        ->host()
        .set_power_cap_w(per_server_cap);
  }
}

double Datacenter::rack_power_w(int rack) const {
  double total = 0.0;
  const int first = rack * config_.servers_per_rack;
  for (int offset = 0; offset < config_.servers_per_rack; ++offset) {
    total += power_w_[static_cast<std::size_t>(first + offset)];
  }
  return total;
}

double Datacenter::total_power_w() const {
  double total = 0.0;
  for (const double power : power_w_) total += power;
  return total;
}

bool Datacenter::any_breaker_tripped() const {
  for (const auto& breaker : breakers_) {
    if (breaker.tripped()) return true;
  }
  return false;
}

}  // namespace cleaks::cloud
