#include "cloud/profiles.h"

namespace cleaks::cloud {

CloudServiceProfile local_testbed() {
  CloudServiceProfile profile;
  profile.name = "local";
  profile.hardware = hw::testbed_i7_6700();
  profile.policy = fs::MaskingPolicy::docker_default();
  return profile;
}

CloudServiceProfile cc1() {
  CloudServiceProfile profile;
  profile.name = "CC1";
  profile.hardware = hw::cloud_xeon_server();
  profile.policy.add_rule("/proc/sched_debug", fs::MaskAction::kDeny);
  return profile;
}

CloudServiceProfile cc2() {
  CloudServiceProfile profile;
  profile.name = "CC2";
  profile.hardware = hw::cloud_xeon_server();
  profile.policy.add_rule("/proc/sched_debug", fs::MaskAction::kDeny);
  return profile;
}

CloudServiceProfile cc3() {
  CloudServiceProfile profile;
  profile.name = "CC3";
  profile.hardware = hw::cloud_xeon_server();
  profile.policy.add_rule("/proc/sys/fs/**", fs::MaskAction::kDeny);
  profile.policy.add_rule("/sys/fs/cgroup/net_prio/**", fs::MaskAction::kDeny);
  return profile;
}

CloudServiceProfile cc4() {
  CloudServiceProfile profile;
  profile.name = "CC4";
  profile.hardware = hw::pre_sandy_bridge_server();  // no RAPL channels
  profile.policy.add_rule("/proc/timer_list", fs::MaskAction::kDeny);
  profile.policy.add_rule("/proc/sched_debug", fs::MaskAction::kDeny);
  profile.policy.add_rule("/sys/fs/cgroup/net_prio/**", fs::MaskAction::kDeny);
  profile.policy.add_rule("/sys/devices/**", fs::MaskAction::kDeny);
  profile.policy.add_rule("/sys/class/**", fs::MaskAction::kDeny);
  return profile;
}

CloudServiceProfile cc5() {
  CloudServiceProfile profile;
  profile.name = "CC5";
  profile.hardware = hw::cloud_xeon_server();
  profile.dedicated_cpusets = true;
  // Outright denials.
  profile.policy.add_rule("/proc/locks", fs::MaskAction::kDeny);
  profile.policy.add_rule("/proc/zoneinfo", fs::MaskAction::kDeny);
  profile.policy.add_rule("/proc/uptime", fs::MaskAction::kDeny);
  profile.policy.add_rule("/proc/loadavg", fs::MaskAction::kDeny);
  profile.policy.add_rule("/sys/fs/cgroup/net_prio/**", fs::MaskAction::kDeny);
  profile.policy.add_rule("/sys/devices/**", fs::MaskAction::kDeny);
  profile.policy.add_rule("/sys/class/**", fs::MaskAction::kDeny);
  // Tenant-scoped views — the ◐ (partial leak) entries of Table I:
  // only the cores and memory belonging to the tenant are shown.
  profile.policy.add_rule("/proc/stat", fs::MaskAction::kRestrict);
  profile.policy.add_rule("/proc/meminfo", fs::MaskAction::kRestrict);
  profile.policy.add_rule("/proc/cpuinfo", fs::MaskAction::kRestrict);
  profile.policy.add_rule("/proc/schedstat", fs::MaskAction::kRestrict);
  return profile;
}

std::vector<CloudServiceProfile> all_commercial_clouds() {
  return {cc1(), cc2(), cc3(), cc4(), cc5()};
}

}  // namespace cleaks::cloud
