// SimEngine: builds a world from a ScenarioSpec and owns the step loop.
//
// Build order is fixed (facility -> provider -> defense construct ->
// warmup -> background tenants -> fleet -> defense enable -> masking) so
// every experiment draws the same RNG streams as the hand-rolled benches
// it replaced. step() advances physics first, then fleet control, then
// measurement, then hooks — hooks observe a settled world and may mutate
// it (start/stop viruses, switch control mode) for the *next* step.
//
// Determinism contract: with a fixed spec, every CLEAKS_THREADS /
// DatacenterConfig::num_threads value produces bitwise-identical traces,
// peaks and results (tests/sim_test.cpp pins this with a digest).
#pragma once

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "attack/monitor.h"
#include "attack/orchestrator.h"
#include "attack/strategy.h"
#include "cloud/provider.h"
#include "coresidence/detector.h"
#include "defense/power_namespace.h"
#include "faults/injector.h"
#include "hw/batched_physics.h"
#include "sim/scenario.h"

namespace cleaks::leakage {
class CrossValidator;
}  // namespace cleaks::leakage

namespace cleaks::obs {
class WindowAggregator;
}  // namespace cleaks::obs

namespace cleaks::sim {

/// Snapshot passed to step hooks after physics + control + measurement.
struct StepContext {
  int index = 0;        ///< step index within the current run_* phase
  SimTime now = 0;      ///< sim clock after the step
  double total_w = 0.0; ///< facility power during the step's last tick
};

class SimEngine {
 public:
  using StepHook = std::function<void(SimEngine&, const StepContext&)>;
  using EpochHook =
      std::function<void(SimEngine&, std::string_view label, int steps)>;

  explicit SimEngine(ScenarioSpec spec);
  ~SimEngine();

  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  // ---- world access ----
  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bool has_datacenter() const noexcept { return dc_ != nullptr; }
  [[nodiscard]] cloud::Datacenter& datacenter() { return *dc_; }
  [[nodiscard]] bool has_provider() const noexcept {
    return provider_ != nullptr;
  }
  [[nodiscard]] cloud::CloudProvider& provider() { return *provider_; }
  [[nodiscard]] int num_servers() const;
  [[nodiscard]] cloud::Server& server(int index = 0);
  [[nodiscard]] SimTime now() const;
  [[nodiscard]] defense::PowerNamespace* power_namespace() noexcept {
    return power_ns_.get();
  }
  /// The scenario's fault injector (nullptr when the plan is empty).
  /// Installed on every server's pseudo-fs at build; exposed so probes
  /// (e.g. the defense trainer) can consume the same schedule.
  [[nodiscard]] const faults::FaultInjector* fault_injector() const noexcept {
    return fault_injector_.get();
  }

  // ---- fleet ----
  [[nodiscard]] int fleet_size() const noexcept {
    return static_cast<int>(instances_.size());
  }
  [[nodiscard]] container::Container& fleet_instance(int i) {
    return *instances_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] int fleet_server_index(int i) const {
    return instance_server_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] attack::PowerAttacker& attacker(int i) {
    return *attackers_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] attack::RaplMonitor& monitor(int i) {
    return *monitors_.at(static_cast<std::size_t>(i));
  }
  [[nodiscard]] const attack::OrchestratorResult& acquisition() const noexcept {
    return acquisition_;
  }
  /// Deploy the fleet now (no-op if already deployed). Used by scenarios
  /// with FleetSpec::deploy_on_build = false.
  void deploy_fleet();
  /// Destroy all fleet containers (and their attackers/monitors).
  void destroy_fleet();
  /// Run `copies` tasks of `behavior` inside every fleet instance.
  void fleet_run(const std::string& comm, const kernel::TaskBehavior& behavior,
                 int copies_per_instance = 1);
  void fleet_start_virus();
  void fleet_stop_virus();
  /// Aggregate RAPL sample (W) across fleet monitors; unprimed/masked
  /// monitors contribute 0.
  [[nodiscard]] double fleet_sample_w(SimDuration window);
  /// Summed AttackStats across attackers plus coordinated-crest totals.
  [[nodiscard]] double fleet_attack_seconds() const;
  [[nodiscard]] double fleet_monitor_seconds() const;
  [[nodiscard]] int crest_spikes() const noexcept { return crest_spikes_; }
  void set_fleet_control(FleetSpec::Control control) noexcept {
    control_ = control;
  }

  // ---- event stream ----
  /// Turn on the global event bus and drain it in this engine's
  /// measurement phase every step (merged stream fed to the window
  /// aggregator when `window_width` > 0, and to the global flight
  /// recorder when that is enabled). The accumulated stream digest is
  /// lane-count-independent: same contract as metrics and spans.
  void enable_event_stream(SimDuration window_width = 0);
  [[nodiscard]] std::uint64_t event_stream_digest() const noexcept {
    return events_digest_;
  }
  [[nodiscard]] std::uint64_t events_drained() const noexcept {
    return events_drained_;
  }
  /// Closed tumbling windows so far (nullptr unless enable_event_stream
  /// was called with a window width).
  [[nodiscard]] obs::WindowAggregator* window_aggregator() noexcept {
    return aggregator_.get();
  }

  // ---- loop ----
  void set_on_step(StepHook hook) { on_step_ = std::move(hook); }
  void set_on_epoch(EpochHook hook) { on_epoch_ = std::move(hook); }
  void step(SimDuration dt);
  /// Run `steps` steps of `dt`; `hook` fires after each (in addition to
  /// the persistent on_step hook); the epoch hook fires once at the end.
  ///
  /// All run_* loops coalesce: across a stretch where the facility reports
  /// every server parked and no wheel pop, capping window, fault schedule,
  /// provider or hook needs a per-step boundary, they take one
  /// variable-length stride (Datacenter::step_coalesced) instead of k
  /// fixed steps — bitwise-identical results (pinned by sim_test), just
  /// fewer loop iterations.
  void run_steps(int steps, SimDuration dt, const StepHook& hook = {},
                 std::string_view label = {});
  /// Advance the sim clock by exactly `total`: steps of `dt`, ending with
  /// one final partial step when `total` is not a multiple of `dt` (no
  /// silent truncation).
  void run_for(SimDuration total, SimDuration dt, const StepHook& hook = {},
               std::string_view label = {});
  /// The deduplicated fast-forward: step until the sim clock reaches
  /// `target` (absolute). This is the loop every warmup used to hand-roll.
  void run_until(SimTime target, SimDuration dt, const StepHook& hook = {},
                 std::string_view label = {});
  /// Set the host tick on every server.
  void set_host_tick(SimDuration tick);

  // ---- typed probes ----
  [[nodiscard]] double total_power_w() const;
  [[nodiscard]] double rack_power_w(int rack = 0) const;
  [[nodiscard]] double server_power_w(int index);
  struct BillingProbe {
    double cost_usd = 0.0;
    double cpu_hours = 0.0;
  };
  [[nodiscard]] BillingProbe billing_probe(const std::string& tenant) const;
  /// Table 1 sweep on server 0: one incremental CrossValidator::scan()
  /// pass (probe container created lazily on first call and retained),
  /// counting leaking (kLeaking) and functional (not masked/absent)
  /// channel paths. Repeat probes on a quiescent world reuse cached
  /// classifications instead of re-running the perturbation protocol.
  struct LeakScanProbe {
    int leaking = 0;
    int functional = 0;
    int total_paths = 0;
  };
  [[nodiscard]] LeakScanProbe leak_scan_probe(
      const container::ContainerConfig& probe_config);
  /// Run every co-residence detector between two fresh containers on
  /// server 0; returns how many report kCoResident (total via out-param).
  [[nodiscard]] int coresidence_probe(
      const container::ContainerConfig& probe_config, int* total = nullptr);
  /// §VI-B crest-signal check on server 0: can an observer's RAPL monitor
  /// see a host-side load surge? (The power namespace is meant to say no.)
  [[nodiscard]] bool crest_signal_probe();

  // ---- results ----
  /// Zero the measured-window accumulators (steps, peaks, breaker flag)
  /// so result() covers only the headline window.
  void reset_measurement();
  [[nodiscard]] ScenarioResult result() const;
  /// Append spec + result objects to an open JSON object (bench payload).
  void append_report_json(obs::JsonWriter& json) const;

 private:
  void build();
  void step_fleet(SimDuration dt);
  /// Fire due churn storms (ProviderSpec::churn) — part of the fleet
  /// control phase, right after physics.
  void step_churn_();
  /// Measurement-phase event drain, shared by step() and coalesce_().
  void drain_event_stream_();
  /// Try one variable-length stride of up to `max_steps` steps of `dt`.
  /// Returns how many steps were absorbed (0: take a plain step instead).
  /// Only fires when nothing needs a per-step boundary: no per-call hook
  /// at the call site, no persistent hook, no provider/faults/fleet
  /// control, and the facility itself reports the stretch uninteresting.
  std::uint64_t coalesce_(SimDuration dt, std::uint64_t max_steps);

  ScenarioSpec spec_;
  std::unique_ptr<faults::FaultInjector> fault_injector_;
  /// Monotonic step index for wrap-force draws: unlike steps_, never reset
  /// by reset_measurement, so the fault schedule is a pure function of the
  /// spec and the step sequence.
  std::uint64_t fault_step_ = 0;
  std::unique_ptr<cloud::Datacenter> dc_;
  std::unique_ptr<cloud::CloudProvider> provider_;
  /// One-lane SoA plane for single-server mode (Datacenter owns its own).
  /// Declared before single_ so the bound slices outlive the Host.
  std::unique_ptr<hw::BatchedPhysics> single_physics_;
  std::unique_ptr<cloud::Server> single_;
  std::unique_ptr<defense::PowerNamespace> power_ns_;
  std::unique_ptr<coresidence::TimerImplantDetector> verifier_;
  attack::OrchestratorResult acquisition_;

  std::vector<std::shared_ptr<container::Container>> instances_;
  std::vector<int> instance_server_;
  std::vector<std::string> provider_instance_ids_;
  std::vector<std::unique_ptr<attack::PowerAttacker>> attackers_;
  std::vector<std::unique_ptr<attack::RaplMonitor>> monitors_;
  bool fleet_deployed_ = false;
  FleetSpec::Control control_ = FleetSpec::Control::kIdle;

  // Churn engine state (ProviderSpec::churn).
  int churn_storms_done_ = 0;
  SimTime next_churn_at_ = 0;

  // Coordinated-crest state (Fig 3 synergistic window).
  double high_water_w_ = 0.0;
  bool crest_attacking_ = false;
  SimTime crest_spike_end_ = 0;
  SimTime crest_cooldown_until_ = 0;
  int crest_spikes_ = 0;
  double crest_attack_seconds_ = 0.0;
  double crest_monitor_seconds_ = 0.0;

  // Clock for single-server mode (Datacenter keeps its own).
  SimTime single_now_ = 0;

  // Measured-window accumulators (reset_measurement clears these).
  std::uint64_t steps_ = 0;
  double sim_seconds_ = 0.0;
  double peak_total_w_ = 0.0;
  double peak_rack_w_ = 0.0;
  bool breaker_tripped_ = false;

  // Event-stream consumers (enable_event_stream).
  bool drain_events_ = false;
  std::unique_ptr<obs::WindowAggregator> aggregator_;
  std::uint64_t events_digest_ = 0;  ///< seeded in enable_event_stream
  std::uint64_t events_drained_ = 0;

  StepHook on_step_;
  EpochHook on_epoch_;

  // Incremental leak-scan validator (leak_scan_probe). Declared last so
  // it is destroyed first: its destructor tears down the retained probe
  // container, which needs the servers above still alive.
  std::unique_ptr<leakage::CrossValidator> scan_validator_;
};

}  // namespace cleaks::sim
