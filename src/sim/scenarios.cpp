#include "sim/scenarios.h"

namespace cleaks::sim {

WarmupSpec morning_ramp_warmup() {
  WarmupSpec warmup;
  warmup.until = 9 * kHour;
  warmup.step = 30 * kSecond;
  warmup.tick = 5 * kSecond;
  warmup.tick_after = kSecond;
  return warmup;
}

ScenarioSpec fig3_fleet(attack::StrategyKind kind) {
  ScenarioSpec spec;
  spec.name = "fig3-" + attack::to_string(kind);
  spec.datacenter.num_racks = 1;
  spec.datacenter.servers_per_rack = 8;
  spec.datacenter.benign_load = true;
  spec.datacenter.seed = 4248;  // identical background for both strategies
  spec.warmup = morning_ramp_warmup();

  container::ContainerConfig cc;
  cc.num_cpus = 8;
  cc.memory_limit_bytes = 8ULL << 30;
  spec.fleet.placement = FleetSpec::Placement::kOnePerServer;
  spec.fleet.container = cc;
  spec.fleet.attackers = true;
  spec.fleet.monitors = true;
  spec.fleet.attack.kind = kind;
  spec.fleet.attack.period = 300 * kSecond;
  spec.fleet.attack.spike_duration = 15 * kSecond;
  spec.fleet.control = FleetSpec::Control::kIdle;
  // CoordinatedCrestSpec defaults *are* Fig 3's constants.
  return spec;
}

}  // namespace cleaks::sim
