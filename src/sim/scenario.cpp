#include "sim/scenario.h"

namespace cleaks::sim {

std::string to_string(FleetSpec::Placement placement) {
  switch (placement) {
    case FleetSpec::Placement::kNone: return "none";
    case FleetSpec::Placement::kOnePerServer: return "one-per-server";
    case FleetSpec::Placement::kDirect: return "direct";
    case FleetSpec::Placement::kProviderLaunch: return "provider-launch";
    case FleetSpec::Placement::kOrchestrated: return "orchestrated";
  }
  return "unknown";
}

std::string to_string(FleetSpec::Control control) {
  switch (control) {
    case FleetSpec::Control::kIdle: return "idle";
    case FleetSpec::Control::kAutonomous: return "autonomous";
    case FleetSpec::Control::kMonitor: return "monitor";
    case FleetSpec::Control::kCoordinated: return "coordinated";
  }
  return "unknown";
}

void append_spec_json(const ScenarioSpec& spec, obs::JsonWriter& json,
                      std::string_view key) {
  json.begin_object(key);
  json.field("name", spec.name);
  if (spec.single_server) {
    json.begin_object("single_server")
        .field("name", spec.single_server->name)
        .field("seed", spec.single_server->seed)
        .field("prior_uptime_s", to_seconds(spec.single_server->prior_uptime))
        .end_object();
  } else {
    json.begin_object("datacenter")
        .field("racks", spec.datacenter.num_racks)
        .field("servers_per_rack", spec.datacenter.servers_per_rack)
        .field("seed", spec.datacenter.seed)
        .field("benign_load", spec.datacenter.benign_load)
        .field("benign_load_servers", spec.datacenter.benign_load_servers)
        .field("rack_power_cap_w", spec.datacenter.rack_power_cap_w)
        .field("num_threads", spec.datacenter.num_threads)
        .field("sparse", spec.datacenter.sparse)
        .end_object();
  }
  if (spec.provider) {
    json.begin_object("provider")
        .field("seed", spec.provider->seed)
        .field("placement", cloud::to_string(spec.provider->placement))
        .field("background_tenants", spec.provider->background_tenants)
        .field("billing_epoch_s", to_seconds(spec.provider->billing_epoch));
    if (spec.provider->churn.storms > 0) {
      const auto& churn = spec.provider->churn;
      json.begin_object("churn")
          .field("storms", churn.storms)
          .field("interval_s", to_seconds(churn.interval))
          .field("launches_per_storm", churn.launches_per_storm)
          .field("launch_jitter", churn.launch_jitter)
          .field("terminate_fraction", churn.terminate_fraction)
          .field("tenants", churn.tenants)
          .field("seed", churn.seed)
          .end_object();
    }
    json.end_object();
  }
  if (spec.warmup) {
    json.begin_object("warmup")
        .field("until_s", to_seconds(spec.warmup->until))
        .field("step_s", to_seconds(spec.warmup->step))
        .end_object();
  }
  json.begin_object("fleet")
      .field("placement", to_string(spec.fleet.placement))
      .field("count", spec.fleet.count)
      .field("tenant", spec.fleet.tenant)
      .field("attackers", spec.fleet.attackers)
      .field("monitors", spec.fleet.monitors)
      .field("control", to_string(spec.fleet.control))
      .field("strategy", attack::to_string(spec.fleet.attack.kind))
      .end_object();
  json.begin_object("defense")
      .field("power_namespace", spec.defense.model.has_value())
      .field("enabled", spec.defense.enable)
      .field("stage1_masking", spec.defense.stage1_masking)
      .end_object();
  if (!spec.faults.empty()) {
    faults::append_plan_json(spec.faults, json);
  }
  json.end_object();
}

void ScenarioResult::append_json(obs::JsonWriter& json,
                                 std::string_view key) const {
  json.begin_object(key)
      .field("scenario", scenario)
      .field("num_servers", num_servers)
      .field("seed", seed)
      .field("end_s", end_s)
      .field("steps", steps)
      .field("sim_seconds", sim_seconds)
      .field("peak_total_w", peak_total_w)
      .field("peak_rack_w", peak_rack_w)
      .field("breaker_tripped", breaker_tripped)
      .field("fleet_size", fleet_size)
      .field("spikes", spikes)
      .field("attack_seconds", attack_seconds)
      .field("monitor_seconds", monitor_seconds)
      .field("launches", launches)
      .field("verifications", verifications)
      .field("acquisition_success", acquisition_success)
      .end_object();
}

}  // namespace cleaks::sim
