// Canned ScenarioSpecs for the paper's evaluation matrix. A preset that is
// shared between a bench and a test lives here so the golden test pins the
// *same* spec the bench runs, not a transcription of it.
#pragma once

#include "attack/strategy.h"
#include "sim/scenario.h"

namespace cleaks::sim {

/// The standard "fast-forward to the morning demand ramp" warmup
/// (simulated t=0 is midnight; crests only exist where load moves):
/// coarse 5 s host ticks, 30 s steps until 09:00, then 1 s ticks.
WarmupSpec morning_ramp_warmup();

/// Fig 3 fleet: 8 servers behind one breaker, identical benign background
/// (seed 4248) for every strategy, one 8-vCPU attacker container + RAPL
/// monitor per server. Crest constants are Fig 3's (0.5% trigger band,
/// two-trial budget, 15 s spikes, 600 s cooldown). Control starts kIdle;
/// the bench switches to kMonitor / kCoordinated / kAutonomous per phase.
ScenarioSpec fig3_fleet(attack::StrategyKind kind);

}  // namespace cleaks::sim
