// Declarative experiment layer (the "scenario engine").
//
// A ScenarioSpec is a pure value describing one ContainerLeaks experiment:
// the facility (a Datacenter, or a single bare Server for testbed-style
// runs), the provider in front of it, a warmup schedule, the attacker
// fleet (placement + control strategy), and the defense wiring. A
// SimEngine (engine.h) builds the world from the spec in a fixed order so
// that every bench and example constructs *identical* RNG streams — the
// pinned invariant is that refactoring a bench onto a spec changes no
// output bit at any CLEAKS_THREADS value.
#pragma once

#include <optional>
#include <string>

#include "attack/strategy.h"
#include "cloud/billing.h"
#include "faults/plan.h"
#include "cloud/datacenter.h"
#include "cloud/provider.h"
#include "container/container.h"
#include "defense/power_model.h"
#include "obs/export.h"
#include "util/sim_time.h"

namespace cleaks::sim {

/// Testbed alternative to a full Datacenter: one bare Server, as used by
/// the defense-side experiments (Table 3, ablation stages, the namespace
/// demo). Mutually exclusive with ScenarioSpec::datacenter.
struct SingleServerSpec {
  std::string name = "host";
  cloud::CloudServiceProfile profile = cloud::local_testbed();
  std::uint64_t seed = 1;
  SimDuration prior_uptime = 0;
};

/// Deterministic create/destroy storms driven through the provider's
/// batch API — the §IV-C amortized probe loop as a background workload.
/// Storm `k` fires once the sim clock reaches build-time + (k+1) ×
/// `interval`, launches a batch for tenant `prefix + (k % tenants)` and
/// terminates a fraction of that tenant's oldest instances. Every draw is
/// a pure function of (seed, storm ordinal) via Rng::fork, so the
/// schedule is bitwise lane-count independent.
struct ChurnSpec {
  int storms = 0;  ///< total storms; 0 disables churn
  SimDuration interval = kMinute;
  int launches_per_storm = 8;
  /// Up to this many extra launches per storm (forked-RNG jitter).
  int launch_jitter = 0;
  /// Fraction of the tenant's live fleet terminated, oldest first.
  double terminate_fraction = 0.5;
  int tenants = 4;
  std::string tenant_prefix = "churn-";
  std::uint64_t seed = 99;
};

/// Provider fronting the datacenter (billing + placement + launch API).
struct ProviderSpec {
  std::uint64_t seed = 0;
  cloud::BillingRates rates;
  cloud::PlacementPolicy placement = cloud::PlacementPolicy::kRandom;
  int max_instances_per_server = 8;
  /// Billing rollup epoch (see CloudProvider: deferred idle metering is
  /// settled at least this often).
  SimDuration billing_epoch = kHour;
  /// Benign tenants launched (1-arg launch) before the fleet deploys.
  int background_tenants = 0;
  std::string background_prefix = "background-";
  ChurnSpec churn;
};

/// The shared "fast-forward to the morning ramp" warmup: step coarsely at
/// `tick` host granularity until `until`, then drop to `tick_after` for
/// the measured phase. Benches used to hand-roll this loop with silently
/// diverging lengths; SimEngine::run_until is now the single copy.
struct WarmupSpec {
  SimTime until = 9 * kHour;
  SimDuration step = 30 * kSecond;
  SimDuration tick = 5 * kSecond;        ///< host tick during warmup (0 = leave)
  SimDuration tick_after = kSecond;      ///< host tick after warmup (0 = leave)
};

/// Fleet-wide crest trigger used by Control::kCoordinated (Fig 3's
/// synergistic window): a decaying high-water mark over the aggregate
/// RAPL sample; when the sample crests the mark, every attacker fires at
/// once. Defaults are Fig 3's constants.
struct CoordinatedCrestSpec {
  double decay = 0.99999;          ///< high-water decay per step
  double trigger_ratio = 0.995;    ///< fire when sample >= high_water * ratio
  int max_spikes = 2;              ///< trial budget for the measured window
  SimDuration spike_duration = 15 * kSecond;
  SimDuration cooldown = 600 * kSecond;
};

/// The attacker-controlled containers: how they are placed and how they
/// are driven each step.
struct FleetSpec {
  enum class Placement {
    kNone,            ///< no fleet
    kOnePerServer,    ///< one instance directly on every server (Fig 3)
    kDirect,          ///< `count` instances on server 0 (testbed runs)
    kProviderLaunch,  ///< `count` instances via CloudProvider::launch
    kOrchestrated,    ///< CoResidenceOrchestrator::acquire (Fig 4, §IV-C)
  };
  enum class Control {
    kIdle,         ///< fleet exists but is not driven
    kAutonomous,   ///< each PowerAttacker steps itself (its own strategy)
    kMonitor,      ///< observe only: maintain the coordinated high-water
    kCoordinated,  ///< fleet-wide crest trigger (CoordinatedCrestSpec)
  };

  Placement placement = Placement::kNone;
  /// Instances for kDirect / kProviderLaunch, group size for kOrchestrated.
  int count = 1;
  /// Container config; nullopt = provider/runtime default (matters for
  /// kProviderLaunch, whose 1-arg overload bills differently).
  std::optional<container::ContainerConfig> container;
  std::string tenant = "attacker";
  int max_launches = 100;          ///< kOrchestrated launch budget
  bool attackers = false;          ///< attach a PowerAttacker per instance
  attack::AttackConfig attack;
  bool monitors = false;           ///< attach a RaplMonitor per instance
  Control control = Control::kIdle;
  CoordinatedCrestSpec crest;
  /// Deploy during SimEngine construction (after warmup). Clear it for
  /// scenarios that place the fleet mid-run (capping_window).
  bool deploy_on_build = true;
};

/// Defense wiring on server 0's runtime.
struct DefenseSpec {
  /// Trained model => construct a PowerNamespace (§V-B). The namespace is
  /// always constructed when a model is present; `enable` controls whether
  /// it is switched on.
  std::optional<defense::PowerModel> model;
  bool enable = false;
  /// Enable before the fleet deploys (so probe containers are born
  /// namespaced) instead of the default after-fleet enable.
  bool enable_before_fleet = false;
  /// Apply the provider's stage-1 path masking (§V-A) after build.
  bool stage1_masking = false;
};

/// The complete declarative experiment description.
struct ScenarioSpec {
  std::string name = "scenario";
  /// Facility: `single_server` set => one bare Server; else `datacenter`.
  cloud::DatacenterConfig datacenter;
  std::optional<SingleServerSpec> single_server;
  /// Host tick applied at build, before warmup (0 = profile default).
  SimDuration host_tick = 0;
  std::optional<ProviderSpec> provider;
  std::optional<WarmupSpec> warmup;
  FleetSpec fleet;
  DefenseSpec defense;
  /// Deterministic fault schedule (empty = no faults injected). Applied to
  /// every server's pseudo-fs at build; kRaplWrapForce rules fire at step
  /// boundaries; kPerfDropout is consumed by the defense trainer.
  faults::FaultPlan faults;
};

/// Aggregated outcome of a run, serialized through obs::BenchReport.
/// Peaks/steps cover the *measured* window (since the last
/// SimEngine::reset_measurement), matching bench headline semantics.
struct ScenarioResult {
  std::string scenario;
  int num_servers = 0;
  std::uint64_t seed = 0;
  double end_s = 0.0;              ///< sim clock at result() time
  std::uint64_t steps = 0;
  double sim_seconds = 0.0;
  double peak_total_w = 0.0;
  double peak_rack_w = 0.0;
  bool breaker_tripped = false;
  int fleet_size = 0;
  int spikes = 0;                  ///< crest triggers, else summed attacker stats
  double attack_seconds = 0.0;
  double monitor_seconds = 0.0;
  int launches = 0;                ///< kOrchestrated acquisition effort
  int verifications = 0;
  bool acquisition_success = false;

  /// Append as an object under `key` to an open JSON object.
  void append_json(obs::JsonWriter& json, std::string_view key = "result") const;
};

std::string to_string(FleetSpec::Placement placement);
std::string to_string(FleetSpec::Control control);

/// Append the spec as an object under `key` — the declarative record of
/// what ran, embedded in every scenario-driven bench envelope.
void append_spec_json(const ScenarioSpec& spec, obs::JsonWriter& json,
                      std::string_view key = "spec");

}  // namespace cleaks::sim
