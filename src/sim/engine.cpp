#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <map>

#include "leakage/channels.h"
#include "leakage/detector.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/stream.h"
#include "workload/profiles.h"

namespace cleaks::sim {
namespace {

// Engine telemetry rides the same Scope::kSim registry as the layers it
// orchestrates: step counts depend only on the scenario, never on lanes.
struct SimMetrics {
  obs::Counter& scenarios = obs::Registry::global().counter(
      "sim_scenarios_built_total", "SimEngine worlds constructed from specs");
  obs::Counter& steps = obs::Registry::global().counter(
      "sim_engine_steps_total", "SimEngine::step invocations");
  obs::Counter& epochs = obs::Registry::global().counter(
      "sim_engine_epochs_total", "completed run_* phases");
  obs::Counter& crest_triggers = obs::Registry::global().counter(
      "sim_crest_triggers_total", "coordinated fleet-wide spike launches");
  obs::Counter& churn_storms = obs::Registry::global().counter(
      "sim_churn_storms_total",
      "provider create/destroy storms fired (ChurnSpec)");
  // Runtime scope: a cost-accounting detail of the stepping strategy, and
  // keeping it out of the kSim digest preserves digests recorded before
  // coalescing existed.
  obs::Counter& coalesced_steps = obs::Registry::global().counter(
      "sim_engine_coalesced_steps_total",
      "engine steps absorbed into variable-length idle strides",
      obs::Scope::kRuntime);

  static SimMetrics& get() {
    static SimMetrics metrics;
    return metrics;
  }
};

}  // namespace

SimEngine::SimEngine(ScenarioSpec spec) : spec_(std::move(spec)) { build(); }

SimEngine::~SimEngine() = default;

void SimEngine::build() {
  // 1. Facility.
  if (spec_.single_server) {
    const auto& s = *spec_.single_server;
    single_ = std::make_unique<cloud::Server>(s.name, s.profile, s.seed,
                                              s.prior_uptime);
    if (s.profile.hardware.num_cores > 0 &&
        s.profile.hardware.num_packages > 0) {
      const hw::BatchedGeometry geometry{
          s.profile.hardware.num_cores, s.profile.hardware.num_packages,
          static_cast<int>(s.profile.hardware.cpuidle_states.size())};
      single_physics_ = std::make_unique<hw::BatchedPhysics>(geometry, 1);
      single_->bind_physics(*single_physics_, 0);
    }
  } else {
    dc_ = std::make_unique<cloud::Datacenter>(spec_.datacenter);
    if (spec_.provider) {
      const auto& p = *spec_.provider;
      provider_ = std::make_unique<cloud::CloudProvider>(
          *dc_, p.seed, p.rates, p.placement, p.max_instances_per_server,
          p.billing_epoch);
    }
  }
  if (spec_.host_tick != 0) set_host_tick(spec_.host_tick);

  // 1b. Fault injector, before any stepping so warmup reads see the same
  // schedule as the measured window. Installing it draws no RNG and
  // renders nothing: an empty plan leaves the world bit-identical.
  if (!spec_.faults.empty()) {
    fault_injector_ = std::make_unique<faults::FaultInjector>(spec_.faults);
    for (int i = 0; i < num_servers(); ++i) {
      server(i).fs().set_fault_injector(fault_injector_.get());
    }
  }

  // 2. Defense construction (the namespace must exist before any probe
  // container when enable_before_fleet is set).
  if (spec_.defense.model) {
    power_ns_ = std::make_unique<defense::PowerNamespace>(
        server(0).runtime(), *spec_.defense.model);
    if (spec_.defense.enable && spec_.defense.enable_before_fleet) {
      power_ns_->enable();
    }
  }

  // 3. Warmup (the deduplicated fast-forward; see WarmupSpec).
  if (spec_.warmup) {
    const auto& w = *spec_.warmup;
    if (w.tick != 0) set_host_tick(w.tick);
    run_until(w.until, w.step);
    if (w.tick_after != 0) set_host_tick(w.tick_after);
  }

  // 4. Background tenants, then the fleet.
  if (provider_ && spec_.provider->background_tenants > 0) {
    for (int i = 0; i < spec_.provider->background_tenants; ++i) {
      provider_->launch(spec_.provider->background_prefix + std::to_string(i));
    }
  }
  if (spec_.fleet.deploy_on_build) deploy_fleet();

  // 5. Defense enable + stage-1 masking.
  if (power_ns_ && spec_.defense.enable && !spec_.defense.enable_before_fleet) {
    // The namespace mutates through the runtime reference it captured at
    // construction; after the warmup above server 0 may be parked, so
    // route one access through the accessor to catch it up first.
    (void)server(0);
    power_ns_->enable();
  }
  if (spec_.defense.stage1_masking) {
    defense::apply_stage1_masking(server(0).runtime());
  }

  control_ = spec_.fleet.control;
  // Churn storms are scheduled relative to the end of build, so warmup
  // length never shifts which steps they land on.
  if (provider_ && spec_.provider->churn.storms > 0) {
    next_churn_at_ = now() + spec_.provider->churn.interval;
  }
  SimMetrics::get().scenarios.inc();
}

void SimEngine::step_churn_() {
  if (!provider_ || !spec_.provider ||
      churn_storms_done_ >= spec_.provider->churn.storms) {
    return;
  }
  const ChurnSpec& churn = spec_.provider->churn;
  while (churn_storms_done_ < churn.storms && now() >= next_churn_at_) {
    const int ordinal = churn_storms_done_;
    // Every storm draw is a pure function of (seed, ordinal): lane counts
    // and step granularity cannot move the schedule.
    Rng draw = Rng(churn.seed).fork(static_cast<std::uint64_t>(ordinal));
    const std::string tenant =
        churn.tenant_prefix +
        std::to_string(churn.tenants > 0 ? ordinal % churn.tenants : 0);
    int launches = churn.launches_per_storm;
    if (churn.launch_jitter > 0) {
      launches += static_cast<int>(draw.uniform_u64(
          0, static_cast<std::uint64_t>(churn.launch_jitter)));
    }
    provider_->launch_batch(tenant, launches);
    const int live = provider_->live_instances(tenant);
    const int terminates =
        static_cast<int>(static_cast<double>(live) * churn.terminate_fraction);
    provider_->terminate_oldest(tenant, terminates);
    ++churn_storms_done_;
    next_churn_at_ += churn.interval;
    SimMetrics::get().churn_storms.inc();
  }
}

int SimEngine::num_servers() const {
  return dc_ ? dc_->num_servers() : (single_ ? 1 : 0);
}

cloud::Server& SimEngine::server(int index) {
  if (dc_) return dc_->server(index);
  assert(single_ && index == 0);
  return *single_;
}

SimTime SimEngine::now() const { return dc_ ? dc_->now() : single_now_; }

void SimEngine::set_host_tick(SimDuration tick) {
  for (int i = 0; i < num_servers(); ++i) {
    server(i).host().set_tick_duration(tick);
  }
}

void SimEngine::deploy_fleet() {
  if (fleet_deployed_ || spec_.fleet.placement == FleetSpec::Placement::kNone) {
    return;
  }
  fleet_deployed_ = true;
  const FleetSpec& f = spec_.fleet;
  const container::ContainerConfig cc =
      f.container.value_or(container::ContainerConfig{});

  auto attach = [&](const std::shared_ptr<container::Container>& instance,
                    int server_index) {
    instances_.push_back(instance);
    instance_server_.push_back(server_index);
    if (f.attackers) {
      attackers_.push_back(
          std::make_unique<attack::PowerAttacker>(*instance, f.attack));
    }
    if (f.monitors) {
      monitors_.push_back(std::make_unique<attack::RaplMonitor>(*instance));
    }
  };

  switch (f.placement) {
    case FleetSpec::Placement::kNone:
      break;
    case FleetSpec::Placement::kOnePerServer:
      for (int i = 0; i < num_servers(); ++i) {
        attach(server(i).runtime().create(cc), i);
      }
      break;
    case FleetSpec::Placement::kDirect:
      for (int i = 0; i < f.count; ++i) {
        attach(server(0).runtime().create(cc), 0);
      }
      break;
    case FleetSpec::Placement::kProviderLaunch:
      for (int i = 0; i < f.count; ++i) {
        auto instance = f.container ? provider_->launch(f.tenant, cc)
                                    : provider_->launch(f.tenant);
        provider_instance_ids_.push_back(instance->instance_id);
        attach(instance->handle, provider_->server_of(instance->instance_id));
      }
      break;
    case FleetSpec::Placement::kOrchestrated: {
      verifier_ = std::make_unique<coresidence::TimerImplantDetector>();
      attack::CoResidenceOrchestrator orchestrator(*provider_, *verifier_);
      acquisition_ = orchestrator.acquire(f.tenant, f.count, f.max_launches);
      for (const auto& instance : acquisition_.instances) {
        provider_instance_ids_.push_back(instance->instance_id);
        attach(instance->handle, provider_->server_of(instance->instance_id));
      }
      break;
    }
  }
}

void SimEngine::destroy_fleet() {
  // Attackers/monitors hold raw pointers into the containers — drop them
  // before the containers go away.
  attackers_.clear();
  monitors_.clear();
  if (!provider_instance_ids_.empty()) {
    for (const auto& id : provider_instance_ids_) provider_->terminate(id);
  } else {
    for (std::size_t i = 0; i < instances_.size(); ++i) {
      server(instance_server_[i]).runtime().destroy(instances_[i]->id());
    }
  }
  instances_.clear();
  instance_server_.clear();
  provider_instance_ids_.clear();
  fleet_deployed_ = false;
}

void SimEngine::fleet_run(const std::string& comm,
                          const kernel::TaskBehavior& behavior,
                          int copies_per_instance) {
  for (const auto& instance : instances_) {
    for (int c = 0; c < copies_per_instance; ++c) {
      instance->run(comm, behavior);
    }
  }
}

void SimEngine::fleet_start_virus() {
  for (auto& attacker : attackers_) attacker->start_virus();
}

void SimEngine::fleet_stop_virus() {
  for (auto& attacker : attackers_) attacker->stop_virus();
}

double SimEngine::fleet_sample_w(SimDuration window) {
  double total = 0.0;
  for (auto& monitor : monitors_) {
    total += monitor->sample_w(window).value_or(0.0);
  }
  return total;
}

double SimEngine::fleet_attack_seconds() const {
  double total = crest_attack_seconds_;
  for (const auto& attacker : attackers_) {
    total += attacker->stats().attack_seconds;
  }
  return total;
}

double SimEngine::fleet_monitor_seconds() const {
  double total = crest_monitor_seconds_;
  for (const auto& attacker : attackers_) {
    total += attacker->stats().monitor_seconds;
  }
  return total;
}

void SimEngine::step_fleet(SimDuration dt) {
  switch (control_) {
    case FleetSpec::Control::kIdle:
      break;
    case FleetSpec::Control::kAutonomous:
      for (auto& attacker : attackers_) attacker->step(now(), dt);
      break;
    case FleetSpec::Control::kMonitor:
      high_water_w_ = std::max(high_water_w_ * spec_.fleet.crest.decay,
                               fleet_sample_w(dt));
      crest_monitor_seconds_ += to_seconds(dt);
      break;
    case FleetSpec::Control::kCoordinated: {
      const CoordinatedCrestSpec& crest = spec_.fleet.crest;
      const double sample = fleet_sample_w(dt);
      if (crest_attacking_) {
        if (now() >= crest_spike_end_) {
          fleet_stop_virus();
          crest_attacking_ = false;
          crest_cooldown_until_ = now() + crest.cooldown;
        }
        // The fleet burned CPU this whole interval (including the step
        // on which the spike ends).
        crest_attack_seconds_ += fleet_size() * to_seconds(dt);
      } else {
        high_water_w_ = std::max(high_water_w_ * crest.decay, sample);
        crest_monitor_seconds_ += to_seconds(dt);
        if (now() >= crest_cooldown_until_ &&
            crest_spikes_ < crest.max_spikes &&
            sample >= high_water_w_ * crest.trigger_ratio) {
          fleet_start_virus();
          crest_attacking_ = true;
          crest_spike_end_ = now() + crest.spike_duration;
          ++crest_spikes_;
          SimMetrics::get().crest_triggers.inc();
        }
      }
      break;
    }
  }
}

void SimEngine::step(SimDuration dt) {
  // Fault boundary first: a forced wrap parks every RAPL counter at the
  // wrap edge so this step's energy carries it over — the sampling-gap
  // glitch consumers must survive. Drawn on fault_step_, which (unlike
  // steps_) never resets, so the schedule is spec-pure.
  if (fault_injector_ != nullptr &&
      fault_injector_->rapl_wrap_at_step(fault_step_, now())) {
    for (int i = 0; i < num_servers(); ++i) {
      for (auto& pkg : server(i).host().mutable_rapl()) {
        pkg.package().force_wrap();
        pkg.core().force_wrap();
        pkg.dram().force_wrap();
      }
    }
  }
  ++fault_step_;

  // Physics first: the provider's step meters billing around the
  // datacenter step; a bare server just ticks.
  if (provider_) {
    provider_->step(dt);
  } else if (dc_) {
    dc_->step(dt);
  } else {
    single_->step(dt);
    single_now_ += dt;
  }

  step_churn_();
  step_fleet(dt);

  const double total = total_power_w();
  peak_total_w_ = std::max(peak_total_w_, total);
  if (dc_) {
    for (int rack = 0; rack < spec_.datacenter.num_racks; ++rack) {
      peak_rack_w_ = std::max(peak_rack_w_, dc_->rack_power_w(rack));
    }
    if (dc_->any_breaker_tripped()) breaker_tripped_ = true;
  } else {
    peak_rack_w_ = std::max(peak_rack_w_, total);
  }
  drain_event_stream_();

  ++steps_;
  sim_seconds_ += to_seconds(dt);
  SimMetrics::get().steps.inc();

  if (on_step_) {
    const StepContext ctx{static_cast<int>(steps_) - 1, now(), total};
    on_step_(*this, ctx);
  }
}

void SimEngine::drain_event_stream_() {
  // Measurement-phase drain: the bus is quiescent here (the parallel
  // server step joined above), so the merge sees every lane's ring whole.
  // Draining every step keeps the rings far from wrapping, which is what
  // makes the Scope::kSim drop counter lane-count-independent (it stays 0).
  if (drain_events_ ||
      (obs::EventBus::global().enabled() &&
       obs::FlightRecorder::global().enabled())) {
    const std::vector<obs::Event> batch = obs::EventBus::global().drain();
    events_drained_ += batch.size();
    events_digest_ = obs::EventBus::digest(batch, events_digest_);
    if (aggregator_) aggregator_->feed(batch);
    auto& recorder = obs::FlightRecorder::global();
    if (recorder.enabled()) recorder.feed(batch);
  }
}

std::uint64_t SimEngine::coalesce_(SimDuration dt, std::uint64_t max_steps) {
  if (max_steps <= 1 || dt == 0) return 0;
  // Anything that acts on per-step boundaries outside the datacenter
  // disqualifies the stride: the fault schedule draws per step, the
  // provider meters billing per step, fleet control samples per step, and
  // hooks observe each step. (A deployed fleet also pins its servers
  // active — containers end coast eligibility — so the facility gate
  // below would refuse anyway; the control_ check is belt and braces.)
  if (!dc_ || provider_ || fault_injector_ || on_step_ ||
      control_ != FleetSpec::Control::kIdle) {
    return 0;
  }
  const std::uint64_t k = dc_->coalescible_steps(dt, max_steps);
  if (k == 0) return 0;
  dc_->step_coalesced(dt, k);
  fault_step_ += k;
  steps_ += k;
  // Replay the float accumulation per virtual step — += k*to_seconds(dt)
  // would round differently than k separate adds.
  for (std::uint64_t s = 0; s < k; ++s) sim_seconds_ += to_seconds(dt);
  SimMetrics::get().steps.inc(k);
  SimMetrics::get().coalesced_steps.inc(k);
  // Peaks and the breaker flag fold a world that was constant across the
  // stride, so observing it once equals observing it k times.
  const double total = total_power_w();
  peak_total_w_ = std::max(peak_total_w_, total);
  for (int rack = 0; rack < spec_.datacenter.num_racks; ++rack) {
    peak_rack_w_ = std::max(peak_rack_w_, dc_->rack_power_w(rack));
  }
  if (dc_->any_breaker_tripped()) breaker_tripped_ = true;
  // No server stepped, so no events were emitted; the drain is the same
  // empty-batch identity k plain steps would have folded.
  drain_event_stream_();
  return k;
}

void SimEngine::enable_event_stream(SimDuration window_width) {
  obs::EventBus::global().set_enabled(true);
  drain_events_ = true;
  events_digest_ = obs::EventBus::kDigestSeed;
  if (window_width > 0 && !aggregator_) {
    aggregator_ = std::make_unique<obs::WindowAggregator>(window_width);
  }
}

void SimEngine::run_steps(int steps, SimDuration dt, const StepHook& hook,
                          std::string_view label) {
  for (int i = 0; i < steps; ++i) {
    if (!hook) {
      const std::uint64_t k =
          coalesce_(dt, static_cast<std::uint64_t>(steps - i));
      if (k > 0) {
        i += static_cast<int>(k) - 1;
        continue;
      }
    }
    step(dt);
    if (hook) {
      const StepContext ctx{i, now(), total_power_w()};
      hook(*this, ctx);
    }
  }
  SimMetrics::get().epochs.inc();
  if (on_epoch_) on_epoch_(*this, label, steps);
}

void SimEngine::run_for(SimDuration total, SimDuration dt,
                        const StepHook& hook, std::string_view label) {
  // Contract: advance the clock by exactly `total`. A total that is not a
  // multiple of `dt` ends with one final partial step of the remainder
  // (the old truncation silently under-ran; tests/sim_test.cpp pins this).
  int i = 0;
  SimDuration left = total;
  while (left > 0) {
    if (!hook && left >= dt) {
      const std::uint64_t k = coalesce_(dt, left / dt);
      if (k > 0) {
        left -= dt * k;
        i += static_cast<int>(k);
        continue;
      }
    }
    const SimDuration step_dt = left < dt ? left : dt;
    step(step_dt);
    if (hook) {
      const StepContext ctx{i, now(), total_power_w()};
      hook(*this, ctx);
    }
    left -= step_dt;
    ++i;
  }
  SimMetrics::get().epochs.inc();
  if (on_epoch_) on_epoch_(*this, label, i);
}

void SimEngine::run_until(SimTime target, SimDuration dt, const StepHook& hook,
                          std::string_view label) {
  int i = 0;
  while (now() < target) {
    if (!hook) {
      // Plain stepping takes ceil(remaining / dt) steps (the last one may
      // overshoot target); bound the stride by the same count.
      const SimTime remaining = target - now();
      const std::uint64_t k = coalesce_(dt, (remaining - 1) / dt + 1);
      if (k > 0) {
        i += static_cast<int>(k);
        continue;
      }
    }
    step(dt);
    if (hook) {
      const StepContext ctx{i, now(), total_power_w()};
      hook(*this, ctx);
    }
    ++i;
  }
  SimMetrics::get().epochs.inc();
  if (on_epoch_) on_epoch_(*this, label, i);
}

double SimEngine::total_power_w() const {
  if (dc_) return dc_->total_power_w();
  return single_ ? single_->power_w() : 0.0;
}

double SimEngine::rack_power_w(int rack) const {
  if (dc_) return dc_->rack_power_w(rack);
  return single_ ? single_->power_w() : 0.0;
}

double SimEngine::server_power_w(int index) {
  return server(index).power_w();
}

SimEngine::BillingProbe SimEngine::billing_probe(
    const std::string& tenant) const {
  BillingProbe probe;
  if (provider_) {
    probe.cost_usd = provider_->billing().total_cost(tenant);
    probe.cpu_hours = provider_->billing().cpu_hours(tenant);
  }
  return probe;
}

SimEngine::LeakScanProbe SimEngine::leak_scan_probe(
    const container::ContainerConfig& probe_config) {
  LeakScanProbe result;
  cloud::Server& srv = server(0);
  if (scan_validator_ == nullptr) {
    leakage::ScanOptions options;
    options.probe_config = probe_config;
    scan_validator_ =
        std::make_unique<leakage::CrossValidator>(srv, std::move(options));
  }
  // One full scan covers every channel path at once; with the incremental
  // cache a repeat probe on an unmoved world re-renders nothing at all.
  const std::vector<leakage::FileFinding> findings = scan_validator_->scan();
  std::map<std::string_view, leakage::LeakClass> by_path;
  for (const auto& finding : findings) {
    by_path.emplace(finding.path, finding.cls);
  }
  for (const auto& channel : leakage::table1_channels()) {
    for (const auto& path : leakage::channel_paths(channel, srv.fs())) {
      ++result.total_paths;
      const auto it = by_path.find(path);
      const leakage::LeakClass cls =
          it == by_path.end() ? leakage::LeakClass::kAbsent : it->second;
      if (cls == leakage::LeakClass::kLeaking) ++result.leaking;
      if (cls != leakage::LeakClass::kMasked &&
          cls != leakage::LeakClass::kAbsent) {
        ++result.functional;
      }
    }
  }
  return result;
}

int SimEngine::coresidence_probe(const container::ContainerConfig& probe_config,
                                 int* total) {
  cloud::Server& srv = server(0);
  auto a = srv.runtime().create(probe_config);
  auto b = srv.runtime().create(probe_config);
  coresidence::ProbeEnv env;
  env.advance = [&srv](SimDuration dt) { srv.step(dt); };
  int coresident = 0;
  int n = 0;
  for (const auto& detector : coresidence::all_detectors()) {
    ++n;
    if (detector->verify(*a, *b, env) == coresidence::Verdict::kCoResident) {
      ++coresident;
    }
  }
  srv.runtime().destroy(a->id());
  srv.runtime().destroy(b->id());
  if (total) *total = n;
  return coresident;
}

bool SimEngine::crest_signal_probe() {
  cloud::Server& srv = server(0);
  auto observer = srv.runtime().create({});
  attack::RaplMonitor monitor(*observer);
  monitor.sample_w(kSecond);  // prime
  srv.step(2 * kSecond);
  const auto quiet = monitor.sample_w(2 * kSecond);

  const workload::Profile virus = workload::power_virus();
  std::vector<kernel::HostPid> pids;
  for (int i = 0; i < 8; ++i) {
    pids.push_back(
        srv.host()
            .spawn_task({.comm = "surge", .behavior = virus.behavior})
            ->host_pid);
  }
  srv.step(3 * kSecond);
  const auto loud = monitor.sample_w(3 * kSecond);
  for (const auto pid : pids) srv.host().kill_task(pid);
  srv.runtime().destroy(observer->id());
  return quiet.has_value() && loud.has_value() && *loud > *quiet * 1.5;
}

void SimEngine::reset_measurement() {
  steps_ = 0;
  sim_seconds_ = 0.0;
  peak_total_w_ = 0.0;
  peak_rack_w_ = 0.0;
  breaker_tripped_ = false;
}

ScenarioResult SimEngine::result() const {
  ScenarioResult r;
  r.scenario = spec_.name;
  r.num_servers = num_servers();
  r.seed = spec_.single_server ? spec_.single_server->seed
                               : spec_.datacenter.seed;
  r.end_s = to_seconds(now());
  r.steps = steps_;
  r.sim_seconds = sim_seconds_;
  r.peak_total_w = peak_total_w_;
  r.peak_rack_w = peak_rack_w_;
  r.breaker_tripped = breaker_tripped_;
  r.fleet_size = fleet_size();
  int attacker_spikes = 0;
  for (const auto& attacker : attackers_) {
    attacker_spikes += attacker->stats().spikes_launched;
  }
  r.spikes = crest_spikes_ > 0 ? crest_spikes_ : attacker_spikes;
  r.attack_seconds = fleet_attack_seconds();
  r.monitor_seconds = fleet_monitor_seconds();
  r.launches = acquisition_.launches;
  r.verifications = acquisition_.verifications;
  r.acquisition_success = acquisition_.success;
  return r;
}

void SimEngine::append_report_json(obs::JsonWriter& json) const {
  append_spec_json(spec_, json);
  result().append_json(json);
}

}  // namespace cleaks::sim
