#include "hw/spec.h"

namespace cleaks::hw {

std::vector<CpuIdleStateSpec> HardwareSpec::default_cpuidle_states() {
  return {
      {"POLL", 0, 0},
      {"C1", 2, 2},
      {"C1E", 10, 20},
      {"C3", 70, 100},
      {"C6", 85, 200},
  };
}

HardwareSpec testbed_i7_6700() {
  HardwareSpec spec;  // defaults model the paper's testbed already
  return spec;
}

HardwareSpec cloud_xeon_server() {
  HardwareSpec spec;
  spec.model_name = "Intel(R) Xeon(R) CPU E5-2683 v4 @ 2.10GHz";
  spec.cpu_family = 6;
  spec.model = 79;
  spec.num_cores = 32;
  spec.cores_per_package = 16;
  spec.num_packages = 2;
  spec.freq_ghz = 2.1;
  spec.memory_bytes = 128ULL << 30;
  spec.cache_kb = 40960;
  spec.numa_nodes = 2;
  // Calibrated so that an idle server draws ~90 W and a fully loaded one
  // ~350 W, and four fully-busy cores running a Prime-like workload add
  // ~40 W (Fig 4 reports ~40 W per 4-core container).
  spec.energy.p_core_idle_w = 1.0;
  spec.energy.p_uncore_w = 36.0;
  spec.energy.p_dram_idle_w = 22.0;
  spec.energy.e_inst_nj = 1.9;
  spec.energy.e_cmiss_core_nj = 10.0;
  spec.energy.e_bmiss_nj = 4.0;
  spec.energy.e_cmiss_dram_nj = 18.0;
  return spec;
}

HardwareSpec pre_sandy_bridge_server() {
  HardwareSpec spec = cloud_xeon_server();
  spec.model_name = "Intel(R) Xeon(R) CPU X5650 @ 2.67GHz";
  spec.cpu_family = 6;
  spec.model = 44;
  spec.freq_ghz = 2.67;
  spec.num_cores = 24;
  spec.cores_per_package = 12;
  spec.has_rapl = false;
  spec.has_dram_rapl = false;
  return spec;
}

}  // namespace cleaks::hw
