// Closed-form idle-interval integrators ("coasting").
//
// A coast-eligible host parks its physics at an *anchor* — a snapshot of
// every accumulator plus the constant rates in force while nothing runs —
// and any later state is a pure function g(anchor, elapsed). Because
// materialising at elapsed E always recomputes from the anchor (never from
// the previous materialisation), evaluating g at E1 < E2 < ... < En leaves
// bitwise-identical state to evaluating g once at En: split-invariance by
// construction. That is the property the sparse scheduler leans on — a
// dense run materialises every tick, a sparse run materialises on demand,
// and both land on the same bits (tests/sparse_test.cpp).
//
// These kernels are deliberately RNG-free: the legacy per-tick path draws
// measurement noise, loadavg samples and VFS jitter from the host RNG, so
// no closed form could reproduce an arbitrary tick sequence. Coasting is
// its own regime — entered and left at identical step boundaries in dense
// and sparse mode — in which an idle machine is exactly as boring as its
// rate constants say.
#pragma once

#include <cmath>
#include <cstdint>

#include "hw/rapl.h"
#include "hw/thermal.h"

namespace cleaks::hw {

/// Advance one RAPL domain from `anchor` by `elapsed_sec` seconds at a
/// constant `watts`, writing the result over `out` (which may alias the
/// live, possibly plane-bound state). Mirrors rapl_charge()'s
/// residual/wrap arithmetic so a coast landing on the wrap edge counts
/// wraps exactly like the equivalent charge would.
inline void rapl_coast(RaplDomainState& out, const RaplDomainState& anchor,
                       double watts, double elapsed_sec,
                       std::uint64_t range_uj) noexcept {
  const double joules = watts * elapsed_sec;
  const double raw_uj = anchor.residual_uj + joules * 1e6;
  const auto whole = static_cast<std::uint64_t>(raw_uj);
  out.total_j = anchor.total_j + joules;
  out.residual_uj = raw_uj - static_cast<double>(whole);
  out.wrap_count = anchor.wrap_count + (anchor.counter_uj + whole) / range_uj;
  out.counter_uj = (anchor.counter_uj + whole) % range_uj;
}

/// Exponential relaxation toward ambient with zero core power: the
/// closed-form solution of the thermal RC over an arbitrary interval.
/// Returns the retention factor exp(-t/tau); the caller applies
///   T(E) = ambient + (T_anchor - ambient) * retention
/// per core (one exp shared across all cores of a host).
inline double thermal_coast_retention(double elapsed_sec,
                                      const ThermalParams& params) noexcept {
  return std::exp(-elapsed_sec / params.tau_seconds);
}

/// Deep-idle residency accrued over a coast: the deepest C-state soaks the
/// whole interval, entered at the same ~40 Hz the prior-uptime seeding
/// models. Exact integer microseconds; usage events floor like every other
/// coast rate.
struct CpuIdleCoastDelta {
  std::uint64_t usage = 0;
  std::uint64_t time_us = 0;
};

inline CpuIdleCoastDelta cpuidle_coast(std::uint64_t elapsed_ns,
                                       double elapsed_sec) noexcept {
  CpuIdleCoastDelta delta;
  delta.time_us = elapsed_ns / 1000ULL;
  delta.usage = static_cast<std::uint64_t>(elapsed_sec * 40.0);
  return delta;
}

}  // namespace cleaks::hw
