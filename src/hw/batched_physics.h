// Struct-of-arrays physics plane for a facility of identical servers.
//
// The per-tick physics of the power side channel (§V: energy linear in
// retired work, first-order thermal RC, cpuidle residency, wrapping RAPL
// accumulators) is object-at-a-time when every Host owns its own little
// vectors. At fleet scale that means pointer-chasing per server per tick.
// This plane owns one contiguous array per physical quantity — RAPL domain
// accumulators, core temperatures, idle-state counters, root-cgroup per-cpu
// usage — laid out lane-major (one lane = one server), populated once at
// facility build. Hosts bind() their hw models onto their lane slice and
// become thin views: every existing per-host API (PseudoFs generators,
// RaplMonitor, scan probes) reads the same numbers through the same objects,
// while Datacenter::step advances lanes in tight parallel_for loops over
// contiguous memory.
//
// Determinism: the plane changes *where* state lives, never the arithmetic
// or the per-host RNG draw order, so metric digests, scan findings and the
// Fig 3 goldens are bitwise identical to the unbatched path at every lane
// count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "hw/cpuidle.h"
#include "hw/rapl.h"

namespace cleaks::hw {

/// Per-lane shape; identical for every server in one plane (a Datacenter
/// builds all servers from one CloudServiceProfile).
struct BatchedGeometry {
  int num_cores = 0;
  int num_packages = 0;
  int num_idle_states = 0;
};

class BatchedPhysics {
 public:
  /// RAPL domains per package, in lane order: package, core, dram.
  static constexpr std::size_t kRaplDomainsPerPackage = 3;
  static constexpr std::size_t kRaplPackageOffset = 0;
  static constexpr std::size_t kRaplCoreOffset = 1;
  static constexpr std::size_t kRaplDramOffset = 2;

  /// Allocates every array up front; nothing ever grows, so the slice
  /// pointers handed to bind() stay valid for the plane's lifetime.
  BatchedPhysics(const BatchedGeometry& geometry, std::size_t num_lanes)
      : geom_(geometry),
        num_lanes_(num_lanes),
        rapl_stride_(static_cast<std::size_t>(geometry.num_packages) *
                     kRaplDomainsPerPackage),
        cpuidle_stride_(static_cast<std::size_t>(geometry.num_cores) *
                        static_cast<std::size_t>(geometry.num_idle_states)),
        rapl_(num_lanes * rapl_stride_),
        temps_c_(num_lanes * static_cast<std::size_t>(geometry.num_cores)),
        cpuidle_(num_lanes * cpuidle_stride_),
        cpuacct_ns_(num_lanes * static_cast<std::size_t>(geometry.num_cores)) {
    if (geometry.num_cores <= 0 || geometry.num_packages <= 0) {
      throw std::invalid_argument("BatchedPhysics: empty geometry");
    }
  }

  [[nodiscard]] const BatchedGeometry& geometry() const noexcept {
    return geom_;
  }
  [[nodiscard]] std::size_t num_lanes() const noexcept { return num_lanes_; }

  /// kRaplDomainsPerPackage * num_packages entries, package-major.
  [[nodiscard]] RaplDomainState* rapl_lane(std::size_t lane) noexcept {
    return rapl_.data() + lane * rapl_stride_;
  }
  /// num_cores entries (deg C).
  [[nodiscard]] double* temps_lane(std::size_t lane) noexcept {
    return temps_c_.data() + lane * static_cast<std::size_t>(geom_.num_cores);
  }
  /// num_cores * num_idle_states entries, core-major.
  [[nodiscard]] CpuIdleCounter* cpuidle_lane(std::size_t lane) noexcept {
    return cpuidle_.data() + lane * cpuidle_stride_;
  }
  /// num_cores entries: the root cgroup's cpuacct.usage_percpu row.
  [[nodiscard]] std::uint64_t* cpuacct_lane(std::size_t lane) noexcept {
    return cpuacct_ns_.data() +
           lane * static_cast<std::size_t>(geom_.num_cores);
  }

 private:
  BatchedGeometry geom_;
  std::size_t num_lanes_;
  std::size_t rapl_stride_;
  std::size_t cpuidle_stride_;
  // One contiguous array per quantity (SoA at facility level), lane-major
  // within each so a lane's tick touches one cache-line neighbourhood and
  // lanes never false-share beyond their boundary entries.
  std::vector<RaplDomainState> rapl_;
  std::vector<double> temps_c_;
  std::vector<CpuIdleCounter> cpuidle_;
  std::vector<std::uint64_t> cpuacct_ns_;
};

}  // namespace cleaks::hw
