// Digital Temperature Sensor (coretemp) model.
//
// Backs /sys/devices/platform/coretemp.#/hwmon/hwmon#/temp#_input (Table II
// lists it as a V+M co-residence channel: a tenant can bind a hot workload
// to a core from one container and watch the temperature from another).
// First-order thermal RC: each core's temperature relaxes toward
// ambient + theta * core_power with time constant tau.
#pragma once

#include <cstdint>
#include <vector>

namespace cleaks::hw {

struct ThermalParams {
  double ambient_c = 38.0;      ///< in-chassis ambient (deg C)
  double theta_c_per_w = 2.2;   ///< steady-state rise per watt of core power
  double tau_seconds = 8.0;     ///< thermal time constant
};

class ThermalModel {
 public:
  explicit ThermalModel(int num_cores, ThermalParams params = ThermalParams{});

  /// Advance one tick: `core_power_w[i]` is the power of core i during the
  /// last `dt_seconds`.
  void advance(const std::vector<double>& core_power_w, double dt_seconds);

  /// Temperature of a core in millidegrees C, as temp#_input reports it.
  [[nodiscard]] std::int64_t temp_millic(int core) const;
  [[nodiscard]] double temp_c(int core) const;
  [[nodiscard]] int num_cores() const noexcept {
    return static_cast<int>(temps_c_.size());
  }

 private:
  ThermalParams params_;
  std::vector<double> temps_c_;
};

}  // namespace cleaks::hw
