// Digital Temperature Sensor (coretemp) model.
//
// Backs /sys/devices/platform/coretemp.#/hwmon/hwmon#/temp#_input (Table II
// lists it as a V+M co-residence channel: a tenant can bind a hot workload
// to a core from one container and watch the temperature from another).
// First-order thermal RC: each core's temperature relaxes toward
// ambient + theta * core_power with time constant tau.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace cleaks::hw {

struct ThermalParams {
  double ambient_c = 38.0;      ///< in-chassis ambient (deg C)
  double theta_c_per_w = 2.2;   ///< steady-state rise per watt of core power
  double tau_seconds = 8.0;     ///< thermal time constant
};

/// The RC step for one core, shared verbatim by ThermalModel::advance and the
/// BatchedPhysics sweep (which hoists the exp() in `decay` out of the lane
/// loop — libm is deterministic for identical inputs, so hoisting preserves
/// bitwise results).
inline void thermal_step_core(double& temp_c, double power_w, double decay,
                              const ThermalParams& params) noexcept {
  const double target = params.ambient_c + params.theta_c_per_w * power_w;
  temp_c += (target - temp_c) * decay;
}

inline double thermal_decay(double dt_seconds,
                            const ThermalParams& params) noexcept {
  return 1.0 - std::exp(-dt_seconds / params.tau_seconds);
}

class ThermalModel {
 public:
  explicit ThermalModel(int num_cores, ThermalParams params = ThermalParams{});

  // Copies detach from any bound slice and own a snapshot (see RaplDomain).
  ThermalModel(const ThermalModel& other)
      : params_(other.params_), own_(other.temps_view()) {}
  ThermalModel& operator=(const ThermalModel& other) {
    params_ = other.params_;
    own_ = other.temps_view();
    temps_c_ = own_.data();
    num_cores_ = own_.size();
    return *this;
  }

  /// Re-point per-core temperatures at externally owned storage of the same
  /// length (current values are migrated). The storage must stay valid and
  /// fixed for the model's remaining lifetime.
  void bind(double* external);

  /// Advance one tick: `core_power_w[i]` is the power of core i during the
  /// last `dt_seconds`.
  void advance(const std::vector<double>& core_power_w, double dt_seconds);

  /// Same step with the decay factor supplied by the caller — the batched
  /// path computes thermal_decay(dt) once per facility tick cadence and
  /// shares it across lanes (identical dt ⇒ identical exp ⇒ identical
  /// temperatures).
  void advance_with_decay(const double* core_power_w, std::size_t n,
                          double decay) noexcept;

  [[nodiscard]] const ThermalParams& params() const noexcept {
    return params_;
  }

  /// Mutable per-core temperature storage (the bound slice when the model
  /// lives on a BatchedPhysics lane). The idle-coast integrator overwrites
  /// temperatures from its anchor snapshot through this.
  [[nodiscard]] double* mutable_temps() noexcept { return temps_c_; }

  /// Temperature of a core in millidegrees C, as temp#_input reports it.
  [[nodiscard]] std::int64_t temp_millic(int core) const;
  [[nodiscard]] double temp_c(int core) const;
  [[nodiscard]] int num_cores() const noexcept {
    return static_cast<int>(num_cores_);
  }

 private:
  [[nodiscard]] std::vector<double> temps_view() const {
    return std::vector<double>(temps_c_, temps_c_ + num_cores_);
  }

  ThermalParams params_;
  std::vector<double> own_;
  double* temps_c_ = nullptr;
  std::size_t num_cores_ = 0;
};

}  // namespace cleaks::hw
