#include "hw/thermal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cleaks::hw {

ThermalModel::ThermalModel(int num_cores, ThermalParams params)
    : params_(params),
      temps_c_(static_cast<std::size_t>(std::max(num_cores, 0)),
               params.ambient_c) {}

void ThermalModel::advance(const std::vector<double>& core_power_w,
                           double dt_seconds) {
  if (dt_seconds <= 0.0) return;
  const double decay = 1.0 - std::exp(-dt_seconds / params_.tau_seconds);
  for (std::size_t i = 0; i < temps_c_.size(); ++i) {
    const double power = i < core_power_w.size() ? core_power_w[i] : 0.0;
    const double target = params_.ambient_c + params_.theta_c_per_w * power;
    temps_c_[i] += (target - temps_c_[i]) * decay;
  }
}

std::int64_t ThermalModel::temp_millic(int core) const {
  return static_cast<std::int64_t>(std::lround(temp_c(core) * 1000.0));
}

double ThermalModel::temp_c(int core) const {
  if (core < 0 || static_cast<std::size_t>(core) >= temps_c_.size()) {
    throw std::out_of_range("ThermalModel: core index");
  }
  return temps_c_[static_cast<std::size_t>(core)];
}

}  // namespace cleaks::hw
