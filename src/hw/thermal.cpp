#include "hw/thermal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cleaks::hw {

ThermalModel::ThermalModel(int num_cores, ThermalParams params)
    : params_(params),
      own_(static_cast<std::size_t>(std::max(num_cores, 0)),
           params.ambient_c),
      temps_c_(own_.data()),
      num_cores_(own_.size()) {}

void ThermalModel::bind(double* external) {
  std::copy(temps_c_, temps_c_ + num_cores_, external);
  temps_c_ = external;
  own_.clear();
  own_.shrink_to_fit();
}

void ThermalModel::advance(const std::vector<double>& core_power_w,
                           double dt_seconds) {
  if (dt_seconds <= 0.0) return;
  advance_with_decay(core_power_w.data(), core_power_w.size(),
                     thermal_decay(dt_seconds, params_));
}

void ThermalModel::advance_with_decay(const double* core_power_w,
                                      std::size_t n, double decay) noexcept {
  for (std::size_t i = 0; i < num_cores_; ++i) {
    const double power = i < n ? core_power_w[i] : 0.0;
    thermal_step_core(temps_c_[i], power, decay, params_);
  }
}

std::int64_t ThermalModel::temp_millic(int core) const {
  return static_cast<std::int64_t>(std::lround(temp_c(core) * 1000.0));
}

double ThermalModel::temp_c(int core) const {
  if (core < 0 || static_cast<std::size_t>(core) >= num_cores_) {
    throw std::out_of_range("ThermalModel: core index");
  }
  return temps_c_[static_cast<std::size_t>(core)];
}

}  // namespace cleaks::hw
