#include "hw/batched_physics.h"

#include <cstdlib>
#include <cstring>

namespace cleaks::hw {

bool batched_physics_enabled() {
  const char* value = std::getenv("CLEAKS_BATCHED");
  return value == nullptr || std::strcmp(value, "0") != 0;
}

}  // namespace cleaks::hw
