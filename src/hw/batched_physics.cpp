#include "hw/batched_physics.h"

// The plane is header-only by design (fixed-size slices, inlined
// accessors); this TU just anchors the header's build. The CLEAKS_BATCHED
// escape hatch that used to live here is gone: batched physics is the only
// path now, with equivalence pinned against recorded goldens in
// tests/batched_physics_test.cpp.
