// Ground-truth energy model driving the RAPL counters.
//
// The kernel's advance loop reports per-core activity for every tick; this
// model converts activity into joules per domain. It is the *simulated
// hardware*, deliberately richer than (and hidden from) the defense's
// regression model in src/defense, which must approximate it from
// perf-event observations alone.
#pragma once

#include "hw/spec.h"
#include "util/sim_time.h"

namespace cleaks::hw {

/// Activity of one core during one scheduler tick.
struct TickActivity {
  double active_seconds = 0.0;   ///< busy time within the tick (s)
  double idle_seconds = 0.0;     ///< idle time within the tick (s)
  double instructions = 0.0;     ///< retired instructions
  double cycles = 0.0;           ///< unhalted cycles
  double cache_misses = 0.0;     ///< LLC misses
  double branch_misses = 0.0;    ///< branch mispredictions
};

/// Energy (J) attributed to each domain for a tick of activity.
struct TickEnergy {
  double core_j = 0.0;
  double dram_j = 0.0;
  double package_j = 0.0;  ///< core + dram + uncore share
};

class EnergyModel {
 public:
  explicit EnergyModel(const EnergyModelParams& params) : p_(params) {}

  /// Energy for one core's activity. The uncore/idle-DRAM shares are charged
  /// separately via background_energy() once per package per tick.
  [[nodiscard]] TickEnergy core_activity_energy(const TickActivity& a) const noexcept;

  /// Per-package background energy for `dt` of simulated time: uncore power
  /// and DRAM standby power.
  [[nodiscard]] TickEnergy background_energy(double dt_seconds) const noexcept;

  /// Instantaneous power (W) implied by a tick's total energy.
  [[nodiscard]] static double power_w(const TickEnergy& e, double dt_seconds) noexcept {
    return dt_seconds > 0.0 ? e.package_j / dt_seconds : 0.0;
  }

  [[nodiscard]] const EnergyModelParams& params() const noexcept { return p_; }

 private:
  EnergyModelParams p_;
};

}  // namespace cleaks::hw
