#include "hw/rapl.h"

#include <cmath>

namespace cleaks::hw {

std::string to_string(RaplDomainKind kind) {
  switch (kind) {
    case RaplDomainKind::kPackage:
      return "package";
    case RaplDomainKind::kCore:
      return "core";
    case RaplDomainKind::kDram:
      return "dram";
  }
  return "unknown";
}

void RaplDomain::add_energy_j(double joules) noexcept {
  if (joules <= 0.0) return;
  total_j_ += joules;
  residual_uj_ += joules * 1e6;
  const auto whole = static_cast<std::uint64_t>(residual_uj_);
  residual_uj_ -= static_cast<double>(whole);
  counter_uj_ = (counter_uj_ + whole) % range_uj_;
}

std::uint64_t RaplDomain::energy_uj() const noexcept { return counter_uj_; }

RaplPackage::RaplPackage(int package_id, bool has_dram)
    : package_id_(package_id), has_dram_(has_dram) {}

double rapl_delta_j(std::uint64_t before_uj, std::uint64_t after_uj,
                    std::uint64_t range_uj) {
  const std::uint64_t delta =
      after_uj >= before_uj ? after_uj - before_uj
                            : after_uj + range_uj - before_uj;
  return static_cast<double>(delta) * 1e-6;
}

}  // namespace cleaks::hw
