#include "hw/rapl.h"

#include <cmath>

namespace cleaks::hw {

std::string to_string(RaplDomainKind kind) {
  switch (kind) {
    case RaplDomainKind::kPackage:
      return "package";
    case RaplDomainKind::kCore:
      return "core";
    case RaplDomainKind::kDram:
      return "dram";
  }
  return "unknown";
}

void RaplDomain::add_energy_j(double joules) noexcept {
  rapl_charge(*state_, joules, range_uj_);
}

void RaplDomain::force_wrap() noexcept {
  state_->counter_uj = range_uj_ - 1;
}

std::uint64_t RaplDomain::energy_uj() const noexcept {
  return state_->counter_uj;
}

RaplPackage::RaplPackage(int package_id, bool has_dram)
    : package_id_(package_id), has_dram_(has_dram) {}

double rapl_delta_j(std::uint64_t before_uj, std::uint64_t after_uj,
                    std::uint64_t range_uj) {
  const std::uint64_t delta =
      after_uj >= before_uj ? after_uj - before_uj
                            : after_uj + range_uj - before_uj;
  return static_cast<double>(delta) * 1e-6;
}

Result<double> rapl_delta_j_checked(std::uint64_t before_uj,
                                    std::uint64_t after_uj, double truth_j,
                                    std::uint64_t range_uj) {
  if (range_uj == 0) {
    return {StatusCode::kInvalidArgument, "rapl range is zero"};
  }
  if (truth_j < 0.0) {
    return {StatusCode::kOutOfRange, "reference energy is negative"};
  }
  // wrapped = truth - k * range for the (unknown) wrap count k >= 0; the
  // counters and the reference measure the same physical energy, so k is
  // just the rounded quotient of their disagreement.
  const double wrapped_j = rapl_delta_j(before_uj, after_uj, range_uj);
  const double range_j = static_cast<double>(range_uj) * 1e-6;
  const double wraps = std::round((truth_j - wrapped_j) / range_j);
  if (wraps < 0.0) {
    return {StatusCode::kOutOfRange,
            "counter delta exceeds the unwrapped reference"};
  }
  const double reconstructed_j = wrapped_j + wraps * range_j;
  // The reconstruction must land *on* the reference (sub-µJ agreement is
  // what the counters guarantee); a percent-of-range residual means the
  // counters and the reference describe different gaps — a corrupted
  // sample, not a wrap miscount.
  if (std::fabs(reconstructed_j - truth_j) > 0.01 * range_j) {
    return {StatusCode::kOutOfRange,
            "counter delta irreconcilable with the unwrapped reference"};
  }
  return reconstructed_j;
}

}  // namespace cleaks::hw
