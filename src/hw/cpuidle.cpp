#include "hw/cpuidle.h"

#include <stdexcept>

namespace cleaks::hw {

CpuIdleAccounting::CpuIdleAccounting(int num_cores,
                                     std::vector<CpuIdleStateSpec> states)
    : num_cores_(num_cores), states_(std::move(states)) {
  if (num_cores_ < 0) throw std::invalid_argument("negative core count");
  counters_.resize(static_cast<std::size_t>(num_cores_) * states_.size());
}

void CpuIdleAccounting::record_idle(int core, std::uint64_t idle_us) {
  if (idle_us == 0 || states_.empty()) return;
  // Deepest state whose min residency fits the idle period.
  int chosen = 0;
  for (int s = static_cast<int>(states_.size()) - 1; s >= 0; --s) {
    if (states_[static_cast<std::size_t>(s)].min_residency_us <= idle_us) {
      chosen = s;
      break;
    }
  }
  Counter& c = counters_.at(index(core, chosen));
  c.usage += 1;
  c.time_us += idle_us;
}

void CpuIdleAccounting::seed(int core, int state, std::uint64_t usage,
                             std::uint64_t time_us) {
  Counter& c = counters_.at(index(core, state));
  c.usage = usage;
  c.time_us = time_us;
}

std::uint64_t CpuIdleAccounting::usage(int core, int state) const {
  return counters_.at(index(core, state)).usage;
}

std::uint64_t CpuIdleAccounting::time_us(int core, int state) const {
  return counters_.at(index(core, state)).time_us;
}

std::size_t CpuIdleAccounting::index(int core, int state) const {
  if (core < 0 || core >= num_cores_ || state < 0 ||
      static_cast<std::size_t>(state) >= states_.size()) {
    throw std::out_of_range("CpuIdleAccounting index");
  }
  return static_cast<std::size_t>(core) * states_.size() +
         static_cast<std::size_t>(state);
}

}  // namespace cleaks::hw
