#include "hw/cpuidle.h"

#include <algorithm>
#include <stdexcept>

namespace cleaks::hw {

CpuIdleAccounting::CpuIdleAccounting(int num_cores,
                                     std::vector<CpuIdleStateSpec> states)
    : num_cores_(num_cores), states_(std::move(states)) {
  if (num_cores_ < 0) throw std::invalid_argument("negative core count");
  own_.resize(static_cast<std::size_t>(num_cores_) * states_.size());
  counters_ = own_.data();
}

void CpuIdleAccounting::bind(CpuIdleCounter* external) {
  const std::size_t n =
      static_cast<std::size_t>(num_cores_) * states_.size();
  std::copy(counters_, counters_ + n, external);
  counters_ = external;
  own_.clear();
  own_.shrink_to_fit();
}

void CpuIdleAccounting::record_idle(int core, std::uint64_t idle_us) {
  if (idle_us == 0 || states_.empty()) return;
  if (core < 0 || core >= num_cores_) {
    throw std::out_of_range("CpuIdleAccounting index");
  }
  cpuidle_record(counters_ + static_cast<std::size_t>(core) * states_.size(),
                 states_, idle_us);
}

void CpuIdleAccounting::seed(int core, int state, std::uint64_t usage,
                             std::uint64_t time_us) {
  CpuIdleCounter& c = counters_[index(core, state)];
  c.usage = usage;
  c.time_us = time_us;
}

std::uint64_t CpuIdleAccounting::usage(int core, int state) const {
  return counters_[index(core, state)].usage;
}

std::uint64_t CpuIdleAccounting::time_us(int core, int state) const {
  return counters_[index(core, state)].time_us;
}

std::size_t CpuIdleAccounting::index(int core, int state) const {
  if (core < 0 || core >= num_cores_ || state < 0 ||
      static_cast<std::size_t>(state) >= states_.size()) {
    throw std::out_of_range("CpuIdleAccounting index");
  }
  return static_cast<std::size_t>(core) * states_.size() +
         static_cast<std::size_t>(state);
}

}  // namespace cleaks::hw
