// Hardware specification for a simulated physical server.
//
// The spec fixes everything the pseudo filesystems expose about hardware
// (/proc/cpuinfo, /proc/meminfo sizing, RAPL availability, coretemp, cpuidle
// states, NUMA layout) and the ground-truth energy model parameters that
// drive the RAPL counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cleaks::hw {

/// Ground-truth energy coefficients. The simulator charges energy as
///   E_core   = p_core_idle_w * t + e_inst_nj * I + e_cmiss_core_nj * CM
///              + e_bmiss_nj * BM
///   E_dram   = p_dram_idle_w * t + e_cmiss_dram_nj * CM
///   E_pkg    = E_core + E_dram + p_uncore_w * t
/// This family (energy linear in retired instructions with a slope that
/// depends on the miss mix) reproduces the empirical laws of Fig 6 and 7 of
/// the paper, which is what makes the defense's regression model well-posed.
struct EnergyModelParams {
  double p_core_idle_w = 0.7;      ///< idle power per core (W)
  double p_uncore_w = 6.0;         ///< constant uncore/package power (W)
  double p_dram_idle_w = 2.2;      ///< DRAM background power (W)
  double e_inst_nj = 1.15;         ///< nJ per retired instruction
  double e_cmiss_core_nj = 9.0;    ///< nJ per LLC miss charged to the core
  double e_bmiss_nj = 3.5;         ///< nJ per branch misprediction
  double e_cmiss_dram_nj = 16.0;   ///< nJ per LLC miss charged to DRAM
  double measurement_noise = 0.01; ///< relative Gaussian noise on RAPL reads
};

/// One cpuidle state as exposed under
/// /sys/devices/system/cpu/cpu#/cpuidle/state#/.
struct CpuIdleStateSpec {
  std::string name;
  std::uint64_t exit_latency_us = 0;
  std::uint64_t min_residency_us = 0;
};

struct HardwareSpec {
  std::string model_name = "Intel(R) Core(TM) i7-6700 CPU @ 3.40GHz";
  std::string vendor_id = "GenuineIntel";
  int cpu_family = 6;
  int model = 94;
  int num_cores = 8;          ///< logical CPUs visible to the kernel
  int cores_per_package = 8;
  int num_packages = 1;
  double freq_ghz = 3.4;
  std::uint64_t memory_bytes = 16ULL << 30;
  std::uint64_t cache_kb = 8192;
  int numa_nodes = 1;
  bool has_rapl = true;       ///< Sandy Bridge or later
  bool has_dram_rapl = true;
  bool has_coretemp = true;
  std::vector<CpuIdleStateSpec> cpuidle_states = default_cpuidle_states();
  EnergyModelParams energy;

  /// Host-level RAPL power cap (package limit, W); 0 disables capping.
  double rapl_power_cap_w = 0.0;

  static std::vector<CpuIdleStateSpec> default_cpuidle_states();

  [[nodiscard]] double cycles_per_second_per_core() const noexcept {
    return freq_ghz * 1e9;
  }
};

/// The paper's local testbed: i7-6700 3.40GHz, 8 logical cores, 16 GB RAM.
HardwareSpec testbed_i7_6700();

/// A two-socket cloud server of the era (used for the data-center
/// experiments): 32 logical cores, 128 GB, ~90 W idle, ~350 W peak.
HardwareSpec cloud_xeon_server();

/// A server whose CPU predates Sandy Bridge: no RAPL interface at all
/// (models the clouds in Table I where RAPL channels are absent for
/// hardware reasons).
HardwareSpec pre_sandy_bridge_server();

}  // namespace cleaks::hw
