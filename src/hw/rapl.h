// Intel RAPL (Running Average Power Limit) counter model.
//
// Exposes the same observable the real powercap sysfs interface exposes:
// per-domain accumulated energy in microjoules, wrapping at
// max_energy_range_uj. The leakage channel of §III-B case study II is the
// read path of /sys/class/powercap/intel-rapl:*/energy_uj; the synergistic
// attack (§IV) and the defense's calibration (Formula 3) both consume it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace cleaks::hw {

enum class RaplDomainKind { kPackage, kCore, kDram };

std::string to_string(RaplDomainKind kind);

/// One RAPL domain: a wrapping microjoule accumulator.
class RaplDomain {
 public:
  /// Typical max_energy_range_uj for client parts (~262 kJ).
  static constexpr std::uint64_t kDefaultRangeUj = 262143328850ULL;

  RaplDomain(RaplDomainKind kind, std::uint64_t range_uj = kDefaultRangeUj)
      : kind_(kind), range_uj_(range_uj) {}

  [[nodiscard]] RaplDomainKind kind() const noexcept { return kind_; }

  /// Charge `joules` of energy into the accumulator.
  void add_energy_j(double joules) noexcept;

  /// Current wrapped counter value in microjoules, as energy_uj reports it.
  [[nodiscard]] std::uint64_t energy_uj() const noexcept;

  /// Unwrapped lifetime energy in joules (simulator-internal ground truth;
  /// not exposed through any pseudo file).
  [[nodiscard]] double lifetime_energy_j() const noexcept { return total_j_; }

  [[nodiscard]] std::uint64_t max_energy_range_uj() const noexcept {
    return range_uj_;
  }

  /// Times the counter has wrapped past max_energy_range_uj (ground truth
  /// a real sampler never sees — the observable is only the wrapped
  /// counter, which is the whole point of the multi-wrap hazard).
  [[nodiscard]] std::uint64_t wrap_count() const noexcept {
    return wrap_count_;
  }

  /// Fault hook: park the counter one microjoule below the wrap edge so
  /// the very next charge wraps it. Models the sampling-gap glitch a real
  /// energy_uj reader sees when its schedule slips past a counter wrap;
  /// lifetime energy (the physics) is untouched.
  void force_wrap() noexcept;

 private:
  RaplDomainKind kind_;
  std::uint64_t range_uj_;
  double total_j_ = 0.0;
  double residual_uj_ = 0.0;  ///< sub-microjoule remainder
  std::uint64_t counter_uj_ = 0;
  std::uint64_t wrap_count_ = 0;
};

/// A package with its core (PP0) and DRAM subdomains, mirroring the
/// intel-rapl:#/intel-rapl:#:# sysfs hierarchy.
class RaplPackage {
 public:
  RaplPackage(int package_id, bool has_dram);

  [[nodiscard]] int package_id() const noexcept { return package_id_; }
  [[nodiscard]] bool has_dram() const noexcept { return has_dram_; }

  RaplDomain& package() noexcept { return package_; }
  RaplDomain& core() noexcept { return core_; }
  RaplDomain& dram() noexcept { return dram_; }
  [[nodiscard]] const RaplDomain& package() const noexcept { return package_; }
  [[nodiscard]] const RaplDomain& core() const noexcept { return core_; }
  [[nodiscard]] const RaplDomain& dram() const noexcept { return dram_; }

 private:
  int package_id_;
  bool has_dram_;
  RaplDomain package_{RaplDomainKind::kPackage};
  RaplDomain core_{RaplDomainKind::kCore};
  RaplDomain dram_{RaplDomainKind::kDram};
};

/// Convert a RAPL counter delta (handling one wraparound) to joules.
///
/// Caveat (the §IV sampling-gap hazard): the wrapped counter alone cannot
/// distinguish a gap spanning k wraps from one spanning k+1 — a sampler
/// whose interval exceeds range_uj worth of energy silently under-reports
/// by a multiple of the range. Use rapl_delta_j_checked when an unwrapped
/// reference is available.
double rapl_delta_j(std::uint64_t before_uj, std::uint64_t after_uj,
                    std::uint64_t range_uj = RaplDomain::kDefaultRangeUj);

/// Multi-wrap-safe delta: reconstructs the wrap count from `truth_j`, the
/// unwrapped energy (joules) accumulated across the same gap (e.g. from
/// RaplDomain::lifetime_energy_j deltas). Returns kOutOfRange when the
/// wrapped delta cannot be reconciled with the reference — i.e. the
/// single-wrap assumption (or the reference itself) is broken.
Result<double> rapl_delta_j_checked(
    std::uint64_t before_uj, std::uint64_t after_uj, double truth_j,
    std::uint64_t range_uj = RaplDomain::kDefaultRangeUj);

}  // namespace cleaks::hw
