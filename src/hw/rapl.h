// Intel RAPL (Running Average Power Limit) counter model.
//
// Exposes the same observable the real powercap sysfs interface exposes:
// per-domain accumulated energy in microjoules, wrapping at
// max_energy_range_uj. The leakage channel of §III-B case study II is the
// read path of /sys/class/powercap/intel-rapl:*/energy_uj; the synergistic
// attack (§IV) and the defense's calibration (Formula 3) both consume it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace cleaks::hw {

enum class RaplDomainKind { kPackage, kCore, kDram };

std::string to_string(RaplDomainKind kind);

/// The mutable accumulator state of one RAPL domain, separated from the
/// RaplDomain façade so a facility-level plane (hw::BatchedPhysics) can
/// keep every domain of every server in one contiguous array and charge
/// them in a tight loop. Standalone domains carry their own copy.
struct RaplDomainState {
  double total_j = 0.0;
  double residual_uj = 0.0;  ///< sub-microjoule remainder
  std::uint64_t counter_uj = 0;
  std::uint64_t wrap_count = 0;
};

/// Charge `joules` into a domain state (the one accumulator kernel shared
/// by RaplDomain::add_energy_j and the batched physics sweep).
inline void rapl_charge(RaplDomainState& s, double joules,
                        std::uint64_t range_uj) noexcept {
  if (joules <= 0.0) return;
  s.total_j += joules;
  s.residual_uj += joules * 1e6;
  const auto whole = static_cast<std::uint64_t>(s.residual_uj);
  s.residual_uj -= static_cast<double>(whole);
  // One charge can span several wraps when a coarse tick delivers more
  // than range_uj at once; count each so wrap_count stays ground truth.
  s.wrap_count += (s.counter_uj + whole) / range_uj;
  s.counter_uj = (s.counter_uj + whole) % range_uj;
}

/// One RAPL domain: a wrapping microjoule accumulator. Owns its state by
/// default; bind() re-points it at externally owned storage (a
/// BatchedPhysics slice), after which the object is a view — all reads and
/// charges go through the shared array.
class RaplDomain {
 public:
  /// Typical max_energy_range_uj for client parts (~262 kJ).
  static constexpr std::uint64_t kDefaultRangeUj = 262143328850ULL;

  RaplDomain(RaplDomainKind kind, std::uint64_t range_uj = kDefaultRangeUj)
      : kind_(kind), range_uj_(range_uj) {}

  // Copies detach from any bound slice: the new object owns a snapshot of
  // the source's state (a copied view aliasing the same accumulator would
  // double-charge energy).
  RaplDomain(const RaplDomain& other)
      : kind_(other.kind_), range_uj_(other.range_uj_), own_(*other.state_) {}
  RaplDomain& operator=(const RaplDomain& other) {
    kind_ = other.kind_;
    range_uj_ = other.range_uj_;
    own_ = *other.state_;
    state_ = &own_;
    return *this;
  }

  [[nodiscard]] RaplDomainKind kind() const noexcept { return kind_; }

  /// Move this domain's accumulator into `external` (current values are
  /// migrated) and operate on it from now on. `external` must outlive the
  /// domain or every later accessor/charge call.
  void bind(RaplDomainState* external) noexcept {
    *external = *state_;
    state_ = external;
  }

  /// Charge `joules` of energy into the accumulator.
  void add_energy_j(double joules) noexcept;

  /// Current wrapped counter value in microjoules, as energy_uj reports it.
  [[nodiscard]] std::uint64_t energy_uj() const noexcept;

  /// Unwrapped lifetime energy in joules (simulator-internal ground truth;
  /// not exposed through any pseudo file).
  [[nodiscard]] double lifetime_energy_j() const noexcept {
    return state_->total_j;
  }

  [[nodiscard]] std::uint64_t max_energy_range_uj() const noexcept {
    return range_uj_;
  }

  /// Times the counter has wrapped past max_energy_range_uj (ground truth
  /// a real sampler never sees — the observable is only the wrapped
  /// counter, which is the whole point of the multi-wrap hazard).
  [[nodiscard]] std::uint64_t wrap_count() const noexcept {
    return state_->wrap_count;
  }

  /// Fault hook: park the counter one microjoule below the wrap edge so
  /// the very next charge wraps it. Models the sampling-gap glitch a real
  /// energy_uj reader sees when its schedule slips past a counter wrap;
  /// lifetime energy (the physics) is untouched.
  void force_wrap() noexcept;

  /// Direct accumulator access for the idle-coast integrator, which
  /// snapshots the state at a coast anchor and later overwrites it with a
  /// closed-form advance (hw/idle_coast.h). Follows the bound slice when
  /// the domain lives on a BatchedPhysics lane.
  [[nodiscard]] const RaplDomainState& state() const noexcept {
    return *state_;
  }
  [[nodiscard]] RaplDomainState& mutable_state() noexcept { return *state_; }

 private:
  RaplDomainKind kind_;
  std::uint64_t range_uj_;
  RaplDomainState own_;
  RaplDomainState* state_ = &own_;
};

/// A package with its core (PP0) and DRAM subdomains, mirroring the
/// intel-rapl:#/intel-rapl:#:# sysfs hierarchy.
class RaplPackage {
 public:
  RaplPackage(int package_id, bool has_dram);

  [[nodiscard]] int package_id() const noexcept { return package_id_; }
  [[nodiscard]] bool has_dram() const noexcept { return has_dram_; }

  RaplDomain& package() noexcept { return package_; }
  RaplDomain& core() noexcept { return core_; }
  RaplDomain& dram() noexcept { return dram_; }
  [[nodiscard]] const RaplDomain& package() const noexcept { return package_; }
  [[nodiscard]] const RaplDomain& core() const noexcept { return core_; }
  [[nodiscard]] const RaplDomain& dram() const noexcept { return dram_; }

 private:
  int package_id_;
  bool has_dram_;
  RaplDomain package_{RaplDomainKind::kPackage};
  RaplDomain core_{RaplDomainKind::kCore};
  RaplDomain dram_{RaplDomainKind::kDram};
};

/// Convert a RAPL counter delta (handling one wraparound) to joules.
///
/// Caveat (the §IV sampling-gap hazard): the wrapped counter alone cannot
/// distinguish a gap spanning k wraps from one spanning k+1 — a sampler
/// whose interval exceeds range_uj worth of energy silently under-reports
/// by a multiple of the range. Use rapl_delta_j_checked when an unwrapped
/// reference is available.
double rapl_delta_j(std::uint64_t before_uj, std::uint64_t after_uj,
                    std::uint64_t range_uj = RaplDomain::kDefaultRangeUj);

/// Multi-wrap-safe delta: reconstructs the wrap count from `truth_j`, the
/// unwrapped energy (joules) accumulated across the same gap (e.g. from
/// RaplDomain::lifetime_energy_j deltas). Returns kOutOfRange when the
/// wrapped delta cannot be reconciled with the reference — i.e. the
/// single-wrap assumption (or the reference itself) is broken.
Result<double> rapl_delta_j_checked(
    std::uint64_t before_uj, std::uint64_t after_uj, double truth_j,
    std::uint64_t range_uj = RaplDomain::kDefaultRangeUj);

}  // namespace cleaks::hw
