// cpuidle accounting: per-core, per-state usage counts and residency time,
// backing /sys/devices/system/cpu/cpu#/cpuidle/state#/{usage,time}.
// Table II ranks both as U+V+M channels (the counters are host-lifetime
// accumulators, hence unique per machine).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/spec.h"

namespace cleaks::hw {

class CpuIdleAccounting {
 public:
  CpuIdleAccounting(int num_cores, std::vector<CpuIdleStateSpec> states);

  /// Record that `core` was idle for `idle_us` microseconds during a tick.
  /// The residency is attributed to the deepest state whose min residency
  /// fits, the way menu-governor behaviour looks from sysfs.
  void record_idle(int core, std::uint64_t idle_us);

  [[nodiscard]] std::uint64_t usage(int core, int state) const;
  [[nodiscard]] std::uint64_t time_us(int core, int state) const;
  [[nodiscard]] int num_states() const noexcept {
    return static_cast<int>(states_.size());
  }
  [[nodiscard]] int num_cores() const noexcept { return num_cores_; }
  [[nodiscard]] const CpuIdleStateSpec& state_spec(int state) const {
    return states_.at(static_cast<std::size_t>(state));
  }

  /// Pre-seed a counter pair (used to model a host that has already been
  /// up for months when the simulation starts).
  void seed(int core, int state, std::uint64_t usage, std::uint64_t time_us);

 private:
  struct Counter {
    std::uint64_t usage = 0;
    std::uint64_t time_us = 0;
  };

  [[nodiscard]] std::size_t index(int core, int state) const;

  int num_cores_;
  std::vector<CpuIdleStateSpec> states_;
  std::vector<Counter> counters_;  ///< core-major [core][state]
};

}  // namespace cleaks::hw
