// cpuidle accounting: per-core, per-state usage counts and residency time,
// backing /sys/devices/system/cpu/cpu#/cpuidle/state#/{usage,time}.
// Table II ranks both as U+V+M channels (the counters are host-lifetime
// accumulators, hence unique per machine).
#pragma once

#include <cstdint>
#include <vector>

#include "hw/spec.h"

namespace cleaks::hw {

/// One (core, state) counter pair; public so BatchedPhysics can lay all
/// cores of all servers out in one contiguous array.
struct CpuIdleCounter {
  std::uint64_t usage = 0;
  std::uint64_t time_us = 0;
};

/// Pick the deepest idle state whose min residency fits `idle_us` and bump
/// its counters (the shared record kernel; menu-governor behaviour as seen
/// from sysfs). `counters` points at the core's [state] row.
inline void cpuidle_record(CpuIdleCounter* counters,
                           const std::vector<CpuIdleStateSpec>& states,
                           std::uint64_t idle_us) noexcept {
  if (idle_us == 0 || states.empty()) return;
  int chosen = 0;
  for (int s = static_cast<int>(states.size()) - 1; s >= 0; --s) {
    if (states[static_cast<std::size_t>(s)].min_residency_us <= idle_us) {
      chosen = s;
      break;
    }
  }
  CpuIdleCounter& c = counters[chosen];
  c.usage += 1;
  c.time_us += idle_us;
}

class CpuIdleAccounting {
 public:
  CpuIdleAccounting(int num_cores, std::vector<CpuIdleStateSpec> states);

  // Copies detach from any bound slice and own a snapshot (see RaplDomain).
  CpuIdleAccounting(const CpuIdleAccounting& other)
      : num_cores_(other.num_cores_),
        states_(other.states_),
        own_(other.counters_view()),
        counters_(own_.data()) {}
  CpuIdleAccounting& operator=(const CpuIdleAccounting& other) {
    num_cores_ = other.num_cores_;
    states_ = other.states_;
    own_ = other.counters_view();
    counters_ = own_.data();
    return *this;
  }

  /// Re-point the counter table at externally owned storage of
  /// num_cores * num_states entries (current values are migrated). The
  /// storage must stay valid and fixed for the object's remaining lifetime.
  void bind(CpuIdleCounter* external);

  /// Record that `core` was idle for `idle_us` microseconds during a tick.
  /// The residency is attributed to the deepest state whose min residency
  /// fits, the way menu-governor behaviour looks from sysfs.
  void record_idle(int core, std::uint64_t idle_us);

  [[nodiscard]] std::uint64_t usage(int core, int state) const;
  [[nodiscard]] std::uint64_t time_us(int core, int state) const;
  [[nodiscard]] int num_states() const noexcept {
    return static_cast<int>(states_.size());
  }
  [[nodiscard]] int num_cores() const noexcept { return num_cores_; }
  [[nodiscard]] const CpuIdleStateSpec& state_spec(int state) const {
    return states_.at(static_cast<std::size_t>(state));
  }
  [[nodiscard]] const std::vector<CpuIdleStateSpec>& states() const noexcept {
    return states_;
  }

  /// Pre-seed a counter pair (used to model a host that has already been
  /// up for months when the simulation starts).
  void seed(int core, int state, std::uint64_t usage, std::uint64_t time_us);

 private:
  [[nodiscard]] std::size_t index(int core, int state) const;
  [[nodiscard]] std::vector<CpuIdleCounter> counters_view() const {
    return std::vector<CpuIdleCounter>(
        counters_,
        counters_ + static_cast<std::size_t>(num_cores_) * states_.size());
  }

  int num_cores_;
  std::vector<CpuIdleStateSpec> states_;
  std::vector<CpuIdleCounter> own_;
  CpuIdleCounter* counters_ = nullptr;  ///< core-major [core][state]
};

}  // namespace cleaks::hw
