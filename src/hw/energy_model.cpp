#include "hw/energy_model.h"

namespace cleaks::hw {

TickEnergy EnergyModel::core_activity_energy(const TickActivity& a) const noexcept {
  constexpr double kNanojoule = 1e-9;
  TickEnergy e;
  const double busy_idle_j =
      p_.p_core_idle_w * (a.active_seconds + a.idle_seconds);
  e.core_j = busy_idle_j + kNanojoule * (p_.e_inst_nj * a.instructions +
                                         p_.e_cmiss_core_nj * a.cache_misses +
                                         p_.e_bmiss_nj * a.branch_misses);
  e.dram_j = kNanojoule * p_.e_cmiss_dram_nj * a.cache_misses;
  e.package_j = e.core_j + e.dram_j;
  return e;
}

TickEnergy EnergyModel::background_energy(double dt_seconds) const noexcept {
  TickEnergy e;
  e.dram_j = p_.p_dram_idle_w * dt_seconds;
  e.package_j = p_.p_uncore_w * dt_seconds + e.dram_j;
  return e;
}

}  // namespace cleaks::hw
