#include "kernel/host.h"

#include <algorithm>
#include <cmath>

#include "hw/idle_coast.h"
#include "obs/events.h"

namespace cleaks::kernel {
namespace {

constexpr double kUserHz = 100.0;  ///< jiffies per second, as in the kernel

std::string make_boot_id(Rng& rng) {
  // Canonical UUID v4 text form.
  return rng.hex_string(8) + "-" + rng.hex_string(4) + "-4" +
         rng.hex_string(3) + "-" + rng.hex_string(4) + "-" +
         rng.hex_string(12);
}

}  // namespace

Host::Host(std::string name, hw::HardwareSpec spec, std::uint64_t seed,
           SimTime boot_time)
    : name_(std::move(name)),
      spec_(std::move(spec)),
      rng_base_(seed),
      rng_(rng_base_.fork("host-ticks")),
      now_(boot_time),
      energy_model_(spec_.energy),
      thermal_(spec_.num_cores),
      cpuidle_(spec_.num_cores, spec_.cpuidle_states),
      sched_(spec_.num_cores),
      kstate_() {
  effective_freq_hz_ = spec_.freq_ghz * 1e9;
  core_power_w_.resize(static_cast<std::size_t>(spec_.num_cores), 0.0);
  pkg_core_j_.resize(static_cast<std::size_t>(spec_.num_packages), 0.0);
  pkg_dram_j_.resize(static_cast<std::size_t>(spec_.num_packages), 0.0);

  if (spec_.has_rapl) {
    rapl_.reserve(static_cast<std::size_t>(spec_.num_packages));
    for (int pkg = 0; pkg < spec_.num_packages; ++pkg) {
      rapl_.emplace_back(pkg, spec_.has_dram_rapl);
    }
  }

  init_ns_ = ns_registry_.make_init(name_, {"eth0", "eth1", "docker0"});

  Rng boot_rng = rng_base_.fork("boot");
  kstate_.boot_id = make_boot_id(boot_rng);
  kstate_.boot_time = boot_time;
  kstate_.modules =
      KernelState::default_modules(spec_.has_rapl, spec_.has_coretemp);
  kstate_.cpu_times.resize(static_cast<std::size_t>(spec_.num_cores));
  kstate_.schedstat.resize(static_cast<std::size_t>(spec_.num_cores));
  kstate_.softirqs.assign(kSoftirqNames.size(),
                          std::vector<std::uint64_t>(
                              static_cast<std::size_t>(spec_.num_cores), 0));
  kstate_.numa.resize(static_cast<std::size_t>(std::max(1, spec_.numa_nodes)));
  kstate_.mem_total_kb = spec_.memory_bytes >> 10;
  kstate_.mem_free_kb = kstate_.mem_total_kb;
  // Interrupt table: timer, NICs, disk, rescheduling + local timer lines.
  // The behavioural kind is fixed here once so the tick loop dispatches on
  // it instead of re-matching labels.
  auto make_line = [&](std::string label, std::string desc, IrqKind kind) {
    IrqLine line;
    line.label = std::move(label);
    line.description = std::move(desc);
    line.per_cpu.assign(static_cast<std::size_t>(spec_.num_cores), 0);
    line.kind = kind;
    return line;
  };
  kstate_.irqs.push_back(make_line("0", "IO-APIC timer", IrqKind::kLocalTimer));
  kstate_.irqs.push_back(make_line("16", "IO-APIC ehci_hcd", IrqKind::kOther));
  kstate_.irqs.push_back(make_line("25", "PCI-MSI eth0", IrqKind::kNic));
  kstate_.irqs.push_back(make_line("27", "PCI-MSI ahci", IrqKind::kDisk));
  kstate_.irqs.push_back(
      make_line("LOC", "Local timer interrupts", IrqKind::kLocalTimer));
  kstate_.irqs.push_back(
      make_line("RES", "Rescheduling interrupts", IrqKind::kResched));
  kstate_.irqs.push_back(
      make_line("CAL", "Function call interrupts", IrqKind::kOther));
  kstate_.irqs.push_back(make_line("TLB", "TLB shootdowns", IrqKind::kOther));
  // ext4 block groups on the root disk (free blocks per group).
  Rng fs_rng = rng_base_.fork("ext4");
  kstate_.ext4_group_free_blocks.resize(64);
  for (auto& free_blocks : kstate_.ext4_group_free_blocks) {
    free_blocks = fs_rng.uniform_u64(2000, 32768);
  }
  kstate_.sched_domain_lb_cost.assign(
      static_cast<std::size_t>(spec_.num_cores), {8000, 17000});
  kstate_.entropy_avail = static_cast<int>(fs_rng.uniform_u64(2800, 3600));
  kstate_.inode_nr = fs_rng.uniform_u64(150000, 260000);
  kstate_.dentry_nr = kstate_.inode_nr + fs_rng.uniform_u64(20000, 60000);
  kstate_.dentry_unused = kstate_.dentry_nr - fs_rng.uniform_u64(5000, 15000);

  // A host always has background system tasks (systemd, kworkers, sshd,
  // dockerd) that keep counters moving the way a real idle server does.
  static constexpr struct {
    const char* comm;
    double duty;
    double io;
    int locks;
  } kSystemTasks[] = {
      {"systemd", 0.002, 2.0, 1},   {"kworker/u8:1", 0.004, 8.0, 0},
      {"rcu_sched", 0.001, 0.0, 0}, {"sshd", 0.0005, 0.5, 0},
      {"dockerd", 0.006, 4.0, 2},   {"containerd", 0.003, 1.0, 1},
  };
  for (const auto& sys_task : kSystemTasks) {
    SpawnOptions options;
    options.comm = sys_task.comm;
    options.behavior.duty_cycle = sys_task.duty;
    options.behavior.ipc = 0.8;
    options.behavior.cache_miss_per_kinst = 4.0;
    options.behavior.branch_miss_per_kinst = 6.0;
    options.behavior.io_rate_per_s = sys_task.io;
    options.behavior.rss_bytes = 30ULL << 20;
    options.behavior.file_locks = sys_task.locks;  // pid files etc.
    spawn_task(options);
  }
  baseline_task_count_ = tasks_.size();
  update_memory_accounting();
}

std::shared_ptr<Task> Host::spawn_task(const SpawnOptions& options) {
  auto task = std::make_shared<Task>();
  task->host_pid = next_pid_++;
  task->comm = options.comm;
  task->container_id = options.container_id;
  task->ns = options.ns != nullptr ? *options.ns : init_ns_;
  task->ns_pid = task->ns.pid == init_ns_.pid ? task->host_pid
                                              : task->ns.pid->allocate_pid();
  task->cgroup = options.cgroup ? options.cgroup : cgroups_.root();
  task->behavior = options.behavior;
  task->start_time = now_;
  task->allowed_cpus = options.allowed_cpus;
  const auto& allowed = !options.allowed_cpus.empty()
                            ? options.allowed_cpus
                            : task->cgroup->cpuset.cpus;
  // Place on the least-loaded allowed core, counting the live task table
  // (not last tick's runqueues) so that a burst of spawns spreads out.
  std::vector<int> load(static_cast<std::size_t>(spec_.num_cores), 0);
  for (const auto& existing : tasks_) {
    if (existing->running && existing->behavior.duty_cycle > 0.0 &&
        existing->cpu >= 0 && existing->cpu < spec_.num_cores) {
      ++load[static_cast<std::size_t>(existing->cpu)];
    }
  }
  int best_core = -1;
  auto consider = [&](int core) {
    if (core < 0 || core >= spec_.num_cores) return;
    if (best_core < 0 || load[static_cast<std::size_t>(core)] <
                             load[static_cast<std::size_t>(best_core)]) {
      best_core = core;
    }
  };
  if (allowed.empty()) {
    for (int core = 0; core < spec_.num_cores; ++core) consider(core);
  } else {
    for (int core : allowed) consider(core);
  }
  task->cpu = best_core < 0 ? 0 : best_core;
  perf_.on_task_fork(task->cgroup.get(), task->cpu);
  tasks_.push_back(task);
  ++kstate_.processes_forked;
  update_memory_accounting();
  ++generation_;
  return task;
}

bool Host::kill_task(HostPid pid) {
  auto it = std::find_if(tasks_.begin(), tasks_.end(), [&](const auto& task) {
    return task->host_pid == pid;
  });
  if (it == tasks_.end()) return false;
  (*it)->running = false;
  tasks_.erase(it);
  update_memory_accounting();
  ++generation_;
  return true;
}

std::shared_ptr<Task> Host::find_task(HostPid pid) const {
  auto it = std::find_if(tasks_.begin(), tasks_.end(), [&](const auto& task) {
    return task->host_pid == pid;
  });
  return it == tasks_.end() ? nullptr : *it;
}

void Host::seed_prior_uptime(SimDuration prior_uptime) {
  ++generation_;
  const double prior_sec = to_seconds(prior_uptime);
  const double avg_util = 0.20;
  auto& ks = kstate_;
  ks.uptime_ns = prior_uptime;
  ks.idle_time_ns = static_cast<std::uint64_t>(
      prior_sec * spec_.num_cores * (1.0 - avg_util) * 1e9);
  for (auto& times : ks.cpu_times) {
    const auto busy = static_cast<std::uint64_t>(prior_sec * avg_util * 100.0);
    times.user = busy * 9 / 10;
    times.system = busy / 10;
    times.idle =
        static_cast<std::uint64_t>(prior_sec * (1.0 - avg_util) * 100.0);
    times.iowait = static_cast<std::uint64_t>(prior_sec * 0.5);
  }
  const auto jiffies = static_cast<std::uint64_t>(prior_sec * 100.0);
  for (auto& line : ks.irqs) {
    if (line.label == "LOC" || line.label == "0") {
      for (auto& count : line.per_cpu) count = jiffies;
    }
  }
  ks.total_interrupts =
      jiffies * static_cast<std::uint64_t>(2 * spec_.num_cores);
  ks.total_ctxt_switches = static_cast<std::uint64_t>(prior_sec * 1800.0);
  ks.processes_forked = static_cast<std::uint64_t>(prior_sec / 2.5);
  for (auto& per_cpu : ks.softirqs) {
    for (auto& count : per_cpu) count = jiffies;
  }
  for (auto& sstat : ks.schedstat) {
    sstat.schedule_called = static_cast<std::uint64_t>(prior_sec * 120.0);
    sstat.run_time_ns =
        static_cast<std::uint64_t>(prior_sec * avg_util * 1e9);
    sstat.timeslices = static_cast<std::uint64_t>(prior_sec * 25.0);
  }
  // Energy history: idle floor plus the average-utilization dynamic share.
  if (spec_.has_rapl) {
    const double idle_w = spec_.energy.p_core_idle_w * spec_.num_cores +
                          spec_.energy.p_uncore_w + spec_.energy.p_dram_idle_w;
    const double dynamic_w = idle_w * 0.6 * avg_util / 0.2;
    const double pkg_j =
        (idle_w + dynamic_w) * prior_sec / spec_.num_packages;
    for (auto& pkg : rapl_) {
      pkg.package().add_energy_j(pkg_j);
      pkg.core().add_energy_j(pkg_j * 0.45);
      if (spec_.has_dram_rapl) pkg.dram().add_energy_j(pkg_j * 0.2);
    }
  }
  // NUMA counters accumulated over the host's life.
  for (auto& numa : kstate_.numa) {
    const auto pages = static_cast<std::uint64_t>(prior_sec * avg_util * 2e5 /
                                                  kstate_.numa.size());
    numa.numa_hit = pages;
    numa.local_node = pages * 96 / 100;
    numa.other_node = pages * 4 / 100;
    numa.interleave_hit = pages / 1000;
    if (kstate_.numa.size() > 1) numa.numa_miss = pages / 50;
  }
  // cpuidle residency: most deep-state time, entered ~40 times a second.
  const int deepest = cpuidle_.num_states() - 1;
  for (int core = 0; core < spec_.num_cores; ++core) {
    cpuidle_.seed(core, deepest,
                  static_cast<std::uint64_t>(prior_sec * 40.0),
                  static_cast<std::uint64_t>(prior_sec * (1.0 - avg_util) *
                                             0.9 * 1e6));
    if (deepest > 0) {
      cpuidle_.seed(core, 1, static_cast<std::uint64_t>(prior_sec * 15.0),
                    static_cast<std::uint64_t>(prior_sec * (1.0 - avg_util) *
                                               0.1 * 1e6));
    }
  }
}

void Host::bind_physics(hw::BatchedPhysics& plane, std::size_t lane) {
  const auto& geom = plane.geometry();
  if (geom.num_cores != spec_.num_cores ||
      geom.num_packages != spec_.num_packages ||
      geom.num_idle_states != cpuidle_.num_states() ||
      lane >= plane.num_lanes()) {
    throw std::invalid_argument("Host::bind_physics: geometry mismatch");
  }
  // bind() migrates current values, so binding after seed_prior_uptime (or
  // any amount of stepping) is lossless.
  hw::RaplDomainState* rapl_states = plane.rapl_lane(lane);
  for (std::size_t pkg = 0; pkg < rapl_.size(); ++pkg) {
    auto* base = rapl_states + pkg * hw::BatchedPhysics::kRaplDomainsPerPackage;
    rapl_[pkg].package().bind(base + hw::BatchedPhysics::kRaplPackageOffset);
    rapl_[pkg].core().bind(base + hw::BatchedPhysics::kRaplCoreOffset);
    rapl_[pkg].dram().bind(base + hw::BatchedPhysics::kRaplDramOffset);
  }
  thermal_.bind(plane.temps_lane(lane));
  cpuidle_.bind(plane.cpuidle_lane(lane));
  cgroups_.root()->cpuacct.usage_ns_per_cpu.bind(
      plane.cpuacct_lane(lane), static_cast<std::size_t>(spec_.num_cores));
  batched_ = true;
  factors_.valid = false;
  ++generation_;
}

const Host::TickFactors& Host::factors_for(SimDuration dt) {
  if (!factors_.valid || factors_.dt != dt) {
    const double dt_sec = to_seconds(dt);
    factors_.dt = dt;
    factors_.thermal_decay = hw::thermal_decay(dt_sec, thermal_.params());
    factors_.load1_factor = std::exp(-dt_sec / 60.0);
    factors_.load5_factor = std::exp(-dt_sec / 300.0);
    factors_.load15_factor = std::exp(-dt_sec / 900.0);
    factors_.valid = true;
  }
  return factors_;
}

void Host::advance(SimDuration duration) {
  SimDuration remaining = duration;
  while (remaining > 0) {
    const SimDuration dt = std::min(remaining, tick_duration_);
    run_tick(dt);
    remaining -= dt;
  }
}

// --- analytic idle coasting ---------------------------------------------

bool Host::coast_eligible() const noexcept {
  return coast_on_ && tasks_.size() == baseline_task_count_ &&
         spec_.rapl_power_cap_w == 0.0 &&
         effective_freq_hz_ == spec_.freq_ghz * 1e9;
}

void Host::begin_coast_() {
  CoastEpisode& c = coast_;
  c.active = true;
  c.t0 = now_;
  c.materialized = 0;
  c.pending = 0;

  // Rates in force while idle: pure functions of the frozen task table and
  // the energy model — no RNG anywhere in the regime.
  c.io_rate_per_s = 0.0;
  c.load_target = 0.0;
  int runnable = 0;
  std::vector<char> core_busy(static_cast<std::size_t>(spec_.num_cores), 0);
  for (const auto& task : tasks_) {
    c.io_rate_per_s += task->behavior.io_rate_per_s;
    c.load_target += std::min(1.0, task->behavior.duty_cycle);
    if (task->behavior.duty_cycle > 0.0) {
      ++runnable;
      if (task->cpu >= 0 && task->cpu < spec_.num_cores) {
        core_busy[static_cast<std::size_t>(task->cpu)] = 1;
      }
    }
  }
  int busy_cores = 0;
  for (char busy : core_busy) busy_cores += busy;
  // Two switches per quantum (in and out of the daemon) on every core that
  // hosts at least one runnable task.
  c.ctxt_rate_per_s = 2.0 * busy_cores / to_seconds(sched_.quantum());

  // Noise-free idle power: exactly the idle floor of integrate_energy with
  // zero activity and the measurement-noise factor pinned at 1.
  c.core_watts.assign(static_cast<std::size_t>(spec_.num_packages), 0.0);
  for (int core = 0; core < spec_.num_cores; ++core) {
    c.core_watts[static_cast<std::size_t>(package_of_core(core))] +=
        spec_.energy.p_core_idle_w;
  }
  c.dram_watts = spec_.energy.p_dram_idle_w;
  c.pkg_watts.assign(static_cast<std::size_t>(spec_.num_packages), 0.0);
  double total_w = 0.0;
  for (int pkg = 0; pkg < spec_.num_packages; ++pkg) {
    const auto i = static_cast<std::size_t>(pkg);
    c.pkg_watts[i] = c.core_watts[i] + c.dram_watts + spec_.energy.p_uncore_w;
    total_w += c.pkg_watts[i];
  }

  // Entering the regime pins the per-tick observables that legacy ticks
  // refresh: the runnable count, the sampled VFS table size and the
  // constant idle power (set here so defer_idle on a freshly eligible
  // server reads the same power_w() a per-tick advance_idle's first
  // coast tick would pin).
  kstate_.procs_running = std::max(1, runnable);
  kstate_.procs_blocked = c.io_rate_per_s > 200.0 ? 1 : 0;
  kstate_.file_nr = 900 + 32 * tasks_.size() + 32;
  last_tick_power_w_ = total_w;

  // Snapshots, after the pins above so restoring them is stable.
  c.kstate = kstate_;
  c.rapl.clear();
  for (auto& pkg : rapl_) {
    c.rapl.push_back(pkg.package().state());
    c.rapl.push_back(pkg.core().state());
    c.rapl.push_back(pkg.dram().state());
  }
  c.temps_c.assign(static_cast<std::size_t>(spec_.num_cores), 0.0);
  for (int core = 0; core < spec_.num_cores; ++core) {
    c.temps_c[static_cast<std::size_t>(core)] = thermal_.temp_c(core);
  }
  const int deepest = cpuidle_.num_states() - 1;
  c.deep_idle.assign(static_cast<std::size_t>(spec_.num_cores), {});
  if (deepest >= 0) {
    for (int core = 0; core < spec_.num_cores; ++core) {
      c.deep_idle[static_cast<std::size_t>(core)] = {
          cpuidle_.usage(core, deepest), cpuidle_.time_us(core, deepest)};
    }
  }

  ++generation_;  // the regime pins above are /proc-visible
  c.expected_generation = generation_;
}

void Host::materialize_coast_(SimDuration elapsed) {
  CoastEpisode& c = coast_;
  const double e_sec = to_seconds(elapsed);
  const std::uint64_t jiffies = elapsed / (kSecond / 100);
  const std::uint64_t secs = elapsed / kSecond;

  // Restore the anchor, then apply deltas that are pure functions of
  // `elapsed`; state(E) never depends on earlier materialisations, which
  // is what makes any tick split of the interval bitwise-equivalent.
  kstate_ = c.kstate;
  auto& ks = kstate_;
  ks.uptime_ns += elapsed;
  ks.idle_time_ns += elapsed * static_cast<std::uint64_t>(spec_.num_cores);
  for (auto& times : ks.cpu_times) {
    times.idle += jiffies;
    times.irq += secs;
    times.softirq += secs;
  }
  for (auto& sstat : ks.schedstat) {
    sstat.schedule_called += jiffies;
    sstat.sched_goidle += jiffies;
  }
  const auto nic_events = static_cast<std::uint64_t>(
      (40.0 + c.io_rate_per_s * 0.4) * e_sec);
  const auto disk_events =
      static_cast<std::uint64_t>(c.io_rate_per_s * 0.6 * e_sec);
  for (auto& line : ks.irqs) {
    switch (line.kind) {
      case IrqKind::kLocalTimer:
        for (auto& count : line.per_cpu) count += jiffies;
        ks.total_interrupts += jiffies * line.per_cpu.size();
        break;
      case IrqKind::kNic:
        line.per_cpu[0] += nic_events;
        ks.total_interrupts += nic_events;
        break;
      case IrqKind::kDisk:
        line.per_cpu[0] += disk_events;
        ks.total_interrupts += disk_events;
        break;
      case IrqKind::kResched:  // nothing migrates while nothing runs
      case IrqKind::kOther:
        break;
    }
  }
  for (std::size_t type = 0; type < kSoftirqNames.size(); ++type) {
    auto& per_cpu = ks.softirqs[type];
    const std::string_view name = kSoftirqNames[type];
    if (name == "TIMER" || name == "SCHED") {
      for (auto& count : per_cpu) count += jiffies;
    } else if (name == "RCU") {
      for (auto& count : per_cpu) count += jiffies / 2;
    } else if (name == "HRTIMER") {
      for (auto& count : per_cpu) count += jiffies / 10;
    } else if (name == "NET_RX" && !per_cpu.empty()) {
      per_cpu[0] += nic_events;
    } else if (name == "BLOCK" && !per_cpu.empty()) {
      per_cpu[0] += disk_events;
    }
  }
  ks.total_ctxt_switches +=
      static_cast<std::uint64_t>(c.ctxt_rate_per_s * e_sec);
  // loadavg: the closed-form solution of the kernel's per-tick decay
  // toward a constant target (sum of duty cycles — the expectation the
  // legacy path samples with Bernoulli draws).
  ks.load1 = c.load_target +
             (ks.load1 - c.load_target) * std::exp(-e_sec / 60.0);
  ks.load5 = c.load_target +
             (ks.load5 - c.load_target) * std::exp(-e_sec / 300.0);
  ks.load15 = c.load_target +
              (ks.load15 - c.load_target) * std::exp(-e_sec / 900.0);

  for (std::size_t i = 0; i < rapl_.size(); ++i) {
    auto& pkg = rapl_[i];
    hw::rapl_coast(pkg.package().mutable_state(), c.rapl[3 * i + 0],
                   c.pkg_watts[i], e_sec, pkg.package().max_energy_range_uj());
    hw::rapl_coast(pkg.core().mutable_state(), c.rapl[3 * i + 1],
                   c.core_watts[i], e_sec, pkg.core().max_energy_range_uj());
    if (spec_.has_dram_rapl) {
      hw::rapl_coast(pkg.dram().mutable_state(), c.rapl[3 * i + 2],
                     c.dram_watts, e_sec, pkg.dram().max_energy_range_uj());
    }
  }
  if (spec_.num_cores > 0) {
    const double retention =
        hw::thermal_coast_retention(e_sec, thermal_.params());
    const double ambient = thermal_.params().ambient_c;
    double* temps = thermal_.mutable_temps();
    for (int core = 0; core < spec_.num_cores; ++core) {
      temps[core] = ambient +
                    (c.temps_c[static_cast<std::size_t>(core)] - ambient) *
                        retention;
    }
  }
  const int deepest = cpuidle_.num_states() - 1;
  if (deepest >= 0) {
    const hw::CpuIdleCoastDelta idle = hw::cpuidle_coast(elapsed, e_sec);
    for (int core = 0; core < spec_.num_cores; ++core) {
      const auto& anchor = c.deep_idle[static_cast<std::size_t>(core)];
      cpuidle_.seed(core, deepest, anchor.usage + idle.usage,
                    anchor.time_us + idle.time_us);
    }
  }

  now_ = c.t0 + elapsed;
  ++generation_;  // the render cache must see the new bytes
  c.expected_generation = generation_;
}

void Host::advance_idle(SimDuration duration) {
  coast_sync();  // no-op unless deferred time pends
  if (!coast_active()) begin_coast_();
  // Per-tick reference: one materialisation per tick — the "equivalent
  // sequence of idle ticks" the deferred paths must match bit-for-bit.
  SimDuration remaining = duration;
  while (remaining > 0) {
    const SimDuration dt = std::min(remaining, tick_duration_);
    coast_.materialized += dt;
    materialize_coast_(coast_.materialized);
    remaining -= dt;
  }
}

void Host::defer_idle(SimDuration duration) {
  if (!coast_active()) begin_coast_();
  coast_.pending += duration;
}

void Host::coast_sync() {
  if (coast_.pending == 0) return;
  // Pending time only exists on a live episode: every mutation path syncs
  // before invalidating (the Server accessors enforce this).
  coast_.materialized += coast_.pending;
  coast_.pending = 0;
  materialize_coast_(coast_.materialized);
}

void Host::run_tick(SimDuration dt) {
  const std::uint64_t ctx_before = sched_.total_context_switches();
  const std::uint64_t mig_before = sched_.total_migrations();

  sched_.tick(tasks_, effective_freq_hz_, dt, perf_, *cgroups_.root(), rng_,
              /*closed_form_switches=*/true);

  // Charge cgroup accounting from this tick's shares.
  for (const auto& share : sched_.task_shares()) {
    Task& task = *share.task;
    auto& cgroup = *task.cgroup;
    if (task.cgroup != cgroups_.root()) ++nonroot_usage_marker_;
    cgroup.cpuacct.ensure_cpus(spec_.num_cores);
    cgroup.cpuacct
        .usage_ns_per_cpu[static_cast<std::size_t>(task.cpu)] +=
        static_cast<std::uint64_t>(share.active_seconds * 1e9);
    cgroup.cpuacct.total_cycles += share.sample.cycles;
    PerfEventSubsystem::charge(cgroup, task.cpu, share.sample);
  }

  integrate_energy(dt);
  // Same RC step as ThermalModel::advance; the exp() inside the decay
  // factor is computed once per distinct dt instead of every tick
  // (identical inputs, identical bits).
  thermal_.advance_with_decay(core_power_w_.data(), core_power_w_.size(),
                              factors_for(dt).thermal_decay);
  for (int core = 0; core < spec_.num_cores; ++core) {
    const auto idle_us = static_cast<std::uint64_t>(
        sched_.core_activity()[static_cast<std::size_t>(core)].idle_seconds *
        1e6);
    cpuidle_.record_idle(core, idle_us);
  }

  update_kernel_counters(dt, ctx_before, mig_before);
  apply_power_capping();

  // Behavior telemetry: one aggregate event per stream per tick, stamped
  // at the end-of-tick instant. Aggregate switch counts (not per-switch
  // events) keep the stream identical whether the scheduler took the
  // closed-form shortcut or the per-quantum hook loop on any given core.
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    const SimTime t = now_ + dt;
    double instructions = 0.0;
    double busy_seconds = 0.0;
    for (const auto& activity : sched_.core_activity()) {
      instructions += activity.instructions;
      busy_seconds += activity.active_seconds;
    }
    bus.emit(obs::EventKind::kCtxSwitch, t, event_source_,
             sched_.total_context_switches() - ctx_before,
             sched_.total_migrations() - mig_before);
    bus.emit(obs::EventKind::kPerfEvent, t, event_source_,
             static_cast<std::uint64_t>(instructions),
             static_cast<std::uint64_t>(busy_seconds * 1e6));
    bus.emit(obs::EventKind::kRaplSample, t, event_source_,
             static_cast<std::uint64_t>(last_tick_power_w_ * 1000.0),
             rapl_.empty() ? 0 : rapl_[0].package().energy_uj());
    double hottest = 0.0;
    double coolest = 0.0;
    if (spec_.num_cores > 0) {
      hottest = coolest = thermal_.temp_c(0);
      for (int core = 1; core < spec_.num_cores; ++core) {
        const double temp = thermal_.temp_c(core);
        hottest = std::max(hottest, temp);
        coolest = std::min(coolest, temp);
      }
    }
    bus.emit(obs::EventKind::kThermalSample, t, event_source_,
             static_cast<std::uint64_t>(hottest * 1000.0),
             static_cast<std::uint64_t>(coolest * 1000.0));
  }

  if (ticks_run_ % 10 == 9) sched_.rebalance(tasks_);
  now_ += dt;
  ++ticks_run_;
  ++generation_;
}

int Host::package_of_core(int core) const noexcept {
  const int per_pkg = std::max(1, spec_.cores_per_package);
  return std::min(core / per_pkg, spec_.num_packages - 1);
}

void Host::integrate_energy(SimDuration dt) {
  const double dt_sec = to_seconds(dt);
  double total_package_j = 0.0;
  // Member scratch, zeroed in place: two heap allocations per tick avoided
  // relative to the deleted object-at-a-time path.
  pkg_core_j_.assign(pkg_core_j_.size(), 0.0);
  pkg_dram_j_.assign(pkg_dram_j_.size(), 0.0);
  double* pkg_core_j = pkg_core_j_.data();
  double* pkg_dram_j = pkg_dram_j_.data();
  step_allocs_avoided_ += 2;

  for (int core = 0; core < spec_.num_cores; ++core) {
    const auto& activity =
        sched_.core_activity()[static_cast<std::size_t>(core)];
    const hw::TickEnergy e = energy_model_.core_activity_energy(activity);
    core_power_w_[static_cast<std::size_t>(core)] =
        dt_sec > 0 ? e.core_j / dt_sec : 0.0;
    const auto pkg = static_cast<std::size_t>(package_of_core(core));
    pkg_core_j[pkg] += e.core_j;
    pkg_dram_j[pkg] += e.dram_j;
  }

  const hw::TickEnergy bg = energy_model_.background_energy(dt_sec);
  for (int pkg = 0; pkg < spec_.num_packages; ++pkg) {
    const auto i = static_cast<std::size_t>(pkg);
    // RAPL measurement noise: small multiplicative error per integration.
    const double noise = std::clamp(
        rng_.gaussian(1.0, spec_.energy.measurement_noise), 0.9, 1.1);
    const double core_j = pkg_core_j[i] * noise;
    const double dram_j = (pkg_dram_j[i] + bg.dram_j) * noise;
    const double package_j =
        (pkg_core_j[i] + pkg_dram_j[i] + bg.package_j) * noise;
    if (spec_.has_rapl && i < rapl_.size()) {
      rapl_[i].core().add_energy_j(core_j);
      if (spec_.has_dram_rapl) rapl_[i].dram().add_energy_j(dram_j);
      rapl_[i].package().add_energy_j(package_j);
    }
    total_package_j += package_j;
  }
  last_tick_power_w_ = dt_sec > 0 ? total_package_j / dt_sec : 0.0;
}

double Host::lifetime_energy_j() const noexcept {
  double total = 0.0;
  for (const auto& pkg : rapl_) total += pkg.package().lifetime_energy_j();
  return total;
}

void Host::apply_power_capping() {
  const double nominal = spec_.freq_ghz * 1e9;
  if (spec_.rapl_power_cap_w <= 0.0) {
    // Cap lifted: recover toward nominal frequency.
    if (effective_freq_hz_ < nominal) {
      effective_freq_hz_ = std::min(nominal, effective_freq_hz_ * 1.03);
    }
    return;
  }
  if (last_tick_power_w_ > spec_.rapl_power_cap_w) {
    // Immediate (ms-level) frequency throttle, 5% per tick, floor at 50%.
    effective_freq_hz_ = std::max(nominal * 0.5, effective_freq_hz_ * 0.95);
  } else if (effective_freq_hz_ < nominal) {
    effective_freq_hz_ = std::min(nominal, effective_freq_hz_ * 1.03);
  }
}

void Host::update_kernel_counters(SimDuration dt, std::uint64_t ctx_before,
                                  std::uint64_t migrations_before) {
  const double dt_sec = to_seconds(dt);
  auto& ks = kstate_;
  ks.uptime_ns += dt;

  double total_io_rate = 0.0;
  int runnable = 0;
  // loadavg samples the *instantaneous* runnable count — a task with duty
  // d is runnable at a sampling instant with probability d, which is what
  // gives real load averages their jitter.
  int sampled_runnable = 0;
  for (const auto& task : tasks_) {
    total_io_rate += task->behavior.io_rate_per_s;
    if (task->behavior.duty_cycle > 0.0) ++runnable;
    if (rng_.bernoulli(std::min(1.0, task->behavior.duty_cycle))) {
      ++sampled_runnable;
    }
  }

  // Per-cpu jiffies + idle time.
  for (int core = 0; core < spec_.num_cores; ++core) {
    const auto& activity =
        sched_.core_activity()[static_cast<std::size_t>(core)];
    auto& times = ks.cpu_times[static_cast<std::size_t>(core)];
    const auto busy_jiffies =
        static_cast<std::uint64_t>(activity.active_seconds * kUserHz);
    times.user += busy_jiffies * 9 / 10;
    times.system += busy_jiffies / 10;
    const double iowait_share =
        std::min(0.3, total_io_rate / 4000.0) * activity.idle_seconds;
    times.iowait += static_cast<std::uint64_t>(iowait_share * kUserHz);
    times.idle += static_cast<std::uint64_t>(
        (activity.idle_seconds - iowait_share) * kUserHz);
    times.irq += static_cast<std::uint64_t>(dt_sec);  // ~1 jiffy/100s of irq
    times.softirq += static_cast<std::uint64_t>(dt_sec);
    ks.idle_time_ns += static_cast<std::uint64_t>(activity.idle_seconds * 1e9);

    auto& sstat = ks.schedstat[static_cast<std::size_t>(core)];
    sstat.schedule_called += std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(dt_sec * kUserHz));
    if (activity.idle_seconds > 0.0) ++sstat.sched_goidle;
    sstat.run_time_ns +=
        static_cast<std::uint64_t>(activity.active_seconds * 1e9);
    sstat.wait_time_ns += static_cast<std::uint64_t>(
        activity.active_seconds * 1e8);  // ~10% queueing
    sstat.timeslices += std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(activity.active_seconds * kUserHz));
  }

  // Interrupts: local timer per cpu per jiffy; device interrupts from IO.
  // Dispatch on the precomputed line kind — same counters as the original
  // label-string matching, without per-tick string compares.
  const auto jiffies =
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(dt_sec * kUserHz));
  for (auto& line : ks.irqs) {
    switch (line.kind) {
      case IrqKind::kLocalTimer:
        for (auto& count : line.per_cpu) count += jiffies;
        ks.total_interrupts += jiffies * line.per_cpu.size();
        break;
      case IrqKind::kNic: {
        const auto events = static_cast<std::uint64_t>(
            (40.0 + total_io_rate * 0.4) * dt_sec);
        line.per_cpu[0] += events;
        ks.total_interrupts += events;
        break;
      }
      case IrqKind::kDisk: {
        const auto events =
            static_cast<std::uint64_t>(total_io_rate * 0.6 * dt_sec);
        line.per_cpu[0] += events;
        ks.total_interrupts += events;
        break;
      }
      case IrqKind::kResched: {
        const std::uint64_t migrations =
            sched_.total_migrations() - migrations_before;
        for (auto& count : line.per_cpu) count += migrations;
        ks.total_interrupts += migrations * line.per_cpu.size();
        break;
      }
      case IrqKind::kOther:
        break;
    }
  }

  // Softirqs: TIMER/SCHED per jiffy per cpu, NET_RX and BLOCK from IO.
  // The per-type increment is resolved once, outside the per-core loop
  // (the original compared name strings per (type, core) pair).
  for (std::size_t type = 0; type < kSoftirqNames.size(); ++type) {
    auto& per_cpu = ks.softirqs[type];
    const std::string_view name = kSoftirqNames[type];
    if (name == "TIMER" || name == "SCHED") {
      for (auto& count : per_cpu) count += jiffies;
    } else if (name == "RCU") {
      for (auto& count : per_cpu) count += jiffies / 2;
    } else if (name == "HRTIMER") {
      for (auto& count : per_cpu) count += jiffies / 10;
    } else if (name == "NET_RX" && !per_cpu.empty()) {
      per_cpu[0] += static_cast<std::uint64_t>(
          (40.0 + total_io_rate * 0.4) * dt_sec);
    } else if (name == "BLOCK" && !per_cpu.empty()) {
      per_cpu[0] +=
          static_cast<std::uint64_t>(total_io_rate * 0.6 * dt_sec);
    }
  }

  ks.total_ctxt_switches += sched_.total_context_switches() - ctx_before;
  ks.procs_running = std::max(1, runnable);
  ks.procs_blocked = total_io_rate > 200.0 ? 1 : 0;

  // loadavg: kernel-style exponential decay toward the sampled runnable
  // count (a 5%-duty daemon is runnable in ~5% of samples). The per-dt
  // factor cache memoizes exp(-dt/T) — same dt, same double.
  const double active = static_cast<double>(sampled_runnable);
  auto decay = [&](double load, double factor) {
    return load * factor + active * (1.0 - factor);
  };
  const TickFactors& f = factors_for(dt);
  ks.load1 = decay(ks.load1, f.load1_factor);
  ks.load5 = decay(ks.load5, f.load5_factor);
  ks.load15 = decay(ks.load15, f.load15_factor);

  // Entropy pool: slow accrual from interrupt timing, drained by IO and
  // process creation (which is why Table II marks it indirectly
  // manipulable: a co-resident tenant's activity drains it).
  ks.entropy_avail += static_cast<int>(rng_.uniform_i64(-18, 44));
  ks.entropy_avail -=
      static_cast<int>(std::min(40.0, total_io_rate * 0.004 * dt_sec));
  ks.entropy_avail = std::clamp(ks.entropy_avail, 128, ks.poolsize);

  // VFS counters drift with task count and IO.
  ks.file_nr = 900 + 32 * tasks_.size() + rng_.uniform_u64(0, 64);
  ks.inode_nr += rng_.uniform_u64(0, 3);
  ks.dentry_nr += rng_.uniform_u64(0, 5);
  ks.dentry_unused += rng_.uniform_u64(0, 4);

  // ext4 allocator churn when IO is happening.
  if (total_io_rate > 0.0 && !ks.ext4_group_free_blocks.empty()) {
    const auto group = rng_.uniform_u64(0, ks.ext4_group_free_blocks.size() - 1);
    auto& free_blocks = ks.ext4_group_free_blocks[group];
    const std::int64_t delta = rng_.uniform_i64(-32, 32);
    const std::int64_t updated =
        std::clamp<std::int64_t>(static_cast<std::int64_t>(free_blocks) + delta,
                                 0, 32768);
    free_blocks = static_cast<std::uint64_t>(updated);
  }

  // NUMA: hits follow instruction flow; a small share crosses nodes.
  double total_instructions = 0.0;
  for (const auto& activity : sched_.core_activity()) {
    total_instructions += activity.instructions;
  }
  const auto pages = static_cast<std::uint64_t>(total_instructions / 50000.0);
  for (std::size_t node = 0; node < ks.numa.size(); ++node) {
    auto& numa = ks.numa[node];
    const std::uint64_t share = pages / ks.numa.size();
    numa.numa_hit += share;
    numa.local_node += share * 96 / 100;
    numa.other_node += share * 4 / 100;
    if (ks.numa.size() > 1) numa.numa_miss += share / 50;
  }

  // Load-balancer cost estimate drifts as in fair.c.
  for (auto& costs : ks.sched_domain_lb_cost) {
    costs[0] = std::max<std::uint64_t>(
        4000, costs[0] + static_cast<std::uint64_t>(rng_.uniform_i64(-200, 220)));
    costs[1] = std::max<std::uint64_t>(
        9000, costs[1] + static_cast<std::uint64_t>(rng_.uniform_i64(-350, 380)));
  }

  update_memory_accounting();
}

void Host::update_memory_accounting() {
  auto& ks = kstate_;
  std::uint64_t rss_kb = 0;
  for (const auto& task : tasks_) rss_kb += task->behavior.rss_bytes >> 10;
  const std::uint64_t kernel_base_kb = 600 * 1024;
  const std::uint64_t cached_kb = std::min<std::uint64_t>(
      ks.mem_total_kb / 5, 350000 + rss_kb / 4);
  ks.buffers_kb = 90000;
  ks.cached_kb = cached_kb;
  ks.slab_kb = 110000;
  const std::uint64_t used_kb =
      kernel_base_kb + rss_kb + ks.buffers_kb + ks.cached_kb + ks.slab_kb;
  ks.mem_free_kb =
      used_kb < ks.mem_total_kb ? ks.mem_total_kb - used_kb : 4096;
  ks.active_kb = rss_kb + cached_kb / 2;
  ks.inactive_kb = cached_kb / 2;
  ks.dirty_kb = 64 + rss_kb / 2048;
}

}  // namespace cleaks::kernel
