// Host: one simulated physical server — hardware plus a running kernel.
//
// Host owns the hardware models (RAPL, thermal, cpuidle), the kernel
// subsystems (namespaces, cgroups, scheduler, perf_event), the task table
// and the global KernelState. advance() steps simulated time in ticks,
// during which the scheduler runs tasks, energy/thermal/idle models
// integrate, and every /proc- and /sys-visible counter is maintained.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hw/batched_physics.h"
#include "hw/cpuidle.h"
#include "hw/energy_model.h"
#include "hw/rapl.h"
#include "hw/spec.h"
#include "hw/thermal.h"
#include "kernel/cgroup.h"
#include "kernel/kernel_state.h"
#include "kernel/namespaces.h"
#include "kernel/perf_event.h"
#include "kernel/scheduler.h"
#include "kernel/task.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace cleaks::kernel {

class Host {
 public:
  /// `boot_time` is the simulated instant the machine was powered on
  /// (uptime counts from here). `seed` drives all stochastic behaviour of
  /// this host, including its boot_id.
  Host(std::string name, hw::HardwareSpec spec, std::uint64_t seed,
       SimTime boot_time = 0);

  // Not copyable (tasks hold back-references via cgroup/namespace shares).
  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  // --- time ---
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  /// Tick granularity for advance(); smaller is finer but slower. Defaults
  /// to 100 ms, adequate for second-scale power traces; the defense
  /// evaluation uses finer ticks.
  void set_tick_duration(SimDuration tick) { tick_duration_ = tick; }
  [[nodiscard]] SimDuration tick_duration() const noexcept {
    return tick_duration_;
  }
  /// Advance simulated time by exactly `duration`: whole ticks of
  /// tick_duration() followed by one shorter final tick for any remainder
  /// (a `duration` below one tick runs a single partial tick). Durations
  /// are NOT rounded up — now() always lands on now() + duration, and a
  /// partial tick integrates physics over its true dt. Pinned by the
  /// AdvanceContract tests in tests/kernel_test.cpp; the batched path must
  /// honour the same splitting.
  void advance(SimDuration duration);

  /// Pre-seed accumulators (uptime, jiffies, interrupts, RAPL counters,
  /// cpuidle residency) as if the host had already been up for
  /// `prior_uptime` at ~20% average utilization before the simulation
  /// begins. Call once, before the first advance().
  void seed_prior_uptime(SimDuration prior_uptime);

  // --- identity / hardware ---
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const hw::HardwareSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const KernelState& state() const noexcept { return kstate_; }
  [[nodiscard]] KernelState& mutable_state() noexcept {
    ++generation_;  // caller may change anything /proc-visible
    return kstate_;
  }
  [[nodiscard]] const hw::ThermalModel& thermal() const noexcept {
    return thermal_;
  }
  [[nodiscard]] const hw::CpuIdleAccounting& cpuidle() const noexcept {
    return cpuidle_;
  }
  [[nodiscard]] const std::vector<hw::RaplPackage>& rapl() const noexcept {
    return rapl_;
  }
  [[nodiscard]] std::vector<hw::RaplPackage>& mutable_rapl() noexcept {
    ++generation_;
    return rapl_;
  }

  // --- kernel subsystems ---
  [[nodiscard]] NamespaceRegistry& namespaces() noexcept { return ns_registry_; }
  [[nodiscard]] const NamespaceSet& init_ns() const noexcept { return init_ns_; }
  /// Mutable access for runtime-side changes to init namespaces (e.g. the
  /// host-side veth peer a container runtime adds to init_net).
  [[nodiscard]] NamespaceSet& mutable_init_ns() noexcept {
    ++generation_;
    return init_ns_;
  }
  [[nodiscard]] CgroupManager& cgroups() noexcept { return cgroups_; }
  [[nodiscard]] const CgroupManager& cgroups() const noexcept {
    return cgroups_;
  }
  [[nodiscard]] PerfEventSubsystem& perf() noexcept { return perf_; }
  [[nodiscard]] const Scheduler& scheduler() const noexcept { return sched_; }

  // --- tasks ---
  struct SpawnOptions {
    std::string comm;
    TaskBehavior behavior;
    std::string container_id;               ///< empty = host task
    std::shared_ptr<Cgroup> cgroup;         ///< nullptr = root cgroup
    const NamespaceSet* ns = nullptr;       ///< nullptr = init namespaces
    std::vector<int> allowed_cpus;          ///< empty = any core
  };
  std::shared_ptr<Task> spawn_task(const SpawnOptions& options);
  bool kill_task(HostPid pid);
  [[nodiscard]] std::shared_ptr<Task> find_task(HostPid pid) const;
  [[nodiscard]] const std::vector<std::shared_ptr<Task>>& tasks() const noexcept {
    return tasks_;
  }

  // --- power observability (simulator ground truth; the in-container view
  // goes through the fs module and may be namespaced by the defense) ---
  /// Whole-host package power during the last tick (W), including noise.
  [[nodiscard]] double last_tick_power_w() const noexcept {
    return last_tick_power_w_;
  }
  /// Lifetime host energy (J), all packages.
  [[nodiscard]] double lifetime_energy_j() const noexcept;
  /// Monotonic count of non-root cpuacct charges ever applied on this
  /// host. The provider's billing rollup compares it per server to find
  /// tenants whose usage may have moved since the last epoch — an
  /// unchanged marker proves every container cgroup's usage_ns is
  /// unchanged (the run_tick share loop is the only writer). Coast
  /// episodes never bump it (no scheduler runs while coasting), so the
  /// value is identical in parked and visit-all modes.
  [[nodiscard]] std::uint64_t nonroot_usage_marker() const noexcept {
    return nonroot_usage_marker_;
  }
  /// Current effective core frequency (Hz) after any RAPL capping.
  [[nodiscard]] double effective_freq_hz() const noexcept {
    return effective_freq_hz_;
  }

  /// Set (or lift, with 0) the host-level RAPL package power cap at
  /// runtime; rack-level cappers use this as their actuation knob.
  /// Re-asserting the current value is a pure no-op (no generation bump),
  /// so a capper that re-lifts an already-lifted cap every window cannot
  /// end a coast episode.
  void set_power_cap_w(double cap_w) noexcept {
    if (spec_.rapl_power_cap_w == cap_w) return;
    spec_.rapl_power_cap_w = cap_w;
    ++generation_;
  }

  // --- analytic idle coasting (hw/idle_coast.h) ---
  //
  // A coast-enabled host whose task table is exactly the baseline system
  // daemons, whose power cap is lifted and whose frequency is nominal may
  // *coast*: park its physics at an anchor snapshot and advance as a pure
  // closed form of elapsed time — zero RNG draws, frozen perf/cpuacct/VFS
  // jitter, constant noise-free idle power. advance_idle() is the per-tick
  // reference (one materialisation per tick, the "equivalent sequence of
  // idle ticks"); defer_idle()+coast_sync() is the deferred fast path. Any
  // split of the same interval lands on identical bits — per-tick, one
  // defer per skipped step, or a single defer of a whole parked stretch —
  // because every materialisation recomputes from the anchor and never
  // moves it. The Datacenter's parked mode leans on the strongest form:
  // a server parked for k steps gets one defer_idle(k*dt) at wake, not k
  // calls (split-invariance is pinned by tests/sparse_test.cpp).
  //
  // Episodes end only through mutation: every path that can change
  // eligibility (spawn/kill, cap change, mutable_* accessors, binding)
  // bumps generation_, which coast_active() checks against the anchor.
  // Default off: standalone hosts keep the legacy per-tick regime
  // bit-for-bit; the Datacenter enables coasting on every server in both
  // never-park (CLEAKS_SPARSE=0) and parked mode.
  void set_coast_enabled(bool on) noexcept { coast_on_ = on; }
  [[nodiscard]] bool coast_enabled() const noexcept { return coast_on_; }
  /// True when the host may coast *now*: coast enabled, only the baseline
  /// system tasks, no power cap, frequency at nominal. Every input changes
  /// only through generation-bumping paths, so eligibility cannot flip
  /// mid-episode without coast_active() noticing.
  [[nodiscard]] bool coast_eligible() const noexcept;
  /// Per-tick idle advance: materialise the coast per tick_duration()
  /// tick (begins an episode if none is live). Equivalent in bits to
  /// defer_idle(duration) + coast_sync().
  void advance_idle(SimDuration duration);
  /// Deferred idle advance: accrue pending coast time in O(1) without
  /// touching any observable state (begins an episode if none is live —
  /// entry pins last_tick_power_w() to the constant idle power, so const
  /// power reads match per-tick stepping from the first coasted step).
  /// The parked scheduler calls this once with a whole parked stretch.
  void defer_idle(SimDuration duration);
  /// Materialise any pending deferred time. The episode stays live — a
  /// sync never re-anchors, so pure reads after a sync cannot diverge
  /// from a dense run where the same reads touch nothing.
  void coast_sync();
  /// Whether a coast episode is live (anchored and not invalidated by a
  /// later mutation).
  [[nodiscard]] bool coast_active() const noexcept {
    return coast_.active && generation_ == coast_.expected_generation;
  }
  /// Deferred sim-time not yet materialised (sparse bookkeeping).
  [[nodiscard]] SimDuration coast_pending() const noexcept {
    return coast_.pending;
  }

  /// Monotonic counter bumped whenever anything /proc- or /sys-visible may
  /// have changed (tick, task table change, runtime mutation). The pseudo-fs
  /// render cache keys on it: equal generation ⇒ identical render bytes.
  [[nodiscard]] std::uint64_t state_generation() const noexcept {
    return generation_;
  }

  /// Stable logical id stamped on this host's event-bus emissions
  /// (obs/events.h): the server index in a facility, 0 standalone. Part of
  /// the merged-stream order, so it must be simulated identity — never the
  /// execution lane.
  void set_event_source(std::uint32_t source) noexcept {
    event_source_ = source;
  }
  [[nodiscard]] std::uint32_t event_source() const noexcept {
    return event_source_;
  }

  /// Per-host deterministic RNG fork for auxiliary consumers.
  [[nodiscard]] Rng fork_rng(std::string_view salt) const {
    return rng_base_.fork(salt);
  }

  // --- batched physics (SoA plane) ---
  /// Migrate this host's hardware state (RAPL accumulators, core
  /// temperatures, cpuidle counters, root-cgroup cpuacct row) onto lane
  /// `lane` of `plane`. Pure storage migration: the tick arithmetic
  /// (closed-form context-switch accounting, reused package scratch,
  /// per-dt factor cache) is unconditional since the legacy scalar branches
  /// were deleted, and binding changes *where* state lives, never a single
  /// bit of output (tests/batched_physics_test.cpp pins recorded goldens).
  /// The plane's geometry must match this host's HardwareSpec; the plane
  /// must outlive the host's last use. All per-host accessors keep working
  /// — they are views into the plane.
  void bind_physics(hw::BatchedPhysics& plane, std::size_t lane);
  /// Whether this host's hardware state lives on a BatchedPhysics lane.
  [[nodiscard]] bool batched() const noexcept { return batched_; }
  /// Heap allocations skipped so far by the tick loop relative to the
  /// deleted object-at-a-time path (two per-tick package scratch vectors).
  /// Plain accumulator; the Datacenter flushes it into the runtime-scoped
  /// `step_allocs_avoided_total` metric.
  [[nodiscard]] std::uint64_t step_allocs_avoided() const noexcept {
    return step_allocs_avoided_;
  }

 private:
  /// Per-dt factors that are pure functions of the tick length (thermal RC
  /// decay, loadavg exponential-decay factors), computed once per distinct
  /// dt and reused — identical libm inputs give identical outputs, so
  /// caching cannot perturb a single bit.
  struct TickFactors {
    SimDuration dt = 0;
    bool valid = false;
    double thermal_decay = 0.0;
    double load1_factor = 0.0;
    double load5_factor = 0.0;
    double load15_factor = 0.0;
  };

  /// Anchor of an idle-coast episode: a snapshot of every /proc- and
  /// /sys-visible accumulator plus the constant rates in force while the
  /// host idles. materialize_coast_() overwrites live state from here as a
  /// pure function of elapsed time (see hw/idle_coast.h for why that makes
  /// any tick split of the same interval land on identical bits).
  struct CoastEpisode {
    bool active = false;
    std::uint64_t expected_generation = 0;  ///< stale once generation_ moves
    SimTime t0 = 0;                ///< host now() at the anchor
    SimDuration materialized = 0;  ///< elapsed already applied to live state
    SimDuration pending = 0;       ///< deferred by defer_idle, not yet applied
    // Snapshots.
    KernelState kstate;
    std::vector<hw::RaplDomainState> rapl;  ///< package-major {pkg,core,dram}
    std::vector<double> temps_c;
    std::vector<hw::CpuIdleCounter> deep_idle;  ///< deepest C-state per core
    // Constant rates derived at the anchor.
    double io_rate_per_s = 0.0;
    double ctxt_rate_per_s = 0.0;
    double load_target = 0.0;        ///< sum of min(1, duty) over tasks
    std::vector<double> pkg_watts;   ///< package-domain power per package
    std::vector<double> core_watts;  ///< core-domain power per package
    double dram_watts = 0.0;         ///< dram-domain power per package
  };

  void begin_coast_();
  void materialize_coast_(SimDuration elapsed);
  void run_tick(SimDuration dt);
  void integrate_energy(SimDuration dt);
  void update_kernel_counters(SimDuration dt, std::uint64_t ctx_before,
                              std::uint64_t migrations_before);
  void update_memory_accounting();
  void apply_power_capping();
  [[nodiscard]] int package_of_core(int core) const noexcept;
  [[nodiscard]] const TickFactors& factors_for(SimDuration dt);

  std::string name_;
  hw::HardwareSpec spec_;
  Rng rng_base_;
  Rng rng_;
  SimTime now_ = 0;
  SimDuration tick_duration_ = 100 * kMillisecond;

  hw::EnergyModel energy_model_;
  std::vector<hw::RaplPackage> rapl_;
  hw::ThermalModel thermal_;
  hw::CpuIdleAccounting cpuidle_;
  std::vector<double> core_power_w_;  ///< scratch per tick

  bool batched_ = false;  ///< hardware state bound to a BatchedPhysics lane
  TickFactors factors_;   ///< per-dt factor cache
  std::vector<double> pkg_core_j_;  ///< per-tick package scratch
  std::vector<double> pkg_dram_j_;
  std::uint64_t step_allocs_avoided_ = 0;
  std::uint32_t event_source_ = 0;  ///< see set_event_source()

  NamespaceRegistry ns_registry_;
  NamespaceSet init_ns_;
  CgroupManager cgroups_;
  PerfEventSubsystem perf_;
  Scheduler sched_;
  std::vector<std::shared_ptr<Task>> tasks_;
  HostPid next_pid_ = 300;  ///< early pids belong to kernel threads

  bool coast_on_ = false;  ///< see set_coast_enabled()
  /// Size of the task table right after construction (the baseline system
  /// daemons); coast eligibility requires the table to still match it.
  std::size_t baseline_task_count_ = 0;
  CoastEpisode coast_;

  KernelState kstate_;
  double last_tick_power_w_ = 0.0;
  std::uint64_t nonroot_usage_marker_ = 0;  ///< see nonroot_usage_marker()
  double effective_freq_hz_ = 0.0;
  std::uint64_t ticks_run_ = 0;
  std::uint64_t generation_ = 0;  ///< see state_generation()
};

}  // namespace cleaks::kernel
