// The seven Linux namespace types (§II-A1) as simulated kernel objects.
//
// A task carries a NamespaceSet; the init (host) set is created by the Host,
// and the container runtime clones fresh namespaces per container. Pseudo-file
// generators consult the viewing task's namespaces — a generator that renders
// global state regardless of the viewer's namespace *is* a leakage channel,
// exactly as in the kernel code paths of §III-B.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace cleaks::kernel {

enum class NsType { kMnt, kUts, kPid, kNet, kIpc, kUser, kCgroup };

constexpr int kNumNsTypes = 7;

std::string to_string(NsType type);

/// Monotonic namespace inode-style identifier (like the ns:[4026531835]
/// numbers in /proc/self/ns).
using NsId = std::uint64_t;

struct UtsNamespace {
  NsId id = 0;
  std::string hostname;
  std::string domainname;
};

struct PidNamespace {
  NsId id = 0;
  int level = 0;       ///< 0 = init pid ns
  int next_pid = 1;    ///< next ns-local pid to hand out

  int allocate_pid() { return next_pid++; }
};

/// A network device as visible in a NET namespace.
struct NetDevice {
  std::string name;
  bool up = true;
};

struct NetNamespace {
  NsId id = 0;
  std::vector<NetDevice> devices;
};

struct IpcNamespace {
  NsId id = 0;
  int shm_segments = 0;
  int msg_queues = 0;
  int semaphores = 0;
};

struct UserNamespace {
  NsId id = 0;
  int level = 0;
  /// uid inside this namespace that maps to `host_uid_base` on the host.
  int inner_uid = 0;
  int host_uid_base = 0;
};

struct MntNamespace {
  NsId id = 0;
  /// Root of this mount tree ("/" for the host, the container rootfs
  /// otherwise). The pseudo-fs mounts themselves are modelled in src/fs.
  std::string root = "/";
};

struct CgroupNamespace {
  NsId id = 0;
  /// The cgroup path that this namespace presents as its root
  /// (e.g. "/docker/<id>"), per §II-A1.
  std::string root_path = "/";
};

/// The set of namespaces a task is associated with. Namespaces are shared
/// (all tasks of one container point at the same objects), hence shared_ptr.
struct NamespaceSet {
  std::shared_ptr<MntNamespace> mnt;
  std::shared_ptr<UtsNamespace> uts;
  std::shared_ptr<PidNamespace> pid;
  std::shared_ptr<NetNamespace> net;
  std::shared_ptr<IpcNamespace> ipc;
  std::shared_ptr<UserNamespace> user;
  std::shared_ptr<CgroupNamespace> cgroup;

  /// True when this set shares the given init (host) namespace for `type`.
  [[nodiscard]] bool in_init_ns(NsType type, const NamespaceSet& init) const;
};

/// Namespace-clone flags for container creation. The 2016-era Docker
/// default is new MNT/UTS/PID/NET/IPC namespaces only; USER and CGROUP
/// namespaces existed in the kernel but were not enabled by default.
struct CloneFlags {
  bool new_user = false;
  bool new_cgroup = false;
};

/// Factory that hands out namespace ids and builds init / cloned sets.
class NamespaceRegistry {
 public:
  /// Init namespaces of a host with the given hostname and physical NICs.
  NamespaceSet make_init(const std::string& hostname,
                         const std::vector<std::string>& nic_names);

  NamespaceSet clone_for_container(const NamespaceSet& parent,
                                   const std::string& container_hostname,
                                   const std::string& cgroup_root,
                                   CloneFlags flags = CloneFlags{});

 private:
  NsId next_id_ = 4026531835ULL;  ///< mimics real ns inode numbering
};

}  // namespace cleaks::kernel
