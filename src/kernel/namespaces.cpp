#include "kernel/namespaces.h"

namespace cleaks::kernel {

std::string to_string(NsType type) {
  switch (type) {
    case NsType::kMnt:
      return "mnt";
    case NsType::kUts:
      return "uts";
    case NsType::kPid:
      return "pid";
    case NsType::kNet:
      return "net";
    case NsType::kIpc:
      return "ipc";
    case NsType::kUser:
      return "user";
    case NsType::kCgroup:
      return "cgroup";
  }
  return "?";
}

bool NamespaceSet::in_init_ns(NsType type, const NamespaceSet& init) const {
  switch (type) {
    case NsType::kMnt:
      return mnt == init.mnt;
    case NsType::kUts:
      return uts == init.uts;
    case NsType::kPid:
      return pid == init.pid;
    case NsType::kNet:
      return net == init.net;
    case NsType::kIpc:
      return ipc == init.ipc;
    case NsType::kUser:
      return user == init.user;
    case NsType::kCgroup:
      return cgroup == init.cgroup;
  }
  return false;
}

NamespaceSet NamespaceRegistry::make_init(
    const std::string& hostname, const std::vector<std::string>& nic_names) {
  NamespaceSet set;
  set.mnt = std::make_shared<MntNamespace>(MntNamespace{next_id_++, "/"});
  set.uts = std::make_shared<UtsNamespace>(
      UtsNamespace{next_id_++, hostname, "(none)"});
  set.pid = std::make_shared<PidNamespace>(PidNamespace{next_id_++, 0, 1});
  auto net = std::make_shared<NetNamespace>();
  net->id = next_id_++;
  net->devices.push_back({"lo", true});
  for (const auto& nic : nic_names) net->devices.push_back({nic, true});
  set.net = std::move(net);
  set.ipc = std::make_shared<IpcNamespace>(IpcNamespace{next_id_++, 0, 0, 0});
  set.user =
      std::make_shared<UserNamespace>(UserNamespace{next_id_++, 0, 0, 0});
  set.cgroup = std::make_shared<CgroupNamespace>(
      CgroupNamespace{next_id_++, "/"});
  return set;
}

NamespaceSet NamespaceRegistry::clone_for_container(
    const NamespaceSet& parent, const std::string& container_hostname,
    const std::string& cgroup_root, CloneFlags flags) {
  NamespaceSet set;
  set.mnt = std::make_shared<MntNamespace>(
      MntNamespace{next_id_++, "/var/lib/containers/" + container_hostname});
  set.uts = std::make_shared<UtsNamespace>(
      UtsNamespace{next_id_++, container_hostname, "(none)"});
  set.pid = std::make_shared<PidNamespace>(
      PidNamespace{next_id_++, parent.pid->level + 1, 1});
  auto net = std::make_shared<NetNamespace>();
  net->id = next_id_++;
  net->devices.push_back({"lo", true});
  net->devices.push_back({"eth0", true});  // veth peer inside the container
  set.net = std::move(net);
  set.ipc = std::make_shared<IpcNamespace>(IpcNamespace{next_id_++, 0, 0, 0});
  if (flags.new_user) {
    set.user = std::make_shared<UserNamespace>(
        UserNamespace{next_id_++, parent.user->level + 1, 0, 100000});
  } else {
    set.user = parent.user;
  }
  if (flags.new_cgroup) {
    set.cgroup = std::make_shared<CgroupNamespace>(
        CgroupNamespace{next_id_++, cgroup_root});
  } else {
    set.cgroup = parent.cgroup;
  }
  return set;
}

}  // namespace cleaks::kernel
