// Task: a schedulable entity (process/thread) on the simulated kernel.
//
// A task carries (a) identity — host pid and PID-namespace pid, comm, the
// container it belongs to; (b) placement — namespaces, cgroup, pinned core;
// (c) behaviour — the workload's instruction mix and resource appetite; and
// (d) accumulated statistics the scheduler fills in every tick.
//
// Tenant-controllable artifacts used by the paper's manipulation metric (M)
// are explicit fields: named timers (visible in /proc/timer_list), file
// locks (/proc/locks) and the comm name itself (/proc/sched_debug).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/cgroup.h"
#include "kernel/namespaces.h"
#include "util/sim_time.h"

namespace cleaks::kernel {

using HostPid = int;

/// Workload behaviour attached to a task. src/workload provides profiles;
/// the kernel only interprets these rates.
struct TaskBehavior {
  /// Fraction of one core the task wants while runnable (0..1).
  double duty_cycle = 0.0;
  /// Instructions per cycle while executing.
  double ipc = 1.0;
  /// LLC misses per 1000 retired instructions.
  double cache_miss_per_kinst = 1.0;
  /// Branch mispredictions per 1000 retired instructions.
  double branch_miss_per_kinst = 2.0;
  /// Resident memory the task holds (affects meminfo/zoneinfo/numastat).
  std::uint64_t rss_bytes = 16ULL << 20;
  /// Disk/network operations per second (drives interrupts and iowait).
  double io_rate_per_s = 0.0;
  /// hrtimers this task keeps armed, shown in /proc/timer_list.
  int named_timers = 0;
  /// POSIX file locks this task holds, shown in /proc/locks.
  int file_locks = 0;
};

/// Statistics the scheduler accumulates over the task's lifetime.
struct TaskStats {
  std::uint64_t runtime_ns = 0;
  double cycles = 0.0;
  double instructions = 0.0;
  double cache_misses = 0.0;
  double branch_misses = 0.0;
  std::uint64_t ctx_switches = 0;
  std::uint64_t migrations = 0;
};

struct Task {
  HostPid host_pid = 0;
  int ns_pid = 0;  ///< pid inside its PID namespace
  std::string comm;
  std::string container_id;  ///< empty for host tasks
  NamespaceSet ns;
  std::shared_ptr<Cgroup> cgroup;
  int cpu = 0;  ///< core the task currently runs on
  /// sched_setaffinity-style pinning; empty = inherit the cgroup cpuset
  /// (or any core). The load balancer honors this.
  std::vector<int> allowed_cpus;
  bool running = true;
  TaskBehavior behavior;
  TaskStats stats;
  SimTime start_time = 0;

  [[nodiscard]] bool is_containerized() const noexcept {
    return !container_id.empty();
  }
};

}  // namespace cleaks::kernel
