#include "kernel/cgroup.h"

namespace cleaks::kernel {

CgroupManager::CgroupManager() : root_(std::make_shared<Cgroup>("/")) {
  groups_["/"] = root_;
}

std::shared_ptr<Cgroup> CgroupManager::create(const std::string& path) {
  if (auto it = groups_.find(path); it != groups_.end()) return it->second;
  auto group = std::make_shared<Cgroup>(path);
  groups_[path] = group;
  return group;
}

std::shared_ptr<Cgroup> CgroupManager::find(const std::string& path) const {
  auto it = groups_.find(path);
  return it == groups_.end() ? nullptr : it->second;
}

bool CgroupManager::remove(const std::string& path) {
  if (path == "/") return false;
  return groups_.erase(path) > 0;
}

std::vector<std::shared_ptr<Cgroup>> CgroupManager::all() const {
  std::vector<std::shared_ptr<Cgroup>> out;
  out.reserve(groups_.size());
  for (const auto& [path, group] : groups_) out.push_back(group);
  return out;
}

}  // namespace cleaks::kernel
