#include "kernel/kernel_state.h"

namespace cleaks::kernel {

std::vector<Module> KernelState::default_modules(bool has_rapl,
                                                 bool has_coretemp) {
  std::vector<Module> modules = {
      {"ext4", 585728, 1},
      {"jbd2", 106496, 1},
      {"mbcache", 16384, 2},
      {"binfmt_misc", 20480, 1},
      {"nf_conntrack", 106496, 2},
      {"br_netfilter", 24576, 0},
      {"bridge", 126976, 1},
      {"stp", 16384, 1},
      {"llc", 16384, 2},
      {"overlay", 49152, 0},
      {"aufs", 249856, 0},
      {"veth", 16384, 0},
      {"xt_addrtype", 16384, 2},
      {"iptable_filter", 16384, 1},
      {"ip_tables", 28672, 1},
      {"x_tables", 36864, 3},
      {"e1000e", 245760, 0},
      {"ahci", 36864, 2},
      {"libahci", 32768, 1},
      {"kvm_intel", 172032, 0},
      {"kvm", 544768, 1},
      {"irqbypass", 16384, 1},
  };
  if (has_rapl) {
    modules.push_back({"intel_rapl", 20480, 0});
    modules.push_back({"intel_powerclamp", 16384, 0});
  }
  if (has_coretemp) {
    modules.push_back({"coretemp", 16384, 0});
    modules.push_back({"x86_pkg_temp_thermal", 16384, 0});
  }
  return modules;
}

}  // namespace cleaks::kernel
