#include "kernel/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace cleaks::kernel {

Scheduler::Scheduler(int num_cores, SimDuration quantum)
    : num_cores_(num_cores), quantum_(quantum) {
  if (num_cores <= 0) throw std::invalid_argument("Scheduler: cores <= 0");
  if (quantum == 0) throw std::invalid_argument("Scheduler: zero quantum");
  core_activity_.resize(static_cast<std::size_t>(num_cores));
  runnable_per_core_.resize(static_cast<std::size_t>(num_cores), 0);
  runqueues_.resize(static_cast<std::size_t>(num_cores));
}

double Scheduler::effective_duty(const Task& task) noexcept {
  double duty = std::clamp(task.behavior.duty_cycle, 0.0, 1.0);
  if (task.cgroup && task.cgroup->cpu_quota >= 0.0) {
    duty = std::min(duty, task.cgroup->cpu_quota);
  }
  return duty;
}

void Scheduler::tick(const std::vector<std::shared_ptr<Task>>& tasks,
                     double freq_hz, SimDuration dt, PerfEventSubsystem& perf,
                     Cgroup& idle_cgroup, Rng& rng,
                     bool closed_form_switches) {
  const double dt_sec = to_seconds(dt);
  for (auto& queue : runqueues_) queue.clear();
  task_shares_.clear();
  std::fill(runnable_per_core_.begin(), runnable_per_core_.end(), 0);
  for (auto& activity : core_activity_) activity = hw::TickActivity{};

  for (const auto& task : tasks) {
    if (!task || !task->running) continue;
    if (task->cpu < 0 || task->cpu >= num_cores_) continue;
    if (effective_duty(*task) <= 0.0) continue;
    runqueues_[static_cast<std::size_t>(task->cpu)].push_back(task.get());
    ++runnable_per_core_[static_cast<std::size_t>(task->cpu)];
  }

  for (int core = 0; core < num_cores_; ++core) {
    auto& queue = runqueues_[static_cast<std::size_t>(core)];
    auto& activity = core_activity_[static_cast<std::size_t>(core)];

    double total_demand = 0.0;
    for (Task* task : queue) total_demand += effective_duty(*task);
    const double scale = total_demand > 1.0 ? 1.0 / total_demand : 1.0;

    double busy_sec = 0.0;
    for (Task* task : queue) {
      const double jitter = std::clamp(rng.gaussian(1.0, 0.01), 0.9, 1.1);
      const double active = effective_duty(*task) * scale * dt_sec * jitter;
      TaskTickShare share;
      share.task = task;
      share.active_seconds = active;
      share.sample.cycles = active * freq_hz;
      share.sample.instructions =
          share.sample.cycles * task->behavior.ipc *
          std::clamp(rng.gaussian(1.0, 0.01), 0.9, 1.1);
      share.sample.cache_misses = share.sample.instructions *
                                  task->behavior.cache_miss_per_kinst / 1000.0;
      share.sample.branch_misses = share.sample.instructions *
                                   task->behavior.branch_miss_per_kinst /
                                   1000.0;
      busy_sec += active;
      activity.instructions += share.sample.instructions;
      activity.cycles += share.sample.cycles;
      activity.cache_misses += share.sample.cache_misses;
      activity.branch_misses += share.sample.branch_misses;
      task_shares_.push_back(share);
    }
    busy_sec = std::min(busy_sec, dt_sec);
    activity.active_seconds = busy_sec;
    activity.idle_seconds = dt_sec - busy_sec;

    // Context switches. With n > 1 runnable tasks the core round-robins at
    // quantum granularity between them; with exactly one partially-busy
    // task the switches are to/from the idle task (swapper), which lives in
    // the root cgroup — the inter-cgroup case that makes the power-based
    // namespace's switch hook expensive for single-copy workloads
    // (Table III, pipe-based context switching).
    const auto quanta = static_cast<std::uint64_t>(
        std::max<double>(1.0, static_cast<double>(dt) /
                                  static_cast<double>(quantum_)));
    std::uint64_t switches = 0;
    if (queue.size() > 1) {
      switches = quanta;
      // With no monitored cgroup on this core the switch hook no-ops for
      // every pair, so the per-quantum loop reduces to its stats update:
      // prev cycles through the queue, giving task i one switch per
      // s ≡ i (mod n) — i.e. quanta/n each plus one for the first
      // quanta%n tasks. Same integers, no 2·quanta virtual calls.
      bool closed = closed_form_switches;
      if (closed) {
        for (Task* task : queue) {
          if (task->cgroup && task->cgroup->perf.accounting_enabled) {
            closed = false;
            break;
          }
        }
      }
      if (closed) {
        const std::uint64_t n = queue.size();
        const std::uint64_t each = quanta / n;
        const std::uint64_t extra = quanta % n;
        for (std::uint64_t i = 0; i < n; ++i) {
          queue[i]->stats.ctx_switches += each + (i < extra ? 1 : 0);
        }
      } else {
        for (std::uint64_t s = 0; s < switches; ++s) {
          Task* prev = queue[s % queue.size()];
          Task* next = queue[(s + 1) % queue.size()];
          perf.on_context_switch(prev->cgroup.get(), next->cgroup.get(), core);
          ++prev->stats.ctx_switches;
        }
      }
    } else if (queue.size() == 1 && busy_sec < dt_sec * 0.97) {
      // A genuinely saturated solo task never leaves the cpu; the small
      // per-tick jitter must not be mistaken for sleep/wake cycles.
      // Sleep/wake pairs against the idle task.
      switches = quanta;
      Task* task = queue.front();
      // The sleep/wake hook pair no-ops when the task lives in the idle
      // (root) cgroup itself, or when neither side is monitored.
      const bool closed =
          closed_form_switches &&
          (task->cgroup.get() == &idle_cgroup ||
           (!(task->cgroup && task->cgroup->perf.accounting_enabled) &&
            !idle_cgroup.perf.accounting_enabled));
      if (closed) {
        task->stats.ctx_switches += quanta;
      } else {
        for (std::uint64_t s = 0; s < switches; ++s) {
          perf.on_context_switch(task->cgroup.get(), &idle_cgroup, core);
          perf.on_context_switch(&idle_cgroup, task->cgroup.get(), core);
          ++task->stats.ctx_switches;
        }
      }
      switches *= 2;
    }
    total_ctx_switches_ += switches;
  }

  // Commit per-task accounting.
  for (auto& share : task_shares_) {
    Task& task = *share.task;
    task.stats.runtime_ns +=
        static_cast<std::uint64_t>(share.active_seconds * 1e9);
    task.stats.cycles += share.sample.cycles;
    task.stats.instructions += share.sample.instructions;
    task.stats.cache_misses += share.sample.cache_misses;
    task.stats.branch_misses += share.sample.branch_misses;
  }
}

int Scheduler::place_task(const std::vector<int>& allowed_cpus) const {
  int best_core = -1;
  int best_load = 0;
  auto consider = [&](int core) {
    if (core < 0 || core >= num_cores_) return;
    const int load = runnable_per_core_[static_cast<std::size_t>(core)];
    if (best_core < 0 || load < best_load) {
      best_core = core;
      best_load = load;
    }
  };
  if (allowed_cpus.empty()) {
    for (int core = 0; core < num_cores_; ++core) consider(core);
  } else {
    for (int core : allowed_cpus) consider(core);
  }
  return best_core < 0 ? 0 : best_core;
}

int Scheduler::rebalance(const std::vector<std::shared_ptr<Task>>& tasks) {
  // Current load per core.
  std::vector<int> load(static_cast<std::size_t>(num_cores_), 0);
  for (const auto& task : tasks) {
    if (task && task->running && task->cpu >= 0 && task->cpu < num_cores_ &&
        effective_duty(*task) > 0.0) {
      ++load[static_cast<std::size_t>(task->cpu)];
    }
  }
  int migrations = 0;
  static const std::vector<int> kAnyCore;
  for (const auto& task : tasks) {
    if (!task || !task->running || effective_duty(*task) <= 0.0) continue;
    const auto& allowed =
        !task->allowed_cpus.empty()
            ? task->allowed_cpus
            : (task->cgroup ? task->cgroup->cpuset.cpus : kAnyCore);
    int best = task->cpu;
    int best_load = load[static_cast<std::size_t>(task->cpu)];
    auto consider = [&](int core) {
      if (core < 0 || core >= num_cores_) return;
      if (load[static_cast<std::size_t>(core)] < best_load - 1) {
        best = core;
        best_load = load[static_cast<std::size_t>(core)];
      }
    };
    if (allowed.empty()) {
      for (int core = 0; core < num_cores_; ++core) consider(core);
    } else {
      for (int core : allowed) consider(core);
    }
    if (best != task->cpu) {
      --load[static_cast<std::size_t>(task->cpu)];
      ++load[static_cast<std::size_t>(best)];
      task->cpu = best;
      ++task->stats.migrations;
      ++total_migrations_;
      ++migrations;
    }
  }
  return migrations;
}

}  // namespace cleaks::kernel
