#include "kernel/perf_event.h"

namespace cleaks::kernel {
namespace {

// PMU register mixing: models the MSR read-modify-write a real save/restore
// performs. Marked volatile-equivalent by feeding the result back into state
// so the compiler cannot elide the work.
inline std::uint64_t mix(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

void PerfEventSubsystem::create_cgroup_events(Cgroup& cgroup, int num_cpus) {
  auto& perf = cgroup.perf;
  perf.events.assign(
      static_cast<std::size_t>(num_cpus) * kEventsPerCpu, PerfEventInstance{});
  for (int cpu = 0; cpu < num_cpus; ++cpu) {
    for (int type = 0; type < kEventsPerCpu; ++type) {
      auto& ev = perf.events[static_cast<std::size_t>(cpu) * kEventsPerCpu +
                             static_cast<std::size_t>(type)];
      ev.event_type = type;
      ev.enabled = true;
      // The owner of every created event is TASK_TOMBSTONE (see header).
      ev.pmu_state = kTaskTombstone;
    }
  }
  perf.accounting_enabled = true;
}

void PerfEventSubsystem::destroy_cgroup_events(Cgroup& cgroup) {
  cgroup.perf.events.clear();
  cgroup.perf.accounting_enabled = false;
}

void PerfEventSubsystem::save_events(Cgroup& cgroup, int cpu) noexcept {
  auto& events = cgroup.perf.events;
  const std::size_t base = static_cast<std::size_t>(cpu) * kEventsPerCpu;
  if (base + kEventsPerCpu > events.size()) return;
  for (int type = 0; type < kEventsPerCpu; ++type) {
    auto& ev = events[base + static_cast<std::size_t>(type)];
    ev.pmu_state = mix(ev.pmu_state + ev.accumulated);
    ev.enabled = false;
  }
}

void PerfEventSubsystem::restore_events(Cgroup& cgroup, int cpu) noexcept {
  auto& events = cgroup.perf.events;
  const std::size_t base = static_cast<std::size_t>(cpu) * kEventsPerCpu;
  if (base + kEventsPerCpu > events.size()) return;
  for (int type = 0; type < kEventsPerCpu; ++type) {
    auto& ev = events[base + static_cast<std::size_t>(type)];
    ev.pmu_state = mix(ev.pmu_state ^ (static_cast<std::uint64_t>(cpu) << 8));
    ev.enabled = true;
  }
}

void PerfEventSubsystem::on_context_switch(Cgroup* prev, Cgroup* next,
                                           int cpu) noexcept {
  if (prev == next) return;  // intra-cgroup: no PMU work
  const bool prev_active = prev != nullptr && prev->perf.accounting_enabled;
  const bool next_active = next != nullptr && next->perf.accounting_enabled;
  if (!prev_active && !next_active) return;
  if (prev_active) save_events(*prev, cpu);
  if (next_active) restore_events(*next, cpu);
  ++pmu_switches_;
}

void PerfEventSubsystem::on_task_fork(Cgroup* cgroup, int cpu) noexcept {
  if (cgroup == nullptr || !cgroup->perf.accounting_enabled) return;
  // Inheritance: perf_event_init_task attaches the child to the event
  // contexts of its cpu; each attach is a few context writes.
  auto& events = cgroup->perf.events;
  const std::size_t base = static_cast<std::size_t>(cpu) * kEventsPerCpu;
  if (base + kEventsPerCpu > events.size()) return;
  for (int type = 0; type < kEventsPerCpu; ++type) {
    auto& event = events[base + static_cast<std::size_t>(type)];
    event.pmu_state = mix(event.pmu_state ^ event.accumulated);
    event.pmu_state = mix(event.pmu_state + static_cast<std::uint64_t>(type));
    event.pmu_state = mix(event.pmu_state ^ kTaskTombstone);
  }
}

void PerfEventSubsystem::charge(Cgroup& cgroup, int cpu,
                                const PerfSample& sample) noexcept {
  auto& perf = cgroup.perf;
  if (!perf.accounting_enabled) return;
  perf.counters.instructions += static_cast<std::uint64_t>(sample.instructions);
  perf.counters.cache_misses += static_cast<std::uint64_t>(sample.cache_misses);
  perf.counters.branch_misses +=
      static_cast<std::uint64_t>(sample.branch_misses);
  perf.counters.cycles += static_cast<std::uint64_t>(sample.cycles);
  const std::size_t base = static_cast<std::size_t>(cpu) * kEventsPerCpu;
  if (base + kEventsPerCpu <= perf.events.size()) {
    perf.events[base + 0].accumulated +=
        static_cast<std::uint64_t>(sample.instructions);
    perf.events[base + 1].accumulated +=
        static_cast<std::uint64_t>(sample.cache_misses);
    perf.events[base + 2].accumulated +=
        static_cast<std::uint64_t>(sample.branch_misses);
    perf.events[base + 3].accumulated +=
        static_cast<std::uint64_t>(sample.cycles);
  }
}

}  // namespace cleaks::kernel
