// perf_event subsystem (§V-B1).
//
// The power-based namespace creates, at container start, one event per
// (cpu, event type) bound to the container's perf_event cgroup, with the
// owner set to TASK_TOMBSTONE so accounting is decoupled from any user
// process. The scheduler invokes on_context_switch() for every switch; when
// the previous and next tasks belong to different perf cgroups the PMU
// context must be saved and restored — the measurable cost behind the
// pipe-based context-switching row of Table III.
#pragma once

#include <cstdint>

#include "kernel/cgroup.h"

namespace cleaks::kernel {

/// Performance deltas for one task over one tick slice.
struct PerfSample {
  double instructions = 0.0;
  double cache_misses = 0.0;
  double branch_misses = 0.0;
  double cycles = 0.0;
};

class PerfEventSubsystem {
 public:
  static constexpr int kEventsPerCpu = 4;
  /// Sentinel owner meaning "kernel-owned accounting, no user process".
  static constexpr std::uint64_t kTaskTombstone = ~std::uint64_t{0};

  /// Program per-cpu events for the cgroup and enable accounting.
  void create_cgroup_events(Cgroup& cgroup, int num_cpus);

  /// Tear down the events and disable accounting.
  void destroy_cgroup_events(Cgroup& cgroup);

  [[nodiscard]] static bool has_events(const Cgroup& cgroup) noexcept {
    return cgroup.perf.accounting_enabled;
  }

  /// Context-switch hook. Cheap no-op for intra-cgroup switches; PMU
  /// save/restore for inter-cgroup switches when either side has events.
  void on_context_switch(Cgroup* prev, Cgroup* next, int cpu) noexcept;

  /// Fork hook: a new task entering a monitored cgroup inherits the
  /// cgroup's event context (the per-fork cost behind the execl/process-
  /// creation rows of Table III). No-op for unmonitored cgroups.
  void on_task_fork(Cgroup* cgroup, int cpu) noexcept;

  /// Charge a tick sample to the cgroup's counters (only when enabled).
  static void charge(Cgroup& cgroup, int cpu, const PerfSample& sample) noexcept;

  [[nodiscard]] static PerfCounters read(const Cgroup& cgroup) noexcept {
    return cgroup.perf.counters;
  }

  /// Number of inter-cgroup PMU save/restore operations performed
  /// (test/bench observability).
  [[nodiscard]] std::uint64_t pmu_switches() const noexcept {
    return pmu_switches_;
  }

 private:
  static void save_events(Cgroup& cgroup, int cpu) noexcept;
  static void restore_events(Cgroup& cgroup, int cpu) noexcept;

  std::uint64_t pmu_switches_ = 0;
};

}  // namespace cleaks::kernel
