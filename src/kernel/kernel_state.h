// Global (non-namespaced) kernel state.
//
// Everything in this struct is system-wide: it is the data that the Table I
// leakage channels read. The fs module renders it into procfs/sysfs text;
// whether a given pseudo file filters it by the viewer's namespaces is
// exactly what the leakage detector tests.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/sim_time.h"

namespace cleaks::kernel {

/// Per-cpu time accounting in USER_HZ jiffies, as /proc/stat reports.
struct CpuTimes {
  std::uint64_t user = 0;
  std::uint64_t nice = 0;
  std::uint64_t system = 0;
  std::uint64_t idle = 0;
  std::uint64_t iowait = 0;
  std::uint64_t irq = 0;
  std::uint64_t softirq = 0;
  std::uint64_t steal = 0;

  [[nodiscard]] CpuTimes operator+(const CpuTimes& o) const noexcept {
    return {user + o.user, nice + o.nice,       system + o.system,
            idle + o.idle, iowait + o.iowait,   irq + o.irq,
            softirq + o.softirq, steal + o.steal};
  }
};

/// Behavioural class of an interrupt line, precomputed at construction so
/// the per-tick counter update dispatches on an enum instead of re-comparing
/// label strings every tick (same counters, colder strings).
enum class IrqKind {
  kLocalTimer,  ///< "LOC" and the IO-APIC timer "0": one per cpu per jiffy
  kNic,         ///< "25": events scale with IO rate, land on cpu0
  kDisk,        ///< "27": likewise
  kResched,     ///< "RES": follows scheduler migrations
  kOther,       ///< static lines (ehci, CAL, TLB)
};

/// One interrupt line of /proc/interrupts.
struct IrqLine {
  std::string label;  ///< "0", "LOC", "RES", ...
  std::string description;
  std::vector<std::uint64_t> per_cpu;
  IrqKind kind = IrqKind::kOther;
};

/// Softirq kinds in /proc/softirqs order.
constexpr std::array<const char*, 10> kSoftirqNames = {
    "HI",        "TIMER", "NET_TX",  "NET_RX", "BLOCK",
    "IRQ_POLL",  "TASKLET", "SCHED", "HRTIMER", "RCU"};

struct Module {
  std::string name;
  std::uint64_t size = 0;
  int refcount = 0;
};

/// NUMA counters per node (/sys/devices/system/node/node#/numastat).
struct NumaStats {
  std::uint64_t numa_hit = 0;
  std::uint64_t numa_miss = 0;
  std::uint64_t numa_foreign = 0;
  std::uint64_t interleave_hit = 0;
  std::uint64_t local_node = 0;
  std::uint64_t other_node = 0;
};

/// Scheduler statistics per cpu (/proc/schedstat).
struct SchedStat {
  std::uint64_t sched_yield = 0;
  std::uint64_t schedule_called = 0;
  std::uint64_t sched_goidle = 0;
  std::uint64_t ttwu_count = 0;
  std::uint64_t ttwu_local = 0;
  std::uint64_t run_time_ns = 0;
  std::uint64_t wait_time_ns = 0;
  std::uint64_t timeslices = 0;
};

struct KernelState {
  // --- identity / static ---
  std::string boot_id;          ///< /proc/sys/kernel/random/boot_id
  std::string kernel_version = "4.7.0";
  std::string distribution = "Ubuntu 16.04";
  std::string gcc_version = "5.4.0 20160609";
  SimTime boot_time = 0;        ///< simulated instant this host booted
  std::vector<Module> modules;

  // --- accumulators ---
  std::uint64_t uptime_ns = 0;
  std::uint64_t idle_time_ns = 0;  ///< summed over all cores
  std::vector<CpuTimes> cpu_times; ///< per core
  std::vector<IrqLine> irqs;
  /// softirqs[type][cpu]
  std::vector<std::vector<std::uint64_t>> softirqs;
  std::uint64_t total_interrupts = 0;
  std::uint64_t total_ctxt_switches = 0;
  std::uint64_t processes_forked = 0;
  int procs_running = 0;
  int procs_blocked = 0;
  std::vector<SchedStat> schedstat;  ///< per core
  std::vector<NumaStats> numa;       ///< per node

  // --- memory (kB) ---
  std::uint64_t mem_total_kb = 0;
  std::uint64_t mem_free_kb = 0;
  std::uint64_t buffers_kb = 0;
  std::uint64_t cached_kb = 0;
  std::uint64_t slab_kb = 0;
  std::uint64_t active_kb = 0;
  std::uint64_t inactive_kb = 0;
  std::uint64_t dirty_kb = 0;

  // --- loadavg ---
  double load1 = 0.0;
  double load5 = 0.0;
  double load15 = 0.0;

  // --- RNG subsystem ---
  int entropy_avail = 3000;
  int poolsize = 4096;

  // --- VFS counters ---
  std::uint64_t file_nr = 1216;
  std::uint64_t file_max = 1620437;
  std::uint64_t inode_nr = 180000;
  std::uint64_t inode_free = 2000;
  std::uint64_t dentry_nr = 210000;
  std::uint64_t dentry_unused = 190000;
  int dentry_age_limit = 45;

  // --- ext4 (per block group free extents, backing mb_groups) ---
  std::vector<std::uint64_t> ext4_group_free_blocks;

  // --- scheduler domain tuning (/proc/sys/kernel/sched_domain) ---
  /// max_newidle_lb_cost per (cpu, domain); updated by load balancing.
  std::vector<std::array<std::uint64_t, 2>> sched_domain_lb_cost;

  /// Standard module list for an Ubuntu 16.04 / 4.7 host.
  static std::vector<Module> default_modules(bool has_rapl, bool has_coretemp);
};

}  // namespace cleaks::kernel
