// Control groups (§II-A2). One unified hierarchy carries the controller
// state this reproduction needs: cpuacct (CPU cycle accounting feeding the
// power model), perf_event (per-container performance counters), net_prio
// (the ifpriomap leakage channel of case study I), cpuset, memory and a cpu
// bandwidth quota.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace cleaks::kernel {

/// cpuacct controller: accumulated CPU time per cpu in nanoseconds
/// (cpuacct.usage_percpu) plus total cycles, which the power-based
/// namespace's data-collection stage reads (§V-B1).
struct CpuacctState {
  std::vector<std::uint64_t> usage_ns_per_cpu;
  double total_cycles = 0.0;

  void ensure_cpus(int num_cpus) {
    if (usage_ns_per_cpu.size() < static_cast<std::size_t>(num_cpus)) {
      usage_ns_per_cpu.resize(static_cast<std::size_t>(num_cpus), 0);
    }
  }
  [[nodiscard]] std::uint64_t total_usage_ns() const {
    std::uint64_t total = 0;
    for (auto v : usage_ns_per_cpu) total += v;
    return total;
  }
};

/// Counters accumulated by the perf_event controller for one cgroup.
struct PerfCounters {
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t cycles = 0;
};

/// One hardware event programmed on one cpu for a cgroup. `pmu_state`
/// models the lazily saved/restored PMU context; the context-switch hook
/// touches it so inter-cgroup switches have a real, measurable cost
/// (the Table III overhead).
struct PerfEventInstance {
  int event_type = 0;  ///< 0=instructions 1=cache-misses 2=branch-misses 3=cycles
  bool enabled = false;
  std::uint64_t pmu_state = 0;
  std::uint64_t accumulated = 0;
};

struct PerfEventState {
  bool accounting_enabled = false;
  /// cpu-major: events[cpu * kEventsPerCpu + type].
  std::vector<PerfEventInstance> events;
  PerfCounters counters;
};

/// net_prio controller state: per-interface priorities set *by this cgroup*.
/// NOTE: the read handler for net_prio.ifpriomap in src/fs iterates the
/// *host's* device list (init_net) regardless of the reader's NET namespace —
/// reproducing the missing-context-check bug of §III-B case study I.
struct NetPrioState {
  std::map<std::string, int> ifpriomap;
};

struct CpusetState {
  std::vector<int> cpus;  ///< allowed cores; empty = all
};

struct MemoryState {
  std::uint64_t limit_bytes = 0;  ///< 0 = unlimited
  std::uint64_t usage_bytes = 0;
};

class Cgroup {
 public:
  explicit Cgroup(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] bool is_root() const noexcept { return path_ == "/"; }

  CpuacctState cpuacct;
  PerfEventState perf;
  NetPrioState net_prio;
  CpusetState cpuset;
  MemoryState memory;
  /// Fraction of one core this cgroup may consume per allowed core;
  /// < 0 means no quota.
  double cpu_quota = -1.0;

 private:
  std::string path_;
};

/// Owns the cgroup hierarchy of one host.
class CgroupManager {
 public:
  CgroupManager();

  /// Root ("/") cgroup; host tasks live here.
  [[nodiscard]] const std::shared_ptr<Cgroup>& root() const { return root_; }

  /// Create (or return existing) cgroup at `path` (e.g. "/docker/ab12cd").
  std::shared_ptr<Cgroup> create(const std::string& path);

  /// Lookup; nullptr when absent.
  [[nodiscard]] std::shared_ptr<Cgroup> find(const std::string& path) const;

  /// Remove a cgroup. Root cannot be removed.
  bool remove(const std::string& path);

  /// All cgroups in path order (root first).
  [[nodiscard]] std::vector<std::shared_ptr<Cgroup>> all() const;

 private:
  std::shared_ptr<Cgroup> root_;
  std::map<std::string, std::shared_ptr<Cgroup>> groups_;
};

}  // namespace cleaks::kernel
