// Control groups (§II-A2). One unified hierarchy carries the controller
// state this reproduction needs: cpuacct (CPU cycle accounting feeding the
// power model), perf_event (per-container performance counters), net_prio
// (the ifpriomap leakage channel of case study I), cpuset, memory and a cpu
// bandwidth quota.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace cleaks::kernel {

/// Per-cpu nanosecond counters that own their storage by default but can be
/// re-pointed (bind) at an externally owned fixed-capacity slice — how the
/// root cgroup's cpuacct row joins the hw::BatchedPhysics plane. Copies
/// always detach and own a snapshot.
class PerCpuNs {
 public:
  PerCpuNs() = default;
  PerCpuNs(const PerCpuNs& other)
      : own_(other.data_, other.data_ + other.size_),
        data_(own_.data()),
        size_(own_.size()) {}
  PerCpuNs& operator=(const PerCpuNs& other) {
    std::vector<std::uint64_t> snapshot(other.data_,
                                        other.data_ + other.size_);
    own_ = std::move(snapshot);
    data_ = own_.data();
    size_ = own_.size();
    bound_ = false;
    return *this;
  }

  /// Migrate current values into `external` (capacity entries, the rest
  /// zero-filled) and operate on it from now on. The slice is fixed:
  /// ensure_cpus beyond `capacity` throws afterwards.
  void bind(std::uint64_t* external, std::size_t capacity) {
    if (size_ > capacity) {
      throw std::length_error("PerCpuNs::bind: slice smaller than current");
    }
    std::copy(data_, data_ + size_, external);
    std::fill(external + size_, external + capacity, std::uint64_t{0});
    data_ = external;
    size_ = capacity;
    bound_ = true;
    own_.clear();
    own_.shrink_to_fit();
  }

  void ensure_cpus(int num_cpus) {
    const auto n = static_cast<std::size_t>(num_cpus);
    if (n <= size_) return;
    if (bound_) {
      throw std::length_error("PerCpuNs: bound slice cannot grow");
    }
    own_.resize(n, 0);
    data_ = own_.data();
    size_ = n;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  std::uint64_t& operator[](std::size_t i) noexcept { return data_[i]; }
  std::uint64_t operator[](std::size_t i) const noexcept { return data_[i]; }

 private:
  std::vector<std::uint64_t> own_;
  std::uint64_t* data_ = nullptr;
  std::size_t size_ = 0;
  bool bound_ = false;
};

/// cpuacct controller: accumulated CPU time per cpu in nanoseconds
/// (cpuacct.usage_percpu) plus total cycles, which the power-based
/// namespace's data-collection stage reads (§V-B1).
struct CpuacctState {
  PerCpuNs usage_ns_per_cpu;
  double total_cycles = 0.0;

  void ensure_cpus(int num_cpus) { usage_ns_per_cpu.ensure_cpus(num_cpus); }
  [[nodiscard]] std::uint64_t total_usage_ns() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < usage_ns_per_cpu.size(); ++i) {
      total += usage_ns_per_cpu[i];
    }
    return total;
  }
};

/// Counters accumulated by the perf_event controller for one cgroup.
struct PerfCounters {
  std::uint64_t instructions = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t cycles = 0;
};

/// One hardware event programmed on one cpu for a cgroup. `pmu_state`
/// models the lazily saved/restored PMU context; the context-switch hook
/// touches it so inter-cgroup switches have a real, measurable cost
/// (the Table III overhead).
struct PerfEventInstance {
  int event_type = 0;  ///< 0=instructions 1=cache-misses 2=branch-misses 3=cycles
  bool enabled = false;
  std::uint64_t pmu_state = 0;
  std::uint64_t accumulated = 0;
};

struct PerfEventState {
  bool accounting_enabled = false;
  /// cpu-major: events[cpu * kEventsPerCpu + type].
  std::vector<PerfEventInstance> events;
  PerfCounters counters;
};

/// net_prio controller state: per-interface priorities set *by this cgroup*.
/// NOTE: the read handler for net_prio.ifpriomap in src/fs iterates the
/// *host's* device list (init_net) regardless of the reader's NET namespace —
/// reproducing the missing-context-check bug of §III-B case study I.
struct NetPrioState {
  std::map<std::string, int> ifpriomap;
};

struct CpusetState {
  std::vector<int> cpus;  ///< allowed cores; empty = all
};

struct MemoryState {
  std::uint64_t limit_bytes = 0;  ///< 0 = unlimited
  std::uint64_t usage_bytes = 0;
};

class Cgroup {
 public:
  explicit Cgroup(std::string path) : path_(std::move(path)) {}

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] bool is_root() const noexcept { return path_ == "/"; }

  CpuacctState cpuacct;
  PerfEventState perf;
  NetPrioState net_prio;
  CpusetState cpuset;
  MemoryState memory;
  /// Fraction of one core this cgroup may consume per allowed core;
  /// < 0 means no quota.
  double cpu_quota = -1.0;

 private:
  std::string path_;
};

/// Owns the cgroup hierarchy of one host.
class CgroupManager {
 public:
  CgroupManager();

  /// Root ("/") cgroup; host tasks live here.
  [[nodiscard]] const std::shared_ptr<Cgroup>& root() const { return root_; }

  /// Create (or return existing) cgroup at `path` (e.g. "/docker/ab12cd").
  std::shared_ptr<Cgroup> create(const std::string& path);

  /// Lookup; nullptr when absent.
  [[nodiscard]] std::shared_ptr<Cgroup> find(const std::string& path) const;

  /// Remove a cgroup. Root cannot be removed.
  bool remove(const std::string& path);

  /// All cgroups in path order (root first).
  [[nodiscard]] std::vector<std::shared_ptr<Cgroup>> all() const;

 private:
  std::shared_ptr<Cgroup> root_;
  std::map<std::string, std::shared_ptr<Cgroup>> groups_;
};

}  // namespace cleaks::kernel
