// Time-sliced fair scheduler over per-core runqueues.
//
// Tasks are pinned to one core at a time (chosen least-loaded within their
// cpuset at spawn; periodic rebalancing migrates tasks like the kernel's
// load balancer would). Every tick the scheduler divides each core's time
// proportionally to task duty cycles, synthesizes the retired-instruction /
// cache-miss / branch-miss profile of each slice from the task's behaviour,
// counts context switches — invoking the perf_event switch hook so the
// power-based namespace pays its real cost — and reports per-core activity
// for the energy, thermal and cpuidle models.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "hw/energy_model.h"
#include "kernel/perf_event.h"
#include "kernel/task.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace cleaks::kernel {

/// One task's share of a tick.
struct TaskTickShare {
  Task* task = nullptr;
  double active_seconds = 0.0;
  PerfSample sample;
};

class Scheduler {
 public:
  explicit Scheduler(int num_cores, SimDuration quantum = 10 * kMillisecond);

  /// Execute one tick of `dt` simulated time at core frequency `freq_hz`
  /// (the host lowers freq_hz under a RAPL power cap). `idle_cgroup` is the
  /// cgroup the swapper/idle task accounts to (the root cgroup).
  ///
  /// `closed_form_switches` (the batched-physics fast path) replaces the
  /// per-quantum context-switch loops with equivalent integer arithmetic on
  /// cores where every involved cgroup is perf-unmonitored — there the
  /// switch hook is provably a no-op, so per-task ctx_switch counts and the
  /// facility totals are bitwise identical. Cores touching a monitored
  /// cgroup always take the per-quantum loop so the PMU save/restore cost
  /// (Table III) is still paid switch by switch.
  void tick(const std::vector<std::shared_ptr<Task>>& tasks, double freq_hz,
            SimDuration dt, PerfEventSubsystem& perf, Cgroup& idle_cgroup,
            Rng& rng, bool closed_form_switches = false);

  /// Per-core activity of the last tick.
  [[nodiscard]] const std::vector<hw::TickActivity>& core_activity() const noexcept {
    return core_activity_;
  }
  /// Per-task shares of the last tick.
  [[nodiscard]] const std::vector<TaskTickShare>& task_shares() const noexcept {
    return task_shares_;
  }
  /// Runnable task count per core at the last tick (feeds loadavg and
  /// sched_debug).
  [[nodiscard]] const std::vector<int>& runnable_per_core() const noexcept {
    return runnable_per_core_;
  }
  /// Scheduling quantum (the CFS-like timeslice). The idle-coast anchor
  /// derives its constant context-switch rate from this: two switches per
  /// quantum on every core that hosts at least one runnable task.
  [[nodiscard]] SimDuration quantum() const noexcept { return quantum_; }

  [[nodiscard]] std::uint64_t total_context_switches() const noexcept {
    return total_ctx_switches_;
  }
  [[nodiscard]] std::uint64_t total_migrations() const noexcept {
    return total_migrations_;
  }
  [[nodiscard]] int num_cores() const noexcept { return num_cores_; }

  /// Least-loaded core among `allowed` (all cores when empty), by current
  /// runnable count.
  [[nodiscard]] int place_task(const std::vector<int>& allowed_cpus) const;

  /// Move tasks from overloaded cores to underloaded ones within their
  /// cpusets; returns the number of migrations performed.
  int rebalance(const std::vector<std::shared_ptr<Task>>& tasks);

 private:
  [[nodiscard]] static double effective_duty(const Task& task) noexcept;

  int num_cores_;
  SimDuration quantum_;
  std::vector<hw::TickActivity> core_activity_;
  std::vector<TaskTickShare> task_shares_;
  std::vector<int> runnable_per_core_;
  std::vector<std::vector<Task*>> runqueues_;  ///< scratch, reused each tick
  std::uint64_t total_ctx_switches_ = 0;
  std::uint64_t total_migrations_ = 0;
};

}  // namespace cleaks::kernel
