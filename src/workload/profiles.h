// Workload profile catalog.
//
// A profile is a named TaskBehavior: an instruction mix (IPC, LLC-miss and
// branch-miss rates), a duty cycle and a memory/IO appetite. The paper's
// power modeling (Fig 6/7) trains on {idle loop, prime, 462.libquantum,
// stress} and validates on a disjoint SPECCPU2006 subset (Fig 8); the mixes
// below span the same (CM/C, BM/C) plane so the regression faces the same
// generalization problem.
#pragma once

#include <string>
#include <vector>

#include "kernel/task.h"

namespace cleaks::workload {

struct Profile {
  std::string name;
  kernel::TaskBehavior behavior;
};

// ---- the paper's model-training workloads (Fig 6/7) ----

/// Tight idle loop written in C: spins at high IPC, no memory traffic.
Profile idle_loop();
/// Prime95-style compute torture: high IPC, tiny working set.
Profile prime();
/// 462.libquantum: memory-streaming, high LLC miss rate.
Profile libquantum();
/// stress --cpu: moderate IPC integer churn.
Profile stress_cpu();
/// stress --vm with large working set: low IPC, very high miss rate.
Profile stress_vm(int vm_bytes_mb = 512);

/// The four-benchmark training set of Fig 6/7 (idle, prime, libquantum,
/// stress in two memory configurations).
std::vector<Profile> training_set();

// ---- SPECCPU2006-like validation suite (Fig 8; disjoint from training) ----
std::vector<Profile> spec_suite();

// ---- attack workloads ----

/// Power virus (SYMPO/MAMPO-style): the mix that maximizes energy per
/// second under the ground-truth model — high IPC *and* heavy memory
/// traffic on every core it can get.
Profile power_virus();

/// The Prime benchmark as used in Fig 4 (four copies pinned in a
/// container).
Profile prime_fig4();

// ---- background tenant mixes for the data-center simulation ----
Profile web_server();
Profile database();
Profile batch_analytics();
std::vector<Profile> tenant_mixes();

}  // namespace cleaks::workload
