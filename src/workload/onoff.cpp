#include "workload/onoff.h"

#include <algorithm>

namespace cleaks::workload {

OnOffLoad::OnOffLoad(kernel::Host& host, OnOffParams params)
    : host_(&host), params_(params) {
  if (params_.on_duration == 0) params_.on_duration = kMinute;
  if (params_.off_duration == 0) params_.off_duration = kMinute;
  if (params_.workers <= 0) params_.workers = host.spec().num_cores;
}

bool OnOffLoad::on_at(SimTime now) const noexcept {
  const SimDuration cycle = params_.on_duration + params_.off_duration;
  return (now + params_.phase) % cycle < params_.on_duration;
}

SimTime OnOffLoad::next_phase_change(SimTime now) const noexcept {
  const SimDuration cycle = params_.on_duration + params_.off_duration;
  const SimTime shifted = now + params_.phase;
  const SimTime cycle_start = shifted - shifted % cycle;
  const SimTime next = shifted % cycle < params_.on_duration
                           ? cycle_start + params_.on_duration
                           : cycle_start + cycle;
  return next - params_.phase;
}

void OnOffLoad::apply(SimTime now) {
  const bool want_on = on_at(now);
  if (want_on == on_) return;
  on_ = want_on;
  if (want_on) {
    for (int i = 0; i < params_.workers; ++i) {
      kernel::Host::SpawnOptions options;
      options.comm = "onoff-worker";
      options.behavior.duty_cycle = params_.duty_cycle;
      options.behavior.ipc = 1.2;
      options.behavior.cache_miss_per_kinst = 4.0;
      options.behavior.branch_miss_per_kinst = 6.0;
      options.behavior.io_rate_per_s = 10.0;
      options.behavior.rss_bytes = 64ULL << 20;
      worker_pids_.push_back(host_->spawn_task(options)->host_pid);
    }
  } else {
    for (const kernel::HostPid pid : worker_pids_) host_->kill_task(pid);
    worker_pids_.clear();
  }
}

}  // namespace cleaks::workload
