#include "workload/unixbench.h"

namespace cleaks::workload {
namespace {

kernel::TaskBehavior behavior(double duty, double ipc, double cm, double bm,
                              double io = 0.0) {
  kernel::TaskBehavior b;
  b.duty_cycle = duty;
  b.ipc = ipc;
  b.cache_miss_per_kinst = cm;
  b.branch_miss_per_kinst = bm;
  b.io_rate_per_s = io;
  b.rss_bytes = 16ULL << 20;
  return b;
}

}  // namespace

std::vector<UnixBenchSpec> unixbench_suite() {
  return {
      {"Dhrystone 2 using register variables", BenchKind::kCompute,
       behavior(1.0, 3.1, 0.05, 0.4)},
      {"Double-Precision Whetstone", BenchKind::kCompute,
       behavior(1.0, 2.0, 0.1, 0.3)},
      {"Execl Throughput", BenchKind::kExecl, behavior(0.8, 1.0, 5.0, 8.0)},
      {"File Copy 1024 bufsize 2000 maxblocks", BenchKind::kFileCopy,
       behavior(0.7, 0.9, 7.0, 2.0, 2500.0)},
      {"File Copy 256 bufsize 500 maxblocks", BenchKind::kFileCopy,
       behavior(0.6, 0.8, 8.0, 2.0, 4000.0)},
      {"File Copy 4096 bufsize 8000 maxblocks", BenchKind::kFileCopy,
       behavior(0.8, 1.0, 6.0, 2.0, 1500.0)},
      {"Pipe Throughput", BenchKind::kPipeThroughput,
       behavior(0.9, 1.2, 2.0, 3.0, 500.0)},
      {"Pipe-based Context Switching", BenchKind::kPipeContextSwitch,
       behavior(0.5, 1.0, 2.0, 3.0, 200.0)},
      {"Process Creation", BenchKind::kProcessCreation,
       behavior(0.7, 1.0, 4.0, 7.0)},
      {"Shell Scripts (1 concurrent)", BenchKind::kShellScripts,
       behavior(0.6, 1.1, 3.0, 6.0, 100.0)},
      {"Shell Scripts (8 concurrent)", BenchKind::kShellScripts,
       behavior(0.9, 1.1, 3.0, 6.0, 300.0)},
      {"System Call Overhead", BenchKind::kSyscall,
       behavior(1.0, 1.4, 0.5, 1.0)},
  };
}

}  // namespace cleaks::workload
