// Benign tenant load generator with diurnal, weekly and bursty structure.
//
// Fig 2 of the paper shows one week of whole-system power for eight cloud
// servers: drastic day-scale changes and a ~35% peak-to-trough range,
// against ~20-30% average utilization (Barroso et al.). This generator
// reproduces that shape: per-server target utilization =
//   base + diurnal sine + weekday factor + Ornstein-Uhlenbeck noise
//   + Poisson-arriving bursts,
// spread over worker tasks with heterogeneous tenant mixes.
#pragma once

#include <memory>
#include <vector>

#include "kernel/host.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "workload/profiles.h"

namespace cleaks::workload {

struct DiurnalParams {
  double base_utilization = 0.22;   ///< mean utilization (fraction of host)
  double diurnal_amplitude = 0.13;  ///< day/night swing
  double weekend_factor = 0.55;     ///< demand multiplier on days 5 and 6
  double noise_sigma = 0.06;        ///< OU noise stddev
  double noise_tau_s = 600.0;       ///< OU relaxation time
  double bursts_per_day = 30.0;     ///< Poisson arrival rate of load bursts
  double burst_min_util = 0.15;
  double burst_max_util = 0.50;
  SimDuration burst_min_len = 3 * kMinute;
  SimDuration burst_max_len = 40 * kMinute;
  /// Phase offset so different servers peak at different times of day.
  double phase_days = 0.0;
};

class DiurnalLoadGenerator {
 public:
  /// Spawns one worker task per core on `host` (host-level tenants).
  /// The host must outlive the generator.
  DiurnalLoadGenerator(kernel::Host& host, std::uint64_t seed,
                       DiurnalParams params = DiurnalParams{});

  /// Re-target worker duty cycles for simulated instant `now`.
  /// Call once per control interval (e.g. every 30 s) before advancing.
  void apply(SimTime now);

  /// Current target utilization (fraction of the whole host), after
  /// clamping; exposed for tests.
  [[nodiscard]] double current_target() const noexcept { return target_; }

 private:
  [[nodiscard]] double demand_at(SimTime now);

  kernel::Host* host_;
  DiurnalParams params_;
  Rng rng_;
  std::vector<std::shared_ptr<kernel::Task>> workers_;
  double ou_state_ = 0.0;
  SimTime last_apply_ = 0;
  double target_ = 0.0;
  SimTime burst_until_ = 0;
  double burst_util_ = 0.0;
  SimTime next_burst_check_ = 0;
};

}  // namespace cleaks::workload
