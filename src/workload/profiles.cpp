#include "workload/profiles.h"

namespace cleaks::workload {
namespace {

kernel::TaskBehavior make_behavior(double duty, double ipc, double cm_per_kinst,
                                   double bm_per_kinst,
                                   std::uint64_t rss_mb = 100,
                                   double io_rate = 0.0) {
  kernel::TaskBehavior behavior;
  behavior.duty_cycle = duty;
  behavior.ipc = ipc;
  behavior.cache_miss_per_kinst = cm_per_kinst;
  behavior.branch_miss_per_kinst = bm_per_kinst;
  behavior.rss_bytes = rss_mb << 20;
  behavior.io_rate_per_s = io_rate;
  return behavior;
}

}  // namespace

Profile idle_loop() {
  return {"idle-loop", make_behavior(1.0, 3.6, 0.02, 0.05, 2)};
}

Profile prime() {
  return {"prime", make_behavior(1.0, 2.3, 0.15, 0.8, 30)};
}

Profile libquantum() {
  return {"462.libquantum", make_behavior(1.0, 1.35, 9.5, 1.2, 600)};
}

Profile stress_cpu() {
  return {"stress-cpu", make_behavior(1.0, 1.8, 1.2, 4.5, 64)};
}

Profile stress_vm(int vm_bytes_mb) {
  // Larger working sets push the miss rate up and the IPC down.
  const double scale = vm_bytes_mb >= 512 ? 1.0 : 0.55;
  return {vm_bytes_mb >= 512 ? "stress-vm-512m" : "stress-vm-128m",
          make_behavior(1.0, 0.75 / (0.5 + scale), 14.0 * scale, 2.0,
                        static_cast<std::uint64_t>(vm_bytes_mb))};
}

std::vector<Profile> training_set() {
  return {idle_loop(), prime(), libquantum(), stress_cpu(), stress_vm(128),
          stress_vm(512)};
}

std::vector<Profile> spec_suite() {
  // Mixes follow the published characterization of SPECCPU2006 (IPC and
  // misses-per-kilo-instruction on Nehalem/Skylake-class parts): compute-
  // bound (hmmer, h264ref), branchy (gobmk, sjeng, astar), memory-bound
  // (mcf, milc, lbm, soplex) and middling (bzip2, gcc, xalancbmk).
  return {
      {"401.bzip2", make_behavior(1.0, 1.55, 2.8, 5.2, 850)},
      {"403.gcc", make_behavior(1.0, 1.25, 4.6, 6.8, 900)},
      {"429.mcf", make_behavior(1.0, 0.45, 22.0, 7.5, 1700)},
      {"445.gobmk", make_behavior(1.0, 1.15, 0.9, 11.5, 30)},
      {"456.hmmer", make_behavior(1.0, 2.45, 0.6, 1.1, 65)},
      {"458.sjeng", make_behavior(1.0, 1.30, 0.7, 9.8, 180)},
      {"464.h264ref", make_behavior(1.0, 2.15, 1.1, 2.4, 65)},
      {"471.omnetpp", make_behavior(1.0, 0.85, 10.5, 5.6, 170)},
      {"473.astar", make_behavior(1.0, 0.95, 5.2, 10.2, 330)},
      {"483.xalancbmk", make_behavior(1.0, 1.05, 6.8, 4.9, 430)},
      {"433.milc", make_behavior(1.0, 0.95, 16.0, 0.9, 680)},
      {"470.lbm", make_behavior(1.0, 1.05, 19.5, 0.6, 420)},
  };
}

Profile power_virus() {
  // Genetic-algorithm power viruses (SYMPO/MAMPO) beat plain stress by
  // keeping both the core pipelines and the memory system saturated.
  return {"power-virus", make_behavior(1.0, 2.9, 11.0, 1.5, 1024)};
}

Profile prime_fig4() {
  Profile p = prime();
  p.name = "prime-fig4";
  return p;
}

Profile web_server() {
  return {"nginx", make_behavior(0.35, 1.1, 3.5, 7.0, 300, 120.0)};
}

Profile database() {
  return {"mysqld", make_behavior(0.45, 0.9, 8.0, 5.0, 2048, 250.0)};
}

Profile batch_analytics() {
  return {"spark-executor", make_behavior(0.8, 1.6, 6.0, 3.0, 4096, 60.0)};
}

std::vector<Profile> tenant_mixes() {
  return {web_server(), database(), batch_analytics()};
}

}  // namespace cleaks::workload
