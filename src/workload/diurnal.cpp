#include "workload/diurnal.h"

#include <algorithm>
#include <cmath>

namespace cleaks::workload {

DiurnalLoadGenerator::DiurnalLoadGenerator(kernel::Host& host,
                                           std::uint64_t seed,
                                           DiurnalParams params)
    : host_(&host), params_(params), rng_(seed) {
  const auto mixes = tenant_mixes();
  for (int core = 0; core < host.spec().num_cores; ++core) {
    const auto& mix = mixes[rng_.uniform_u64(0, mixes.size() - 1)];
    kernel::Host::SpawnOptions options;
    options.comm = mix.name + "-w" + std::to_string(core);
    options.behavior = mix.behavior;
    options.behavior.duty_cycle = 0.0;
    options.allowed_cpus = {core};
    workers_.push_back(host.spawn_task(options));
    workers_.back()->cpu = core;
  }
}

double DiurnalLoadGenerator::demand_at(SimTime now) {
  const double day_frac =
      std::fmod(static_cast<double>(now) / static_cast<double>(kDay) +
                    params_.phase_days,
                1.0);
  const int day_index =
      static_cast<int>(static_cast<double>(now) / static_cast<double>(kDay)) %
      7;

  // Diurnal: trough ~4am, peak mid-afternoon.
  double demand = params_.base_utilization +
                  params_.diurnal_amplitude *
                      std::sin(2.0 * M_PI * (day_frac - 0.40));
  if (day_index >= 5) demand *= params_.weekend_factor;

  // Ornstein-Uhlenbeck noise, discretized over the interval since the
  // previous apply().
  const double dt = std::max(1.0, to_seconds(now - last_apply_));
  const double decay = std::exp(-dt / params_.noise_tau_s);
  const double diffusion =
      params_.noise_sigma * std::sqrt(1.0 - decay * decay);
  ou_state_ = ou_state_ * decay + rng_.gaussian(0.0, diffusion);
  demand += ou_state_;

  // Bursts: Poisson arrivals checked per interval.
  if (now >= next_burst_check_) {
    const double per_second = params_.bursts_per_day / to_seconds(kDay);
    if (rng_.bernoulli(std::min(1.0, per_second * dt))) {
      burst_until_ =
          now + rng_.uniform_u64(params_.burst_min_len, params_.burst_max_len);
      burst_util_ =
          rng_.uniform(params_.burst_min_util, params_.burst_max_util);
    }
    next_burst_check_ = now + 30 * kSecond;
  }
  if (now < burst_until_) demand += burst_util_;

  return std::clamp(demand, 0.02, 0.97);
}

void DiurnalLoadGenerator::apply(SimTime now) {
  target_ = demand_at(now);
  last_apply_ = now;
  // Spread the target over workers with mild imbalance so per-core
  // utilization (and temperature) differs like in real fleets.
  for (auto& worker : workers_) {
    const double jitter = std::clamp(rng_.gaussian(1.0, 0.15), 0.5, 1.5);
    const double duty = std::clamp(target_ * jitter, 0.0, 1.0);
    worker->behavior.duty_cycle = duty;
    // Working sets breathe with demand, so MemFree fluctuates the way a
    // loaded server's does (Table II relies on this variation).
    worker->behavior.rss_bytes =
        static_cast<std::uint64_t>((0.4 + duty) * (900ULL << 20));
  }
}

}  // namespace cleaks::workload
