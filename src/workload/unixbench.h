// UnixBench-like microbenchmark suite descriptors (Table III).
//
// Each entry names a UnixBench test and describes how to drive the
// simulated kernel for it: the task behaviour and the kernel-path kind the
// test stresses. The Table III harness runs every entry with the
// power-based namespace disabled and enabled and reports the *real*
// wall-clock overhead of our implementation's hot paths (perf-event cgroup
// charging and the PMU save/restore on inter-cgroup context switches).
#pragma once

#include <string>
#include <vector>

#include "kernel/task.h"

namespace cleaks::workload {

enum class BenchKind {
  kCompute,          ///< Dhrystone/Whetstone: pure CPU in one task
  kExecl,            ///< execl throughput: rapid task re-spawn
  kFileCopy,         ///< read/write loops: IO-heavy single task
  kPipeThroughput,   ///< pipe writes within one task
  kPipeContextSwitch,///< two tasks ping-pong: the inter-cgroup switch storm
  kProcessCreation,  ///< fork/exit loop
  kShellScripts,     ///< mix of short-lived tasks
  kSyscall,          ///< getpid loop: enter/leave kernel
};

struct UnixBenchSpec {
  std::string name;
  BenchKind kind;
  kernel::TaskBehavior behavior;
  /// Simulated seconds to run the scenario for one measurement.
  double sim_seconds = 10.0;
};

/// The twelve Table III benchmarks, in the paper's order.
std::vector<UnixBenchSpec> unixbench_suite();

}  // namespace cleaks::workload
