// Deterministic on/off (square-wave) tenant load.
//
// The sparse scheduler's canonical wakeup source: a server running only
// this generator is provably idle between phase edges, and the next edge
// is a pure function of sim-time — so the Datacenter can park the server
// on its timer wheel (util/event_core.h) at exactly next_phase_change()
// and coast the gap analytically. Unlike the diurnal generator this one
// draws no RNG and keeps no tasks alive while OFF: apply() is a strict
// no-op anywhere inside a phase, which is what makes skipping the
// per-step call bitwise-safe.
#pragma once

#include <vector>

#include "kernel/host.h"
#include "util/sim_time.h"

namespace cleaks::workload {

struct OnOffParams {
  SimDuration on_duration = 10 * kMinute;
  SimDuration off_duration = 50 * kMinute;
  /// Phase offset so a fleet of servers does not fire in lockstep.
  SimDuration phase = 0;
  double duty_cycle = 0.6;  ///< per-worker duty while ON
  int workers = 0;          ///< 0 = one per core
};

class OnOffLoad {
 public:
  /// The host must outlive the generator.
  OnOffLoad(kernel::Host& host, OnOffParams params);

  /// Spawn workers when `now` enters an ON phase, kill them when it enters
  /// an OFF phase; strict no-op while inside a phase.
  void apply(SimTime now);

  [[nodiscard]] bool on_at(SimTime now) const noexcept;
  /// The earliest instant strictly after `now` at which on_at() changes —
  /// the server's next-interesting-time for the sparse scheduler.
  [[nodiscard]] SimTime next_phase_change(SimTime now) const noexcept;
  [[nodiscard]] bool running() const noexcept { return on_; }

 private:
  kernel::Host* host_;
  OnOffParams params_;
  bool on_ = false;
  std::vector<kernel::HostPid> worker_pids_;
};

}  // namespace cleaks::workload
