// Container and ContainerRuntime: the Docker/LXC layer of the simulation.
//
// A container is a set of freshly cloned namespaces, a cgroup subtree
// ("/docker/<id>") with cpuset/memory/cpu limits, and one or more tasks.
// The runtime mounts the host's pseudo filesystems into every container
// (read-only, as Docker does) and applies the cloud provider's masking
// policy on reads — the exact surface §III studies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fs/masking.h"
#include "fs/pseudo_fs.h"
#include "kernel/host.h"
#include "util/result.h"

namespace cleaks::container {

struct ContainerConfig {
  std::string image = "ubuntu:16.04";
  /// Number of cores in the container's cpuset (0 = all host cores).
  int num_cpus = 0;
  /// Memory limit in bytes (0 = unlimited).
  std::uint64_t memory_limit_bytes = 0;
  /// Per-core CPU bandwidth quota (fraction, < 0 = none).
  double cpu_quota = -1.0;
  kernel::CloneFlags clone_flags;
};

class ContainerRuntime;

class Container {
 public:
  [[nodiscard]] const std::string& id() const noexcept { return id_; }
  [[nodiscard]] const std::string& hostname() const noexcept { return id_; }
  [[nodiscard]] const kernel::NamespaceSet& ns() const noexcept { return ns_; }
  [[nodiscard]] const std::shared_ptr<kernel::Cgroup>& cgroup() const noexcept {
    return cgroup_;
  }
  [[nodiscard]] const std::vector<int>& cpuset() const noexcept {
    return cgroup_->cpuset.cpus;
  }
  [[nodiscard]] kernel::Host& host() const noexcept { return *host_; }
  [[nodiscard]] bool alive() const noexcept { return alive_; }

  /// Launch a process inside the container.
  std::shared_ptr<kernel::Task> run(const std::string& comm,
                                    const kernel::TaskBehavior& behavior);

  /// Terminate one process by host pid.
  bool kill(kernel::HostPid pid);

  /// The container's init (pid 1 in its PID namespace).
  [[nodiscard]] const kernel::Task* init_task() const noexcept {
    return init_task_.get();
  }
  [[nodiscard]] const std::vector<std::shared_ptr<kernel::Task>>& tasks()
      const noexcept {
    return tasks_;
  }

  /// Read a pseudo file from inside this container — the tenant's view,
  /// with namespaces and the provider's masking policy applied.
  [[nodiscard]] Result<std::string> read_file(const std::string& path) const;

  /// Same view, rendered into a caller-provided buffer (replacing its
  /// contents). Scanner hot loops keep one buffer per worker.
  StatusCode read_file_into(std::string_view path, std::string& out) const;

 private:
  friend class ContainerRuntime;

  std::string id_;
  kernel::Host* host_ = nullptr;
  const fs::PseudoFs* fs_ = nullptr;
  const fs::MaskingPolicy* policy_ = nullptr;
  kernel::NamespaceSet ns_;
  std::shared_ptr<kernel::Cgroup> cgroup_;
  std::shared_ptr<kernel::Task> init_task_;
  std::vector<std::shared_ptr<kernel::Task>> tasks_;
  bool alive_ = true;
};

/// Creates and destroys containers on one host.
class ContainerRuntime {
 public:
  /// `policy` is the provider's pseudo-file hardening (stage-1 defense);
  /// the stock Docker default masks nothing.
  ContainerRuntime(kernel::Host& host, fs::PseudoFs& fs,
                   fs::MaskingPolicy policy = fs::MaskingPolicy::docker_default());

  std::shared_ptr<Container> create(const ContainerConfig& config);
  bool destroy(const std::string& id);
  [[nodiscard]] std::shared_ptr<Container> find(const std::string& id) const;
  [[nodiscard]] const std::vector<std::shared_ptr<Container>>& containers()
      const noexcept {
    return containers_;
  }
  [[nodiscard]] const fs::MaskingPolicy& policy() const noexcept {
    return policy_;
  }
  /// Replace the masking policy at runtime (stage-1 defense rollout);
  /// affects existing and future containers alike. Bumps the filesystem's
  /// render epoch: the policy decides which renders are restricted, so
  /// every cached render predating the flip is stale.
  void set_policy(fs::MaskingPolicy policy) {
    policy_ = std::move(policy);
    fs_->bump_render_epoch();
  }
  [[nodiscard]] fs::PseudoFs& filesystem() noexcept { return *fs_; }
  [[nodiscard]] kernel::Host& host() noexcept { return *host_; }

  /// Hook invoked on container creation/destruction; the power-based
  /// namespace uses it to set up per-container perf accounting (§V-B1).
  using LifecycleHook =
      std::function<void(Container&, bool /*created, false=destroying*/)>;
  void set_lifecycle_hook(LifecycleHook hook) { hook_ = std::move(hook); }

 private:
  /// Pick `count` cores, least-subscribed first.
  [[nodiscard]] std::vector<int> allocate_cpuset(int count) const;

  kernel::Host* host_;
  fs::PseudoFs* fs_;
  fs::MaskingPolicy policy_;
  std::vector<std::shared_ptr<Container>> containers_;
  LifecycleHook hook_;
  Rng id_rng_;
};

}  // namespace cleaks::container
