#include "container/container.h"

#include <algorithm>

#include "obs/events.h"

namespace cleaks::container {

std::shared_ptr<kernel::Task> Container::run(
    const std::string& comm, const kernel::TaskBehavior& behavior) {
  kernel::Host::SpawnOptions options;
  options.comm = comm;
  options.behavior = behavior;
  options.container_id = id_;
  options.cgroup = cgroup_;
  options.ns = &ns_;
  options.allowed_cpus = cgroup_->cpuset.cpus;
  auto task = host_->spawn_task(options);
  tasks_.push_back(task);
  cgroup_->memory.usage_bytes += behavior.rss_bytes;
  return task;
}

bool Container::kill(kernel::HostPid pid) {
  auto it = std::find_if(tasks_.begin(), tasks_.end(), [&](const auto& task) {
    return task->host_pid == pid;
  });
  if (it == tasks_.end()) return false;
  const std::uint64_t rss = (*it)->behavior.rss_bytes;
  cgroup_->memory.usage_bytes =
      cgroup_->memory.usage_bytes > rss ? cgroup_->memory.usage_bytes - rss : 0;
  tasks_.erase(it);
  return host_->kill_task(pid);
}

Result<std::string> Container::read_file(const std::string& path) const {
  if (!alive_) {
    return {StatusCode::kUnavailable, "container is not running"};
  }
  fs::ViewContext ctx;
  ctx.viewer = init_task_.get();
  ctx.policy = policy_;
  return fs_->read(path, ctx);
}

StatusCode Container::read_file_into(std::string_view path,
                                     std::string& out) const {
  if (!alive_) {
    out.clear();
    return StatusCode::kUnavailable;
  }
  fs::ViewContext ctx;
  ctx.viewer = init_task_.get();
  ctx.policy = policy_;
  return fs_->read_into(path, ctx, out);
}

ContainerRuntime::ContainerRuntime(kernel::Host& host, fs::PseudoFs& fs,
                                   fs::MaskingPolicy policy)
    : host_(&host),
      fs_(&fs),
      policy_(std::move(policy)),
      id_rng_(host.fork_rng("container-ids")) {}

std::vector<int> ContainerRuntime::allocate_cpuset(int count) const {
  const int total = host_->spec().num_cores;
  if (count <= 0 || count >= total) return {};  // empty = all cores
  // Subscription count per core across live containers.
  std::vector<int> load(static_cast<std::size_t>(total), 0);
  for (const auto& existing : containers_) {
    if (!existing->alive()) continue;
    const auto& cpus = existing->cgroup()->cpuset.cpus;
    if (cpus.empty()) continue;
    for (int cpu : cpus) ++load[static_cast<std::size_t>(cpu)];
  }
  std::vector<int> order(static_cast<std::size_t>(total));
  for (int c = 0; c < total; ++c) order[static_cast<std::size_t>(c)] = c;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return load[static_cast<std::size_t>(a)] < load[static_cast<std::size_t>(b)];
  });
  order.resize(static_cast<std::size_t>(count));
  std::sort(order.begin(), order.end());
  return order;
}

std::shared_ptr<Container> ContainerRuntime::create(
    const ContainerConfig& config) {
  auto instance = std::make_shared<Container>();
  instance->id_ = id_rng_.hex_string(12);
  instance->host_ = host_;
  instance->fs_ = fs_;
  instance->policy_ = &policy_;

  const std::string cgroup_path = "/docker/" + instance->id_;
  instance->cgroup_ = host_->cgroups().create(cgroup_path);
  instance->cgroup_->cpuset.cpus = allocate_cpuset(config.num_cpus);
  instance->cgroup_->memory.limit_bytes = config.memory_limit_bytes;
  instance->cgroup_->cpu_quota = config.cpu_quota;
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    const SimTime t = host_->now();
    const std::uint32_t source = host_->event_source();
    bus.emit(obs::EventKind::kCgroupMutation, t, source,
             static_cast<std::uint64_t>(obs::CgroupField::kCpusetCpus),
             instance->cgroup_->cpuset.cpus.size());
    bus.emit(obs::EventKind::kCgroupMutation, t, source,
             static_cast<std::uint64_t>(obs::CgroupField::kMemoryLimit),
             instance->cgroup_->memory.limit_bytes);
    // Quota is a fraction (-1 = unlimited); encode as milli-cores with
    // ~0 for unlimited so the payload stays an unsigned integer.
    const double quota = instance->cgroup_->cpu_quota;
    bus.emit(obs::EventKind::kCgroupMutation, t, source,
             static_cast<std::uint64_t>(obs::CgroupField::kCpuQuota),
             quota < 0.0 ? ~0ULL
                         : static_cast<std::uint64_t>(quota * 1000.0));
  }

  instance->ns_ = host_->namespaces().clone_for_container(
      host_->init_ns(), instance->id_, cgroup_path, config.clone_flags);

  // Host side of the veth pair shows up in init_net — and therefore in the
  // leaking net_prio.ifpriomap, whose random per-host device names make the
  // channel a unique host fingerprint (Table II rank 2).
  host_->mutable_init_ns().net->devices.push_back(
      {"veth" + instance->id_.substr(0, 7), true});

  // The init process (pid 1 inside the PID namespace): an idle shell.
  kernel::Host::SpawnOptions init_options;
  init_options.comm = "sh";
  init_options.behavior.duty_cycle = 0.0;
  init_options.behavior.rss_bytes = 4ULL << 20;
  init_options.container_id = instance->id_;
  init_options.cgroup = instance->cgroup_;
  init_options.ns = &instance->ns_;
  init_options.allowed_cpus = instance->cgroup_->cpuset.cpus;
  instance->init_task_ = host_->spawn_task(init_options);
  instance->tasks_.push_back(instance->init_task_);
  instance->cgroup_->memory.usage_bytes +=
      init_options.behavior.rss_bytes;

  containers_.push_back(instance);
  if (hook_) hook_(*instance, true);
  return instance;
}

bool ContainerRuntime::destroy(const std::string& id) {
  auto it = std::find_if(
      containers_.begin(), containers_.end(),
      [&](const auto& instance) { return instance->id() == id; });
  if (it == containers_.end()) return false;
  auto instance = *it;
  if (hook_) hook_(*instance, false);
  // Kill every task, then remove the cgroup.
  while (!instance->tasks_.empty()) {
    instance->kill(instance->tasks_.back()->host_pid);
  }
  host_->cgroups().remove(instance->cgroup_->path());
  auto& devices = host_->mutable_init_ns().net->devices;
  const std::string veth_name = "veth" + instance->id_.substr(0, 7);
  devices.erase(std::remove_if(devices.begin(), devices.end(),
                               [&](const kernel::NetDevice& device) {
                                 return device.name == veth_name;
                               }),
                devices.end());
  // Release the destroyed viewer's cached renders. Hygiene, not
  // correctness: its PID-namespace id is incarnation-unique, so no future
  // viewer could ever match the stale slots anyway.
  if (instance->ns_.pid != nullptr) {
    fs_->drop_viewer_entries(instance->ns_.pid->id);
  }
  instance->alive_ = false;
  containers_.erase(it);
  return true;
}

std::shared_ptr<Container> ContainerRuntime::find(const std::string& id) const {
  auto it = std::find_if(
      containers_.begin(), containers_.end(),
      [&](const auto& instance) { return instance->id() == id; });
  return it == containers_.end() ? nullptr : *it;
}

}  // namespace cleaks::container
