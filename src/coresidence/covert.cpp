#include "coresidence/covert.h"

#include <cmath>
#include <limits>

#include "util/strings.h"
#include "workload/profiles.h"

namespace cleaks::coresidence {

std::string to_string(CovertMedium medium) {
  switch (medium) {
    case CovertMedium::kPower:
      return "power(RAPL)";
    case CovertMedium::kThermal:
      return "thermal(coretemp)";
    case CovertMedium::kUtilization:
      return "utilization(/proc/stat)";
  }
  return "?";
}

double CovertResult::capacity_bps() const {
  const double p = std::min(0.5, bit_error_rate());
  double h2 = 0.0;
  if (p > 0.0 && p < 1.0) {
    h2 = -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
  }
  return raw_rate_bps() * (1.0 - h2);
}

CovertChannelBenchmark::CovertChannelBenchmark(container::Container& tx,
                                               container::Container& rx,
                                               ProbeEnv env,
                                               CovertConfig config)
    : tx_(&tx), rx_(&rx), env_(std::move(env)), config_(config) {}

double CovertChannelBenchmark::read_level() const {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  switch (config_.medium) {
    case CovertMedium::kPower: {
      const auto view =
          rx_->read_file("/sys/class/powercap/intel-rapl:0/energy_uj");
      return view.is_ok() ? parse_first_double(view.value()) : kNan;
    }
    case CovertMedium::kThermal: {
      double total = 0.0;
      for (int sensor = 2; sensor <= rx_->host().spec().num_cores + 1;
           ++sensor) {
        const auto view = rx_->read_file(strformat(
            "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp%d_input",
            sensor));
        if (!view.is_ok()) return kNan;
        total += parse_first_double(view.value());
      }
      return total;
    }
    case CovertMedium::kUtilization: {
      const auto view = rx_->read_file("/proc/stat");
      if (!view.is_ok()) return kNan;
      const auto lines = split_lines(view.value());
      if (lines.empty()) return kNan;
      const auto fields = extract_numbers(lines.front());
      if (fields.size() < 7) return kNan;
      return fields[0] + fields[1] + fields[2] + fields[5] + fields[6];
    }
  }
  return kNan;
}

CovertResult CovertChannelBenchmark::run(int bits, std::uint64_t seed) {
  CovertResult result;
  const auto virus = workload::power_virus();

  auto transmit_slot = [&](int bit) -> double {
    const double before = read_level();
    std::vector<kernel::HostPid> pids;
    if (bit == 1) {
      for (int hog = 0; hog < config_.hogs; ++hog) {
        pids.push_back(tx_->run("cc-tx", virus.behavior)->host_pid);
      }
    }
    env_.advance(config_.slot);
    const double after = read_level();
    for (auto pid : pids) tx_->kill(pid);
    if (config_.guard > 0) env_.advance(config_.guard);
    if (std::isnan(before) || std::isnan(after)) {
      return std::numeric_limits<double>::quiet_NaN();
    }
    return after - before;
  };

  // Training preamble: alternate known bits to learn the two delta levels.
  double one_level = 0.0;
  double zero_level = 0.0;
  constexpr int kPreamblePairs = 2;
  for (int pair = 0; pair < kPreamblePairs; ++pair) {
    const double d1 = transmit_slot(1);
    const double d0 = transmit_slot(0);
    if (std::isnan(d1) || std::isnan(d0)) {
      result.bits_sent = 0;
      result.bit_errors = 0;
      return result;  // medium unavailable: zero-capacity link
    }
    one_level += d1 / kPreamblePairs;
    zero_level += d0 / kPreamblePairs;
  }
  const double threshold = (one_level + zero_level) / 2.0;

  Rng rng(seed);
  for (int index = 0; index < bits; ++index) {
    const int bit = rng.bernoulli(0.5) ? 1 : 0;
    const double delta = transmit_slot(bit);
    const int decoded = delta > threshold ? 1 : 0;
    ++result.bits_sent;
    if (decoded != bit) ++result.bit_errors;
    result.seconds_used += to_seconds(config_.slot + config_.guard);
  }
  return result;
}

}  // namespace cleaks::coresidence
