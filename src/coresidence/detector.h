// Co-residence detectors (§III-C): decide whether two containers share a
// physical host using only what each container can read through its own
// pseudo-file view. One detector per channel family of Table II:
//
//   group 1 (static unique ids)  — BootIdDetector, IfpriomapDetector
//   group 2 (implanted signature)— TimerImplantDetector,
//                                  SchedDebugImplantDetector,
//                                  LocksImplantDetector
//   group 3 (dynamic unique ids) — UptimeDetector, EnergyCounterDetector
//   V-group (trace matching)     — MemTraceDetector (MemFree snapshots)
//   covert signalling (M)        — PowerSignalDetector (load pulses read
//                                  back through the RAPL channel)
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "container/container.h"
#include "util/sim_time.h"

namespace cleaks::coresidence {

enum class Verdict { kCoResident, kNotCoResident, kInconclusive };

std::string to_string(Verdict verdict);

/// Environment handle: detectors advance *global* simulated time through
/// this (all hosts in the experiment move in lock-step, as wall-clock time
/// does for real probes).
struct ProbeEnv {
  std::function<void(SimDuration)> advance;
};

class CoResidenceDetector {
 public:
  virtual ~CoResidenceDetector() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Probe cost in simulated time (for the cost comparison ablation).
  [[nodiscard]] virtual SimDuration probe_duration() const = 0;
  virtual Verdict verify(container::Container& a, container::Container& b,
                         const ProbeEnv& env) = 0;
};

/// Same /proc/sys/kernel/random/boot_id <=> same running kernel.
class BootIdDetector final : public CoResidenceDetector {
 public:
  [[nodiscard]] std::string name() const override { return "boot_id"; }
  [[nodiscard]] SimDuration probe_duration() const override { return 0; }
  Verdict verify(container::Container& a, container::Container& b,
                 const ProbeEnv& env) override;
};

/// net_prio.ifpriomap lists the host's interfaces (including per-container
/// veth names, random per host) — identical maps identify a host.
class IfpriomapDetector final : public CoResidenceDetector {
 public:
  [[nodiscard]] std::string name() const override { return "ifpriomap"; }
  [[nodiscard]] SimDuration probe_duration() const override { return 0; }
  Verdict verify(container::Container& a, container::Container& b,
                 const ProbeEnv& env) override;
};

/// Container A arms a timer in a task with a crafted name; container B
/// searches /proc/timer_list for it.
class TimerImplantDetector final : public CoResidenceDetector {
 public:
  [[nodiscard]] std::string name() const override { return "timer_list"; }
  [[nodiscard]] SimDuration probe_duration() const override {
    return 2 * kSecond;
  }
  Verdict verify(container::Container& a, container::Container& b,
                 const ProbeEnv& env) override;
};

/// Crafted task name searched in /proc/sched_debug.
class SchedDebugImplantDetector final : public CoResidenceDetector {
 public:
  [[nodiscard]] std::string name() const override { return "sched_debug"; }
  [[nodiscard]] SimDuration probe_duration() const override {
    return 2 * kSecond;
  }
  Verdict verify(container::Container& a, container::Container& b,
                 const ProbeEnv& env) override;
};

/// A toggles file locks in a known on/off pattern; B watches the host-wide
/// lock count in /proc/locks follow the pattern.
class LocksImplantDetector final : public CoResidenceDetector {
 public:
  [[nodiscard]] std::string name() const override { return "locks"; }
  [[nodiscard]] SimDuration probe_duration() const override {
    return 8 * kSecond;
  }
  Verdict verify(container::Container& a, container::Container& b,
                 const ProbeEnv& env) override;
};

/// Simultaneous /proc/uptime reads: same host <=> equal up/idle values
/// (different hosts differ by days; §IV-C also uses close boot times as a
/// rack-proximity heuristic).
class UptimeDetector final : public CoResidenceDetector {
 public:
  explicit UptimeDetector(double tolerance_s = 1.5)
      : tolerance_s_(tolerance_s) {}
  [[nodiscard]] std::string name() const override { return "uptime"; }
  [[nodiscard]] SimDuration probe_duration() const override { return 0; }
  Verdict verify(container::Container& a, container::Container& b,
                 const ProbeEnv& env) override;

 private:
  double tolerance_s_;
};

/// Simultaneous RAPL energy_uj reads: the accumulated counter is unique
/// per host.
class EnergyCounterDetector final : public CoResidenceDetector {
 public:
  [[nodiscard]] std::string name() const override { return "energy_uj"; }
  [[nodiscard]] SimDuration probe_duration() const override { return kSecond; }
  Verdict verify(container::Container& a, container::Container& b,
                 const ProbeEnv& env) override;
};

/// Snapshot-trace matching (the V metric): both containers record MemFree
/// from /proc/meminfo once per second and compare traces.
class MemTraceDetector final : public CoResidenceDetector {
 public:
  explicit MemTraceDetector(int samples = 60, double min_correlation = 0.98)
      : samples_(samples), min_correlation_(min_correlation) {}
  [[nodiscard]] std::string name() const override { return "meminfo-trace"; }
  [[nodiscard]] SimDuration probe_duration() const override {
    return static_cast<SimDuration>(samples_) * kSecond;
  }
  Verdict verify(container::Container& a, container::Container& b,
                 const ProbeEnv& env) override;

 private:
  int samples_;
  double min_correlation_;
};

/// Covert signalling over the coretemp (DTS) channel: A pulses a pinned
/// CPU hog; B watches per-core temperatures through
/// /sys/devices/platform/coretemp.* follow the pattern (the taskset
/// technique the paper's manipulation metric describes, and the thermal
/// covert channel of Bartolini/Masti et al. in related work).
class ThermalSignalDetector final : public CoResidenceDetector {
 public:
  explicit ThermalSignalDetector(int bits = 5) : bits_(bits) {}
  [[nodiscard]] std::string name() const override { return "coretemp"; }
  [[nodiscard]] SimDuration probe_duration() const override {
    return static_cast<SimDuration>(8 * bits_) * kSecond;
  }
  Verdict verify(container::Container& a, container::Container& b,
                 const ProbeEnv& env) override;

 private:
  int bits_;
};

/// Covert signalling: A pulses a CPU hog in a known bit pattern; B decodes
/// it from per-interval power deltas on the RAPL channel.
class PowerSignalDetector final : public CoResidenceDetector {
 public:
  explicit PowerSignalDetector(int bits = 8) : bits_(bits) {}
  [[nodiscard]] std::string name() const override { return "power-signal"; }
  [[nodiscard]] SimDuration probe_duration() const override {
    return static_cast<SimDuration>(2 * bits_) * kSecond;
  }
  Verdict verify(container::Container& a, container::Container& b,
                 const ProbeEnv& env) override;

 private:
  int bits_;
};

/// All detectors, strongest-first (Table II rank order).
std::vector<std::unique_ptr<CoResidenceDetector>> all_detectors();

}  // namespace cleaks::coresidence
