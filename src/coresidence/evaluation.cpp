#include "coresidence/evaluation.h"

namespace cleaks::coresidence {

AccuracyResult evaluate_detector(cloud::Datacenter& datacenter,
                                 CoResidenceDetector& detector,
                                 EvaluationOptions options) {
  AccuracyResult result;
  result.detector = detector.name();
  Rng rng(options.seed);

  ProbeEnv env;
  env.advance = [&](SimDuration dt) { datacenter.step(dt); };

  container::ContainerConfig config;
  config.num_cpus = std::max(1, datacenter.server(0).host().spec().num_cores / 8);
  config.memory_limit_bytes = 4ULL << 30;

  for (int trial = 0; trial < options.trials; ++trial) {
    const bool co_resident = trial % 2 == 0;
    const int server_a = static_cast<int>(
        rng.uniform_u64(0, datacenter.num_servers() - 1));
    int server_b = server_a;
    if (!co_resident) {
      while (server_b == server_a) {
        server_b = static_cast<int>(
            rng.uniform_u64(0, datacenter.num_servers() - 1));
      }
    }
    auto container_a = datacenter.server(server_a).runtime().create(config);
    auto container_b = datacenter.server(server_b).runtime().create(config);
    datacenter.step(kSecond);  // settle

    const SimTime before = datacenter.now();
    const Verdict verdict = detector.verify(*container_a, *container_b, env);
    result.sim_seconds_per_probe += to_seconds(datacenter.now() - before);

    ++result.trials;
    switch (verdict) {
      case Verdict::kCoResident:
        co_resident ? ++result.true_positive : ++result.false_positive;
        break;
      case Verdict::kNotCoResident:
        co_resident ? ++result.false_negative : ++result.true_negative;
        break;
      case Verdict::kInconclusive:
        ++result.inconclusive;
        break;
    }
    datacenter.server(server_a).runtime().destroy(container_a->id());
    datacenter.server(server_b).runtime().destroy(container_b->id());
  }
  if (result.trials > 0) {
    result.sim_seconds_per_probe /= result.trials;
  }
  return result;
}

std::vector<AccuracyResult> evaluate_all(cloud::Datacenter& datacenter,
                                         EvaluationOptions options) {
  std::vector<AccuracyResult> results;
  for (const auto& detector : all_detectors()) {
    EvaluationOptions per_detector = options;
    per_detector.seed = options.seed + fnv1a64(detector->name());
    results.push_back(
        evaluate_detector(datacenter, *detector, per_detector));
  }
  return results;
}

}  // namespace cleaks::coresidence
