// Accuracy evaluation for co-residence detectors: run many trials with
// known ground truth (containers placed deliberately on the same or on
// different servers, benign load running) and tally the confusion matrix.
// Backs the coresidence-accuracy ablation bench.
#pragma once

#include <string>
#include <vector>

#include "cloud/datacenter.h"
#include "coresidence/detector.h"

namespace cleaks::coresidence {

struct AccuracyResult {
  std::string detector;
  int trials = 0;
  int true_positive = 0;
  int false_positive = 0;
  int true_negative = 0;
  int false_negative = 0;
  int inconclusive = 0;
  double sim_seconds_per_probe = 0.0;

  [[nodiscard]] double accuracy() const {
    const int decided = true_positive + false_positive + true_negative +
                        false_negative;
    return decided == 0
               ? 0.0
               : static_cast<double>(true_positive + true_negative) / decided;
  }
};

struct EvaluationOptions {
  int trials = 20;           ///< half co-resident, half not
  std::uint64_t seed = 11;
};

/// Evaluate one detector against a (>= 2 server) datacenter. The
/// datacenter is advanced as probes require; containers are created and
/// destroyed per trial.
AccuracyResult evaluate_detector(cloud::Datacenter& datacenter,
                                 CoResidenceDetector& detector,
                                 EvaluationOptions options = {});

/// Evaluate all detectors (fresh trials each).
std::vector<AccuracyResult> evaluate_all(cloud::Datacenter& datacenter,
                                         EvaluationOptions options = {});

}  // namespace cleaks::coresidence
