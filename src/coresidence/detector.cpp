#include "coresidence/detector.h"

#include <cmath>
#include <optional>

#include "util/stats.h"
#include "util/strings.h"
#include "workload/profiles.h"

namespace cleaks::coresidence {
namespace {

constexpr const char* kRaplEnergyPath =
    "/sys/class/powercap/intel-rapl:0/energy_uj";

/// Read a path from both containers; returns false if either read failed
/// (masked channel, missing hardware) — detectors then answer inconclusive.
bool read_pair(container::Container& a, container::Container& b,
               const std::string& path, std::string& out_a,
               std::string& out_b) {
  const auto ra = a.read_file(path);
  const auto rb = b.read_file(path);
  if (!ra.is_ok() || !rb.is_ok()) return false;
  out_a = ra.value();
  out_b = rb.value();
  return true;
}

}  // namespace

std::string to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kCoResident:
      return "co-resident";
    case Verdict::kNotCoResident:
      return "not-co-resident";
    case Verdict::kInconclusive:
      return "inconclusive";
  }
  return "?";
}

Verdict BootIdDetector::verify(container::Container& a,
                               container::Container& b, const ProbeEnv&) {
  std::string id_a;
  std::string id_b;
  if (!read_pair(a, b, "/proc/sys/kernel/random/boot_id", id_a, id_b)) {
    return Verdict::kInconclusive;
  }
  return id_a == id_b ? Verdict::kCoResident : Verdict::kNotCoResident;
}

Verdict IfpriomapDetector::verify(container::Container& a,
                                  container::Container& b, const ProbeEnv&) {
  std::string map_a;
  std::string map_b;
  if (!read_pair(a, b, "/sys/fs/cgroup/net_prio/net_prio.ifpriomap", map_a,
                 map_b)) {
    return Verdict::kInconclusive;
  }
  return map_a == map_b ? Verdict::kCoResident : Verdict::kNotCoResident;
}

namespace {

Verdict implant_and_search(container::Container& a, container::Container& b,
                           const ProbeEnv& env, const std::string& path,
                           int named_timers) {
  const std::string signature =
      "probe" + a.host().fork_rng(a.id() + path).hex_string(10);
  kernel::TaskBehavior behavior;
  behavior.duty_cycle = 0.05;
  behavior.named_timers = named_timers;
  auto planted = a.run(signature, behavior);
  env.advance(kSecond);
  const auto view = b.read_file(path);
  Verdict verdict = Verdict::kInconclusive;
  if (view.is_ok()) {
    verdict = contains(view.value(), signature) ? Verdict::kCoResident
                                                : Verdict::kNotCoResident;
  }
  a.kill(planted->host_pid);
  env.advance(kSecond);
  return verdict;
}

}  // namespace

Verdict TimerImplantDetector::verify(container::Container& a,
                                     container::Container& b,
                                     const ProbeEnv& env) {
  return implant_and_search(a, b, env, "/proc/timer_list", /*named_timers=*/2);
}

Verdict SchedDebugImplantDetector::verify(container::Container& a,
                                          container::Container& b,
                                          const ProbeEnv& env) {
  return implant_and_search(a, b, env, "/proc/sched_debug", 0);
}

Verdict LocksImplantDetector::verify(container::Container& a,
                                     container::Container& b,
                                     const ProbeEnv& env) {
  // A acquires and releases a burst of file locks in each round; B counts
  // the host-wide lock lines before and after. Counting is robust to not
  // knowing A's host pids. Every round must show the step to conclude
  // co-residence (repetition filters out coincidental lock churn).
  constexpr int kRounds = 3;
  constexpr int kLocks = 5;
  auto count_locks = [&]() -> int {
    const auto view = b.read_file("/proc/locks");
    if (!view.is_ok()) return -1;
    return static_cast<int>(split_lines(view.value()).size());
  };
  int matches = 0;
  for (int round = 0; round < kRounds; ++round) {
    kernel::TaskBehavior behavior;
    behavior.duty_cycle = 0.01;
    behavior.file_locks = kLocks;
    auto holder = a.run("lockprobe", behavior);
    env.advance(kSecond);
    const int with_locks = count_locks();
    a.kill(holder->host_pid);
    env.advance(kSecond);
    const int without_locks = count_locks();
    if (with_locks < 0 || without_locks < 0) return Verdict::kInconclusive;
    if (with_locks - without_locks >= kLocks) ++matches;
  }
  return matches == kRounds ? Verdict::kCoResident : Verdict::kNotCoResident;
}

Verdict UptimeDetector::verify(container::Container& a,
                               container::Container& b, const ProbeEnv&) {
  std::string up_a;
  std::string up_b;
  if (!read_pair(a, b, "/proc/uptime", up_a, up_b)) {
    return Verdict::kInconclusive;
  }
  const auto nums_a = extract_numbers(up_a);
  const auto nums_b = extract_numbers(up_b);
  if (nums_a.size() < 2 || nums_b.size() < 2) return Verdict::kInconclusive;
  // Same host: both fields coincide (reads are simultaneous). Different
  // hosts: uptimes differ by hours-to-weeks. §IV-C: similar up time with
  // different idle time = different machines installed together.
  const bool same_up = std::fabs(nums_a[0] - nums_b[0]) <= tolerance_s_;
  const bool same_idle =
      std::fabs(nums_a[1] - nums_b[1]) <= tolerance_s_ * 32.0;
  return same_up && same_idle ? Verdict::kCoResident
                              : Verdict::kNotCoResident;
}

Verdict EnergyCounterDetector::verify(container::Container& a,
                                      container::Container& b,
                                      const ProbeEnv& env) {
  // Two simultaneous reads one second apart: on the same host both the
  // counter values and their deltas coincide.
  std::string e_a0;
  std::string e_b0;
  if (!read_pair(a, b, kRaplEnergyPath, e_a0, e_b0)) {
    return Verdict::kInconclusive;
  }
  env.advance(kSecond);
  std::string e_a1;
  std::string e_b1;
  if (!read_pair(a, b, kRaplEnergyPath, e_a1, e_b1)) {
    return Verdict::kInconclusive;
  }
  const double a0 = parse_first_double(e_a0);
  const double b0 = parse_first_double(e_b0);
  const double a1 = parse_first_double(e_a1);
  const double delta = a1 - a0;  // roughly one second of host energy
  if (delta <= 0.0) return Verdict::kInconclusive;
  return std::fabs(a0 - b0) < 0.5 * delta ? Verdict::kCoResident
                                          : Verdict::kNotCoResident;
}

Verdict MemTraceDetector::verify(container::Container& a,
                                 container::Container& b,
                                 const ProbeEnv& env) {
  std::vector<double> trace_a;
  std::vector<double> trace_b;
  for (int sample = 0; sample < samples_; ++sample) {
    std::string mem_a;
    std::string mem_b;
    if (!read_pair(a, b, "/proc/meminfo", mem_a, mem_b)) {
      return Verdict::kInconclusive;
    }
    // MemFree is the second number (after MemTotal).
    const auto nums_a = extract_numbers(mem_a);
    const auto nums_b = extract_numbers(mem_b);
    if (nums_a.size() < 2 || nums_b.size() < 2) return Verdict::kInconclusive;
    trace_a.push_back(nums_a[1]);
    trace_b.push_back(nums_b[1]);
    env.advance(kSecond);
  }
  const double correlation = pearson_correlation(trace_a, trace_b);
  // Constant traces carry no information.
  RunningStats stats_a;
  for (double v : trace_a) stats_a.add(v);
  if (stats_a.stddev() == 0.0) return Verdict::kInconclusive;
  return correlation >= min_correlation_ ? Verdict::kCoResident
                                         : Verdict::kNotCoResident;
}

Verdict ThermalSignalDetector::verify(container::Container& a,
                                      container::Container& b,
                                      const ProbeEnv& env) {
  // A transmits per 8-second slot by saturating several cores (heat) or
  // idling (cool); B decodes each bit from the *change* of the aggregate
  // die temperature over the slot — edge decoding is robust to residual
  // heat from previous slots and to slow background drift.
  auto aggregate_millic = [&]() -> std::optional<double> {
    double total = 0.0;
    for (int sensor = 2; sensor <= b.host().spec().num_cores + 1; ++sensor) {
      const auto view = b.read_file(strformat(
          "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp%d_input",
          sensor));
      if (!view.is_ok()) return std::nullopt;
      total += parse_first_double(view.value());
    }
    return total;
  };

  std::vector<int> pattern;
  Rng pattern_rng = a.host().fork_rng("thermal-signal");
  for (int bit = 0; bit < bits_; ++bit) {
    pattern.push_back(bit % 2 == 0 || pattern_rng.bernoulli(0.5) ? 1 : 0);
  }

  auto virus = workload::power_virus();
  int decoded_matches = 0;
  for (int bit : pattern) {
    const auto before = aggregate_millic();
    std::vector<kernel::HostPid> pids;
    if (bit == 1) {
      const std::size_t hogs = a.cpuset().empty()
                                   ? 4
                                   : std::max<std::size_t>(2, a.cpuset().size());
      for (std::size_t i = 0; i < hogs; ++i) {
        pids.push_back(a.run("heat", virus.behavior)->host_pid);
      }
    }
    env.advance(8 * kSecond);  // let the silicon heat or cool
    const auto after = aggregate_millic();
    for (auto pid : pids) a.kill(pid);
    env.advance(4 * kSecond);  // partial cool-down between slots
    if (!before.has_value() || !after.has_value()) {
      return Verdict::kInconclusive;
    }
    // 1-bits heat the die by tens of degree-cores; 0-bits cool it.
    const double delta = *after - *before;
    const int decoded = delta > 6000.0 ? 1 : 0;
    if (decoded == bit) ++decoded_matches;
  }
  return decoded_matches == bits_ ? Verdict::kCoResident
                                  : Verdict::kNotCoResident;
}

Verdict PowerSignalDetector::verify(container::Container& a,
                                    container::Container& b,
                                    const ProbeEnv& env) {
  // A transmits a fixed preamble bit pattern by toggling a CPU hog per
  // 2-second slot; B decodes one bit per slot from the host power level
  // read through RAPL and compares against the expected pattern.
  std::vector<int> pattern;
  Rng pattern_rng = a.host().fork_rng("power-signal");
  for (int bit = 0; bit < bits_; ++bit) {
    pattern.push_back(bit % 2 == 0 || pattern_rng.bernoulli(0.5) ? 1 : 0);
  }

  std::vector<double> levels;
  auto virus = workload::power_virus();
  for (int bit : pattern) {
    std::vector<kernel::HostPid> pids;
    if (bit == 1) {
      const std::size_t hogs = std::max<std::size_t>(2, a.cpuset().size());
      for (std::size_t i = 0; i < hogs; ++i) {
        pids.push_back(a.run("txbit", virus.behavior)->host_pid);
      }
    }
    const auto before = b.read_file(kRaplEnergyPath);
    env.advance(2 * kSecond);
    const auto after = b.read_file(kRaplEnergyPath);
    for (auto pid : pids) a.kill(pid);
    if (!before.is_ok() || !after.is_ok()) return Verdict::kInconclusive;
    levels.push_back(
        (parse_first_double(after.value()) - parse_first_double(before.value())) /
        2e6);  // microjoule delta over 2 s -> watts
  }
  // Threshold at the midpoint between the observed low and high clusters.
  const double lo = *std::min_element(levels.begin(), levels.end());
  const double hi = *std::max_element(levels.begin(), levels.end());
  if (hi - lo < 5.0) return Verdict::kNotCoResident;  // no signal energy
  const double threshold = (lo + hi) / 2.0;
  int decoded_matches = 0;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const int bit = levels[i] > threshold ? 1 : 0;
    if (bit == pattern[i]) ++decoded_matches;
  }
  return decoded_matches == bits_ ? Verdict::kCoResident
                                  : Verdict::kNotCoResident;
}

std::vector<std::unique_ptr<CoResidenceDetector>> all_detectors() {
  std::vector<std::unique_ptr<CoResidenceDetector>> detectors;
  detectors.push_back(std::make_unique<BootIdDetector>());
  detectors.push_back(std::make_unique<IfpriomapDetector>());
  detectors.push_back(std::make_unique<SchedDebugImplantDetector>());
  detectors.push_back(std::make_unique<TimerImplantDetector>());
  detectors.push_back(std::make_unique<LocksImplantDetector>());
  detectors.push_back(std::make_unique<UptimeDetector>());
  detectors.push_back(std::make_unique<EnergyCounterDetector>());
  detectors.push_back(std::make_unique<MemTraceDetector>());
  detectors.push_back(std::make_unique<PowerSignalDetector>());
  detectors.push_back(std::make_unique<ThermalSignalDetector>());
  return detectors;
}

}  // namespace cleaks::coresidence
