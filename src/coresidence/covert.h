// Covert channels over the leaked host-state files (§III-C: "Those entries
// could be exploited by advanced attackers as covert channels to transmit
// signals").
//
// A transmitter container encodes bits by toggling resource consumption per
// time slot; a receiver container decodes them from a leaked channel —
// power (RAPL energy_uj), temperature (coretemp) or the CPU utilization in
// /proc/stat. CovertChannelBenchmark sends random payloads and reports the
// measured bit-error rate and the resulting channel capacity
// C = rate * (1 - H2(ber)) in bits/s, the figure of merit used by the
// thermal covert-channel literature the paper cites.
#pragma once

#include <string>
#include <vector>

#include "container/container.h"
#include "coresidence/detector.h"
#include "util/rng.h"

namespace cleaks::coresidence {

enum class CovertMedium { kPower, kThermal, kUtilization };

std::string to_string(CovertMedium medium);

struct CovertConfig {
  CovertMedium medium = CovertMedium::kPower;
  /// Slot length per bit. Thermal needs seconds (die time constant);
  /// power and utilization work at 1-2 s.
  SimDuration slot = 2 * kSecond;
  /// Inter-slot guard time letting the medium relax toward baseline.
  SimDuration guard = 0;
  /// Hogs the transmitter runs for a 1-bit.
  int hogs = 4;
};

struct CovertResult {
  int bits_sent = 0;
  int bit_errors = 0;
  double seconds_used = 0.0;

  [[nodiscard]] double bit_error_rate() const {
    return bits_sent > 0 ? static_cast<double>(bit_errors) / bits_sent : 1.0;
  }
  [[nodiscard]] double raw_rate_bps() const {
    return seconds_used > 0 ? bits_sent / seconds_used : 0.0;
  }
  /// Shannon capacity of the binary symmetric channel this link realizes.
  [[nodiscard]] double capacity_bps() const;
};

class CovertChannelBenchmark {
 public:
  /// `tx` and `rx` are containers (same or different hosts — a cross-host
  /// pair measures the floor, which should be ~0 capacity).
  CovertChannelBenchmark(container::Container& tx, container::Container& rx,
                         ProbeEnv env, CovertConfig config = CovertConfig{});

  /// Transmit `bits` random bits and decode them; returns the tally.
  CovertResult run(int bits, std::uint64_t seed = 99);

 private:
  /// Read the receiver's current medium level; NaN when unavailable.
  [[nodiscard]] double read_level() const;

  container::Container* tx_;
  container::Container* rx_;
  ProbeEnv env_;
  CovertConfig config_;
};

}  // namespace cleaks::coresidence
