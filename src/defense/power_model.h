// Power modeling (§V-B2, Formula 2).
//
//   M_core    = F(CM/C, BM/C) · I + α
//   M_dram    = β · CM + γ
//   M_package = M_core + M_dram + λ
//
// F is fit by multiple linear regression: the model is linear in the
// parameters with features {I, I·(CM/C), I·(BM/C)}, so the slope of energy
// vs retired instructions varies with the miss mix — the Fig 6 observation
// that each workload lies on its own line. α, γ and λ are per-second idle
// components, entered as a `seconds` feature so the model scales with the
// measurement window.
#pragma once

#include <span>
#include <vector>

#include "util/regression.h"
#include "util/result.h"

namespace cleaks::defense {

/// Perf-event deltas observed over one measurement window.
struct PerfDelta {
  double instructions = 0.0;
  double cache_misses = 0.0;
  double branch_misses = 0.0;
  double cycles = 0.0;
  double seconds = 0.0;
};

/// One training observation: perf deltas plus the RAPL ground truth.
struct TrainingSample {
  PerfDelta perf;
  double core_j = 0.0;
  double dram_j = 0.0;
  double package_j = 0.0;
};

class PowerModel {
 public:
  /// Fit the core, DRAM and package models. Needs samples spanning several
  /// distinct workloads (miss mixes) and intensity levels.
  Status train(std::span<const TrainingSample> samples);

  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Modeled energy (J) for a window of perf activity.
  [[nodiscard]] double core_energy_j(const PerfDelta& delta) const;
  [[nodiscard]] double dram_energy_j(const PerfDelta& delta) const;
  [[nodiscard]] double package_energy_j(const PerfDelta& delta) const;

  [[nodiscard]] const LinearModel& core_model() const noexcept {
    return core_;
  }
  [[nodiscard]] const LinearModel& dram_model() const noexcept {
    return dram_;
  }
  /// λ: package residual power (W) not captured by core + DRAM.
  [[nodiscard]] double lambda_w() const noexcept { return lambda_w_; }

  /// Feature vector used by the core regression (exposed for the
  /// utilization-only ablation and tests).
  static std::vector<double> core_features(const PerfDelta& delta);

 private:
  LinearModel core_;
  LinearModel dram_;
  double lambda_w_ = 0.0;
  bool trained_ = false;
};

/// Ablation baseline (§V-B2 discussion): energy modeled from CPU time
/// alone, as pre-container-era VM power meters did. Fails across workloads
/// with different instruction mixes.
class UtilizationOnlyModel {
 public:
  Status train(std::span<const TrainingSample> samples);
  [[nodiscard]] double package_energy_j(const PerfDelta& delta) const;
  [[nodiscard]] bool trained() const noexcept { return trained_; }

 private:
  LinearModel model_;
  bool trained_ = false;
};

}  // namespace cleaks::defense
