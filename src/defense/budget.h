// PowerBudgetEnforcer: the policy application the paper sketches on top of
// the power-based namespace (§V-B): "with per-container power usage
// statistics at hand, we can dynamically throttle the computing power (or
// increase the usage fee) of containers that exceed their predefined power
// thresholds."
//
// A feedback controller over the namespace's per-container power readings:
// containers above their budget get their cgroup CPU bandwidth quota
// squeezed; compliant containers recover toward full quota.
#pragma once

#include <map>
#include <string>

#include "container/container.h"
#include "defense/power_namespace.h"

namespace cleaks::defense {

struct BudgetPolicy {
  double default_budget_w = 25.0;
  /// Quota multiplier applied per step while over budget.
  double throttle_step = 0.85;
  /// Quota recovery multiplier per step while under budget.
  double recovery_step = 1.10;
  double min_quota = 0.1;
};

class PowerBudgetEnforcer {
 public:
  /// The enforcer reads per-container power through `power_ns` (which must
  /// be enabled) and actuates cgroup cpu quotas on `runtime`'s containers.
  PowerBudgetEnforcer(container::ContainerRuntime& runtime,
                      const PowerNamespace& power_ns,
                      BudgetPolicy policy = BudgetPolicy{});

  /// Per-container budget override (W).
  void set_budget_w(const std::string& container_id, double budget_w);

  /// Run one control step: compare each container's modeled power over the
  /// last refresh interval against its budget and adjust quotas. Returns
  /// the number of containers currently throttled.
  int step();

  /// Current quota of a container (1.0 = unthrottled).
  [[nodiscard]] double quota(const std::string& container_id) const;
  [[nodiscard]] bool is_throttled(const std::string& container_id) const;

 private:
  container::ContainerRuntime* runtime_;
  const PowerNamespace* power_ns_;
  BudgetPolicy policy_;
  std::map<std::string, double> budgets_w_;
  std::map<std::string, double> quotas_;
};

}  // namespace cleaks::defense
