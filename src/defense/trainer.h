// Training-data collection for the power model (the Fig 6 / Fig 7
// experiment): run each training workload on the host at several intensity
// levels, sampling host-wide perf counters (via a root-cgroup perf_event
// set, as Perf does) against the RAPL energy counters once per second.
#pragma once

#include <vector>

#include "defense/power_model.h"
#include "faults/injector.h"
#include "kernel/host.h"
#include "workload/profiles.h"

namespace cleaks::defense {

struct TrainerOptions {
  /// Duty-cycle levels swept per workload.
  std::vector<double> duty_levels = {0.25, 0.5, 0.75, 1.0};
  /// Concurrent copies of the workload (cores exercised).
  int copies = 4;
  SimDuration sample_interval = kSecond;
  int samples_per_level = 12;
  /// Fault schedule consulted per sampling window (kPerfDropout rules).
  /// A window whose perf-event retention falls below 1.0 models
  /// multiplexing dropout (time_running < time_enabled): the sample is
  /// *skipped*, never scaled into the regression. Nullptr = no faults.
  const faults::FaultInjector* faults = nullptr;
};

/// Snapshot helper: host-wide perf totals (root cgroup + every container
/// cgroup) and RAPL lifetime energy.
struct HostCounters {
  PerfDelta perf;  ///< absolute totals in the delta struct's fields
  double core_j = 0.0;
  double dram_j = 0.0;
  double package_j = 0.0;
};

HostCounters read_host_counters(const kernel::Host& host);

/// Delta of two snapshots taken `seconds` apart.
TrainingSample delta_sample(const HostCounters& before,
                            const HostCounters& after, double seconds);

/// Run the sweep and return all samples. Enables root-cgroup perf events
/// for the duration. The host should otherwise be quiet.
std::vector<TrainingSample> collect_training_samples(
    kernel::Host& host, const std::vector<workload::Profile>& profiles,
    TrainerOptions options = TrainerOptions{});

/// Convenience: collect on a scratch host and train a model.
Result<PowerModel> train_default_model(std::uint64_t seed = 1234);

}  // namespace cleaks::defense
