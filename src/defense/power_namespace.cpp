#include "defense/power_namespace.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace cleaks::defense {
namespace {

/// Virtual counters wrap like the hardware ones.
constexpr double kRangeUj =
    static_cast<double>(hw::RaplDomain::kDefaultRangeUj);

double rapl_lifetime_j(const kernel::Host& host, hw::RaplDomainKind domain) {
  double total = 0.0;
  for (const auto& pkg : host.rapl()) {
    switch (domain) {
      case hw::RaplDomainKind::kCore:
        total += pkg.core().lifetime_energy_j();
        break;
      case hw::RaplDomainKind::kDram:
        total += pkg.dram().lifetime_energy_j();
        break;
      case hw::RaplDomainKind::kPackage:
        total += pkg.package().lifetime_energy_j();
        break;
    }
  }
  return total;
}

}  // namespace

PowerNamespace::PowerNamespace(container::ContainerRuntime& runtime,
                               PowerModel model)
    : runtime_(&runtime), model_(std::move(model)) {}

PowerNamespace::~PowerNamespace() {
  if (enabled_) disable();
}

void PowerNamespace::enable() {
  if (enabled_) return;
  auto& host = runtime_->host();
  const int cores = host.spec().num_cores;

  auto& root = *host.cgroups().root();
  if (!kernel::PerfEventSubsystem::has_events(root)) {
    host.perf().create_cgroup_events(root, cores);
    root_events_created_ = true;
  }
  for (const auto& instance : runtime_->containers()) {
    host.perf().create_cgroup_events(*instance->cgroup(), cores);
    states_[instance->id()] = ContainerState{};
  }
  runtime_->set_lifecycle_hook(
      [this](container::Container& instance, bool created) {
        auto& perf = runtime_->host().perf();
        if (created) {
          perf.create_cgroup_events(*instance.cgroup(),
                                    runtime_->host().spec().num_cores);
          states_[instance.id()] = ContainerState{};
        } else {
          perf.destroy_cgroup_events(*instance.cgroup());
          states_.erase(instance.id());
        }
      });
  runtime_->filesystem().set_rapl_provider(this);
  primed_ = false;
  enabled_ = true;
  // Establish the counter baseline now so the first tenant read after a
  // step already reports the energy accrued since enablement.
  refresh(host);
}

void PowerNamespace::disable() {
  if (!enabled_) return;
  runtime_->filesystem().set_rapl_provider(nullptr);
  runtime_->set_lifecycle_hook({});
  auto& host = runtime_->host();
  for (const auto& instance : runtime_->containers()) {
    host.perf().destroy_cgroup_events(*instance->cgroup());
  }
  if (root_events_created_) {
    host.perf().destroy_cgroup_events(*host.cgroups().root());
    root_events_created_ = false;
  }
  states_.clear();
  enabled_ = false;
}

PerfDelta PowerNamespace::to_delta(const kernel::PerfCounters& before,
                                   const kernel::PerfCounters& after,
                                   double seconds) {
  PerfDelta delta;
  delta.instructions =
      static_cast<double>(after.instructions - before.instructions);
  delta.cache_misses =
      static_cast<double>(after.cache_misses - before.cache_misses);
  delta.branch_misses =
      static_cast<double>(after.branch_misses - before.branch_misses);
  delta.cycles = static_cast<double>(after.cycles - before.cycles);
  delta.seconds = seconds;
  return delta;
}

void PowerNamespace::refresh(const kernel::Host& host) const {
  const SimTime now = host.now();
  if (primed_ && now <= last_refresh_) return;

  // Host-wide perf totals = root cgroup + every container cgroup.
  kernel::PerfCounters root_now =
      kernel::PerfEventSubsystem::read(*host.cgroups().root());
  kernel::PerfCounters host_now = root_now;
  std::map<std::string, kernel::PerfCounters> container_now;
  for (const auto& instance : runtime_->containers()) {
    const auto counters =
        kernel::PerfEventSubsystem::read(*instance->cgroup());
    container_now[instance->id()] = counters;
    host_now.instructions += counters.instructions;
    host_now.cache_misses += counters.cache_misses;
    host_now.branch_misses += counters.branch_misses;
    host_now.cycles += counters.cycles;
  }

  const double rapl_core_j = rapl_lifetime_j(host, hw::RaplDomainKind::kCore);
  const double rapl_dram_j = rapl_lifetime_j(host, hw::RaplDomainKind::kDram);
  const double rapl_package_j =
      rapl_lifetime_j(host, hw::RaplDomainKind::kPackage);

  if (!primed_) {
    last_root_perf_ = host_now;
    last_rapl_core_j_ = rapl_core_j;
    last_rapl_dram_j_ = rapl_dram_j;
    last_rapl_package_j_ = rapl_package_j;
    last_refresh_ = now;
    for (auto& [id, state] : states_) {
      auto it = container_now.find(id);
      if (it != container_now.end()) state.last_perf = it->second;
    }
    primed_ = true;
    return;
  }

  const double seconds = to_seconds(now - last_refresh_);
  last_interval_s_ = seconds;
  const PerfDelta host_delta = to_delta(last_root_perf_, host_now, seconds);

  // Stage 2 of the read path: model the host and each container.
  const double m_host_core = model_.core_energy_j(host_delta);
  const double m_host_dram = model_.dram_energy_j(host_delta);
  const double m_host_package = model_.package_energy_j(host_delta);

  const double e_core = rapl_core_j - last_rapl_core_j_;
  const double e_dram = rapl_dram_j - last_rapl_dram_j_;
  const double e_package = rapl_package_j - last_rapl_package_j_;

  // Live ξ (Formula 4): relative error of the modeled host package energy
  // against the hardware counter, over the refresh interval just closed.
  if (e_package > 0.0) {
    static obs::Gauge& xi_gauge = obs::Registry::global().gauge(
        "defense_power_model_xi",
        "power-model calibration error against hardware RAPL");
    xi_gauge.set(std::fabs(m_host_package - e_package) / e_package);
  }

  for (auto& [id, state] : states_) {
    auto it = container_now.find(id);
    if (it == container_now.end()) continue;
    const PerfDelta delta = to_delta(state.last_perf, it->second, seconds);
    state.last_perf = it->second;

    const double m_core = model_.core_energy_j(delta);
    const double m_dram = model_.dram_energy_j(delta);
    const double m_package = model_.package_energy_j(delta);

    // Formula 3: calibrate each modeled value against hardware truth.
    auto calibrate = [](double m_container, double m_host, double e_rapl,
                        double fallback) {
      if (m_host <= 0.0 || e_rapl <= 0.0) return fallback;
      return m_container / m_host * e_rapl;
    };
    state.core.last_delta_j = calibrate(m_core, m_host_core, e_core, m_core);
    state.dram.last_delta_j = calibrate(m_dram, m_host_dram, e_dram, m_dram);
    state.package.last_delta_j =
        calibrate(m_package, m_host_package, e_package, m_package);

    auto accumulate = [](DomainCounter& counter) {
      counter.virt_uj += counter.last_delta_j * 1e6;
      while (counter.virt_uj >= kRangeUj) counter.virt_uj -= kRangeUj;
    };
    accumulate(state.core);
    accumulate(state.dram);
    accumulate(state.package);
  }

  last_root_perf_ = host_now;
  last_rapl_core_j_ = rapl_core_j;
  last_rapl_dram_j_ = rapl_dram_j;
  last_rapl_package_j_ = rapl_package_j;
  last_refresh_ = now;
}

std::uint64_t PowerNamespace::energy_uj(const kernel::Host& host,
                                        const kernel::Task* viewer,
                                        int package,
                                        hw::RaplDomainKind domain) const {
  // Host context keeps hardware truth — the namespace only changes the
  // containerized view (transparency goal).
  const bool containerized = viewer != nullptr && viewer->is_containerized();
  if (!containerized) {
    const auto& packages = host.rapl();
    if (package < 0 ||
        static_cast<std::size_t>(package) >= packages.size()) {
      return 0;
    }
    const auto& pkg = packages[static_cast<std::size_t>(package)];
    switch (domain) {
      case hw::RaplDomainKind::kPackage:
        return pkg.package().energy_uj();
      case hw::RaplDomainKind::kCore:
        return pkg.core().energy_uj();
      case hw::RaplDomainKind::kDram:
        return pkg.dram().energy_uj();
    }
    return 0;
  }

  refresh(host);
  auto it = states_.find(viewer->container_id);
  if (it == states_.end()) return 0;
  const ContainerState& state = it->second;
  // The container-wide virtual counter is presented uniformly across the
  // host's package indices.
  const double divisor = std::max(1, host.spec().num_packages);
  double value_uj = 0.0;
  switch (domain) {
    case hw::RaplDomainKind::kPackage:
      value_uj = state.package.virt_uj;
      break;
    case hw::RaplDomainKind::kCore:
      value_uj = state.core.virt_uj;
      break;
    case hw::RaplDomainKind::kDram:
      value_uj = state.dram.virt_uj;
      break;
  }
  return static_cast<std::uint64_t>(value_uj / divisor);
}

double PowerNamespace::last_power_w(const std::string& container_id,
                                    hw::RaplDomainKind domain) const {
  auto it = states_.find(container_id);
  if (it == states_.end()) return 0.0;
  const auto& state = it->second;
  const DomainCounter* counter = &state.package;
  if (domain == hw::RaplDomainKind::kCore) counter = &state.core;
  if (domain == hw::RaplDomainKind::kDram) counter = &state.dram;
  return counter->last_delta_j / std::max(last_interval_s_, 1e-9);
}

void apply_stage1_masking(container::ContainerRuntime& runtime) {
  runtime.set_policy(fs::MaskingPolicy::paper_stage1());
}

}  // namespace cleaks::defense
