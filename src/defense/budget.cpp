#include "defense/budget.h"

#include <algorithm>

namespace cleaks::defense {

PowerBudgetEnforcer::PowerBudgetEnforcer(container::ContainerRuntime& runtime,
                                         const PowerNamespace& power_ns,
                                         BudgetPolicy policy)
    : runtime_(&runtime), power_ns_(&power_ns), policy_(policy) {}

void PowerBudgetEnforcer::set_budget_w(const std::string& container_id,
                                       double budget_w) {
  budgets_w_[container_id] = budget_w;
}

int PowerBudgetEnforcer::step() {
  int throttled = 0;
  for (const auto& instance : runtime_->containers()) {
    const std::string& id = instance->id();
    const auto budget_it = budgets_w_.find(id);
    const double budget = budget_it != budgets_w_.end()
                              ? budget_it->second
                              : policy_.default_budget_w;
    const double power =
        power_ns_->last_power_w(id, hw::RaplDomainKind::kPackage);

    double& quota = quotas_.try_emplace(id, 1.0).first->second;
    if (power > budget) {
      quota = std::max(policy_.min_quota, quota * policy_.throttle_step);
    } else {
      quota = std::min(1.0, quota * policy_.recovery_step);
    }
    instance->cgroup()->cpu_quota = quota < 1.0 ? quota : -1.0;
    if (quota < 1.0) ++throttled;
  }
  return throttled;
}

double PowerBudgetEnforcer::quota(const std::string& container_id) const {
  auto it = quotas_.find(container_id);
  return it == quotas_.end() ? 1.0 : it->second;
}

bool PowerBudgetEnforcer::is_throttled(const std::string& container_id) const {
  return quota(container_id) < 1.0;
}

}  // namespace cleaks::defense
