// The power-based namespace (§V-B): per-container power accounting behind
// the unchanged RAPL sysfs interface.
//
// Workflow per Fig 5 — on every read of energy_uj by a containerized task:
//   1. data collection  — read the container's perf_event-cgroup counters
//      (instructions, cache misses, branch misses, cycles; events created
//      at container start with owner TASK_TOMBSTONE);
//   2. power modeling   — convert the counter deltas to modeled energy
//      with the trained regression model (Formula 2);
//   3. on-the-fly calibration — scale by the host's modeled-vs-actual
//      ratio: E_container = M_container / M_host · E_RAPL (Formula 3).
// The container accumulates its own virtual µJ counter; the host context
// keeps reading hardware truth. Design goals (§V-B): accuracy,
// transparency (same interface), efficiency.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "container/container.h"
#include "defense/power_model.h"
#include "fs/view.h"

namespace cleaks::defense {

class PowerNamespace final : public fs::RaplViewProvider {
 public:
  /// `model` must already be trained. The namespace serves one runtime
  /// (one host).
  PowerNamespace(container::ContainerRuntime& runtime, PowerModel model);
  ~PowerNamespace() override;

  PowerNamespace(const PowerNamespace&) = delete;
  PowerNamespace& operator=(const PowerNamespace&) = delete;

  /// Install: per-container perf events (existing and future containers),
  /// host-wide root events, and the RAPL view hook.
  void enable();
  /// Restore the stock (leaking) behaviour.
  void disable();
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  // fs::RaplViewProvider:
  [[nodiscard]] std::uint64_t energy_uj(
      const kernel::Host& host, const kernel::Task* viewer, int package,
      hw::RaplDomainKind domain) const override;

  /// Modeled power (W) of one container over its last refresh interval —
  /// evaluation convenience (Figs 8/9), not part of the tenant interface.
  [[nodiscard]] double last_power_w(const std::string& container_id,
                                    hw::RaplDomainKind domain) const;

  [[nodiscard]] const PowerModel& model() const noexcept { return model_; }

 private:
  struct DomainCounter {
    double virt_uj = 0.0;      ///< virtual accumulated counter
    double last_delta_j = 0.0; ///< energy of the last refresh interval
  };
  struct ContainerState {
    kernel::PerfCounters last_perf;
    DomainCounter core;
    DomainCounter dram;
    DomainCounter package;
  };

  /// Bring all virtual counters up to host.now(): apportion the RAPL
  /// energy accrued since the last refresh across containers per Formula 3.
  void refresh(const kernel::Host& host) const;

  static PerfDelta to_delta(const kernel::PerfCounters& before,
                            const kernel::PerfCounters& after,
                            double seconds);

  container::ContainerRuntime* runtime_;
  PowerModel model_;
  bool enabled_ = false;
  bool root_events_created_ = false;

  // Read-path state is logically cache, hence mutable (the RaplViewProvider
  // read interface is const).
  mutable std::map<std::string, ContainerState> states_;
  mutable kernel::PerfCounters last_root_perf_;
  mutable double last_rapl_core_j_ = 0.0;
  mutable double last_rapl_dram_j_ = 0.0;
  mutable double last_rapl_package_j_ = 0.0;
  mutable SimTime last_refresh_ = 0;
  mutable double last_interval_s_ = 0.0;
  mutable bool primed_ = false;
};

/// Stage-1 defense helper: swap in the paper's deny-list masking policy.
void apply_stage1_masking(container::ContainerRuntime& runtime);

}  // namespace cleaks::defense
