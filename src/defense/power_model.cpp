#include "defense/power_model.h"

#include <algorithm>

namespace cleaks::defense {
namespace {

double safe_ratio(double numerator, double denominator) {
  return denominator > 0.0 ? numerator / denominator : 0.0;
}

}  // namespace

std::vector<double> PowerModel::core_features(const PerfDelta& delta) {
  const double cm_rate = safe_ratio(delta.cache_misses, delta.cycles);
  const double bm_rate = safe_ratio(delta.branch_misses, delta.cycles);
  return {delta.instructions, delta.instructions * cm_rate,
          delta.instructions * bm_rate, delta.seconds};
}

Status PowerModel::train(std::span<const TrainingSample> samples) {
  if (samples.size() < 8) {
    return Status{StatusCode::kInvalidArgument,
                  "PowerModel::train: need at least 8 samples"};
  }
  std::vector<std::vector<double>> core_features_rows;
  std::vector<double> core_targets;
  std::vector<std::vector<double>> dram_features_rows;
  std::vector<double> dram_targets;
  core_features_rows.reserve(samples.size());
  dram_features_rows.reserve(samples.size());
  for (const auto& sample : samples) {
    core_features_rows.push_back(core_features(sample.perf));
    core_targets.push_back(sample.core_j);
    dram_features_rows.push_back(
        {sample.perf.cache_misses, sample.perf.seconds});
    dram_targets.push_back(sample.dram_j);
  }
  auto core_fit = fit_ols(core_features_rows, core_targets);
  if (!core_fit.is_ok()) return core_fit.status();
  auto dram_fit = fit_ols(dram_features_rows, dram_targets);
  if (!dram_fit.is_ok()) return dram_fit.status();
  core_ = std::move(core_fit).value();
  dram_ = std::move(dram_fit).value();

  // λ: average residual package power beyond core + DRAM.
  double residual_j = 0.0;
  double seconds = 0.0;
  for (const auto& sample : samples) {
    residual_j += sample.package_j - sample.core_j - sample.dram_j;
    seconds += sample.perf.seconds;
  }
  lambda_w_ = seconds > 0.0 ? std::max(0.0, residual_j / seconds) : 0.0;
  trained_ = true;
  return Status::ok();
}

double PowerModel::core_energy_j(const PerfDelta& delta) const {
  return std::max(0.0, core_.predict(core_features(delta)));
}

double PowerModel::dram_energy_j(const PerfDelta& delta) const {
  const double features[] = {delta.cache_misses, delta.seconds};
  return std::max(0.0, dram_.predict(features));
}

double PowerModel::package_energy_j(const PerfDelta& delta) const {
  return core_energy_j(delta) + dram_energy_j(delta) +
         lambda_w_ * delta.seconds;
}

Status UtilizationOnlyModel::train(std::span<const TrainingSample> samples) {
  if (samples.size() < 4) {
    return Status{StatusCode::kInvalidArgument,
                  "UtilizationOnlyModel::train: need at least 4 samples"};
  }
  std::vector<std::vector<double>> rows;
  std::vector<double> targets;
  for (const auto& sample : samples) {
    rows.push_back({sample.perf.cycles, sample.perf.seconds});
    targets.push_back(sample.package_j);
  }
  auto fit = fit_ols(rows, targets);
  if (!fit.is_ok()) return fit.status();
  model_ = std::move(fit).value();
  trained_ = true;
  return Status::ok();
}

double UtilizationOnlyModel::package_energy_j(const PerfDelta& delta) const {
  const double features[] = {delta.cycles, delta.seconds};
  return std::max(0.0, model_.predict(features));
}

}  // namespace cleaks::defense
