#include "defense/trainer.h"

#include "obs/metrics.h"

namespace cleaks::defense {
namespace {

// Trainer telemetry: sampling schedules are sim-driven and the fault
// schedule is a pure function of sim time, so the counts are Scope::kSim.
struct TrainerMetrics {
  obs::Counter& samples = obs::Registry::global().counter(
      "defense_training_samples_total", "calibration samples collected");
  obs::Counter& samples_skipped = obs::Registry::global().counter(
      "defense_training_samples_skipped_total",
      "calibration windows dropped for perf multiplexing dropout");

  static TrainerMetrics& get() {
    static TrainerMetrics metrics;
    return metrics;
  }
};

}  // namespace

HostCounters read_host_counters(const kernel::Host& host) {
  HostCounters counters;
  for (const auto& cgroup : host.cgroups().all()) {
    const auto perf = kernel::PerfEventSubsystem::read(*cgroup);
    counters.perf.instructions += static_cast<double>(perf.instructions);
    counters.perf.cache_misses += static_cast<double>(perf.cache_misses);
    counters.perf.branch_misses += static_cast<double>(perf.branch_misses);
    counters.perf.cycles += static_cast<double>(perf.cycles);
  }
  for (const auto& pkg : host.rapl()) {
    counters.core_j += pkg.core().lifetime_energy_j();
    counters.dram_j += pkg.dram().lifetime_energy_j();
    counters.package_j += pkg.package().lifetime_energy_j();
  }
  return counters;
}

TrainingSample delta_sample(const HostCounters& before,
                            const HostCounters& after, double seconds) {
  TrainingSample sample;
  sample.perf.instructions =
      after.perf.instructions - before.perf.instructions;
  sample.perf.cache_misses =
      after.perf.cache_misses - before.perf.cache_misses;
  sample.perf.branch_misses =
      after.perf.branch_misses - before.perf.branch_misses;
  sample.perf.cycles = after.perf.cycles - before.perf.cycles;
  sample.perf.seconds = seconds;
  sample.core_j = after.core_j - before.core_j;
  sample.dram_j = after.dram_j - before.dram_j;
  sample.package_j = after.package_j - before.package_j;
  return sample;
}

std::vector<TrainingSample> collect_training_samples(
    kernel::Host& host, const std::vector<workload::Profile>& profiles,
    TrainerOptions options) {
  auto& root = *host.cgroups().root();
  const bool had_events = kernel::PerfEventSubsystem::has_events(root);
  if (!had_events) {
    host.perf().create_cgroup_events(root, host.spec().num_cores);
  }

  std::vector<TrainingSample> samples;
  for (const auto& profile : profiles) {
    for (double duty : options.duty_levels) {
      std::vector<kernel::HostPid> pids;
      for (int copy = 0; copy < options.copies; ++copy) {
        kernel::Host::SpawnOptions spawn;
        spawn.comm = profile.name + "-train";
        spawn.behavior = profile.behavior;
        spawn.behavior.duty_cycle = duty;
        pids.push_back(host.spawn_task(spawn)->host_pid);
      }
      host.advance(kSecond);  // warm up past the spawn transient
      auto before = read_host_counters(host);
      for (int sample_index = 0; sample_index < options.samples_per_level;
           ++sample_index) {
        host.advance(options.sample_interval);
        const auto after = read_host_counters(host);
        // Multiplexing dropout check: a real collector sees
        // time_running < time_enabled for this window. Scaling the counts
        // up would fold the dropout noise into the regression and bias
        // the fit, so the poisoned window is skipped outright — the delta
        // baseline still advances, keeping later windows contiguous.
        const double retention =
            options.faults != nullptr
                ? options.faults->perf_retention(host.now())
                : 1.0;
        if (retention < 1.0) {
          TrainerMetrics::get().samples_skipped.inc();
          before = after;
          continue;
        }
        TrainerMetrics::get().samples.inc();
        samples.push_back(delta_sample(before, after,
                                       to_seconds(options.sample_interval)));
        before = after;
      }
      for (auto pid : pids) host.kill_task(pid);
    }
  }
  if (!had_events) host.perf().destroy_cgroup_events(root);
  return samples;
}

Result<PowerModel> train_default_model(std::uint64_t seed) {
  kernel::Host host("trainer", hw::testbed_i7_6700(), seed);
  host.set_tick_duration(100 * kMillisecond);
  const auto samples =
      collect_training_samples(host, workload::training_set());
  PowerModel model;
  const Status status = model.train(samples);
  if (!status.is_ok()) return status;
  return model;
}

}  // namespace cleaks::defense
