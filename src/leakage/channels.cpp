#include "leakage/channels.h"

#include "util/strings.h"

namespace cleaks::leakage {

std::vector<ChannelInfo> table1_channels() {
  // {row, description, co-residence, DoS, info-leak, glob}
  return {
      {"/proc/locks", "Files locked by the kernel", true, false, true,
       "/proc/locks"},
      {"/proc/zoneinfo", "Physical RAM information", true, false, true,
       "/proc/zoneinfo"},
      {"/proc/modules", "Loaded kernel modules information", false, false,
       true, "/proc/modules"},
      {"/proc/timer_list", "Configured clocks and timers", true, false, true,
       "/proc/timer_list"},
      {"/proc/sched_debug", "Task scheduler behavior", true, false, true,
       "/proc/sched_debug"},
      {"/proc/softirqs", "Number of invoked softirq handler", true, true,
       true, "/proc/softirqs"},
      {"/proc/uptime", "Up and idle time", true, false, true, "/proc/uptime"},
      {"/proc/version", "Kernel, gcc, distribution version", false, false,
       true, "/proc/version"},
      {"/proc/stat", "Kernel activities", true, true, true, "/proc/stat"},
      {"/proc/meminfo", "Memory information", true, true, true,
       "/proc/meminfo"},
      {"/proc/loadavg", "CPU and IO utilization over time", true, false, true,
       "/proc/loadavg"},
      {"/proc/interrupts", "Number of interrupts per IRQ", true, false, true,
       "/proc/interrupts"},
      {"/proc/cpuinfo", "CPU information", true, false, true, "/proc/cpuinfo"},
      {"/proc/schedstat", "Schedule statistics", true, false, true,
       "/proc/schedstat"},
      {"/proc/sys/fs/*", "File system information", true, false, true,
       "/proc/sys/fs/*"},
      {"/proc/sys/kernel/random/*", "Random number generation info", true,
       false, true, "/proc/sys/kernel/random/*"},
      {"/proc/sys/kernel/sched_domain/*", "Schedule domain info", true, false,
       true, "/proc/sys/kernel/sched_domain/**"},
      {"/proc/fs/ext4/*", "Ext4 file system info", true, false, true,
       "/proc/fs/ext4/**"},
      {"/sys/fs/cgroup/net_prio/*", "Priorities assigned to traffic", false,
       false, true, "/sys/fs/cgroup/net_prio/**"},
      {"/sys/devices/*", "System device information", true, true, true,
       "/sys/devices/**"},
      {"/sys/class/*", "System device information", false, true, true,
       "/sys/class/**"},
  };
}

std::vector<std::string> channel_paths(const ChannelInfo& channel,
                                       const fs::PseudoFs& fs) {
  std::vector<std::string> matched;
  for (const auto& path : fs.list_paths()) {
    if (glob_match(channel.path_glob, path)) matched.push_back(path);
  }
  return matched;
}

std::vector<std::string> table2_channel_globs() {
  return {
      "/proc/sys/kernel/random/boot_id",
      "/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
      "/proc/sched_debug",
      "/proc/timer_list",
      "/proc/locks",
      "/proc/uptime",
      "/proc/stat",
      "/proc/schedstat",
      "/proc/softirqs",
      "/proc/interrupts",
      "/sys/devices/system/node/node0/numastat",
      "/sys/class/powercap/intel-rapl:0/energy_uj",
      "/sys/devices/system/cpu/cpu0/cpuidle/state4/usage",
      "/sys/devices/system/cpu/cpu0/cpuidle/state4/time",
      "/proc/sys/fs/dentry-state",
      "/proc/sys/fs/inode-nr",
      "/proc/sys/fs/file-nr",
      "/proc/zoneinfo",
      "/proc/meminfo",
      "/proc/fs/ext4/sda1/mb_groups",
      "/sys/devices/system/node/node0/vmstat",
      "/sys/devices/system/node/node0/meminfo",
      "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp2_input",
      "/proc/loadavg",
      "/proc/sys/kernel/random/entropy_avail",
      "/proc/sys/kernel/sched_domain/cpu0/domain0/max_newidle_lb_cost",
      "/proc/modules",
      "/proc/cpuinfo",
      "/proc/version",
  };
}

}  // namespace cleaks::leakage
