#include "leakage/detector.h"

#include <algorithm>
#include <cmath>

#include "util/strings.h"
#include "workload/profiles.h"

namespace cleaks::leakage {

std::string to_string(LeakClass cls) {
  switch (cls) {
    case LeakClass::kLeaking:
      return "LEAKING";
    case LeakClass::kPartial:
      return "PARTIAL";
    case LeakClass::kNamespaced:
      return "NAMESPACED";
    case LeakClass::kMasked:
      return "MASKED";
    case LeakClass::kAbsent:
      return "ABSENT";
  }
  return "?";
}

CrossValidator::CrossValidator(cloud::Server& server, ScanOptions options)
    : server_(&server), options_(options) {}

LeakClass CrossValidator::classify(const std::string& path,
                                   const container::Container& probe) {
  const auto container_view = probe.read_file(path);
  if (container_view.code() == StatusCode::kPermissionDenied) {
    return LeakClass::kMasked;
  }
  if (container_view.code() == StatusCode::kNotFound) {
    return LeakClass::kAbsent;
  }
  if (!container_view.is_ok()) return LeakClass::kAbsent;

  fs::ViewContext host_ctx;  // host context: no viewer, no policy
  const auto host_view = server_->fs().read(path, host_ctx);
  if (!host_view.is_ok()) return LeakClass::kAbsent;

  // Pair-wise differential analysis at a single instant: identical bytes
  // mean the handler ignored the viewer's namespaces.
  if (container_view.value() == host_view.value()) {
    return LeakClass::kLeaking;
  }

  // Active perturbation probe for the differing paths: alternate epochs of
  // background quiet and heavy host load. The baseline snapshot is taken
  // *before* the load starts, so both accumulator-type fields (which race
  // during the window) and level-type fields (which shift when the load
  // appears) register. Properly namespaced data ignores host load.
  std::vector<double> off_drift;
  std::vector<double> on_drift;
  for (int epoch = 0; epoch < options_.probe_epochs; ++epoch) {
    const bool perturb = epoch % 2 == 1;
    const auto baseline = probe.read_file(path);
    std::vector<kernel::HostPid> noise_pids;
    if (perturb) {
      auto virus = workload::power_virus();
      for (int i = 0; i < server_->host().spec().num_cores; ++i) {
        kernel::Host::SpawnOptions options;
        options.comm = "perturb-" + std::to_string(i);
        options.behavior = virus.behavior;
        options.behavior.io_rate_per_s = 500.0;
        options.behavior.file_locks = 1;
        options.behavior.named_timers = 1;
        noise_pids.push_back(server_->host().spawn_task(options)->host_pid);
      }
    }
    server_->step(options_.probe_window);
    const auto loaded = probe.read_file(path);
    for (auto pid : noise_pids) server_->host().kill_task(pid);
    server_->step(options_.probe_window);  // settle back to baseline

    if (!baseline.is_ok() || !loaded.is_ok()) continue;
    const auto nums_before = extract_numbers(baseline.value());
    const auto nums_after = extract_numbers(loaded.value());
    const std::size_t n = std::min(nums_before.size(), nums_after.size());
    auto& bucket = perturb ? on_drift : off_drift;
    bucket.resize(std::max(bucket.size(), n), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      bucket[i] += std::fabs(nums_after[i] - nums_before[i]);
    }
    if (nums_before.size() != nums_after.size()) {
      bucket.resize(std::max(bucket.size(), n + 1), 0.0);
      bucket[n] += 1.0;
    }
  }
  for (std::size_t i = 0; i < on_drift.size(); ++i) {
    const double off = i < off_drift.size() ? off_drift[i] : 0.0;
    if (on_drift[i] > options_.sensitivity * off + 1e-9 && on_drift[i] > 1.0) {
      return LeakClass::kPartial;
    }
  }
  return LeakClass::kNamespaced;
}

std::vector<FileFinding> CrossValidator::scan() {
  container::ContainerConfig config;
  const int cores = server_->host().spec().num_cores;
  config.num_cpus = std::max(1, cores / 4);
  config.memory_limit_bytes = 4ULL << 30;
  auto probe = server_->runtime().create(config);

  std::vector<FileFinding> findings;
  for (const auto& path : server_->fs().list_paths()) {
    findings.push_back({path, classify(path, *probe)});
  }
  server_->runtime().destroy(probe->id());
  return findings;
}

}  // namespace cleaks::leakage
