#include "leakage/detector.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "faults/injector.h"
#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "workload/profiles.h"

namespace cleaks::leakage {
namespace {

// Scan telemetry. Classification counters are incremented from inside
// parallel bodies (lane-sharded, integer merge) and by the verdict loop on
// the caller thread; either way the totals equal the finding counts, which
// PR 1 already pins as thread-count-independent.
struct ScanMetrics {
  obs::Counter& runs = obs::Registry::global().counter(
      "scan_runs_total", "full CrossValidator::scan passes");
  obs::Counter& paths = obs::Registry::global().counter(
      "scan_paths_total", "pseudo-fs paths examined");
  obs::Counter& differential_hits = obs::Registry::global().counter(
      "scan_differential_hits_total",
      "paths whose instant pair-wise differential matched host bytes");
  obs::Counter& undecided = obs::Registry::global().counter(
      "scan_undecided_total", "paths sent to the perturbation probe");
  obs::Counter& leaking = obs::Registry::global().counter(
      "scan_class_leaking_total", "findings classified LEAKING");
  obs::Counter& partial = obs::Registry::global().counter(
      "scan_class_partial_total", "findings classified PARTIAL");
  obs::Counter& namespaced = obs::Registry::global().counter(
      "scan_class_namespaced_total", "findings classified NAMESPACED");
  obs::Counter& masked = obs::Registry::global().counter(
      "scan_class_masked_total", "findings classified MASKED");
  obs::Counter& absent = obs::Registry::global().counter(
      "scan_class_absent_total", "findings classified ABSENT");
  obs::Counter& probe_epochs = obs::Registry::global().counter(
      "scan_probe_epochs_total", "shared perturbation epochs run");
  obs::Counter& reads_retried = obs::Registry::global().counter(
      "scan_reads_retried_total",
      "transient (EBUSY) reads retried within the sim-time budget");
  obs::Counter& paths_reused = obs::Registry::global().counter(
      "scan_paths_reused_total",
      "paths whose classification was reused from the incremental cache");
  obs::Counter& renders_avoided = obs::Registry::global().counter(
      "scan_renders_avoided_total",
      "context renders skipped outright by unchanged-world reuse");
  obs::Counter& channels_degraded = obs::Registry::global().counter(
      "scan_channels_degraded_total",
      "findings marked degraded (retry budget or epochs exhausted)");
  obs::Histogram& phase_ns = obs::Registry::global().histogram(
      "scan_phase_sim_ns",
      {kMillisecond, kSecond, 4 * kSecond, 16 * kSecond, kMinute,
       10 * kMinute},
      "simulated time consumed per scan phase");

  static ScanMetrics& get() {
    static ScanMetrics metrics;
    return metrics;
  }
};

/// Bump the class counter matching a (possibly reused) classification, so
/// the per-class totals always equal the finding counts — reuse included.
void count_class(ScanMetrics& metrics, LeakClass cls) {
  switch (cls) {
    case LeakClass::kLeaking:
      metrics.leaking.inc();
      break;
    case LeakClass::kPartial:
      metrics.partial.inc();
      break;
    case LeakClass::kNamespaced:
      metrics.namespaced.inc();
      break;
    case LeakClass::kMasked:
      metrics.masked.inc();
      break;
    case LeakClass::kAbsent:
      metrics.absent.inc();
      break;
  }
}

/// Accumulate per-field absolute drift between two snapshots of one file.
/// A field-count change is recorded as drift too (structure moved).
void accumulate_drift(std::string_view before, std::string_view after,
                      std::vector<double>& bucket) {
  const auto nums_before = extract_numbers(before);
  const auto nums_after = extract_numbers(after);
  const std::size_t n = std::min(nums_before.size(), nums_after.size());
  bucket.resize(std::max(bucket.size(), n), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    bucket[i] += std::fabs(nums_after[i] - nums_before[i]);
  }
  if (nums_before.size() != nums_after.size()) {
    bucket.resize(std::max(bucket.size(), n + 1), 0.0);
    bucket[n] += 1.0;
  }
}

/// Fields that moved markedly more under host load than at rest mean the
/// restricted view still tracks host state (the ◐ of Table I).
LeakClass drift_verdict(const std::vector<double>& off_drift,
                        const std::vector<double>& on_drift,
                        double sensitivity) {
  for (std::size_t i = 0; i < on_drift.size(); ++i) {
    const double off = i < off_drift.size() ? off_drift[i] : 0.0;
    if (on_drift[i] > sensitivity * off + 1e-9 && on_drift[i] > 1.0) {
      return LeakClass::kPartial;
    }
  }
  return LeakClass::kNamespaced;
}

/// Launch the distinctive perturbation load: one power-virus task per host
/// core, each also generating IO, a file lock, and a named timer so every
/// channel family (power, VFS, locks, timers) registers the epoch.
std::vector<kernel::HostPid> spawn_perturbation(cloud::Server& server) {
  auto virus = workload::power_virus();
  std::vector<kernel::HostPid> pids;
  const int cores = server.host().spec().num_cores;
  pids.reserve(static_cast<std::size_t>(cores));
  for (int i = 0; i < cores; ++i) {
    kernel::Host::SpawnOptions options;
    options.comm = "perturb-" + std::to_string(i);
    options.behavior = virus.behavior;
    options.behavior.io_rate_per_s = 500.0;
    options.behavior.file_locks = 1;
    options.behavior.named_timers = 1;
    pids.push_back(server.host().spawn_task(options)->host_pid);
  }
  return pids;
}

}  // namespace

std::string to_string(LeakClass cls) {
  switch (cls) {
    case LeakClass::kLeaking:
      return "LEAKING";
    case LeakClass::kPartial:
      return "PARTIAL";
    case LeakClass::kNamespaced:
      return "NAMESPACED";
    case LeakClass::kMasked:
      return "MASKED";
    case LeakClass::kAbsent:
      return "ABSENT";
  }
  return "?";
}

CrossValidator::CrossValidator(cloud::Server& server, ScanOptions options)
    : server_(&server), options_(std::move(options)) {}

CrossValidator::~CrossValidator() {
  if (probe_ != nullptr && probe_->alive()) {
    server_->runtime().destroy(probe_->id());
  }
}

container::Container& CrossValidator::ensure_probe() {
  if (probe_ != nullptr && probe_->alive()) return *probe_;
  container::ContainerConfig config;
  if (options_.probe_config.has_value()) {
    config = *options_.probe_config;
  } else {
    const int cores = server_->host().spec().num_cores;
    config.num_cpus = std::max(1, cores / 4);
    config.memory_limit_bytes = 4ULL << 30;
  }
  probe_ = server_->runtime().create(config);
  cache_valid_ = false;  // new incarnation = new viewer key: scan cold
  return *probe_;
}

LeakClass CrossValidator::classify(const std::string& path,
                                   const container::Container& probe) {
  auto& metrics = ScanMetrics::get();
  metrics.paths.inc();
  auto container_view = probe.read_file(path);
  // Transient EBUSY: retry on the bounded sim-time budget before giving
  // up. Exhausting the budget degrades to kAbsent (unknown, not wrong).
  for (int attempt = 0;
       container_view.code() == StatusCode::kUnavailable &&
       attempt < options_.max_read_retries;
       ++attempt) {
    metrics.reads_retried.inc();
    server_->step(options_.retry_backoff);
    container_view = probe.read_file(path);
  }
  if (container_view.code() == StatusCode::kUnavailable) {
    metrics.channels_degraded.inc();
    metrics.absent.inc();
    return LeakClass::kAbsent;
  }
  if (container_view.code() == StatusCode::kPermissionDenied) {
    metrics.masked.inc();
    return LeakClass::kMasked;
  }
  if (container_view.code() == StatusCode::kNotFound) {
    metrics.absent.inc();
    return LeakClass::kAbsent;
  }
  if (!container_view.is_ok()) {
    metrics.absent.inc();
    return LeakClass::kAbsent;
  }

  fs::ViewContext host_ctx;  // host context: no viewer, no policy
  const auto host_view = server_->fs().read(path, host_ctx);
  if (!host_view.is_ok()) {
    metrics.absent.inc();
    return LeakClass::kAbsent;
  }

  // Pair-wise differential analysis at a single instant: identical bytes
  // mean the handler ignored the viewer's namespaces.
  if (container_view.value() == host_view.value()) {
    metrics.differential_hits.inc();
    metrics.leaking.inc();
    return LeakClass::kLeaking;
  }

  // Active perturbation probe for the differing paths: alternate epochs of
  // background quiet and heavy host load. The baseline snapshot is taken
  // *before* the load starts, so both accumulator-type fields (which race
  // during the window) and level-type fields (which shift when the load
  // appears) register. Properly namespaced data ignores host load.
  metrics.undecided.inc();
  std::vector<double> off_drift;
  std::vector<double> on_drift;
  for (int epoch = 0; epoch < options_.probe_epochs; ++epoch) {
    const bool perturb = epoch % 2 == 1;
    metrics.probe_epochs.inc();
    const auto baseline = probe.read_file(path);
    std::vector<kernel::HostPid> noise_pids;
    if (perturb) noise_pids = spawn_perturbation(*server_);
    server_->step(options_.probe_window);
    const auto loaded = probe.read_file(path);
    for (auto pid : noise_pids) server_->host().kill_task(pid);
    server_->step(options_.probe_window);  // settle back to baseline

    if (!baseline.is_ok() || !loaded.is_ok()) continue;
    accumulate_drift(baseline.value(), loaded.value(),
                     perturb ? on_drift : off_drift);
  }
  const LeakClass verdict =
      drift_verdict(off_drift, on_drift, options_.sensitivity);
  (verdict == LeakClass::kPartial ? metrics.partial : metrics.namespaced)
      .inc();
  return verdict;
}

std::vector<FileFinding> CrossValidator::scan() {
  auto& metrics = ScanMetrics::get();
  metrics.runs.inc();
  const auto sim_now = [this] { return server_->host().now(); };

  container::Container& probe = ensure_probe();
  const fs::PseudoFs& pseudo = server_->fs();
  const kernel::Task& viewer = *probe.init_task();
  const std::uint64_t viewer_key = viewer.ns.pid->id;

  const std::vector<std::string> paths = pseudo.list_paths();
  const std::size_t n = paths.size();
  std::vector<FileFinding> findings(n);
  std::vector<std::uint8_t> undecided(n, 0);
  std::vector<std::uint8_t> transient(n, 0);
  std::vector<std::uint8_t> reused(n, 0);
  std::vector<std::uint8_t> faulted(n, 0);
  std::vector<std::uint8_t> eligible(n, 0);
  std::vector<std::uint8_t> digest_ok(n, 0);
  std::vector<std::uint64_t> container_digest(n, 0);
  std::vector<std::uint64_t> host_digest(n, 0);

  // Fault-covered paths run the full protocol every scan and are never
  // cached or reused: fault draws are keyed by sim-time window, and reuse
  // would skip the draws that decide whether *these* reads fault.
  const faults::FaultInjector* injector = pseudo.fault_injector();
  for (std::size_t i = 0; i < n; ++i) {
    faulted[i] = injector != nullptr && injector->covers(paths[i]) ? 1 : 0;
    eligible[i] = faulted[i] == 0 && pseudo.cache_eligible(paths[i]) ? 1 : 0;
  }

  const std::uint64_t start_generation = server_->host().state_generation();
  const std::uint64_t start_epoch = pseudo.render_epoch();
  const std::uint64_t start_fingerprint =
      fs::PseudoFs::viewer_state_fingerprint(viewer);
  // warm: the cache describes this probe over this exact path list.
  // unchanged: additionally, nothing any cache-eligible render depends on
  // has moved since the cache was stored — generation, render epoch and
  // viewer fingerprint all match, so both context renders of every
  // eligible path are byte-identical to the cached pass by construction.
  const bool warm = options_.incremental && cache_valid_ &&
                    cache_viewer_key_ == viewer_key && cache_paths_ == paths;
  const bool unchanged = warm && cache_generation_ == start_generation &&
                         cache_epoch_ == start_epoch &&
                         cache_fingerprint_ == start_fingerprint;

  ThreadPool pool(options_.num_threads);
  const fs::ViewContext host_ctx{};  // host context: no viewer, no policy

  // Unchanged-world fast path: reuse every cached eligible classification
  // outright — zero renders, zero reads, zero sim time for these paths.
  if (unchanged) {
    for (std::size_t i = 0; i < n; ++i) {
      if (eligible[i] == 0 || !cache_[i].valid) continue;
      findings[i].path = paths[i];
      findings[i].cls = cache_[i].cls;
      reused[i] = 1;
      metrics.paths.inc();
      metrics.paths_reused.inc();
      metrics.renders_avoided.inc(2);  // container + host render skipped
      count_class(metrics, cache_[i].cls);
    }
  }

  // Phase A: the instant pair-wise differential, fanned across workers.
  // All reads are pure (the simulation is quiescent here), each worker
  // reuses two lane-local scratch buffers for its whole range, and every
  // slot written belongs to exactly one worker — so the phase is race-free
  // and its results independent of the thread count. The class counters
  // below are incremented from inside the parallel body: lane-sharded
  // integer sums, so the merged totals equal the (deterministic) finding
  // counts. Both renders are FNV-digested as a side effect; on a warm scan
  // an undecided path whose digest pair matches the cached pair reuses the
  // cached Phase-B verdict instead of re-probing (hash-first reuse).
  const SimTime differential_start = sim_now();
  {
    obs::ScopedSpan span(obs::SpanTracer::global(), "scan.differential",
                         sim_now);
    pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
      std::string& container_buf = pool.scratch(0);
      std::string& host_buf = pool.scratch(1);
      for (std::size_t i = begin; i < end; ++i) {
        if (reused[i] != 0) continue;
        findings[i].path = paths[i];
        metrics.paths.inc();
        const StatusCode code = probe.read_file_into(paths[i], container_buf);
        if (code == StatusCode::kPermissionDenied) {
          findings[i].cls = LeakClass::kMasked;
          metrics.masked.inc();
          continue;
        }
        if (code == StatusCode::kUnavailable) {
          transient[i] = 1;  // EBUSY: retried below on the sim-time budget
          continue;
        }
        if (code != StatusCode::kOk) {
          findings[i].cls = LeakClass::kAbsent;
          metrics.absent.inc();
          continue;
        }
        if (pseudo.read_into(paths[i], host_ctx, host_buf) !=
            StatusCode::kOk) {
          findings[i].cls = LeakClass::kAbsent;
          metrics.absent.inc();
          continue;
        }
        container_digest[i] = fnv1a64(container_buf);
        host_digest[i] = fnv1a64(host_buf);
        digest_ok[i] = 1;
        if (container_buf == host_buf) {
          findings[i].cls = LeakClass::kLeaking;
          metrics.differential_hits.inc();
          metrics.leaking.inc();
        } else if (warm && faulted[i] == 0 && cache_[i].valid &&
                   cache_[i].has_digests &&
                   (cache_[i].cls == LeakClass::kPartial ||
                    cache_[i].cls == LeakClass::kNamespaced) &&
                   cache_[i].container_digest == container_digest[i] &&
                   (unchanged ||
                    cache_[i].host_digest == host_digest[i])) {
          // Hash-first reuse of the perturbation verdict. In a changed
          // world both digests must match (nothing about the pair moved);
          // in an unchanged world the container digest alone suffices —
          // that covers kUncacheable files like /proc/containerleaks,
          // whose host side (the live registry) churns without the world
          // moving while the container side is exactly what Phase B
          // measures.
          findings[i].cls = cache_[i].cls;
          reused[i] = 1;
          metrics.paths_reused.inc();
          count_class(metrics, cache_[i].cls);
        } else {
          undecided[i] = 1;  // needs the perturbation probe
          metrics.undecided.inc();
        }
      }
    });
  }
  // Phase A': bounded sim-time retry of the transient reads. Each round
  // steps the sim once on this thread (so the fault windows can close),
  // then re-runs the pair-wise differential for just the EBUSY slots in
  // parallel. A fault-free scan has no transient slots and takes zero
  // extra steps — the golden traces cannot move. Slots still EBUSY after
  // the budget degrade to kAbsent with the degraded flag set: unknown,
  // never misclassified.
  std::vector<std::size_t> retry;
  for (std::size_t i = 0; i < transient.size(); ++i) {
    if (transient[i] != 0) retry.push_back(i);
  }
  for (int round = 0; round < options_.max_read_retries && !retry.empty();
       ++round) {
    server_->step(options_.retry_backoff);
    std::vector<std::uint8_t> still_busy(retry.size(), 0);
    pool.parallel_for(retry.size(), [&](std::size_t begin, std::size_t end) {
      std::string& container_buf = pool.scratch(0);
      std::string& host_buf = pool.scratch(1);
      for (std::size_t s = begin; s < end; ++s) {
        const std::size_t i = retry[s];
        metrics.reads_retried.inc();
        const StatusCode code = probe.read_file_into(paths[i], container_buf);
        if (code == StatusCode::kUnavailable) {
          still_busy[s] = 1;
          continue;
        }
        if (code == StatusCode::kPermissionDenied) {
          findings[i].cls = LeakClass::kMasked;
          metrics.masked.inc();
          continue;
        }
        if (code != StatusCode::kOk ||
            pseudo.read_into(paths[i], host_ctx, host_buf) !=
                StatusCode::kOk) {
          findings[i].cls = LeakClass::kAbsent;
          metrics.absent.inc();
          continue;
        }
        if (container_buf == host_buf) {
          findings[i].cls = LeakClass::kLeaking;
          metrics.differential_hits.inc();
          metrics.leaking.inc();
        } else {
          undecided[i] = 1;
          metrics.undecided.inc();
        }
      }
    });
    std::vector<std::size_t> next_retry;
    for (std::size_t s = 0; s < retry.size(); ++s) {
      if (still_busy[s] != 0) next_retry.push_back(retry[s]);
    }
    retry.swap(next_retry);
  }
  for (const std::size_t i : retry) {
    findings[i].cls = LeakClass::kAbsent;
    findings[i].degraded = true;
    metrics.channels_degraded.inc();
    metrics.absent.inc();
  }
  metrics.phase_ns.observe(
      static_cast<std::uint64_t>(sim_now() - differential_start));

  // Phase B: shared perturbation epochs. The load/quiet cycle runs once for
  // the whole scan and every undecided path snapshots around it — the sim
  // steps on this thread; the snapshot reads before and after each step fan
  // out across workers. Per-path drift state is slot-owned, so results stay
  // independent of the thread count here too.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < undecided.size(); ++i) {
    if (undecided[i] != 0) pending.push_back(i);
  }
  if (!pending.empty()) {
    const SimTime perturbation_start = sim_now();
    obs::ScopedSpan phase_span(obs::SpanTracer::global(), "scan.perturbation",
                               sim_now);
    struct ProbeState {
      std::size_t index = 0;
      bool baseline_ok = false;
      std::string baseline;
      std::vector<double> off_drift;
      std::vector<double> on_drift;
      int accumulated = 0;  ///< epochs that produced a drift pair
      int lost = 0;         ///< epochs eaten by failed reads (faults)
    };
    std::vector<ProbeState> states(pending.size());
    for (std::size_t s = 0; s < pending.size(); ++s) {
      states[s].index = pending[s];
    }

    for (int epoch = 0; epoch < options_.probe_epochs; ++epoch) {
      const bool perturb = epoch % 2 == 1;
      metrics.probe_epochs.inc();
      obs::ScopedSpan epoch_span(
          obs::SpanTracer::global(),
          perturb ? "scan.epoch.load" : "scan.epoch.quiet", sim_now);
      pool.parallel_for(states.size(),
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t s = begin; s < end; ++s) {
                            auto& st = states[s];
                            st.baseline_ok =
                                probe.read_file_into(
                                    findings[st.index].path, st.baseline) ==
                                StatusCode::kOk;
                          }
                        });
      std::vector<kernel::HostPid> noise_pids;
      if (perturb) noise_pids = spawn_perturbation(*server_);
      server_->step(options_.probe_window);
      pool.parallel_for(states.size(),
                        [&](std::size_t begin, std::size_t end) {
                          std::string& loaded = pool.scratch(0);
                          for (std::size_t s = begin; s < end; ++s) {
                            auto& st = states[s];
                            if (!st.baseline_ok) {
                              ++st.lost;
                              continue;
                            }
                            if (probe.read_file_into(findings[st.index].path,
                                                     loaded) !=
                                StatusCode::kOk) {
                              ++st.lost;
                              continue;
                            }
                            accumulate_drift(
                                st.baseline, loaded,
                                perturb ? st.on_drift : st.off_drift);
                            ++st.accumulated;
                          }
                        });
      for (auto pid : noise_pids) server_->host().kill_task(pid);
      server_->step(options_.probe_window);  // settle back to baseline
    }
    for (const auto& st : states) {
      // Degraded-not-wrong: a path that lost *every* epoch to faults has
      // no drift evidence at all — fall back to kAbsent (unknown) rather
      // than let the empty accumulators read as kNamespaced. A path that
      // lost only some epochs keeps its verdict but carries the flag.
      if (st.accumulated == 0) {
        findings[st.index].cls = LeakClass::kAbsent;
        findings[st.index].degraded = true;
        metrics.channels_degraded.inc();
        metrics.absent.inc();
        continue;
      }
      const LeakClass verdict =
          drift_verdict(st.off_drift, st.on_drift, options_.sensitivity);
      findings[st.index].cls = verdict;
      if (st.lost > 0) {
        findings[st.index].degraded = true;
        metrics.channels_degraded.inc();
      }
      (verdict == LeakClass::kPartial ? metrics.partial : metrics.namespaced)
          .inc();
    }
    metrics.phase_ns.observe(
        static_cast<std::uint64_t>(sim_now() - perturbation_start));
  }

  // Epilogue: store the cache for the next scan. If the sim moved under
  // this scan (retry rounds or Phase B stepped it), the Phase-A digests
  // describe a dead generation — re-render every storeable path at the
  // settled world so the next warm scan has a matchable key. A scan that
  // never stepped keeps its Phase-A digests (or, in the unchanged fast
  // path, carries the still-current cached entries forward).
  if (options_.incremental) {
    const std::uint64_t end_generation = server_->host().state_generation();
    const bool stepped = end_generation != start_generation;
    if (stepped) {
      pool.parallel_for(n, [&](std::size_t begin, std::size_t end) {
        std::string& container_buf = pool.scratch(0);
        std::string& host_buf = pool.scratch(1);
        for (std::size_t i = begin; i < end; ++i) {
          digest_ok[i] = 0;
          if (faulted[i] != 0 || findings[i].degraded) continue;
          if (probe.read_file_into(paths[i], container_buf) !=
              StatusCode::kOk) {
            continue;
          }
          if (pseudo.read_into(paths[i], host_ctx, host_buf) !=
              StatusCode::kOk) {
            continue;
          }
          container_digest[i] = fnv1a64(container_buf);
          host_digest[i] = fnv1a64(host_buf);
          digest_ok[i] = 1;
        }
      });
    }
    std::vector<PathCache> next(n);
    for (std::size_t i = 0; i < n; ++i) {
      PathCache& entry = next[i];
      entry.cls = findings[i].cls;
      // Fault-covered and degraded verdicts are never reusable.
      if (faulted[i] != 0 || findings[i].degraded) continue;
      if (digest_ok[i] != 0) {
        entry.container_digest = container_digest[i];
        entry.host_digest = host_digest[i];
        entry.has_digests = true;
        entry.valid = true;
      } else if (!stepped && reused[i] != 0 && warm && cache_[i].valid) {
        entry = cache_[i];  // unchanged world, zero reads: still current
      } else if (findings[i].cls == LeakClass::kMasked) {
        entry.valid = true;  // no bytes to digest; the epoch key covers it
      }
    }
    cache_ = std::move(next);
    cache_paths_ = paths;
    cache_generation_ = end_generation;
    cache_epoch_ = pseudo.render_epoch();
    cache_fingerprint_ = fs::PseudoFs::viewer_state_fingerprint(viewer);
    cache_viewer_key_ = viewer_key;
    cache_valid_ = true;
  } else {
    cache_valid_ = false;
  }
  // Findings are in fixed path order and this runs on the scan's caller
  // thread, so emission order (and hence the merged stream) is a pure
  // function of the scan outcome, never of the pool's chunking.
  if (auto& bus = obs::EventBus::global(); bus.enabled()) {
    const SimTime scan_end = sim_now();
    for (std::size_t i = 0; i < n; ++i) {
      bus.emit(obs::EventKind::kScanFinding, scan_end,
               static_cast<std::uint32_t>(fnv1a64(paths[i])),
               static_cast<std::uint64_t>(findings[i].cls),
               findings[i].degraded ? 1 : 0);
    }
  }
  return findings;
}

}  // namespace cleaks::leakage
