#include "leakage/detector.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "workload/profiles.h"

namespace cleaks::leakage {
namespace {

// Scan telemetry. Classification counters are incremented from inside
// parallel bodies (lane-sharded, integer merge) and by the verdict loop on
// the caller thread; either way the totals equal the finding counts, which
// PR 1 already pins as thread-count-independent.
struct ScanMetrics {
  obs::Counter& runs = obs::Registry::global().counter(
      "scan_runs_total", "full CrossValidator::scan passes");
  obs::Counter& paths = obs::Registry::global().counter(
      "scan_paths_total", "pseudo-fs paths examined");
  obs::Counter& differential_hits = obs::Registry::global().counter(
      "scan_differential_hits_total",
      "paths whose instant pair-wise differential matched host bytes");
  obs::Counter& undecided = obs::Registry::global().counter(
      "scan_undecided_total", "paths sent to the perturbation probe");
  obs::Counter& leaking = obs::Registry::global().counter(
      "scan_class_leaking_total", "findings classified LEAKING");
  obs::Counter& partial = obs::Registry::global().counter(
      "scan_class_partial_total", "findings classified PARTIAL");
  obs::Counter& namespaced = obs::Registry::global().counter(
      "scan_class_namespaced_total", "findings classified NAMESPACED");
  obs::Counter& masked = obs::Registry::global().counter(
      "scan_class_masked_total", "findings classified MASKED");
  obs::Counter& absent = obs::Registry::global().counter(
      "scan_class_absent_total", "findings classified ABSENT");
  obs::Counter& probe_epochs = obs::Registry::global().counter(
      "scan_probe_epochs_total", "shared perturbation epochs run");
  obs::Counter& reads_retried = obs::Registry::global().counter(
      "scan_reads_retried_total",
      "transient (EBUSY) reads retried within the sim-time budget");
  obs::Counter& channels_degraded = obs::Registry::global().counter(
      "scan_channels_degraded_total",
      "findings marked degraded (retry budget or epochs exhausted)");
  obs::Histogram& phase_ns = obs::Registry::global().histogram(
      "scan_phase_sim_ns",
      {kMillisecond, kSecond, 4 * kSecond, 16 * kSecond, kMinute,
       10 * kMinute},
      "simulated time consumed per scan phase");

  static ScanMetrics& get() {
    static ScanMetrics metrics;
    return metrics;
  }
};

/// Accumulate per-field absolute drift between two snapshots of one file.
/// A field-count change is recorded as drift too (structure moved).
void accumulate_drift(std::string_view before, std::string_view after,
                      std::vector<double>& bucket) {
  const auto nums_before = extract_numbers(before);
  const auto nums_after = extract_numbers(after);
  const std::size_t n = std::min(nums_before.size(), nums_after.size());
  bucket.resize(std::max(bucket.size(), n), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    bucket[i] += std::fabs(nums_after[i] - nums_before[i]);
  }
  if (nums_before.size() != nums_after.size()) {
    bucket.resize(std::max(bucket.size(), n + 1), 0.0);
    bucket[n] += 1.0;
  }
}

/// Fields that moved markedly more under host load than at rest mean the
/// restricted view still tracks host state (the ◐ of Table I).
LeakClass drift_verdict(const std::vector<double>& off_drift,
                        const std::vector<double>& on_drift,
                        double sensitivity) {
  for (std::size_t i = 0; i < on_drift.size(); ++i) {
    const double off = i < off_drift.size() ? off_drift[i] : 0.0;
    if (on_drift[i] > sensitivity * off + 1e-9 && on_drift[i] > 1.0) {
      return LeakClass::kPartial;
    }
  }
  return LeakClass::kNamespaced;
}

/// Launch the distinctive perturbation load: one power-virus task per host
/// core, each also generating IO, a file lock, and a named timer so every
/// channel family (power, VFS, locks, timers) registers the epoch.
std::vector<kernel::HostPid> spawn_perturbation(cloud::Server& server) {
  auto virus = workload::power_virus();
  std::vector<kernel::HostPid> pids;
  const int cores = server.host().spec().num_cores;
  pids.reserve(static_cast<std::size_t>(cores));
  for (int i = 0; i < cores; ++i) {
    kernel::Host::SpawnOptions options;
    options.comm = "perturb-" + std::to_string(i);
    options.behavior = virus.behavior;
    options.behavior.io_rate_per_s = 500.0;
    options.behavior.file_locks = 1;
    options.behavior.named_timers = 1;
    pids.push_back(server.host().spawn_task(options)->host_pid);
  }
  return pids;
}

}  // namespace

std::string to_string(LeakClass cls) {
  switch (cls) {
    case LeakClass::kLeaking:
      return "LEAKING";
    case LeakClass::kPartial:
      return "PARTIAL";
    case LeakClass::kNamespaced:
      return "NAMESPACED";
    case LeakClass::kMasked:
      return "MASKED";
    case LeakClass::kAbsent:
      return "ABSENT";
  }
  return "?";
}

CrossValidator::CrossValidator(cloud::Server& server, ScanOptions options)
    : server_(&server), options_(options) {}

LeakClass CrossValidator::classify(const std::string& path,
                                   const container::Container& probe) {
  auto& metrics = ScanMetrics::get();
  metrics.paths.inc();
  auto container_view = probe.read_file(path);
  // Transient EBUSY: retry on the bounded sim-time budget before giving
  // up. Exhausting the budget degrades to kAbsent (unknown, not wrong).
  for (int attempt = 0;
       container_view.code() == StatusCode::kUnavailable &&
       attempt < options_.max_read_retries;
       ++attempt) {
    metrics.reads_retried.inc();
    server_->step(options_.retry_backoff);
    container_view = probe.read_file(path);
  }
  if (container_view.code() == StatusCode::kUnavailable) {
    metrics.channels_degraded.inc();
    metrics.absent.inc();
    return LeakClass::kAbsent;
  }
  if (container_view.code() == StatusCode::kPermissionDenied) {
    metrics.masked.inc();
    return LeakClass::kMasked;
  }
  if (container_view.code() == StatusCode::kNotFound) {
    metrics.absent.inc();
    return LeakClass::kAbsent;
  }
  if (!container_view.is_ok()) {
    metrics.absent.inc();
    return LeakClass::kAbsent;
  }

  fs::ViewContext host_ctx;  // host context: no viewer, no policy
  const auto host_view = server_->fs().read(path, host_ctx);
  if (!host_view.is_ok()) {
    metrics.absent.inc();
    return LeakClass::kAbsent;
  }

  // Pair-wise differential analysis at a single instant: identical bytes
  // mean the handler ignored the viewer's namespaces.
  if (container_view.value() == host_view.value()) {
    metrics.differential_hits.inc();
    metrics.leaking.inc();
    return LeakClass::kLeaking;
  }

  // Active perturbation probe for the differing paths: alternate epochs of
  // background quiet and heavy host load. The baseline snapshot is taken
  // *before* the load starts, so both accumulator-type fields (which race
  // during the window) and level-type fields (which shift when the load
  // appears) register. Properly namespaced data ignores host load.
  metrics.undecided.inc();
  std::vector<double> off_drift;
  std::vector<double> on_drift;
  for (int epoch = 0; epoch < options_.probe_epochs; ++epoch) {
    const bool perturb = epoch % 2 == 1;
    metrics.probe_epochs.inc();
    const auto baseline = probe.read_file(path);
    std::vector<kernel::HostPid> noise_pids;
    if (perturb) noise_pids = spawn_perturbation(*server_);
    server_->step(options_.probe_window);
    const auto loaded = probe.read_file(path);
    for (auto pid : noise_pids) server_->host().kill_task(pid);
    server_->step(options_.probe_window);  // settle back to baseline

    if (!baseline.is_ok() || !loaded.is_ok()) continue;
    accumulate_drift(baseline.value(), loaded.value(),
                     perturb ? on_drift : off_drift);
  }
  const LeakClass verdict =
      drift_verdict(off_drift, on_drift, options_.sensitivity);
  (verdict == LeakClass::kPartial ? metrics.partial : metrics.namespaced)
      .inc();
  return verdict;
}

std::vector<FileFinding> CrossValidator::scan() {
  auto& metrics = ScanMetrics::get();
  metrics.runs.inc();
  const auto sim_now = [this] { return server_->host().now(); };

  container::ContainerConfig config;
  const int cores = server_->host().spec().num_cores;
  config.num_cpus = std::max(1, cores / 4);
  config.memory_limit_bytes = 4ULL << 30;
  auto probe = server_->runtime().create(config);

  const std::vector<std::string> paths = server_->fs().list_paths();
  std::vector<FileFinding> findings(paths.size());
  std::vector<std::uint8_t> undecided(paths.size(), 0);
  std::vector<std::uint8_t> transient(paths.size(), 0);

  ThreadPool pool(options_.num_threads);
  const fs::ViewContext host_ctx{};  // host context: no viewer, no policy

  // Phase A: the instant pair-wise differential, fanned across workers.
  // All reads are pure (the simulation is quiescent here), each worker
  // reuses two render buffers for its whole range, and every slot written
  // belongs to exactly one worker — so the phase is race-free and its
  // results independent of the thread count. The class counters below are
  // incremented from inside the parallel body: lane-sharded integer sums,
  // so the merged totals equal the (deterministic) finding counts.
  const SimTime differential_start = sim_now();
  {
    obs::ScopedSpan span(obs::SpanTracer::global(), "scan.differential",
                         sim_now);
    pool.parallel_for(paths.size(), [&](std::size_t begin, std::size_t end) {
      std::string container_buf;
      std::string host_buf;
      for (std::size_t i = begin; i < end; ++i) {
        findings[i].path = paths[i];
        metrics.paths.inc();
        const StatusCode code = probe->read_file_into(paths[i], container_buf);
        if (code == StatusCode::kPermissionDenied) {
          findings[i].cls = LeakClass::kMasked;
          metrics.masked.inc();
          continue;
        }
        if (code == StatusCode::kUnavailable) {
          transient[i] = 1;  // EBUSY: retried below on the sim-time budget
          continue;
        }
        if (code != StatusCode::kOk) {
          findings[i].cls = LeakClass::kAbsent;
          metrics.absent.inc();
          continue;
        }
        if (server_->fs().read_into(paths[i], host_ctx, host_buf) !=
            StatusCode::kOk) {
          findings[i].cls = LeakClass::kAbsent;
          metrics.absent.inc();
          continue;
        }
        if (container_buf == host_buf) {
          findings[i].cls = LeakClass::kLeaking;
          metrics.differential_hits.inc();
          metrics.leaking.inc();
        } else {
          undecided[i] = 1;  // needs the perturbation probe
          metrics.undecided.inc();
        }
      }
    });
  }
  // Phase A': bounded sim-time retry of the transient reads. Each round
  // steps the sim once on this thread (so the fault windows can close),
  // then re-runs the pair-wise differential for just the EBUSY slots in
  // parallel. A fault-free scan has no transient slots and takes zero
  // extra steps — the golden traces cannot move. Slots still EBUSY after
  // the budget degrade to kAbsent with the degraded flag set: unknown,
  // never misclassified.
  std::vector<std::size_t> retry;
  for (std::size_t i = 0; i < transient.size(); ++i) {
    if (transient[i] != 0) retry.push_back(i);
  }
  for (int round = 0; round < options_.max_read_retries && !retry.empty();
       ++round) {
    server_->step(options_.retry_backoff);
    std::vector<std::uint8_t> still_busy(retry.size(), 0);
    pool.parallel_for(retry.size(), [&](std::size_t begin, std::size_t end) {
      std::string container_buf;
      std::string host_buf;
      for (std::size_t s = begin; s < end; ++s) {
        const std::size_t i = retry[s];
        metrics.reads_retried.inc();
        const StatusCode code = probe->read_file_into(paths[i], container_buf);
        if (code == StatusCode::kUnavailable) {
          still_busy[s] = 1;
          continue;
        }
        if (code == StatusCode::kPermissionDenied) {
          findings[i].cls = LeakClass::kMasked;
          metrics.masked.inc();
          continue;
        }
        if (code != StatusCode::kOk ||
            server_->fs().read_into(paths[i], host_ctx, host_buf) !=
                StatusCode::kOk) {
          findings[i].cls = LeakClass::kAbsent;
          metrics.absent.inc();
          continue;
        }
        if (container_buf == host_buf) {
          findings[i].cls = LeakClass::kLeaking;
          metrics.differential_hits.inc();
          metrics.leaking.inc();
        } else {
          undecided[i] = 1;
          metrics.undecided.inc();
        }
      }
    });
    std::vector<std::size_t> next_retry;
    for (std::size_t s = 0; s < retry.size(); ++s) {
      if (still_busy[s] != 0) next_retry.push_back(retry[s]);
    }
    retry.swap(next_retry);
  }
  for (const std::size_t i : retry) {
    findings[i].cls = LeakClass::kAbsent;
    findings[i].degraded = true;
    metrics.channels_degraded.inc();
    metrics.absent.inc();
  }
  metrics.phase_ns.observe(
      static_cast<std::uint64_t>(sim_now() - differential_start));

  // Phase B: shared perturbation epochs. The load/quiet cycle runs once for
  // the whole scan and every undecided path snapshots around it — the sim
  // steps on this thread; the snapshot reads before and after each step fan
  // out across workers. Per-path drift state is slot-owned, so results stay
  // independent of the thread count here too.
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < undecided.size(); ++i) {
    if (undecided[i] != 0) pending.push_back(i);
  }
  if (!pending.empty()) {
    const SimTime perturbation_start = sim_now();
    obs::ScopedSpan phase_span(obs::SpanTracer::global(), "scan.perturbation",
                               sim_now);
    struct ProbeState {
      std::size_t index = 0;
      bool baseline_ok = false;
      std::string baseline;
      std::vector<double> off_drift;
      std::vector<double> on_drift;
      int accumulated = 0;  ///< epochs that produced a drift pair
      int lost = 0;         ///< epochs eaten by failed reads (faults)
    };
    std::vector<ProbeState> states(pending.size());
    for (std::size_t s = 0; s < pending.size(); ++s) {
      states[s].index = pending[s];
    }

    for (int epoch = 0; epoch < options_.probe_epochs; ++epoch) {
      const bool perturb = epoch % 2 == 1;
      metrics.probe_epochs.inc();
      obs::ScopedSpan epoch_span(
          obs::SpanTracer::global(),
          perturb ? "scan.epoch.load" : "scan.epoch.quiet", sim_now);
      pool.parallel_for(states.size(),
                        [&](std::size_t begin, std::size_t end) {
                          for (std::size_t s = begin; s < end; ++s) {
                            auto& st = states[s];
                            st.baseline_ok =
                                probe->read_file_into(
                                    findings[st.index].path, st.baseline) ==
                                StatusCode::kOk;
                          }
                        });
      std::vector<kernel::HostPid> noise_pids;
      if (perturb) noise_pids = spawn_perturbation(*server_);
      server_->step(options_.probe_window);
      pool.parallel_for(states.size(),
                        [&](std::size_t begin, std::size_t end) {
                          std::string loaded;
                          for (std::size_t s = begin; s < end; ++s) {
                            auto& st = states[s];
                            if (!st.baseline_ok) {
                              ++st.lost;
                              continue;
                            }
                            if (probe->read_file_into(findings[st.index].path,
                                                      loaded) !=
                                StatusCode::kOk) {
                              ++st.lost;
                              continue;
                            }
                            accumulate_drift(
                                st.baseline, loaded,
                                perturb ? st.on_drift : st.off_drift);
                            ++st.accumulated;
                          }
                        });
      for (auto pid : noise_pids) server_->host().kill_task(pid);
      server_->step(options_.probe_window);  // settle back to baseline
    }
    for (const auto& st : states) {
      // Degraded-not-wrong: a path that lost *every* epoch to faults has
      // no drift evidence at all — fall back to kAbsent (unknown) rather
      // than let the empty accumulators read as kNamespaced. A path that
      // lost only some epochs keeps its verdict but carries the flag.
      if (st.accumulated == 0) {
        findings[st.index].cls = LeakClass::kAbsent;
        findings[st.index].degraded = true;
        metrics.channels_degraded.inc();
        metrics.absent.inc();
        continue;
      }
      const LeakClass verdict =
          drift_verdict(st.off_drift, st.on_drift, options_.sensitivity);
      findings[st.index].cls = verdict;
      if (st.lost > 0) {
        findings[st.index].degraded = true;
        metrics.channels_degraded.inc();
      }
      (verdict == LeakClass::kPartial ? metrics.partial : metrics.namespaced)
          .inc();
    }
    metrics.phase_ns.observe(
        static_cast<std::uint64_t>(sim_now() - perturbation_start));
  }

  server_->runtime().destroy(probe->id());
  return findings;
}

}  // namespace cleaks::leakage
