// CloudInspector: the "cloud inspection" half of Fig 1 — runs the
// cross-validation tool against each cloud service profile and assembles
// the Table I availability matrix (● leaking / ◐ partial / ○ unavailable).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cloud/profiles.h"
#include "leakage/channels.h"
#include "leakage/detector.h"

namespace cleaks::leakage {

struct ChannelAvailability {
  ChannelInfo channel;
  /// Per-cloud classification, keyed by profile name, aggregated over the
  /// row's paths: any leaking path => kLeaking; else any partial =>
  /// kPartial; else masked/absent.
  std::map<std::string, LeakClass> per_cloud;
};

class CloudInspector {
 public:
  /// Inspect one freshly provisioned server of each given profile.
  explicit CloudInspector(std::vector<cloud::CloudServiceProfile> profiles,
                          std::uint64_t seed = 7);

  /// Run the scans and build the matrix.
  std::vector<ChannelAvailability> inspect();

  /// Symbol for a classification, as Table I prints it.
  static std::string symbol(LeakClass cls);

 private:
  std::vector<cloud::CloudServiceProfile> profiles_;
  std::uint64_t seed_;
};

}  // namespace cleaks::leakage
