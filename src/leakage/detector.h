// CrossValidator: the information-leakage detection tool of Fig 1.
//
// Protocol, exactly as §III-A describes it:
//   1. create an unprivileged probe container on the target server;
//   2. recursively enumerate every pseudo file under procfs and sysfs;
//   3. read each path in the container context and in the host context at
//      the same instant and diff the contents (pair-wise differential
//      analysis): identical bytes mean both contexts reached the same
//      kernel data — the path leaks host state;
//   4. for paths whose contents differ, run an *active perturbation probe*:
//      drive distinctive load on the host and test whether the container
//      view moves with it — separating properly namespaced files from
//      partially restricted ones (the CC5-style ◐ of Table I).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cloud/server.h"

namespace cleaks::leakage {

enum class LeakClass {
  kLeaking,     ///< container reads the host's kernel data verbatim (●)
  kPartial,     ///< restricted view that still tracks host state (◐)
  kNamespaced,  ///< container gets its own private view (isolated)
  kMasked,      ///< read denied by provider policy (○)
  kAbsent,      ///< path does not exist (e.g. no RAPL hardware) (○)
};

std::string to_string(LeakClass cls);

struct FileFinding {
  std::string path;
  LeakClass cls = LeakClass::kAbsent;
  /// True when transient read failures survived the bounded retry budget
  /// (or ate perturbation epochs): the class is a conservative fallback,
  /// not a measurement. Degraded-not-wrong: a consumer must treat the
  /// channel as unknown rather than trust the fallback class.
  bool degraded = false;
};

struct ScanOptions {
  /// Simulated time between paired snapshots in the perturbation probe.
  SimDuration probe_window = 2 * kSecond;
  /// Perturbation epochs per undecided path (half off, half on).
  int probe_epochs = 4;
  /// Relative change threshold separating "moves with host load" from
  /// background drift.
  double sensitivity = 3.0;
  /// Execution lanes for scan()'s read phases (0 = ThreadPool default via
  /// CLEAKS_THREADS / hardware concurrency, 1 = serial). Reads are pure and
  /// statically chunked, so the findings are identical for every value.
  int num_threads = 0;
  /// Bounded sim-time retry for transient (EBUSY) reads: up to
  /// `max_read_retries` rounds, stepping the server `retry_backoff` apart.
  /// The budget is sim-time-bounded by construction — a scan can stall at
  /// most max_read_retries * retry_backoff of simulated time, and a
  /// fault-free scan takes zero extra steps.
  int max_read_retries = 3;
  SimDuration retry_backoff = 300 * kMillisecond;
  /// Reuse classifications across repeated scan() calls on the same
  /// validator (the hash-first incremental pipeline). The first scan on a
  /// validator is always a full cold pass; a repeat scan re-renders only
  /// what moved since the stored (generation, epoch, fingerprint) key and
  /// reuses prior classifications for the rest — paths covered by a fault
  /// rule always run the full protocol. False forces every scan cold.
  bool incremental = true;
  /// Probe container configuration for scan(); nullopt = the historical
  /// default (a quarter of the host cores, 4 GiB).
  std::optional<container::ContainerConfig> probe_config;
};

class CrossValidator {
 public:
  /// The validator drives `server` (creates a probe container, advances
  /// simulated time, spawns perturbation tasks).
  explicit CrossValidator(cloud::Server& server,
                          ScanOptions options = ScanOptions{});

  /// Destroys the retained probe container (if the server still has it).
  ~CrossValidator();

  CrossValidator(const CrossValidator&) = delete;
  CrossValidator& operator=(const CrossValidator&) = delete;

  /// Run the full protocol over every registered pseudo file. Two phases:
  ///   A. the instant pair-wise differential over all paths — pure reads,
  ///      fanned across worker threads (one render buffer per worker);
  ///   B. the active perturbation probe for the still-undecided paths.
  ///      Perturbation epochs are *shared*: the load/quiet cycle runs once
  ///      and every undecided path snapshots around it (parallel reads, sim
  ///      stepping on the calling thread), instead of re-running the cycle
  ///      per path as classify() does.
  /// The probe container is created on the first scan and retained until
  /// the validator is destroyed (per-scan create/destroy would bump the
  /// host generation, defeating generation-keyed reuse). With
  /// ScanOptions::incremental, repeat scans are hash-first: a scan whose
  /// (generation, render epoch, viewer fingerprint) key is unchanged
  /// reuses cached classifications with *zero* re-renders for
  /// cache-eligible paths and zero sim steps; a scan whose key moved
  /// re-renders everything but skips Phase B for undecided paths whose
  /// FNV digests (both contexts) match the cached pair. Fault-covered and
  /// degraded paths never reuse. Findings come back in list_paths() order
  /// and are identical for every num_threads value, warm or cold.
  std::vector<FileFinding> scan();

  /// Classify a single path (probe container must exist: scan() manages
  /// its own; this entry point is for tests and examples).
  LeakClass classify(const std::string& path,
                     const container::Container& probe);

 private:
  /// One cached per-path verdict with the digests that justify reuse.
  struct PathCache {
    std::uint64_t container_digest = 0;
    std::uint64_t host_digest = 0;
    LeakClass cls = LeakClass::kAbsent;
    bool has_digests = false;  ///< digests captured at the stored key
    bool valid = false;        ///< entry may be reused at all
  };

  /// Create the probe lazily; a fresh incarnation invalidates the cache
  /// (its viewer key is new, so nothing cached could apply).
  container::Container& ensure_probe();

  cloud::Server* server_;
  ScanOptions options_;

  // Incremental-scan state: retained probe + per-path cache, tagged with
  // the (generation, epoch, fingerprint, viewer key) it was captured at.
  std::shared_ptr<container::Container> probe_;
  std::vector<std::string> cache_paths_;
  std::vector<PathCache> cache_;
  std::uint64_t cache_generation_ = 0;
  std::uint64_t cache_epoch_ = 0;
  std::uint64_t cache_fingerprint_ = 0;
  std::uint64_t cache_viewer_key_ = 0;
  bool cache_valid_ = false;
};

}  // namespace cleaks::leakage
