#include "leakage/uvm.h"

#include <algorithm>
#include <cmath>

#include "leakage/channels.h"

#include "util/stats.h"
#include "util/strings.h"
#include "workload/profiles.h"

namespace cleaks::leakage {

UvmAnalyzer::UvmAnalyzer(cloud::Server& server_a, cloud::Server& server_b,
                         UvmOptions options)
    : server_a_(&server_a), server_b_(&server_b), options_(options) {
  container::ContainerConfig config;
  config.num_cpus = std::max(1, server_a.host().spec().num_cores / 4);
  config.memory_limit_bytes = 4ULL << 30;
  probe_a_ = server_a_->runtime().create(config);
  probe_a2_ = server_a_->runtime().create(config);
  probe_b_ = server_b_->runtime().create(config);
}

void UvmAnalyzer::advance_both(SimDuration dt) {
  server_a_->step(dt);
  server_b_->step(dt);
}

std::string UvmAnalyzer::first_match(const std::string& glob) const {
  for (const auto& path : server_a_->fs().list_paths()) {
    if (glob_match(glob, path)) return path;
  }
  return {};
}

bool UvmAnalyzer::test_implant(const std::string& path) {
  // Plant a distinctive artifact from the sibling container: a uniquely
  // named task holding a timer and a file lock. If the observer container
  // can find the signature in its own view of the channel, co-residence is
  // verifiable by implantation (§III-C group 2).
  const std::string signature =
      "sig" + server_a_->host().fork_rng("implant").hex_string(10);
  kernel::TaskBehavior behavior;
  behavior.duty_cycle = 0.05;
  behavior.named_timers = 2;
  behavior.file_locks = 2;
  auto planted = probe_a2_->run(signature, behavior);
  advance_both(kSecond);
  const auto view = probe_a_->read_file(path);
  bool found = false;
  if (view.is_ok()) {
    // Direct artifacts: the comm itself, or the planted task's host pid
    // (locks lists pids, not comms).
    found = contains(view.value(), signature) ||
            (path == "/proc/locks" &&
             contains(view.value(),
                      strformat(" %d ", planted->host_pid)));
  }
  probe_a2_->kill(planted->host_pid);
  advance_both(kSecond);
  return found;
}

bool UvmAnalyzer::test_indirect_manipulation(const std::string& path) {
  // Epochs alternating quiet / heavy sibling load; the channel is
  // indirectly manipulable when the observer's view moves with the load.
  // The baseline snapshot precedes the load so both accumulator rates and
  // level shifts register.
  std::vector<double> off_sum;
  std::vector<double> on_sum;
  for (int epoch = 0; epoch < 4; ++epoch) {
    const bool loaded = epoch % 2 == 1;
    const auto before = probe_a_->read_file(path);
    std::vector<kernel::HostPid> pids;
    if (loaded) {
      auto virus = workload::power_virus();
      virus.behavior.io_rate_per_s = 800.0;
      for (std::size_t i = 0; i < probe_a2_->cpuset().size() + 2; ++i) {
        pids.push_back(
            probe_a2_->run("hog-" + std::to_string(i), virus.behavior)
                ->host_pid);
      }
    }
    advance_both(2 * kSecond);
    const auto after = probe_a_->read_file(path);
    for (auto pid : pids) probe_a2_->kill(pid);
    advance_both(2 * kSecond);  // settle back before the next epoch
    if (before.is_ok() && after.is_ok()) {
      const auto nb = extract_numbers(before.value());
      const auto na = extract_numbers(after.value());
      const std::size_t n = std::min(nb.size(), na.size());
      auto& bucket = loaded ? on_sum : off_sum;
      bucket.resize(std::max(bucket.size(), n), 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        bucket[i] += std::fabs(na[i] - nb[i]);
      }
    }
  }
  for (std::size_t i = 0; i < on_sum.size(); ++i) {
    const double off = i < off_sum.size() ? off_sum[i] : 0.0;
    if (std::fabs(on_sum[i] - off) > std::max(0.25 * off, 2.0)) return true;
  }
  return false;
}

UvmMetrics UvmAnalyzer::analyze(const std::string& channel_glob) {
  UvmMetrics metrics;
  metrics.channel = channel_glob;
  metrics.path = first_match(channel_glob);
  if (metrics.path.empty()) return metrics;
  const std::string& path = metrics.path;

  // --- snapshots for uniqueness and variation (two windows) ---
  const auto a_t0 = probe_a_->read_file(path);
  const auto b_t0 = probe_b_->read_file(path);
  advance_both(options_.variation_window);
  const auto a_t1 = probe_a_->read_file(path);
  advance_both(options_.variation_window);
  const auto a_t2 = probe_a_->read_file(path);
  const auto b_t2 = probe_b_->read_file(path);
  if (!a_t0.is_ok() || !a_t1.is_ok() || !a_t2.is_ok()) return metrics;

  metrics.variation =
      a_t0.value() != a_t1.value() || a_t1.value() != a_t2.value();

  const bool cross_host_differs =
      b_t0.is_ok() && a_t0.value() != b_t0.value();

  if (!metrics.variation && cross_host_differs) {
    // Group 1: static unique identifier.
    metrics.unique = true;
    metrics.unique_kind = UniqueKind::kStaticId;
  } else if (test_implant(path)) {
    // Group 2: implantable signature.
    metrics.unique = true;
    metrics.unique_kind = UniqueKind::kImplant;
    metrics.manipulation = Manipulation::kDirect;
  } else if (metrics.variation && cross_host_differs && b_t0.is_ok() &&
             b_t2.is_ok()) {
    // Group 3: dynamic unique identifier — an accumulator field that grows
    // strictly in both observation windows, whose cross-host distance
    // dwarfs its same-host drift, and whose cross-host distance is stable
    // across the windows (true lifetime accumulators keep their offset;
    // fluctuating levels do not).
    const auto va0 = extract_numbers(a_t0.value());
    const auto va1 = extract_numbers(a_t1.value());
    const auto va2 = extract_numbers(a_t2.value());
    const auto vb0 = extract_numbers(b_t0.value());
    const auto vb2 = extract_numbers(b_t2.value());
    const std::size_t n =
        std::min({va0.size(), va1.size(), va2.size(), vb0.size(), vb2.size()});
    const double window_sec = to_seconds(options_.variation_window);
    for (std::size_t i = 0; i < n; ++i) {
      const bool monotone = va1[i] > va0[i] && va2[i] > va1[i];
      if (!monotone) continue;
      const double temporal = va2[i] - va0[i];
      const double cross0 = std::fabs(vb0[i] - va0[i]);
      const double cross2 = std::fabs(vb2[i] - va2[i]);
      const bool offset_stable =
          std::fabs(cross2 - cross0) < 0.3 * cross0 + 1.0;
      if (cross0 > options_.uniqueness_ratio * temporal / 2.0 &&
          cross0 > 10.0 && offset_stable) {
        metrics.unique = true;
        metrics.unique_kind = UniqueKind::kDynamicId;
        metrics.growth_per_sec =
            std::max(metrics.growth_per_sec, temporal / (2.0 * window_sec));
      }
    }
  }

  // --- manipulation (if not already proven direct) ---
  if (metrics.manipulation == Manipulation::kNone &&
      test_indirect_manipulation(path)) {
    metrics.manipulation = Manipulation::kIndirect;
  }

  // --- entropy of a sampled trace (Formula 1) ---
  if (metrics.variation) {
    std::vector<std::vector<double>> fields;
    for (int sample = 0; sample < options_.entropy_samples; ++sample) {
      const auto view = probe_a_->read_file(path);
      if (view.is_ok()) {
        const auto nums = extract_numbers(view.value());
        if (fields.size() < nums.size()) fields.resize(nums.size());
        for (std::size_t i = 0; i < nums.size(); ++i) {
          fields[i].push_back(nums[i]);
        }
      }
      advance_both(options_.entropy_interval);
    }
    for (const auto& field : fields) {
      metrics.entropy_bits += binned_entropy(field, options_.entropy_bins);
    }
  }
  return metrics;
}

std::vector<UvmMetrics> UvmAnalyzer::analyze_all() {
  std::vector<UvmMetrics> all;
  for (const auto& glob : table2_channel_globs()) {
    all.push_back(analyze(glob));
  }
  return all;
}

}  // namespace cleaks::leakage
