#include "leakage/inspector.h"

#include "util/strings.h"

namespace cleaks::leakage {

CloudInspector::CloudInspector(
    std::vector<cloud::CloudServiceProfile> profiles, std::uint64_t seed)
    : profiles_(std::move(profiles)), seed_(seed) {}

std::string CloudInspector::symbol(LeakClass cls) {
  switch (cls) {
    case LeakClass::kLeaking:
      return "●";
    case LeakClass::kPartial:
      return "◐";
    case LeakClass::kNamespaced:
    case LeakClass::kMasked:
    case LeakClass::kAbsent:
      return "○";
  }
  return "?";
}

std::vector<ChannelAvailability> CloudInspector::inspect() {
  const auto channels = table1_channels();
  std::vector<ChannelAvailability> matrix;
  matrix.reserve(channels.size());
  for (const auto& channel : channels) {
    matrix.push_back({channel, {}});
  }

  std::uint64_t server_seed = seed_;
  for (const auto& profile : profiles_) {
    cloud::Server server("inspect-" + profile.name, profile, ++server_seed,
                         /*prior_uptime=*/45 * kDay);
    CrossValidator validator(server);
    const auto findings = validator.scan();

    for (auto& row : matrix) {
      // Aggregate the row's paths: a single leaking path makes the whole
      // row a usable channel.
      LeakClass row_class = LeakClass::kAbsent;
      for (const auto& finding : findings) {
        if (!glob_match(row.channel.path_glob, finding.path)) continue;
        if (finding.cls == LeakClass::kLeaking) {
          row_class = LeakClass::kLeaking;
          break;
        }
        if (finding.cls == LeakClass::kPartial) {
          row_class = LeakClass::kPartial;
        } else if (row_class == LeakClass::kAbsent) {
          row_class = finding.cls;
        }
      }
      row.per_cloud[profile.name] = row_class;
    }
  }
  return matrix;
}

}  // namespace cleaks::leakage
