// Channel catalog: the 21 leakage-channel rows of Table I, each with its
// leaked-information description, the paper's potential-vulnerability flags
// and the concrete pseudo-file paths that represent the row on a host.
#pragma once

#include <string>
#include <vector>

#include "fs/pseudo_fs.h"

namespace cleaks::leakage {

struct ChannelInfo {
  std::string row;          ///< Table I row label, e.g. "/proc/sys/fs/*"
  std::string description;  ///< leaked information
  bool vuln_coresidence = false;
  bool vuln_dos = false;
  bool vuln_info_leak = true;
  /// Glob over pseudo-fs paths that belong to this row.
  std::string path_glob;
};

/// Table I rows, in the paper's order.
std::vector<ChannelInfo> table1_channels();

/// Expand a channel row to the concrete paths present on a host.
std::vector<std::string> channel_paths(const ChannelInfo& channel,
                                       const fs::PseudoFs& fs);

/// The 29 Table II channels (more granular than Table I rows), in the
/// paper's rank order.
std::vector<std::string> table2_channel_globs();

}  // namespace cleaks::leakage
