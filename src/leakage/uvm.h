// UvmAnalyzer: quantitative assessment of each leakage channel's capability
// to infer co-residence (§III-C2, Table II).
//
// Three metrics, measured empirically against two live simulated servers:
//   U (uniqueness)    — does the channel bestow data that identifies a host?
//     Tested three ways, matching the paper's three groups:
//       (1) static unique identifiers: content is time-stable on one host
//           but differs across hosts (boot_id, ifpriomap);
//       (2) implantable signatures: a crafted artifact (task name, timer,
//           lock) planted from one container is readable from another
//           (sched_debug, timer_list, locks);
//       (3) dynamic unique identifiers: monotone accumulators whose
//           cross-host distance dwarfs their same-host temporal drift
//           (uptime, stat, energy_uj, ...), ranked by growth rate.
//   V (variation)     — does the data change with time? (snapshot-trace
//     matching potential); capacity measured as joint Shannon entropy
//     (Formula 1) over a sampled trace.
//   M (manipulation)  — can a tenant implant data directly (●) or influence
//     it indirectly through resource consumption (◐)?
#pragma once

#include <string>
#include <vector>

#include "cloud/server.h"

namespace cleaks::leakage {

enum class UniqueKind { kNone, kStaticId, kImplant, kDynamicId };
enum class Manipulation { kNone, kIndirect, kDirect };

struct UvmMetrics {
  std::string channel;
  std::string path;  ///< concrete path measured
  bool unique = false;
  UniqueKind unique_kind = UniqueKind::kNone;
  bool variation = false;
  Manipulation manipulation = Manipulation::kNone;
  double entropy_bits = 0.0;   ///< joint Shannon entropy of a sampled trace
  double growth_per_sec = 0.0; ///< max accumulator growth rate (group 3 rank)
};

struct UvmOptions {
  SimDuration variation_window = 5 * kSecond;
  int entropy_samples = 60;
  SimDuration entropy_interval = kSecond;
  int entropy_bins = 16;
  /// Cross-host distance must exceed this multiple of same-host temporal
  /// drift for a field to count as a dynamic unique identifier.
  double uniqueness_ratio = 50.0;
};

class UvmAnalyzer {
 public:
  /// `server_a` and `server_b` must be two distinct machines of the same
  /// cloud profile (both should run benign background load so variation is
  /// realistic). Both are advanced in lock-step by the analyzer.
  UvmAnalyzer(cloud::Server& server_a, cloud::Server& server_b,
              UvmOptions options = UvmOptions{});

  /// Analyze one channel (glob over pseudo-fs paths; the first matching
  /// path is measured).
  UvmMetrics analyze(const std::string& channel_glob);

  /// Analyze the full Table II channel list.
  std::vector<UvmMetrics> analyze_all();

 private:
  void advance_both(SimDuration dt);
  [[nodiscard]] std::string first_match(const std::string& glob) const;

  bool test_implant(const std::string& path);
  bool test_indirect_manipulation(const std::string& path);

  cloud::Server* server_a_;
  cloud::Server* server_b_;
  UvmOptions options_;
  std::shared_ptr<container::Container> probe_a_;   ///< observer on host A
  std::shared_ptr<container::Container> probe_a2_;  ///< sibling on host A
  std::shared_ptr<container::Container> probe_b_;   ///< observer on host B
};

}  // namespace cleaks::leakage
