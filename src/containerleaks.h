// ContainerLeaks — umbrella public header.
//
// Reproduction of "ContainerLeaks: Emerging Security Threats of Information
// Leakages in Container Clouds" (DSN 2017). Include this to get the whole
// public API; fine-grained headers are available per module:
//
//   hw/         simulated hardware (RAPL, DTS, cpuidle, energy model)
//   kernel/     simulated Linux kernel (namespaces, cgroups, scheduler,
//               perf_event, /proc state, Host)
//   fs/         procfs/sysfs pseudo filesystems + masking policies
//   container/  Docker/LXC-style container runtime
//   workload/   workload profiles, SPEC/UnixBench suites, diurnal load
//   cloud/      servers, racks, breakers, billing, provider, CC1..CC5
//   leakage/    cross-validation leak detector, UVM metrics, inspector
//   coresidence/ co-residence detectors + accuracy evaluation
//   attack/     RAPL monitor, power attack strategies, orchestration
//   defense/    power model, trainer, power-based namespace, masking
#pragma once

#include "attack/monitor.h"
#include "attack/orchestrator.h"
#include "attack/strategy.h"
#include "cloud/billing.h"
#include "cloud/breaker.h"
#include "cloud/datacenter.h"
#include "cloud/profiles.h"
#include "cloud/provider.h"
#include "cloud/server.h"
#include "container/container.h"
#include "coresidence/covert.h"
#include "coresidence/detector.h"
#include "coresidence/evaluation.h"
#include "defense/budget.h"
#include "defense/power_model.h"
#include "defense/power_namespace.h"
#include "defense/trainer.h"
#include "fs/masking.h"
#include "fs/pseudo_fs.h"
#include "hw/spec.h"
#include "kernel/host.h"
#include "leakage/channels.h"
#include "leakage/detector.h"
#include "leakage/inspector.h"
#include "leakage/uvm.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/sim_time.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"
#include "workload/diurnal.h"
#include "workload/profiles.h"
#include "workload/unixbench.h"
