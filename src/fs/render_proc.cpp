#include <algorithm>
#include <cstdio>
#include <vector>

#include "fs/render.h"
#include "util/strings.h"

namespace cleaks::fs::render {
namespace {

using kernel::CpuTimes;
using kernel::Task;

/// Wall-clock epoch of simulated t=0 (2016-11-28, the date of the paper's
/// last check on the leakage channels).
constexpr std::uint64_t kEpochBase = 1480291200;

/// Cores the viewer may use: its cgroup cpuset, or every core.
std::vector<int> visible_cores(const RenderContext& ctx, bool restricted) {
  const int total = ctx.host.spec().num_cores;
  if (restricted && ctx.viewer != nullptr && ctx.viewer->cgroup != nullptr &&
      !ctx.viewer->cgroup->cpuset.cpus.empty()) {
    return ctx.viewer->cgroup->cpuset.cpus;
  }
  std::vector<int> cores(static_cast<std::size_t>(total));
  for (int c = 0; c < total; ++c) cores[static_cast<std::size_t>(c)] = c;
  return cores;
}

}  // namespace

/// True when `task` belongs to the viewer's container (used by the
/// restricted task-list renders: an lxcfs-style or namespaced view shows
/// only the tenant's own processes).
bool visible_task(const RenderContext& ctx, const Task& task) {
  if (!ctx.restricted || ctx.viewer == nullptr ||
      !ctx.viewer->is_containerized()) {
    return true;
  }
  return task.container_id == ctx.viewer->container_id;
}

void uptime(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  if (ctx.restricted && ctx.viewer != nullptr &&
      ctx.viewer->is_containerized()) {
    // Container-scoped view: seconds since the container's init started,
    // idle time derived from the cgroup's own CPU accounting.
    const double up =
        static_cast<double>(ctx.host.now() -
                            std::min(ctx.host.now(), ctx.viewer->start_time)) /
        1e9;
    const auto cpus = ctx.viewer->cgroup != nullptr &&
                              !ctx.viewer->cgroup->cpuset.cpus.empty()
                          ? ctx.viewer->cgroup->cpuset.cpus.size()
                          : static_cast<std::size_t>(ctx.host.spec().num_cores);
    const double busy =
        ctx.viewer->cgroup != nullptr
            ? static_cast<double>(ctx.viewer->cgroup->cpuacct.total_usage_ns()) /
                  1e9
            : 0.0;
    const double idle = std::max(0.0, up * static_cast<double>(cpus) - busy);
    strappendf(out, "%.2f %.2f\n", up, idle);
    return;
  }
  const double up = static_cast<double>(ks.uptime_ns) / 1e9;
  const double idle = static_cast<double>(ks.idle_time_ns) / 1e9;
  strappendf(out, "%.2f %.2f\n", up, idle);
}

void version(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  strappendf(out,
             "Linux version %s-generic (buildd@lgw01-11) (gcc version %s "
             "(%s)) #1 SMP Mon Aug 1 10:00:00 UTC 2016\n",
             ks.kernel_version.c_str(), ks.gcc_version.c_str(),
             ks.distribution.c_str());
}

void stat(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  const auto cores = visible_cores(ctx, ctx.restricted);
  CpuTimes total;
  for (int core : cores) {
    total = total + ks.cpu_times[static_cast<std::size_t>(core)];
  }
  auto cpu_line = [&out](const char* label, const CpuTimes& t) {
    strappendf(out, "%s %llu %llu %llu %llu %llu %llu %llu %llu 0 0\n", label,
               (unsigned long long)t.user, (unsigned long long)t.nice,
               (unsigned long long)t.system, (unsigned long long)t.idle,
               (unsigned long long)t.iowait, (unsigned long long)t.irq,
               (unsigned long long)t.softirq, (unsigned long long)t.steal);
  };
  cpu_line("cpu ", total);
  for (int core : cores) {
    char label[16];
    std::snprintf(label, sizeof label, "cpu%d", core);
    cpu_line(label, ks.cpu_times[static_cast<std::size_t>(core)]);
  }
  strappendf(out, "intr %llu\n", (unsigned long long)ks.total_interrupts);
  strappendf(out, "ctxt %llu\n", (unsigned long long)ks.total_ctxt_switches);
  strappendf(out, "btime %llu\n",
             (unsigned long long)(kEpochBase + ks.boot_time / kSecond));
  strappendf(out, "processes %llu\n", (unsigned long long)ks.processes_forked);
  strappendf(out, "procs_running %d\n", ks.procs_running);
  strappendf(out, "procs_blocked %d\n", ks.procs_blocked);
}

void meminfo(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  std::uint64_t total_kb = ks.mem_total_kb;
  std::uint64_t free_kb = ks.mem_free_kb;
  if (ctx.restricted && ctx.viewer != nullptr &&
      ctx.viewer->cgroup != nullptr &&
      ctx.viewer->cgroup->memory.limit_bytes > 0) {
    // Tenant-scoped view (CC5 style): report the cgroup limit as MemTotal.
    total_kb = ctx.viewer->cgroup->memory.limit_bytes >> 10;
    const std::uint64_t used_kb = ctx.viewer->cgroup->memory.usage_bytes >> 10;
    free_kb = total_kb > used_kb ? total_kb - used_kb : 0;
  }
  strappendf(out, "MemTotal:       %8llu kB\n", (unsigned long long)total_kb);
  strappendf(out, "MemFree:        %8llu kB\n", (unsigned long long)free_kb);
  strappendf(out, "MemAvailable:   %8llu kB\n",
             (unsigned long long)(free_kb + ks.cached_kb / 2));
  strappendf(out, "Buffers:        %8llu kB\n",
             (unsigned long long)ks.buffers_kb);
  strappendf(out, "Cached:         %8llu kB\n", (unsigned long long)ks.cached_kb);
  strappendf(out, "Active:         %8llu kB\n", (unsigned long long)ks.active_kb);
  strappendf(out, "Inactive:       %8llu kB\n",
             (unsigned long long)ks.inactive_kb);
  strappendf(out, "Dirty:          %8llu kB\n", (unsigned long long)ks.dirty_kb);
  strappendf(out, "Slab:           %8llu kB\n", (unsigned long long)ks.slab_kb);
  out += "SwapTotal:             0 kB\n";
  out += "SwapFree:              0 kB\n";
}

void loadavg(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  if (ctx.restricted && ctx.viewer != nullptr &&
      ctx.viewer->is_containerized()) {
    // cgroup-scoped view (lxcfs behaviour): load derived from the
    // container's own runnable tasks.
    double expected_runnable = 0.0;
    int total_tasks = 0;
    int last_pid = 0;
    for (const auto& task : ctx.host.tasks()) {
      if (task->container_id != ctx.viewer->container_id) continue;
      ++total_tasks;
      expected_runnable += std::min(1.0, task->behavior.duty_cycle);
      last_pid = std::max(last_pid, task->ns_pid);
    }
    strappendf(out, "%.2f %.2f %.2f %d/%d %d\n", expected_runnable,
               expected_runnable, expected_runnable,
               std::max(1, static_cast<int>(expected_runnable)), total_tasks,
               last_pid);
    return;
  }
  int total_tasks = static_cast<int>(ctx.host.tasks().size());
  int last_pid = 0;
  for (const auto& task : ctx.host.tasks()) {
    last_pid = std::max(last_pid, task->host_pid);
  }
  strappendf(out, "%.2f %.2f %.2f %d/%d %d\n", ks.load1, ks.load5, ks.load15,
             ks.procs_running, total_tasks, last_pid);
}

void interrupts(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  const int cores = ctx.host.spec().num_cores;
  out += "          ";
  for (int core = 0; core < cores; ++core) {
    char cpu_label[16];
    std::snprintf(cpu_label, sizeof cpu_label, "CPU%d", core);
    strappendf(out, "%10s", cpu_label);
  }
  out += '\n';
  for (const auto& line : ks.irqs) {
    strappendf(out, "%4s: ", line.label.c_str());
    for (auto count : line.per_cpu) {
      strappendf(out, "%10llu", (unsigned long long)count);
    }
    out += "  ";
    out += line.description;
    out += '\n';
  }
}

void softirqs(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  const int cores = ctx.host.spec().num_cores;
  out += "          ";
  for (int core = 0; core < cores; ++core) {
    char cpu_label[16];
    std::snprintf(cpu_label, sizeof cpu_label, "CPU%d", core);
    strappendf(out, "%12s", cpu_label);
  }
  out += '\n';
  for (std::size_t type = 0; type < kernel::kSoftirqNames.size(); ++type) {
    strappendf(out, "%10s:", kernel::kSoftirqNames[type]);
    for (auto count : ks.softirqs[type]) {
      strappendf(out, "%12llu", (unsigned long long)count);
    }
    out += '\n';
  }
}

void cpuinfo(const RenderContext& ctx, std::string& out) {
  const auto& spec = ctx.host.spec();
  const auto cores = visible_cores(ctx, ctx.restricted);
  const double mhz = ctx.host.effective_freq_hz() / 1e6;
  for (int core : cores) {
    strappendf(out, "processor\t: %d\n", core);
    strappendf(out, "vendor_id\t: %s\n", spec.vendor_id.c_str());
    strappendf(out, "cpu family\t: %d\n", spec.cpu_family);
    strappendf(out, "model\t\t: %d\n", spec.model);
    strappendf(out, "model name\t: %s\n", spec.model_name.c_str());
    strappendf(out, "cpu MHz\t\t: %.3f\n", mhz);
    strappendf(out, "cache size\t: %llu KB\n", (unsigned long long)spec.cache_kb);
    strappendf(out, "physical id\t: %d\n",
               core / std::max(1, spec.cores_per_package));
    strappendf(out, "core id\t\t: %d\n",
               core % std::max(1, spec.cores_per_package));
    strappendf(out, "cpu cores\t: %d\n", spec.cores_per_package);
    out += '\n';
  }
}

void schedstat(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  out += "version 15\n";
  strappendf(out, "timestamp %llu\n",
             (unsigned long long)(ks.uptime_ns / (10 * kMillisecond)));
  for (int core : visible_cores(ctx, ctx.restricted)) {
    const auto& s = ks.schedstat[static_cast<std::size_t>(core)];
    strappendf(out, "cpu%d %llu 0 %llu %llu %llu %llu %llu %llu %llu\n", core,
               (unsigned long long)s.sched_yield,
               (unsigned long long)s.schedule_called,
               (unsigned long long)s.sched_goidle,
               (unsigned long long)s.ttwu_count,
               (unsigned long long)s.ttwu_local,
               (unsigned long long)s.run_time_ns,
               (unsigned long long)s.wait_time_ns,
               (unsigned long long)s.timeslices);
  }
}

void zoneinfo(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  const int nodes = std::max(1, ctx.host.spec().numa_nodes);
  const std::uint64_t pages_total = ks.mem_total_kb / 4;
  const std::uint64_t pages_free = ks.mem_free_kb / 4;
  for (int node = 0; node < nodes; ++node) {
    const std::uint64_t node_pages = pages_total / nodes;
    const std::uint64_t node_free = pages_free / nodes;
    strappendf(out, "Node %d, zone   Normal\n", node);
    strappendf(out, "  pages free     %llu\n", (unsigned long long)node_free);
    strappendf(out, "        min      %llu\n",
               (unsigned long long)(node_pages / 256));
    strappendf(out, "        low      %llu\n",
               (unsigned long long)(node_pages / 200));
    strappendf(out, "        high     %llu\n",
               (unsigned long long)(node_pages / 160));
    strappendf(out, "        spanned  %llu\n", (unsigned long long)node_pages);
    strappendf(out, "        present  %llu\n", (unsigned long long)node_pages);
    strappendf(out, "        managed  %llu\n",
               (unsigned long long)(node_pages * 97 / 100));
    strappendf(out, "    nr_active_anon %llu\n",
               (unsigned long long)(ks.active_kb / 4 / nodes));
    strappendf(out, "    nr_inactive_anon %llu\n",
               (unsigned long long)(ks.inactive_kb / 4 / nodes));
    strappendf(out, "    nr_dirty %llu\n",
               (unsigned long long)(ks.dirty_kb / 4 / nodes));
  }
}

void locks(const RenderContext& ctx, std::string& out) {
  int index = 1;
  for (const auto& task : ctx.host.tasks()) {
    if (!visible_task(ctx, *task)) continue;
    for (int lock = 0; lock < task->behavior.file_locks; ++lock) {
      // Host pids of every lock holder are visible — the leak.
      strappendf(out, "%d: POSIX  ADVISORY  WRITE %d 08:01:%d 0 EOF\n", index++,
                 task->host_pid, 1048576 + task->host_pid * 16 + lock);
    }
  }
}

/// Monotonic clock as the viewer sees it: host uptime, or (for restricted
/// tenant-scoped views) nanoseconds since the container started — a
/// virtualized timer_list must not leak the host clock through its header.
std::uint64_t viewer_clock_ns(const RenderContext& ctx) {
  if (ctx.restricted && ctx.viewer != nullptr &&
      ctx.viewer->is_containerized()) {
    return ctx.host.now() - std::min(ctx.host.now(), ctx.viewer->start_time);
  }
  return ctx.host.state().uptime_ns;
}

void timer_list(const RenderContext& ctx, std::string& out) {
  out += "Timer List Version: v0.8\n";
  strappendf(out, "HRTIMER_MAX_CLOCK_BASES: 4\nnow at %llu nsecs\n\n",
             (unsigned long long)viewer_clock_ns(ctx));
  const int cores = ctx.host.spec().num_cores;
  for (int core = 0; core < cores; ++core) {
    strappendf(out, "cpu: %d\n", core);
    out += " clock 0:\n  .base:       ffff88021fa0e700\n";
    int slot = 0;
    // Every task's armed timers are listed with comm/pid — the channel a
    // tenant uses to implant a recognizable signature (§III-C group 2).
    // A restricted (namespaced/lxcfs) view lists only the tenant's own.
    for (const auto& task : ctx.host.tasks()) {
      if (task->cpu != core || !visible_task(ctx, *task)) continue;
      for (int t = 0; t < task->behavior.named_timers; ++t) {
        strappendf(out,
                   " #%d: <0000000000000000>, hrtimer_wakeup, S:01, "
                   "futex_wait_queue_me, %s/%d\n",
                   slot++, task->comm.c_str(), task->host_pid);
        strappendf(out,
                   " # expires at %llu-%llu nsecs [in %llu to %llu "
                   "nsecs]\n",
                   (unsigned long long)(viewer_clock_ns(ctx) + 1000000),
                   (unsigned long long)(viewer_clock_ns(ctx) + 1050000),
                   1000000ULL, 1050000ULL);
      }
    }
  }
}

void sched_debug(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  strappendf(out, "Sched Debug Version: v0.11, %s-generic\n",
             ks.kernel_version.c_str());
  strappendf(out, "ktime                                   : %llu\n",
             (unsigned long long)(viewer_clock_ns(ctx) / 1000000));
  const int cores = ctx.host.spec().num_cores;
  for (int core = 0; core < cores; ++core) {
    strappendf(out, "\ncpu#%d, %.3f MHz\n", core,
               ctx.host.effective_freq_hz() / 1e6);
    const auto& runnable = ctx.host.scheduler().runnable_per_core();
    strappendf(out, "  .nr_running                    : %d\n",
               runnable[static_cast<std::size_t>(core)]);
    out += "\nrunnable tasks:\n";
    out += " S           task   PID         tree-key  switches  prio\n";
    out += "-------------------------------------------------------\n";
    // All host processes, with comms and host pids — the strongest implant
    // channel of §III-C (a uniquely named task is searchable from any
    // co-resident container). A restricted view is tenant-scoped.
    for (const auto& task : ctx.host.tasks()) {
      if (task->cpu != core || !visible_task(ctx, *task)) continue;
      strappendf(out, " %c %14s %5d %16llu %9llu   120\n",
                 task->behavior.duty_cycle > 0 ? 'R' : 'S', task->comm.c_str(),
                 task->host_pid,
                 (unsigned long long)(task->stats.runtime_ns / 1000),
                 (unsigned long long)task->stats.ctx_switches);
    }
  }
}

void modules(const RenderContext& ctx, std::string& out) {
  for (const auto& module : ctx.host.state().modules) {
    strappendf(out, "%s %llu %d - Live 0xffffffffc0000000\n",
               module.name.c_str(), (unsigned long long)module.size,
               module.refcount);
  }
}

void boot_id(const RenderContext& ctx, std::string& out) {
  out += ctx.host.state().boot_id;
  out += '\n';
}

void entropy_avail(const RenderContext& ctx, std::string& out) {
  strappendf(out, "%d\n", ctx.host.state().entropy_avail);
}

void random_poolsize(const RenderContext& ctx, std::string& out) {
  strappendf(out, "%d\n", ctx.host.state().poolsize);
}

void fs_file_nr(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  strappendf(out, "%llu\t0\t%llu\n", (unsigned long long)ks.file_nr,
             (unsigned long long)ks.file_max);
}

void fs_inode_nr(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  strappendf(out, "%llu\t%llu\n", (unsigned long long)ks.inode_nr,
             (unsigned long long)ks.inode_free);
}

void fs_dentry_state(const RenderContext& ctx, std::string& out) {
  const auto& ks = ctx.host.state();
  strappendf(out, "%llu\t%llu\t%d\t0\t0\t0\n", (unsigned long long)ks.dentry_nr,
             (unsigned long long)ks.dentry_unused, ks.dentry_age_limit);
}

void max_newidle_lb_cost(const RenderContext& ctx, int cpu, int domain,
                         std::string& out) {
  const auto& costs = ctx.host.state().sched_domain_lb_cost;
  if (cpu < 0 || static_cast<std::size_t>(cpu) >= costs.size() || domain < 0 ||
      domain > 1) {
    out += "0\n";
    return;
  }
  strappendf(out, "%llu\n",
             (unsigned long long)costs[static_cast<std::size_t>(cpu)]
                                      [static_cast<std::size_t>(domain)]);
}

void ext4_mb_groups(const RenderContext& ctx, std::string& out) {
  out += "#group: free  frags first [ 2^0 2^1 2^2 2^3 2^4 2^5 2^6 ]\n";
  const auto& groups = ctx.host.state().ext4_group_free_blocks;
  for (std::size_t group = 0; group < groups.size(); ++group) {
    const auto free_blocks = groups[group];
    strappendf(
        out,
        "#%-5zu: %-5llu %-5llu %-5llu [ %llu %llu %llu %llu %llu %llu %llu ]\n",
        group, (unsigned long long)free_blocks,
        (unsigned long long)(free_blocks / 9 + 1), 0ULL,
        (unsigned long long)(free_blocks % 2),
        (unsigned long long)(free_blocks / 2 % 2),
        (unsigned long long)(free_blocks / 4 % 4),
        (unsigned long long)(free_blocks / 16 % 8),
        (unsigned long long)(free_blocks / 64 % 16),
        (unsigned long long)(free_blocks / 256 % 16),
        (unsigned long long)(free_blocks / 1024 % 32));
  }
}

// ---- properly namespaced files ----

void pid_file(const RenderContext& ctx, const Task& task,
              std::string_view leaf, std::string& out) {
  // pids render in the viewer's namespace: the init namespace sees host
  // pids; a container sees its local ones.
  const bool init_view = ctx.viewer == nullptr ||
                         ctx.viewer->ns.pid == ctx.host.init_ns().pid;
  const int pid = init_view ? task.host_pid : task.ns_pid;
  if (leaf == "cmdline") {
    out += task.comm;
    out += '\n';
    return;
  }
  if (leaf == "stat") {
    const auto utime =
        static_cast<std::uint64_t>(task.stats.runtime_ns / 1e7 * 0.9);
    const auto stime =
        static_cast<std::uint64_t>(task.stats.runtime_ns / 1e7 * 0.1);
    strappendf(out, "%d (%s) %c 1 %d %d 0 -1 4194304 0 0 0 0 %llu %llu\n", pid,
               task.comm.c_str(), task.behavior.duty_cycle > 0 ? 'R' : 'S',
               pid, pid, (unsigned long long)utime, (unsigned long long)stime);
    return;
  }
  if (leaf == "sched") {
    strappendf(out, "%s (%d, #threads: 1)\n", task.comm.c_str(), pid);
    out += "-------------------------------------------------------------------\n";
    strappendf(out, "se.sum_exec_runtime                          : %.6f\n",
               static_cast<double>(task.stats.runtime_ns) / 1e6);
    strappendf(out, "nr_switches                                  : %llu\n",
               (unsigned long long)task.stats.ctx_switches);
    strappendf(out, "nr_migrations                                : %llu\n",
               (unsigned long long)task.stats.migrations);
    out += "prio                                         : 120\n";
    return;
  }
  // "status"
  strappendf(out, "Name:\t%s\n", task.comm.c_str());
  strappendf(out, "State:\t%s\n",
             task.behavior.duty_cycle > 0 ? "R (running)" : "S (sleeping)");
  strappendf(out, "Pid:\t%d\n", pid);
  strappendf(out, "VmRSS:\t%llu kB\n",
             (unsigned long long)(task.behavior.rss_bytes >> 10));
  out += "Threads:\t1\n";
  strappendf(out, "voluntary_ctxt_switches:\t%llu\n",
             (unsigned long long)task.stats.ctx_switches);
}

void self_cgroup(const RenderContext& ctx, std::string& out) {
  // With a CGROUP namespace the path is shown relative to the ns root.
  std::string path = "/";
  if (ctx.viewer != nullptr && ctx.viewer->cgroup != nullptr) {
    const std::string& full = ctx.viewer->cgroup->path();
    const std::string& root = ctx.ns().cgroup->root_path;
    if (root != "/" && full.rfind(root, 0) == 0) {
      path = full.substr(root.size());
      if (path.empty()) path = "/";
    } else {
      path = full;
    }
  }
  int index = 12;
  for (const char* controller :
       {"cpuacct", "perf_event", "net_prio", "cpuset", "memory"}) {
    strappendf(out, "%d:%s:%s\n", index--, controller, path.c_str());
  }
}

void sys_hostname(const RenderContext& ctx, std::string& out) {
  out += ctx.ns().uts->hostname;
  out += '\n';
}

void net_dev(const RenderContext& ctx, std::string& out) {
  out +=
      "Inter-|   Receive                            |  Transmit\n"
      " face |bytes    packets errs drop fifo frame |bytes    packets\n";
  const auto& ks = ctx.host.state();
  // Byte counters scale with uptime; containers only see their own NET
  // namespace's devices (this file is properly namespaced — contrast case).
  const std::uint64_t base = ks.uptime_ns / 1000;
  for (const auto& device : ctx.ns().net->devices) {
    const std::uint64_t rx = device.name == "lo" ? base / 50 : base;
    strappendf(out, "%6s: %8llu %8llu    0    0    0     0 %8llu %8llu\n",
               device.name.c_str(), (unsigned long long)rx,
               (unsigned long long)(rx / 900), (unsigned long long)(rx / 2),
               (unsigned long long)(rx / 1800));
  }
}

void self_status(const RenderContext& ctx, std::string& out) {
  const Task* task = ctx.viewer;
  strappendf(out, "Name:\t%s\n", task != nullptr ? task->comm.c_str() : "bash");
  // Inside a PID namespace the task sees its ns-local pid.
  strappendf(out, "Pid:\t%d\n", task != nullptr ? task->ns_pid : 1);
  strappendf(out, "NSpid:\t%d\n", task != nullptr ? task->ns_pid : 1);
  out += "Threads:\t1\n";
}

}  // namespace cleaks::fs::render
