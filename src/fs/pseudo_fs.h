// PseudoFs: the memory-based pseudo file systems (procfs + sysfs) of one
// simulated host, as mounted into every container by the runtime.
//
// Each registered path has a pure generator over (host state, render
// context). Reads evaluate the masking policy first, so a read returns one
// of: content (possibly tenant-scoped), kPermissionDenied (masked), or
// kNotFound. The leakage detector walks list_paths() and diffs the two
// contexts exactly like the tool in Fig 1.
//
// Performance notes (the scanner renders hundreds of paths per pass):
//  * the registry is a sorted flat vector looked up by std::string_view
//    (no per-lookup key allocation, cache-friendly binary search);
//  * generators append into a caller-provided buffer (read_into), so a
//    scanning worker reuses one buffer for its whole path range;
//  * host-context renders are memoized in a per-file cache tagged with the
//    host's state generation — the cache invalidates itself whenever the
//    host ticks forward or its task table changes;
//  * container-context renders are memoized per viewer in the same cache,
//    keyed by (viewer PID-namespace id, host generation, render epoch,
//    viewer-state fingerprint, restricted flag). The PID-namespace id is
//    incarnation-unique (the registry hands out monotonic ids), so a
//    destroyed-and-recreated container can never read its predecessor's
//    bytes even when the runtime reuses the container id string. Paths
//    covered by an active FaultPlan rule bypass this cache entirely —
//    fault draws are keyed by sim-time window and must happen per read.
//
// Concurrency: reads are const and generators are pure, so any number of
// threads may read concurrently *while the host is quiescent* (nobody is
// calling Host::advance/spawn_task/etc.). The render cache is internally
// locked per file (shared lock on the hit path, exclusive only to fill);
// everything else is read-only.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "fs/masking.h"
#include "fs/view.h"
#include "util/result.h"

namespace cleaks::faults {
class FaultInjector;
}  // namespace cleaks::faults

namespace cleaks::fs {

/// Generators append the file's bytes to `out` (never clear or replace it).
using Generator =
    std::function<void(const RenderContext&, std::string& out)>;

/// Whether host-context renders of a file may be memoized. Almost every
/// pseudo file depends only on host state and is kCacheable; files whose
/// bytes change without a host generation bump (e.g. /proc/containerleaks,
/// which renders the live metrics registry) must be kUncacheable or the
/// cache would serve stale telemetry.
enum class CacheMode { kCacheable, kUncacheable };

class PseudoFs {
 public:
  /// Builds the full procfs + sysfs tree for `host`. The host must outlive
  /// the PseudoFs. Hardware-dependent subtrees (RAPL, coretemp) are only
  /// registered when the spec provides the hardware.
  explicit PseudoFs(const kernel::Host& host);

  /// All registered static paths, sorted. (Path *existence* does not depend
  /// on the viewer; DENY shows up at read time, as with AppArmor.)
  [[nodiscard]] std::vector<std::string> list_paths() const;

  /// Static paths plus the per-process /proc/<pid>/ entries visible in
  /// `ctx` — pids are the *viewer's PID-namespace* pids, so a container
  /// only ever lists its own processes (the properly namespaced part of
  /// procfs, in contrast with the Table I channels).
  [[nodiscard]] std::vector<std::string> list_paths(const ViewContext& ctx) const;

  /// Read `path` in `ctx`. Handles both registered static paths and the
  /// dynamic /proc/<pid>/{status,stat,cmdline,sched} files.
  [[nodiscard]] Result<std::string> read(std::string_view path,
                                         const ViewContext& ctx) const;

  /// Allocation-free read fast path: renders `path` into `out` (replacing
  /// its contents) and returns the status. Callers on scanning hot loops
  /// keep one buffer per worker and pass it to every read.
  StatusCode read_into(std::string_view path, const ViewContext& ctx,
                       std::string& out) const;

  /// Install/remove the defense's RAPL view provider (power-based
  /// namespace). Null restores the stock leaking behaviour.
  void set_rapl_provider(const RaplViewProvider* provider) noexcept {
    rapl_provider_ = provider;
    ++render_epoch_;  // provider changes what renders, drop cached bytes
  }
  [[nodiscard]] const RaplViewProvider* rapl_provider() const noexcept {
    return rapl_provider_;
  }

  /// Install/remove the scenario's fault injector. Only *container*
  /// context reads are faulted — the host context is the simulator's
  /// ground truth (and the scanner's reference side), exactly as a
  /// tenant-facing EBUSY never rewrites the kernel's own state. Faults
  /// never affect path existence, so kNotFound classification is stable.
  void set_fault_injector(const faults::FaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }
  [[nodiscard]] const faults::FaultInjector* fault_injector() const noexcept {
    return fault_injector_;
  }

  [[nodiscard]] const kernel::Host& host() const noexcept { return *host_; }

  /// Register an extra path (used by tests to model future channels).
  /// Replaces the generator when the path already exists.
  void register_file(std::string path, Generator generator,
                     CacheMode mode = CacheMode::kCacheable);

  /// Monotonic epoch over everything renders depend on besides host state
  /// and the viewer: the registered generators, the RAPL view provider and
  /// the masking policy. Cached bytes are valid for one (generation, epoch)
  /// pair; incremental consumers (CrossValidator) key their own caches on
  /// it too.
  [[nodiscard]] std::uint64_t render_epoch() const noexcept {
    return render_epoch_;
  }

  /// Drop every cached render, host- and viewer-side. The container
  /// runtime calls this on stage-1 mask/unmask (set_policy): the policy
  /// decides which renders are restricted, so cached bytes predating the
  /// flip must never be served after it.
  void bump_render_epoch() noexcept { ++render_epoch_; }

  /// True when reads of `path` may legally be served from the render
  /// caches: a registered kCacheable static path that no rule of the
  /// installed fault plan covers. Incremental scanners use the same
  /// predicate to decide which classifications may be reused.
  [[nodiscard]] bool cache_eligible(std::string_view path) const;

  /// Drop the viewer-cache slots belonging to `viewer_pid_ns` (a viewer's
  /// PID-namespace id). Called by the runtime on container destroy — the
  /// monotonic ids make stale hits impossible anyway, so this is memory
  /// hygiene, not correctness.
  void drop_viewer_entries(std::uint64_t viewer_pid_ns) const;

  /// FNV-1a fingerprint over the viewer-visible mutable state that the
  /// host generation does *not* track: namespace identities and the
  /// viewer's cgroup configuration (cpuset, memory limit/usage, cpu quota,
  /// net_prio map). Restricted renders read exactly this state, so a
  /// cgroup knob turned between two reads changes the fingerprint and
  /// invalidates the cached bytes.
  [[nodiscard]] static std::uint64_t viewer_state_fingerprint(
      const kernel::Task& viewer);

 private:
  /// One memoized container-context render. `viewer_key` is the viewer's
  /// PID-namespace id — unique per container incarnation.
  struct ViewerSlot {
    std::uint64_t viewer_key = 0;
    std::uint64_t host_generation = 0;
    std::uint64_t render_epoch = 0;
    std::uint64_t view_fingerprint = 0;
    bool restricted = false;
    bool valid = false;
    std::string bytes;
  };

  /// Memoized renders for one file: the host-context slot, valid for one
  /// (host generation, render epoch) pair — i.e. until the next tick /
  /// task-table change / provider swap — plus up to kMaxViewerSlots
  /// container-context slots. Heap-allocated so FileEntry stays movable
  /// for the sorted insert. The shared_mutex serves hits under a reader
  /// lock; fills upgrade to the writer lock and re-check, so a racing
  /// fill is counted as exactly one miss no matter who wins.
  struct RenderCache {
    mutable std::shared_mutex mu;
    std::uint64_t host_generation = 0;
    std::uint64_t render_epoch = 0;
    bool valid = false;
    std::string bytes;
    std::vector<ViewerSlot> viewers;
  };

  /// Viewer slots kept per file. Eviction is deterministic: the smallest
  /// resident key is evicted, and an incoming key smaller than every
  /// resident is rendered uncached — so the resident set converges to the
  /// top-N newest incarnations regardless of read interleaving.
  static constexpr std::size_t kMaxViewerSlots = 16;

  struct FileEntry {
    std::string path;
    Generator generator;
    bool cacheable = true;
    std::unique_ptr<RenderCache> cache;
  };

  void register_procfs();
  void register_sysfs();
  void register_telemetry();

  [[nodiscard]] const FileEntry* find_entry(std::string_view path) const;

  /// Serve a host-context render from the per-file cache (fill on miss).
  StatusCode read_host_cached(const FileEntry& entry,
                              const RenderContext& render_ctx,
                              std::string& out) const;
  /// Serve a container-context render from the viewer slots (fill on miss).
  StatusCode read_viewer_cached(const FileEntry& entry,
                                const RenderContext& render_ctx,
                                std::string& out) const;

  /// Resolve "/proc/<pid>/<leaf>" under the viewer's PID namespace;
  /// returns nullopt when `path` is not a per-process path at all.
  struct PidPath {
    const kernel::Task* task = nullptr;  ///< nullptr = pid not visible
    std::string_view leaf;
  };
  [[nodiscard]] std::optional<PidPath> resolve_pid_path(
      std::string_view path, const ViewContext& ctx) const;

  const kernel::Host* host_;
  const RaplViewProvider* rapl_provider_ = nullptr;
  const faults::FaultInjector* fault_injector_ = nullptr;
  std::uint64_t render_epoch_ = 0;
  std::vector<FileEntry> files_;  ///< sorted by path
};

}  // namespace cleaks::fs
