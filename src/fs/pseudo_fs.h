// PseudoFs: the memory-based pseudo file systems (procfs + sysfs) of one
// simulated host, as mounted into every container by the runtime.
//
// Each registered path has a pure generator over (host state, render
// context). Reads evaluate the masking policy first, so a read returns one
// of: content (possibly tenant-scoped), kPermissionDenied (masked), or
// kNotFound. The leakage detector walks list_paths() and diffs the two
// contexts exactly like the tool in Fig 1.
//
// Performance notes (the scanner renders hundreds of paths per pass):
//  * the registry is a sorted flat vector looked up by std::string_view
//    (no per-lookup key allocation, cache-friendly binary search);
//  * generators append into a caller-provided buffer (read_into), so a
//    scanning worker reuses one buffer for its whole path range;
//  * host-context renders are memoized in a per-file cache tagged with the
//    host's state generation — the cache invalidates itself whenever the
//    host ticks forward or its task table changes.
//
// Concurrency: reads are const and generators are pure, so any number of
// threads may read concurrently *while the host is quiescent* (nobody is
// calling Host::advance/spawn_task/etc.). The render cache is internally
// locked per file; everything else is read-only.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "fs/masking.h"
#include "fs/view.h"
#include "util/result.h"

namespace cleaks::faults {
class FaultInjector;
}  // namespace cleaks::faults

namespace cleaks::fs {

/// Generators append the file's bytes to `out` (never clear or replace it).
using Generator =
    std::function<void(const RenderContext&, std::string& out)>;

/// Whether host-context renders of a file may be memoized. Almost every
/// pseudo file depends only on host state and is kCacheable; files whose
/// bytes change without a host generation bump (e.g. /proc/containerleaks,
/// which renders the live metrics registry) must be kUncacheable or the
/// cache would serve stale telemetry.
enum class CacheMode { kCacheable, kUncacheable };

class PseudoFs {
 public:
  /// Builds the full procfs + sysfs tree for `host`. The host must outlive
  /// the PseudoFs. Hardware-dependent subtrees (RAPL, coretemp) are only
  /// registered when the spec provides the hardware.
  explicit PseudoFs(const kernel::Host& host);

  /// All registered static paths, sorted. (Path *existence* does not depend
  /// on the viewer; DENY shows up at read time, as with AppArmor.)
  [[nodiscard]] std::vector<std::string> list_paths() const;

  /// Static paths plus the per-process /proc/<pid>/ entries visible in
  /// `ctx` — pids are the *viewer's PID-namespace* pids, so a container
  /// only ever lists its own processes (the properly namespaced part of
  /// procfs, in contrast with the Table I channels).
  [[nodiscard]] std::vector<std::string> list_paths(const ViewContext& ctx) const;

  /// Read `path` in `ctx`. Handles both registered static paths and the
  /// dynamic /proc/<pid>/{status,stat,cmdline,sched} files.
  [[nodiscard]] Result<std::string> read(std::string_view path,
                                         const ViewContext& ctx) const;

  /// Allocation-free read fast path: renders `path` into `out` (replacing
  /// its contents) and returns the status. Callers on scanning hot loops
  /// keep one buffer per worker and pass it to every read.
  StatusCode read_into(std::string_view path, const ViewContext& ctx,
                       std::string& out) const;

  /// Install/remove the defense's RAPL view provider (power-based
  /// namespace). Null restores the stock leaking behaviour.
  void set_rapl_provider(const RaplViewProvider* provider) noexcept {
    rapl_provider_ = provider;
    ++render_epoch_;  // provider changes what renders, drop cached bytes
  }
  [[nodiscard]] const RaplViewProvider* rapl_provider() const noexcept {
    return rapl_provider_;
  }

  /// Install/remove the scenario's fault injector. Only *container*
  /// context reads are faulted — the host context is the simulator's
  /// ground truth (and the scanner's reference side), exactly as a
  /// tenant-facing EBUSY never rewrites the kernel's own state. Faults
  /// never affect path existence, so kNotFound classification is stable.
  void set_fault_injector(const faults::FaultInjector* injector) noexcept {
    fault_injector_ = injector;
  }
  [[nodiscard]] const faults::FaultInjector* fault_injector() const noexcept {
    return fault_injector_;
  }

  [[nodiscard]] const kernel::Host& host() const noexcept { return *host_; }

  /// Register an extra path (used by tests to model future channels).
  /// Replaces the generator when the path already exists.
  void register_file(std::string path, Generator generator,
                     CacheMode mode = CacheMode::kCacheable);

 private:
  /// Memoized host-context render, valid for one (host generation, render
  /// epoch) pair — i.e. until the next tick / task-table change / provider
  /// swap. Heap-allocated so FileEntry stays movable for the sorted insert.
  struct RenderCache {
    std::mutex mu;
    std::uint64_t host_generation = 0;
    std::uint64_t render_epoch = 0;
    bool valid = false;
    std::string bytes;
  };

  struct FileEntry {
    std::string path;
    Generator generator;
    bool cacheable = true;
    std::unique_ptr<RenderCache> cache;
  };

  void register_procfs();
  void register_sysfs();
  void register_telemetry();

  [[nodiscard]] const FileEntry* find_entry(std::string_view path) const;

  /// Resolve "/proc/<pid>/<leaf>" under the viewer's PID namespace;
  /// returns nullopt when `path` is not a per-process path at all.
  struct PidPath {
    const kernel::Task* task = nullptr;  ///< nullptr = pid not visible
    std::string_view leaf;
  };
  [[nodiscard]] std::optional<PidPath> resolve_pid_path(
      std::string_view path, const ViewContext& ctx) const;

  const kernel::Host* host_;
  const RaplViewProvider* rapl_provider_ = nullptr;
  const faults::FaultInjector* fault_injector_ = nullptr;
  std::uint64_t render_epoch_ = 0;
  std::vector<FileEntry> files_;  ///< sorted by path
};

}  // namespace cleaks::fs
