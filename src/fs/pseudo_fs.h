// PseudoFs: the memory-based pseudo file systems (procfs + sysfs) of one
// simulated host, as mounted into every container by the runtime.
//
// Each registered path has a pure generator over (host state, render
// context). Reads evaluate the masking policy first, so a read returns one
// of: content (possibly tenant-scoped), kPermissionDenied (masked), or
// kNotFound. The leakage detector walks list_paths() and diffs the two
// contexts exactly like the tool in Fig 1.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "fs/masking.h"
#include "fs/view.h"
#include "util/result.h"

namespace cleaks::fs {

using Generator = std::function<std::string(const RenderContext&)>;

class PseudoFs {
 public:
  /// Builds the full procfs + sysfs tree for `host`. The host must outlive
  /// the PseudoFs. Hardware-dependent subtrees (RAPL, coretemp) are only
  /// registered when the spec provides the hardware.
  explicit PseudoFs(const kernel::Host& host);

  /// All registered static paths, sorted. (Path *existence* does not depend
  /// on the viewer; DENY shows up at read time, as with AppArmor.)
  [[nodiscard]] std::vector<std::string> list_paths() const;

  /// Static paths plus the per-process /proc/<pid>/ entries visible in
  /// `ctx` — pids are the *viewer's PID-namespace* pids, so a container
  /// only ever lists its own processes (the properly namespaced part of
  /// procfs, in contrast with the Table I channels).
  [[nodiscard]] std::vector<std::string> list_paths(const ViewContext& ctx) const;

  /// Read `path` in `ctx`. Handles both registered static paths and the
  /// dynamic /proc/<pid>/{status,stat,cmdline,sched} files.
  [[nodiscard]] Result<std::string> read(const std::string& path,
                                         const ViewContext& ctx) const;

  /// Install/remove the defense's RAPL view provider (power-based
  /// namespace). Null restores the stock leaking behaviour.
  void set_rapl_provider(const RaplViewProvider* provider) noexcept {
    rapl_provider_ = provider;
  }
  [[nodiscard]] const RaplViewProvider* rapl_provider() const noexcept {
    return rapl_provider_;
  }

  [[nodiscard]] const kernel::Host& host() const noexcept { return *host_; }

  /// Register an extra path (used by tests to model future channels).
  void register_file(std::string path, Generator generator);

 private:
  void register_procfs();
  void register_sysfs();

  /// Resolve "/proc/<pid>/<leaf>" under the viewer's PID namespace;
  /// returns nullopt when `path` is not a per-process path at all.
  struct PidPath {
    const kernel::Task* task = nullptr;  ///< nullptr = pid not visible
    std::string leaf;
  };
  [[nodiscard]] std::optional<PidPath> resolve_pid_path(
      const std::string& path, const ViewContext& ctx) const;

  const kernel::Host* host_;
  const RaplViewProvider* rapl_provider_ = nullptr;
  std::map<std::string, Generator> files_;
};

}  // namespace cleaks::fs
