// Pseudo-file content generators. Each function renders one file from host
// kernel state given a RenderContext. Generators are *pure*: the same state
// and context always produce the same bytes (the differential analyzer
// depends on this, just as real procfs reads are deterministic snapshots),
// and they never mutate host state — which is what makes concurrent reads
// from the scanner's worker threads safe.
//
// Generators *append* to a caller-provided buffer instead of returning a
// fresh string: the cross-validation scanner reads hundreds of paths per
// pass and reuses one buffer per worker, so the render fast path performs
// no per-line or per-file temporary allocations.
#pragma once

#include <string>
#include <string_view>

#include "fs/view.h"

namespace cleaks::fs::render {

// ---- procfs: leaking channels of Table I ----
void uptime(const RenderContext& ctx, std::string& out);
void version(const RenderContext& ctx, std::string& out);
void stat(const RenderContext& ctx, std::string& out);
void meminfo(const RenderContext& ctx, std::string& out);
void loadavg(const RenderContext& ctx, std::string& out);
void interrupts(const RenderContext& ctx, std::string& out);
void softirqs(const RenderContext& ctx, std::string& out);
void cpuinfo(const RenderContext& ctx, std::string& out);
void schedstat(const RenderContext& ctx, std::string& out);
void zoneinfo(const RenderContext& ctx, std::string& out);
void locks(const RenderContext& ctx, std::string& out);
void timer_list(const RenderContext& ctx, std::string& out);
void sched_debug(const RenderContext& ctx, std::string& out);
void modules(const RenderContext& ctx, std::string& out);
void boot_id(const RenderContext& ctx, std::string& out);
void entropy_avail(const RenderContext& ctx, std::string& out);
void random_poolsize(const RenderContext& ctx, std::string& out);
void fs_file_nr(const RenderContext& ctx, std::string& out);
void fs_inode_nr(const RenderContext& ctx, std::string& out);
void fs_dentry_state(const RenderContext& ctx, std::string& out);
void max_newidle_lb_cost(const RenderContext& ctx, int cpu, int domain,
                         std::string& out);
void ext4_mb_groups(const RenderContext& ctx, std::string& out);

// ---- procfs: properly namespaced files (isolation contrast cases) ----
/// /proc/<pid>/{status,stat,cmdline,sched} for a resolved task. The pid
/// shown is always the viewer's PID-namespace pid.
void pid_file(const RenderContext& ctx, const kernel::Task& task,
              std::string_view leaf, std::string& out);
void self_cgroup(const RenderContext& ctx, std::string& out);
void sys_hostname(const RenderContext& ctx, std::string& out);
void net_dev(const RenderContext& ctx, std::string& out);
void self_status(const RenderContext& ctx, std::string& out);

// ---- sysfs ----
void ifpriomap(const RenderContext& ctx, std::string& out);  ///< case study I bug
void numastat(const RenderContext& ctx, int node, std::string& out);
void node_vmstat(const RenderContext& ctx, int node, std::string& out);
void node_meminfo(const RenderContext& ctx, int node, std::string& out);
void cpuidle_name(const RenderContext& ctx, int cpu, int state,
                  std::string& out);
void cpuidle_usage(const RenderContext& ctx, int cpu, int state,
                   std::string& out);
void cpuidle_time(const RenderContext& ctx, int cpu, int state,
                  std::string& out);
/// sensor 1 = package, sensor k>=2 = core k-2.
void coretemp_input(const RenderContext& ctx, int sensor, std::string& out);
void rapl_domain_name(const RenderContext& ctx, int package,
                      hw::RaplDomainKind domain, std::string& out);
void rapl_energy_uj(const RenderContext& ctx, int package,
                    hw::RaplDomainKind domain, std::string& out);
void rapl_max_energy_range_uj(const RenderContext& ctx, int package,
                              hw::RaplDomainKind domain, std::string& out);

}  // namespace cleaks::fs::render
