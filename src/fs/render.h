// Pseudo-file content generators. Each function renders one file from host
// kernel state given a RenderContext. Generators are *pure*: the same state
// and context always produce the same bytes (the differential analyzer
// depends on this, just as real procfs reads are deterministic snapshots).
#pragma once

#include <string>

#include "fs/view.h"

namespace cleaks::fs::render {

// ---- procfs: leaking channels of Table I ----
std::string uptime(const RenderContext& ctx);
std::string version(const RenderContext& ctx);
std::string stat(const RenderContext& ctx);
std::string meminfo(const RenderContext& ctx);
std::string loadavg(const RenderContext& ctx);
std::string interrupts(const RenderContext& ctx);
std::string softirqs(const RenderContext& ctx);
std::string cpuinfo(const RenderContext& ctx);
std::string schedstat(const RenderContext& ctx);
std::string zoneinfo(const RenderContext& ctx);
std::string locks(const RenderContext& ctx);
std::string timer_list(const RenderContext& ctx);
std::string sched_debug(const RenderContext& ctx);
std::string modules(const RenderContext& ctx);
std::string boot_id(const RenderContext& ctx);
std::string entropy_avail(const RenderContext& ctx);
std::string random_poolsize(const RenderContext& ctx);
std::string fs_file_nr(const RenderContext& ctx);
std::string fs_inode_nr(const RenderContext& ctx);
std::string fs_dentry_state(const RenderContext& ctx);
std::string max_newidle_lb_cost(const RenderContext& ctx, int cpu, int domain);
std::string ext4_mb_groups(const RenderContext& ctx);

// ---- procfs: properly namespaced files (isolation contrast cases) ----
/// /proc/<pid>/{status,stat,cmdline,sched} for a resolved task. The pid
/// shown is always the viewer's PID-namespace pid.
std::string pid_file(const RenderContext& ctx, const kernel::Task& task,
                     const std::string& leaf);
std::string self_cgroup(const RenderContext& ctx);
std::string sys_hostname(const RenderContext& ctx);
std::string net_dev(const RenderContext& ctx);
std::string self_status(const RenderContext& ctx);

// ---- sysfs ----
std::string ifpriomap(const RenderContext& ctx);  ///< case study I bug
std::string numastat(const RenderContext& ctx, int node);
std::string node_vmstat(const RenderContext& ctx, int node);
std::string node_meminfo(const RenderContext& ctx, int node);
std::string cpuidle_name(const RenderContext& ctx, int cpu, int state);
std::string cpuidle_usage(const RenderContext& ctx, int cpu, int state);
std::string cpuidle_time(const RenderContext& ctx, int cpu, int state);
/// sensor 1 = package, sensor k>=2 = core k-2.
std::string coretemp_input(const RenderContext& ctx, int sensor);
std::string rapl_domain_name(const RenderContext& ctx, int package,
                             hw::RaplDomainKind domain);
std::string rapl_energy_uj(const RenderContext& ctx, int package,
                           hw::RaplDomainKind domain);
std::string rapl_max_energy_range_uj(const RenderContext& ctx, int package,
                                     hw::RaplDomainKind domain);

}  // namespace cleaks::fs::render
