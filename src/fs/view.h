// View contexts for pseudo-file rendering.
//
// Every read of a pseudo file happens in an execution context: the host
// context (a root shell on the machine) or a container context (a task in
// the container's namespaces). The paper's detection framework (Fig 1)
// reads the same path in both contexts and diffs the results; generators
// here receive the context so that *namespaced* files can render customized
// kernel data while *leaking* files ignore it — the bug being reproduced.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "hw/rapl.h"
#include "kernel/host.h"
#include "kernel/task.h"

namespace cleaks::fs {

class MaskingPolicy;

/// Abstract provider for the RAPL energy view. The default (nullptr) mirrors
/// stock Linux 4.7: containers read the host's counter — the leakage channel
/// of §III-B case study II. The power-based namespace (src/defense)
/// implements this interface to return per-container modeled energy (§V-B).
class RaplViewProvider {
 public:
  virtual ~RaplViewProvider() = default;

  /// Energy counter (µJ, wrapped) for the domain as seen by `viewer`
  /// (nullptr viewer = host context, which always sees hardware truth).
  [[nodiscard]] virtual std::uint64_t energy_uj(
      const kernel::Host& host, const kernel::Task* viewer, int package,
      hw::RaplDomainKind domain) const = 0;
};

/// The caller-facing read context.
struct ViewContext {
  /// Task performing the read; nullptr = host (init namespaces, no policy).
  const kernel::Task* viewer = nullptr;
  /// Access-control policy applied to containerized viewers (stage-1
  /// defense / per-cloud hardening); nullptr = no masking.
  const MaskingPolicy* policy = nullptr;

  [[nodiscard]] bool is_container() const noexcept {
    return viewer != nullptr && viewer->is_containerized();
  }
};

/// What a generator receives after policy evaluation.
struct RenderContext {
  const kernel::Host& host;
  const kernel::Task* viewer = nullptr;  ///< nullptr = host context
  /// True when policy says this path must present a tenant-scoped view
  /// (the CC5-style partial restriction of Table I).
  bool restricted = false;
  const RaplViewProvider* rapl = nullptr;

  [[nodiscard]] bool is_container() const noexcept {
    return viewer != nullptr && viewer->is_containerized();
  }
  /// Namespace set of the viewer (init set for host context).
  [[nodiscard]] const kernel::NamespaceSet& ns() const noexcept {
    return viewer != nullptr ? viewer->ns : host.init_ns();
  }
};

}  // namespace cleaks::fs
