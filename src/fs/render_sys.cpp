#include <algorithm>

#include "fs/render.h"
#include "util/strings.h"

namespace cleaks::fs::render {

void ifpriomap(const RenderContext& ctx, std::string& out) {
  // Case study I (§III-B1): the read handler of net_prio.ifpriomap calls
  // for_each_netdev_rcu(&init_net, ...) — it iterates the *host's* device
  // list regardless of the reader's NET namespace. We reproduce the bug by
  // rendering the init namespace's devices even for containerized viewers.
  const auto& init_net = *ctx.host.init_ns().net;
  const auto* prio_map =
      ctx.viewer != nullptr && ctx.viewer->cgroup != nullptr
          ? &ctx.viewer->cgroup->net_prio.ifpriomap
          : nullptr;
  for (const auto& device : init_net.devices) {
    int priority = 0;
    if (prio_map != nullptr) {
      if (auto it = prio_map->find(device.name); it != prio_map->end()) {
        priority = it->second;
      }
    }
    strappendf(out, "%s %d\n", device.name.c_str(), priority);
  }
}

void numastat(const RenderContext& ctx, int node, std::string& out) {
  const auto& numa_nodes = ctx.host.state().numa;
  if (node < 0 || static_cast<std::size_t>(node) >= numa_nodes.size()) {
    return;
  }
  const auto& n = numa_nodes[static_cast<std::size_t>(node)];
  strappendf(out,
             "numa_hit %llu\nnuma_miss %llu\nnuma_foreign %llu\n"
             "interleave_hit %llu\nlocal_node %llu\nother_node %llu\n",
             (unsigned long long)n.numa_hit, (unsigned long long)n.numa_miss,
             (unsigned long long)n.numa_foreign,
             (unsigned long long)n.interleave_hit,
             (unsigned long long)n.local_node,
             (unsigned long long)n.other_node);
}

void node_vmstat(const RenderContext& ctx, int node, std::string& out) {
  const auto& ks = ctx.host.state();
  const int nodes = std::max(1, ctx.host.spec().numa_nodes);
  if (node < 0 || node >= nodes) return;
  strappendf(out,
             "nr_free_pages %llu\nnr_active_anon %llu\nnr_inactive_anon %llu\n"
             "nr_dirty %llu\nnr_writeback 0\n",
             (unsigned long long)(ks.mem_free_kb / 4 / nodes),
             (unsigned long long)(ks.active_kb / 4 / nodes),
             (unsigned long long)(ks.inactive_kb / 4 / nodes),
             (unsigned long long)(ks.dirty_kb / 4 / nodes));
}

void node_meminfo(const RenderContext& ctx, int node, std::string& out) {
  const auto& ks = ctx.host.state();
  const int nodes = std::max(1, ctx.host.spec().numa_nodes);
  if (node < 0 || node >= nodes) return;
  strappendf(out,
             "Node %d MemTotal:       %8llu kB\n"
             "Node %d MemFree:        %8llu kB\n"
             "Node %d MemUsed:        %8llu kB\n"
             "Node %d Active:         %8llu kB\n"
             "Node %d Inactive:       %8llu kB\n",
             node, (unsigned long long)(ks.mem_total_kb / nodes), node,
             (unsigned long long)(ks.mem_free_kb / nodes), node,
             (unsigned long long)((ks.mem_total_kb - ks.mem_free_kb) / nodes),
             node, (unsigned long long)(ks.active_kb / nodes), node,
             (unsigned long long)(ks.inactive_kb / nodes));
}

void cpuidle_name(const RenderContext& ctx, int cpu, int state,
                  std::string& out) {
  (void)cpu;
  if (state < 0 || state >= ctx.host.cpuidle().num_states()) return;
  out += ctx.host.cpuidle().state_spec(state).name;
  out += '\n';
}

void cpuidle_usage(const RenderContext& ctx, int cpu, int state,
                   std::string& out) {
  strappendf(out, "%llu\n",
             (unsigned long long)ctx.host.cpuidle().usage(cpu, state));
}

void cpuidle_time(const RenderContext& ctx, int cpu, int state,
                  std::string& out) {
  strappendf(out, "%llu\n",
             (unsigned long long)ctx.host.cpuidle().time_us(cpu, state));
}

void coretemp_input(const RenderContext& ctx, int sensor, std::string& out) {
  const auto& thermal = ctx.host.thermal();
  if (sensor <= 1) {
    // Package sensor: the hottest core.
    std::int64_t max_temp = 0;
    for (int core = 0; core < thermal.num_cores(); ++core) {
      max_temp = std::max(max_temp, thermal.temp_millic(core));
    }
    strappendf(out, "%lld\n", (long long)max_temp);
    return;
  }
  const int core = sensor - 2;
  if (core >= thermal.num_cores()) return;
  strappendf(out, "%lld\n", (long long)thermal.temp_millic(core));
}

void rapl_domain_name(const RenderContext& ctx, int package,
                      hw::RaplDomainKind domain, std::string& out) {
  (void)ctx;
  switch (domain) {
    case hw::RaplDomainKind::kPackage:
      strappendf(out, "package-%d\n", package);
      return;
    case hw::RaplDomainKind::kCore:
      out += "core\n";
      return;
    case hw::RaplDomainKind::kDram:
      out += "dram\n";
      return;
  }
}

void rapl_energy_uj(const RenderContext& ctx, int package,
                    hw::RaplDomainKind domain, std::string& out) {
  // The defense's power-based namespace interposes here; without it the
  // host-wide counter leaks into every container (§III-B case study II).
  if (ctx.rapl != nullptr) {
    strappendf(out, "%llu\n", (unsigned long long)ctx.rapl->energy_uj(
                                  ctx.host, ctx.viewer, package, domain));
    return;
  }
  const auto& packages = ctx.host.rapl();
  if (package < 0 || static_cast<std::size_t>(package) >= packages.size()) {
    return;
  }
  const auto& pkg = packages[static_cast<std::size_t>(package)];
  std::uint64_t value = 0;
  switch (domain) {
    case hw::RaplDomainKind::kPackage:
      value = pkg.package().energy_uj();
      break;
    case hw::RaplDomainKind::kCore:
      value = pkg.core().energy_uj();
      break;
    case hw::RaplDomainKind::kDram:
      value = pkg.dram().energy_uj();
      break;
  }
  strappendf(out, "%llu\n", (unsigned long long)value);
}

void rapl_max_energy_range_uj(const RenderContext& ctx, int package,
                              hw::RaplDomainKind domain, std::string& out) {
  (void)domain;
  const auto& packages = ctx.host.rapl();
  if (package < 0 || static_cast<std::size_t>(package) >= packages.size()) {
    return;
  }
  strappendf(out, "%llu\n",
             (unsigned long long)packages[static_cast<std::size_t>(package)]
                 .package()
                 .max_energy_range_uj());
}

}  // namespace cleaks::fs::render
