#include "fs/masking.h"

#include "util/strings.h"

namespace cleaks::fs {

MaskAction MaskingPolicy::evaluate(std::string_view path) const {
  for (const auto& rule : rules_) {
    if (glob_match(rule.pattern, path)) return rule.action;
  }
  return MaskAction::kAllow;
}

MaskingPolicy MaskingPolicy::docker_default() { return MaskingPolicy{}; }

MaskingPolicy MaskingPolicy::lxcfs_defense() {
  MaskingPolicy policy;
  // Virtualized (tenant-scoped) views — interface preserved, leak closed.
  for (const char* pattern : {
           "/proc/uptime",
           "/proc/loadavg",
           "/proc/meminfo",
           "/proc/cpuinfo",
           "/proc/stat",
           "/proc/schedstat",
           "/proc/timer_list",
           "/proc/sched_debug",
           "/proc/locks",
       }) {
    policy.add_rule(pattern, MaskAction::kRestrict);
  }
  // No per-tenant meaning exists for these: deny.
  for (const char* pattern : {
           "/proc/zoneinfo",
           "/proc/modules",
           "/proc/softirqs",
           "/proc/interrupts",
           "/proc/sys/fs/**",
           "/proc/sys/kernel/random/boot_id",
           "/proc/sys/kernel/sched_domain/**",
           "/proc/fs/ext4/**",
           "/sys/fs/cgroup/net_prio/**",
           "/sys/devices/**",
           "/sys/class/**",
       }) {
    policy.add_rule(pattern, MaskAction::kDeny);
  }
  return policy;
}

MaskingPolicy MaskingPolicy::paper_stage1() {
  MaskingPolicy policy;
  for (const char* pattern : {
           "/proc/locks",
           "/proc/zoneinfo",
           "/proc/modules",
           "/proc/timer_list",
           "/proc/sched_debug",
           "/proc/softirqs",
           "/proc/uptime",
           "/proc/version",
           "/proc/stat",
           "/proc/meminfo",
           "/proc/loadavg",
           "/proc/interrupts",
           "/proc/cpuinfo",
           "/proc/schedstat",
           "/proc/sys/fs/**",
           "/proc/sys/kernel/random/**",
           "/proc/sys/kernel/sched_domain/**",
           "/proc/fs/ext4/**",
           "/sys/fs/cgroup/net_prio/**",
           "/sys/devices/**",
           "/sys/class/**",
       }) {
    policy.add_rule(pattern, MaskAction::kDeny);
  }
  return policy;
}

}  // namespace cleaks::fs
