#include "fs/pseudo_fs.h"

#include "fs/render.h"
#include "util/strings.h"

namespace cleaks::fs {

PseudoFs::PseudoFs(const kernel::Host& host) : host_(&host) {
  register_procfs();
  register_sysfs();
}

void PseudoFs::register_file(std::string path, Generator generator) {
  files_[std::move(path)] = std::move(generator);
}

std::vector<std::string> PseudoFs::list_paths() const {
  std::vector<std::string> paths;
  paths.reserve(files_.size());
  for (const auto& [path, generator] : files_) paths.push_back(path);
  return paths;  // std::map keeps them sorted
}

std::vector<std::string> PseudoFs::list_paths(const ViewContext& ctx) const {
  std::vector<std::string> paths = list_paths();
  const auto& viewer_pid_ns =
      ctx.viewer != nullptr ? ctx.viewer->ns.pid : host_->init_ns().pid;
  const bool init_view = viewer_pid_ns == host_->init_ns().pid;
  for (const auto& task : host_->tasks()) {
    // PID namespaces are hierarchical: the init namespace sees *every*
    // task under its host pid; a container namespace sees only its own.
    if (!init_view && task->ns.pid != viewer_pid_ns) continue;
    const int pid = init_view ? task->host_pid : task->ns_pid;
    for (const char* leaf : {"status", "stat", "cmdline", "sched"}) {
      paths.push_back(strformat("/proc/%d/%s", pid, leaf));
    }
  }
  return paths;
}

std::optional<PseudoFs::PidPath> PseudoFs::resolve_pid_path(
    const std::string& path, const ViewContext& ctx) const {
  if (!starts_with(path, "/proc/")) return std::nullopt;
  const std::string_view tail = std::string_view(path).substr(6);
  const std::size_t slash = tail.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const std::string_view pid_text = tail.substr(0, slash);
  if (pid_text.empty() ||
      pid_text.find_first_not_of("0123456789") != std::string_view::npos) {
    return std::nullopt;
  }
  PidPath resolved;
  resolved.leaf = std::string(tail.substr(slash + 1));
  if (resolved.leaf != "status" && resolved.leaf != "stat" &&
      resolved.leaf != "cmdline" && resolved.leaf != "sched") {
    return std::nullopt;
  }
  const int pid = static_cast<int>(parse_first_int(pid_text));
  // Pid lookup happens inside the viewer's PID namespace. PID namespaces
  // are hierarchical: the init namespace resolves *every* task (container
  // tasks included) by host pid; a container namespace resolves only its
  // own tasks by ns pid.
  const auto& viewer_pid_ns =
      ctx.viewer != nullptr ? ctx.viewer->ns.pid : host_->init_ns().pid;
  const bool init_view = viewer_pid_ns == host_->init_ns().pid;
  for (const auto& task : host_->tasks()) {
    if (!init_view && task->ns.pid != viewer_pid_ns) continue;
    const int visible_pid = init_view ? task->host_pid : task->ns_pid;
    if (visible_pid == pid) {
      resolved.task = task.get();
      return resolved;
    }
  }
  return resolved;  // valid shape, pid not visible => ENOENT
}

Result<std::string> PseudoFs::read(const std::string& path,
                                   const ViewContext& ctx) const {
  RenderContext render_ctx{*host_, ctx.viewer, false, rapl_provider_};
  if (ctx.is_container() && ctx.policy != nullptr) {
    switch (ctx.policy->evaluate(path)) {
      case MaskAction::kDeny:
        return {StatusCode::kPermissionDenied, path};
      case MaskAction::kRestrict:
        render_ctx.restricted = true;
        break;
      case MaskAction::kAllow:
        break;
    }
  }
  if (const auto pid_path = resolve_pid_path(path, ctx)) {
    if (pid_path->task == nullptr) {
      return {StatusCode::kNotFound, path};
    }
    return render::pid_file(render_ctx, *pid_path->task, pid_path->leaf);
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    return {StatusCode::kNotFound, path};
  }
  return it->second(render_ctx);
}

void PseudoFs::register_procfs() {
  using namespace render;
  register_file("/proc/uptime", uptime);
  register_file("/proc/version", version);
  register_file("/proc/stat", stat);
  register_file("/proc/meminfo", meminfo);
  register_file("/proc/loadavg", loadavg);
  register_file("/proc/interrupts", interrupts);
  register_file("/proc/softirqs", softirqs);
  register_file("/proc/cpuinfo", cpuinfo);
  register_file("/proc/schedstat", schedstat);
  register_file("/proc/zoneinfo", zoneinfo);
  register_file("/proc/locks", locks);
  register_file("/proc/timer_list", timer_list);
  register_file("/proc/sched_debug", sched_debug);
  register_file("/proc/modules", modules);
  register_file("/proc/sys/kernel/random/boot_id", boot_id);
  register_file("/proc/sys/kernel/random/entropy_avail", entropy_avail);
  register_file("/proc/sys/kernel/random/poolsize", random_poolsize);
  register_file("/proc/sys/fs/file-nr", fs_file_nr);
  register_file("/proc/sys/fs/inode-nr", fs_inode_nr);
  register_file("/proc/sys/fs/dentry-state", fs_dentry_state);
  register_file("/proc/fs/ext4/sda1/mb_groups", ext4_mb_groups);
  for (int cpu = 0; cpu < host_->spec().num_cores; ++cpu) {
    for (int domain = 0; domain < 2; ++domain) {
      register_file(
          strformat("/proc/sys/kernel/sched_domain/cpu%d/domain%d/"
                    "max_newidle_lb_cost",
                    cpu, domain),
          [cpu, domain](const RenderContext& ctx) {
            return max_newidle_lb_cost(ctx, cpu, domain);
          });
    }
  }
  // Properly namespaced files: contrast cases the detector must classify
  // as isolated, not leaking.
  register_file("/proc/self/cgroup", self_cgroup);
  register_file("/proc/sys/kernel/hostname", sys_hostname);
  register_file("/proc/net/dev", net_dev);
  register_file("/proc/self/status", self_status);
}

void PseudoFs::register_sysfs() {
  using namespace render;
  const auto& spec = host_->spec();

  register_file("/sys/fs/cgroup/net_prio/net_prio.ifpriomap", ifpriomap);

  const int nodes = std::max(1, spec.numa_nodes);
  for (int node = 0; node < nodes; ++node) {
    register_file(strformat("/sys/devices/system/node/node%d/numastat", node),
                  [node](const RenderContext& ctx) {
                    return numastat(ctx, node);
                  });
    register_file(strformat("/sys/devices/system/node/node%d/vmstat", node),
                  [node](const RenderContext& ctx) {
                    return node_vmstat(ctx, node);
                  });
    register_file(strformat("/sys/devices/system/node/node%d/meminfo", node),
                  [node](const RenderContext& ctx) {
                    return node_meminfo(ctx, node);
                  });
  }

  const int idle_states = static_cast<int>(spec.cpuidle_states.size());
  for (int cpu = 0; cpu < spec.num_cores; ++cpu) {
    for (int state = 0; state < idle_states; ++state) {
      const std::string base =
          strformat("/sys/devices/system/cpu/cpu%d/cpuidle/state%d", cpu, state);
      register_file(base + "/name", [cpu, state](const RenderContext& ctx) {
        return cpuidle_name(ctx, cpu, state);
      });
      register_file(base + "/usage", [cpu, state](const RenderContext& ctx) {
        return cpuidle_usage(ctx, cpu, state);
      });
      register_file(base + "/time", [cpu, state](const RenderContext& ctx) {
        return cpuidle_time(ctx, cpu, state);
      });
    }
  }

  if (spec.has_coretemp) {
    // Sensor 1 = package, sensors 2..N+1 = per core.
    for (int sensor = 1; sensor <= spec.num_cores + 1; ++sensor) {
      register_file(
          strformat(
              "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp%d_input",
              sensor),
          [sensor](const RenderContext& ctx) {
            return coretemp_input(ctx, sensor);
          });
    }
  }

  if (spec.has_rapl) {
    for (int pkg = 0; pkg < spec.num_packages; ++pkg) {
      const std::string pkg_base =
          strformat("/sys/class/powercap/intel-rapl:%d", pkg);
      register_file(pkg_base + "/name", [pkg](const RenderContext& ctx) {
        return rapl_domain_name(ctx, pkg, hw::RaplDomainKind::kPackage);
      });
      register_file(pkg_base + "/energy_uj", [pkg](const RenderContext& ctx) {
        return rapl_energy_uj(ctx, pkg, hw::RaplDomainKind::kPackage);
      });
      register_file(pkg_base + "/max_energy_range_uj",
                    [pkg](const RenderContext& ctx) {
                      return rapl_max_energy_range_uj(
                          ctx, pkg, hw::RaplDomainKind::kPackage);
                    });
      // Subdomain 0: core (PP0); subdomain 1: dram.
      struct SubDomain {
        int index;
        hw::RaplDomainKind kind;
      };
      std::vector<SubDomain> subdomains = {{0, hw::RaplDomainKind::kCore}};
      if (spec.has_dram_rapl) {
        subdomains.push_back({1, hw::RaplDomainKind::kDram});
      }
      for (const auto& sub : subdomains) {
        const std::string sub_base =
            strformat("%s/intel-rapl:%d:%d", pkg_base.c_str(), pkg, sub.index);
        const auto kind = sub.kind;
        register_file(sub_base + "/name", [pkg, kind](const RenderContext& ctx) {
          return rapl_domain_name(ctx, pkg, kind);
        });
        register_file(sub_base + "/energy_uj",
                      [pkg, kind](const RenderContext& ctx) {
                        return rapl_energy_uj(ctx, pkg, kind);
                      });
        register_file(sub_base + "/max_energy_range_uj",
                      [pkg, kind](const RenderContext& ctx) {
                        return rapl_max_energy_range_uj(ctx, pkg, kind);
                      });
      }
    }
  }
}

}  // namespace cleaks::fs
