#include "fs/pseudo_fs.h"

#include <algorithm>
#include <bit>
#include <mutex>

#include "faults/injector.h"
#include "fs/render.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace cleaks::fs {
namespace {

// Pseudo-fs telemetry. Every value counts reads/renders that the simulation
// performs deterministically (the same set of reads happens at every thread
// count, and the cache is locked per file), so these stay Scope::kSim.
//
// Invariant: none of these counters fire on an *uncacheable* static-path
// render — /proc/containerleaks renders the registry that contains them,
// and a read that bumped a counter appearing in its own output would never
// produce the same bytes twice (RenderCache.ReadIntoMatchesRead pins
// exactly that stability).
struct FsMetrics {
  obs::Counter& cache_hits = obs::Registry::global().counter(
      "fs_render_cache_hits_total", "host-context renders served from cache");
  obs::Counter& cache_misses = obs::Registry::global().counter(
      "fs_render_cache_misses_total", "host-context renders that ran the generator");
  obs::Counter& cache_invalidations = obs::Registry::global().counter(
      "fs_render_cache_invalidations_total",
      "cached bytes discarded as stale (tick / task table / epoch change)");
  obs::Counter& viewer_hits = obs::Registry::global().counter(
      "fs_viewer_cache_hits_total",
      "container-context renders served from a viewer slot");
  obs::Counter& viewer_misses = obs::Registry::global().counter(
      "fs_viewer_cache_misses_total",
      "container-context renders that ran the generator");
  obs::Counter& viewer_invalidations = obs::Registry::global().counter(
      "fs_viewer_cache_invalidations_total",
      "viewer slots discarded as stale (generation / epoch / fingerprint / "
      "mask flip) or evicted");
  obs::Counter& pid_renders = obs::Registry::global().counter(
      "fs_pid_renders_total", "dynamic /proc/<pid>/* renders");
  obs::Counter& reads_denied = obs::Registry::global().counter(
      "fs_reads_denied_total", "reads rejected by the masking policy");

  static FsMetrics& get() {
    static FsMetrics metrics;
    return metrics;
  }
};

// FNV-1a accumulators for the viewer fingerprint.
constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix_u64(std::uint64_t& h, std::uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
}

void mix_bytes(std::uint64_t& h, std::string_view bytes) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
}

}  // namespace

PseudoFs::PseudoFs(const kernel::Host& host) : host_(&host) {
  files_.reserve(512);
  register_procfs();
  register_sysfs();
  register_telemetry();
}

void PseudoFs::register_file(std::string path, Generator generator,
                             CacheMode mode) {
  auto it = std::lower_bound(
      files_.begin(), files_.end(), std::string_view(path),
      [](const FileEntry& entry, std::string_view p) {
        return entry.path < p;
      });
  ++render_epoch_;
  if (it != files_.end() && it->path == path) {
    it->generator = std::move(generator);
    it->cacheable = mode == CacheMode::kCacheable;
    return;
  }
  FileEntry entry;
  entry.path = std::move(path);
  entry.generator = std::move(generator);
  entry.cacheable = mode == CacheMode::kCacheable;
  entry.cache = std::make_unique<RenderCache>();
  files_.insert(it, std::move(entry));
}

const PseudoFs::FileEntry* PseudoFs::find_entry(std::string_view path) const {
  auto it = std::lower_bound(
      files_.begin(), files_.end(), path,
      [](const FileEntry& entry, std::string_view p) {
        return entry.path < p;
      });
  if (it == files_.end() || it->path != path) return nullptr;
  return &*it;
}

std::vector<std::string> PseudoFs::list_paths() const {
  std::vector<std::string> paths;
  paths.reserve(files_.size());
  for (const auto& entry : files_) paths.push_back(entry.path);
  return paths;  // files_ is kept sorted
}

std::vector<std::string> PseudoFs::list_paths(const ViewContext& ctx) const {
  std::vector<std::string> paths = list_paths();
  const auto& viewer_pid_ns =
      ctx.viewer != nullptr ? ctx.viewer->ns.pid : host_->init_ns().pid;
  const bool init_view = viewer_pid_ns == host_->init_ns().pid;
  for (const auto& task : host_->tasks()) {
    // PID namespaces are hierarchical: the init namespace sees *every*
    // task under its host pid; a container namespace sees only its own.
    if (!init_view && task->ns.pid != viewer_pid_ns) continue;
    const int pid = init_view ? task->host_pid : task->ns_pid;
    for (const char* leaf : {"status", "stat", "cmdline", "sched"}) {
      paths.push_back(strformat("/proc/%d/%s", pid, leaf));
    }
  }
  return paths;
}

std::optional<PseudoFs::PidPath> PseudoFs::resolve_pid_path(
    std::string_view path, const ViewContext& ctx) const {
  if (!starts_with(path, "/proc/")) return std::nullopt;
  const std::string_view tail = path.substr(6);
  const std::size_t slash = tail.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const std::string_view pid_text = tail.substr(0, slash);
  if (pid_text.empty() ||
      pid_text.find_first_not_of("0123456789") != std::string_view::npos) {
    return std::nullopt;
  }
  PidPath resolved;
  resolved.leaf = tail.substr(slash + 1);
  if (resolved.leaf != "status" && resolved.leaf != "stat" &&
      resolved.leaf != "cmdline" && resolved.leaf != "sched") {
    return std::nullopt;
  }
  const int pid = static_cast<int>(parse_first_int(pid_text));
  // Pid lookup happens inside the viewer's PID namespace. PID namespaces
  // are hierarchical: the init namespace resolves *every* task (container
  // tasks included) by host pid; a container namespace resolves only its
  // own tasks by ns pid.
  const auto& viewer_pid_ns =
      ctx.viewer != nullptr ? ctx.viewer->ns.pid : host_->init_ns().pid;
  const bool init_view = viewer_pid_ns == host_->init_ns().pid;
  for (const auto& task : host_->tasks()) {
    if (!init_view && task->ns.pid != viewer_pid_ns) continue;
    const int visible_pid = init_view ? task->host_pid : task->ns_pid;
    if (visible_pid == pid) {
      resolved.task = task.get();
      return resolved;
    }
  }
  return resolved;  // valid shape, pid not visible => ENOENT
}

Result<std::string> PseudoFs::read(std::string_view path,
                                   const ViewContext& ctx) const {
  std::string out;
  const StatusCode code = read_into(path, ctx, out);
  if (code != StatusCode::kOk) return {code, std::string(path)};
  return out;
}

StatusCode PseudoFs::read_into(std::string_view path, const ViewContext& ctx,
                               std::string& out) const {
  out.clear();
  RenderContext render_ctx{*host_, ctx.viewer, false, rapl_provider_};
  if (ctx.is_container() && ctx.policy != nullptr) {
    switch (ctx.policy->evaluate(path)) {
      case MaskAction::kDeny:
        FsMetrics::get().reads_denied.inc();
        return StatusCode::kPermissionDenied;
      case MaskAction::kRestrict:
        render_ctx.restricted = true;
        break;
      case MaskAction::kAllow:
        break;
    }
  }
  // Injected faults fire only for container-context reads of *existing*
  // paths (existence is checked first so kNotFound/kAbsent classification
  // never depends on the fault schedule). The injector's verdict is a pure
  // function of (path, sim time): safe under concurrent scan workers.
  const auto injected_fault = [&]() -> StatusCode {
    if (fault_injector_ == nullptr || !ctx.is_container()) {
      return StatusCode::kOk;
    }
    return fault_injector_->read_fault(path, host_->now());
  };
  if (const auto pid_path = resolve_pid_path(path, ctx)) {
    if (pid_path->task == nullptr) {
      return StatusCode::kNotFound;
    }
    if (const StatusCode fault = injected_fault(); fault != StatusCode::kOk) {
      return fault;
    }
    FsMetrics::get().pid_renders.inc();
    render::pid_file(render_ctx, *pid_path->task, pid_path->leaf, out);
    return StatusCode::kOk;
  }
  const FileEntry* entry = find_entry(path);
  if (entry == nullptr) {
    return StatusCode::kNotFound;
  }
  if (const StatusCode fault = injected_fault(); fault != StatusCode::kOk) {
    return fault;
  }
  // Host-context renders (no viewer, no restriction) depend only on host
  // state, so their bytes are served from the per-tick cache. Container
  // renders are memoized per viewer in the same cache's viewer slots —
  // unless the path is covered by a fault rule, in which case every read
  // must reach the injector's sim-time-windowed draw (the fault above fired
  // *this* read; the next one re-draws). kUncacheable files always render
  // (their generators read state the host generation doesn't track).
  if (entry->cacheable) {
    if (render_ctx.viewer == nullptr && !render_ctx.restricted) {
      return read_host_cached(*entry, render_ctx, out);
    }
    if (ctx.is_container() && ctx.viewer->ns.pid != nullptr &&
        (fault_injector_ == nullptr || !fault_injector_->covers(path))) {
      return read_viewer_cached(*entry, render_ctx, out);
    }
  }
  entry->generator(render_ctx, out);
  return StatusCode::kOk;
}

StatusCode PseudoFs::read_host_cached(const FileEntry& entry,
                                      const RenderContext& render_ctx,
                                      std::string& out) const {
  auto& metrics = FsMetrics::get();
  RenderCache& cache = *entry.cache;
  const std::uint64_t generation = host_->state_generation();
  const auto fresh = [&] {
    return cache.valid && cache.host_generation == generation &&
           cache.render_epoch == render_epoch_;
  };
  {
    std::shared_lock<std::shared_mutex> lock(cache.mu);
    if (fresh()) {
      metrics.cache_hits.inc();
      out.append(cache.bytes);
      return StatusCode::kOk;
    }
  }
  std::unique_lock<std::shared_mutex> lock(cache.mu);
  if (fresh()) {  // a racer filled between the lock upgrade: count a hit
    metrics.cache_hits.inc();
  } else {
    if (cache.valid) metrics.cache_invalidations.inc();
    metrics.cache_misses.inc();
    cache.bytes.clear();
    entry.generator(render_ctx, cache.bytes);
    cache.host_generation = generation;
    cache.render_epoch = render_epoch_;
    cache.valid = true;
  }
  out.append(cache.bytes);
  return StatusCode::kOk;
}

StatusCode PseudoFs::read_viewer_cached(const FileEntry& entry,
                                        const RenderContext& render_ctx,
                                        std::string& out) const {
  auto& metrics = FsMetrics::get();
  RenderCache& cache = *entry.cache;
  const std::uint64_t key = render_ctx.viewer->ns.pid->id;
  const std::uint64_t generation = host_->state_generation();
  const std::uint64_t fingerprint =
      viewer_state_fingerprint(*render_ctx.viewer);
  const auto fresh = [&](const ViewerSlot& slot) {
    return slot.valid && slot.host_generation == generation &&
           slot.render_epoch == render_epoch_ &&
           slot.view_fingerprint == fingerprint &&
           slot.restricted == render_ctx.restricted;
  };
  {
    std::shared_lock<std::shared_mutex> lock(cache.mu);
    for (const ViewerSlot& slot : cache.viewers) {
      if (slot.viewer_key != key) continue;
      if (fresh(slot)) {
        metrics.viewer_hits.inc();
        out.append(slot.bytes);
        return StatusCode::kOk;
      }
      break;
    }
  }
  std::unique_lock<std::shared_mutex> lock(cache.mu);
  ViewerSlot* slot = nullptr;
  for (ViewerSlot& candidate : cache.viewers) {
    if (candidate.viewer_key == key) {
      slot = &candidate;
      break;
    }
  }
  if (slot != nullptr && fresh(*slot)) {
    // A racer filled between the lock upgrade: a (key, generation) fill
    // happens exactly once, so hit/miss totals stay race-independent.
    metrics.viewer_hits.inc();
    out.append(slot->bytes);
    return StatusCode::kOk;
  }
  if (slot == nullptr) {
    if (cache.viewers.size() < kMaxViewerSlots) {
      slot = &cache.viewers.emplace_back();
      slot->viewer_key = key;
    } else {
      // Deterministic eviction: PID-namespace ids are monotonic, so the
      // smallest resident key is the oldest incarnation. An incoming key
      // smaller than every resident renders uncached — either way the
      // resident set converges to the same top-N newest incarnations
      // regardless of read interleaving.
      ViewerSlot* oldest = &cache.viewers.front();
      for (ViewerSlot& candidate : cache.viewers) {
        if (candidate.viewer_key < oldest->viewer_key) oldest = &candidate;
      }
      if (oldest->viewer_key > key) {
        metrics.viewer_misses.inc();
        entry.generator(render_ctx, out);
        return StatusCode::kOk;
      }
      metrics.viewer_invalidations.inc();
      *oldest = ViewerSlot{};
      oldest->viewer_key = key;
      slot = oldest;
    }
  } else if (slot->valid) {
    metrics.viewer_invalidations.inc();  // stale bytes being replaced
  }
  metrics.viewer_misses.inc();
  slot->bytes.clear();
  entry.generator(render_ctx, slot->bytes);
  slot->host_generation = generation;
  slot->render_epoch = render_epoch_;
  slot->view_fingerprint = fingerprint;
  slot->restricted = render_ctx.restricted;
  slot->valid = true;
  out.append(slot->bytes);
  return StatusCode::kOk;
}

bool PseudoFs::cache_eligible(std::string_view path) const {
  const FileEntry* entry = find_entry(path);
  if (entry == nullptr || !entry->cacheable) return false;
  return fault_injector_ == nullptr || !fault_injector_->covers(path);
}

void PseudoFs::drop_viewer_entries(std::uint64_t viewer_pid_ns) const {
  for (const FileEntry& entry : files_) {
    RenderCache& cache = *entry.cache;
    std::unique_lock<std::shared_mutex> lock(cache.mu);
    auto& slots = cache.viewers;
    slots.erase(std::remove_if(slots.begin(), slots.end(),
                               [&](const ViewerSlot& slot) {
                                 return slot.viewer_key == viewer_pid_ns;
                               }),
                slots.end());
  }
}

std::uint64_t PseudoFs::viewer_state_fingerprint(const kernel::Task& viewer) {
  std::uint64_t h = kFnvOffset;
  const kernel::NamespaceSet& ns = viewer.ns;
  mix_u64(h, ns.pid != nullptr ? ns.pid->id : 0);
  mix_u64(h, ns.uts != nullptr ? ns.uts->id : 0);
  mix_u64(h, ns.net != nullptr ? ns.net->id : 0);
  mix_u64(h, ns.ipc != nullptr ? ns.ipc->id : 0);
  mix_u64(h, ns.mnt != nullptr ? ns.mnt->id : 0);
  mix_u64(h, ns.user != nullptr ? ns.user->id : 0);
  mix_u64(h, ns.cgroup != nullptr ? ns.cgroup->id : 0);
  mix_u64(h, static_cast<std::uint64_t>(viewer.host_pid));
  mix_u64(h, static_cast<std::uint64_t>(viewer.start_time));
  if (viewer.cgroup != nullptr) {
    const kernel::Cgroup& cg = *viewer.cgroup;
    mix_bytes(h, cg.path());
    mix_u64(h, cg.memory.limit_bytes);
    mix_u64(h, cg.memory.usage_bytes);
    mix_u64(h, std::bit_cast<std::uint64_t>(cg.cpu_quota));
    mix_u64(h, cg.cpuset.cpus.size());
    for (int cpu : cg.cpuset.cpus) {
      mix_u64(h, static_cast<std::uint64_t>(cpu));
    }
    mix_u64(h, cg.net_prio.ifpriomap.size());
    for (const auto& [device, priority] : cg.net_prio.ifpriomap) {
      mix_bytes(h, device);
      mix_u64(h, static_cast<std::uint64_t>(priority));
    }
  }
  return h;
}

void PseudoFs::register_procfs() {
  using namespace render;
  register_file("/proc/uptime", uptime);
  register_file("/proc/version", version);
  register_file("/proc/stat", stat);
  register_file("/proc/meminfo", meminfo);
  register_file("/proc/loadavg", loadavg);
  register_file("/proc/interrupts", interrupts);
  register_file("/proc/softirqs", softirqs);
  register_file("/proc/cpuinfo", cpuinfo);
  register_file("/proc/schedstat", schedstat);
  register_file("/proc/zoneinfo", zoneinfo);
  register_file("/proc/locks", locks);
  register_file("/proc/timer_list", timer_list);
  register_file("/proc/sched_debug", sched_debug);
  register_file("/proc/modules", modules);
  register_file("/proc/sys/kernel/random/boot_id", boot_id);
  register_file("/proc/sys/kernel/random/entropy_avail", entropy_avail);
  register_file("/proc/sys/kernel/random/poolsize", random_poolsize);
  register_file("/proc/sys/fs/file-nr", fs_file_nr);
  register_file("/proc/sys/fs/inode-nr", fs_inode_nr);
  register_file("/proc/sys/fs/dentry-state", fs_dentry_state);
  register_file("/proc/fs/ext4/sda1/mb_groups", ext4_mb_groups);
  for (int cpu = 0; cpu < host_->spec().num_cores; ++cpu) {
    for (int domain = 0; domain < 2; ++domain) {
      register_file(
          strformat("/proc/sys/kernel/sched_domain/cpu%d/domain%d/"
                    "max_newidle_lb_cost",
                    cpu, domain),
          [cpu, domain](const RenderContext& ctx, std::string& out) {
            max_newidle_lb_cost(ctx, cpu, domain, out);
          });
    }
  }
  // Properly namespaced files: contrast cases the detector must classify
  // as isolated, not leaking.
  register_file("/proc/self/cgroup", self_cgroup);
  register_file("/proc/sys/kernel/hostname", sys_hostname);
  register_file("/proc/net/dev", net_dev);
  register_file("/proc/self/status", self_status);
}

void PseudoFs::register_sysfs() {
  using namespace render;
  const auto& spec = host_->spec();

  register_file("/sys/fs/cgroup/net_prio/net_prio.ifpriomap", ifpriomap);

  const int nodes = std::max(1, spec.numa_nodes);
  for (int node = 0; node < nodes; ++node) {
    register_file(strformat("/sys/devices/system/node/node%d/numastat", node),
                  [node](const RenderContext& ctx, std::string& out) {
                    numastat(ctx, node, out);
                  });
    register_file(strformat("/sys/devices/system/node/node%d/vmstat", node),
                  [node](const RenderContext& ctx, std::string& out) {
                    node_vmstat(ctx, node, out);
                  });
    register_file(strformat("/sys/devices/system/node/node%d/meminfo", node),
                  [node](const RenderContext& ctx, std::string& out) {
                    node_meminfo(ctx, node, out);
                  });
  }

  const int idle_states = static_cast<int>(spec.cpuidle_states.size());
  for (int cpu = 0; cpu < spec.num_cores; ++cpu) {
    for (int state = 0; state < idle_states; ++state) {
      const std::string base =
          strformat("/sys/devices/system/cpu/cpu%d/cpuidle/state%d", cpu, state);
      register_file(base + "/name",
                    [cpu, state](const RenderContext& ctx, std::string& out) {
                      cpuidle_name(ctx, cpu, state, out);
                    });
      register_file(base + "/usage",
                    [cpu, state](const RenderContext& ctx, std::string& out) {
                      cpuidle_usage(ctx, cpu, state, out);
                    });
      register_file(base + "/time",
                    [cpu, state](const RenderContext& ctx, std::string& out) {
                      cpuidle_time(ctx, cpu, state, out);
                    });
    }
  }

  if (spec.has_coretemp) {
    // Sensor 1 = package, sensors 2..N+1 = per core.
    for (int sensor = 1; sensor <= spec.num_cores + 1; ++sensor) {
      register_file(
          strformat(
              "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp%d_input",
              sensor),
          [sensor](const RenderContext& ctx, std::string& out) {
            coretemp_input(ctx, sensor, out);
          });
    }
  }

  if (spec.has_rapl) {
    for (int pkg = 0; pkg < spec.num_packages; ++pkg) {
      const std::string pkg_base =
          strformat("/sys/class/powercap/intel-rapl:%d", pkg);
      register_file(pkg_base + "/name",
                    [pkg](const RenderContext& ctx, std::string& out) {
                      rapl_domain_name(ctx, pkg, hw::RaplDomainKind::kPackage,
                                       out);
                    });
      register_file(pkg_base + "/energy_uj",
                    [pkg](const RenderContext& ctx, std::string& out) {
                      rapl_energy_uj(ctx, pkg, hw::RaplDomainKind::kPackage,
                                     out);
                    });
      register_file(pkg_base + "/max_energy_range_uj",
                    [pkg](const RenderContext& ctx, std::string& out) {
                      rapl_max_energy_range_uj(
                          ctx, pkg, hw::RaplDomainKind::kPackage, out);
                    });
      // Subdomain 0: core (PP0); subdomain 1: dram.
      struct SubDomain {
        int index;
        hw::RaplDomainKind kind;
      };
      std::vector<SubDomain> subdomains = {{0, hw::RaplDomainKind::kCore}};
      if (spec.has_dram_rapl) {
        subdomains.push_back({1, hw::RaplDomainKind::kDram});
      }
      for (const auto& sub : subdomains) {
        const std::string sub_base =
            strformat("%s/intel-rapl:%d:%d", pkg_base.c_str(), pkg, sub.index);
        const auto kind = sub.kind;
        register_file(sub_base + "/name",
                      [pkg, kind](const RenderContext& ctx, std::string& out) {
                        rapl_domain_name(ctx, pkg, kind, out);
                      });
        register_file(sub_base + "/energy_uj",
                      [pkg, kind](const RenderContext& ctx, std::string& out) {
                        rapl_energy_uj(ctx, pkg, kind, out);
                      });
        register_file(sub_base + "/max_energy_range_uj",
                      [pkg, kind](const RenderContext& ctx, std::string& out) {
                        rapl_max_energy_range_uj(ctx, pkg, kind, out);
                      });
      }
    }
  }
}

void PseudoFs::register_telemetry() {
  // The simulator's own telemetry, exposed the way the paper says kernel
  // telemetry *should* be exposed: the host context reads the full
  // Prometheus-rendered registry, a containerized (or restricted) viewer
  // gets a tenant-scoped stub that carries no host-coupled numbers. The
  // container view is byte-stable under host load, so CrossValidator::scan
  // classifies the file NAMESPACED — the contrast case to Table I.
  //
  // kUncacheable: the registry mutates without bumping the host state
  // generation, so memoized bytes would go stale. The render itself must
  // not touch any counter (see FsMetrics) or two quiescent reads would
  // disagree.
  register_file(
      "/proc/containerleaks",
      [](const RenderContext& ctx, std::string& out) {
        if (ctx.viewer == nullptr && !ctx.restricted) {
          out += "# cleaks telemetry: host view\n";
          out += obs::to_prometheus(obs::Registry::global().snapshot());
          return;
        }
        // Tenant-scoped view: identity only, never host metrics.
        out += "# cleaks telemetry: namespaced view\n";
        out += "# container: ";
        out += ctx.viewer != nullptr ? ctx.viewer->container_id : "unknown";
        out += "\n# host metrics are not visible from this namespace\n";
      },
      CacheMode::kUncacheable);
}

}  // namespace cleaks::fs
