// Stage-1 defense: access-control masking of pseudo files (§V-A).
//
// A MaskingPolicy is an ordered rule list (first match wins) mapping path
// globs to actions, the way AppArmor profiles or read-only bind mounts are
// used by container runtimes and cloud providers. kDeny returns EACCES;
// kRestrict makes the generator render a tenant-scoped view (the partial
// behaviour the paper observed on CC5 and marks ◐ in Table I).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cleaks::fs {

enum class MaskAction { kAllow, kDeny, kRestrict };

struct MaskRule {
  std::string pattern;  ///< AppArmor-style glob ('*' per segment, '**' deep)
  MaskAction action = MaskAction::kAllow;
};

class MaskingPolicy {
 public:
  MaskingPolicy() = default;
  explicit MaskingPolicy(std::vector<MaskRule> rules)
      : rules_(std::move(rules)) {}

  void add_rule(std::string pattern, MaskAction action) {
    rules_.push_back({std::move(pattern), action});
  }

  /// First matching rule's action; kAllow when nothing matches.
  [[nodiscard]] MaskAction evaluate(std::string_view path) const;

  [[nodiscard]] const std::vector<MaskRule>& rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] bool empty() const noexcept { return rules_.empty(); }

  /// Stock Docker/LXC policy of 2016: everything under procfs/sysfs is
  /// readable — the situation Table I documents.
  static MaskingPolicy docker_default();

  /// The paper's stage-1 recommendation: deny every channel in Table I.
  static MaskingPolicy paper_stage1();

  /// lxcfs-style "stage 1.5": keep the interfaces *functional* but
  /// virtualize their contents per tenant — container-scoped uptime,
  /// loadavg, meminfo, cpuinfo, stat, schedstat and tenant-filtered
  /// timer_list/sched_debug/locks; outright denial only for the channels
  /// that have no per-tenant meaning (boot_id, interrupts, zoneinfo, the
  /// /sys trees). The middle ground §V-A alludes to when it warns that
  /// plain masking "may add restrictions for the functionality".
  static MaskingPolicy lxcfs_defense();

 private:
  std::vector<MaskRule> rules_;
};

}  // namespace cleaks::fs
