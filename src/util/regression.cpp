#include "util/regression.h"

#include <cmath>

#include "util/stats.h"

namespace cleaks {

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double sum = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) sum += at(r, i) * at(r, j);
      g.at(i, j) = sum;
      g.at(j, i) = sum;
    }
  }
  return g;
}

std::vector<double> Matrix::transpose_times(std::span<const double> y) const {
  std::vector<double> out(cols_, 0.0);
  for (std::size_t c = 0; c < cols_; ++c) {
    double sum = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) sum += at(r, c) * y[r];
    out[c] = sum;
  }
  return out;
}

Result<std::vector<double>> cholesky_solve(const Matrix& s, std::span<const double> b) {
  const std::size_t n = s.rows();
  if (n != s.cols() || b.size() != n) {
    return {StatusCode::kInvalidArgument, "cholesky_solve: shape mismatch"};
  }
  // Decompose S = L * L^T.
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = s.at(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l.at(i, k) * l.at(j, k);
      if (i == j) {
        if (sum <= 0.0 || !std::isfinite(sum)) {
          return {StatusCode::kInvalidArgument,
                  "cholesky_solve: matrix not positive definite"};
        }
        l.at(i, i) = std::sqrt(sum);
      } else {
        l.at(i, j) = sum / l.at(j, j);
      }
    }
  }
  // Forward substitution: L z = b.
  std::vector<double> z(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l.at(i, k) * z[k];
    z[i] = sum / l.at(i, i);
  }
  // Back substitution: L^T x = z.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = z[ii];
    for (std::size_t k = ii + 1; k < n; ++k) sum -= l.at(k, ii) * x[k];
    x[ii] = sum / l.at(ii, ii);
  }
  return x;
}

double LinearModel::predict(std::span<const double> features) const {
  double y = 0.0;
  const std::size_t n = std::min(features.size(), coefficients.size());
  for (std::size_t i = 0; i < n; ++i) y += coefficients[i] * features[i];
  return y;
}

Result<LinearModel> fit_ols(const std::vector<std::vector<double>>& features,
                            std::span<const double> y, double ridge) {
  if (features.empty() || features.size() != y.size()) {
    return {StatusCode::kInvalidArgument, "fit_ols: empty or mismatched data"};
  }
  const std::size_t n_obs = features.size();
  const std::size_t n_feat = features.front().size();
  if (n_feat == 0 || n_obs < n_feat) {
    return {StatusCode::kInvalidArgument, "fit_ols: underdetermined system"};
  }
  Matrix design(n_obs, n_feat);
  for (std::size_t r = 0; r < n_obs; ++r) {
    if (features[r].size() != n_feat) {
      return {StatusCode::kInvalidArgument, "fit_ols: ragged feature rows"};
    }
    for (std::size_t c = 0; c < n_feat; ++c) design.at(r, c) = features[r][c];
  }
  Matrix gram = design.gram();
  // Numerical-guard ridge, scaled to each feature's own magnitude so that
  // features of wildly different scale (instruction counts vs. a seconds
  // intercept) are damped proportionally, not crushed by the largest one.
  for (std::size_t i = 0; i < n_feat; ++i) {
    gram.at(i, i) += ridge * (gram.at(i, i) > 0 ? gram.at(i, i) : 1.0);
  }
  auto rhs = design.transpose_times(y);
  auto solved = cholesky_solve(gram, rhs);
  if (!solved.is_ok()) return solved.status();

  LinearModel model;
  model.coefficients = std::move(solved).value();
  std::vector<double> predicted(n_obs, 0.0);
  RunningStats residuals;
  for (std::size_t r = 0; r < n_obs; ++r) {
    predicted[r] = model.predict(features[r]);
    residuals.add(y[r] - predicted[r]);
  }
  model.r2 = r_squared(y, predicted);
  model.residual_std = residuals.stddev();
  return model;
}

}  // namespace cleaks
