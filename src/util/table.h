// Plain-text table and CSV emission for the benchmark harness. Every bench
// prints the rows/series its paper table or figure reports; TablePrinter
// keeps that output aligned and diff-friendly.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace cleaks {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; must have the same arity as the headers.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns and a header separator.
  [[nodiscard]] std::string to_string() const;
  /// Render as CSV (quoted only when needed).
  [[nodiscard]] std::string to_csv() const;

  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed decimals (helper for bench rows).
std::string fixed(double value, int decimals);

}  // namespace cleaks
