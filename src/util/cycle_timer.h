// Cycle-honest microbench timing (the serenity core/time.h tsc idiom).
//
// Wall-clock timers hide the cost structure of sub-microsecond kernels
// behind scheduler noise and clock_gettime overhead; the TSC read is ~20
// cycles and monotonic within a core. read_cycle_counter() compiles to
// rdtsc on x86; elsewhere (and that includes any container without a
// stable invariant TSC story) it falls back to steady_clock nanoseconds,
// so "cycles" then means "nanoseconds" — calibrate_cycles_per_second()
// reports the actual unit so bench envelopes stay honest about which
// source they measured with.
#pragma once

#include <chrono>
#include <cstdint>

namespace cleaks {

#if defined(__x86_64__) || defined(__i386__)
inline constexpr bool kCycleCounterIsTsc = true;
inline std::uint64_t read_cycle_counter() noexcept {
#if defined(__clang__)
  return __builtin_readcyclecounter();
#else
  return __builtin_ia32_rdtsc();
#endif
}
#else
inline constexpr bool kCycleCounterIsTsc = false;
inline std::uint64_t read_cycle_counter() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
#endif

/// Name of the cycle source, for bench envelopes.
inline const char* cycle_counter_source() noexcept {
  return kCycleCounterIsTsc ? "rdtsc" : "steady_clock_ns";
}

/// Accumulating start/stop cycle counter. start() while already running and
/// stop() while stopped are no-ops, so it nests safely around re-entrant
/// code the way the serenity `tsc` struct does.
struct CycleTimer {
  std::uint64_t total = 0;
  std::uint64_t started = 0;

  void reset() noexcept {
    total = 0;
    started = 0;
  }
  void start() noexcept {
    if (started == 0) started = read_cycle_counter();
  }
  void stop() noexcept {
    if (started != 0) {
      total += read_cycle_counter() - started;
      started = 0;
    }
  }
  /// Accumulated cycles, including a still-running interval.
  [[nodiscard]] std::uint64_t cycle_count() const noexcept {
    return total + (started != 0 ? read_cycle_counter() - started : 0);
  }
};

/// RAII wrapper: times one scope into an accumulator.
class ScopedCycles {
 public:
  explicit ScopedCycles(std::uint64_t& accumulator) noexcept
      : accumulator_(accumulator), start_(read_cycle_counter()) {}
  ~ScopedCycles() { accumulator_ += read_cycle_counter() - start_; }
  ScopedCycles(const ScopedCycles&) = delete;
  ScopedCycles& operator=(const ScopedCycles&) = delete;

 private:
  std::uint64_t& accumulator_;
  std::uint64_t start_;
};

/// Measure the cycle counter's rate against steady_clock (~5 ms spin).
/// On the steady_clock fallback this returns ~1e9 by construction.
inline double calibrate_cycles_per_second() {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const std::uint64_t c0 = read_cycle_counter();
  // Busy-wait; a sleep would park the TSC reference on some cpufreq setups.
  while (clock::now() - t0 < std::chrono::milliseconds(5)) {
  }
  const std::uint64_t c1 = read_cycle_counter();
  const double sec = std::chrono::duration<double>(clock::now() - t0).count();
  return sec > 0.0 ? static_cast<double>(c1 - c0) / sec : 0.0;
}

}  // namespace cleaks
