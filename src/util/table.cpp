#include "util/table.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "util/strings.h"

namespace cleaks {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("TablePrinter row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += row[c];
      line.append(widths[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    line += '\n';
    return line;
  };
  std::string out = render_row(headers_);
  std::string sep;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    sep.append(widths[c], '-');
    if (c + 1 < widths.size()) sep += "  ";
  }
  out += sep + '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::to_csv() const {
  auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char ch : cell) {
      if (ch == '"') quoted += '"';
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) out += ',';
    out += escape(headers_[c]);
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out += ',';
      out += escape(row[c]);
    }
    out += '\n';
  }
  return out;
}

void TablePrinter::print(std::ostream& os) const { os << to_string(); }

std::string fixed(double value, int decimals) {
  return strformat("%.*f", decimals, value);
}

}  // namespace cleaks
