// Deterministic, splittable random number generation.
//
// Every experiment in this repository is seeded so that benches reproduce the
// same series run-to-run. Rng wraps a SplitMix64-seeded xoshiro256**
// generator; child generators are derived with fork() so that adding a new
// consumer does not perturb the stream seen by existing consumers.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <string_view>

namespace cleaks {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm):
/// fast, 256-bit state, passes BigCrush. Satisfies UniformRandomBitGenerator
/// so it composes with <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds state via SplitMix64 so nearby seeds yield unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() noexcept;

  /// Derive an independent child generator keyed by `salt`. The parent's
  /// stream is not advanced, so fork order is irrelevant.
  [[nodiscard]] Rng fork(std::uint64_t salt) const noexcept;
  [[nodiscard]] Rng fork(std::string_view salt) const noexcept;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Gaussian with given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept;

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Exponentially distributed value with the given mean (>0).
  double exponential(double mean) noexcept;

  /// Random lowercase hex string of `digits` characters.
  std::string hex_string(std::size_t digits);

 private:
  std::uint64_t state_[4];
};

/// 64-bit FNV-1a, used to key forked streams by name.
std::uint64_t fnv1a64(std::string_view data) noexcept;

}  // namespace cleaks
