#include "util/rng.h"

#include <cmath>

namespace cleaks {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t salt) const noexcept {
  // Mix the current state (without advancing it) with the salt.
  std::uint64_t mixed = state_[0] ^ rotl(state_[3], 13) ^ (salt * 0x9e3779b97f4a7c15ULL);
  return Rng{mixed};
}

Rng Rng::fork(std::string_view salt) const noexcept {
  return fork(fnv1a64(salt));
}

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (lo >= hi) return lo;
  const std::uint64_t range = hi - lo + 1;
  if (range == 0) return (*this)();  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + draw % range;
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo);
  return lo + static_cast<std::int64_t>(uniform_u64(0, span));
}

double Rng::uniform01() noexcept {
  // 53 random mantissa bits -> uniform double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::gaussian(double mean, double stddev) noexcept {
  // Box-Muller; draws two uniforms per call. Simple and adequate here.
  double u1 = uniform01();
  double u2 = uniform01();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double mean) noexcept {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::string Rng::hex_string(std::size_t digits) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(digits);
  for (std::size_t i = 0; i < digits; ++i) {
    out.push_back(kHex[uniform_u64(0, 15)]);
  }
  return out;
}

std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace cleaks
