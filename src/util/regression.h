// Ordinary least squares multiple linear regression.
//
// Used by the power-based namespace (§V-B2) to fit the core model
// M_core = F(CM/C, BM/C) * I + alpha and the DRAM model M_dram = beta*CM + gamma.
// Normal equations are solved with Cholesky decomposition (the design
// matrices here are small and well conditioned after feature scaling).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"

namespace cleaks {

/// Dense column-major-free tiny matrix helper; only what OLS needs.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

  /// A^T * A (Gram matrix).
  [[nodiscard]] Matrix gram() const;
  /// A^T * y.
  [[nodiscard]] std::vector<double> transpose_times(std::span<const double> y) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve S * x = b for symmetric positive-definite S via Cholesky.
/// Fails with kInvalidArgument when S is not SPD (rank-deficient design).
Result<std::vector<double>> cholesky_solve(const Matrix& s, std::span<const double> b);

/// Fitted linear model y ≈ coefficients · features.
struct LinearModel {
  std::vector<double> coefficients;
  double r2 = 0.0;           ///< in-sample coefficient of determination
  double residual_std = 0.0; ///< std deviation of residuals

  [[nodiscard]] double predict(std::span<const double> features) const;
};

/// Fit OLS on `rows` observations: features[i] (size = n_features) -> y[i].
/// The caller includes an explicit intercept feature (constant 1) if wanted.
/// A tiny ridge term (lambda * I) keeps near-collinear designs solvable.
Result<LinearModel> fit_ols(const std::vector<std::vector<double>>& features,
                            std::span<const double> y, double ridge = 1e-9);

}  // namespace cleaks
