#include "util/result.h"

namespace cleaks {

std::string_view to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case StatusCode::kNotSupported:
      return "NOT_SUPPORTED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  if (is_ok()) return "OK";
  std::string out{cleaks::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace cleaks
