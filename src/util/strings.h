// Small string utilities shared across modules: splitting/trimming for the
// differential analyzer, printf-style formatting for pseudo-file rendering,
// and glob matching for masking policies.
#pragma once

#include <cstdarg>
#include <string>
#include <string_view>
#include <vector>

namespace cleaks {

/// Split on a single character; empty tokens are kept (procfs files use
/// positional whitespace-separated fields, so callers often want them).
std::vector<std::string> split(std::string_view text, char sep);

/// Split on any run of whitespace; empty tokens are dropped.
std::vector<std::string> split_whitespace(std::string_view text);

/// Split into lines ('\n'); a trailing newline does not produce a final
/// empty line.
std::vector<std::string> split_lines(std::string_view text);

std::string_view trim(std::string_view text);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);
bool contains(std::string_view text, std::string_view needle);

/// printf-style formatting into std::string. Pseudo-file generators render a
/// lot of fixed-width numeric text; this keeps them readable.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// printf-style formatting appended to `out` — the hot-path variant used by
/// pseudo-file generators, which build multi-kilobyte files line by line.
/// Appending in place avoids the temporary-string allocation per line that
/// `out += strformat(...)` would cost.
void strappendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

/// Parse the first decimal integer / double appearing in `text`;
/// returns fallback when none found.
long long parse_first_int(std::string_view text, long long fallback = 0);
double parse_first_double(std::string_view text, double fallback = 0.0);

/// Extract every integer appearing in `text`, in order. Useful for
/// field-wise differential analysis of procfs content.
std::vector<long long> extract_ints(std::string_view text);
/// Extract every number (int or float) appearing in `text`, in order.
std::vector<double> extract_numbers(std::string_view text);

/// AppArmor-style glob match over '/'-separated paths:
///   '*'  matches any run of non-'/' characters,
///   '**' matches any run of characters including '/',
///   '?'  matches a single non-'/' character.
bool glob_match(std::string_view pattern, std::string_view path);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

}  // namespace cleaks
