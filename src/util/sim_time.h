// Simulated time. The whole system runs on a discrete simulated clock in
// nanoseconds; nothing reads the wall clock except the Table III overhead
// bench (which measures the real cost of our own hot paths).
#pragma once

#include <cstdint>

namespace cleaks {

/// Nanoseconds of simulated time since simulation start (not since host
/// boot: hosts may boot at different simulated instants).
using SimTime = std::uint64_t;
/// A duration in simulated nanoseconds.
using SimDuration = std::uint64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;

constexpr double to_seconds(SimDuration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr SimDuration from_seconds(double s) noexcept {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

}  // namespace cleaks
