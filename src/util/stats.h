// Statistics helpers: running moments, percentiles, histograms, and the
// joint Shannon entropy used by Table II's channel ranking (Formula 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace cleaks {

/// Online mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< population variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// p-th percentile (0 <= p <= 100) with linear interpolation.
/// Copies and sorts; fine for experiment-sized data.
double percentile(std::span<const double> values, double p);

/// Pearson correlation coefficient of two equal-length series.
/// Returns 0 when either series is constant or lengths mismatch.
double pearson_correlation(std::span<const double> a, std::span<const double> b);

/// Shannon entropy (bits) of a discrete sample: H = -sum p_j log2 p_j,
/// where p_j is the empirical frequency of each distinct value.
double shannon_entropy(std::span<const double> samples);
double shannon_entropy_strings(std::span<const std::string> samples);

/// Joint entropy of a channel per Formula (1) of the paper: the channel is a
/// tuple of independent data fields X_1..X_n; the joint entropy is the sum of
/// the per-field entropies. `fields[i]` is the sample vector for field X_i.
double joint_channel_entropy(std::span<const std::vector<double>> fields);

/// Coefficient of determination R^2 between observations and predictions.
double r_squared(std::span<const double> observed, std::span<const double> predicted);

/// Simple fixed-width histogram for entropy estimation of continuous fields:
/// quantizes samples into `bins` equal bins over [min,max] and returns the
/// entropy of the quantized distribution.
double binned_entropy(std::span<const double> samples, int bins);

/// Exponentially-weighted moving average, as used by the kernel loadavg.
class Ewma {
 public:
  /// `alpha` is the weight of the new observation (0 < alpha <= 1).
  explicit Ewma(double alpha) : alpha_(alpha) {}

  double update(double x) noexcept {
    value_ = initialized_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    initialized_ = true;
    return value_;
  }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace cleaks
